#!/usr/bin/env python3
"""Smoke-check the `hyperviper serve` daemon end to end.

Used by the CI `serve-smoke` job and handy locally:

  check_serve.py BIN FILE.hv [FILE2.hv ...]

Spawns `BIN serve --port 0`, parses the "listening on" banner, then
drives the ndjson protocol over TCP and enforces the daemon's contract:

  - a cold `verify` of each FILE returns byte-for-byte the combined
    stderr+stdout of the one-shot CLI (`BIN --jobs 1 FILE`), with the
    same exit code;
  - a warm repeat is byte-identical, reports `program_cache_hit`, and
    shows a nonzero spec-eval memo hit count for its request delta;
  - `stats` has the documented shape and a nonzero warm hit rate;
  - malformed JSON and unknown verbs get typed errors (the connection
    survives both);
  - `shutdown` drains and the process exits 0.

Exit 1 with a description on the first violated clause.
"""

import json
import signal
import socket
import subprocess
import sys


def fail(msg):
    print(f"check_serve: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, obj=None, raw=None):
        self.file.write(raw if raw is not None else json.dumps(obj) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            fail("daemon closed the connection mid-exchange")
        return json.loads(line)

    def close(self):
        self.file.close()
        self.sock.close()


def one_shot(bin_path, path):
    """The reference output: one-shot CLI, stderr and stdout combined."""
    proc = subprocess.run(
        [bin_path, "--jobs", "1", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.stdout, proc.returncode


def check_verify(client, bin_path, path):
    with open(path, encoding="utf-8") as f:
        source = f.read()
    want_report, want_exit = one_shot(bin_path, path)
    req = {"id": path, "verb": "verify", "source": source, "name": path}

    cold = client.rpc(req)
    if cold.get("id") != path:
        fail(f"{path}: response id {cold.get('id')!r} != request id")
    if cold.get("report") != want_report:
        fail(
            f"{path}: cold report differs from one-shot CLI\n"
            f"  cli:    {want_report!r}\n  daemon: {cold.get('report')!r}"
        )
    if cold.get("exit") != want_exit:
        fail(f"{path}: cold exit {cold.get('exit')} != CLI {want_exit}")

    warm = client.rpc(req)
    if warm.get("report") != want_report:
        fail(f"{path}: warm report differs from cold")
    if not warm.get("program_cache_hit"):
        fail(f"{path}: warm request missed the program cache")
    if warm.get("cache", {}).get("hits", 0) == 0:
        fail(f"{path}: warm request shows zero spec-eval memo hits")
    print(
        f"check_serve: {path}: cold==cli, warm==cold, "
        f"{warm['cache']['hits']} warm memo hits"
    )


def check_stats(client):
    resp = client.rpc({"id": "s", "verb": "stats"})
    stats = resp.get("stats")
    if not isinstance(stats, dict):
        fail("stats response has no stats object")
    for key in (
        "requests",
        "queue_depth",
        "in_flight",
        "program_cache",
        "spec_cache",
        "specs_cached",
        "metrics",
    ):
        if key not in stats:
            fail(f"stats missing key {key!r}")
    rate = stats["spec_cache"].get("hit_rate", 0)
    if not rate > 0:
        fail(f"stats spec_cache.hit_rate is {rate}, expected > 0 after warm pass")
    print(f"check_serve: stats ok, warm hit rate {rate:.4f}")


def check_errors(client):
    resp = client.rpc(raw="this is not json\n")
    if resp.get("error", {}).get("type") != "bad-request":
        fail(f"malformed line: expected bad-request, got {resp!r}")
    resp = client.rpc({"id": 7, "verb": "frobnicate"})
    if resp.get("error", {}).get("type") != "unknown-verb":
        fail(f"unknown verb: expected unknown-verb, got {resp!r}")
    if resp.get("id") != 7:
        fail("error response dropped the request id")
    print("check_serve: typed errors ok")


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    bin_path, files = sys.argv[1], sys.argv[2:]

    daemon = subprocess.Popen(
        [bin_path, "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = daemon.stdout.readline().strip()
        if not banner.startswith("listening on "):
            fail(f"unexpected banner: {banner!r}")
        port = int(banner.rsplit(":", 1)[1])

        client = Client(port)
        for path in files:
            check_verify(client, bin_path, path)
        check_stats(client)
        check_errors(client)

        resp = client.rpc({"id": "bye", "verb": "shutdown"})
        if not resp.get("shutting_down"):
            fail(f"shutdown verb: expected shutting_down, got {resp!r}")
        client.close()
        code = daemon.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code} after shutdown verb, expected 0")
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGKILL)
            daemon.wait()

    print("check_serve: OK")


if __name__ == "__main__":
    main()
