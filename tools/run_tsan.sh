#!/usr/bin/env sh
# Configure, build, and run the test suites under ThreadSanitizer. The
# interner, the spec-evaluation memo caches, the validity checker's
# bounded tier, the NI harness, and the serve daemon's Session all share
# state across pool workers (and, for the Session, across concurrent
# request threads); this is the cheap way to prove the locking right.
#
# Test binaries are discovered by glob (tests/test_*) so new suites are
# covered automatically instead of requiring an edit here.
#
# Usage: tools/run_tsan.sh [build-dir]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-tsan"}

cmake -S "$ROOT" -B "$BUILD" -DCOMMCSL_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error so a single race fails the script immediately.
TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
export TSAN_OPTIONS

RAN=0
for T in "$BUILD"/tests/test_*; do
  [ -f "$T" ] && [ -x "$T" ] || continue
  RAN=$((RAN + 1))
  echo "== $(basename "$T") =="
  "$T"
done

if [ "$RAN" -eq 0 ]; then
  echo "run_tsan.sh: no test binaries found under $BUILD/tests" >&2
  exit 1
fi
echo "tsan: all $RAN suites clean"
