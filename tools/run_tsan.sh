#!/usr/bin/env sh
# Configure, build, and run the concurrency-sensitive test suites under
# ThreadSanitizer. The interner, the spec-evaluation memo caches, the
# validity checker's bounded tier, the NI harness, and the serve daemon's
# Session all share state across pool workers (and, for the Session,
# across concurrent request threads); this is the cheap way to prove the
# locking right.
#
# Usage: tools/run_tsan.sh [build-dir]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-tsan"}

cmake -S "$ROOT" -B "$BUILD" -DCOMMCSL_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)" --target \
  test_support test_value test_rspec test_sem test_hyper test_service

# halt_on_error so a single race fails the script immediately.
TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
export TSAN_OPTIONS

for T in test_support test_value test_rspec test_sem test_hyper \
         test_service; do
  echo "== $T =="
  "$BUILD/tests/$T"
done
echo "tsan: all suites clean"
