//===-- tools/dev/gen_value_goldens.cpp - Golden-vector generator ----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the value-representation golden vectors under
/// tests/value/golden/ from the recipes in tests/value/RepresentationGolden.h.
/// Usage: gen_value_goldens <output-dir>
///
/// The committed goldens were produced by the pre-rewrite representation;
/// regenerate only when the *intended* semantics change (and say so in the
/// commit message), never to paper over an accidental divergence.
///
//===----------------------------------------------------------------------===//

#include "tests/value/RepresentationGolden.h"

#include <fstream>
#include <iostream>
#include <random>

using namespace commcsl;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::cerr << "usage: gen_value_goldens <output-dir>\n";
    return 2;
  }
  std::string Dir = argv[1];

  {
    std::ofstream OS(Dir + "/enumeration.txt");
    auto Domains = golden::goldenDomains();
    for (const auto &D : Domains) {
      for (size_t Budget : golden::goldenBudgets()) {
        OS << "# enum " << D.Name << " budget " << Budget << "\n";
        for (const ValueRef &V : D.Dom->enumerate(Budget))
          OS << V->str() << "\n";
      }
    }
  }

  {
    std::ofstream OS(Dir + "/sampling.txt");
    auto Domains = golden::goldenDomains();
    for (size_t I = 0; I < Domains.size(); ++I) {
      OS << "# sample " << Domains[I].Name << "\n";
      std::mt19937_64 Rng(golden::goldenSampleSeed(I));
      for (unsigned K = 0; K < golden::GoldenSampleDraws; ++K)
        OS << Domains[I].Dom->sample(Rng)->str() << "\n";
    }
  }

  {
    std::ofstream OS(Dir + "/values.txt");
    auto Vs = golden::goldenValues();
    for (size_t I = 0; I < Vs.size(); ++I)
      OS << I << " " << valueKindName(Vs[I]->kind()) << " " << Vs[I]->str()
         << "\n";
  }

  {
    std::ofstream OS(Dir + "/compare.txt");
    auto Vs = golden::goldenValues();
    for (size_t I = 0; I < Vs.size(); ++I) {
      for (size_t J = 0; J < Vs.size(); ++J) {
        int C = Value::compare(Vs[I], Vs[J]);
        OS << (C < 0 ? '<' : C > 0 ? '>' : '=');
      }
      OS << "\n";
    }
  }

  std::cout << "wrote goldens to " << Dir << "\n";
  return 0;
}
