#!/usr/bin/env python3
"""Validate hyperviper observability artifacts.

Two subcommands, used by the CI `observability` job and handy locally:

  check_observability.py trace TRACE.json
      Validate a `--trace` export: well-formed JSON, the Chrome
      trace-event envelope (`traceEvents` list, `displayTimeUnit`), every
      event carries the required keys for its phase, and "X" (complete)
      spans nest properly per thread — span intervals on one tid must be
      related by containment or disjointness, never partial overlap.

  check_observability.py metrics-diff A.json B.json
      Validate two `--metrics-json` exports (each must contain exactly the
      "counts" and "timings" objects, with sorted keys) and diff their
      "counts" objects, which the determinism contract requires to be
      identical across `--jobs` settings. Exit 1 with a per-key report on
      any mismatch.
"""

import json
import sys

REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "pid", "tid", "dur"),
    "i": ("name", "cat", "ts", "pid", "tid", "s"),
    "C": ("name", "ts", "pid", "tid", "args"),
}


def fail(msg):
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path):
    doc = load(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents envelope")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: missing displayTimeUnit")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    spans_by_tid = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in REQUIRED_BY_PHASE:
            fail(f"{path}: event {i}: unknown phase {ph!r}")
        for key in REQUIRED_BY_PHASE[ph]:
            if key not in e:
                fail(f"{path}: event {i} ({ph}): missing key {key!r}")
        if ph == "X":
            spans_by_tid.setdefault(e["tid"], []).append(
                (e["ts"], e["ts"] + e["dur"], e["name"])
            )

    # Spans on one thread must nest: sorted by (start, -end), each span is
    # either contained in the enclosing open span or starts after it ends.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(
                    f"{path}: tid {tid}: span {name!r} [{start},{end}) "
                    f"partially overlaps {stack[-1][2]!r} "
                    f"[{stack[-1][0]},{stack[-1][1]})"
                )
            stack.append((start, end, name))

    n_spans = sum(len(s) for s in spans_by_tid.values())
    print(
        f"check_observability: OK: {path}: {len(events)} events, "
        f"{n_spans} spans across {len(spans_by_tid)} threads, nesting valid"
    )


def check_metrics_shape(path, doc):
    if not isinstance(doc, dict) or set(doc) != {"counts", "timings"}:
        fail(f"{path}: expected exactly 'counts' and 'timings' objects")
    for section in ("counts", "timings"):
        obj = doc[section]
        if not isinstance(obj, dict):
            fail(f"{path}: {section} is not an object")
        keys = list(obj)
        if keys != sorted(keys):
            fail(f"{path}: {section} keys are not sorted")
    for name, v in doc["counts"].items():
        if not isinstance(v, int):
            fail(f"{path}: counts[{name!r}] is not an integer: {v!r}")


def metrics_diff(path_a, path_b):
    a, b = load(path_a), load(path_b)
    check_metrics_shape(path_a, a)
    check_metrics_shape(path_b, b)
    ca, cb = a["counts"], b["counts"]
    bad = False
    for key in sorted(set(ca) | set(cb)):
        if key not in ca or key not in cb:
            print(
                f"  {key}: only in {path_a if key in ca else path_b}",
                file=sys.stderr,
            )
            bad = True
        elif ca[key] != cb[key]:
            print(f"  {key}: {ca[key]} != {cb[key]}", file=sys.stderr)
            bad = True
    if bad:
        fail(f"counts differ between {path_a} and {path_b}")
    print(
        f"check_observability: OK: {len(ca)} count metrics identical "
        f"between {path_a} and {path_b}"
    )


def main(argv):
    if len(argv) >= 3 and argv[1] == "trace":
        for path in argv[2:]:
            check_trace(path)
    elif len(argv) == 4 and argv[1] == "metrics-diff":
        metrics_diff(argv[2], argv[3])
    else:
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
