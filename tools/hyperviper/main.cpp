//===-- tools/hyperviper/main.cpp - HyperViper CLI --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line verifier: `hyperviper [options] file.hv ...`
///
/// Options:
///   --no-validity   skip resource-spec validity checking (Def. 3.1)
///   --jobs <N>      worker threads for validity checking, procedure
///                   verification, and the NI harness (default: hardware
///                   concurrency; 1 = fully sequential). Output is
///                   identical at every N.
///   --ni <proc>     additionally run the empirical non-interference
///                   harness on the named procedure
///   --metrics       print Table-1-style metrics (LOC / Ann. / time)
///   --quiet         only print the verdict line
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace commcsl;

int main(int Argc, char **Argv) {
  DriverOptions Options;
  bool PrintMetrics = false;
  bool Quiet = false;
  std::string NIProc;
  std::vector<std::string> Files;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--no-validity") {
      Options.Verifier.SkipValidityCheck = true;
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      if (N < 1) {
        std::fprintf(stderr, "hyperviper: error: --jobs expects a positive "
                             "integer\n");
        return 2;
      }
      Options.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--metrics") {
      PrintMetrics = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--ni" && I + 1 < Argc) {
      NIProc = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper [--no-validity] [--jobs N] [--metrics] "
                  "[--quiet] [--ni <proc>] file.hv ...\n");
      return 0;
    } else {
      Files.push_back(Arg);
    }
  }

  if (Files.empty()) {
    std::fprintf(stderr, "hyperviper: error: no input files\n");
    return 2;
  }

  Driver D(Options);
  int Exit = 0;
  for (const std::string &File : Files) {
    DriverResult R = D.verifyFile(File);
    if (!R.Verified) {
      Exit = 1;
      if (!Quiet)
        std::fputs(R.Diags.str(File).c_str(), stderr);
    }
    std::printf("%s: %s\n", File.c_str(),
                R.Verified ? "verified" : "REJECTED");
    if (PrintMetrics && R.ParseOk) {
      std::printf("  LOC %u  Ann. %u  parse %.3fs  validity %.3fs  "
                  "verify %.3fs  total %.3fs\n",
                  R.Metrics.LinesOfCode, R.Metrics.AnnotationLines,
                  R.ParseSeconds, R.ValiditySeconds, R.VerifySeconds,
                  R.totalSeconds());
      const CacheStats &C = R.Verification.SpecCache;
      std::printf("  spec memo: %llu hits  %llu misses  %llu entries  "
                  "%llu evictions\n",
                  static_cast<unsigned long long>(C.hits()),
                  static_cast<unsigned long long>(C.misses()),
                  static_cast<unsigned long long>(C.Entries),
                  static_cast<unsigned long long>(C.Evictions));
    }
    if (!NIProc.empty() && R.ParseOk) {
      NIReport Report = D.runEmpirical(R, NIProc);
      if (Report.secure()) {
        std::printf("  empirical non-interference: no violation in %llu "
                    "runs (%llu pairs)\n",
                    static_cast<unsigned long long>(Report.Runs),
                    static_cast<unsigned long long>(Report.PairsCompared));
        if (PrintMetrics)
          std::printf("  ni memo: %llu hits  %llu misses  %llu entries\n",
                      static_cast<unsigned long long>(Report.Cache.hits()),
                      static_cast<unsigned long long>(Report.Cache.misses()),
                      static_cast<unsigned long long>(Report.Cache.Entries));
      } else {
        std::printf("  empirical non-interference: VIOLATION after %llu "
                    "runs\n%s",
                    static_cast<unsigned long long>(Report.Runs),
                    Report.Violation->describe().c_str());
        Exit = 1;
      }
    }
  }
  return Exit;
}
