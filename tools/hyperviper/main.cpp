//===-- tools/hyperviper/main.cpp - HyperViper CLI --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line verifier: `hyperviper [options] file.hv ...`
///
/// Options:
///   --no-validity   skip resource-spec validity checking (Def. 3.1)
///   --jobs <N>      worker threads for validity checking, procedure
///                   verification, and the NI harness (default: hardware
///                   concurrency; 1 = fully sequential). Output is
///                   identical at every N.
///   --ni <proc>     additionally run the empirical non-interference
///                   harness on the named procedure
///   --triage        static fast path: skip the relational proof for
///                   procedures the taint analysis proves low in
///                   verifier-approximation mode (skips reported by
///                   --metrics)
///   --metrics       print Table-1-style metrics (LOC / Ann. / time)
///   --quiet         only print the verdict line
///
/// Analysis subcommand: `hyperviper analyze [options] file-or-dir ...`
/// runs the static information-flow pre-analysis (CFG + taint + lints,
/// src/analysis/) without verification. Directories expand recursively in
/// sorted order. Output is byte-identical at any --jobs.
///
/// analyze options:
///   --jobs <N>   worker threads over input files
///   --check      compare each file's report block against its committed
///                `<file>.analysis` sidecar (missing sidecar = the file
///                must be provably-low with no diagnostics); exit 1 on any
///                mismatch
///
/// Fuzzing subcommand: `hyperviper fuzz [options]` runs a differential
/// soundness-fuzzing campaign (see src/fuzz/): generated programs are
/// cross-checked between the generator's taint verdict, the verifier, an
/// empirical NI sweep, and a scheduler differential; disagreements are
/// minimized by the delta-debugging shrinker. Exits 1 when any
/// soundness-violation or generator-invalid classification occurs.
///
/// fuzz options:
///   --seeds <N>          campaign size (default 100)
///   --base-seed <N>      base of the per-seed derived streams (default 1)
///   --jobs <N>           worker threads across seeds (report is identical
///                        at every N)
///   --time-budget <SEC>  wall-clock cap; seeds not started in time are
///                        skipped (trades determinism for a bound)
///   --target-statements <N>  generator program size (default 12)
///   --no-concurrency / --no-collections / --no-unique-par /
///   --no-value-dependent / --no-loops  generator feature toggles
///   --secure-only        generate only secure-by-construction programs
///   --no-shrink          keep findings unminimized
///   --shrink-budget <N>  oracle evaluations per shrink (default 600)
///   --corpus-dir <DIR>   write each finding as a replayable corpus file
///   --report <FILE>      write the JSON report to FILE ('-' = stdout,
///                        the default)
///   --inject <FAULT>     none | accept-all | reject-all: synthetic
///                        verifier fault for exercising the disagreement
///                        machinery (testing/tooling only)
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Corpus.h"
#include "hyperviper/Analyze.h"
#include "hyperviper/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

int runFuzz(int Argc, char **Argv) {
  CampaignConfig Config;
  std::string CorpusDir;
  std::string ReportPath = "-";

  auto NumArg = [&](int &I, const char *Flag) -> long {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "hyperviper fuzz: error: %s expects a value\n",
                   Flag);
      std::exit(2);
    }
    return std::strtol(Argv[++I], nullptr, 10);
  };

  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--seeds") {
      Config.NumSeeds = static_cast<unsigned>(NumArg(I, "--seeds"));
    } else if (Arg == "--base-seed") {
      Config.BaseSeed = static_cast<uint64_t>(NumArg(I, "--base-seed"));
    } else if (Arg == "--jobs") {
      Config.Jobs = static_cast<unsigned>(NumArg(I, "--jobs"));
    } else if (Arg == "--time-budget") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr,
                     "hyperviper fuzz: error: --time-budget expects a "
                     "value\n");
        return 2;
      }
      Config.TimeBudgetSeconds = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--target-statements") {
      Config.Gen.TargetStatements =
          static_cast<unsigned>(NumArg(I, "--target-statements"));
    } else if (Arg == "--no-concurrency") {
      Config.Gen.EnableConcurrency = false;
    } else if (Arg == "--no-collections") {
      Config.Gen.EnableCollections = false;
    } else if (Arg == "--no-unique-par") {
      Config.Gen.EnableUniquePar = false;
    } else if (Arg == "--no-value-dependent") {
      Config.Gen.EnableValueDependent = false;
    } else if (Arg == "--no-loops") {
      Config.Gen.EnableLoops = false;
    } else if (Arg == "--secure-only") {
      Config.Gen.AllowLeakyOutput = false;
    } else if (Arg == "--no-shrink") {
      Config.ShrinkFindings = false;
    } else if (Arg == "--shrink-budget") {
      Config.Shrink.MaxOracleRuns =
          static_cast<unsigned>(NumArg(I, "--shrink-budget"));
    } else if (Arg == "--corpus-dir") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "hyperviper fuzz: error: --corpus-dir expects "
                             "a value\n");
        return 2;
      }
      CorpusDir = Argv[++I];
    } else if (Arg == "--report") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr,
                     "hyperviper fuzz: error: --report expects a value\n");
        return 2;
      }
      ReportPath = Argv[++I];
    } else if (Arg == "--inject") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr,
                     "hyperviper fuzz: error: --inject expects a value\n");
        return 2;
      }
      std::optional<OracleFault> F = oracleFaultByName(Argv[++I]);
      if (!F) {
        std::fprintf(stderr,
                     "hyperviper fuzz: error: unknown fault '%s' (want "
                     "none|accept-all|reject-all)\n",
                     Argv[I]);
        return 2;
      }
      Config.Oracle.Inject = *F;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: hyperviper fuzz [--seeds N] [--base-seed N] [--jobs N]\n"
          "  [--time-budget SEC] [--target-statements N] [--no-concurrency]\n"
          "  [--no-collections] [--no-unique-par] [--no-value-dependent]\n"
          "  [--no-loops] [--secure-only] [--no-shrink] [--shrink-budget N]\n"
          "  [--corpus-dir DIR] [--report FILE|-] "
          "[--inject none|accept-all|reject-all]\n");
      return 0;
    } else {
      std::fprintf(stderr, "hyperviper fuzz: error: unknown option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }

  CampaignReport Report = runCampaign(Config);

  std::string Json = Report.json();
  if (ReportPath == "-") {
    std::fputs(Json.c_str(), stdout);
  } else {
    std::ofstream Out(ReportPath);
    if (!Out) {
      std::fprintf(stderr, "hyperviper fuzz: error: cannot write %s\n",
                   ReportPath.c_str());
      return 2;
    }
    Out << Json;
  }

  if (!CorpusDir.empty()) {
    std::vector<std::string> Paths = writeCorpusFiles(Report, CorpusDir);
    std::fprintf(stderr, "hyperviper fuzz: wrote %zu corpus file(s) to %s\n",
                 Paths.size(), CorpusDir.c_str());
  }

  std::fprintf(stderr,
               "hyperviper fuzz: %u seeds run (%u skipped): %u agree, "
               "%u soundness-violation, %u analysis-unsound, "
               "%u completeness-gap, %u flake, %u generator-invalid; "
               "%u statically secure\n",
               Report.SeedsRun, Report.SeedsSkipped, Report.Agree,
               Report.SoundnessViolations, Report.AnalysisUnsound,
               Report.CompletenessGaps, Report.Flakes,
               Report.GeneratorInvalids, Report.StaticSecureSeeds);
  return Report.clean() ? 0 : 1;
}

int runAnalyzeCmd(int Argc, char **Argv) {
  AnalyzeOptions Options;
  std::vector<std::string> Inputs;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--jobs" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      if (N < 1) {
        std::fprintf(stderr, "hyperviper analyze: error: --jobs expects a "
                             "positive integer\n");
        return 2;
      }
      Options.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--check") {
      Options.Check = true;
    } else if (Arg == "--write") {
      Options.Write = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper analyze [--jobs N] [--check|--write] "
                  "file-or-dir ...\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "hyperviper analyze: error: unknown option '%s'\n",
                   Arg.c_str());
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "hyperviper analyze: error: no inputs\n");
    return 2;
  }
  AnalyzeResult R = runAnalyze(Inputs, Options);
  std::fputs(R.str().c_str(), stdout);
  if (Options.Check && !R.Ok) {
    std::fprintf(stderr,
                 "hyperviper analyze: error: report does not match the "
                 "committed .analysis sidecars\n");
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "fuzz") == 0)
    return runFuzz(Argc - 2, Argv + 2);
  if (Argc > 1 && std::strcmp(Argv[1], "analyze") == 0)
    return runAnalyzeCmd(Argc - 2, Argv + 2);

  DriverOptions Options;
  bool PrintMetrics = false;
  bool Quiet = false;
  std::string NIProc;
  std::vector<std::string> Files;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--no-validity") {
      Options.Verifier.SkipValidityCheck = true;
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      long N = std::strtol(Argv[++I], nullptr, 10);
      if (N < 1) {
        std::fprintf(stderr, "hyperviper: error: --jobs expects a positive "
                             "integer\n");
        return 2;
      }
      Options.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--triage") {
      Options.Triage = true;
    } else if (Arg == "--metrics") {
      PrintMetrics = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--ni" && I + 1 < Argc) {
      NIProc = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper [--no-validity] [--jobs N] [--triage] "
                  "[--metrics] [--quiet] [--ni <proc>] file.hv ...\n"
                  "       hyperviper analyze --help\n"
                  "       hyperviper fuzz --help\n");
      return 0;
    } else {
      Files.push_back(Arg);
    }
  }

  if (Files.empty()) {
    std::fprintf(stderr, "hyperviper: error: no input files\n");
    return 2;
  }

  Driver D(Options);
  int Exit = 0;
  for (const std::string &File : Files) {
    DriverResult R = D.verifyFile(File);
    if (!R.Verified) {
      Exit = 1;
      if (!Quiet)
        std::fputs(R.Diags.str(File).c_str(), stderr);
    }
    std::printf("%s: %s\n", File.c_str(),
                R.Verified ? "verified" : "REJECTED");
    if (PrintMetrics && R.ParseOk) {
      std::printf("  LOC %u  Ann. %u  parse %.3fs  validity %.3fs  "
                  "verify %.3fs  total %.3fs\n",
                  R.Metrics.LinesOfCode, R.Metrics.AnnotationLines,
                  R.ParseSeconds, R.ValiditySeconds, R.VerifySeconds,
                  R.totalSeconds());
      if (Options.Triage)
        std::printf("  triage: skipped %u/%zu relational proof(s)  "
                    "analysis %.3fs\n",
                    R.TriageSkipped, R.Verification.Procs.size(),
                    R.AnalysisSeconds);
      const CacheStats &C = R.Verification.SpecCache;
      std::printf("  spec memo: %llu hits  %llu misses  %llu entries  "
                  "%llu evictions\n",
                  static_cast<unsigned long long>(C.hits()),
                  static_cast<unsigned long long>(C.misses()),
                  static_cast<unsigned long long>(C.Entries),
                  static_cast<unsigned long long>(C.Evictions));
    }
    if (!NIProc.empty() && R.ParseOk) {
      NIReport Report = D.runEmpirical(R, NIProc);
      if (Report.secure()) {
        std::printf("  empirical non-interference: no violation in %llu "
                    "runs (%llu pairs)\n",
                    static_cast<unsigned long long>(Report.Runs),
                    static_cast<unsigned long long>(Report.PairsCompared));
        if (PrintMetrics)
          std::printf("  ni memo: %llu hits  %llu misses  %llu entries\n",
                      static_cast<unsigned long long>(Report.Cache.hits()),
                      static_cast<unsigned long long>(Report.Cache.misses()),
                      static_cast<unsigned long long>(Report.Cache.Entries));
      } else {
        std::printf("  empirical non-interference: VIOLATION after %llu "
                    "runs\n%s",
                    static_cast<unsigned long long>(Report.Runs),
                    Report.Violation->describe().c_str());
        Exit = 1;
      }
    }
  }
  return Exit;
}
