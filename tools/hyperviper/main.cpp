//===-- tools/hyperviper/main.cpp - HyperViper CLI --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line verifier: `hyperviper [options] file-or-dir.hv ...`
///
/// Options:
///   --no-validity   skip resource-spec validity checking (Def. 3.1)
///   --jobs <N>      worker threads for validity checking, procedure
///                   verification, and the NI harness (default: hardware
///                   concurrency; 1 = fully sequential). Output is
///                   identical at every N.
///   --ni <proc>     additionally run the empirical non-interference
///                   harness on the named procedure
///   --triage        static fast path: skip the relational proof for
///                   procedures the taint analysis proves low in
///                   verifier-approximation mode (skips reported by
///                   --metrics)
///   --metrics       print Table-1-style metrics (LOC / Ann. / time)
///   --quiet         only print the verdict line
///   --emit-cert <FILE>  write a checkable proof certificate ('-' =
///                   stdout); requires exactly one input file. Implies the
///                   relational proof runs for every procedure (the
///                   --triage fast path is disabled for the run).
///   --inject <FAULT>  none | accept-all | absint-unsound: seeded faults
///                   (testing only). accept-all forges the verifier's
///                   entailment verdicts; absint-unsound corrupts the
///                   differencing tier's recorded update template after
///                   proving, so the emitted certificate is unsound. Both
///                   exist so `check-cert` can demonstrably refute them.
///
/// Certificate checking: `hyperviper check-cert <prog.hv> <cert>` re-checks
/// a certificate against the program using only the AST and the
/// independent checker (src/cert/) — no solver or verifier code runs.
/// Prints `<cert>: OK` or `<cert>: INVALID (<reason>)`; exit 0/1.
///
/// Observability options (accepted by every subcommand):
///   --trace <FILE>         record scoped spans into FILE as Chrome
///                          trace-event JSON (load in Perfetto or
///                          chrome://tracing); see README "Profiling"
///   --metrics-json <FILE>  export the process metrics registry as JSON;
///                          the "counts" object is byte-identical at any
///                          --jobs, wall-clock values live under "timings"
///
/// `--jobs` is parsed identically everywhere: a positive decimal integer,
/// no sign, no trailing junk (`4x`), no overflow; anything else is a
/// consistent `invalid --jobs value` error with exit code 2.
///
/// Analysis subcommand: `hyperviper analyze [options] file-or-dir ...`
/// runs the static information-flow pre-analysis (CFG + taint + lints,
/// src/analysis/) without verification. Directories expand recursively in
/// sorted order. Output is byte-identical at any --jobs.
///
/// analyze options:
///   --jobs <N>   worker threads over input files
///   --check      compare each file's report block against its committed
///                `<file>.analysis` sidecar (missing sidecar = the file
///                must be provably-low with no diagnostics); exit 1 on any
///                mismatch
///
/// Fuzzing subcommand: `hyperviper fuzz [options]` runs a differential
/// soundness-fuzzing campaign (see src/fuzz/): generated programs are
/// cross-checked between the generator's taint verdict, the verifier, an
/// empirical NI sweep, and a scheduler differential; disagreements are
/// minimized by the delta-debugging shrinker. Exits 1 when any
/// soundness-violation or generator-invalid classification occurs.
///
/// fuzz options:
///   --seeds <N>          campaign size (default 100)
///   --base-seed <N>      base of the per-seed derived streams (default 1)
///   --jobs <N>           worker threads across seeds (report is identical
///                        at every N)
///   --time-budget <SEC>  wall-clock cap; seeds not started in time are
///                        skipped (trades determinism for a bound)
///   --target-statements <N>  generator program size (default 12)
///   --no-concurrency / --no-collections / --no-unique-par /
///   --no-value-dependent / --no-loops  generator feature toggles
///   --secure-only        generate only secure-by-construction programs
///   --no-shrink          keep findings unminimized
///   --shrink-budget <N>  oracle evaluations per shrink (default 600)
///   --corpus-dir <DIR>   write each finding as a replayable corpus file
///   --report <FILE>      write the JSON report to FILE ('-' = stdout,
///                        the default)
///   --inject <FAULT>     none | accept-all | reject-all: synthetic
///                        verifier fault for exercising the disagreement
///                        machinery (testing/tooling only)
///
/// Serve subcommand: `hyperviper serve [options]` runs the persistent
/// verification daemon (src/service/): newline-delimited JSON over TCP on
/// 127.0.0.1, multiplexing requests onto the shared thread pool with warm
/// program/spec-eval caches across requests. Responses are byte-identical
/// to the one-shot CLI. See DESIGN.md §11 and `serve --help`.
///
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"
#include "cert/Check.h"
#include "fuzz/Campaign.h"
#include "fuzz/Corpus.h"
#include "hyperviper/Analyze.h"
#include "hyperviper/Driver.h"
#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "rspec/Suggest.h"
#include "service/Server.h"
#include "support/Numeric.h"
#include "support/Signals.h"
#include "support/trace/Metrics.h"
#include "support/trace/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

/// Observability flags shared by every subcommand. `parseFlag` consumes
/// `--trace` / `--metrics-json` (returning true), `finish` writes the
/// requested files after the verb's work is done.
struct Observability {
  std::string Sub; ///< subcommand label for error messages
  std::string TracePath;
  std::string MetricsPath;

  /// Returns true when \p Arg was one of ours (value consumed via \p I).
  /// Exits with code 2 on a missing value.
  bool parseFlag(const std::string &Arg, int Argc, char **Argv, int &I) {
    if (Arg != "--trace" && Arg != "--metrics-json")
      return false;
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "%s: error: %s expects a value\n", Sub.c_str(),
                   Arg.c_str());
      std::exit(2);
    }
    (Arg == "--trace" ? TracePath : MetricsPath) = Argv[++I];
    if (Arg == "--trace")
      TraceRecorder::global().enable();
    return true;
  }

  /// Writes the trace / metrics files. Returns false (with a message on
  /// stderr) when a write failed.
  bool finish() const {
    bool Ok = true;
    if (!TracePath.empty() &&
        !TraceRecorder::global().writeChromeTrace(TracePath)) {
      std::fprintf(stderr, "%s: error: cannot write trace file %s\n",
                   Sub.c_str(), TracePath.c_str());
      Ok = false;
    }
    if (!MetricsPath.empty() &&
        !MetricsRegistry::global().writeJson(MetricsPath)) {
      std::fprintf(stderr, "%s: error: cannot write metrics file %s\n",
                   Sub.c_str(), MetricsPath.c_str());
      Ok = false;
    }
    return Ok;
  }

  /// Re-registers `finish` as a signal flush action so an interrupt mid-run
  /// still writes the promised trace/metrics files before the process exits
  /// 128+sig. Call once, after flag parsing (the paths must be final).
  void armSignalFlush() const {
    Observability Copy = *this;
    addSignalFlushAction([Copy] { Copy.finish(); });
  }
};

/// The option's value string, or exit(2) if it is missing.
const char *requireValue(const char *Sub, const char *Flag, int Argc,
                         char **Argv, int &I) {
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "%s: error: %s expects a value\n", Sub, Flag);
    std::exit(2);
  }
  return Argv[++I];
}

/// Uniform `--jobs` parsing for every subcommand: rejects zero, signs,
/// trailing junk, and overflow with one error shape and exit code 2.
unsigned requireJobs(const char *Sub, int Argc, char **Argv, int &I) {
  const char *Value = requireValue(Sub, "--jobs", Argc, Argv, I);
  std::optional<unsigned> Jobs = parseJobsValue(Value);
  if (!Jobs) {
    std::fprintf(stderr,
                 "%s: error: invalid --jobs value '%s' (expected a "
                 "positive integer)\n",
                 Sub, Value);
    std::exit(2);
  }
  return *Jobs;
}

/// Strict unsigned option value (same contract as --jobs but 0 allowed),
/// for campaign sizes and budgets.
uint64_t requireUnsigned(const char *Sub, const char *Flag, int Argc,
                         char **Argv, int &I) {
  const char *Value = requireValue(Sub, Flag, Argc, Argv, I);
  std::optional<uint64_t> V = parseUnsigned64(Value);
  if (!V) {
    std::fprintf(stderr,
                 "%s: error: invalid %s value '%s' (expected a "
                 "non-negative integer)\n",
                 Sub, Flag, Value);
    std::exit(2);
  }
  return *V;
}

int runFuzz(int Argc, char **Argv) {
  const char *Sub = "hyperviper fuzz";
  CampaignConfig Config;
  Observability Obs{Sub, {}, {}};
  std::string CorpusDir;
  std::string ReportPath = "-";

  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Obs.parseFlag(Arg, Argc, Argv, I)) {
    } else if (Arg == "--seeds") {
      Config.NumSeeds =
          static_cast<unsigned>(requireUnsigned(Sub, "--seeds", Argc, Argv, I));
    } else if (Arg == "--base-seed") {
      Config.BaseSeed = requireUnsigned(Sub, "--base-seed", Argc, Argv, I);
    } else if (Arg == "--jobs") {
      Config.Jobs = requireJobs(Sub, Argc, Argv, I);
    } else if (Arg == "--time-budget") {
      Config.TimeBudgetSeconds =
          std::strtod(requireValue(Sub, "--time-budget", Argc, Argv, I),
                      nullptr);
    } else if (Arg == "--target-statements") {
      Config.Gen.TargetStatements = static_cast<unsigned>(
          requireUnsigned(Sub, "--target-statements", Argc, Argv, I));
    } else if (Arg == "--no-concurrency") {
      Config.Gen.EnableConcurrency = false;
    } else if (Arg == "--no-collections") {
      Config.Gen.EnableCollections = false;
    } else if (Arg == "--no-unique-par") {
      Config.Gen.EnableUniquePar = false;
    } else if (Arg == "--no-value-dependent") {
      Config.Gen.EnableValueDependent = false;
    } else if (Arg == "--no-loops") {
      Config.Gen.EnableLoops = false;
    } else if (Arg == "--secure-only") {
      Config.Gen.AllowLeakyOutput = false;
    } else if (Arg == "--no-shrink") {
      Config.ShrinkFindings = false;
    } else if (Arg == "--shrink-budget") {
      Config.Shrink.MaxOracleRuns = static_cast<unsigned>(
          requireUnsigned(Sub, "--shrink-budget", Argc, Argv, I));
    } else if (Arg == "--corpus-dir") {
      CorpusDir = requireValue(Sub, "--corpus-dir", Argc, Argv, I);
    } else if (Arg == "--report") {
      ReportPath = requireValue(Sub, "--report", Argc, Argv, I);
    } else if (Arg == "--inject") {
      const char *Value = requireValue(Sub, "--inject", Argc, Argv, I);
      std::optional<OracleFault> F = oracleFaultByName(Value);
      if (!F) {
        std::fprintf(stderr,
                     "%s: error: unknown fault '%s' (want "
                     "none|accept-all|reject-all)\n",
                     Sub, Value);
        return 2;
      }
      Config.Oracle.Inject = *F;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: hyperviper fuzz [--seeds N] [--base-seed N] [--jobs N]\n"
          "  [--time-budget SEC] [--target-statements N] [--no-concurrency]\n"
          "  [--no-collections] [--no-unique-par] [--no-value-dependent]\n"
          "  [--no-loops] [--secure-only] [--no-shrink] [--shrink-budget N]\n"
          "  [--corpus-dir DIR] [--report FILE|-] "
          "[--inject none|accept-all|reject-all]\n"
          "  [--trace FILE] [--metrics-json FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    }
  }

  Obs.armSignalFlush();
  CampaignReport Report = runCampaign(Config);

  std::string Json = Report.json();
  if (ReportPath == "-") {
    std::fputs(Json.c_str(), stdout);
  } else {
    std::ofstream Out(ReportPath);
    if (!Out) {
      std::fprintf(stderr, "%s: error: cannot write %s\n", Sub,
                   ReportPath.c_str());
      return 2;
    }
    Out << Json;
  }

  if (!CorpusDir.empty()) {
    std::vector<std::string> Paths = writeCorpusFiles(Report, CorpusDir);
    std::fprintf(stderr, "%s: wrote %zu corpus file(s) to %s\n", Sub,
                 Paths.size(), CorpusDir.c_str());
  }

  std::fprintf(stderr,
               "%s: %u seeds run (%u skipped): %u agree, "
               "%u soundness-violation, %u analysis-unsound, "
               "%u completeness-gap, %u cert-invalid, %u flake, "
               "%u generator-invalid; %u statically secure\n",
               Sub, Report.SeedsRun, Report.SeedsSkipped, Report.Agree,
               Report.SoundnessViolations, Report.AnalysisUnsound,
               Report.CompletenessGaps, Report.CertInvalids, Report.Flakes,
               Report.GeneratorInvalids, Report.StaticSecureSeeds);
  if (!Obs.finish())
    return 2;
  return Report.clean() ? 0 : 1;
}

int runAnalyzeCmd(int Argc, char **Argv) {
  const char *Sub = "hyperviper analyze";
  AnalyzeOptions Options;
  Observability Obs{Sub, {}, {}};
  std::vector<std::string> Inputs;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Obs.parseFlag(Arg, Argc, Argv, I)) {
    } else if (Arg == "--jobs") {
      Options.Jobs = requireJobs(Sub, Argc, Argv, I);
    } else if (Arg == "--check") {
      Options.Check = true;
    } else if (Arg == "--write") {
      Options.Write = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper analyze [--jobs N] [--check|--write] "
                  "[--trace FILE] [--metrics-json FILE] file-or-dir ...\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "%s: error: no inputs\n", Sub);
    return 2;
  }
  Obs.armSignalFlush();
  AnalyzeResult R = runAnalyze(Inputs, Options);
  std::fputs(R.str().c_str(), stdout);
  if (!Obs.finish())
    return 2;
  if (Options.Check && !R.Ok) {
    std::fprintf(stderr,
                 "%s: error: report does not match the committed .analysis "
                 "sidecars\n",
                 Sub);
    return 1;
  }
  return 0;
}

int runServe(int Argc, char **Argv) {
  const char *Sub = "hyperviper serve";
  Observability Obs{Sub, {}, {}};
  SessionOptions SessOpts;
  uint64_t Port = 0;
  uint64_t Workers = 2;
  uint64_t MaxQueue = 64;

  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Obs.parseFlag(Arg, Argc, Argv, I)) {
    } else if (Arg == "--port") {
      Port = requireUnsigned(Sub, "--port", Argc, Argv, I);
      if (Port > 65535) {
        std::fprintf(stderr, "%s: error: invalid --port value %llu\n", Sub,
                     static_cast<unsigned long long>(Port));
        return 2;
      }
    } else if (Arg == "--jobs") {
      SessOpts.Jobs = requireJobs(Sub, Argc, Argv, I);
    } else if (Arg == "--triage") {
      SessOpts.Triage = true;
    } else if (Arg == "--workers") {
      Workers = requireUnsigned(Sub, "--workers", Argc, Argv, I);
      if (Workers == 0 || Workers > 256) {
        std::fprintf(stderr, "%s: error: --workers must be 1..256\n", Sub);
        return 2;
      }
    } else if (Arg == "--max-queue") {
      MaxQueue = requireUnsigned(Sub, "--max-queue", Argc, Argv, I);
      if (MaxQueue == 0) {
        std::fprintf(stderr, "%s: error: --max-queue must be positive\n",
                     Sub);
        return 2;
      }
    } else if (Arg == "--max-programs") {
      SessOpts.MaxCachedPrograms = static_cast<size_t>(
          requireUnsigned(Sub, "--max-programs", Argc, Argv, I));
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: hyperviper serve [--port N] [--jobs N] [--triage]\n"
          "  [--workers N] [--max-queue N] [--max-programs N]\n"
          "  [--trace FILE] [--metrics-json FILE]\n"
          "Listens on 127.0.0.1 (--port 0 = ephemeral, printed on stdout)\n"
          "speaking newline-delimited JSON; see DESIGN.md §11 for the\n"
          "protocol. SIGINT/SIGTERM drain in-flight requests, flush\n"
          "trace/metrics sinks, and exit 128+signal.\n");
      return 0;
    } else {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    }
  }

  Server Srv(SessOpts, static_cast<uint16_t>(Port),
             static_cast<unsigned>(Workers), static_cast<size_t>(MaxQueue));
  if (!Srv.start()) {
    std::fprintf(stderr, "%s: error: %s\n", Sub, Srv.error().c_str());
    return 2;
  }
  Obs.armSignalFlush();
  // First signal: graceful drain (run() returns, sinks flush, exit
  // 128+sig below). Second signal while draining: the watcher's hard
  // path flushes and force-exits.
  setGracefulSignalHandler([&Srv](int) { Srv.stop(); });

  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(Srv.port()));
  std::fflush(stdout);
  Srv.run();
  setGracefulSignalHandler({});

  if (!Obs.finish())
    return 2;
  int Sig = consumedSignal();
  return Sig != 0 ? 128 + Sig : 0;
}

/// `hyperviper check-cert <prog.hv> <cert>`: parse and type-check the
/// program, parse the certificate, and re-derive every step with the
/// independent checker. Deliberately bypasses the Driver so no solver or
/// verifier code runs on this path.
int runCheckCert(int Argc, char **Argv) {
  const char *Sub = "hyperviper check-cert";
  std::vector<std::string> Inputs;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper check-cert <prog.hv> <cert>\n"
                  "Re-checks a proof certificate against the program with "
                  "the independent\nchecker (no solver/verifier code). "
                  "Exit 0 = OK, 1 = INVALID, 2 = usage.\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.size() != 2) {
    std::fprintf(stderr, "%s: error: expected <prog.hv> <cert>\n", Sub);
    return 2;
  }
  auto Slurp = [&](const std::string &Path,
                   std::string &Out) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "%s: error: cannot open '%s'\n", Sub,
                   Path.c_str());
      return false;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Out = SS.str();
    return true;
  };
  std::string ProgText, CertText;
  if (!Slurp(Inputs[0], ProgText) || !Slurp(Inputs[1], CertText))
    return 2;

  DiagnosticEngine Diags;
  Program Prog = Parser::parse(ProgText, Diags);
  if (!Diags.hasErrors()) {
    TypeChecker Checker(Prog, Diags);
    Checker.check();
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str(Inputs[0]).c_str());
    std::fprintf(stderr, "%s: error: program does not parse\n", Sub);
    return 2;
  }

  std::string ParseError;
  std::optional<cert::Certificate> C = cert::parse(CertText, &ParseError);
  if (!C) {
    std::printf("%s: INVALID (parse: %s)\n", Inputs[1].c_str(),
                ParseError.c_str());
    return 1;
  }
  cert::CheckResult R = cert::checkCertificate(*C, Prog);
  if (!R.Ok) {
    std::printf("%s: INVALID (%s)\n", Inputs[1].c_str(), R.Error.c_str());
    return 1;
  }
  std::printf("%s: OK\n", Inputs[1].c_str());
  return 0;
}

/// `hyperviper suggest-spec [--spec NAME] [--max N] <prog.hv>`: enumerate
/// candidate abstractions (and `low(arg)` precondition strengthenings) for
/// each resource spec and rank them by what the validity tiers establish —
/// unbounded differencing proofs first. Purely deterministic output.
int runSuggestSpec(int Argc, char **Argv) {
  const char *Sub = "hyperviper suggest-spec";
  std::string OnlySpec;
  SuggestOptions Options;
  std::vector<std::string> Inputs;
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--spec") {
      OnlySpec = requireValue(Sub, "--spec", Argc, Argv, I);
    } else if (Arg == "--max") {
      Options.MaxCandidates = static_cast<unsigned>(
          requireUnsigned(Sub, "--max", Argc, Argv, I));
    } else if (Arg == "--jobs") {
      Options.Jobs = static_cast<unsigned>(
          requireUnsigned(Sub, "--jobs", Argc, Argv, I));
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: hyperviper suggest-spec [--spec NAME] [--max N] "
          "[--jobs N] <prog.hv>\n"
          "Enumerates candidate alpha abstractions for each resource spec\n"
          "(identity, order-forgetting collection views, sizes, component\n"
          "products, the constant abstraction) and candidate `low(arg)`\n"
          "precondition strengthenings, runs the validity tiers on each,\n"
          "and prints them ranked: unbounded differencing proofs first,\n"
          "then bounded-evidence validity. --max 0 lifts the candidate cap;\n"
          "--jobs 0 uses every hardware thread. The report is byte-identical\n"
          "at any job count. Deterministic.\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.size() != 1) {
    std::fprintf(stderr, "%s: error: expected exactly one <prog.hv>\n", Sub);
    return 2;
  }

  std::ifstream In(Inputs[0]);
  if (!In) {
    std::fprintf(stderr, "%s: error: cannot open '%s'\n", Sub,
                 Inputs[0].c_str());
    return 2;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  DiagnosticEngine Diags;
  Program Prog = Parser::parse(SS.str(), Diags);
  if (!Diags.hasErrors()) {
    TypeChecker Checker(Prog, Diags);
    Checker.check();
  }
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str(Inputs[0]).c_str());
    std::fprintf(stderr, "%s: error: program does not parse\n", Sub);
    return 2;
  }
  if (Prog.Specs.empty()) {
    std::fprintf(stderr, "%s: error: program declares no resource specs\n",
                 Sub);
    return 2;
  }

  std::vector<SuggestResult> Results;
  for (const ResourceSpecDecl &Spec : Prog.Specs) {
    if (!OnlySpec.empty() && Spec.Name != OnlySpec)
      continue;
    Results.push_back(suggestSpec(Spec, Prog, Options));
  }
  if (Results.empty()) {
    std::fprintf(stderr, "%s: error: no spec named '%s'\n", Sub,
                 OnlySpec.c_str());
    return 2;
  }
  std::fputs(renderSuggestReport(Prog, Results, Inputs[0]).c_str(), stdout);
  return 0;
}

int runVerify(int Argc, char **Argv) {
  const char *Sub = "hyperviper";
  DriverOptions Options;
  Observability Obs{Sub, {}, {}};
  bool PrintMetrics = false;
  bool Quiet = false;
  std::string NIProc;
  std::string CertPath;
  std::vector<std::string> Inputs;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Obs.parseFlag(Arg, Argc, Argv, I)) {
    } else if (Arg == "--no-validity") {
      Options.Verifier.SkipValidityCheck = true;
    } else if (Arg == "--jobs") {
      Options.Jobs = requireJobs(Sub, Argc, Argv, I);
    } else if (Arg == "--triage") {
      Options.Triage = true;
    } else if (Arg == "--metrics") {
      PrintMetrics = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--ni") {
      NIProc = requireValue(Sub, "--ni", Argc, Argv, I);
    } else if (Arg == "--emit-cert") {
      CertPath = requireValue(Sub, "--emit-cert", Argc, Argv, I);
      Options.Verifier.EmitCert = true;
    } else if (Arg == "--inject") {
      const char *Value = requireValue(Sub, "--inject", Argc, Argv, I);
      if (std::strcmp(Value, "accept-all") == 0) {
        Options.Verifier.ForgeAcceptAll = true;
      } else if (std::strcmp(Value, "absint-unsound") == 0) {
        Options.Verifier.Validity.Absint.InjectUnsound = true;
      } else if (std::strcmp(Value, "none") != 0) {
        std::fprintf(stderr,
                     "%s: error: unknown fault '%s' (want "
                     "none|accept-all|absint-unsound)\n",
                     Sub, Value);
        return 2;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: hyperviper [--no-validity] [--jobs N] [--triage] "
                  "[--metrics] [--quiet] [--ni <proc>]\n"
                  "                  [--emit-cert FILE|-] "
                  "[--inject none|accept-all|absint-unsound]\n"
                  "                  [--trace FILE] [--metrics-json FILE] "
                  "file-or-dir.hv ...\n"
                  "       hyperviper check-cert <prog.hv> <cert>\n"
                  "       hyperviper suggest-spec --help\n"
                  "       hyperviper analyze --help\n"
                  "       hyperviper fuzz --help\n"
                  "       hyperviper serve --help\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "%s: error: unknown option '%s'\n", Sub,
                   Arg.c_str());
      return 2;
    } else {
      Inputs.push_back(Arg);
    }
  }

  if (Inputs.empty()) {
    std::fprintf(stderr, "%s: error: no input files\n", Sub);
    return 2;
  }
  // Directories expand to their `.hv` files in sorted order, matching the
  // analyze verb.
  std::vector<std::pair<std::string, std::string>> Files =
      expandHvInputs(Inputs);
  if (Files.empty()) {
    std::fprintf(stderr, "%s: error: no .hv files in the given inputs\n",
                 Sub);
    return 2;
  }
  if (!CertPath.empty() && Files.size() != 1) {
    std::fprintf(stderr,
                 "%s: error: --emit-cert expects exactly one input file "
                 "(got %zu)\n",
                 Sub, Files.size());
    return 2;
  }

  Obs.armSignalFlush();
  Driver D(Options);
  int Exit = 0;
  for (const auto &[Display, Path] : Files) {
    DriverResult R = D.verifyFile(Path);
    if (!R.Verified) {
      Exit = 1;
      if (!Quiet)
        std::fputs(R.Diags.str(Display).c_str(), stderr);
    }
    std::printf("%s: %s\n", Display.c_str(),
                R.Verified ? "verified" : "REJECTED");
    if (!CertPath.empty()) {
      if (R.Cert.empty()) {
        std::fprintf(stderr,
                     "%s: error: no certificate (file did not parse)\n",
                     Sub);
        Exit = Exit ? Exit : 1;
      } else if (CertPath == "-") {
        std::fputs(R.Cert.c_str(), stdout);
      } else {
        std::ofstream Out(CertPath, std::ios::binary);
        if (!Out || !(Out << R.Cert)) {
          std::fprintf(stderr, "%s: error: cannot write %s\n", Sub,
                       CertPath.c_str());
          return 2;
        }
      }
    }
    if (PrintMetrics && R.ParseOk) {
      std::printf("  LOC %u  Ann. %u  parse %.3fs  validity %.3fs  "
                  "verify %.3fs  total %.3fs\n",
                  R.Metrics.LinesOfCode, R.Metrics.AnnotationLines,
                  R.ParseSeconds, R.ValiditySeconds, R.VerifySeconds,
                  R.totalSeconds());
      if (Options.Triage)
        std::printf("  triage: skipped %u/%zu relational proof(s)  "
                    "analysis %.3fs\n",
                    R.TriageSkipped, R.Verification.Procs.size(),
                    R.AnalysisSeconds);
      const CacheStats &C = R.Verification.SpecCache;
      std::printf("  spec memo: %llu hits  %llu misses  %llu entries  "
                  "%llu evictions\n",
                  static_cast<unsigned long long>(C.hits()),
                  static_cast<unsigned long long>(C.misses()),
                  static_cast<unsigned long long>(C.Entries),
                  static_cast<unsigned long long>(C.Evictions));
    }
    if (!NIProc.empty() && R.ParseOk) {
      NIReport Report = D.runEmpirical(R, NIProc);
      if (Report.secure()) {
        std::printf("  empirical non-interference: no violation in %llu "
                    "runs (%llu pairs)\n",
                    static_cast<unsigned long long>(Report.Runs),
                    static_cast<unsigned long long>(Report.PairsCompared));
        if (PrintMetrics)
          std::printf("  ni memo: %llu hits  %llu misses  %llu entries\n",
                      static_cast<unsigned long long>(Report.Cache.hits()),
                      static_cast<unsigned long long>(Report.Cache.misses()),
                      static_cast<unsigned long long>(Report.Cache.Entries));
      } else {
        std::printf("  empirical non-interference: VIOLATION after %llu "
                    "runs\n%s",
                    static_cast<unsigned long long>(Report.Runs),
                    Report.Violation->describe().c_str());
        Exit = 1;
      }
    }
  }
  if (!Obs.finish())
    return 2;
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  // Before any other thread exists: every thread created from here on
  // inherits the blocked SIGINT/SIGTERM mask, so only the watcher thread
  // ever receives them.
  installSignalWatcher();
  if (Argc > 1 && std::strcmp(Argv[1], "fuzz") == 0)
    return runFuzz(Argc - 2, Argv + 2);
  if (Argc > 1 && std::strcmp(Argv[1], "analyze") == 0)
    return runAnalyzeCmd(Argc - 2, Argv + 2);
  if (Argc > 1 && std::strcmp(Argv[1], "serve") == 0)
    return runServe(Argc - 2, Argv + 2);
  if (Argc > 1 && std::strcmp(Argv[1], "check-cert") == 0)
    return runCheckCert(Argc - 2, Argv + 2);
  if (Argc > 1 && std::strcmp(Argv[1], "suggest-spec") == 0)
    return runSuggestSpec(Argc - 2, Argv + 2);
  return runVerify(Argc, Argv);
}
