#!/usr/bin/env sh
# Regenerate the committed golden certificate sidecars: one `<file>.hv.cert`
# next to every example program (accepted and broken) and every corpus
# witness. Run from anywhere; paths inside the certificates are always
# repo-root-relative ("examples/programs/figure1.hv"), which is what keeps
# the goldens machine-independent — CertGoldenTest and CorpusReplayTest
# reproduce the same names when re-emitting.
#
# Usage: tools/gen_certs.sh [build-dir]
#
# After regenerating, review the diff: golden drift means the certificate
# format changed (fine, commit it) or the verifier started proving
# something different (investigate before committing).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
BIN="$BUILD/tools/hyperviper"

if [ ! -x "$BIN" ]; then
  echo "gen_certs.sh: $BIN not built (cmake --build $BUILD -j)" >&2
  exit 1
fi

cd "$ROOT"

N=0
for F in examples/programs/*.hv examples/programs/broken/*.hv \
         tests/corpus/*.hv; do
  [ -f "$F" ] || continue
  # Verification exit status is part of the program, not an error here:
  # rejected programs get (checkable) rejection certificates.
  "$BIN" --emit-cert "$F.cert" "$F" >/dev/null 2>&1 || true
  if [ ! -s "$F.cert" ]; then
    echo "gen_certs.sh: no certificate emitted for $F" >&2
    exit 1
  fi
  N=$((N + 1))
done
echo "gen_certs.sh: regenerated $N certificates"
