#!/usr/bin/env sh
# Run bench_cert and assemble BENCH_cert.json: the raw google-benchmark
# record plus a computed check-vs-verify speedup summary per example.
#
# Usage: tools/gen_bench_cert.sh [build-dir]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
BIN="$BUILD/bench/bench_cert"

if [ ! -x "$BIN" ]; then
  echo "gen_bench_cert.sh: $BIN not built (cmake --build $BUILD -j --target bench_cert)" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
"$BIN" --benchmark_format=json --benchmark_min_time=0.2 >"$RAW"

python3 - "$RAW" "$ROOT/BENCH_cert.json" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
times = {}
for b in raw["benchmarks"]:
    kind, _, name = b["name"].partition("/")
    times.setdefault(name, {})[kind] = b["real_time"]

ratios = {}
for name, t in sorted(times.items()):
    if "verify" in t and "check" in t and t["check"] > 0:
        ratios[name] = round(t["verify"] / t["check"], 1)

out = {
    "comment": "Certificate economics: checking an emitted proof certificate "
               "(cert parse + independent re-derivation, bench_cert's check/*) "
               "vs producing it (full verify pipeline with --emit-cert, "
               "verify/*), both single-threaded Release. "
               "summary.check_vs_verify_speedup is verify/check wall time per "
               "example; the acceptance bar is orders of magnitude. "
               "Regenerate with tools/gen_bench_cert.sh.",
    "summary": {
        "check_vs_verify_speedup": ratios,
        "min_speedup": min(ratios.values()) if ratios else 0,
        "max_speedup": max(ratios.values()) if ratios else 0,
    },
    "bench": raw,
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
open(sys.argv[2], "a").write("\n")
print("BENCH_cert.json: speedups", ratios)
EOF
