//===-- tests/cert/CertTest.cpp - Certificate format unit tests ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the certificate subsystem: term-pool interning, canonical
/// printing and parsing (including malformed-input rejection), the
/// CheckSolver decision procedure, and — the trust story in miniature —
/// that tampering with any layer of an emitted certificate (digest, query
/// verdicts, spec validity, final verdict) makes the independent checker
/// reject it. The full-corpus round-trip and golden-byte properties live
/// in CertRoundTripTest.cpp and CertGoldenTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"
#include "cert/Check.h"

#include "hyperviper/Driver.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::cert;

namespace {

const char *VerifiedProgram = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
  }
  procedure main(l: int) returns (out: int)
    requires low(l)
    ensures low(out)
  {
    share r: Counter := 0;
    atomic r { perform r.Add(l); }
    out := unshare r;
  }
)";

const char *RejectedProgram =
    "procedure main(h: int) returns (out: int) ensures low(out) "
    "{ out := h; }";

/// Emits a certificate for \p Source and hands back both the parsed
/// document and the type-checked program it certifies.
std::optional<Certificate> emitCert(const char *Source, const char *Name,
                                    std::shared_ptr<Program> &ProgOut,
                                    bool Forge = false,
                                    bool InjectUnsound = false) {
  DriverOptions O;
  O.Verifier.EmitCert = true;
  O.Verifier.ForgeAcceptAll = Forge;
  O.Verifier.Validity.Absint.InjectUnsound = InjectUnsound;
  DriverResult R = Driver(O).verifySource(Source, Name);
  ProgOut = R.Prog;
  if (R.Cert.empty())
    return std::nullopt;
  std::string Err;
  std::optional<Certificate> C = parse(R.Cert, &Err);
  EXPECT_TRUE(C) << Err;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Term pool
//===----------------------------------------------------------------------===//

TEST(TermPoolTest, InterningSharesStructurallyEqualTerms) {
  TermPool P;
  uint32_t Three = P.intConst(3);
  EXPECT_EQ(P.intConst(3), Three);
  EXPECT_NE(P.intConst(4), Three);

  uint32_t X = P.sym(7, "x");
  EXPECT_EQ(P.sym(7, "x"), X);
  uint32_t Sum = P.binary(BinaryOp::Add, X, Three);
  EXPECT_EQ(P.binary(BinaryOp::Add, X, Three), Sum);
  EXPECT_NE(P.binary(BinaryOp::Add, Three, X), Sum); // no AC at intern time
  EXPECT_NE(P.binary(BinaryOp::Sub, X, Three), Sum);
}

TEST(TermPoolTest, MkNotReplicatesArenaNormalization) {
  TermPool P;
  EXPECT_TRUE(P.at(P.mkNot(P.boolConst(true))).isFalse());
  EXPECT_TRUE(P.at(P.mkNot(P.boolConst(false))).isTrue());
  uint32_t X = P.sym(1, "b");
  uint32_t NotX = P.mkNot(X);
  EXPECT_NE(NotX, X);
  EXPECT_EQ(P.mkNot(NotX), X); // double negation strips
  EXPECT_EQ(P.mkNot(X), NotX); // and interns stably
}

//===----------------------------------------------------------------------===//
// Printer / parser
//===----------------------------------------------------------------------===//

namespace {

/// A handcrafted certificate exercising every document feature: both unit
/// kinds, all three fact kinds, eq and truth queries with contexts, an
/// algebraic family, arg counts, and a counterexample.
Certificate sampleCert() {
  Certificate C;
  C.ProgramName = "sample.hv";
  C.ProgramDigest = 0x1234abcd5678ef00ULL;
  C.Verified = false;

  CertSpecUnit S;
  S.Name = "Counter";
  S.Valid = false;
  S.StatesCap = MinStatesCap;
  S.ArgsCap = MinArgsCap;
  S.NumStates = 5;
  S.NumAlphaPairs = 25;
  S.ArgCounts = {{"Add", 5}, {"Reset", 1}};
  S.SampleCount = SampleDraws;
  S.SampleDigest = 0xfeedULL;
  S.Fam = Family::AcUpdate;
  S.FamilyOp = "+";
  S.BoundedChecks = 40;
  CertCE CE;
  CE.P = CertCE::Prop::Commutativity;
  CE.ActionA = "Add";
  CE.ActionB = "Reset";
  S.CE = CE;
  CertAbsSection AS;
  AS.Unbounded = false;
  AS.NumComps = 2;
  AS.Templates = {{"Add", "(pair (+ %arg %g0) %g1)"}};
  CertAbsOb Ob1;
  Ob1.IsPre = true;
  Ob1.ActionA = "Add";
  Ob1.Tree = {"(= %x %x')", "", ""};
  AS.Obligations.push_back(std::move(Ob1));
  CertAbsOb Ob2;
  Ob2.IsPre = false;
  Ob2.ActionA = "Add";
  Ob2.ActionB = "Reset";
  Ob2.Tree = {""};
  AS.Obligations.push_back(std::move(Ob2));
  S.Absint = std::move(AS);
  C.Specs.push_back(std::move(S));

  CertProcUnit P;
  P.Name = "main";
  P.Ok = true;
  uint32_t X = P.Pool.sym(0, "x");
  uint32_t Y = P.Pool.sym(1, "y");
  uint32_t Three = P.Pool.intConst(3);
  P.Facts.push_back({CertFact::Kind::Eq, X, Three, 0});
  P.Facts.push_back({CertFact::Kind::True, P.Pool.boolConst(true), 0, 0});
  P.Facts.push_back({CertFact::Kind::Le, X, Y, -2});
  CertObligation Ob;
  Ob.Label = "postcondition";
  Ob.Ok = true;
  Ob.Queries.push_back({true, X, Three, true, {0, 2}});
  Ob.Queries.push_back(
      {false, P.Pool.binary(BinaryOp::Le, X, Y), 0, true, {2}});
  P.Obligations.push_back(std::move(Ob));
  C.Procs.push_back(std::move(P));
  return C;
}

} // namespace

TEST(CertPrintTest, RoundTripIsStructurallyEqualAndCanonical) {
  Certificate C = sampleCert();
  std::string Text = print(C);
  std::string Err;
  std::optional<Certificate> Back = parse(Text, &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_TRUE(structurallyEqual(C, *Back));
  // Canonical: re-printing the parse reproduces the exact bytes.
  EXPECT_EQ(print(*Back), Text);
}

TEST(CertPrintTest, StructuralEqualitySeesThroughPoolIdLayout) {
  Certificate A = sampleCert();
  Certificate B = sampleCert();
  EXPECT_TRUE(structurallyEqual(A, B));
  B.Procs[0].Facts[2].Bias = -1;
  EXPECT_FALSE(structurallyEqual(A, B));
  B = sampleCert();
  B.Specs[0].SampleDigest ^= 1;
  EXPECT_FALSE(structurallyEqual(A, B));
  B = sampleCert();
  B.Procs[0].Obligations[0].Queries[0].Proved = false;
  EXPECT_FALSE(structurallyEqual(A, B));
  B = sampleCert();
  B.Specs[0].Absint->Templates[0].second = "(+ %arg %g0)";
  EXPECT_FALSE(structurallyEqual(A, B));
  B = sampleCert();
  B.Specs[0].Absint->Obligations[0].Tree[0] = "(= %x %y)";
  EXPECT_FALSE(structurallyEqual(A, B));
}

TEST(CertParseTest, MalformedInputsAreErrorsNotCrashes) {
  std::string Err;
  EXPECT_FALSE(parse("", &Err));
  EXPECT_FALSE(parse("not a certificate", &Err));
  EXPECT_FALSE(parse("(cert", &Err)); // truncated
  std::string Text = print(sampleCert());
  EXPECT_FALSE(parse(Text.substr(0, Text.size() / 2), &Err));
  EXPECT_FALSE(Err.empty());
  // A dangling term back-reference must be caught, not dereferenced.
  EXPECT_FALSE(parse("(cert (name \"x\") (digest 0) (verified 0) "
                     "(proc (name \"p\") (ok 1) (pool) "
                     "(fact true @99)))",
                     &Err));
}

//===----------------------------------------------------------------------===//
// CheckSolver
//===----------------------------------------------------------------------===//

TEST(CheckSolverTest, CongruenceClosurePropagatesThroughOperators) {
  TermPool P;
  CheckSolver S(P);
  uint32_t X = P.sym(0, "x");
  uint32_t Y = P.sym(1, "y");
  uint32_t Fx = P.unary(UnaryOp::Neg, X);
  uint32_t Fy = P.unary(UnaryOp::Neg, Y);
  EXPECT_FALSE(S.provesEq(Fx, Fy));
  S.assumeEq(X, Y);
  EXPECT_TRUE(S.provesEq(Fx, Fy));
  EXPECT_TRUE(S.provesEq(P.binary(BinaryOp::Add, X, X),
                         P.binary(BinaryOp::Add, Y, X)));
}

TEST(CheckSolverTest, DistinctConstantsContradict) {
  TermPool P;
  CheckSolver S(P);
  uint32_t X = P.sym(0, "x");
  S.assumeEq(X, P.intConst(3));
  EXPECT_FALSE(S.inContradiction());
  EXPECT_TRUE(S.provesEq(X, P.intConst(3)));
  EXPECT_FALSE(S.provesEq(X, P.intConst(4)));
  S.assumeEq(X, P.intConst(4));
  EXPECT_TRUE(S.inContradiction());
}

TEST(CheckSolverTest, DifferenceBoundsComposeAcrossTwoFacts) {
  TermPool P;
  CheckSolver S(P);
  uint32_t X = P.sym(0, "x");
  uint32_t Y = P.sym(1, "y");
  uint32_t Z = P.sym(2, "z");
  S.assumeLe(X, Y, 1); // x + 1 <= y
  S.assumeLe(Y, Z, 0); // y <= z
  EXPECT_TRUE(S.provesTrue(P.binary(BinaryOp::Le, X, Z)));
  // Strict comparisons reach the checker only in the arena's normalized
  // shapes: !(z <= x) <=> x + 1 <= z, composed from both facts.
  EXPECT_TRUE(S.provesTrue(P.mkNot(P.binary(BinaryOp::Le, Z, X))));
  EXPECT_FALSE(S.provesTrue(P.binary(BinaryOp::Le, Z, X)));
}

TEST(CheckSolverTest, ProvesTrueOfAssumedAndConstantFormulas) {
  TermPool P;
  CheckSolver S(P);
  EXPECT_TRUE(S.provesTrue(P.boolConst(true)));
  EXPECT_FALSE(S.provesTrue(P.boolConst(false)));
  uint32_t B = P.sym(0, "b");
  EXPECT_FALSE(S.provesTrue(B));
  S.assumeTrue(B);
  EXPECT_TRUE(S.provesTrue(B));
  EXPECT_FALSE(S.provesTrue(P.mkNot(B)));
}

//===----------------------------------------------------------------------===//
// Tamper resistance
//===----------------------------------------------------------------------===//

TEST(CertCheckTest, EmittedCertificatesPassBothVerdicts) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  EXPECT_TRUE(C->Verified);
  CheckResult R = checkCertificate(*C, *Prog);
  EXPECT_TRUE(R.Ok) << R.Error;

  std::shared_ptr<Program> BadProg;
  std::optional<Certificate> B =
      emitCert(RejectedProgram, "bad.hv", BadProg);
  ASSERT_TRUE(B && BadProg);
  EXPECT_FALSE(B->Verified);
  R = checkCertificate(*B, *BadProg);
  EXPECT_TRUE(R.Ok) << R.Error; // a *rejection* certificate also checks
}

TEST(CertCheckTest, TamperedDigestIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  C->ProgramDigest ^= 1;
  EXPECT_FALSE(checkCertificate(*C, *Prog).Ok);
}

TEST(CertCheckTest, TamperedQueryVerdictIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  ASSERT_FALSE(C->Procs.empty());
  bool Flipped = false;
  for (CertProcUnit &P : C->Procs)
    for (CertObligation &Ob : P.Obligations)
      for (CertQuery &Q : Ob.Queries)
        if (!Flipped && Q.Proved) {
          Q.Proved = false; // claim the solver failed where it succeeded
          Flipped = true;
        }
  ASSERT_TRUE(Flipped);
  CheckResult R = checkCertificate(*C, *Prog);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("query"), std::string::npos) << R.Error;
}

TEST(CertCheckTest, TamperedSpecValidityIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  ASSERT_FALSE(C->Specs.empty());
  C->Specs[0].Valid = false; // claim invalid without a counterexample
  EXPECT_FALSE(checkCertificate(*C, *Prog).Ok);
}

TEST(CertCheckTest, ShrunkUniverseCapsAreRejected) {
  // A forged certificate must not be able to weaken its own evidence base
  // by claiming a smaller swept universe than the checker's floors.
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  ASSERT_FALSE(C->Specs.empty());
  C->Specs[0].StatesCap = MinStatesCap - 1;
  EXPECT_FALSE(checkCertificate(*C, *Prog).Ok);
}

TEST(CertCheckTest, TamperedFinalVerdictIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(RejectedProgram, "bad.hv", Prog);
  ASSERT_TRUE(C && Prog);
  C->Verified = true; // units still record the rejection
  EXPECT_FALSE(checkCertificate(*C, *Prog).Ok);
}

TEST(CertCheckTest, ForgedAcceptAllCertificateIsRefuted) {
  // The end-to-end fault-injection contract: --inject accept-all makes the
  // verifier claim this leaky program verified, and the forged certificate
  // it emits cannot survive the independent checker.
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C =
      emitCert(RejectedProgram, "forged.hv", Prog, /*Forge=*/true);
  ASSERT_TRUE(C && Prog);
  EXPECT_TRUE(C->Verified); // the forged claim...
  CheckResult R = checkCertificate(*C, *Prog);
  EXPECT_FALSE(R.Ok) << "checker accepted a forged certificate";
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Differencing-tier evidence
//===----------------------------------------------------------------------===//

TEST(CertCheckTest, UnboundedCertificateIsAcceptedWithNoConcreteChecks) {
  // The flagship claim: the counter spec is proved for the *unbounded*
  // domains, the certificate records the proof, and the checker re-derives
  // and replays it — with the concrete tiers never having run.
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  ASSERT_FALSE(C->Specs.empty());
  ASSERT_TRUE(C->Specs[0].Absint.has_value());
  EXPECT_TRUE(C->Specs[0].Absint->Unbounded);
  EXPECT_EQ(C->Specs[0].BoundedChecks, 0u);
  EXPECT_EQ(C->Specs[0].RandomChecks, 0u);
  EXPECT_FALSE(C->Specs[0].Absint->Templates.empty());
  CheckResult R = checkCertificate(*C, *Prog);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(CertCheckTest, InjectedUnsoundTemplateIsRefuted) {
  // The seeded-fault contract for the differencing tier: --inject
  // absint-unsound corrupts the recorded update template after the proof
  // ran, so the verifier's verdict is honest but the certificate's
  // evidence is not — and re-derivation catches it.
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "unsound.hv", Prog,
                                          /*Forge=*/false,
                                          /*InjectUnsound=*/true);
  ASSERT_TRUE(C && Prog);
  ASSERT_FALSE(C->Specs.empty());
  ASSERT_TRUE(C->Specs[0].Absint.has_value());
  CheckResult R = checkCertificate(*C, *Prog);
  EXPECT_FALSE(R.Ok) << "checker accepted a corrupted update template";
  EXPECT_NE(R.Error.find("template"), std::string::npos) << R.Error;
}

TEST(CertCheckTest, TamperedAbsintEvidenceIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  ASSERT_TRUE(C && Prog);
  ASSERT_TRUE(C->Specs[0].Absint.has_value());
  ASSERT_FALSE(C->Specs[0].Absint->Obligations.empty());

  Certificate T = *C;
  T.Specs[0].Absint->NumComps += 1;
  EXPECT_FALSE(checkCertificate(T, *Prog).Ok);

  T = *C; // truncated split tree: structurally malformed, not replayable
  T.Specs[0].Absint->Obligations[0].Tree.clear();
  CheckResult R = checkCertificate(T, *Prog);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("tree"), std::string::npos) << R.Error;

  T = *C; // drop a proof while keeping the unbounded claim
  T.Specs[0].Absint->Obligations.clear();
  EXPECT_FALSE(checkCertificate(T, *Prog).Ok);

  T = *C; // rewrite a template to a constant (hand-rolled unsoundness)
  ASSERT_FALSE(T.Specs[0].Absint->Templates.empty());
  T.Specs[0].Absint->Templates[0].second = "42";
  EXPECT_FALSE(checkCertificate(T, *Prog).Ok);
}

TEST(CertCheckTest, CertificateBoundToOtherProgramIsRejected) {
  std::shared_ptr<Program> Prog;
  std::optional<Certificate> C = emitCert(VerifiedProgram, "ok.hv", Prog);
  std::shared_ptr<Program> Other;
  Driver D;
  ParsedUnit U = D.parseAndCheck(RejectedProgram, "other.hv");
  ASSERT_TRUE(U.Ok);
  ASSERT_TRUE(C && U.Prog);
  EXPECT_FALSE(checkCertificate(*C, *U.Prog).Ok);
}
