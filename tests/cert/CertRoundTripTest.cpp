//===-- tests/cert/CertRoundTripTest.cpp - Printer/parser round trips ------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The printer/parser round-trip property at corpus scale: for every
/// example program (accepted and broken) and for 64 fuzz-generated
/// programs, the emitted certificate parses back structurally equal and
/// re-prints to the exact same bytes (canonical-form fixpoint) — and the
/// parsed document still passes the independent checker, so serialization
/// loses nothing the checker needs.
///
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"
#include "cert/Check.h"

#include "hyperviper/Driver.h"
#include "testgen/ProgramGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// Every example program, accepted and broken, sorted for determinism.
std::vector<std::filesystem::path> examplePrograms() {
  std::vector<std::filesystem::path> Paths;
  const std::filesystem::path Root(COMMCSL_EXAMPLES_DIR);
  for (const auto &Dir : {Root, Root / "broken"})
    for (const auto &DE : std::filesystem::directory_iterator(Dir))
      if (DE.is_regular_file() && DE.path().extension() == ".hv")
        Paths.push_back(DE.path());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

/// One full round trip: emit, parse, compare structure, re-print, compare
/// bytes, and re-check the parsed document independently.
void expectRoundTrip(const std::string &Source, const std::string &Name) {
  DriverOptions O;
  O.Verifier.EmitCert = true;
  DriverResult R = Driver(O).verifySource(Source, Name);
  ASSERT_TRUE(R.ParseOk) << Name;
  ASSERT_FALSE(R.Cert.empty()) << Name;

  std::string Err;
  std::optional<cert::Certificate> C = cert::parse(R.Cert, &Err);
  ASSERT_TRUE(C) << Name << ": " << Err;
  EXPECT_EQ(C->Verified, R.Verified) << Name;
  EXPECT_EQ(cert::print(*C), R.Cert) << Name << ": reprint not canonical";

  std::optional<cert::Certificate> C2 = cert::parse(cert::print(*C), &Err);
  ASSERT_TRUE(C2) << Name << ": " << Err;
  EXPECT_TRUE(cert::structurallyEqual(*C, *C2)) << Name;

  cert::CheckResult CR = cert::checkCertificate(*C, *R.Prog);
  EXPECT_TRUE(CR.Ok) << Name << ": " << CR.Error;
}

} // namespace

TEST(CertRoundTripTest, EveryExampleCertRoundTrips) {
  std::vector<std::filesystem::path> Paths = examplePrograms();
  ASSERT_GE(Paths.size(), 30u) << "example corpus went missing";
  for (const auto &P : Paths)
    expectRoundTrip(slurp(P), P.filename().string());
}

TEST(CertRoundTripTest, FuzzGeneratedCertsRoundTrip) {
  // 64 generator seeds spanning the feature space (concurrency,
  // collections, deliberately leaky outputs). Every generated program —
  // whether the verifier accepts or rejects it — must produce a
  // round-trippable, checkable certificate.
  unsigned Emitted = 0;
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    GenConfig GC;
    GC.Seed = 0x9E3779B97F4A7C15ULL ^ (Seed * 0x100000001B3ULL + Seed);
    GC.AllowLeakyOutput = (Seed % 2) == 0;
    GeneratedProgram GP = generateProgram(GC);
    const std::string Name = "fuzz-" + std::to_string(Seed) + ".hv";
    // Generator output is expected to parse; a failure here is a
    // generator bug and would trip ASSERT inside the round trip.
    expectRoundTrip(GP.Source, Name);
    ++Emitted;
  }
  EXPECT_EQ(Emitted, 64u);
}
