//===-- tests/lang/PrinterTest.cpp - Printer round-trip tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer round-trip property: parse(print(parse(s))) is defined
/// and prints identically (print is a fixed point after one round). Checked
/// over hand-written programs and over the random program generator.
///
//===----------------------------------------------------------------------===//

#include "testgen/ProgramGen.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace commcsl;
using namespace commcsl::test;

namespace {
/// print -> parse -> print must be stable, and the re-parsed program must
/// be structurally identical to the original parse (the AST-level
/// correctness property behind the textual fixpoint).
void expectRoundTrip(const std::string &Source) {
  DiagnosticEngine D1;
  Program P1 = Parser::parse(Source, D1);
  ASSERT_FALSE(D1.hasErrors()) << D1.str() << "\n" << Source;
  std::string Printed1 = P1.str();
  DiagnosticEngine D2;
  Program P2 = Parser::parse(Printed1, D2);
  ASSERT_FALSE(D2.hasErrors()) << D2.str() << "\n" << Printed1;
  EXPECT_EQ(Printed1, P2.str());
  EXPECT_TRUE(structurallyEqual(P1, P2))
      << "parse(print(P)) differs structurally from P for:\n" << Printed1;
}
} // namespace

TEST(PrinterTest, ExprPrinting) {
  ExprRef E = Expr::binary(
      BinaryOp::Add, Expr::var("x"),
      Expr::builtin(BuiltinKind::SeqLen, {Expr::var("s")}));
  EXPECT_EQ(E->str(), "(x + len(s))");
}

TEST(PrinterTest, CommandPrinting) {
  CommandRef C = Command::whileCmd(
      Expr::binary(BinaryOp::Lt, Expr::var("i"), Expr::intLit(5)), {},
      Command::block({Command::assign(
          "i", Expr::binary(BinaryOp::Add, Expr::var("i"),
                            Expr::intLit(1)))}));
  std::string S = C->str();
  EXPECT_NE(S.find("while ((i < 5))"), std::string::npos);
  EXPECT_NE(S.find("i := (i + 1);"), std::string::npos);
}

TEST(PrinterTest, HandWrittenRoundTrips) {
  expectRoundTrip(R"(
    function f(x: int): int = 2 * x;
    resource Counter {
      state: int;
      alpha(v) = v;
      inv(v) = v >= 0;
      shared action Add(a: int) {
        apply(v, a) = v + abs(a);
        requires low(a);
      }
      unique action Drain(a: unit) {
        apply(v, a) = 0;
        returns(v, a) = v;
        enabled(v) = v > 0;
      }
    }
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var x: int := f(l);
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(x); }
      } and {
        atomic r { perform r.Add(1); }
      }
      if (x > 1) { x := x - 1; } else { skip; }
      while (x > 0)
        invariant low(x)
      {
        x := x - 1;
      }
      out := unshare r;
    }
  )");
}

TEST(PrinterTest, ContractAtomsRoundTrip) {
  expectRoundTrip(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure worker(r: resource<Counter>, b: bool, x: int)
      requires low(b) && b ==> low(x)
      requires sguard(r.Add, 1/2, empty)
      ensures sguard(r.Add, 1/2, S) && allpre(r.Add, S)
    {
      atomic r { perform r.Add(0); }
    }
  )");
}

TEST(PrinterTest, ConditionalLevelAndDeclassifyRoundTrip) {
  // The value-dependent classification surface: `level(x) = if g then low
  // else high` contract clauses (requires and ensures side) and the
  // `declassify e` expression, nested and at statement level.
  expectRoundTrip(R"(
    procedure main(consent: bool, metric: int, h: int) returns (out: int)
      requires low(consent)
      requires level(metric) = if consent then low else high
      ensures level(out) = if consent then low else high
    {
      var r: int := 0;
      if (consent) {
        r := metric;
      } else {
        r := declassify(h % 2);
      }
      out := declassify(r + declassify(0));
    }
  )");
}

TEST(PrinterTest, HeapCommandsRoundTrip) {
  expectRoundTrip(R"(
    procedure main() returns (out: int) {
      var p: int := 0;
      var x: int := 0;
      p := alloc(1);
      [p] := 2;
      x := [p];
      assert x == 2;
      out := x;
    }
  )");
}

namespace {
class PrinterGenTest : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(PrinterGenTest, GeneratedProgramsRoundTrip) {
  GenConfig Cfg;
  Cfg.Seed = GetParam() * 101 + 3;
  Cfg.AllowLeakyOutput = true;
  expectRoundTrip(generateProgram(Cfg).Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterGenTest,
                         ::testing::Range<uint64_t>(0, 64));

TEST(PrinterTest, ShippedExamplesRoundTrip) {
  // Every `.hv` program in the example tree (broken/ included — those fail
  // verification, not parsing) survives parse -> print -> parse with
  // structural equality.
  unsigned Checked = 0;
  std::filesystem::path Root(COMMCSL_EXAMPLES_DIR);
  ASSERT_TRUE(std::filesystem::exists(Root)) << Root;
  for (const auto &DE : std::filesystem::recursive_directory_iterator(Root)) {
    if (!DE.is_regular_file() || DE.path().extension() != ".hv")
      continue;
    std::ifstream In(DE.path());
    std::ostringstream OS;
    OS << In.rdbuf();
    SCOPED_TRACE(DE.path().string());
    expectRoundTrip(OS.str());
    ++Checked;
  }
  EXPECT_GT(Checked, 20u);
}
