//===-- tests/lang/DiagnosticLocTest.cpp - Diagnostic location audit -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Audits that every diagnostic the front end emits carries a source
/// location: the caret-snippet renderer (DiagnosticEngine::strWithSnippets)
/// can only point at code when Loc is populated, so an unlocated error or
/// warning is a regression in user experience even when the message itself
/// is right. Each case below provokes a different family of type-checker
/// diagnostics; the parser and lint rules are swept too.
///
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"

#include "parser/Parser.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

/// Parses + type-checks and returns all diagnostics.
DiagnosticEngine diagnose(const std::string &Source) {
  DiagnosticEngine Diags;
  Program Prog = Parser::parse(Source, Diags);
  if (!Diags.hasErrors()) {
    TypeChecker Checker(Prog, Diags);
    Checker.check();
  }
  return Diags;
}

void expectAllLocated(const std::string &Source) {
  DiagnosticEngine Diags = diagnose(Source);
  EXPECT_TRUE(Diags.hasErrors()) << "case no longer errors:\n" << Source;
  for (const Diagnostic &D : Diags.diagnostics())
    EXPECT_TRUE(D.Loc.isValid())
        << "unlocated diagnostic: " << D.Message << "\nfor source:\n"
        << Source;
}

} // namespace

TEST(DiagnosticLocTest, TypeErrorsAreLocated) {
  // Operand type mismatch.
  expectAllLocated("procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{ out := true; }\n");
  // Unknown name.
  expectAllLocated("procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{ out := nosuch; }\n");
  // Duplicate declaration.
  expectAllLocated("procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{ var x: int := 0; var x: int := 1; out := x; }\n");
  // Call arity mismatch.
  expectAllLocated("procedure f(a: int) returns (r: int)\n"
                   "  ensures low(r)\n"
                   "{ r := a; }\n"
                   "procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{ out := call f(); }\n");
  // Resource misuse: perform outside atomic.
  expectAllLocated(
      "resource C { state: int; alpha(v) = v;\n"
      "  shared action A(a: int) { apply(v, a) = v + a; } }\n"
      "procedure main() returns (out: int)\n"
      "  ensures low(out)\n"
      "{ share c: C := 0; perform c.A(1); out := 0; }\n");
  // Unknown resource spec.
  expectAllLocated("procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{ share c: NoSpec := 0; out := 0; }\n");
}

TEST(DiagnosticLocTest, ParseErrorsAreLocated) {
  expectAllLocated("procedure main( { }\n");
  expectAllLocated("procedure main() returns (out: int)\n"
                   "{ out := ; }\n");
}

TEST(DiagnosticLocTest, Utf8ColumnsCountCodePointsNotBytes) {
  // `é` is two bytes (0xC3 0xA9) but one column. The lexer rejects it with
  // an error located at its code-point column, the message carries the
  // whole character (not a lone lead byte), and the caret-snippet renderer
  // pads one cell per code point so the caret lands under the character.
  const std::string Source = "procedure main() returns (out: int)\n"
                             "  ensures low(out)\n"
                             "{ var café: int := 0; }\n";
  DiagnosticEngine Diags = diagnose(Source);
  ASSERT_TRUE(Diags.hasErrors());
  const Diagnostic &D = Diags.diagnostics().front();
  EXPECT_NE(D.Message.find("unexpected character 'é'"), std::string::npos)
      << D.Message;
  EXPECT_EQ(D.Loc.Line, 3u);
  EXPECT_EQ(D.Loc.Column, 10u); // code points: `{ var caf` is 9 cells

  // Golden caret rendering: two-space snippet indent plus nine pads puts
  // the caret exactly under the `é`.
  std::string Rendered = Diags.strWithSnippets(Source, "utf8.hv");
  EXPECT_NE(Rendered.find("  { var café: int := 0; }\n"
                          "           ^\n"),
            std::string::npos)
      << Rendered;
}

TEST(DiagnosticLocTest, ContractDiagnosticsAreLocated) {
  // Ill-typed contract atom.
  expectAllLocated("procedure main(x: int) returns (out: int)\n"
                   "  requires low(x + true)\n"
                   "  ensures low(out)\n"
                   "{ out := 0; }\n");
}
