//===-- tests/lang/TypeCheckerTest.cpp - Type checker matrix ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
/// Wraps an expression into a function returning \p RetTy and checks it.
bool exprChecks(const std::string &Params, const std::string &RetTy,
                const std::string &Body) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(
      "function f(" + Params + "): " + RetTy + " = " + Body + ";", Diags);
  if (Diags.hasErrors())
    return false;
  TypeChecker Checker(P, Diags);
  return Checker.check();
}
} // namespace

//===----------------------------------------------------------------------===//
// Expression typing matrix
//===----------------------------------------------------------------------===//

TEST(TypeCheckerTest, BuiltinTypingPositive) {
  EXPECT_TRUE(exprChecks("s: seq<int>", "int", "len(s)"));
  EXPECT_TRUE(exprChecks("s: seq<int>", "seq<int>", "append(s, 1)"));
  EXPECT_TRUE(exprChecks("s: seq<int>", "mset<int>", "seq_to_mset(s)"));
  EXPECT_TRUE(exprChecks("m: map<int, bool>", "set<int>", "dom(m)"));
  EXPECT_TRUE(exprChecks("m: map<int, bool>", "bool", "map_get(m, 1)"));
  EXPECT_TRUE(
      exprChecks("p: pair<int, seq<bool>>", "seq<bool>", "snd(p)"));
  EXPECT_TRUE(exprChecks("x: int", "pair<int, int>", "pair(x, x + 1)"));
  EXPECT_TRUE(exprChecks("b: bool, x: int", "int", "ite(b, x, 0)"));
  EXPECT_TRUE(exprChecks("s: set<int>", "seq<int>", "set_to_seq(s)"));
  EXPECT_TRUE(exprChecks("s: seq<int>", "seq<int>", "take(drop(s, 1), 2)"));
  EXPECT_TRUE(exprChecks("m: mset<int>", "int", "mset_count(m, 3)"));
}

TEST(TypeCheckerTest, BuiltinTypingNegative) {
  EXPECT_FALSE(exprChecks("s: seq<int>", "int", "len(1)"));
  EXPECT_FALSE(exprChecks("s: seq<int>", "seq<int>", "append(s, true)"));
  EXPECT_FALSE(exprChecks("s: set<int>", "int", "len(s)")); // len is seq-only
  EXPECT_FALSE(exprChecks("m: map<int, bool>", "bool", "map_get(m, true)"));
  EXPECT_FALSE(exprChecks("x: int", "int", "fst(x)"));
  EXPECT_FALSE(exprChecks("b: bool", "int", "ite(b, 1, true)"));
  EXPECT_FALSE(exprChecks("x: int", "int", "x + true"));
  EXPECT_FALSE(exprChecks("x: int", "bool", "x && true"));
  EXPECT_FALSE(exprChecks("s: seq<bool>", "int", "sum(s)"));
}

TEST(TypeCheckerTest, EqualityRequiresMatchingTypes) {
  EXPECT_TRUE(exprChecks("a: seq<int>, b: seq<int>", "bool", "a == b"));
  EXPECT_FALSE(exprChecks("a: seq<int>, b: set<int>", "bool", "a == b"));
}

TEST(TypeCheckerTest, EmptyConstructorsNeedContext) {
  EXPECT_TRUE(exprChecks("x: int", "seq<int>", "append(seq_empty(), x)"));
  // A bare empty constructor with no expected type cannot be inferred.
  EXPECT_FALSE(exprChecks("x: int", "int", "len(seq_empty())"));
}

TEST(TypeCheckerTest, FunctionCallArity) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(R"(
    function f(x: int, y: int): int = x + y;
    function g(z: int): int = f(z);
  )",
                            Diags);
  TypeChecker Checker(P, Diags);
  EXPECT_FALSE(Checker.check());
  EXPECT_TRUE(Diags.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, ForwardFunctionReferenceRejected) {
  DiagnosticEngine D = parseExpectError(R"(
    function g(z: int): int = f(z);
    function f(x: int): int = x;
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

//===----------------------------------------------------------------------===//
// Command / contract rules
//===----------------------------------------------------------------------===//

TEST(TypeCheckerTest, CallResultArityChecked) {
  DiagnosticEngine D = parseExpectError(R"(
    procedure two() returns (a: int, b: int) { a := 1; b := 2; }
    procedure main() {
      var x: int := 0;
      x := call two();
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, CallResultTypesChecked) {
  DiagnosticEngine D = parseExpectError(R"(
    procedure one() returns (a: bool) { a := true; }
    procedure main() {
      var x: int := 0;
      x := call one();
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, ShareInitMustMatchStateType) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := true;
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, UnshareTargetMustMatchStateType) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      var b: bool := false;
      share r: Counter := 0;
      b := unshare r;
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, PerformArgumentTypeChecked) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := 0;
      atomic r { perform r.Add(true); }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, PerformResultNeedsReturnsClause) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      var x: int := 0;
      share r: Counter := 0;
      atomic r { x := perform r.Add(1); }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, ApplyMustReturnStateType) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Bad {
      state: int;
      alpha(v) = v;
      shared action Flip(a: unit) { apply(v, a) = true; }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, HistoryRequiresUniqueWithReturns) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Bad {
      state: seq<int>;
      alpha(v) = v;
      shared action App(a: int) {
        apply(v, a) = append(v, a);
        history(v) = v;
      }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::SpecIllFormed));
}

TEST(TypeCheckerTest, GuardsNotAllowedInActionPreconditions) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Bad {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires sguard(r.Add, 1/2, empty);
      }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::SpecIllFormed));
}

TEST(TypeCheckerTest, NestedAtomicRejected) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := 0;
      atomic r { atomic r { perform r.Add(1); } }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, AtomicWhenNamesKnownAction) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := 0;
      atomic r when Sub { perform r.Add(1); }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::UnknownName));
}

TEST(TypeCheckerTest, DuplicateTopLevelNamesRejected) {
  DiagnosticEngine D = parseExpectError(R"(
    procedure main() { skip; }
    procedure main() { skip; }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::DuplicateName));
}

TEST(TypeCheckerTest, DuplicateActionNamesRejected) {
  DiagnosticEngine D = parseExpectError(R"(
    resource R1 {
      state: int;
      alpha(v) = v;
      shared action A(a: int) { apply(v, a) = v + a; }
      unique action A(a: int) { apply(v, a) = v - a; }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::DuplicateName));
}

TEST(TypeCheckerTest, ResourceHandlesAreTyped) {
  // Passing the wrong resource type to a procedure is a type error.
  DiagnosticEngine D = parseExpectError(R"(
    resource A {
      state: int;
      alpha(v) = v;
      shared action X(a: int) { apply(v, a) = v + a; }
    }
    resource B {
      state: int;
      alpha(v) = v;
      shared action Y(a: int) { apply(v, a) = v + a; }
    }
    procedure useA(r: resource<A>) { skip; }
    procedure main() {
      share rb: B := 0;
      call useA(rb);
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(TypeCheckerTest, TypePrinting) {
  EXPECT_EQ(Type::map(Type::intTy(), Type::pair(Type::boolTy(),
                                                Type::seq(Type::intTy())))
                ->str(),
            "map<int, pair<bool, seq<int>>>");
  EXPECT_EQ(Type::resource("Counter")->str(), "resource<Counter>");
}

TEST(TypeCheckerTest, DefaultValuesMatchTypes) {
  EXPECT_EQ(Type::intTy()->defaultValue()->getInt(), 0);
  EXPECT_FALSE(Type::boolTy()->defaultValue()->getBool());
  EXPECT_TRUE(Type::seq(Type::intTy())->defaultValue()->elems().empty());
  ValueRef P = Type::pair(Type::intTy(), Type::boolTy())->defaultValue();
  EXPECT_EQ(P->elems()[0]->getInt(), 0);
}
