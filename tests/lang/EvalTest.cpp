//===-- tests/lang/EvalTest.cpp - Expression evaluation tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/ExprEval.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
/// Parses a function `f` with the given parameters/body and evaluates it.
ValueRef evalFunc(const std::string &Decl, const EvalEnv &Env) {
  Program P = parseChecked(Decl);
  EXPECT_EQ(P.Funcs.size(), 1u);
  ExprEvaluator Eval(&P);
  return Eval.eval(*P.Funcs[0].Body, Env);
}
} // namespace

TEST(EvalTest, Arithmetic) {
  ValueRef R = evalFunc("function f(x: int): int = 2 * x + 1;",
                        {{"x", iv(20)}});
  EXPECT_EQ(R->getInt(), 41);
}

TEST(EvalTest, ShortCircuitAnd) {
  // Division is total, but short-circuiting is still observable through
  // side-effect-free totality: (false && ...) is false.
  ValueRef R = evalFunc("function f(x: int): bool = x > 0 && 10 / x > 1;",
                        {{"x", iv(0)}});
  EXPECT_FALSE(R->getBool());
}

TEST(EvalTest, Implication) {
  ValueRef R = evalFunc("function f(x: int): bool = x > 5 ==> x > 3;",
                        {{"x", iv(1)}});
  EXPECT_TRUE(R->getBool());
}

TEST(EvalTest, IteShortCircuits) {
  ValueRef R = evalFunc(
      "function f(s: seq<int>): int = ite(len(s) > 0, head(s), -1);",
      {{"s", sv({})}});
  EXPECT_EQ(R->getInt(), -1);
}

TEST(EvalTest, PartialBuiltinsTotalizedWithDefaults) {
  // Out-of-range `at` on seq<int> yields int default 0.
  ValueRef R = evalFunc("function f(s: seq<int>): int = at(s, 5);",
                        {{"s", sv({1, 2})}});
  EXPECT_EQ(R->getInt(), 0);
  // map_get on absent key yields the value type's default.
  ValueRef R2 = evalFunc(
      "function f(m: map<int, bool>): bool = map_get(m, 3);",
      {{"m", ValueFactory::emptyMap()}});
  EXPECT_FALSE(R2->getBool());
}

TEST(EvalTest, UserFunctionInlining) {
  Program P = parseChecked(R"(
    function double(x: int): int = 2 * x;
    function quad(x: int): int = double(double(x));
  )");
  ExprEvaluator Eval(&P);
  EvalEnv Env{{"x", iv(3)}};
  EXPECT_EQ(Eval.eval(*P.Funcs[1].Body, Env)->getInt(), 12);
}

TEST(EvalTest, DataStructurePipeline) {
  // sort(set_to_seq(dom(map))) — the Fig. 3 output expression.
  ValueRef M = ValueFactory::map({{iv(3), iv(30)}, {iv(1), iv(10)}});
  ValueRef R = evalFunc(
      "function f(m: map<int, int>): seq<int> = sort(set_to_seq(dom(m)));",
      {{"m", M}});
  EXPECT_EQ(R->str(), "[1, 3]");
}

TEST(EvalTest, TakeDrop) {
  ValueRef R = evalFunc("function f(s: seq<int>): seq<int> = take(s, 2);",
                        {{"s", sv({5, 6, 7})}});
  EXPECT_EQ(R->str(), "[5, 6]");
  ValueRef R2 = evalFunc("function f(s: seq<int>): seq<int> = drop(s, 2);",
                         {{"s", sv({5, 6, 7})}});
  EXPECT_EQ(R2->str(), "[7]");
  // Clamping.
  ValueRef R3 = evalFunc("function f(s: seq<int>): seq<int> = take(s, 9);",
                         {{"s", sv({5})}});
  EXPECT_EQ(R3->str(), "[5]");
}

TEST(EvalTest, UnboundVariableDefaults) {
  // Total expression semantics: unbound variables read their default.
  ValueRef R = evalFunc("function f(x: int): int = x + 1;", {});
  EXPECT_EQ(R->getInt(), 1);
}

TEST(EvalTest, EvaluationIsDeterministic) {
  Program P = parseChecked(
      "function f(s: seq<int>): int = sum(s) * mean(s) + len(s);");
  ExprEvaluator Eval(&P);
  EvalEnv Env{{"s", sv({4, 5, 6})}};
  ValueRef A = Eval.eval(*P.Funcs[0].Body, Env);
  ValueRef B = Eval.eval(*P.Funcs[0].Body, Env);
  EXPECT_TRUE(Value::equal(A, B));
}
