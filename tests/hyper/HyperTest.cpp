//===-- tests/hyper/HyperTest.cpp - NI harness & product tests -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyper/NonInterference.h"

#include "lang/TypeChecker.h"
#include "product/Product.h"
#include "sem/Scheduler.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

//===----------------------------------------------------------------------===//
// Empirical non-interference harness
//===----------------------------------------------------------------------===//

TEST(HyperTest, ContractDrivesLowClassification) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int, l2: bool) returns (a: int, b: int)
      requires low(l) && low(l2)
      ensures low(a)
    {
      a := l;
      b := h;
    }
  )");
  NonInterferenceHarness H(P, "main");
  EXPECT_EQ(H.lowParams(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(H.lowReturns(), (std::vector<size_t>{0}));
}

TEST(HyperTest, SecureSequentialProgramPasses) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := l * l + 1;
    }
  )");
  NonInterferenceHarness H(P, "main");
  NIReport R = H.run();
  EXPECT_TRUE(R.secure()) << R.Violation->describe();
  EXPECT_GT(R.PairsCompared, 0u);
}

TEST(HyperTest, DirectLeakIsFound) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := h;
    }
  )");
  NonInterferenceHarness H(P, "main");
  NIReport R = H.run();
  ASSERT_FALSE(R.secure());
  EXPECT_EQ(R.Violation->Kind, "low-output mismatch");
}

TEST(HyperTest, InternalTimingLeakIsFound) {
  // Fig. 1 with a small loop bound so the default input domain straddles it.
  Program P = parseChecked(R"(
    resource Cell {
      state: int;
      alpha(v) = 0;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
    procedure main(h: int) returns (s: int)
      ensures low(s)
    {
      var t1: int := 0;
      var t2: int := 0;
      share r: Cell := 0;
      par {
        while (t1 < 3) { t1 := t1 + 1; }
        atomic r { perform r.SetL(unit); }
      } and {
        while (t2 < h) { t2 := t2 + 1; }
        atomic r { perform r.SetR(unit); }
      }
      s := unshare r;
    }
  )");
  // NOTE: this program does NOT verify (s is the raced value); the harness
  // must find the leak dynamically.
  NIConfig Cfg;
  Cfg.InputScope.IntHi = 8;
  NonInterferenceHarness H(P, "main", Cfg);
  NIReport R = H.run();
  ASSERT_FALSE(R.secure());
  EXPECT_EQ(R.Violation->Kind, "low-output mismatch");
}

TEST(HyperTest, CommutingVariantIsSecure) {
  Program P = parseChecked(R"(
    resource Cell {
      state: int;
      alpha(v) = v;
      unique action AddL(a: unit) { apply(v, a) = v + 3; }
      unique action AddR(a: unit) { apply(v, a) = v + 4; }
    }
    procedure main(h: int) returns (s: int)
      ensures low(s)
    {
      var t1: int := 0;
      var t2: int := 0;
      share r: Cell := 0;
      par {
        while (t1 < 3) { t1 := t1 + 1; }
        atomic r { perform r.AddL(unit); }
      } and {
        while (t2 < h) { t2 := t2 + 1; }
        atomic r { perform r.AddR(unit); }
      }
      s := unshare r;
    }
  )");
  NIConfig Cfg;
  Cfg.InputScope.IntHi = 8;
  NonInterferenceHarness H(P, "main", Cfg);
  NIReport R = H.run();
  EXPECT_TRUE(R.secure()) << R.Violation->describe();
}

TEST(HyperTest, CustomTrialGenerator) {
  Program P = parseChecked(R"(
    procedure main(a: seq<int>, n: int) returns (out: int)
      requires low(a) && low(n) && n == len(a)
      ensures low(out)
    {
      out := sum(a) + n;
    }
  )");
  NIConfig Cfg;
  Cfg.TrialGen = [](std::mt19937_64 &Rng) {
    std::uniform_int_distribution<int64_t> D(0, 3);
    int64_t N = D(Rng);
    std::vector<ValueRef> Elems;
    for (int64_t I = 0; I < N; ++I)
      Elems.push_back(ValueFactory::intV(D(Rng)));
    ValueRef Seq = ValueFactory::seq(Elems);
    return std::vector<std::vector<ValueRef>>{
        {Seq, ValueFactory::intV(N)}, {Seq, ValueFactory::intV(N)}};
  };
  NonInterferenceHarness H(P, "main", Cfg);
  NIReport R = H.run();
  EXPECT_TRUE(R.secure()) << R.Violation->describe();
}

TEST(HyperTest, ReportIsIdenticalAcrossJobCounts) {
  // Per-trial seed derivation (splitmix64(Seed, Trial)) makes the sweep's
  // outcome a pure function of the config: running the trials on 1, 2, or 8
  // workers must produce the same counts and the same verdict.
  auto RunWith = [](const char *Source, unsigned Jobs) {
    Program P = parseChecked(Source);
    NIConfig Cfg;
    Cfg.InputScope.IntHi = 8;
    Cfg.Trials = 6;
    Cfg.Jobs = Jobs;
    NonInterferenceHarness H(P, "main", Cfg);
    return H.run();
  };

  const char *Secure = R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := l * l + 1;
    }
  )";
  const char *Leaky = R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := h;
    }
  )";

  for (const char *Source : {Secure, Leaky}) {
    NIReport Seq = RunWith(Source, 1);
    for (unsigned Jobs : {2u, 8u}) {
      NIReport Par = RunWith(Source, Jobs);
      EXPECT_EQ(Par.secure(), Seq.secure()) << "Jobs=" << Jobs;
      EXPECT_EQ(Par.Runs, Seq.Runs) << "Jobs=" << Jobs;
      EXPECT_EQ(Par.PairsCompared, Seq.PairsCompared) << "Jobs=" << Jobs;
      if (!Seq.secure() && !Par.secure()) {
        EXPECT_EQ(Par.Violation->describe(), Seq.Violation->describe())
            << "Jobs=" << Jobs;
      }
    }
  }
}

TEST(HyperTest, ReportIsIdenticalWithAndWithoutMemoization) {
  // Spec-evaluation memoization caches pure functions, so the report must
  // be bit-identical with the cache on or off, sequential or parallel —
  // only the diagnostic cache counters may differ.
  const char *Source = R"(
    resource Cell {
      state: int;
      alpha(v) = v;
      unique action AddL(a: unit) { apply(v, a) = v + 3; }
      unique action AddR(a: unit) { apply(v, a) = v + 4; }
    }
    procedure main(h: int) returns (s: int)
      ensures low(s)
    {
      var t: int := 0;
      share r: Cell := 0;
      par {
        atomic r { perform r.AddL(unit); }
      } and {
        while (t < h) { t := t + 1; }
        atomic r { perform r.AddR(unit); }
      }
      s := unshare r;
    }
  )";
  auto RunWith = [&](bool Memo, unsigned Jobs) {
    Program P = parseChecked(Source);
    NIConfig Cfg;
    Cfg.InputScope.IntHi = 6;
    Cfg.Trials = 4;
    Cfg.Jobs = Jobs;
    Cfg.MemoizeSpecEval = Memo;
    NonInterferenceHarness H(P, "main", Cfg);
    return H.run();
  };
  NIReport Ref = RunWith(false, 1);
  EXPECT_EQ(Ref.Cache.hits() + Ref.Cache.misses(), 0u);
  for (bool Memo : {false, true}) {
    for (unsigned Jobs : {1u, 8u}) {
      NIReport R = RunWith(Memo, Jobs);
      EXPECT_EQ(R.secure(), Ref.secure())
          << "Memo=" << Memo << " Jobs=" << Jobs;
      EXPECT_EQ(R.Runs, Ref.Runs) << "Memo=" << Memo << " Jobs=" << Jobs;
      EXPECT_EQ(R.PairsCompared, Ref.PairsCompared)
          << "Memo=" << Memo << " Jobs=" << Jobs;
      if (!Ref.secure() && !R.secure()) {
        EXPECT_EQ(R.Violation->describe(), Ref.Violation->describe())
            << "Memo=" << Memo << " Jobs=" << Jobs;
      }
      if (Memo) {
        EXPECT_GT(R.Cache.hits() + R.Cache.misses(), 0u)
            << "memoized sweep never consulted the cache";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Self-composition product (product/)
//===----------------------------------------------------------------------===//

namespace {
RunResult runProduct(Program &Product, const std::string &Proc,
                     std::vector<ValueRef> Args) {
  DiagnosticEngine Diags;
  TypeChecker Checker(Product, Diags);
  EXPECT_TRUE(Checker.check()) << Diags.str();
  Interpreter Interp(Product);
  RoundRobinScheduler Sched;
  return Interp.run(Proc, Args, Sched);
}
} // namespace

TEST(ProductTest, SecureProgramProductNeverAborts) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var acc: int := 0;
      var i: int := 0;
      while (i < l % 5 + 1) {
        acc := acc + 2;
        i := i + 1;
      }
      out := acc;
    }
  )");
  DiagnosticEngine Diags;
  auto Product = buildSelfComposition(P, "main", Diags);
  ASSERT_TRUE(Product.has_value()) << Diags.str();
  // Same low input, different highs: the trailing asserts must pass.
  RunResult R = runProduct(*Product, "main$prod",
                           {iv(3), iv(7), iv(3), iv(99)});
  EXPECT_TRUE(R.ok()) << R.AbortReason;
  // Copy 1 and copy 2 outputs agree.
  EXPECT_TRUE(Value::equal(R.Returns[0], R.Returns[1]));
}

TEST(ProductTest, LeakyProgramProductAborts) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := h;
    }
  )");
  DiagnosticEngine Diags;
  auto Product = buildSelfComposition(P, "main", Diags);
  ASSERT_TRUE(Product.has_value()) << Diags.str();
  RunResult R = runProduct(*Product, "main$prod",
                           {iv(3), iv(7), iv(3), iv(99)});
  EXPECT_EQ(R.St, RunResult::Status::Abort); // the postcondition assert
}

TEST(ProductTest, ConditionalLowTranslation) {
  Program P = parseChecked(R"(
    procedure main(b: bool, x: int) returns (out: int)
      requires low(b) && b ==> low(x)
      ensures b ==> low(out)
    {
      out := x * 2;
    }
  )");
  DiagnosticEngine Diags;
  auto Product = buildSelfComposition(P, "main", Diags);
  ASSERT_TRUE(Product.has_value()) << Diags.str();
  // b false: x may differ, out may differ, the guarded assert is vacuous.
  RunResult R = runProduct(*Product, "main$prod",
                           {bv(false), iv(1), bv(false), iv(9)});
  EXPECT_TRUE(R.ok()) << R.AbortReason;
  // b true with equal x: fine.
  RunResult R2 = runProduct(*Product, "main$prod",
                            {bv(true), iv(4), bv(true), iv(4)});
  EXPECT_TRUE(R2.ok()) << R2.AbortReason;
}

TEST(ProductTest, ConcurrencyIsRejected) {
  Program P = parseChecked(R"(
    procedure main() returns (out: int)
      ensures low(out)
    {
      var a: int := 0;
      var b: int := 0;
      par { a := 1; } and { b := 2; }
      out := a + b;
    }
  )");
  DiagnosticEngine Diags;
  auto Product = buildSelfComposition(P, "main", Diags);
  EXPECT_FALSE(Product.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ProductTest, RenameExprSuffixesVariables) {
  ExprRef E = Expr::binary(BinaryOp::Add, Expr::var("x"),
                           Expr::intLit(1));
  ExprRef R = renameExpr(*E, 2);
  EXPECT_EQ(R->str(), "(x$2 + 1)");
}
