//===-- tests/common/TestUtil.h - Shared test helpers -----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_TESTS_TESTUTIL_H
#define COMMCSL_TESTS_TESTUTIL_H

#include "lang/Program.h"
#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "support/Diagnostics.h"
#include "value/Value.h"

#include <gtest/gtest.h>

namespace commcsl {
namespace test {

/// Parses and type-checks a source program; fails the current test on any
/// diagnostic error.
inline Program parseChecked(const std::string &Source) {
  DiagnosticEngine Diags;
  Program Prog = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  TypeChecker Checker(Prog, Diags);
  Checker.check();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

/// Parses and type-checks, expecting at least one error; returns the
/// diagnostics for inspection.
inline DiagnosticEngine parseExpectError(const std::string &Source) {
  DiagnosticEngine Diags;
  Program Prog = Parser::parse(Source, Diags);
  if (!Diags.hasErrors()) {
    TypeChecker Checker(Prog, Diags);
    Checker.check();
  }
  EXPECT_TRUE(Diags.hasErrors()) << "expected a diagnostic for:\n" << Source;
  return Diags;
}

/// Shorthand value constructors for tests.
inline ValueRef iv(int64_t V) { return ValueFactory::intV(V); }
inline ValueRef bv(bool V) { return ValueFactory::boolV(V); }
inline ValueRef pv(ValueRef A, ValueRef B) {
  return ValueFactory::pair(std::move(A), std::move(B));
}
inline ValueRef sv(std::vector<int64_t> Xs) {
  std::vector<ValueRef> Elems;
  for (int64_t X : Xs)
    Elems.push_back(iv(X));
  return ValueFactory::seq(std::move(Elems));
}
inline ValueRef msv(std::vector<int64_t> Xs) {
  std::vector<ValueRef> Elems;
  for (int64_t X : Xs)
    Elems.push_back(iv(X));
  return ValueFactory::multiset(std::move(Elems));
}
inline ValueRef setv(std::vector<int64_t> Xs) {
  std::vector<ValueRef> Elems;
  for (int64_t X : Xs)
    Elems.push_back(iv(X));
  return ValueFactory::set(std::move(Elems));
}

} // namespace test
} // namespace commcsl

#endif // COMMCSL_TESTS_TESTUTIL_H
