//===-- tests/hyperviper/CliTest.cpp - hyperviper CLI contract tests -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the installed `hyperviper` binary (path injected as
/// COMMCSL_HYPERVIPER_BIN): the unified `--jobs` contract across the
/// verify / analyze / fuzz subcommands, and the observability flags —
/// `--trace` emits Chrome trace-event JSON, `--metrics-json` emits a
/// registry dump whose "counts" object is identical at any job count.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct CmdResult {
  int Exit = -1;
  std::string Output; ///< stdout + stderr, interleaved
};

/// Runs \p Args under the shell with stderr folded into stdout.
CmdResult run(const std::string &Args) {
  std::string Cmd = std::string(COMMCSL_HYPERVIPER_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  CmdResult R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "hyperviper-cli-" + Name;
}

std::string example(const std::string &Name) {
  return std::string(COMMCSL_EXAMPLES_DIR) + "/" + Name;
}

/// The `"counts"` object of a metrics export — the part contracted to be
/// identical at every `--jobs` setting.
std::string countsSection(const std::string &Json) {
  size_t Begin = Json.find("\"counts\"");
  size_t End = Json.find("\"timings\"");
  EXPECT_NE(Begin, std::string::npos);
  EXPECT_NE(End, std::string::npos);
  return Json.substr(Begin, End - Begin);
}

} // namespace

TEST(CliJobsTest, VerifyRejectsBadJobsValues) {
  for (const char *Bad : {"4x", "0", "-2", "+4", "abc", "4294967296"}) {
    CmdResult R = run(std::string("--jobs ") + Bad + " " +
                      example("figure1.hv"));
    EXPECT_EQ(R.Exit, 2) << Bad;
    EXPECT_NE(R.Output.find(std::string("invalid --jobs value '") + Bad),
              std::string::npos)
        << R.Output;
  }
}

TEST(CliJobsTest, AnalyzeRejectsBadJobsValues) {
  for (const char *Bad : {"4x", "0", "-2"}) {
    CmdResult R = run(std::string("analyze --jobs ") + Bad + " " +
                      example("figure1.hv"));
    EXPECT_EQ(R.Exit, 2) << Bad;
    EXPECT_NE(R.Output.find(std::string("invalid --jobs value '") + Bad),
              std::string::npos)
        << R.Output;
  }
}

TEST(CliJobsTest, FuzzRejectsBadJobsValues) {
  for (const char *Bad : {"4x", "0", "-2"}) {
    CmdResult R = run(std::string("fuzz --seeds 1 --jobs ") + Bad);
    EXPECT_EQ(R.Exit, 2) << Bad;
    EXPECT_NE(R.Output.find(std::string("invalid --jobs value '") + Bad),
              std::string::npos)
        << R.Output;
  }
}

TEST(CliJobsTest, MissingJobsValueIsAnError) {
  EXPECT_EQ(run("--jobs").Exit, 2);
  EXPECT_EQ(run("analyze --jobs").Exit, 2);
  EXPECT_EQ(run("fuzz --jobs").Exit, 2);
}

TEST(CliJobsTest, ValidJobsValueAcceptedEverywhere) {
  EXPECT_EQ(run("--quiet --jobs 2 " + example("figure1.hv")).Exit, 0);
  EXPECT_EQ(run("analyze --jobs 2 " + example("figure1.hv")).Exit, 0);
  // Fuzz exit reflects the campaign's findings (0 clean, 1 findings);
  // what matters here is that a valid --jobs is not a usage error.
  int FuzzExit = run("fuzz --seeds 2 --jobs 2 --no-shrink --report " +
                     tmpPath("fuzz-jobs.json"))
                     .Exit;
  EXPECT_TRUE(FuzzExit == 0 || FuzzExit == 1) << FuzzExit;
}

TEST(CliObservabilityTest, TraceFlagEmitsChromeTraceJson) {
  std::string Trace = tmpPath("verify.trace.json");
  CmdResult R = run("--quiet --trace " + Trace + " " + example("figure1.hv"));
  EXPECT_EQ(R.Exit, 0) << R.Output;
  std::string Json = slurp(Trace);
  EXPECT_EQ(Json.rfind("{", 0), 0u);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The verify pipeline's phases appear as spans.
  EXPECT_NE(Json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(CliObservabilityTest, MetricsCountsIdenticalAcrossJobCounts) {
  std::string M1 = tmpPath("metrics-j1.json");
  std::string M3 = tmpPath("metrics-j3.json");
  std::string Files = example("figure1.hv") + " " + example("figure2.hv") +
                      " " + example("count_purchases.hv");
  EXPECT_EQ(
      run("--quiet --jobs 1 --metrics-json " + M1 + " " + Files).Exit, 0);
  EXPECT_EQ(
      run("--quiet --jobs 3 --metrics-json " + M3 + " " + Files).Exit, 0);
  std::string A = slurp(M1), B = slurp(M3);
  EXPECT_EQ(countsSection(A), countsSection(B));
  // Both carry a timings object too (whose values legitimately differ).
  EXPECT_NE(A.find("\"timings\""), std::string::npos);
}

TEST(CliObservabilityTest, FuzzMetricsCountsIdenticalAcrossJobCounts) {
  std::string M1 = tmpPath("fuzz-metrics-j1.json");
  std::string M2 = tmpPath("fuzz-metrics-j2.json");
  std::string Common = "fuzz --seeds 6 --base-seed 7 --no-shrink --report ";
  int E1 = run(Common + tmpPath("fuzz-r1.json") + " --jobs 1 --metrics-json " +
               M1)
               .Exit;
  int E2 = run(Common + tmpPath("fuzz-r2.json") + " --jobs 2 --metrics-json " +
               M2)
               .Exit;
  EXPECT_EQ(E1, E2); // the campaign verdict itself is jobs-independent
  EXPECT_TRUE(E1 == 0 || E1 == 1) << E1;
  EXPECT_EQ(countsSection(slurp(M1)), countsSection(slurp(M2)));
}

TEST(CliObservabilityTest, CorruptCorpusSeedReportsParseFailure) {
  // End-to-end regression for the `// seed: abc` crash: a corrupt header
  // must be a parse failure, not an uncaught exception.
  std::string Bad = tmpPath("bad-corpus.hv");
  {
    std::ofstream Out(Bad);
    Out << "// fuzz-corpus v1\n// class: soundness-violation\n"
           "// seed: abc\n\nvar x: Int := 0;\n";
  }
  // The corpus parser is only reachable from tests/tools; what must hold
  // here is that the verifier front door treats the file as ordinary
  // (broken) source rather than dying on the malformed header.
  CmdResult R = run(Bad);
  EXPECT_EQ(R.Exit, 1) << R.Output;
  EXPECT_NE(R.Output.find("REJECTED"), std::string::npos) << R.Output;
}

TEST(CliSuggestSpecTest, RanksDeclaredSpecAndFlagsInvalidCandidates) {
  CmdResult R = run("suggest-spec " + example("debt_sum.hv"));
  ASSERT_EQ(R.Exit, 0) << R.Output;
  // The declared abstraction (reveal only the running sum) must rank first
  // with an unbounded proof; the identity abstraction must surface as
  // invalid (it would leak the individual debts).
  EXPECT_NE(R.Output.find("1. alpha(v) = snd(v) [declared] -- valid "
                          "(unbounded)"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("alpha(v) = v -- invalid"), std::string::npos)
      << R.Output;
}

TEST(CliSuggestSpecTest, OutputIsDeterministicAcrossRuns) {
  CmdResult A = run("suggest-spec " + example("sick_employee_names.hv"));
  CmdResult B = run("suggest-spec " + example("sick_employee_names.hv"));
  ASSERT_EQ(A.Exit, 0) << A.Output;
  EXPECT_EQ(A.Output, B.Output);
}

TEST(CliSuggestSpecTest, UsageErrors) {
  EXPECT_EQ(run("suggest-spec").Exit, 2);
  EXPECT_EQ(run("suggest-spec --spec NoSuch " + example("figure1.hv")).Exit,
            2);
  EXPECT_EQ(run("suggest-spec " + example("public_stats.hv")).Exit, 2);
  EXPECT_EQ(run("suggest-spec --help").Exit, 0);
}

TEST(CliSuggestSpecTest, MaxZeroLiftsTheCap) {
  // `--max 0` means no cap: every enumerated candidate is tried and the
  // report is never marked truncated.
  CmdResult R = run("suggest-spec --max 0 " + example("figure1.hv"));
  ASSERT_EQ(R.Exit, 0) << R.Output;
  EXPECT_EQ(R.Output.find("(truncated)"), std::string::npos) << R.Output;
}

TEST(CliSuggestSpecTest, JobsDoNotChangeReportBytes) {
  CmdResult J1 = run("suggest-spec --jobs 1 " + example("figure1.hv"));
  CmdResult J3 = run("suggest-spec --jobs 3 " + example("figure1.hv"));
  ASSERT_EQ(J1.Exit, 0) << J1.Output;
  ASSERT_EQ(J3.Exit, 0) << J3.Output;
  EXPECT_EQ(J1.Output, J3.Output);
}

TEST(CliSuggestSpecTest, MaxTruncatesDeterministically) {
  CmdResult R = run("suggest-spec --max 3 " + example("debt_sum.hv"));
  ASSERT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("tried 3 candidates (truncated)"),
            std::string::npos)
      << R.Output;
}
