//===-- tests/hyperviper/ServeTest.cpp - serve daemon E2E tests ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wire-level tests of `hyperviper serve` (binary path injected as
/// COMMCSL_HYPERVIPER_BIN): the daemon is forked with `--port 0`, its
/// ephemeral port read from the banner line, and clients speak the
/// ndjson protocol over real sockets. The central contract under test:
/// daemon responses are byte-identical to the one-shot CLI's combined
/// stderr+stdout output — cold cache or warm, at any `jobs`, under
/// concurrent clients — plus the backpressure, stats, shutdown, and
/// SIGINT/SIGTERM-flush behaviors.
///
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using commcsl::JsonValue;

namespace {

std::string example(const std::string &Name) {
  return std::string(COMMCSL_EXAMPLES_DIR) + "/" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "hyperviper-serve-" + Name;
}

/// One-shot CLI run with stderr folded into stdout — the byte-identity
/// reference for daemon reports.
std::string cliOutput(const std::string &Args) {
  std::string Cmd = std::string(COMMCSL_HYPERVIPER_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  pclose(P);
  return Out;
}

/// A forked `hyperviper serve` instance. The child's stdout arrives over a
/// pipe so the test can read the ephemeral-port banner race-free.
class ServerProc {
public:
  explicit ServerProc(std::vector<std::string> ExtraArgs = {}) {
    int Fds[2];
    EXPECT_EQ(pipe(Fds), 0);
    Child = fork();
    EXPECT_GE(Child, 0);
    if (Child == 0) {
      dup2(Fds[1], STDOUT_FILENO);
      close(Fds[0]);
      close(Fds[1]);
      std::vector<const char *> Argv = {COMMCSL_HYPERVIPER_BIN, "serve",
                                        "--port", "0"};
      for (const std::string &A : ExtraArgs)
        Argv.push_back(A.c_str());
      Argv.push_back(nullptr);
      execv(COMMCSL_HYPERVIPER_BIN, const_cast<char *const *>(Argv.data()));
      _exit(127);
    }
    close(Fds[1]);
    Out = fdopen(Fds[0], "r");
    EXPECT_NE(Out, nullptr);
    char Banner[256] = {0};
    if (Out && fgets(Banner, sizeof(Banner), Out) != nullptr)
      if (const char *Colon = std::strrchr(Banner, ':'))
        Port = static_cast<uint16_t>(std::atoi(Colon + 1));
    EXPECT_GT(Port, 0) << "no port banner from serve: " << Banner;
  }

  ~ServerProc() {
    if (Child > 0 && !Waited) {
      kill(Child, SIGKILL);
      waitpid(Child, nullptr, 0);
    }
    if (Out)
      fclose(Out);
  }

  /// Waits for the child and returns its exit status (or 128+sig).
  int wait() {
    int Status = 0;
    waitpid(Child, &Status, 0);
    Waited = true;
    if (WIFEXITED(Status))
      return WEXITSTATUS(Status);
    if (WIFSIGNALED(Status))
      return 128 + WTERMSIG(Status);
    return -1;
  }

  void signal(int Sig) { kill(Child, Sig); }

  uint16_t port() const { return Port; }

private:
  pid_t Child = -1;
  bool Waited = false;
  FILE *Out = nullptr;
  uint16_t Port = 0;
};

/// A blocking ndjson client connection.
class Client {
public:
  explicit Client(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    EXPECT_EQ(
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
        << strerror(errno);
  }

  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  void sendLine(const std::string &Line) {
    std::string Data = Line + "\n";
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, 0);
      ASSERT_GT(N, 0) << strerror(errno);
      Off += static_cast<size_t>(N);
    }
  }

  /// Reads one full response line (without the terminator). Empty string
  /// on EOF.
  std::string recvLine() {
    size_t NL;
    while ((NL = Buffer.find('\n')) == std::string::npos) {
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return "";
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
    std::string Line = Buffer.substr(0, NL);
    Buffer.erase(0, NL + 1);
    return Line;
  }

  /// One request/response round trip, parsed.
  JsonValue rpc(const std::string &RequestLine) {
    sendLine(RequestLine);
    std::string Line = recvLine();
    EXPECT_FALSE(Line.empty()) << "connection closed mid-rpc";
    std::string Err;
    std::optional<JsonValue> V = JsonValue::parse(Line, &Err);
    EXPECT_TRUE(V) << Err << " in: " << Line;
    return V ? *V : JsonValue::null();
  }

private:
  int Fd = -1;
  std::string Buffer;
};

std::string verifyLine(int Id, const std::string &Source,
                       const std::string &Name, unsigned Jobs = 0) {
  JsonValue O = JsonValue::object();
  O.set("id", JsonValue::number(static_cast<uint64_t>(Id)));
  O.set("verb", JsonValue::string("verify"));
  O.set("source", JsonValue::string(Source));
  O.set("name", JsonValue::string(Name));
  if (Jobs)
    O.set("jobs", JsonValue::number(static_cast<uint64_t>(Jobs)));
  return O.dump();
}

} // namespace

TEST(ServeTest, VerifyMatchesOneShotCliByteForByte) {
  // Cold cache, warm cache, jobs 1 and jobs 3, verified and rejected
  // inputs: every daemon report must equal the CLI's combined output.
  const std::string OkPath = example("figure1.hv");
  const std::string BadPath = example("broken/guard_dropped.hv");
  const std::string OkSrc = slurp(OkPath);
  const std::string BadSrc = slurp(BadPath);
  const std::string OkExpected = cliOutput("--jobs 1 " + OkPath);
  const std::string BadExpected = cliOutput("--jobs 1 " + BadPath);
  ASSERT_NE(OkExpected.find("verified"), std::string::npos) << OkExpected;
  ASSERT_NE(BadExpected.find("REJECTED"), std::string::npos) << BadExpected;
  // The CLI contract says output is jobs-independent; trust but verify
  // once so the daemon comparison below covers both settings.
  ASSERT_EQ(cliOutput("--jobs 3 " + OkPath), OkExpected);

  ServerProc Server;
  Client C(Server.port());
  int Id = 0;
  for (unsigned Jobs : {1u, 3u, 1u, 3u}) { // cold, then warm, both jobs
    JsonValue R = C.rpc(verifyLine(++Id, OkSrc, OkPath, Jobs));
    EXPECT_TRUE(R.getBool("ok"));
    EXPECT_EQ(R.getU64("exit"), 0u);
    EXPECT_EQ(R.getString("report"), OkExpected) << "jobs " << Jobs;

    JsonValue B = C.rpc(verifyLine(++Id, BadSrc, BadPath, Jobs));
    EXPECT_FALSE(B.getBool("ok"));
    EXPECT_EQ(B.getU64("exit"), 1u);
    EXPECT_EQ(B.getString("report"), BadExpected) << "jobs " << Jobs;
  }
}

TEST(ServeTest, WarmCacheSecondPassIdenticalWithNonzeroHitRate) {
  // producer_consumer's actions carry `enabled` clauses, which the
  // differencing tier leaves to the bounded tiers — so warm requests still
  // have a spec-eval memo to hit (fully abstractly-proved specs skip it).
  const std::string Path = example("producer_consumer.hv");
  const std::string Src = slurp(Path);
  ServerProc Server;
  Client C(Server.port());

  JsonValue Cold = C.rpc(verifyLine(1, Src, Path));
  EXPECT_FALSE(Cold.getBool("program_cache_hit"));
  JsonValue Warm = C.rpc(verifyLine(2, Src, Path));
  EXPECT_TRUE(Warm.getBool("program_cache_hit"));
  EXPECT_EQ(Warm.getString("report"), Cold.getString("report"));
  // The acceptance bar: a warm request actually hits the spec-eval memo.
  ASSERT_NE(Warm.find("cache"), nullptr);
  EXPECT_GT(Warm.find("cache")->getU64("hits"), 0u);

  JsonValue Stats = C.rpc(R"({"id":3,"verb":"stats"})");
  const JsonValue *S = Stats.find("stats");
  ASSERT_NE(S, nullptr);
  ASSERT_NE(S->find("spec_cache"), nullptr);
  EXPECT_GT(S->find("spec_cache")->find("hit_rate")->asDouble(), 0.0);
}

TEST(ServeTest, EmitCertWarmByteIdenticalToColdAndCli) {
  // The third certificate wiring point: a serve request with
  // `"emit_cert": true` returns the proof certificate in a `cert` field,
  // byte-identical warm or cold, at any jobs — and identical to what the
  // one-shot CLI's --emit-cert writes for the same file.
  const std::string Path = example("figure1.hv");
  const std::string Src = slurp(Path);
  const std::string CliCertPath = tmpPath("cli-figure1.cert");
  std::remove(CliCertPath.c_str());
  cliOutput("--jobs 1 --emit-cert " + CliCertPath + " " + Path);
  const std::string CliCert = slurp(CliCertPath);
  ASSERT_FALSE(CliCert.empty());

  auto certLine = [&](int Id, unsigned Jobs) {
    JsonValue O = JsonValue::object();
    O.set("id", JsonValue::number(static_cast<uint64_t>(Id)));
    O.set("verb", JsonValue::string("verify"));
    O.set("source", JsonValue::string(Src));
    O.set("name", JsonValue::string(Path));
    O.set("emit_cert", JsonValue::boolean(true));
    O.set("jobs", JsonValue::number(static_cast<uint64_t>(Jobs)));
    return O.dump();
  };

  ServerProc Server;
  Client C(Server.port());
  JsonValue Cold = C.rpc(certLine(1, 1));
  EXPECT_TRUE(Cold.getBool("ok"));
  EXPECT_FALSE(Cold.getBool("program_cache_hit"));
  const std::string ColdCert = Cold.getString("cert");
  ASSERT_FALSE(ColdCert.empty());
  EXPECT_EQ(ColdCert, CliCert);

  JsonValue Warm = C.rpc(certLine(2, 3));
  EXPECT_TRUE(Warm.getBool("program_cache_hit"));
  EXPECT_EQ(Warm.getString("cert"), ColdCert);

  // Requests without emit_cert carry no cert field.
  JsonValue Plain = C.rpc(verifyLine(3, Src, Path));
  EXPECT_EQ(Plain.find("cert"), nullptr);

  // The daemon's bytes pass the independent checker.
  const std::string DaemonCertPath = tmpPath("daemon-figure1.cert");
  {
    std::ofstream Out(DaemonCertPath);
    Out << ColdCert;
  }
  std::string CheckOut =
      cliOutput("check-cert " + Path + " " + DaemonCertPath);
  EXPECT_NE(CheckOut.find(": OK"), std::string::npos) << CheckOut;
  std::remove(CliCertPath.c_str());
  std::remove(DaemonCertPath.c_str());
}

TEST(ServeTest, ConcurrentClientsGetByteIdenticalResponses) {
  const std::string Path = example("figure1.hv");
  const std::string Src = slurp(Path);
  const std::string Expected = cliOutput("--jobs 1 " + Path);
  ServerProc Server;

  constexpr int Clients = 3;
  constexpr int RequestsPerClient = 3;
  std::vector<std::vector<std::string>> Reports(Clients);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      Client C(Server.port());
      for (int R = 0; R < RequestsPerClient; ++R) {
        JsonValue V = C.rpc(
            verifyLine(I * 100 + R, Src, Path, 1 + (I + R) % 3));
        Reports[I].push_back(V.getString("report"));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < Clients; ++I)
    for (const std::string &R : Reports[I])
      EXPECT_EQ(R, Expected);
}

TEST(ServeTest, BackpressureRejectsWithTypedBusyError) {
  // workers=1, queue=1: pipelining a burst must produce at least one typed
  // `busy` rejection, and every accepted request still completes with the
  // correct report.
  const std::string Path = example("figure1.hv");
  const std::string Src = slurp(Path);
  const std::string Expected = cliOutput("--jobs 1 " + Path);
  ServerProc Server({"--workers", "1", "--max-queue", "1", "--jobs", "1"});
  Client C(Server.port());

  constexpr int Burst = 10;
  for (int I = 0; I < Burst; ++I)
    C.sendLine(verifyLine(I, Src, Path, 1));

  int Busy = 0, Served = 0;
  for (int I = 0; I < Burst; ++I) {
    std::string Line = C.recvLine();
    ASSERT_FALSE(Line.empty());
    std::optional<JsonValue> V = JsonValue::parse(Line);
    ASSERT_TRUE(V) << Line;
    if (const JsonValue *E = V->find("error")) {
      EXPECT_EQ(E->getString("type"), "busy");
      ++Busy;
    } else {
      EXPECT_EQ(V->getString("report"), Expected);
      ++Served;
    }
  }
  EXPECT_GT(Busy, 0) << "burst never tripped backpressure";
  EXPECT_GT(Served, 0);
  EXPECT_EQ(Busy + Served, Burst);
}

TEST(ServeTest, StatsHasGoldenShape) {
  const std::string Path = example("figure1.hv");
  ServerProc Server;
  Client C(Server.port());
  C.rpc(verifyLine(1, slurp(Path), Path));

  JsonValue R = C.rpc(R"({"id":2,"verb":"stats"})");
  EXPECT_TRUE(R.getBool("ok"));
  const JsonValue *S = R.find("stats");
  ASSERT_NE(S, nullptr);
  for (const char *Key :
       {"requests", "queue_depth", "in_flight", "program_cache",
        "spec_cache", "specs_cached", "metrics"})
    EXPECT_NE(S->find(Key), nullptr) << "stats missing " << Key;
  EXPECT_EQ(S->getU64("requests"), 1u);
  const JsonValue *PC = S->find("program_cache");
  for (const char *Key : {"hits", "misses", "programs"})
    EXPECT_NE(PC->find(Key), nullptr) << "program_cache missing " << Key;
  const JsonValue *SC = S->find("spec_cache");
  for (const char *Key : {"alpha_hits", "alpha_misses", "action_hits",
                          "action_misses", "hits", "misses", "entries",
                          "evictions", "hit_rate"})
    EXPECT_NE(SC->find(Key), nullptr) << "spec_cache missing " << Key;
  // The metrics splice is the registry's own counts/timings export.
  const JsonValue *M = S->find("metrics");
  EXPECT_NE(M->find("counts"), nullptr);
  EXPECT_NE(M->find("timings"), nullptr);
}

TEST(ServeTest, MalformedAndUnknownRequestsGetTypedErrors) {
  ServerProc Server;
  Client C(Server.port());
  JsonValue Bad = C.rpc("this is not json");
  ASSERT_NE(Bad.find("error"), nullptr);
  EXPECT_EQ(Bad.find("error")->getString("type"), "bad-request");

  JsonValue Unknown = C.rpc(R"({"id":1,"verb":"frobnicate"})");
  ASSERT_NE(Unknown.find("error"), nullptr);
  EXPECT_EQ(Unknown.find("error")->getString("type"), "unknown-verb");
  EXPECT_EQ(Unknown.getU64("id"), 1u); // errors still echo the id

  JsonValue NoSource = C.rpc(R"({"id":2,"verb":"verify"})");
  ASSERT_NE(NoSource.find("error"), nullptr);
  EXPECT_EQ(NoSource.find("error")->getString("type"), "bad-request");
}

TEST(ServeTest, ShutdownVerbDrainsAndExitsZero) {
  ServerProc Server;
  Client C(Server.port());
  JsonValue R = C.rpc(R"({"id":1,"verb":"shutdown"})");
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_EQ(Server.wait(), 0);
}

TEST(ServeTest, SigtermFlushesSinksAndExits143) {
  const std::string Metrics = tmpPath("sigterm-metrics.json");
  const std::string Trace = tmpPath("sigterm-trace.json");
  std::remove(Metrics.c_str());
  std::remove(Trace.c_str());
  ServerProc Server(
      {"--metrics-json", Metrics, "--trace", Trace});
  {
    // Real work first, so the flushed registry is nonempty.
    Client C(Server.port());
    const std::string Path = example("figure1.hv");
    C.rpc(verifyLine(1, slurp(Path), Path));
  }
  Server.signal(SIGTERM);
  EXPECT_EQ(Server.wait(), 143); // 128 + SIGTERM

  // The interrupt/flush contract (the bug this PR fixes): both sinks are
  // written even though the process was signalled, not shut down.
  std::string M = slurp(Metrics);
  EXPECT_NE(M.find("\"counts\""), std::string::npos);
  EXPECT_NE(M.find("service.requests"), std::string::npos);
  std::string T = slurp(Trace);
  EXPECT_NE(T.find("traceEvents"), std::string::npos);
  std::remove(Metrics.c_str());
  std::remove(Trace.c_str());
}

TEST(ServeTest, SigintOneShotCliFlushesMetrics) {
  // The same interrupt contract for the plain CLI path: SIGINT mid-fuzz
  // must flush --metrics-json and exit 130. The fuzz campaign is the
  // longest-running verb, so it gives the signal a window to land in.
  const std::string Metrics = tmpPath("sigint-metrics.json");
  std::remove(Metrics.c_str());
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    int Null = open("/dev/null", O_WRONLY);
    dup2(Null, STDOUT_FILENO);
    dup2(Null, STDERR_FILENO);
    execl(COMMCSL_HYPERVIPER_BIN, COMMCSL_HYPERVIPER_BIN, "fuzz", "--seeds",
          "100000", "--jobs", "2", "--metrics-json", Metrics.c_str(),
          static_cast<char *>(nullptr));
    _exit(127);
  }
  // Give the campaign time to start, then interrupt it.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  kill(Child, SIGINT);
  int Status = 0;
  waitpid(Child, &Status, 0);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 130); // 128 + SIGINT
  std::string M = slurp(Metrics);
  EXPECT_NE(M.find("\"counts\""), std::string::npos);
  std::remove(Metrics.c_str());
}

TEST(ServeTest, BudgetTimeoutIsTypedAndLeavesCachesWarm) {
  // A one-step cap on a spec the differencing tier cannot fully prove
  // (producer_consumer's enabled actions fall to the concrete tiers) must
  // yield a typed `timeout` error — and the program cache must survive it,
  // so an unbudgeted retry of the same source runs warm and verifies.
  const std::string Path = example("producer_consumer.hv");
  const std::string Src = slurp(Path);
  ServerProc Server;
  Client C(Server.port());

  JsonValue O = JsonValue::object();
  O.set("id", JsonValue::number(uint64_t(1)));
  O.set("verb", JsonValue::string("verify"));
  O.set("source", JsonValue::string(Src));
  O.set("name", JsonValue::string(Path));
  O.set("max_steps", JsonValue::number(uint64_t(1)));
  JsonValue R = C.rpc(O.dump());
  const JsonValue *E = R.find("error");
  ASSERT_NE(E, nullptr) << "expected a timeout error";
  EXPECT_EQ(E->getString("type"), "timeout");
  EXPECT_NE(E->getString("message").find("budget"), std::string::npos);

  JsonValue Retry = C.rpc(verifyLine(2, Src, Path));
  EXPECT_TRUE(Retry.getBool("ok"));
  EXPECT_TRUE(Retry.getBool("program_cache_hit"));

  // A generous budget never fires.
  JsonValue G = JsonValue::object();
  G.set("id", JsonValue::number(uint64_t(3)));
  G.set("verb", JsonValue::string("verify"));
  G.set("source", JsonValue::string(Src));
  G.set("name", JsonValue::string(Path));
  G.set("budget_ms", JsonValue::number(uint64_t(600000)));
  G.set("max_steps", JsonValue::number(uint64_t(1000000000)));
  JsonValue Ok = C.rpc(G.dump());
  EXPECT_EQ(Ok.find("error"), nullptr);
  EXPECT_TRUE(Ok.getBool("ok"));
  EXPECT_EQ(Ok.getString("report"), Retry.getString("report"));
}
