//===-- tests/hyperviper/DriverTest.cpp - Driver & lattice tests -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include "hyperviper/Lattice.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

//===----------------------------------------------------------------------===//
// Source metrics (the Table 1 LOC / Ann. columns)
//===----------------------------------------------------------------------===//

TEST(DriverTest, MetricsCountAnnotationsSeparately) {
  SourceMetrics M = measureSource(R"(
    // a comment line (ignored)
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }

    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var x: int := l;   /* trailing block comment line counts as code */
      assert x == l;
      out := x;
    }
  )");
  // Annotations: 5 resource lines + requires + ensures + assert = 8.
  EXPECT_EQ(M.AnnotationLines, 8u);
  // Code: procedure header, braces, var decl, assignment = 5.
  EXPECT_EQ(M.LinesOfCode, 5u);
}

TEST(DriverTest, MetricsSkipBlockComments) {
  SourceMetrics M = measureSource("/* a\nb\nc */\nprocedure main() { skip; }");
  EXPECT_EQ(M.LinesOfCode, 1u);
  EXPECT_EQ(M.AnnotationLines, 0u);
}

TEST(DriverTest, MetricsCountCodeAfterClosingBlockComment) {
  // Regression: code following `*/` on the same line used to be dropped
  // entirely, skewing the Table 1 LOC column.
  SourceMetrics M = measureSource("/* c */ x := 1;");
  EXPECT_EQ(M.LinesOfCode, 1u);
  EXPECT_EQ(M.AnnotationLines, 0u);

  // The multi-line variant: the closing line carries code.
  SourceMetrics M2 = measureSource("/* a\nb */ x := 1;\ny := 2;");
  EXPECT_EQ(M2.LinesOfCode, 2u);

  // Annotations after a comment are classified as annotations.
  SourceMetrics M3 = measureSource("/* why */ requires low(x)");
  EXPECT_EQ(M3.AnnotationLines, 1u);
  EXPECT_EQ(M3.LinesOfCode, 0u);

  // A line that is swallowed whole by comments still counts as nothing,
  // and a comment opening mid-line keeps the preceding code.
  SourceMetrics M4 = measureSource("x := 1; /* open\nstill comment\n*/");
  EXPECT_EQ(M4.LinesOfCode, 1u);

  // Several comments on one code line.
  SourceMetrics M5 = measureSource("/* a */ x /* b */ := 1; // done");
  EXPECT_EQ(M5.LinesOfCode, 1u);
}

TEST(DriverTest, MissingFileReported) {
  Driver D;
  DriverResult R = D.verifyFile("/nonexistent/path.hv");
  EXPECT_FALSE(R.ParseOk);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(DriverTest, PhaseTimingsArePopulated) {
  Driver D;
  DriverResult R = D.verifySource(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      atomic r { perform r.Add(l); }
      out := unshare r;
    }
  )",
                                   "t");
  ASSERT_TRUE(R.Verified) << R.Diags.str("t");
  EXPECT_GT(R.ValiditySeconds, 0.0);
  EXPECT_GT(R.totalSeconds(), 0.0);
  EXPECT_EQ(R.Verification.NumSpecsChecked, 1u);
  ASSERT_EQ(R.Verification.Procs.size(), 1u);
  EXPECT_GT(R.Verification.Procs[0].NumObligations, 0u);
}

TEST(DriverTest, RejectionKeepsDiagnostics) {
  Driver D;
  DriverResult R = D.verifySource(
      "procedure main(h: int) returns (out: int) ensures low(out) "
      "{ out := h; }",
      "t");
  EXPECT_FALSE(R.Verified);
  EXPECT_TRUE(R.Diags.hasErrorWithCode(DiagCode::VerifyEntailment));
}

//===----------------------------------------------------------------------===//
// Lattice verification (footnote 1)
//===----------------------------------------------------------------------===//

namespace {
const char *ThreeLevelProgram = R"(
  procedure main(pub: int, mid: int, sec: int)
    returns (outPub: int, outMid: int)
  {
    outPub := pub * 2;
    outMid := pub + mid;
  }
)";

LatticeLevels threeLevels() {
  LatticeLevels L;
  L.NumLevels = 3;
  L.ParamLevel = {{"pub", 0}, {"mid", 1}, {"sec", 2}};
  L.ReturnLevel = {{"outPub", 0}, {"outMid", 1}};
  return L;
}
} // namespace

TEST(LatticeTest, WellLeveledFlowsVerifyAtEveryCutoff) {
  Program P = parseChecked(ThreeLevelProgram);
  LatticeResult R = verifyLattice(P, "main", threeLevels());
  EXPECT_TRUE(R.Ok) << R.Diags.str();
  ASSERT_EQ(R.LevelOk.size(), 3u);
  for (bool Ok : R.LevelOk)
    EXPECT_TRUE(Ok);
}

TEST(LatticeTest, DownwardFlowFailsAtItsCutoff) {
  // outPub := mid: a level-1 value flowing into a level-0 output must fail
  // exactly at cutoff 0 (where mid is high but outPub must be low).
  Program P = parseChecked(R"(
    procedure main(pub: int, mid: int, sec: int)
      returns (outPub: int, outMid: int)
    {
      outPub := mid;
      outMid := pub + mid;
    }
  )");
  LatticeResult R = verifyLattice(P, "main", threeLevels());
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.LevelOk.size(), 3u);
  EXPECT_FALSE(R.LevelOk[0]); // mid is high at cutoff 0
  EXPECT_TRUE(R.LevelOk[1]);  // both low at cutoff 1
  EXPECT_TRUE(R.LevelOk[2]);
}

TEST(LatticeTest, SecretFlowFailsAtAllLowerCutoffs) {
  Program P = parseChecked(R"(
    procedure main(pub: int, mid: int, sec: int)
      returns (outPub: int, outMid: int)
    {
      outPub := pub;
      outMid := sec;
    }
  )");
  LatticeResult R = verifyLattice(P, "main", threeLevels());
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.LevelOk[0]);  // outPub fine; outMid not low at cutoff 0
  EXPECT_FALSE(R.LevelOk[1]); // outMid must be low here but sec is not
  EXPECT_TRUE(R.LevelOk[2]);  // everything low at the top
}

TEST(LatticeTest, TwoLevelsDegenerateToPlainVerification) {
  Program P = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
    {
      out := l;
    }
  )");
  LatticeLevels L;
  L.NumLevels = 2;
  L.ParamLevel = {{"l", 0}, {"h", 1}};
  L.ReturnLevel = {{"out", 0}};
  EXPECT_TRUE(verifyLattice(P, "main", L).Ok);

  Program P2 = parseChecked(R"(
    procedure main(l: int, h: int) returns (out: int)
    {
      out := h;
    }
  )");
  EXPECT_FALSE(verifyLattice(P2, "main", L).Ok);
}

TEST(LatticeTest, ConcurrentLatticeExample) {
  // A shared counter receives mid-level data; its total is mid. The public
  // output does not depend on it; the mid output does.
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure main(pub: int, mid: int, sec: int)
      returns (outPub: int, outMid: int)
    {
      share r: Counter := 0;
      par {
        var w: int := 0;
        while (w < sec % 4) invariant w >= 0 { w := w + 1; }
        atomic r { perform r.Add(mid); }
      } and {
        atomic r { perform r.Add(pub); }
      }
      outMid := unshare r;
      outPub := pub;
    }
  )");
  LatticeResult R = verifyLattice(P, "main", threeLevels());
  EXPECT_FALSE(R.LevelOk[0]); // the Add(mid) argument is high at cutoff 0
  EXPECT_TRUE(R.LevelOk[1]) << R.Diags.str();
  EXPECT_TRUE(R.LevelOk[2]);
}

TEST(LatticeTest, UnknownProcedureReported) {
  Program P = parseChecked("procedure main() { skip; }");
  LatticeLevels L;
  LatticeResult R = verifyLattice(P, "nope", L);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diags.hasErrorWithCode(DiagCode::UnknownName));
}
