//===-- tests/value/RepresentationEquivalenceTest.cpp - Golden vectors -----===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the flattened/arena `Value` representation to the pre-rewrite
/// semantics. The files under tests/value/golden/ were generated against
/// the old representation (shared_ptr children, per-collection vectors) by
/// tools/dev/gen_value_goldens.cpp; these tests rebuild the same recipes
/// with the current representation and require identical renderings,
/// enumeration sequences, sampling sequences, and pairwise compare signs.
///
/// If one of these fails after an intentional semantic change, regenerate
/// with `gen_value_goldens tests/value/golden` and justify the diff in the
/// commit message — never regenerate to silence an accidental divergence.
///
//===----------------------------------------------------------------------===//

#include "tests/value/RepresentationGolden.h"
#include "value/Domain.h"

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

std::vector<std::string> readGolden(const std::string &Name) {
  std::string Path = std::string(COMMCSL_VALUE_GOLDEN_DIR) + "/" + Name;
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "missing golden file " << Path;
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(IS, Line))
    Lines.push_back(Line);
  return Lines;
}

/// Compares regenerated lines against the committed golden, with a
/// line-numbered first-divergence message.
void expectLinesEqual(const std::vector<std::string> &Got,
                      const std::vector<std::string> &Want,
                      const std::string &File) {
  size_t N = std::min(Got.size(), Want.size());
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Got[I], Want[I]) << File << ": first divergence at line "
                               << (I + 1);
  EXPECT_EQ(Got.size(), Want.size()) << File << ": line count differs";
}

TEST(RepresentationEquivalenceTest, ValueRenderingMatchesGolden) {
  std::vector<std::string> Got;
  auto Vs = golden::goldenValues();
  for (size_t I = 0; I < Vs.size(); ++I) {
    std::ostringstream OS;
    OS << I << " " << valueKindName(Vs[I]->kind()) << " " << Vs[I]->str();
    Got.push_back(OS.str());
  }
  expectLinesEqual(Got, readGolden("values.txt"), "values.txt");
}

TEST(RepresentationEquivalenceTest, EnumerationMatchesGolden) {
  std::vector<std::string> Got;
  for (const auto &D : golden::goldenDomains()) {
    for (size_t Budget : golden::goldenBudgets()) {
      Got.push_back("# enum " + D.Name + " budget " + std::to_string(Budget));
      for (const ValueRef &V : D.Dom->enumerate(Budget))
        Got.push_back(V->str());
    }
  }
  expectLinesEqual(Got, readGolden("enumeration.txt"), "enumeration.txt");
}

TEST(RepresentationEquivalenceTest, SamplingMatchesGolden) {
  std::vector<std::string> Got;
  auto Domains = golden::goldenDomains();
  for (size_t I = 0; I < Domains.size(); ++I) {
    Got.push_back("# sample " + Domains[I].Name);
    std::mt19937_64 Rng(golden::goldenSampleSeed(I));
    for (unsigned K = 0; K < golden::GoldenSampleDraws; ++K)
      Got.push_back(Domains[I].Dom->sample(Rng)->str());
  }
  expectLinesEqual(Got, readGolden("sampling.txt"), "sampling.txt");
}

TEST(RepresentationEquivalenceTest, CompareSignsMatchGolden) {
  std::vector<std::string> Got;
  auto Vs = golden::goldenValues();
  for (size_t I = 0; I < Vs.size(); ++I) {
    std::string Row;
    for (size_t J = 0; J < Vs.size(); ++J) {
      int C = Value::compare(Vs[I], Vs[J]);
      Row += (C < 0 ? '<' : C > 0 ? '>' : '=');
    }
    Got.push_back(Row);
  }
  expectLinesEqual(Got, readGolden("compare.txt"), "compare.txt");
}

} // namespace
