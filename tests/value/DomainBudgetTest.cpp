//===-- tests/value/DomainBudgetTest.cpp - Enumeration-budget properties ---===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the enumeration budget across every DomainKind and a
/// spread of budgets, including the historically buggy edges:
///   - Unit/Bool (and empty-collection prefixes) used to emit their values
///     unconditionally, overshooting MaxCount 0 and 1;
///   - the map key-combination walk used to receive the full cap instead of
///     the remaining budget.
/// The invariants below are what the fuzz harness and the validity checker
/// rely on: never more than the budget, exactly the budget when the domain
/// is large enough, deterministic prefix ordering, and agreement between
/// the vector-returning and buffer-filling entry points.
///
//===----------------------------------------------------------------------===//

#include "tests/value/RepresentationGolden.h"
#include "value/Domain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

const std::vector<size_t> Budgets = {0, 1, 2, 3, 5, 8, 25, 131, 1000};

/// Cap comfortably above every finite golden-domain cardinality that the
/// budgets can reach, so `count(CountCap) < CountCap` identifies domains
/// whose exact size is known.
constexpr uint64_t CountCap = 1'000'000;

std::string describe(const golden::NamedDomain &D, size_t Budget) {
  return D.Name + " budget " + std::to_string(Budget);
}

TEST(DomainBudgetTest, EnumerateNeverExceedsBudget) {
  for (const auto &D : golden::goldenDomains()) {
    for (size_t Budget : Budgets) {
      std::vector<ValueRef> Vals = D.Dom->enumerate(Budget);
      EXPECT_LE(Vals.size(), Budget) << describe(D, Budget);
    }
  }
}

/// `count` is exact for Unit/Bool/Int and for Pair/Seq over exact
/// children; for Set/Multiset/Map it is a documented upper bound.
bool countIsExact(const Domain &D) {
  switch (D.kind()) {
  case DomainKind::Unit:
  case DomainKind::Bool:
  case DomainKind::Int:
    return true;
  case DomainKind::Pair:
    return countIsExact(*D.first()) && countIsExact(*D.second());
  case DomainKind::Seq:
    return countIsExact(*D.first());
  case DomainKind::Set:
  case DomainKind::Multiset:
  case DomainKind::Map:
    return false;
  }
  return false;
}

TEST(DomainBudgetTest, EnumerateFillsBudgetUpToDomainSize) {
  for (const auto &D : golden::goldenDomains()) {
    uint64_t Count = D.Dom->count(CountCap);
    // The exhaustive size: what an effectively unlimited budget yields.
    size_t Exhaustive = D.Dom->enumerate(100000).size();
    EXPECT_LE(Exhaustive, Count) << D.Name << ": count is not an upper bound";
    if (countIsExact(*D.Dom))
      EXPECT_EQ(Exhaustive, Count) << D.Name;
    for (size_t Budget : Budgets) {
      size_t Expected = std::min(Budget, Exhaustive);
      EXPECT_EQ(D.Dom->enumerate(Budget).size(), Expected)
          << describe(D, Budget) << " count " << Count;
    }
  }
}

TEST(DomainBudgetTest, EnumerateProducesDistinctValues) {
  for (const auto &D : golden::goldenDomains()) {
    std::vector<ValueRef> Vals = D.Dom->enumerate(1000);
    std::set<std::string> Seen;
    for (const ValueRef &V : Vals)
      EXPECT_TRUE(Seen.insert(V->str()).second)
          << D.Name << " duplicate " << V->str();
  }
}

TEST(DomainBudgetTest, SmallerBudgetIsPrefixOfLarger) {
  for (const auto &D : golden::goldenDomains()) {
    std::vector<ValueRef> Full = D.Dom->enumerate(1000);
    for (size_t Budget : Budgets) {
      std::vector<ValueRef> Part = D.Dom->enumerate(Budget);
      ASSERT_LE(Part.size(), Full.size()) << describe(D, Budget);
      for (size_t I = 0; I < Part.size(); ++I)
        EXPECT_TRUE(Value::equal(Part[I], Full[I]))
            << describe(D, Budget) << " index " << I;
    }
  }
}

TEST(DomainBudgetTest, EnumerateIntoAgreesAndAppends) {
  for (const auto &D : golden::goldenDomains()) {
    for (size_t Budget : Budgets) {
      std::vector<ValueRef> Expected = D.Dom->enumerate(Budget);
      // Pre-populate the buffer: enumerateInto must append, not clobber.
      std::vector<ValueRef> Out = {ValueFactory::intV(-777)};
      size_t N = D.Dom->enumerateInto(Budget, Out);
      EXPECT_EQ(N, Expected.size()) << describe(D, Budget);
      ASSERT_EQ(Out.size(), Expected.size() + 1) << describe(D, Budget);
      EXPECT_EQ(Out[0]->getInt(), -777);
      for (size_t I = 0; I < Expected.size(); ++I)
        EXPECT_TRUE(Value::equal(Out[I + 1], Expected[I]))
            << describe(D, Budget) << " index " << I;
    }
  }
}

TEST(DomainBudgetTest, ZeroBudgetYieldsNothingForEveryKind) {
  // The exact historical bug: Unit and Bool pushed their values before
  // consulting MaxCount, so enumerate(0) returned 1 resp. 2 values.
  for (const auto &D : golden::goldenDomains()) {
    EXPECT_TRUE(D.Dom->enumerate(0).empty()) << D.Name;
    std::vector<ValueRef> Out;
    EXPECT_EQ(D.Dom->enumerateInto(0, Out), 0u) << D.Name;
    EXPECT_TRUE(Out.empty()) << D.Name;
  }
}

TEST(DomainBudgetTest, CountDoesNotOverflowOnFullIntRange) {
  // Regression: `Hi - Lo + 1` on the full int64 range overflows (UB) and
  // used to report tiny bogus cardinalities. The span must saturate at Cap.
  DomainRef Full = Domain::intRange(INT64_MIN, INT64_MAX);
  EXPECT_EQ(Full->count(CountCap), CountCap);
  EXPECT_EQ(Full->count(1), 1u);
  // Same overflow shape one level up: a pair of huge ranges multiplies two
  // saturated counts.
  DomainRef Huge = Domain::pair(Full, Full);
  EXPECT_EQ(Huge->count(CountCap), CountCap);
  // Near-full ranges whose span still fits uint64 but not int64.
  DomainRef AlmostFull = Domain::intRange(INT64_MIN, INT64_MAX - 1);
  EXPECT_EQ(AlmostFull->count(CountCap), CountCap);
  DomainRef HalfNeg = Domain::intRange(INT64_MIN, 0);
  EXPECT_EQ(HalfNeg->count(CountCap), CountCap);
  // And enumeration over such a range still honors its budget.
  EXPECT_EQ(Full->enumerate(5).size(), 5u);
}

} // namespace
