//===-- tests/value/ValueOpsTest.cpp - Value operation unit tests ----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/ValueOps.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;
using namespace commcsl::vops;

TEST(ValueOpsTest, Arithmetic) {
  EXPECT_EQ(add(iv(2), iv(3))->getInt(), 5);
  EXPECT_EQ(sub(iv(2), iv(3))->getInt(), -1);
  EXPECT_EQ(mul(iv(4), iv(3))->getInt(), 12);
  EXPECT_EQ(divT(iv(7), iv(2))->getInt(), 3);
  EXPECT_EQ(modT(iv(7), iv(2))->getInt(), 1);
  EXPECT_EQ(neg(iv(5))->getInt(), -5);
  EXPECT_EQ(minV(iv(2), iv(3))->getInt(), 2);
  EXPECT_EQ(maxV(iv(2), iv(3))->getInt(), 3);
  EXPECT_EQ(absV(iv(-4))->getInt(), 4);
}

TEST(ValueOpsTest, DivisionByZeroIsTotal) {
  EXPECT_EQ(divT(iv(7), iv(0))->getInt(), 0);
  EXPECT_EQ(modT(iv(7), iv(0))->getInt(), 0);
}

TEST(ValueOpsTest, Comparisons) {
  EXPECT_TRUE(lt(iv(1), iv(2))->getBool());
  EXPECT_FALSE(lt(iv(2), iv(2))->getBool());
  EXPECT_TRUE(le(iv(2), iv(2))->getBool());
  EXPECT_TRUE(gt(iv(3), iv(2))->getBool());
  EXPECT_TRUE(ge(iv(2), iv(2))->getBool());
  EXPECT_TRUE(eq(sv({1, 2}), sv({1, 2}))->getBool());
  EXPECT_TRUE(ne(sv({1, 2}), sv({2, 1}))->getBool());
}

TEST(ValueOpsTest, SeqBasics) {
  ValueRef S = sv({1, 2, 3});
  EXPECT_EQ(seqLen(S)->getInt(), 3);
  EXPECT_EQ(seqAppend(S, iv(4))->str(), "[1, 2, 3, 4]");
  EXPECT_EQ(seqConcat(S, sv({9}))->str(), "[1, 2, 3, 9]");
  EXPECT_EQ((*seqAt(S, 1))->getInt(), 2);
  EXPECT_FALSE(seqAt(S, 3).has_value());
  EXPECT_FALSE(seqAt(S, -1).has_value());
  EXPECT_EQ(seqAtOr(S, iv(9), iv(-7))->getInt(), -7);
  EXPECT_EQ((*seqHead(S))->getInt(), 1);
  EXPECT_EQ((*seqLast(S))->getInt(), 3);
  EXPECT_EQ(seqTail(S)->str(), "[2, 3]");
  EXPECT_EQ(seqInit(S)->str(), "[1, 2]");
  EXPECT_TRUE(seqContains(S, iv(2))->getBool());
  EXPECT_FALSE(seqContains(S, iv(5))->getBool());
}

TEST(ValueOpsTest, SeqEmptyEdgeCases) {
  ValueRef E = ValueFactory::emptySeq();
  EXPECT_FALSE(seqHead(E).has_value());
  EXPECT_FALSE(seqLast(E).has_value());
  EXPECT_TRUE(Value::equal(seqTail(E), E));
  EXPECT_TRUE(Value::equal(seqInit(E), E));
  EXPECT_EQ(seqSum(E)->getInt(), 0);
  EXPECT_EQ(seqMean(E)->getInt(), 0);
}

TEST(ValueOpsTest, SeqSortMatchesMultisetEnumeration) {
  // sort(s) == mset_to_seq(seq_to_mset(s)) — the identity the
  // Email-Metadata example relies on.
  ValueRef S = sv({3, 1, 2, 1});
  EXPECT_TRUE(Value::equal(seqSort(S), msToSeq(seqToMultiset(S))));
  EXPECT_EQ(seqSort(S)->str(), "[1, 1, 2, 3]");
}

TEST(ValueOpsTest, SeqAggregates) {
  EXPECT_EQ(seqSum(sv({1, 2, 3}))->getInt(), 6);
  EXPECT_EQ(seqMean(sv({1, 2, 3}))->getInt(), 2);
  EXPECT_EQ(seqMean(sv({1, 2}))->getInt(), 1); // integer division
}

TEST(ValueOpsTest, SeqSumSaturatesInsteadOfOverflowing) {
  // Regression: the old implementation summed with raw `+`, which is
  // signed-overflow UB once the partial sum leaves the int64 range.
  ValueRef NearMax = ValueFactory::seq(
      {iv(INT64_MAX), iv(INT64_MAX), iv(5)});
  EXPECT_EQ(seqSum(NearMax)->getInt(), INT64_MAX);
  ValueRef NearMin = ValueFactory::seq(
      {iv(INT64_MIN), iv(-1), iv(INT64_MIN)});
  EXPECT_EQ(seqSum(NearMin)->getInt(), INT64_MIN);
  // Saturation clamps in the direction of the overflow; it does not make
  // the sum sticky — backing away from the rail is still exact.
  ValueRef Back = ValueFactory::seq({iv(INT64_MAX), iv(1), iv(-10)});
  EXPECT_EQ(seqSum(Back)->getInt(), INT64_MAX - 10);
  // Sums that never leave the range are unaffected by the clamping.
  EXPECT_EQ(seqSum(sv({-5, 3, -4}))->getInt(), -6);
}

TEST(ValueOpsTest, SeqMeanFloorsOnNegativeSums) {
  // Regression: `/` truncates toward zero, so the old mean([-3, -4]) was
  // -3; the mathematical mean rounds toward -inf.
  EXPECT_EQ(seqMean(sv({-3, -4}))->getInt(), -4);
  EXPECT_EQ(seqMean(sv({-1, -1, -1}))->getInt(), -1); // exact: no adjustment
  EXPECT_EQ(seqMean(sv({-7, 2}))->getInt(), -3);      // -5/2 floors to -3
  EXPECT_EQ(seqMean(sv({7, -2}))->getInt(), 2);       // positive: floor==trunc
  ValueRef Sat = ValueFactory::seq({iv(INT64_MIN), iv(-1)});
  EXPECT_EQ(seqMean(Sat)->getInt(), INT64_MIN / 2); // saturated sum, exact div
}

TEST(ValueOpsTest, SetOps) {
  ValueRef S = setv({1, 3});
  EXPECT_EQ(setAdd(S, iv(2))->str(), "{1, 2, 3}");
  EXPECT_TRUE(Value::equal(setAdd(S, iv(1)), S)); // idempotent
  EXPECT_EQ(setUnion(setv({1, 2}), setv({2, 3}))->str(), "{1, 2, 3}");
  EXPECT_EQ(setInter(setv({1, 2}), setv({2, 3}))->str(), "{2}");
  EXPECT_EQ(setDiff(setv({1, 2}), setv({2, 3}))->str(), "{1}");
  EXPECT_TRUE(setMember(S, iv(3))->getBool());
  EXPECT_FALSE(setMember(S, iv(2))->getBool());
  EXPECT_EQ(setSize(S)->getInt(), 2);
  EXPECT_EQ(setToSeq(setv({3, 1, 2}))->str(), "[1, 2, 3]");
}

TEST(ValueOpsTest, MultisetOps) {
  ValueRef M = msv({1, 1, 2});
  EXPECT_EQ(msCard(M)->getInt(), 3);
  EXPECT_EQ(msCount(M, iv(1))->getInt(), 2);
  EXPECT_EQ(msCount(M, iv(5))->getInt(), 0);
  EXPECT_EQ(msAdd(M, iv(1))->str(), "ms{1, 1, 1, 2}");
  EXPECT_EQ(msUnion(msv({1}), msv({1, 2}))->str(), "ms{1, 1, 2}");
  EXPECT_EQ(msDiff(msv({1, 1, 2}), msv({1}))->str(), "ms{1, 2}");
  EXPECT_EQ(msDiff(msv({1}), msv({1, 1}))->str(), "ms{}");
}

TEST(ValueOpsTest, MultisetUnionIsCommutative) {
  ValueRef A = msv({1, 3});
  ValueRef B = msv({2, 3});
  EXPECT_TRUE(Value::equal(msUnion(A, B), msUnion(B, A)));
}

TEST(ValueOpsTest, MapOps) {
  ValueRef M = ValueFactory::emptyMap();
  M = mapPut(M, iv(1), iv(10));
  M = mapPut(M, iv(2), iv(20));
  EXPECT_EQ(mapSize(M)->getInt(), 2);
  EXPECT_EQ((*mapGet(M, iv(1)))->getInt(), 10);
  EXPECT_FALSE(mapGet(M, iv(3)).has_value());
  EXPECT_EQ(mapGetOr(M, iv(3), iv(-1))->getInt(), -1);
  EXPECT_TRUE(mapHas(M, iv(2))->getBool());
  EXPECT_EQ(mapDom(M)->str(), "{1, 2}");
  EXPECT_EQ(mapValuesMs(M)->str(), "ms{10, 20}");
  // Overwrite.
  M = mapPut(M, iv(1), iv(11));
  EXPECT_EQ((*mapGet(M, iv(1)))->getInt(), 11);
  EXPECT_EQ(mapSize(M)->getInt(), 2);
  // Remove.
  M = mapRemove(M, iv(1));
  EXPECT_FALSE(mapHas(M, iv(1))->getBool());
  EXPECT_EQ(mapSize(M)->getInt(), 1);
}

TEST(ValueOpsTest, MapPutLastWriteWins) {
  // The non-commutativity at the heart of the Fig. 3 example.
  ValueRef M = ValueFactory::emptyMap();
  ValueRef AB = mapPut(mapPut(M, iv(1), iv(10)), iv(1), iv(20));
  ValueRef BA = mapPut(mapPut(M, iv(1), iv(20)), iv(1), iv(10));
  EXPECT_FALSE(Value::equal(AB, BA));
  // ... but the domains agree: the key-set abstraction commutes.
  EXPECT_TRUE(Value::equal(mapDom(AB), mapDom(BA)));
}
