//===-- tests/value/DomainTest.cpp - Domain enumeration tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Domain.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace commcsl;
using namespace commcsl::test;

namespace {
/// All enumerated values must be pairwise distinct.
void expectAllDistinct(const std::vector<ValueRef> &Vals) {
  std::set<std::string> Seen;
  for (const ValueRef &V : Vals)
    EXPECT_TRUE(Seen.insert(V->str()).second)
        << "duplicate enumerated value " << V->str();
}
} // namespace

TEST(DomainTest, IntEnumeration) {
  DomainRef D = Domain::intRange(-2, 2);
  std::vector<ValueRef> Vals = D->enumerate(100);
  ASSERT_EQ(Vals.size(), 5u);
  EXPECT_EQ(Vals.front()->getInt(), -2);
  EXPECT_EQ(Vals.back()->getInt(), 2);
  EXPECT_EQ(D->count(), 5u);
}

TEST(DomainTest, BoolEnumeration) {
  std::vector<ValueRef> Vals = Domain::boolean()->enumerate(100);
  ASSERT_EQ(Vals.size(), 2u);
}

TEST(DomainTest, PairEnumerationIsCrossProduct) {
  DomainRef D = Domain::pair(Domain::intRange(0, 1), Domain::boolean());
  std::vector<ValueRef> Vals = D->enumerate(100);
  EXPECT_EQ(Vals.size(), 4u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, SeqEnumerationCountsAllLengths) {
  // Sequences over {0,1} up to length 2: 1 + 2 + 4 = 7.
  DomainRef D = Domain::seq(Domain::intRange(0, 1), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 7u);
  expectAllDistinct(Vals);
  // Smallest first.
  EXPECT_EQ(Vals.front()->elems().size(), 0u);
}

TEST(DomainTest, SetEnumerationHasNoDuplicateElements) {
  // Subsets of {0,1,2} of size <= 2: 1 + 3 + 3 = 7.
  DomainRef D = Domain::set(Domain::intRange(0, 2), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 7u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, MultisetEnumeration) {
  // Multisets over {0,1} of size <= 2: 1 + 2 + 3 = 6.
  DomainRef D = Domain::multiset(Domain::intRange(0, 1), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 6u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, MapEnumeration) {
  // Maps {0,1} -> {0,1} with <= 1 entry: 1 + 2*2 = 5.
  DomainRef D =
      Domain::map(Domain::intRange(0, 1), Domain::intRange(0, 1), 1);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 5u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, EnumerationRespectsCap) {
  DomainRef D = Domain::seq(Domain::intRange(0, 9), 5);
  std::vector<ValueRef> Vals = D->enumerate(50);
  EXPECT_EQ(Vals.size(), 50u);
}

TEST(DomainTest, SamplingStaysInDomain) {
  DomainRef D = Domain::pair(Domain::intRange(-3, 3),
                             Domain::seq(Domain::intRange(0, 1), 3));
  std::mt19937_64 Rng(42);
  for (int I = 0; I < 200; ++I) {
    ValueRef V = D->sample(Rng);
    ASSERT_EQ(V->kind(), ValueKind::Pair);
    int64_t X = V->elems()[0]->getInt();
    EXPECT_GE(X, -3);
    EXPECT_LE(X, 3);
    EXPECT_LE(V->elems()[1]->elems().size(), 3u);
  }
}

TEST(DomainTest, SamplingIsDeterministicPerSeed) {
  DomainRef D = Domain::seq(Domain::intRange(0, 5), 4);
  std::mt19937_64 R1(7), R2(7);
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(Value::equal(D->sample(R1), D->sample(R2)));
}

TEST(DomainTest, CountSaturates) {
  DomainRef D = Domain::seq(Domain::intRange(0, 100), 8);
  EXPECT_EQ(D->count(1000), 1000u);
}
