//===-- tests/value/DomainTest.cpp - Domain enumeration tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Domain.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace commcsl;
using namespace commcsl::test;

namespace {
/// All enumerated values must be pairwise distinct.
void expectAllDistinct(const std::vector<ValueRef> &Vals) {
  std::set<std::string> Seen;
  for (const ValueRef &V : Vals)
    EXPECT_TRUE(Seen.insert(V->str()).second)
        << "duplicate enumerated value " << V->str();
}
} // namespace

TEST(DomainTest, IntEnumeration) {
  DomainRef D = Domain::intRange(-2, 2);
  std::vector<ValueRef> Vals = D->enumerate(100);
  ASSERT_EQ(Vals.size(), 5u);
  EXPECT_EQ(Vals.front()->getInt(), -2);
  EXPECT_EQ(Vals.back()->getInt(), 2);
  EXPECT_EQ(D->count(), 5u);
}

TEST(DomainTest, BoolEnumeration) {
  std::vector<ValueRef> Vals = Domain::boolean()->enumerate(100);
  ASSERT_EQ(Vals.size(), 2u);
}

TEST(DomainTest, PairEnumerationIsCrossProduct) {
  DomainRef D = Domain::pair(Domain::intRange(0, 1), Domain::boolean());
  std::vector<ValueRef> Vals = D->enumerate(100);
  EXPECT_EQ(Vals.size(), 4u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, SeqEnumerationCountsAllLengths) {
  // Sequences over {0,1} up to length 2: 1 + 2 + 4 = 7.
  DomainRef D = Domain::seq(Domain::intRange(0, 1), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 7u);
  expectAllDistinct(Vals);
  // Smallest first.
  EXPECT_EQ(Vals.front()->elems().size(), 0u);
}

TEST(DomainTest, SetEnumerationHasNoDuplicateElements) {
  // Subsets of {0,1,2} of size <= 2: 1 + 3 + 3 = 7.
  DomainRef D = Domain::set(Domain::intRange(0, 2), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 7u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, MultisetEnumeration) {
  // Multisets over {0,1} of size <= 2: 1 + 2 + 3 = 6.
  DomainRef D = Domain::multiset(Domain::intRange(0, 1), 2);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 6u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, MapEnumeration) {
  // Maps {0,1} -> {0,1} with <= 1 entry: 1 + 2*2 = 5.
  DomainRef D =
      Domain::map(Domain::intRange(0, 1), Domain::intRange(0, 1), 1);
  std::vector<ValueRef> Vals = D->enumerate(1000);
  EXPECT_EQ(Vals.size(), 5u);
  expectAllDistinct(Vals);
}

TEST(DomainTest, EnumerationRespectsCap) {
  DomainRef D = Domain::seq(Domain::intRange(0, 9), 5);
  std::vector<ValueRef> Vals = D->enumerate(50);
  EXPECT_EQ(Vals.size(), 50u);
}

TEST(DomainTest, SamplingStaysInDomain) {
  DomainRef D = Domain::pair(Domain::intRange(-3, 3),
                             Domain::seq(Domain::intRange(0, 1), 3));
  std::mt19937_64 Rng(42);
  for (int I = 0; I < 200; ++I) {
    ValueRef V = D->sample(Rng);
    ASSERT_EQ(V->kind(), ValueKind::Pair);
    int64_t X = V->elems()[0]->getInt();
    EXPECT_GE(X, -3);
    EXPECT_LE(X, 3);
    EXPECT_LE(V->elems()[1]->elems().size(), 3u);
  }
}

TEST(DomainTest, SamplingIsDeterministicPerSeed) {
  DomainRef D = Domain::seq(Domain::intRange(0, 5), 4);
  std::mt19937_64 R1(7), R2(7);
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(Value::equal(D->sample(R1), D->sample(R2)));
}

TEST(DomainTest, SetSamplingHasNoSilentShrink) {
  // Elements are deduplicated on insertion, so the realized size matches
  // the drawn length whenever the element domain is large enough. Over
  // {0,1,2} with MaxSize 3 the only size-3 set is {0,1,2}; independent
  // draws realize it with probability 6/27 per size-3 draw, while the
  // dedup sampler realizes every size-3 draw (~250 of 1000).
  DomainRef D = Domain::set(Domain::intRange(0, 2), 3);
  std::mt19937_64 Rng(0x5EED);
  int FullSets = 0;
  for (int I = 0; I < 1000; ++I) {
    ValueRef V = D->sample(Rng);
    std::set<std::string> Keys;
    for (const ValueRef &E : V->elems())
      EXPECT_TRUE(Keys.insert(E->str()).second)
          << "duplicate element in sampled set " << V->str();
    if (V->elems().size() == 3)
      ++FullSets;
  }
  EXPECT_GE(FullSets, 150);
}

TEST(DomainTest, MapSamplingRealizesDrawnSize) {
  // Key draws are deduplicated before the value is drawn, so sampled maps
  // realize their drawn entry count instead of silently shrinking through
  // the factory's later-key-wins canonicalization.
  DomainRef D =
      Domain::map(Domain::intRange(0, 2), Domain::intRange(0, 1), 3);
  std::mt19937_64 Rng(77);
  int FullMaps = 0;
  for (int I = 0; I < 1000; ++I) {
    ValueRef V = D->sample(Rng);
    std::set<std::string> Keys;
    for (const auto &Entry : V->mapEntries())
      EXPECT_TRUE(Keys.insert(Entry.first->str()).second)
          << "duplicate key in sampled map " << V->str();
    if (V->mapEntries().size() == 3)
      ++FullMaps;
  }
  EXPECT_GE(FullMaps, 150);
}

TEST(DomainTest, SetSamplingShrinksWhenDomainExhausted) {
  // A set of up to 4 elements over a 2-element domain can realize at most
  // 2; the bounded resampler must shrink instead of spinning or duplicating.
  DomainRef D = Domain::set(Domain::intRange(0, 1), 4);
  std::mt19937_64 Rng(5);
  for (int I = 0; I < 200; ++I) {
    ValueRef V = D->sample(Rng);
    EXPECT_LE(V->elems().size(), 2u);
    std::set<std::string> Keys;
    for (const ValueRef &E : V->elems())
      EXPECT_TRUE(Keys.insert(E->str()).second);
  }
}

TEST(DomainTest, MapEnumerationRespectsRemainingBudget) {
  // Regression: the key-combination enumeration used to receive the full
  // cap instead of the remaining budget, overshooting MaxCount.
  DomainRef D =
      Domain::map(Domain::intRange(0, 3), Domain::intRange(0, 3), 3);
  for (size_t Cap : {1u, 3u, 7u, 20u, 50u}) {
    std::vector<ValueRef> Vals = D->enumerate(Cap);
    EXPECT_LE(Vals.size(), Cap) << "cap " << Cap;
    expectAllDistinct(Vals);
  }
}

TEST(DomainTest, CountSaturates) {
  DomainRef D = Domain::seq(Domain::intRange(0, 100), 8);
  EXPECT_EQ(D->count(1000), 1000u);
}
