//===-- tests/value/ValueTest.cpp - Value domain unit tests ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Value.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

TEST(ValueTest, IntBasics) {
  ValueRef A = iv(42);
  EXPECT_TRUE(A->isInt());
  EXPECT_EQ(A->getInt(), 42);
  EXPECT_EQ(A->str(), "42");
  EXPECT_TRUE(Value::equal(A, iv(42)));
  EXPECT_FALSE(Value::equal(A, iv(43)));
}

TEST(ValueTest, BoolBasics) {
  EXPECT_TRUE(bv(true)->getBool());
  EXPECT_FALSE(bv(false)->getBool());
  EXPECT_EQ(bv(true)->str(), "true");
  EXPECT_FALSE(Value::equal(bv(true), bv(false)));
}

TEST(ValueTest, KindOrderingIsTotal) {
  // Values of different kinds compare consistently and asymmetrically.
  std::vector<ValueRef> Vals = {ValueFactory::unit(), iv(0), bv(false),
                                ValueFactory::stringV("a"),
                                pv(iv(1), iv(2)), sv({1}), setv({1}),
                                msv({1}), ValueFactory::emptyMap()};
  for (size_t I = 0; I < Vals.size(); ++I) {
    for (size_t J = 0; J < Vals.size(); ++J) {
      int C1 = Value::compare(Vals[I], Vals[J]);
      int C2 = Value::compare(Vals[J], Vals[I]);
      EXPECT_EQ(C1, -C2) << I << " vs " << J;
      if (I == J) {
        EXPECT_EQ(C1, 0);
      }
    }
  }
}

TEST(ValueTest, SetCanonicalization) {
  ValueRef A = ValueFactory::set({iv(3), iv(1), iv(3), iv(2)});
  ValueRef B = ValueFactory::set({iv(1), iv(2), iv(3)});
  EXPECT_TRUE(Value::equal(A, B));
  EXPECT_EQ(A->elems().size(), 3u);
  EXPECT_EQ(A->str(), "{1, 2, 3}");
}

TEST(ValueTest, MultisetCanonicalizationKeepsDuplicates) {
  ValueRef A = ValueFactory::multiset({iv(3), iv(1), iv(3)});
  ValueRef B = ValueFactory::multiset({iv(3), iv(3), iv(1)});
  EXPECT_TRUE(Value::equal(A, B));
  EXPECT_EQ(A->elems().size(), 3u);
  EXPECT_EQ(A->str(), "ms{1, 3, 3}");
}

TEST(ValueTest, SeqOrderMatters) {
  EXPECT_FALSE(Value::equal(sv({1, 2}), sv({2, 1})));
  EXPECT_TRUE(Value::equal(sv({1, 2}), sv({1, 2})));
}

TEST(ValueTest, MapCanonicalizationLaterEntriesWin) {
  ValueRef M = ValueFactory::map(
      {{iv(1), iv(10)}, {iv(2), iv(20)}, {iv(1), iv(11)}});
  ASSERT_EQ(M->mapEntries().size(), 2u);
  EXPECT_EQ(M->str(), "map{1 -> 11, 2 -> 20}");
}

TEST(ValueTest, MapEqualityIsExtensional) {
  ValueRef A = ValueFactory::map({{iv(2), iv(20)}, {iv(1), iv(10)}});
  ValueRef B = ValueFactory::map({{iv(1), iv(10)}, {iv(2), iv(20)}});
  EXPECT_TRUE(Value::equal(A, B));
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueRef A = ValueFactory::set({iv(3), iv(1)});
  ValueRef B = ValueFactory::set({iv(1), iv(3)});
  EXPECT_EQ(A->hash(), B->hash());
  ValueRef M1 = ValueFactory::map({{iv(1), iv(2)}});
  ValueRef M2 = ValueFactory::map({{iv(1), iv(2)}});
  EXPECT_EQ(M1->hash(), M2->hash());
}

TEST(ValueTest, NestedValues) {
  ValueRef Inner = pv(iv(1), sv({2, 3}));
  ValueRef Outer = ValueFactory::map({{iv(0), Inner}});
  EXPECT_EQ(Outer->str(), "map{0 -> (1, [2, 3])}");
}

TEST(ValueTest, PairAccessors) {
  ValueRef P = pv(iv(7), bv(true));
  EXPECT_EQ(P->elems()[0]->getInt(), 7);
  EXPECT_TRUE(P->elems()[1]->getBool());
}

TEST(ValueTest, UnitSingleton) {
  EXPECT_TRUE(Value::equal(ValueFactory::unit(), ValueFactory::unit()));
  EXPECT_EQ(ValueFactory::unit()->str(), "unit");
}
