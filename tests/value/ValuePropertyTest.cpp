//===-- tests/value/ValuePropertyTest.cpp - Value-domain properties --------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests of the value domain over randomly sampled values:
/// the canonical order is a total order, hashing respects equality, and
/// collection canonicalization is idempotent and order-insensitive.
///
//===----------------------------------------------------------------------===//

#include "value/Domain.h"
#include "value/ValueOps.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace commcsl;

namespace {

DomainRef richDomain() {
  // pair<int, map<int, seq<bool>>> — deep enough to stress every kind.
  return Domain::pair(
      Domain::intRange(-3, 3),
      Domain::map(Domain::intRange(0, 2),
                  Domain::seq(Domain::boolean(), 2), 2));
}

class ValueProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  std::vector<ValueRef> sampleMany(size_t N) {
    std::mt19937_64 Rng(GetParam());
    DomainRef D = richDomain();
    std::vector<ValueRef> Out;
    for (size_t I = 0; I < N; ++I)
      Out.push_back(D->sample(Rng));
    return Out;
  }
};

} // namespace

TEST_P(ValueProperty, CompareIsATotalOrder) {
  std::vector<ValueRef> Vals = sampleMany(24);
  for (const ValueRef &A : Vals) {
    EXPECT_EQ(Value::compare(A, A), 0);
    for (const ValueRef &B : Vals) {
      int AB = Value::compare(A, B);
      int BA = Value::compare(B, A);
      EXPECT_EQ(AB, -BA);
      for (const ValueRef &C : Vals) {
        // Transitivity of <=.
        if (AB <= 0 && Value::compare(B, C) <= 0) {
          EXPECT_LE(Value::compare(A, C), 0);
        }
      }
    }
  }
}

TEST_P(ValueProperty, HashRespectsEquality) {
  std::vector<ValueRef> Vals = sampleMany(40);
  for (const ValueRef &A : Vals)
    for (const ValueRef &B : Vals)
      if (Value::equal(A, B)) {
        EXPECT_EQ(A->hash(), B->hash());
      }
}

TEST_P(ValueProperty, SortingViaValuesIsStableUnderReconstruction) {
  std::mt19937_64 Rng(GetParam() * 7 + 1);
  DomainRef Elem = Domain::intRange(-5, 5);
  std::vector<ValueRef> Elems;
  for (int I = 0; I < 12; ++I)
    Elems.push_back(Elem->sample(Rng));
  // Multisets are insensitive to construction order.
  std::vector<ValueRef> Shuffled = Elems;
  std::shuffle(Shuffled.begin(), Shuffled.end(), Rng);
  EXPECT_TRUE(Value::equal(ValueFactory::multiset(Elems),
                           ValueFactory::multiset(Shuffled)));
  EXPECT_TRUE(Value::equal(ValueFactory::set(Elems),
                           ValueFactory::set(Shuffled)));
  // But sequences are not (unless the shuffle was the identity).
  EXPECT_TRUE(Value::equal(
      vops::seqToMultiset(ValueFactory::seq(Elems)),
      vops::seqToMultiset(ValueFactory::seq(Shuffled))));
}

TEST_P(ValueProperty, MultisetUnionDiffRoundTrip) {
  std::mt19937_64 Rng(GetParam() * 13 + 5);
  DomainRef D = Domain::multiset(Domain::intRange(0, 3), 4);
  ValueRef A = D->sample(Rng);
  ValueRef B = D->sample(Rng);
  // (A u B) \ B == A.
  EXPECT_TRUE(
      Value::equal(vops::msDiff(vops::msUnion(A, B), B), A));
  // card is a homomorphism.
  EXPECT_EQ(vops::msCard(vops::msUnion(A, B))->getInt(),
            vops::msCard(A)->getInt() + vops::msCard(B)->getInt());
}

TEST_P(ValueProperty, MapPutGetRoundTrip) {
  std::mt19937_64 Rng(GetParam() * 29 + 11);
  DomainRef MapD =
      Domain::map(Domain::intRange(0, 3), Domain::intRange(-2, 2), 3);
  DomainRef IntD = Domain::intRange(-2, 2);
  ValueRef M = MapD->sample(Rng);
  ValueRef K = IntD->sample(Rng);
  ValueRef V = IntD->sample(Rng);
  ValueRef M2 = vops::mapPut(M, K, V);
  EXPECT_TRUE(Value::equal(*vops::mapGet(M2, K), V));
  EXPECT_TRUE(vops::setMember(vops::mapDom(M2), K)->getBool());
  // Removing restores the domain without K.
  ValueRef M3 = vops::mapRemove(M2, K);
  EXPECT_FALSE(vops::mapHas(M3, K)->getBool());
}

TEST_P(ValueProperty, EnumerationPrefixesAreSampleSupersets) {
  // Every sampled value from a small domain also appears in its full
  // enumeration.
  DomainRef D =
      Domain::pair(Domain::intRange(0, 1), Domain::seq(Domain::boolean(), 1));
  std::vector<ValueRef> All = D->enumerate(1000);
  std::mt19937_64 Rng(GetParam());
  for (int I = 0; I < 30; ++I) {
    ValueRef V = D->sample(Rng);
    bool Found = false;
    for (const ValueRef &E : All)
      Found |= Value::equal(E, V);
    EXPECT_TRUE(Found) << V->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueProperty,
                         ::testing::Values(1, 2, 3, 7, 11));
