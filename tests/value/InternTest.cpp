//===-- tests/value/InternTest.cpp - Hash-consing interner tests -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Intern.h"

#include "value/Value.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace commcsl;

namespace {

/// A moderately nested value: {1 -> [true, "x"], k -> [false, "y"]}.
ValueRef buildNested(int64_t K) {
  std::vector<std::pair<ValueRef, ValueRef>> Entries;
  Entries.emplace_back(
      ValueFactory::intV(1),
      ValueFactory::seq({ValueFactory::boolV(true),
                         ValueFactory::stringV("x")}));
  Entries.emplace_back(
      ValueFactory::intV(K),
      ValueFactory::seq({ValueFactory::boolV(false),
                         ValueFactory::stringV("y")}));
  return ValueFactory::map(std::move(Entries));
}

} // namespace

TEST(InternTest, EqualValuesShareOnePointer) {
  ASSERT_TRUE(ValueInterner::enabled());
  ValueRef A = buildNested(7);
  ValueRef B = buildNested(7);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_TRUE(A->isInterned());
  EXPECT_TRUE(Value::equal(A, B));

  ValueRef C = buildNested(8);
  EXPECT_NE(A.get(), C.get());
  EXPECT_FALSE(Value::equal(A, C));
}

TEST(InternTest, SharedSubstructure) {
  // Structurally equal children of different parents are the same object.
  ValueRef P1 = ValueFactory::pair(ValueFactory::intV(3),
                                   ValueFactory::seq({ValueFactory::intV(4)}));
  ValueRef P2 = ValueFactory::pair(ValueFactory::intV(5),
                                   ValueFactory::seq({ValueFactory::intV(4)}));
  EXPECT_NE(P1.get(), P2.get());
  EXPECT_EQ(P1->elems()[1].get(), P2->elems()[1].get());
}

TEST(InternTest, StoredHashAgreesWithEquality) {
  ValueRef A = buildNested(7);
  ValueRef B = buildNested(7);
  ValueRef C = buildNested(8);
  EXPECT_EQ(A->hash(), B->hash());
  // Not guaranteed in principle, but a collision here would make the
  // fast-path tests above vacuous.
  EXPECT_NE(A->hash(), C->hash());
}

TEST(InternTest, CrossThreadCanonicalization) {
  // Racing constructions of the same value from many threads must converge
  // on one canonical object per distinct value.
  constexpr int NumThreads = 8;
  constexpr int PerThread = 64;
  std::vector<std::vector<ValueRef>> Built(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T, &Built] {
      for (int I = 0; I < PerThread; ++I)
        Built[T].push_back(buildNested(I % 4));
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (int T = 1; T < NumThreads; ++T)
    for (int I = 0; I < PerThread; ++I)
      EXPECT_EQ(Built[0][I % 4].get(), Built[T][I].get());
}

TEST(InternTest, DisabledInterningStillCompares) {
  // With interning off, fresh values are distinct objects but structural
  // equality (and the stored hash) still work.
  ASSERT_TRUE(ValueInterner::enabled());
  ValueInterner::setEnabled(false);
  ValueRef A = buildNested(7);
  ValueRef B = buildNested(7);
  EXPECT_NE(A.get(), B.get());
  EXPECT_FALSE(A->isInterned());
  EXPECT_TRUE(Value::equal(A, B));
  EXPECT_EQ(A->hash(), B->hash());
  ValueInterner::setEnabled(true);
  // Mixed comparisons across the toggle stay structural and correct.
  ValueRef C = buildNested(7);
  EXPECT_TRUE(C->isInterned());
  EXPECT_TRUE(Value::equal(A, C));
}

TEST(InternTest, StatsCountHitsAndMisses) {
  ValueInterner::Stats Before = ValueInterner::global().stats();
  ValueRef A = buildNested(42);
  ValueRef B = buildNested(42);
  (void)A;
  (void)B;
  ValueInterner::Stats After = ValueInterner::global().stats();
  EXPECT_GT(After.Hits, Before.Hits);   // B's nodes all hit
  EXPECT_GT(After.Misses, Before.Misses); // intV(42) was new
}
