//===-- tests/fuzz/ShrinkerTest.cpp - Delta-debugging shrinker tests -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shrinker's contract: minimized witnesses keep the oracle class AND
/// the concrete-leak evidence bit, stay parseable source, shrink a
/// fault-injected finding well below the acceptance bar (<= 25% of the
/// original statement count), and respect the oracle-run budget.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "testgen/ProgramGen.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

/// Finds a generated program that is leaky by construction and — under an
/// AcceptAll fault — classifies as a soundness violation with a concrete
/// observed leak. This is the canonical shrinker workload.
struct InjectedFinding {
  std::string Source;
  uint64_t Seed = 0;
  unsigned Statements = 0;
};

InjectedFinding findInjectedLeak(const DifferentialOracle &Oracle) {
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    GenConfig GC;
    GC.Seed = Seed * 6151 + 11;
    GC.AllowLeakyOutput = true;
    GeneratedProgram GP = generateProgram(GC);
    if (!GP.OutputTainted)
      continue;
    OracleResult R = Oracle.evaluate(GP.Source, true, GC.Seed);
    if (R.Class == OracleClass::SoundnessViolation &&
        R.Verdicts.EmpiricalLeak)
      return {GP.Source, GC.Seed, GP.Statements};
  }
  return {};
}

} // namespace

TEST(ShrinkerTest, InjectedSoundnessFindingShrinksBelowQuarter) {
  ShrinkConfig Config;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  DifferentialOracle Oracle(Config.Oracle);

  InjectedFinding F = findInjectedLeak(Oracle);
  ASSERT_FALSE(F.Source.empty())
      << "no leaky generated seed produced an empirically observable leak";
  ASSERT_GE(F.Statements, 8u) << "workload too small to make the bar meaningful";

  ShrinkResult R = shrinkProgram(F.Source, /*GenTainted=*/true,
                                 OracleClass::SoundnessViolation, F.Seed,
                                 Config);
  EXPECT_EQ(R.Class, OracleClass::SoundnessViolation);
  EXPECT_GT(R.Stats.Reductions, 0u);
  EXPECT_LE(R.Stats.OracleRuns, Config.MaxOracleRuns);
  // The acceptance bar: a minimized witness at most a quarter of the
  // original statement count.
  EXPECT_LE(R.Stats.StatementsAfter * 4, R.Stats.StatementsBefore)
      << "before=" << R.Stats.StatementsBefore
      << " after=" << R.Stats.StatementsAfter << "\n"
      << R.Source;

  // The witness is well-formed source and still reproduces class AND
  // evidence: the concrete leak survived minimization.
  OracleResult Replay = Oracle.evaluate(R.Source, true, F.Seed);
  EXPECT_EQ(Replay.Class, OracleClass::SoundnessViolation) << R.Source;
  EXPECT_TRUE(Replay.Verdicts.EmpiricalLeak) << R.Source;
}

TEST(ShrinkerTest, MinimizedWitnessIsParseableAndPrinted) {
  ShrinkConfig Config;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  DifferentialOracle Oracle(Config.Oracle);
  InjectedFinding F = findInjectedLeak(Oracle);
  ASSERT_FALSE(F.Source.empty());

  ShrinkResult R = shrinkProgram(F.Source, true,
                                 OracleClass::SoundnessViolation, F.Seed,
                                 Config);
  DiagnosticEngine Diags;
  Program P = Parser::parse(R.Source, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << R.Source;
  // The shrinker emits printer-normalized source: re-printing is a no-op.
  EXPECT_EQ(P.str(), R.Source);
}

TEST(ShrinkerTest, CompletenessGapShrinksUnderRejectAll) {
  ShrinkConfig Config;
  Config.Oracle.Inject = OracleFault::RejectAll;
  const char *Source = R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var a: int := l + 1;
      var b: int := a * 2;
      if (l > 0) { a := a + b; } else { a := b; }
      while (b > 0)
        invariant low(b)
      {
        b := b - 1;
      }
      out := a + b;
    }
  )";
  ShrinkResult R = shrinkProgram(Source, /*GenTainted=*/false,
                                 OracleClass::CompletenessGap, 5, Config);
  EXPECT_EQ(R.Class, OracleClass::CompletenessGap);
  EXPECT_LT(R.Stats.StatementsAfter, R.Stats.StatementsBefore);
}

TEST(ShrinkerTest, MismatchedTargetReportsActualClass) {
  // A secure program does not classify as a soundness violation; the
  // shrinker must refuse to start and report what it actually saw.
  const char *Source = R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := l;
    }
  )";
  ShrinkResult R = shrinkProgram(Source, false,
                                 OracleClass::SoundnessViolation, 5);
  EXPECT_EQ(R.Class, OracleClass::Agree);
  EXPECT_EQ(R.Stats.Reductions, 0u);
}

TEST(ShrinkerTest, UnparseableInputIsGeneratorInvalid) {
  ShrinkResult R = shrinkProgram("not a program", false,
                                 OracleClass::SoundnessViolation, 5);
  EXPECT_EQ(R.Class, OracleClass::GeneratorInvalid);
  EXPECT_EQ(R.Source, "not a program");
}

TEST(ShrinkerTest, OracleBudgetIsRespected) {
  ShrinkConfig Config;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  Config.MaxOracleRuns = 3;
  DifferentialOracle Oracle(Config.Oracle);
  InjectedFinding F = findInjectedLeak(Oracle);
  ASSERT_FALSE(F.Source.empty());

  ShrinkResult R = shrinkProgram(F.Source, true,
                                 OracleClass::SoundnessViolation, F.Seed,
                                 Config);
  EXPECT_LE(R.Stats.OracleRuns, 3u);
  EXPECT_TRUE(R.Stats.BudgetExhausted);
  // Whatever the budget allowed, the result is still a valid witness.
  DiagnosticEngine Diags;
  Parser::parse(R.Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << R.Source;
}

TEST(ShrinkerTest, ShrinkIsDeterministic) {
  ShrinkConfig Config;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  Config.MaxOracleRuns = 120; // keep the repeat affordable
  DifferentialOracle Oracle(Config.Oracle);
  InjectedFinding F = findInjectedLeak(Oracle);
  ASSERT_FALSE(F.Source.empty());

  ShrinkResult A = shrinkProgram(F.Source, true,
                                 OracleClass::SoundnessViolation, F.Seed,
                                 Config);
  ShrinkResult B = shrinkProgram(F.Source, true,
                                 OracleClass::SoundnessViolation, F.Seed,
                                 Config);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.Stats.OracleRuns, B.Stats.OracleRuns);
  EXPECT_EQ(A.Stats.Reductions, B.Stats.Reductions);
}
