//===-- tests/fuzz/CampaignTest.cpp - Campaign runner tests ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Campaign-scale properties: a clean campaign over generated seeds, the
/// job-count determinism contract (byte-identical JSON at --jobs 1 and
/// --jobs 8, with and without findings to shrink), fault-injected finding
/// production, the time-budget escape hatch, and corpus file round-trips.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Corpus.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace commcsl;

namespace {

/// Small campaign config shared by the determinism tests.
CampaignConfig smallConfig() {
  CampaignConfig Config;
  Config.BaseSeed = 2026;
  Config.NumSeeds = 24;
  return Config;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

} // namespace

TEST(CampaignTest, CleanCampaignOverGeneratedSeeds) {
  CampaignConfig Config = smallConfig();
  CampaignReport R = runCampaign(Config);
  EXPECT_TRUE(R.clean()) << R.json();
  EXPECT_EQ(R.SeedsRun, Config.NumSeeds);
  EXPECT_EQ(R.SeedsSkipped, 0u);
  EXPECT_EQ(R.Agree, R.SeedsRun) << R.json();
  EXPECT_EQ(R.SoundnessViolations, 0u);
  EXPECT_EQ(R.GeneratorInvalids, 0u);
  // The generator mixes leaky and secure programs; both cells of the
  // agreement diagonal must be populated.
  EXPECT_GT(R.TaintedSeeds, 0u);
  EXPECT_GT(R.VerifiedSeeds, 0u);
  EXPECT_LT(R.VerifiedSeeds, R.SeedsRun);
  EXPECT_TRUE(R.Findings.empty());
}

TEST(CampaignTest, JsonIsByteIdenticalAcrossJobCounts) {
  CampaignConfig Config = smallConfig();
  Config.Jobs = 1;
  std::string Sequential = runCampaign(Config).json();
  Config.Jobs = 8;
  std::string Parallel = runCampaign(Config).json();
  EXPECT_EQ(Sequential, Parallel);
}

TEST(CampaignTest, JsonWithShrunkFindingsIsByteIdenticalAcrossJobCounts) {
  // The stronger determinism claim: parallel shrinking of findings (the
  // expensive phase) merges in seed order too.
  CampaignConfig Config;
  Config.BaseSeed = 11;
  Config.NumSeeds = 6;
  Config.Gen.TargetStatements = 8;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  Config.Shrink.MaxOracleRuns = 40;

  Config.Jobs = 1;
  CampaignReport Sequential = runCampaign(Config);
  Config.Jobs = 8;
  CampaignReport Parallel = runCampaign(Config);
  ASSERT_GT(Sequential.Findings.size(), 0u)
      << "accept-all injection produced no findings to shrink";
  EXPECT_EQ(Sequential.json(), Parallel.json());
}

TEST(CampaignTest, InjectedFaultProducesShrunkFindings) {
  CampaignConfig Config;
  Config.BaseSeed = 11;
  Config.NumSeeds = 6;
  Config.Gen.TargetStatements = 8;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  Config.Shrink.MaxOracleRuns = 40;
  CampaignReport R = runCampaign(Config);

  EXPECT_FALSE(R.clean());
  EXPECT_GT(R.SoundnessViolations, 0u);
  EXPECT_EQ(R.Findings.size(),
            size_t(R.SoundnessViolations + R.CompletenessGaps + R.Flakes +
                   R.GeneratorInvalids));
  for (const CampaignFinding &F : R.Findings) {
    EXPECT_EQ(F.Class, OracleClass::SoundnessViolation);
    EXPECT_TRUE(F.GenTainted);
    EXPECT_LE(F.StatementsAfter, F.StatementsBefore);
    EXPECT_GT(F.ShrinkOracleRuns, 0u);
    DiagnosticEngine Diags;
    Parser::parse(F.Source, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << F.Source;
  }
}

TEST(CampaignTest, JsonCarriesTheReportShape) {
  CampaignConfig Config = smallConfig();
  Config.NumSeeds = 4;
  std::string J = runCampaign(Config).json();
  for (const char *Key :
       {"\"fuzz_campaign\"", "\"base_seed\": 2026", "\"seeds_run\": 4",
        "\"counts\"", "\"soundness_violation\": 0", "\"generator_invalid\": 0",
        "\"verdicts\"", "\"findings\": []"})
    EXPECT_NE(J.find(Key), std::string::npos) << "missing " << Key << "\n" << J;
  // The determinism contract forbids timing data in the report.
  EXPECT_EQ(J.find("time"), std::string::npos) << J;
}

TEST(CampaignTest, TimeBudgetSkipsTrailingSeeds) {
  CampaignConfig Config = smallConfig();
  Config.Jobs = 1;
  Config.TimeBudgetSeconds = 1e-9;
  CampaignReport R = runCampaign(Config);
  EXPECT_EQ(R.SeedsRun + R.SeedsSkipped, Config.NumSeeds);
  EXPECT_GT(R.SeedsSkipped, 0u);
}

//===----------------------------------------------------------------------===//
// Corpus serialization.
//===----------------------------------------------------------------------===//

TEST(CorpusTest, RenderParseRoundTrip) {
  CampaignFinding F;
  F.SeedIndex = 3;
  F.Seed = 123456789;
  F.Class = OracleClass::SoundnessViolation;
  F.GenTainted = true;
  F.Detail = "injected acceptance of a generator-tainted program\nsecond line";
  F.StatementsBefore = 53;
  F.StatementsAfter = 1;
  F.Source = "procedure main(l: int, h: int) returns (out: int)\n"
             "  requires low(l)\n  ensures low(out)\n{\n  out := h;\n}\n";

  std::string Content = renderCorpusEntry(F, OracleFault::AcceptAll);
  std::optional<CorpusEntry> E = parseCorpusEntry(Content);
  ASSERT_TRUE(E.has_value()) << Content;
  EXPECT_EQ(E->Class, F.Class);
  EXPECT_EQ(E->Seed, F.Seed);
  EXPECT_EQ(E->SeedIndex, F.SeedIndex);
  EXPECT_EQ(E->GenTainted, F.GenTainted);
  EXPECT_EQ(E->Inject, OracleFault::AcceptAll);
  EXPECT_EQ(E->Source, F.Source);
  // Multi-line details are flattened into the one-line header field.
  EXPECT_EQ(E->Detail.find('\n'), std::string::npos);
}

TEST(CorpusTest, MalformedContentIsRejected) {
  EXPECT_FALSE(parseCorpusEntry("").has_value());
  EXPECT_FALSE(parseCorpusEntry("procedure main() {}").has_value());
  EXPECT_FALSE(parseCorpusEntry("// fuzz-corpus v1\n").has_value());
}

TEST(CorpusTest, FileNameIsClassAndSeedIndex) {
  CampaignFinding F;
  F.SeedIndex = 7;
  F.Class = OracleClass::CompletenessGap;
  EXPECT_EQ(corpusFileName(F), "completeness-gap-seed7.hv");
}

TEST(CorpusTest, WriteCorpusFilesWritesReplayableEntries) {
  CampaignConfig Config;
  Config.BaseSeed = 11;
  Config.NumSeeds = 4;
  Config.Gen.TargetStatements = 8;
  Config.Oracle.Inject = OracleFault::AcceptAll;
  Config.Shrink.MaxOracleRuns = 30;
  CampaignReport R = runCampaign(Config);
  ASSERT_GT(R.Findings.size(), 0u);

  std::string Dir = ::testing::TempDir() + "/commcsl-corpus-test";
  std::filesystem::remove_all(Dir);
  std::vector<std::string> Paths = writeCorpusFiles(R, Dir);
  ASSERT_EQ(Paths.size(), R.Findings.size());
  for (size_t I = 0; I < Paths.size(); ++I) {
    std::optional<CorpusEntry> E = parseCorpusEntry(readFile(Paths[I]));
    ASSERT_TRUE(E.has_value()) << Paths[I];
    EXPECT_EQ(E->Class, R.Findings[I].Class);
    EXPECT_EQ(E->Seed, R.Findings[I].Seed);
    EXPECT_EQ(E->Inject, OracleFault::AcceptAll);
  }
  std::filesystem::remove_all(Dir);
}
