//===-- tests/fuzz/CorpusReplayTest.cpp - Regression corpus replay ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every committed corpus file under tests/corpus/ through the
/// differential oracle with the recorded inputs (taint verdict, seed,
/// injected fault) and asserts the recorded classification reproduces.
/// The corpus is the regression memory of the fuzzing subsystem: a finding
/// minimized once must keep reproducing forever.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

struct CorpusFile {
  std::string Path;
  CorpusEntry Entry;
};

std::vector<CorpusFile> loadCorpus() {
  std::vector<CorpusFile> Files;
  std::filesystem::path Dir(COMMCSL_CORPUS_DIR);
  if (!std::filesystem::exists(Dir))
    return Files;
  std::vector<std::filesystem::path> Paths;
  for (const auto &DE : std::filesystem::directory_iterator(Dir))
    if (DE.is_regular_file() && DE.path().extension() == ".hv")
      Paths.push_back(DE.path());
  std::sort(Paths.begin(), Paths.end());
  for (const auto &P : Paths) {
    std::ifstream In(P);
    std::ostringstream OS;
    OS << In.rdbuf();
    std::optional<CorpusEntry> E = parseCorpusEntry(OS.str());
    EXPECT_TRUE(E.has_value()) << P << ": malformed corpus header";
    if (E)
      Files.push_back({P.string(), *E});
  }
  return Files;
}

} // namespace

TEST(CorpusReplayTest, CorpusIsNonEmpty) {
  // The PR ships with at least two minimized findings; an empty directory
  // means the corpus was lost, not that there is nothing to check.
  EXPECT_GE(loadCorpus().size(), 2u)
      << "expected committed corpus files under " << COMMCSL_CORPUS_DIR;
}

TEST(CorpusReplayTest, EveryEntryReproducesItsRecordedClass) {
  for (const CorpusFile &F : loadCorpus()) {
    OracleConfig Config;
    Config.Inject = F.Entry.Inject;
    DifferentialOracle Oracle(Config);
    OracleResult R =
        Oracle.evaluate(F.Entry.Source, F.Entry.GenTainted, F.Entry.Seed);
    EXPECT_EQ(R.Class, F.Entry.Class)
        << F.Path << ": recorded " << oracleClassName(F.Entry.Class)
        << ", replay produced " << oracleClassName(R.Class) << " ("
        << R.Detail << ")";
  }
}

TEST(CorpusReplayTest, EntriesAreMinimizedWitnesses) {
  // Committed entries come out of the shrinker: re-shrinking must find
  // nothing further to remove (the corpus stores fixpoints, not raw
  // findings).
  for (const CorpusFile &F : loadCorpus()) {
    if (F.Entry.Class == OracleClass::GeneratorInvalid)
      continue;
    ShrinkConfig Config;
    Config.Oracle.Inject = F.Entry.Inject;
    Config.MaxOracleRuns = 150;
    ShrinkResult R = shrinkProgram(F.Entry.Source, F.Entry.GenTainted,
                                   F.Entry.Class, F.Entry.Seed, Config);
    EXPECT_EQ(R.Class, F.Entry.Class) << F.Path;
    EXPECT_EQ(R.Stats.Reductions, 0u)
        << F.Path << ": corpus entry shrank further to:\n" << R.Source;
  }
}
