//===-- tests/fuzz/CorpusReplayTest.cpp - Regression corpus replay ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every committed corpus file under tests/corpus/ through the
/// differential oracle with the recorded inputs (taint verdict, seed,
/// injected fault) and asserts the recorded classification reproduces.
/// The corpus is the regression memory of the fuzzing subsystem: a finding
/// minimized once must keep reproducing forever.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

struct CorpusFile {
  std::string Path;
  CorpusEntry Entry;
};

std::vector<CorpusFile> loadCorpus() {
  std::vector<CorpusFile> Files;
  std::filesystem::path Dir(COMMCSL_CORPUS_DIR);
  if (!std::filesystem::exists(Dir))
    return Files;
  std::vector<std::filesystem::path> Paths;
  for (const auto &DE : std::filesystem::directory_iterator(Dir))
    if (DE.is_regular_file() && DE.path().extension() == ".hv")
      Paths.push_back(DE.path());
  std::sort(Paths.begin(), Paths.end());
  for (const auto &P : Paths) {
    std::ifstream In(P);
    std::ostringstream OS;
    OS << In.rdbuf();
    std::optional<CorpusEntry> E = parseCorpusEntry(OS.str());
    EXPECT_TRUE(E.has_value()) << P << ": malformed corpus header";
    if (E)
      Files.push_back({P.string(), *E});
  }
  return Files;
}

std::string corpusWith(const std::string &HeaderLine) {
  return "// fuzz-corpus v1\n"
         "// class: soundness-violation\n" +
         HeaderLine + "\n\nvar x: Int := 0;\n";
}

} // namespace

TEST(CorpusParseTest, MalformedSeedIsAParseFailureNotACrash) {
  // Corpus files are hand-editable; a corrupt number must surface as a
  // parse failure (nullopt), never as a std::stoull exception.
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed: abc")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed:")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed: 12x")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed: -1")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed: +1")));
  EXPECT_FALSE(
      parseCorpusEntry(corpusWith("// seed: 99999999999999999999999")));
}

TEST(CorpusParseTest, MalformedSeedIndexIsAParseFailureNotACrash) {
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed-index: abc")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed-index: 7th")));
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed-index: -3")));
  // Fits in uint64_t but not in the unsigned SeedIndex field.
  EXPECT_FALSE(parseCorpusEntry(corpusWith("// seed-index: 4294967296")));
}

TEST(CorpusParseTest, BoundaryNumericHeadersParse) {
  std::optional<CorpusEntry> E =
      parseCorpusEntry(corpusWith("// seed: 18446744073709551615"));
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Seed, UINT64_MAX);
  E = parseCorpusEntry(corpusWith("// seed-index: 4294967295"));
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->SeedIndex, 4294967295u);
}

TEST(CorpusReplayTest, CorpusIsNonEmpty) {
  // The PR ships with at least two minimized findings; an empty directory
  // means the corpus was lost, not that there is nothing to check.
  EXPECT_GE(loadCorpus().size(), 2u)
      << "expected committed corpus files under " << COMMCSL_CORPUS_DIR;
}

TEST(CorpusReplayTest, EveryEntryReproducesItsRecordedClass) {
  for (const CorpusFile &F : loadCorpus()) {
    OracleConfig Config;
    Config.Inject = F.Entry.Inject;
    DifferentialOracle Oracle(Config);
    OracleResult R =
        Oracle.evaluate(F.Entry.Source, F.Entry.GenTainted, F.Entry.Seed);
    EXPECT_EQ(R.Class, F.Entry.Class)
        << F.Path << ": recorded " << oracleClassName(F.Entry.Class)
        << ", replay produced " << oracleClassName(R.Class) << " ("
        << R.Detail << ")";
  }
}

TEST(CorpusReplayTest, EntriesAreMinimizedWitnesses) {
  // Committed entries come out of the shrinker: re-shrinking must find
  // nothing further to remove (the corpus stores fixpoints, not raw
  // findings).
  for (const CorpusFile &F : loadCorpus()) {
    if (F.Entry.Class == OracleClass::GeneratorInvalid)
      continue;
    ShrinkConfig Config;
    Config.Oracle.Inject = F.Entry.Inject;
    Config.MaxOracleRuns = 150;
    ShrinkResult R = shrinkProgram(F.Entry.Source, F.Entry.GenTainted,
                                   F.Entry.Class, F.Entry.Seed, Config);
    EXPECT_EQ(R.Class, F.Entry.Class) << F.Path;
    EXPECT_EQ(R.Stats.Reductions, 0u)
        << F.Path << ": corpus entry shrank further to:\n" << R.Source;
  }
}
