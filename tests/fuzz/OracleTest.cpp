//===-- tests/fuzz/OracleTest.cpp - Differential oracle tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classification matrix of the differential oracle: every reachable
/// (taint, verifier outcome, empirical outcome) combination maps to the
/// documented OracleClass, fault injection flips the verifier verdict
/// without touching the empirical phases, and evaluation is deterministic.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "testgen/ProgramGen.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

/// Verifies and runs clean: low output computed from the low input only.
const char *SecureProgram = R"(
procedure main(l: int, h: int) returns (out: int)
  requires low(l)
  ensures low(out)
{
  var x: int := l + 1;
  out := x * 2;
}
)";

/// Direct leak: the verifier must reject it, and when fault injection
/// forces acceptance the NI sweep observes the leak.
const char *LeakyProgram = R"(
procedure main(l: int, h: int) returns (out: int)
  requires low(l)
  ensures low(out)
{
  out := h;
}
)";

/// Secure in every execution (out is always zero) but beyond the
/// entailment engine, which cannot prove `low(h % 1)`: a *genuine*
/// completeness gap, unlike LeakyProgram above. The one shape where an
/// injected accept-all fault leaves no empirical trace — the forged
/// certificate is then the only witness.
const char *SecureButRejectedProgram = R"(
procedure main(l: int, h: int) returns (out: int)
  requires low(l)
  ensures low(out)
{
  out := h % 1;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Name round-trips (used by reports and corpus headers).
//===----------------------------------------------------------------------===//

TEST(OracleNamesTest, ClassNamesRoundTrip) {
  for (OracleClass C :
       {OracleClass::Agree, OracleClass::SoundnessViolation,
        OracleClass::CompletenessGap, OracleClass::CertInvalid,
        OracleClass::Flake, OracleClass::GeneratorInvalid}) {
    auto Back = oracleClassByName(oracleClassName(C));
    ASSERT_TRUE(Back.has_value()) << oracleClassName(C);
    EXPECT_EQ(*Back, C);
  }
  EXPECT_FALSE(oracleClassByName("bogus").has_value());
}

TEST(OracleNamesTest, FaultNamesRoundTrip) {
  for (OracleFault F :
       {OracleFault::None, OracleFault::AcceptAll, OracleFault::RejectAll}) {
    auto Back = oracleFaultByName(oracleFaultName(F));
    ASSERT_TRUE(Back.has_value()) << oracleFaultName(F);
    EXPECT_EQ(*Back, F);
  }
  EXPECT_FALSE(oracleFaultByName("bogus").has_value());
}

//===----------------------------------------------------------------------===//
// The classification matrix.
//===----------------------------------------------------------------------===//

TEST(OracleTest, SecureUntaintedAgrees) {
  DifferentialOracle Oracle;
  OracleResult R = Oracle.evaluate(SecureProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(R.Class, OracleClass::Agree) << R.Detail;
  EXPECT_TRUE(R.Verdicts.ParseOk);
  EXPECT_TRUE(R.Verdicts.Verified);
  EXPECT_FALSE(R.Verdicts.Injected);
  EXPECT_TRUE(R.Verdicts.NIRan);
  EXPECT_TRUE(R.Verdicts.NISecure);
  EXPECT_TRUE(R.Verdicts.SchedRan);
  EXPECT_TRUE(R.Verdicts.SchedStable);
  EXPECT_FALSE(R.Verdicts.EmpiricalLeak);
}

TEST(OracleTest, LeakyTaintedRejectedAgrees) {
  // Tainted + rejected is the other agreement cell: the verifier did its
  // job. No empirical phase runs on a rejected program.
  DifferentialOracle Oracle;
  OracleResult R = Oracle.evaluate(LeakyProgram, /*GenTainted=*/true, 7);
  EXPECT_EQ(R.Class, OracleClass::Agree) << R.Detail;
  EXPECT_FALSE(R.Verdicts.Verified);
  EXPECT_FALSE(R.Verdicts.NIRan);
  EXPECT_FALSE(R.Verdicts.SchedRan);
}

TEST(OracleTest, RejectedUntaintedIsCompletenessGap) {
  // A secure-by-claim program the verifier rejects: here the "claim" is
  // wrong on purpose (the program leaks), but the oracle only knows the
  // taint bit it is handed, so this exercises the completeness-gap cell.
  DifferentialOracle Oracle;
  OracleResult R = Oracle.evaluate(LeakyProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(R.Class, OracleClass::CompletenessGap) << R.Detail;
  EXPECT_NE(R.Detail.find("rejected"), std::string::npos) << R.Detail;
}

TEST(OracleTest, InjectedAcceptanceOfLeakIsSoundnessViolation) {
  OracleConfig Config;
  Config.Inject = OracleFault::AcceptAll;
  DifferentialOracle Oracle(Config);
  OracleResult R = Oracle.evaluate(LeakyProgram, /*GenTainted=*/true, 7);
  EXPECT_EQ(R.Class, OracleClass::SoundnessViolation) << R.Detail;
  EXPECT_TRUE(R.Verdicts.Injected);
  EXPECT_TRUE(R.Verdicts.Verified); // post-injection verdict
  // The empirical phases run even though the taint bit alone settles the
  // class: the concrete-leak evidence is what the shrinker preserves.
  EXPECT_TRUE(R.Verdicts.NIRan);
  EXPECT_TRUE(R.Verdicts.EmpiricalLeak);
  EXPECT_NE(R.Detail.find("injected"), std::string::npos) << R.Detail;
}

TEST(OracleTest, InjectedAcceptanceOfSecureProgramStillAgrees) {
  // AcceptAll on an already-verified secure program changes nothing: the
  // injection bit stays false-positive-free.
  OracleConfig Config;
  Config.Inject = OracleFault::AcceptAll;
  DifferentialOracle Oracle(Config);
  OracleResult R = Oracle.evaluate(SecureProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(R.Class, OracleClass::Agree) << R.Detail;
  EXPECT_FALSE(R.Verdicts.Injected);
}

TEST(OracleTest, InjectedRejectionOfSecureProgramIsCompletenessGap) {
  OracleConfig Config;
  Config.Inject = OracleFault::RejectAll;
  DifferentialOracle Oracle(Config);
  OracleResult R = Oracle.evaluate(SecureProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(R.Class, OracleClass::CompletenessGap) << R.Detail;
  EXPECT_TRUE(R.Verdicts.Injected);
  EXPECT_FALSE(R.Verdicts.Verified);
}

TEST(OracleTest, HonestCertificatesReplayClean) {
  // Verdict 6 in the quiet case: every honest evaluation emits a
  // certificate and the independent checker re-derives it — on accepted
  // and on rejected programs alike.
  DifferentialOracle Oracle;
  OracleResult A = Oracle.evaluate(SecureProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(A.Class, OracleClass::Agree) << A.Detail;
  EXPECT_TRUE(A.Verdicts.CertRan);
  EXPECT_TRUE(A.Verdicts.CertOk) << A.Verdicts.CertError;

  OracleResult B = Oracle.evaluate(LeakyProgram, /*GenTainted=*/true, 7);
  EXPECT_TRUE(B.Verdicts.CertRan);
  EXPECT_TRUE(B.Verdicts.CertOk) << B.Verdicts.CertError;
}

TEST(OracleTest, ForgedAcceptanceWithoutEmpiricalLeakIsCertInvalid) {
  // Honest baseline: a genuine completeness gap whose rejection
  // certificate checks out.
  DifferentialOracle Honest;
  OracleResult H =
      Honest.evaluate(SecureButRejectedProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(H.Class, OracleClass::CompletenessGap) << H.Detail;
  EXPECT_TRUE(H.Verdicts.CertRan);
  EXPECT_TRUE(H.Verdicts.CertOk) << H.Verdicts.CertError;

  // Accept-all injection on the same program: the empirical phases see
  // nothing (it really is secure), so without certificate replay the
  // fault would vanish into "agree". The forged certificate fails the
  // checker and the class is campaign-fatal cert-invalid.
  OracleConfig Config;
  Config.Inject = OracleFault::AcceptAll;
  DifferentialOracle Oracle(Config);
  OracleResult R =
      Oracle.evaluate(SecureButRejectedProgram, /*GenTainted=*/false, 7);
  EXPECT_EQ(R.Class, OracleClass::CertInvalid) << R.Detail;
  EXPECT_TRUE(R.Verdicts.Injected);
  EXPECT_TRUE(R.Verdicts.Verified);
  EXPECT_FALSE(R.Verdicts.EmpiricalLeak);
  EXPECT_TRUE(R.Verdicts.CertRan);
  EXPECT_FALSE(R.Verdicts.CertOk);
  EXPECT_FALSE(R.Verdicts.CertError.empty());
  EXPECT_NE(R.Detail.find("checker"), std::string::npos) << R.Detail;
}

TEST(OracleTest, UnparseableSourceIsGeneratorInvalid) {
  DifferentialOracle Oracle;
  OracleResult R = Oracle.evaluate("procedure main( {", false, 7);
  EXPECT_EQ(R.Class, OracleClass::GeneratorInvalid);
  EXPECT_FALSE(R.Verdicts.ParseOk);
  EXPECT_NE(R.Detail.find("parse"), std::string::npos) << R.Detail;
}

TEST(OracleTest, MissingEntryProcIsGeneratorInvalid) {
  DifferentialOracle Oracle;
  OracleResult R = Oracle.evaluate(R"(
    procedure helper() returns (out: int) { out := 0; }
  )",
                                   false, 7);
  EXPECT_EQ(R.Class, OracleClass::GeneratorInvalid);
  EXPECT_NE(R.Detail.find("main"), std::string::npos) << R.Detail;
}

//===----------------------------------------------------------------------===//
// Determinism and generated-program agreement.
//===----------------------------------------------------------------------===//

TEST(OracleTest, EvaluationIsDeterministic) {
  DifferentialOracle Oracle;
  for (uint64_t Seed : {1ull, 42ull, 999ull}) {
    OracleResult A = Oracle.evaluate(SecureProgram, false, Seed);
    OracleResult B = Oracle.evaluate(SecureProgram, false, Seed);
    EXPECT_EQ(A.Class, B.Class);
    EXPECT_EQ(A.Detail, B.Detail);
    EXPECT_EQ(A.Verdicts.EmpiricalLeak, B.Verdicts.EmpiricalLeak);
  }
}

TEST(OracleTest, GeneratedSeedsAgree) {
  // A miniature campaign inline: generator taint and verifier verdict must
  // agree on every seed, leaky and secure alike.
  DifferentialOracle Oracle;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    GenConfig GC;
    GC.Seed = Seed * 7919 + 1;
    GC.AllowLeakyOutput = true;
    GeneratedProgram GP = generateProgram(GC);
    OracleResult R = Oracle.evaluate(GP.Source, GP.OutputTainted, GC.Seed);
    EXPECT_EQ(R.Class, OracleClass::Agree)
        << "seed " << GC.Seed << " (" << oracleClassName(R.Class)
        << "): " << R.Detail << "\n"
        << GP.Source;
  }
}
