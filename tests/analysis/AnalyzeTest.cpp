//===-- tests/analysis/AnalyzeTest.cpp - analyze verb & triage tests -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the static pre-analysis as wired into the toolchain:
///
///  * exhaustiveness over examples/programs/ — every shipped program
///    carries a committed expected-diagnostics sidecar
///    (`<file>.analysis`), clean files included, the same contract CI
///    enforces with `hyperviper analyze --check`;
///  * determinism — the analyze report is byte-identical at every job
///    count;
///  * triage — `--triage` produces the same verdict as the full pipeline
///    on every example while skipping at least one relational proof
///    somewhere in the corpus (the fast path must both be sound and
///    actually fire).
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Analyze.h"

#include "hyperviper/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace commcsl;

namespace {

std::string examplesDir() {
  return std::filesystem::path(COMMCSL_EXAMPLES_DIR).string();
}

std::vector<std::string> exampleFiles() {
  std::vector<std::string> Files;
  for (const auto &DE :
       std::filesystem::recursive_directory_iterator(examplesDir()))
    if (DE.is_regular_file() && DE.path().extension() == ".hv")
      Files.push_back(DE.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

TEST(AnalyzeTest, EveryExampleHasAMatchingSidecar) {
  AnalyzeOptions Options;
  Options.Check = true;
  AnalyzeResult R = runAnalyze({examplesDir()}, Options);
  ASSERT_FALSE(R.Files.empty());
  for (const AnalyzeFileResult &F : R.Files)
    EXPECT_TRUE(F.SidecarOk)
        << F.Display << ": analysis block missing or not matching its "
        << "committed sidecar (run `hyperviper analyze --write`). Block:\n"
        << F.Block;
  EXPECT_TRUE(R.Ok);
}

TEST(AnalyzeTest, MissingSidecarFailsCheck) {
  // The exhaustiveness contract has no "clean files need none" escape
  // hatch: a program without a committed sidecar must fail --check even
  // when it is provably low.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "commcsl-analyze-nosidecar";
  fs::create_directories(Dir);
  {
    std::ofstream Out(Dir / "clean.hv");
    Out << "procedure main(l: int) returns (o: int)\n"
           "  requires low(l)\n  ensures low(o)\n{ o := l; }\n";
  }
  AnalyzeOptions Options;
  Options.Check = true;
  AnalyzeResult R = runAnalyze({Dir.string()}, Options);
  ASSERT_EQ(R.Files.size(), 1u);
  EXPECT_EQ(R.Files[0].Verdict, "provably-low");
  EXPECT_FALSE(R.Files[0].SidecarOk);
  EXPECT_FALSE(R.Ok);

  // --write creates it; --check then passes.
  AnalyzeOptions W;
  W.Write = true;
  runAnalyze({Dir.string()}, W);
  AnalyzeResult R2 = runAnalyze({Dir.string()}, Options);
  ASSERT_EQ(R2.Files.size(), 1u);
  EXPECT_TRUE(R2.Files[0].SidecarOk);
  EXPECT_TRUE(R2.Ok);
  fs::remove_all(Dir);
}

TEST(AnalyzeTest, ReportIsByteIdenticalAtEveryJobCount) {
  std::string Ref;
  for (unsigned Jobs : {1u, 2u, 5u, 13u}) {
    AnalyzeOptions Options;
    Options.Jobs = Jobs;
    AnalyzeResult R = runAnalyze({examplesDir()}, Options);
    if (Ref.empty())
      Ref = R.str();
    else
      EXPECT_EQ(R.str(), Ref) << "analyze diverges at --jobs " << Jobs;
  }
  EXPECT_FALSE(Ref.empty());
}

TEST(AnalyzeTest, ParseErrorProducesParseErrorBlock) {
  AnalyzeFileResult F =
      analyzeSourceBlock("procedure main( {", "bad.hv");
  EXPECT_EQ(F.Verdict, "parse-error");
  EXPECT_EQ(F.Block.rfind("verdict: parse-error\n", 0), 0u);
}

//===----------------------------------------------------------------------===//
// Triage fast path
//===----------------------------------------------------------------------===//

TEST(TriageTest, VerdictsIdenticalToFullPipelineAcrossCorpus) {
  unsigned TotalSkipped = 0;
  for (const std::string &Path : exampleFiles()) {
    Driver Full{DriverOptions{}};
    DriverResult FR = Full.verifyFile(Path);

    DriverOptions TO;
    TO.Triage = true;
    Driver Triaged(TO);
    DriverResult TR = Triaged.verifyFile(Path);

    EXPECT_EQ(FR.ParseOk, TR.ParseOk) << Path;
    EXPECT_EQ(FR.Verified, TR.Verified)
        << Path << ": --triage changed the verdict";
    // Per-procedure verdicts agree too (the skip must be invisible).
    ASSERT_EQ(FR.Verification.Procs.size(), TR.Verification.Procs.size())
        << Path;
    for (size_t I = 0; I < FR.Verification.Procs.size(); ++I) {
      EXPECT_EQ(FR.Verification.Procs[I].Proc, TR.Verification.Procs[I].Proc);
      EXPECT_EQ(FR.Verification.Procs[I].Ok, TR.Verification.Procs[I].Ok)
          << Path << " proc " << FR.Verification.Procs[I].Proc;
    }
    TotalSkipped += TR.TriageSkipped;
    // The full pipeline never reports a skip.
    EXPECT_EQ(FR.TriageSkipped, 0u);
  }
  // The fast path must actually fire somewhere in the corpus.
  EXPECT_GE(TotalSkipped, 1u);
}

TEST(TriageTest, SkippedProcIsMarked) {
  DriverOptions TO;
  TO.Triage = true;
  Driver D(TO);
  DriverResult R =
      D.verifyFile(examplesDir() + "/public_stats.hv");
  ASSERT_TRUE(R.ParseOk);
  EXPECT_TRUE(R.Verified);
  ASSERT_EQ(R.Verification.Procs.size(), 1u);
  EXPECT_TRUE(R.Verification.Procs[0].SkippedByTriage);
  EXPECT_EQ(R.TriageSkipped, 1u);
}

TEST(TriageTest, TriageOffLeavesVerdictsUnmarked) {
  Driver D{DriverOptions{}};
  DriverResult R = D.verifyFile(examplesDir() + "/public_stats.hv");
  ASSERT_TRUE(R.ParseOk);
  EXPECT_TRUE(R.Verified);
  ASSERT_EQ(R.Verification.Procs.size(), 1u);
  EXPECT_FALSE(R.Verification.Procs[0].SkippedByTriage);
  EXPECT_EQ(R.TriageSkipped, 0u);
}
