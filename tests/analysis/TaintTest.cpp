//===-- tests/analysis/TaintTest.cpp - Taint analysis tests ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural tests for the flow-sensitive taint analysis: explicit flows,
/// implicit (pc) flows, scheduling channels introduced by `par`, the
/// conservative resource rules, interprocedural summaries, and the triage
/// fragment / verifier-approximation contract.
///
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

ProcTaintResult analyze(const std::string &Source, bool Strict = false,
                        const std::string &ProcName = "main") {
  Program P = parseChecked(Source);
  const ProcDecl *Proc = P.findProc(ProcName);
  EXPECT_NE(Proc, nullptr);
  TaintConfig TC;
  TC.VerifierApprox = Strict;
  return analyzeProcTaint(P, *Proc, TC, nullptr);
}

} // namespace

TEST(TaintTest, ExplicitFlowToLowReturnIsCaught) {
  ProcTaintResult R = analyze("procedure main(h: int) returns (out: int)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  out := h;\n"
                              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
  ASSERT_FALSE(R.Findings.empty());
}

TEST(TaintTest, LowToLowIsProvable) {
  ProcTaintResult R = analyze("procedure main(l: int) returns (out: int)\n"
                              "  requires low(l)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  out := l + 1;\n"
                              "}\n");
  EXPECT_TRUE(R.ProvablyLow) << (R.Findings.empty()
                                     ? ""
                                     : R.Findings.front().Message);
  EXPECT_TRUE(R.Summary.Secure);
}

TEST(TaintTest, ImplicitFlowThroughBranchIsCaught) {
  // No assignment of h itself: the leak is purely control-dependence.
  ProcTaintResult R = analyze("procedure main(h: int) returns (out: int)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  if (h > 0) { out := 1; } else { out := 0; }\n"
                              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
}

TEST(TaintTest, BranchOnLowDataIsFine) {
  ProcTaintResult R = analyze("procedure main(l: int) returns (out: int)\n"
                              "  requires low(l)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  if (l > 0) { out := 1; } else { out := 0; }\n"
                              "}\n");
  EXPECT_TRUE(R.ProvablyLow);
}

TEST(TaintTest, HighDataConfinedToScratchIsFine) {
  // h flows into a local that never reaches a sink.
  ProcTaintResult R = analyze("procedure main(h: int) returns (out: int)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  var scratch: int := h * 2;\n"
                              "  out := 7;\n"
                              "}\n");
  EXPECT_TRUE(R.ProvablyLow);
}

TEST(TaintTest, OutputOfHighIsASink) {
  ProcTaintResult R = analyze("procedure main(h: int) returns (out: int)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  out := 0;\n"
                              "  output h;\n"
                              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
}

TEST(TaintTest, OutputInsideParIsScheduleDependent) {
  // Even low outputs inside par leak through emission order.
  ProcTaintResult R = analyze("procedure main(l: int) returns (out: int)\n"
                              "  requires low(l)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  out := 0;\n"
                              "  par { output l; } and { output l + 1; }\n"
                              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
}

TEST(TaintTest, CrossParWriteReadsAsTop) {
  // The left branch reads b while the right branch writes it: the observed
  // value depends on the schedule even though both sources are low.
  ProcTaintResult R = analyze("procedure main(l: int) returns (out: int)\n"
                              "  requires low(l)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  var a: int := 0;\n"
                              "  var b: int := 0;\n"
                              "  par { a := b; } and { b := l; }\n"
                              "  out := a;\n"
                              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
}

TEST(TaintTest, DisjointParBranchesStayPrecise) {
  ProcTaintResult R = analyze("procedure main(l: int) returns (out: int)\n"
                              "  requires low(l)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  var a: int := 0;\n"
                              "  var b: int := 0;\n"
                              "  par { a := l; } and { b := l + 1; }\n"
                              "  out := a + b;\n"
                              "}\n");
  EXPECT_TRUE(R.ProvablyLow) << (R.Findings.empty()
                                     ? ""
                                     : R.Findings.front().Message);
}

TEST(TaintTest, UnshareOfSequentiallyLowResourceIsConservativeButClean) {
  // Sequential share/perform/unshare with low data: the state level stays
  // low, so publishing the unshared value is fine.
  ProcTaintResult R = analyze(
      "resource Counter {\n"
      "  state: int;\n"
      "  alpha(v) = v;\n"
      "  shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }\n"
      "}\n"
      "procedure main(l: int) returns (out: int)\n"
      "  requires low(l)\n"
      "  ensures low(out)\n"
      "{\n"
      "  share c: Counter := 0;\n"
      "  atomic c { perform c.Add(l); }\n"
      "  var fin: int := 0;\n"
      "  fin := unshare c;\n"
      "  out := fin;\n"
      "}\n");
  EXPECT_TRUE(R.ProvablyLow) << (R.Findings.empty()
                                     ? ""
                                     : R.Findings.front().Message);
}

TEST(TaintTest, HighArgToLowActionIsASink) {
  ProcTaintResult R = analyze(
      "resource Counter {\n"
      "  state: int;\n"
      "  alpha(v) = v;\n"
      "  shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }\n"
      "}\n"
      "procedure main(h: int) returns (out: int)\n"
      "  ensures low(out)\n"
      "{\n"
      "  share c: Counter := 0;\n"
      "  atomic c { perform c.Add(h); }\n"
      "  var fin: int := 0;\n"
      "  fin := unshare c;\n"
      "  out := 0;\n"
      "}\n");
  EXPECT_FALSE(R.ProvablyLow);
  bool SawSink = false;
  for (const TaintFinding &F : R.Findings)
    SawSink |= F.Message.find("low argument") != std::string::npos;
  EXPECT_TRUE(SawSink);
}

TEST(TaintTest, ResvalIsAlwaysTop) {
  ProcTaintResult R = analyze(
      "resource Counter {\n"
      "  state: int;\n"
      "  alpha(v) = v;\n"
      "  shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }\n"
      "}\n"
      "procedure main(l: int) returns (out: int)\n"
      "  requires low(l)\n"
      "  ensures low(out)\n"
      "{\n"
      "  share c: Counter := 0;\n"
      "  var seen: int := 0;\n"
      "  atomic c { seen := resval(c); perform c.Add(l); }\n"
      "  var fin: int := 0;\n"
      "  fin := unshare c;\n"
      "  out := seen;\n"
      "}\n");
  EXPECT_FALSE(R.ProvablyLow);
}

TEST(TaintTest, InterproceduralSummaryPropagates) {
  const char *Src = "procedure double(l: int) returns (r: int)\n"
                    "  requires low(l)\n"
                    "  ensures low(r)\n"
                    "{\n"
                    "  r := l * 2;\n"
                    "}\n"
                    "procedure main(l: int) returns (out: int)\n"
                    "  requires low(l)\n"
                    "  ensures low(out)\n"
                    "{\n"
                    "  out := call double(l);\n"
                    "}\n";
  Program P = parseChecked(Src);
  TaintConfig TC;
  std::map<std::string, ProcTaintSummary> Summaries;
  ProcTaintResult Callee =
      analyzeProcTaint(P, *P.findProc("double"), TC, &Summaries);
  ASSERT_TRUE(Callee.ProvablyLow);
  Summaries["double"] = Callee.Summary;
  ProcTaintResult Caller =
      analyzeProcTaint(P, *P.findProc("main"), TC, &Summaries);
  EXPECT_TRUE(Caller.ProvablyLow) << (Caller.Findings.empty()
                                          ? ""
                                          : Caller.Findings.front().Message);
  // Without the summary the same call havocs the result.
  ProcTaintResult Blind = analyzeProcTaint(P, *P.findProc("main"), TC, nullptr);
  EXPECT_FALSE(Blind.ProvablyLow);
}

TEST(TaintTest, FindingsAreLocationOrdered) {
  ProcTaintResult R = analyze("procedure main(h: int) returns (out: int)\n"
                              "  ensures low(out)\n"
                              "{\n"
                              "  output h;\n"
                              "  out := h;\n"
                              "}\n");
  ASSERT_GE(R.Findings.size(), 2u);
  for (size_t I = 1; I < R.Findings.size(); ++I) {
    const SourceLoc &A = R.Findings[I - 1].Loc;
    const SourceLoc &B = R.Findings[I].Loc;
    EXPECT_TRUE(A.Line < B.Line || (A.Line == B.Line && A.Column <= B.Column));
  }
}

//===----------------------------------------------------------------------===//
// Triage fragment and verifier-approximation mode
//===----------------------------------------------------------------------===//

TEST(TaintTest, TriageFragmentAcceptsSimpleSequentialCode) {
  Program P = parseChecked("procedure main(l: int) returns (out: int)\n"
                           "  requires low(l)\n"
                           "  ensures low(out)\n"
                           "{\n"
                           "  var i: int := 0;\n"
                           "  while (i < l) invariant low(i) { i := i + 1; }\n"
                           "  out := i;\n"
                           "  output out;\n"
                           "}\n");
  EXPECT_TRUE(triageEligible(*P.findProc("main")));
}

TEST(TaintTest, TriageFragmentExcludesConcurrencyAndDiv) {
  Program Par = parseChecked("procedure main(l: int) returns (out: int)\n"
                             "  requires low(l)\n"
                             "  ensures low(out)\n"
                             "{\n"
                             "  var a: int := 0;\n"
                             "  par { a := l; } and { out := 1; }\n"
                             "}\n");
  EXPECT_FALSE(triageEligible(*Par.findProc("main")));

  Program Div = parseChecked("procedure main(l: int) returns (out: int)\n"
                             "  requires low(l)\n"
                             "  ensures low(out)\n"
                             "{\n"
                             "  out := l / 2;\n"
                             "}\n");
  EXPECT_FALSE(triageEligible(*Div.findProc("main")));
}

TEST(TaintTest, ClosedTrueLevelGuardReadsAsLow) {
  // A level guard with no free variables folds statically: `1 > 0` is
  // true, so the conditionally-low parameter is low for the whole run.
  ProcTaintResult R =
      analyze("procedure main(c: int) returns (out: int)\n"
              "  requires level(c) = if 1 > 0 then low else high\n"
              "  ensures low(out)\n"
              "{\n"
              "  out := c;\n"
              "}\n");
  EXPECT_TRUE(R.ProvablyLow) << (R.Findings.empty()
                                     ? ""
                                     : R.Findings.front().Message);
}

TEST(TaintTest, ClosedFalseLevelGuardReadsAsHigh) {
  ProcTaintResult R =
      analyze("procedure main(c: int) returns (out: int)\n"
              "  requires level(c) = if 0 > 1 then low else high\n"
              "  ensures low(out)\n"
              "{\n"
              "  out := c;\n"
              "}\n");
  EXPECT_FALSE(R.ProvablyLow);
  ASSERT_FALSE(R.Findings.empty());
}

TEST(TaintTest, OpenLevelGuardJoinsToHighWithExplanation) {
  // The guard depends on an input, so the static fragment cannot decide
  // it: the parameter is top, the conditional ensures atom is flagged as
  // beyond the fragment (the relational verifier owns it), and the
  // procedure is not triage-eligible.
  const char *Src =
      "procedure main(l: int, c: int) returns (out: int)\n"
      "  requires low(l)\n"
      "  requires level(c) = if l > 0 then low else high\n"
      "  ensures level(out) = if l > 0 then low else high\n"
      "{\n"
      "  if (l > 0) { out := c; } else { out := 0; }\n"
      "}\n";
  ProcTaintResult R = analyze(Src);
  EXPECT_FALSE(R.ProvablyLow);
  bool Explained = false;
  for (const TaintFinding &F : R.Findings)
    if (F.Message.find("not statically decidable") != std::string::npos)
      Explained = true;
  EXPECT_TRUE(Explained);
  Program P = parseChecked(Src);
  EXPECT_FALSE(triageEligible(*P.findProc("main")));
}

TEST(TaintTest, DeclassifyIsAnExplicitLintedSink) {
  // declassify() launders the level (its result is statically low) but
  // every release site is linted: the program is secure only under
  // delimited release, which the triage fast path must never certify.
  const char *Src = "procedure main(h: int) returns (out: int)\n"
                    "  ensures low(out)\n"
                    "{\n"
                    "  out := declassify(h % 2);\n"
                    "}\n";
  ProcTaintResult R = analyze(Src);
  EXPECT_FALSE(R.ProvablyLow);
  bool Linted = false;
  for (const TaintFinding &F : R.Findings)
    if (F.Message.find("declassify release") != std::string::npos)
      Linted = true;
  EXPECT_TRUE(Linted);
  Program P = parseChecked(Src);
  EXPECT_FALSE(triageEligible(*P.findProc("main")));
}

TEST(TaintTest, StrictModeHavocsLoopTargetsWithoutInvariant) {
  // The loop pins nothing low, so in VerifierApprox mode `x` is havocked at
  // the head and the procedure is not strictly provable — even though the
  // permissive analysis can see x stays low.
  const char *Src = "procedure main(l: int) returns (out: int)\n"
                    "  requires low(l)\n"
                    "  ensures low(out)\n"
                    "{\n"
                    "  var x: int := 0;\n"
                    "  var i: int := 0;\n"
                    "  while (i < l) invariant low(i) { x := x + 1; i := i + 1; }\n"
                    "  out := x;\n"
                    "}\n";
  ProcTaintResult Permissive = analyze(Src, /*Strict=*/false);
  EXPECT_TRUE(Permissive.ProvablyLow);
  ProcTaintResult Strict = analyze(Src, /*Strict=*/true);
  EXPECT_TRUE(Strict.Eligible);
  EXPECT_FALSE(Strict.ProvablyLow);
}

TEST(TaintTest, StrictProvableImpliesVerifierFragmentShape) {
  const char *Src = "procedure main(l: int) returns (out: int)\n"
                    "  requires low(l)\n"
                    "  ensures low(out)\n"
                    "{\n"
                    "  var i: int := 0;\n"
                    "  var t: int := 0;\n"
                    "  while (i < l) invariant low(i) invariant low(t)\n"
                    "  { t := t + i; i := i + 1; }\n"
                    "  out := t;\n"
                    "}\n";
  ProcTaintResult Strict = analyze(Src, /*Strict=*/true);
  EXPECT_TRUE(Strict.Eligible);
  EXPECT_TRUE(Strict.ProvablyLow) << (Strict.Findings.empty()
                                          ? ""
                                          : Strict.Findings.front().Message);
}
