//===-- tests/analysis/DataflowTest.cpp - Dataflow framework tests ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the generic monotone worklist solver on two simple problems
/// phrased directly against the CFG: forward reachability ("which nodes can
/// execute") and a backward liveness-style property. Both have known closed
/// forms on small graphs, so the fixpoints are checked exactly; solving
/// twice must give identical results (determinism).
///
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/CFG.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

/// Builds a CFG over \p Prog (kept alive by the caller: CFG holds
/// pointers into the program's AST).
CFG buildCFG(Program &Prog, const std::string &Source) {
  Prog = parseChecked(Source);
  const ProcDecl *Proc = Prog.findProc("main");
  EXPECT_NE(Proc, nullptr);
  return CFG::build(*Proc);
}

/// Forward may-reach: State is "control can get here" (0/1 — int rather
/// than bool so DataflowResult's vectors are real containers, not the
/// std::vector<bool> proxy).
struct ReachProblem {
  using State = int;
  State bottom(const CFG &) const { return 0; }
  State boundary(const CFG &) const { return 1; }
  bool join(State &Into, const State &From) const {
    if (Into || !From)
      return false;
    Into = 1;
    return true;
  }
  State transfer(const CFG &, unsigned, const State &In) const { return In; }
};

/// Backward demand: a node "needs" the exit if some path reaches it. On a
/// graph without dead code every node needs the exit.
struct DemandProblem {
  using State = int;
  State bottom(const CFG &) const { return 0; }
  State boundary(const CFG &) const { return 1; }
  bool join(State &Into, const State &From) const {
    if (Into || !From)
      return false;
    Into = 1;
    return true;
  }
  State transfer(const CFG &, unsigned, const State &In) const { return In; }
};

} // namespace

TEST(DataflowTest, ForwardReachabilityCoversConnectedGraph) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var i: int := 0;\n"
                   "  while (i < l) invariant low(i) { i := i + 1; }\n"
                   "  if (i > 2) { out := 1; } else { out := 0; }\n"
                   "}\n");
  ReachProblem P;
  DataflowResult<ReachProblem> R =
      solveDataflow(G, P, DataflowDirection::Forward);
  ASSERT_EQ(R.Out.size(), G.size());
  for (unsigned I = 0; I < G.size(); ++I)
    EXPECT_TRUE(R.Out[I]) << "node " << I << " unreachable in fixpoint";
}

TEST(DataflowTest, BackwardSolveReachesEntry) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var i: int := 0;\n"
                   "  while (i < l) invariant low(i) { i := i + 1; }\n"
                   "  out := i;\n"
                   "}\n");
  DemandProblem P;
  DataflowResult<DemandProblem> R =
      solveDataflow(G, P, DataflowDirection::Backward);
  ASSERT_EQ(R.Out.size(), G.size());
  // Every node lies on a path to exit, including the entry.
  EXPECT_TRUE(R.Out[G.entry()]);
  for (unsigned I = 0; I < G.size(); ++I)
    EXPECT_TRUE(R.Out[I]) << "node " << I;
}

TEST(DataflowTest, SolvingTwiceIsIdentical) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int, h: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var a: int := 0;\n"
                   "  var b: int := 0;\n"
                   "  par { a := l; } and { b := h; }\n"
                   "  out := a;\n"
                   "}\n");
  ReachProblem P1, P2;
  DataflowResult<ReachProblem> R1 =
      solveDataflow(G, P1, DataflowDirection::Forward);
  DataflowResult<ReachProblem> R2 =
      solveDataflow(G, P2, DataflowDirection::Forward);
  EXPECT_EQ(R1.In, R2.In);
  EXPECT_EQ(R1.Out, R2.Out);
}
