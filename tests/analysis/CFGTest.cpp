//===-- tests/analysis/CFGTest.cpp - CFG builder tests ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural tests for the control-flow graph builder: node kinds, edge
/// shape for each structured construct (if / while / par / atomic), pc
/// dependencies, and the cross-par sound-approximation metadata.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace commcsl;
using namespace commcsl::test;

namespace {

/// Builds a CFG over \p Prog (kept alive by the caller: CFG holds
/// pointers into the program's AST).
CFG buildCFG(Program &Prog, const std::string &Source,
             const std::string &ProcName = "main") {
  Prog = parseChecked(Source);
  const ProcDecl *Proc = Prog.findProc(ProcName);
  EXPECT_NE(Proc, nullptr);
  return CFG::build(*Proc);
}

unsigned countKind(const CFG &G, CFGNodeKind K) {
  unsigned N = 0;
  for (const CFGNode &Node : G.nodes())
    N += Node.Kind == K ? 1 : 0;
  return N;
}

const CFGNode *firstOfKind(const CFG &G, CFGNodeKind K) {
  for (const CFGNode &Node : G.nodes())
    if (Node.Kind == K)
      return &Node;
  return nullptr;
}

} // namespace

TEST(CFGTest, StraightLineShape) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var x: int := 1;\n"
                   "  out := x + 1;\n"
                   "}\n");
  EXPECT_EQ(countKind(G, CFGNodeKind::Entry), 1u);
  EXPECT_EQ(countKind(G, CFGNodeKind::Exit), 1u);
  EXPECT_EQ(countKind(G, CFGNodeKind::Branch), 0u);
  // Entry has no predecessors, Exit no successors.
  EXPECT_TRUE(G.node(G.entry()).Preds.empty());
  EXPECT_TRUE(G.node(G.exit()).Succs.empty());
  // Every non-entry node is reachable through predecessor links.
  for (unsigned I = 0; I < G.size(); ++I) {
    if (I != G.entry()) {
      EXPECT_FALSE(G.node(I).Preds.empty()) << "node " << I;
    }
  }
}

TEST(CFGTest, IfProducesBranchAndJoin) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  if (l > 0) { out := 1; } else { out := 2; }\n"
                   "}\n");
  const CFGNode *Br = firstOfKind(G, CFGNodeKind::Branch);
  ASSERT_NE(Br, nullptr);
  EXPECT_EQ(countKind(G, CFGNodeKind::Join), 1u);
  // Both arm entries are recorded and distinct.
  ASSERT_NE(Br->TrueEdge, CFGNode::kNoEdge);
  ASSERT_NE(Br->FalseEdge, CFGNode::kNoEdge);
  EXPECT_NE(Br->TrueEdge, Br->FalseEdge);
  // Arms carry the branch condition as a pc dependency.
  EXPECT_FALSE(G.node(Br->TrueEdge).PCDeps.empty());
  EXPECT_FALSE(G.node(Br->FalseEdge).PCDeps.empty());
  // The branch's source location survives lowering.
  EXPECT_TRUE(Br->Loc.isValid());
}

TEST(CFGTest, WhileProducesLoopHeadWithBackEdge) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main() returns (out: int)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var i: int := 0;\n"
                   "  while (i < 3) invariant low(i) { i := i + 1; }\n"
                   "  out := i;\n"
                   "}\n");
  const CFGNode *Head = firstOfKind(G, CFGNodeKind::LoopHead);
  ASSERT_NE(Head, nullptr);
  ASSERT_NE(Head->TrueEdge, CFGNode::kNoEdge);
  // The loop head must be its own transitive successor (back edge).
  unsigned HeadId = static_cast<unsigned>(Head - &G.node(0));
  bool HasBackEdge = false;
  for (const CFGNode &N : G.nodes())
    HasBackEdge |= std::find(N.Succs.begin(), N.Succs.end(), HeadId) !=
                       N.Succs.end() &&
                   &N != &G.node(G.entry()) && N.Kind != CFGNodeKind::Entry &&
                   !N.PCDeps.empty();
  EXPECT_TRUE(HasBackEdge);
  // Body nodes are pc-dependent on the loop condition.
  EXPECT_FALSE(G.node(Head->TrueEdge).PCDeps.empty());
}

TEST(CFGTest, ParForkJoinAndCrossParMetadata) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var a: int := 0;\n"
                   "  var b: int := 0;\n"
                   "  par { a := l; } and { b := l + 1; }\n"
                   "  out := a + b;\n"
                   "}\n");
  const CFGNode *Fork = firstOfKind(G, CFGNodeKind::ParFork);
  const CFGNode *Join = firstOfKind(G, CFGNodeKind::ParJoin);
  ASSERT_NE(Fork, nullptr);
  ASSERT_NE(Join, nullptr);
  // Branch bodies are flagged InPar and see the sibling's writes as
  // schedule-dependent (CrossParTop).
  bool SawA = false, SawB = false;
  for (const CFGNode &N : G.nodes()) {
    if (!N.InPar)
      continue;
    SawA |= N.CrossParTop.count("b") > 0; // left branch sees right's writes
    SawB |= N.CrossParTop.count("a") > 0;
  }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
  // Single-writer variables are not invalidated at the join.
  EXPECT_EQ(Join->CrossParTop.count("a"), 0u);
  EXPECT_EQ(Join->CrossParTop.count("b"), 0u);
}

TEST(CFGTest, ParJoinInvalidatesMultiWriterVars) {
  Program Prog;
  CFG G = buildCFG(Prog, "procedure main(l: int) returns (out: int)\n"
                   "  requires low(l)\n"
                   "  ensures low(out)\n"
                   "{\n"
                   "  var a: int := 0;\n"
                   "  par { a := l; } and { a := l + 1; }\n"
                   "  out := 0;\n"
                   "}\n");
  const CFGNode *Join = firstOfKind(G, CFGNodeKind::ParJoin);
  ASSERT_NE(Join, nullptr);
  // `a` is written by both branches: its post-par value is a race outcome.
  EXPECT_EQ(Join->CrossParTop.count("a"), 1u);
}

TEST(CFGTest, AtomicProducesEnterExitWithResource) {
  Program Prog;
  CFG G = buildCFG(
      Prog, "resource Counter {\n"
      "  state: int;\n"
      "  alpha(v) = v;\n"
      "  shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }\n"
      "}\n"
      "procedure main(l: int) returns (out: int)\n"
      "  requires low(l)\n"
      "  ensures low(out)\n"
      "{\n"
      "  share c: Counter := 0;\n"
      "  atomic c { perform c.Add(l); }\n"
      "  var fin: int := 0;\n"
      "  fin := unshare c;\n"
      "  out := fin;\n"
      "}\n");
  const CFGNode *Enter = firstOfKind(G, CFGNodeKind::AtomicEnter);
  ASSERT_NE(Enter, nullptr);
  EXPECT_EQ(countKind(G, CFGNodeKind::AtomicExit), 1u);
  EXPECT_EQ(Enter->Res, "c");
}

TEST(CFGTest, StrIsDeterministic) {
  const char *Src = "procedure main(l: int) returns (out: int)\n"
                    "  requires low(l)\n"
                    "  ensures low(out)\n"
                    "{\n"
                    "  if (l > 0) { out := 1; } else { out := 2; }\n"
                    "}\n";
  Program PA, PB;
  CFG A = buildCFG(PA, Src);
  CFG B = buildCFG(PB, Src);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_FALSE(A.str().empty());
}
