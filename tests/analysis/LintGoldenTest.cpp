//===-- tests/analysis/LintGoldenTest.cpp - Golden lint diagnostics --------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-file tests for the lint suite: every `.hv` under
/// tests/analysis/golden/ is analyzed and its report block compared
/// byte-for-byte against the committed `<file>.analysis` sidecar (a missing
/// sidecar asserts a clean provably-low block — same contract as
/// `hyperviper analyze --check`). The goldens cover one file per lint rule,
/// so a rule regressing to silence — or growing a spurious diagnostic —
/// shows up as a diff, caret snippets included.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Analyze.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace commcsl;

namespace {

std::string goldenDir() {
  return std::filesystem::path(COMMCSL_ANALYSIS_GOLDEN_DIR).string();
}

} // namespace

TEST(LintGoldenTest, EveryGoldenBlockMatchesItsSidecar) {
  AnalyzeOptions Options;
  Options.Check = true;
  Options.Jobs = 1;
  AnalyzeResult R = runAnalyze({goldenDir()}, Options);
  ASSERT_FALSE(R.Files.empty()) << "golden directory is empty or missing";
  for (const AnalyzeFileResult &F : R.Files)
    EXPECT_TRUE(F.SidecarOk) << F.Display << " block drifted:\n" << F.Block;
  EXPECT_TRUE(R.Ok);
}

TEST(LintGoldenTest, EveryLintRuleIsCovered) {
  // The golden corpus must keep one witness per rule: if a golden file is
  // deleted or a rule stops firing, this test names the missing mnemonic.
  AnalyzeOptions Options;
  Options.Jobs = 1;
  AnalyzeResult R = runAnalyze({goldenDir()}, Options);
  std::string All;
  for (const AnalyzeFileResult &F : R.Files)
    All += F.Block;
  for (const char *Rule :
       {"lint-uninitialized", "lint-unreachable", "lint-outside-atomic",
        "lint-high-sink"})
    EXPECT_NE(All.find(Rule), std::string::npos) << "no golden covers " << Rule;
}

TEST(LintGoldenTest, CleanGoldenStaysClean) {
  std::string Path = goldenDir() + "/clean.hv";
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  AnalyzeFileResult F = analyzeSourceBlock(SS.str(), "clean.hv");
  EXPECT_EQ(F.Verdict, "provably-low");
  EXPECT_EQ(F.Block, "verdict: provably-low\n");
}
