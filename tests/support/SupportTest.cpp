//===-- tests/support/SupportTest.cpp - Support library tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Frac.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Frac
//===----------------------------------------------------------------------===//

TEST(FracTest, NormalizationOnConstruction) {
  Frac F = Frac::make(2, 4);
  EXPECT_EQ(F.Num, 1);
  EXPECT_EQ(F.Den, 2);
  EXPECT_EQ(F.str(), "1/2");
}

TEST(FracTest, Arithmetic) {
  Frac Half = Frac::make(1, 2);
  Frac Third = Frac::make(1, 3);
  Frac Sum = Half + Third;
  EXPECT_EQ(Sum, Frac::make(5, 6));
  EXPECT_EQ(Sum - Third, Half);
  EXPECT_TRUE((Half + Half).isOne());
  EXPECT_TRUE((Half - Half).isZero());
}

TEST(FracTest, Ordering) {
  EXPECT_TRUE(Frac::make(1, 3) < Frac::make(1, 2));
  EXPECT_FALSE(Frac::make(1, 2) < Frac::make(1, 2));
  EXPECT_TRUE(Frac::make(1, 2) <= Frac::make(1, 2));
}

TEST(FracTest, ValidAmountRange) {
  EXPECT_TRUE(Frac::make(1, 2).isValidAmount());
  EXPECT_TRUE(Frac::one().isValidAmount());
  EXPECT_FALSE(Frac::zero().isValidAmount());
  EXPECT_FALSE(Frac::make(3, 2).isValidAmount());
}

TEST(FracTest, NegativeDenominatorNormalization) {
  // The sign moves onto the numerator; the denominator stays positive, so
  // every cross-multiplying comparison keeps its direction.
  Frac F = Frac::make(1, -2);
  EXPECT_EQ(F.Num, -1);
  EXPECT_EQ(F.Den, 2);
  EXPECT_EQ(F.str(), "-1/2");
  EXPECT_FALSE(F.isValidAmount());
  EXPECT_TRUE(F < Frac::zero());
  EXPECT_TRUE(F < Frac::make(1, 2));

  Frac G = Frac::make(-3, -6);
  EXPECT_EQ(G.Num, 1);
  EXPECT_EQ(G.Den, 2);
  EXPECT_EQ(G, Frac::make(1, 2));

  Frac Z = Frac::make(0, -5);
  EXPECT_EQ(Z.Num, 0);
  EXPECT_EQ(Z.Den, 1);
  EXPECT_TRUE(Z.isZero());
}

TEST(FracTest, OrderingNoOverflow) {
  // a ~ sqrt(2^63): naive int64 cross products overflow and flip the
  // comparison; the 128-bit compare stays exact. (a-1)/a < a/(a+1) since
  // (a-1)(a+1) = a^2 - 1 < a^2.
  const int64_t A = 3037000500;
  Frac Lo = Frac::make(A - 1, A);
  Frac Hi = Frac::make(A, A + 1);
  EXPECT_TRUE(Lo < Hi);
  EXPECT_FALSE(Hi < Lo);
  EXPECT_TRUE(Lo <= Hi);
  EXPECT_FALSE(Hi <= Lo);
}

TEST(FracTest, SplitIntoNths) {
  // 1 split into 4 quarters reassembles exactly — the par guard algebra.
  Frac Quarter = Frac::make(1, 4);
  Frac Acc = Frac::zero();
  for (int I = 0; I < 4; ++I)
    Acc = Acc + Quarter;
  EXPECT_TRUE(Acc.isOne());
}

//===----------------------------------------------------------------------===//
// String utilities
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  std::vector<std::string> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("requires low(x)", "requires"));
  EXPECT_FALSE(startsWith("req", "requires"));
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, ErrorCountingAndCodes) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(DiagCode::TypeError, SourceLoc(1, 2), "w");
  EXPECT_FALSE(D.hasErrors());
  D.error(DiagCode::VerifyEntailment, SourceLoc(3, 4), "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::VerifyEntailment));
  EXPECT_FALSE(D.hasErrorWithCode(DiagCode::TypeError)); // only a warning
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine D;
  D.error(DiagCode::ParseError, SourceLoc(7, 9), "unexpected token");
  std::string S = D.str("file.hv");
  EXPECT_NE(S.find("file.hv:7:9"), std::string::npos);
  EXPECT_NE(S.find("[parse]"), std::string::npos);
  EXPECT_NE(S.find("unexpected token"), std::string::npos);
}

TEST(DiagnosticsTest, EveryCodeHasAName) {
  for (int C = 0; C <= static_cast<int>(DiagCode::RuntimeAbort); ++C) {
    const char *Name = diagCodeName(static_cast<DiagCode>(C));
    EXPECT_NE(Name, nullptr);
    EXPECT_STRNE(Name, "unknown");
  }
}

TEST(SourceLocTest, Printing) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(3, 14).str(), "3:14");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}
