//===-- tests/support/SignalsTest.cpp - Signal flush unit tests ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct unit tests of support/Signals: LIFO flush ordering on fatal
/// delivery, idempotent watcher double-installation, flush-action
/// deregistration, and the conventional `128 + signo` exit status. These
/// contracts were previously only covered indirectly through the serve
/// daemon's end-to-end tests (ServeTest.SigtermFlushesSinksAndExits143),
/// which cannot distinguish ordering or double-install bugs.
///
/// Everything observable happens post-signal in a process that `_Exit`s,
/// so the tests are death tests: the child installs the watcher, raises
/// the signal against itself, and the parent asserts on exit status and
/// the flush actions' stderr trail.
///
//===----------------------------------------------------------------------===//

#include "support/Signals.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <unistd.h>

using namespace commcsl;

namespace {

/// Raises \p Sig against the current process and parks the calling thread;
/// the watcher thread owns delivery from here on (never returns).
[[noreturn]] void raiseAndWait(int Sig) {
  kill(getpid(), Sig);
  for (;;)
    pause();
}

} // namespace

TEST(SignalsDeathTest, FlushActionsRunLifoThenExit143) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Registration order A, B — delivery must run them B-then-A (later
  // registrations may depend on sinks the earlier ones own) and then
  // _Exit with 128 + SIGTERM. The anchored pattern also pins that the
  // removed action "C" and the unknown-token removal leave no trace.
  EXPECT_EXIT(
      {
        installSignalWatcher();
        addSignalFlushAction([] {
          std::fputs("A", stderr);
          std::fflush(stderr);
        });
        addSignalFlushAction([] {
          std::fputs("B", stderr);
          std::fflush(stderr);
        });
        uint64_t Token = addSignalFlushAction([] {
          std::fputs("C", stderr);
          std::fflush(stderr);
        });
        removeSignalFlushAction(Token);
        removeSignalFlushAction(Token);      // unknown token: no-op
        removeSignalFlushAction(0xdeadbeef); // never-issued token: no-op
        raiseAndWait(SIGTERM);
      },
      ::testing::ExitedWithCode(128 + SIGTERM), "^BA$");
}

TEST(SignalsDeathTest, DoubleInstallIsIdempotent) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A second installSignalWatcher must not start a second watcher thread:
  // with two watchers, one would consume the signal and flush while the
  // other kept waiting — racy double-flush or none at all. One "F" and a
  // single clean exit pin the single-watcher behavior.
  EXPECT_EXIT(
      {
        installSignalWatcher();
        installSignalWatcher();
        installSignalWatcher();
        addSignalFlushAction([] {
          std::fputs("F", stderr);
          std::fflush(stderr);
        });
        raiseAndWait(SIGINT);
      },
      ::testing::ExitedWithCode(128 + SIGINT), "^F$");
}

TEST(SignalsTest, TokensAreDistinctAndRemovalIsStable) {
  // Pure bookkeeping (no delivery): tokens must be unique so removal
  // cannot alias, and removing in any order must leave the rest intact.
  // Actions registered here are removed again so later death tests (and
  // the real CLI paths) never see them.
  uint64_t A = addSignalFlushAction([] {});
  uint64_t B = addSignalFlushAction([] {});
  uint64_t C = addSignalFlushAction([] {});
  EXPECT_NE(A, B);
  EXPECT_NE(B, C);
  EXPECT_NE(A, C);
  removeSignalFlushAction(B); // middle first
  removeSignalFlushAction(A);
  removeSignalFlushAction(C);
  removeSignalFlushAction(C); // double-remove: no-op
}
