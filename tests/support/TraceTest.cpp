//===-- tests/support/TraceTest.cpp - Trace recorder unit tests ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the Stopwatch, the TraceRecorder's Chrome trace-event export,
/// and the disabled-path contract of TraceSpan / traceInstant /
/// traceCounter: with tracing off, nothing is recorded and span labels are
/// never materialized.
///
//===----------------------------------------------------------------------===//

#include "support/trace/Trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace commcsl;

namespace {

/// Every test leaves the global recorder disabled and empty; the suites
/// instrumenting library code depend on that default.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
  void TearDown() override {
    TraceRecorder::global().disable();
    TraceRecorder::global().clear();
  }
};

} // namespace

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double S1 = W.seconds();
  EXPECT_GE(S1, 0.004);
  EXPECT_GE(W.micros(), 4000u);
  W.restart();
  EXPECT_LT(W.seconds(), S1);
}

TEST(StopwatchTest, SecondsAndMicrosAgree) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  uint64_t Us = W.micros();
  double S = W.seconds();
  // micros() was read first, so it is the smaller measurement.
  EXPECT_LE(static_cast<double>(Us) / 1e6, S + 1e-9);
  EXPECT_NEAR(static_cast<double>(Us) / 1e6, S, 0.05);
}

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder &R = TraceRecorder::global();
  ASSERT_FALSE(R.enabled());
  {
    TraceSpan Span("test", "ignored");
    traceInstant("test", "ignored");
    traceCounter("test.counter", 1);
  }
  EXPECT_EQ(R.eventCount(), 0u);
}

TEST_F(TraceTest, LazyLabelNotMaterializedWhenDisabled) {
  bool Called = false;
  {
    TraceSpan Span("test", [&] {
      Called = true;
      return std::string("expensive label");
    });
  }
  EXPECT_FALSE(Called);
}

TEST_F(TraceTest, LazyLabelMaterializedOnceWhenEnabled) {
  TraceRecorder::global().enable();
  int Calls = 0;
  {
    TraceSpan Span("test", [&] {
      ++Calls;
      return std::string("label");
    });
  }
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(TraceRecorder::global().eventCount(), 1u);
}

TEST_F(TraceTest, SpansRecordCompleteEvents) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  {
    TraceSpan Outer("phase", "outer");
    {
      TraceSpan Inner("phase", "inner");
      Inner.setDetail("d1");
    }
  }
  EXPECT_EQ(R.eventCount(), 2u);
  std::string Json = R.chromeTraceJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(Json.find("\"detail\":\"d1\""), std::string::npos);
}

TEST_F(TraceTest, InstantAndCounterEventsExport) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  traceInstant("test", "marker", "payload");
  traceCounter("queue.depth", 3);
  EXPECT_EQ(R.eventCount(), 2u);
  std::string Json = R.chromeTraceJson();
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"detail\":\"payload\""), std::string::npos);
}

TEST_F(TraceTest, EventNamesAreJsonEscaped) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  traceInstant("test", "quote\"back\\slash\nnewline");
  std::string Json = R.chromeTraceJson();
  EXPECT_NE(Json.find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  std::thread T1([] { TraceSpan Span("test", "thread-a"); });
  std::thread T2([] { TraceSpan Span("test", "thread-b"); });
  T1.join();
  T2.join();
  EXPECT_EQ(R.eventCount(), 2u);
  std::string Json = R.chromeTraceJson();
  // The two worker threads registered separate buffers with distinct tids.
  size_t FirstTid = Json.find("\"tid\":");
  ASSERT_NE(FirstTid, std::string::npos);
  size_t SecondTid = Json.find("\"tid\":", FirstTid + 1);
  ASSERT_NE(SecondTid, std::string::npos);
  EXPECT_NE(Json.substr(FirstTid, 10), Json.substr(SecondTid, 10));
}

TEST_F(TraceTest, ClearDropsEvents) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  { TraceSpan Span("test", "x"); }
  EXPECT_EQ(R.eventCount(), 1u);
  R.clear();
  EXPECT_EQ(R.eventCount(), 0u);
  EXPECT_NE(R.chromeTraceJson().find("\"traceEvents\":["),
            std::string::npos);
}

TEST_F(TraceTest, SeparateRecorderInstancesAreIndependent) {
  // Test-local recorders must not share buffers with the global one, and
  // a recorder created after another was destroyed must not see its
  // cached thread buffers (ids, not addresses, key the thread cache).
  {
    TraceRecorder Local;
    Local.enable();
    Local.recordInstant("a", "test");
    EXPECT_EQ(Local.eventCount(), 1u);
  }
  TraceRecorder Fresh;
  Fresh.enable();
  EXPECT_EQ(Fresh.eventCount(), 0u);
  Fresh.recordInstant("b", "test");
  Fresh.recordCounter("c", 1.5);
  EXPECT_EQ(Fresh.eventCount(), 2u);
  EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
}

TEST_F(TraceTest, SpanTimestampsNestByContainment) {
  TraceRecorder &R = TraceRecorder::global();
  R.enable();
  {
    TraceSpan Outer("test", "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      TraceSpan Inner("test", "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string Json = R.chromeTraceJson();

  // Pull ("ts", "dur") for a named event out of the JSON text.
  auto Field = [&](const std::string &Name, const char *Key) {
    size_t At = Json.find("\"name\":\"" + Name + "\"");
    EXPECT_NE(At, std::string::npos);
    // Fields may precede or follow the name within the same object; search
    // from the start of the enclosing object.
    size_t Open = Json.rfind('{', At);
    size_t KeyAt = Json.find(std::string("\"") + Key + "\":", Open);
    return std::strtoull(Json.c_str() + KeyAt + std::strlen(Key) + 3,
                         nullptr, 10);
  };
  uint64_t OuterTs = Field("outer", "ts"), OuterDur = Field("outer", "dur");
  uint64_t InnerTs = Field("inner", "ts"), InnerDur = Field("inner", "dur");
  EXPECT_LE(OuterTs, InnerTs);
  EXPECT_LE(InnerTs + InnerDur, OuterTs + OuterDur);
}
