//===-- tests/support/NumericTest.cpp - Strict numeric parsing tests -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Numeric.h"

#include <gtest/gtest.h>

#include <limits>

using namespace commcsl;

TEST(NumericTest, ParseUnsigned64AcceptsPlainDecimals) {
  EXPECT_EQ(parseUnsigned64("0"), 0u);
  EXPECT_EQ(parseUnsigned64("42"), 42u);
  EXPECT_EQ(parseUnsigned64("007"), 7u);
  EXPECT_EQ(parseUnsigned64("18446744073709551615"),
            std::numeric_limits<uint64_t>::max());
}

TEST(NumericTest, ParseUnsigned64RejectsJunk) {
  EXPECT_FALSE(parseUnsigned64(""));
  EXPECT_FALSE(parseUnsigned64("abc"));
  EXPECT_FALSE(parseUnsigned64("4x"));
  EXPECT_FALSE(parseUnsigned64("x4"));
  EXPECT_FALSE(parseUnsigned64(" 4"));
  EXPECT_FALSE(parseUnsigned64("4 "));
  EXPECT_FALSE(parseUnsigned64("+4"));
  EXPECT_FALSE(parseUnsigned64("-4"));
  EXPECT_FALSE(parseUnsigned64("4.0"));
  EXPECT_FALSE(parseUnsigned64("0x10"));
}

TEST(NumericTest, ParseUnsigned64RejectsOverflow) {
  // One past uint64_t max, and something much larger.
  EXPECT_FALSE(parseUnsigned64("18446744073709551616"));
  EXPECT_FALSE(parseUnsigned64("99999999999999999999999999"));
}

TEST(NumericTest, ParseJobsValueAcceptsPositiveIntegers) {
  EXPECT_EQ(parseJobsValue("1"), 1u);
  EXPECT_EQ(parseJobsValue("8"), 8u);
  EXPECT_EQ(parseJobsValue("64"), 64u);
}

TEST(NumericTest, ParseJobsValueRejectsZeroJunkAndOverflow) {
  EXPECT_FALSE(parseJobsValue("0"));
  EXPECT_FALSE(parseJobsValue(""));
  EXPECT_FALSE(parseJobsValue("4x"));
  EXPECT_FALSE(parseJobsValue("-2"));
  EXPECT_FALSE(parseJobsValue("+2"));
  EXPECT_FALSE(parseJobsValue("2 "));
  // Exceeds unsigned even though it fits in uint64_t.
  EXPECT_FALSE(parseJobsValue("4294967296"));
  EXPECT_FALSE(parseJobsValue("18446744073709551616"));
}
