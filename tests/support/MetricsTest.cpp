//===-- tests/support/MetricsTest.cpp - Metrics registry unit tests --------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the metric primitives (counter, gauge, histogram) and the
/// registry's JSON export contract: deterministic metrics under "counts",
/// scheduling-dependent ones under "timings", keys sorted, and the
/// "counts" object identical across registration orders — the property CI
/// diffs across `--jobs` settings.
///
//===----------------------------------------------------------------------===//

#include "support/trace/Metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace commcsl;

namespace {

/// The "counts" object of an export, i.e. the part that must be
/// byte-identical at any job count.
std::string countsSection(const std::string &Json) {
  size_t Begin = Json.find("\"counts\"");
  size_t End = Json.find("\"timings\"");
  EXPECT_NE(Begin, std::string::npos);
  EXPECT_NE(End, std::string::npos);
  return Json.substr(Begin, End - Begin);
}

} // namespace

TEST(MetricsTest, CounterAccumulatesAndResets) {
  Metric_Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(MetricsTest, GaugeSetAddMax) {
  Metric_Gauge G;
  G.set(2.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
  G.add(1.5);
  EXPECT_DOUBLE_EQ(G.value(), 4.0);
  G.max(3.0); // below current: no change
  EXPECT_DOUBLE_EQ(G.value(), 4.0);
  G.max(7.0);
  EXPECT_DOUBLE_EQ(G.value(), 7.0);
}

TEST(MetricsTest, GaugeConcurrentAddIsLossless) {
  Metric_Gauge G;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 1000; ++I)
        G.add(1.0);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_DOUBLE_EQ(G.value(), 4000.0);
}

TEST(MetricsTest, HistogramObservesCountSumMax) {
  Metric_Histogram H;
  for (int I = 1; I <= 100; ++I)
    H.observe(I);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_DOUBLE_EQ(H.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(H.maxValue(), 100.0);
  // Uniform 1..100 in log2 buckets: the median falls in [32, 64), the 95th
  // percentile in [64, 128).
  EXPECT_DOUBLE_EQ(H.quantileUpperBound(0.5), 64.0);
  EXPECT_DOUBLE_EQ(H.quantileUpperBound(0.95), 128.0);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.quantileUpperBound(0.5), 0.0);
}

TEST(MetricsTest, HistogramSubUnitSamplesLandInBucketZero) {
  Metric_Histogram H;
  H.observe(0.0);
  H.observe(0.5);
  EXPECT_DOUBLE_EQ(H.quantileUpperBound(0.99), 1.0);
}

TEST(MetricsTest, JsonSplitsCountsFromTimings) {
  MetricsRegistry R;
  R.counter("verify.files").add(3);
  R.counter("cache.hits", Stability::Varies).add(7);
  R.gauge("wall_seconds").set(1.25);
  R.histogram("latency_us").observe(10);
  std::string Json = R.json();

  std::string Counts = countsSection(Json);
  EXPECT_NE(Counts.find("\"verify.files\": 3"), std::string::npos);
  EXPECT_EQ(Counts.find("cache.hits"), std::string::npos);
  EXPECT_EQ(Counts.find("wall_seconds"), std::string::npos);

  size_t Timings = Json.find("\"timings\"");
  EXPECT_NE(Json.find("\"cache.hits\": 7", Timings), std::string::npos);
  EXPECT_NE(Json.find("\"wall_seconds\": 1.250000", Timings),
            std::string::npos);
  EXPECT_NE(Json.find("\"latency_us\": {\"count\": 1", Timings),
            std::string::npos);
}

TEST(MetricsTest, JsonKeysAreSortedRegardlessOfRegistrationOrder) {
  MetricsRegistry A, B;
  A.counter("zebra").add(1);
  A.counter("alpha").add(2);
  A.counter("mid").add(3);
  // Same metrics, opposite registration order.
  B.counter("mid").add(3);
  B.counter("alpha").add(2);
  B.counter("zebra").add(1);
  EXPECT_EQ(A.json(), B.json());
  std::string Json = A.json();
  EXPECT_LT(Json.find("\"alpha\""), Json.find("\"mid\""));
  EXPECT_LT(Json.find("\"mid\""), Json.find("\"zebra\""));
}

TEST(MetricsTest, CountsSectionIgnoresTimingChanges) {
  // The CI determinism diff strips "timings"; wall-clock noise must not
  // leak into "counts".
  MetricsRegistry A, B;
  A.counter("n").add(5);
  A.gauge("seconds").set(0.001);
  B.counter("n").add(5);
  B.gauge("seconds").set(123.456);
  EXPECT_EQ(countsSection(A.json()), countsSection(B.json()));
  EXPECT_NE(A.json(), B.json());
}

TEST(MetricsTest, EmptyRegistryStillEmitsBothSections) {
  MetricsRegistry R;
  std::string Json = R.json();
  EXPECT_NE(Json.find("\"counts\": {}"), std::string::npos);
  EXPECT_NE(Json.find("\"timings\": {}"), std::string::npos);
}

TEST(MetricsTest, StabilityFixedByFirstRegistration) {
  MetricsRegistry R;
  R.counter("x", Stability::Varies).add(1);
  // A later lookup with the default stability must not move the metric.
  R.counter("x").add(1);
  std::string Json = R.json();
  EXPECT_EQ(countsSection(Json).find("\"x\""), std::string::npos);
  EXPECT_NE(Json.find("\"x\": 2", Json.find("\"timings\"")),
            std::string::npos);
}

TEST(MetricsTest, ResetAllZeroesEveryMetric) {
  MetricsRegistry R;
  R.counter("c").add(9);
  R.gauge("g").set(9);
  R.histogram("h").observe(9);
  R.resetAll();
  EXPECT_EQ(R.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(R.gauge("g").value(), 0.0);
  EXPECT_EQ(R.histogram("h").count(), 0u);
}

TEST(MetricsTest, WriteJsonFailsOnUnwritablePath) {
  MetricsRegistry R;
  EXPECT_FALSE(R.writeJson("/nonexistent-dir/metrics.json"));
}
