//===-- tests/support/ThreadPoolTest.cpp - Thread pool unit tests ----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

using namespace commcsl;

TEST(ThreadPoolTest, SplitMix64MatchesReference) {
  // First two outputs of the reference SplitMix64 generator seeded with 0:
  // our stateless splitmix64(S) equals next() of a generator whose state
  // is S (state is bumped by the golden gamma before mixing).
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(0x9E3779B97F4A7C15ULL), 0x6E789E6AA1B965F4ULL);
  // Distinct indices give distinct seeds (no collisions in a small range).
  std::set<uint64_t> Seeds;
  for (uint64_t I = 0; I < 1000; ++I)
    Seeds.insert(deriveSeed(0xD1CE, I));
  EXPECT_EQ(Seeds.size(), 1000u);
  // Derivation is a pure function.
  EXPECT_EQ(deriveSeed(42, 7), deriveSeed(42, 7));
  EXPECT_NE(deriveSeed(42, 7), deriveSeed(43, 7));
}

TEST(ThreadPoolTest, ChunksCoverRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelForChunks(1000, 4, [&](uint64_t B, uint64_t E, unsigned) {
    for (uint64_t I = B; I < E; ++I)
      Hits[I].fetch_add(1);
  });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, SingleJobRunsInlineAsOneChunk) {
  ThreadPool Pool(4);
  std::thread::id Caller = std::this_thread::get_id();
  unsigned Calls = 0;
  Pool.parallelForChunks(100, 1, [&](uint64_t B, uint64_t E, unsigned Chunk) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    EXPECT_EQ(B, 0u);
    EXPECT_EQ(E, 100u);
    EXPECT_EQ(Chunk, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool Pool(2);
  bool Called = false;
  Pool.parallelForChunks(0, 4, [&](uint64_t, uint64_t, unsigned) {
    Called = true;
  });
  EXPECT_FALSE(Called);
}

TEST(ThreadPoolTest, MoreJobsThanItemsClampsChunkCount) {
  ThreadPool Pool(8);
  std::atomic<unsigned> Calls{0};
  Pool.parallelForChunks(3, 16, [&](uint64_t B, uint64_t E, unsigned) {
    EXPECT_EQ(E - B, 1u);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Calls.load(), 3u);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool Pool(8);
  const uint64_t N = 100000;
  std::atomic<uint64_t> Sum{0};
  Pool.parallelForChunks(N, 8, [&](uint64_t B, uint64_t E, unsigned) {
    uint64_t Local = 0;
    for (uint64_t I = B; I < E; ++I)
      Local += I;
    Sum.fetch_add(Local);
  });
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A chunk body that fans out again on the same pool: the waiting outer
  // chunks must help drain the queue, even with a single worker.
  ThreadPool Pool(1);
  std::atomic<uint64_t> Count{0};
  Pool.parallelForChunks(4, 4, [&](uint64_t B, uint64_t E, unsigned) {
    for (uint64_t I = B; I < E; ++I)
      Pool.parallelForChunks(8, 4, [&](uint64_t IB, uint64_t IE, unsigned) {
        Count.fetch_add(IE - IB);
      });
  });
  EXPECT_EQ(Count.load(), 4u * 8u);
}

TEST(ThreadPoolTest, DeeplyNestedCallsCoverEveryLevel) {
  // Three levels of fan-out on one pool: every waiting level must help
  // drain the queue rather than hold a worker hostage.
  ThreadPool Pool(2);
  std::atomic<uint64_t> Count{0};
  Pool.parallelForChunks(2, 2, [&](uint64_t B, uint64_t E, unsigned) {
    for (uint64_t I = B; I < E; ++I)
      Pool.parallelForChunks(3, 2, [&](uint64_t MB, uint64_t ME, unsigned) {
        for (uint64_t J = MB; J < ME; ++J)
          Pool.parallelForChunks(5, 2,
                                 [&](uint64_t IB, uint64_t IE, unsigned) {
                                   Count.fetch_add(IE - IB);
                                 });
      });
  });
  EXPECT_EQ(Count.load(), 2u * 3u * 5u);
}

TEST(ThreadPoolTest, TwoConcurrentTopLevelCallsBothComplete) {
  // Two caller threads fanning out on the same pool at once: each call
  // must see exactly its own range, once, and both must terminate even
  // when their chunks interleave in the shared queue.
  ThreadPool Pool(2);
  for (int Round = 0; Round < 20; ++Round) {
    std::atomic<uint64_t> SumA{0}, SumB{0};
    std::thread CallerA([&] {
      Pool.parallelForChunks(1000, 4, [&](uint64_t B, uint64_t E, unsigned) {
        for (uint64_t I = B; I < E; ++I)
          SumA.fetch_add(I);
      });
    });
    std::thread CallerB([&] {
      Pool.parallelForChunks(500, 4, [&](uint64_t B, uint64_t E, unsigned) {
        for (uint64_t I = B; I < E; ++I)
          SumB.fetch_add(I);
      });
    });
    CallerA.join();
    CallerB.join();
    EXPECT_EQ(SumA.load(), 1000u * 999u / 2);
    EXPECT_EQ(SumB.load(), 500u * 499u / 2);
  }
}

TEST(ThreadPoolTest, ConcurrentCallersWithNestedFanOut) {
  // The combination: concurrent top-level calls that each nest. The
  // help-while-pending path must distinguish "my call is done" from "the
  // queue is empty", or one caller could return early / deadlock.
  ThreadPool Pool(2);
  std::atomic<uint64_t> Total{0};
  auto Body = [&] {
    Pool.parallelForChunks(4, 4, [&](uint64_t B, uint64_t E, unsigned) {
      for (uint64_t I = B; I < E; ++I)
        Pool.parallelForChunks(8, 4,
                               [&](uint64_t IB, uint64_t IE, unsigned) {
                                 Total.fetch_add(IE - IB);
                               });
    });
  };
  std::thread CallerA(Body), CallerB(Body);
  CallerA.join();
  CallerB.join();
  EXPECT_EQ(Total.load(), 2u * 4u * 8u);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelForChunks(16, 4,
                             [&](uint64_t B, uint64_t, unsigned) {
                               if (B == 0)
                                 throw std::runtime_error("boom");
                             }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndSized) {
  ThreadPool &Pool = ThreadPool::shared();
  EXPECT_GE(Pool.workerCount(), 1u);
  std::atomic<int> X{0};
  Pool.parallelForChunks(10, ThreadPool::defaultJobs(),
                         [&](uint64_t B, uint64_t E, unsigned) {
                           X.fetch_add(static_cast<int>(E - B));
                         });
  EXPECT_EQ(X.load(), 10);
  EXPECT_EQ(ThreadPool::effectiveJobs(0), ThreadPool::defaultJobs());
  EXPECT_EQ(ThreadPool::effectiveJobs(3), 3u);
}

TEST(ThreadPoolTest, BackToBackSubmissionsFromRequestThreads) {
  // The serve daemon's shape: several long-lived request threads, each
  // submitting many parallelForChunks calls back-to-back on one shared
  // pool. Every round must see exactly its own range — no chunk leakage
  // between a thread's consecutive calls or across threads — and results
  // must be independent of the interleaving.
  ThreadPool Pool(3);
  constexpr unsigned RequestThreads = 4;
  constexpr unsigned RoundsPerThread = 50;
  std::vector<std::thread> Threads;
  std::vector<uint64_t> Failures(RequestThreads, 0);
  for (unsigned T = 0; T < RequestThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned Round = 0; Round < RoundsPerThread; ++Round) {
        // Vary the shape per round: empty ranges, single items, more jobs
        // than items, and normal fan-outs all alternate.
        const uint64_t Items = (T + Round) % 4 == 0 ? 0 : 1 + (Round % 97);
        const unsigned Jobs = 1 + ((T + Round) % 8);
        std::atomic<uint64_t> Sum{0};
        Pool.parallelForChunks(Items, Jobs,
                               [&](uint64_t B, uint64_t E, unsigned) {
                                 for (uint64_t I = B; I < E; ++I)
                                   Sum.fetch_add(I + 1);
                               });
        if (Sum.load() != Items * (Items + 1) / 2)
          ++Failures[T];
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T < RequestThreads; ++T)
    EXPECT_EQ(Failures[T], 0u) << "request thread " << T;
}

TEST(ThreadPoolTest, EmptyAndOversubscribedRangesInterleavedAcrossThreads) {
  // Degenerate shapes under concurrency: empty ranges must return
  // immediately (never touching the queues) while sibling threads keep the
  // pool busy, and jobs far exceeding items must still cover each item
  // exactly once.
  ThreadPool Pool(2);
  std::atomic<uint64_t> Covered{0};
  std::atomic<bool> Stop{false};
  std::thread Background([&] {
    while (!Stop.load())
      Pool.parallelForChunks(64, 4, [&](uint64_t B, uint64_t E, unsigned) {
        Covered.fetch_add(E - B);
      });
  });
  for (int I = 0; I < 200; ++I) {
    std::atomic<uint64_t> Seen{0};
    Pool.parallelForChunks(0, 4, [&](uint64_t, uint64_t, unsigned) {
      Seen.fetch_add(1);
    });
    EXPECT_EQ(Seen.load(), 0u);
    std::vector<std::atomic<uint32_t>> Marks(3);
    Pool.parallelForChunks(3, /*Jobs=*/64,
                           [&](uint64_t B, uint64_t E, unsigned) {
                             for (uint64_t K = B; K < E; ++K)
                               Marks[K].fetch_add(1);
                           });
    for (int K = 0; K < 3; ++K)
      EXPECT_EQ(Marks[K].load(), 1u);
  }
  // Let the background contender finish at least one full round before
  // stopping, so the degenerate shapes above really ran under load.
  while (Covered.load() == 0)
    std::this_thread::yield();
  Stop.store(true);
  Background.join();
  EXPECT_GT(Covered.load(), 0u);
}
