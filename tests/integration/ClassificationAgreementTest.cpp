//===-- tests/integration/ClassificationAgreementTest.cpp ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agreement suite for the value-dependent-classification examples,
/// mirroring AbsintAgreementTest for the conditional-level fragment: the
/// relational verifier and the empirical NI harness must agree on every
/// conditional-level program, the NI report must be byte-identical at any
/// job count (level guards are evaluated in-state on both runs of the
/// product, so no schedule or thread count may change a verdict), and
/// `--triage` must be a pure fast path — identical verdicts and
/// diagnostics with the static analysis on or off.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

struct ClassCase {
  const char *File;
  bool ExpectVerified;
};

/// The conditional-classification family: secure programs exercising
/// `level(x) = if .. then low else high` and `declassify`, plus the broken
/// variants (consent_ignored leaks only through a statically-unknown level
/// guard; the other two leak beside a legitimate declassification).
const ClassCase Cases[] = {
    {"value_dependent.hv", true},
    {"consent_telemetry.hv", true},
    {"sealed_auction.hv", true},
    {"vote_tally.hv", true},
    {"broken/consent_ignored.hv", false},
    {"broken/auction_bid_leak.hv", false},
    {"broken/tally_ballot_leak.hv", false},
};

std::string pathOf(const char *File) {
  return std::string(COMMCSL_EXAMPLES_DIR) + "/" + File;
}

NIConfig smokeConfig(unsigned Jobs) {
  NIConfig C;
  C.Trials = 4;
  C.HighSamples = 3;
  C.RandomSchedules = 2;
  C.Jobs = Jobs;
  return C;
}

class ClassificationCase : public ::testing::TestWithParam<ClassCase> {};

} // namespace

/// The verifier's verdict and the empirical harness agree: a proved
/// conditional-level program has no observable violation, at any job
/// count. (Rejected programs carry no agreement obligation — the harness
/// samples, it does not decide — but the sweep must still complete.)
TEST_P(ClassificationCase, VerifierAndHarnessAgree) {
  const ClassCase &C = GetParam();
  Driver D;
  DriverResult R = D.verifyFile(pathOf(C.File));
  ASSERT_TRUE(R.ParseOk) << R.Diags.str(C.File);
  EXPECT_EQ(R.Verified, C.ExpectVerified) << R.Diags.str(C.File);

  for (unsigned Jobs : {1u, 3u}) {
    NIReport Rep = D.runEmpirical(R, "main", smokeConfig(Jobs));
    EXPECT_GT(Rep.Runs, 0u) << C.File;
    if (C.ExpectVerified)
      EXPECT_TRUE(Rep.secure())
          << C.File << " Jobs=" << Jobs << ": "
          << (Rep.Violation ? Rep.Violation->describe() : "");
  }
}

/// Byte-identity of the empirical report across job counts: same run and
/// pair counts, same violation (down to its rendered description) — the
/// trial RNG streams are keyed by trial index, not by worker.
TEST_P(ClassificationCase, NIReportIdenticalAcrossJobCounts) {
  const ClassCase &C = GetParam();
  Driver D;
  DriverResult R = D.verifyFile(pathOf(C.File));
  ASSERT_TRUE(R.ParseOk);

  NIReport R1 = D.runEmpirical(R, "main", smokeConfig(1));
  NIReport R3 = D.runEmpirical(R, "main", smokeConfig(3));
  EXPECT_EQ(R1.Runs, R3.Runs) << C.File;
  EXPECT_EQ(R1.PairsCompared, R3.PairsCompared) << C.File;
  ASSERT_EQ(R1.Violation.has_value(), R3.Violation.has_value()) << C.File;
  if (R1.Violation)
    EXPECT_EQ(R1.Violation->describe(), R3.Violation->describe()) << C.File;
}

/// Triage is a pure fast path: verdict and diagnostics are identical with
/// the static analysis on or off, at every job count. Conditional-level
/// procedures and declassify bodies are triage-ineligible by construction,
/// so triage must never skip its way into a different answer on this
/// family.
TEST_P(ClassificationCase, TriageOnOffVerdictsIdentical) {
  const ClassCase &C = GetParam();
  DriverOptions Off;
  Off.Jobs = 1;
  DriverResult Ref = Driver(Off).verifyFile(pathOf(C.File));
  ASSERT_TRUE(Ref.ParseOk);

  for (unsigned Jobs : {1u, 3u}) {
    DriverOptions On;
    On.Triage = true;
    On.Jobs = Jobs;
    DriverResult R = Driver(On).verifyFile(pathOf(C.File));
    EXPECT_EQ(R.Verified, Ref.Verified) << C.File << " Jobs=" << Jobs;
    EXPECT_EQ(R.Diags.str(C.File), Ref.Diags.str(C.File))
        << C.File << " Jobs=" << Jobs;
    // This family never qualifies for the strict-provably-low fast path:
    // its levels are value-dependent, which is exactly what the static
    // fragment refuses to decide.
    EXPECT_EQ(R.TriageSkipped, 0u) << C.File;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ClassificationCase,
                         ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<ClassCase> &I) {
                           std::string N = I.param.File;
                           for (char &C : N)
                             if (C == '/' || C == '.')
                               C = '_';
                           return N;
                         });
