//===-- tests/integration/ExamplesTest.cpp - Corpus integration ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end integration over the shipped `.hv` corpus (the Table 1
/// examples): every program must produce its expected verdict; every
/// verified program must pass an empirical non-interference smoke sweep;
/// and every recorded execution must satisfy the Sec. 3.5 consistency
/// relation with schedule-permutation-invariant abstractions (the dynamic
/// face of Lemma 4.2).
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include "logic/Assertion.h"
#include "sem/Scheduler.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

using namespace commcsl;
using namespace commcsl::test;

namespace {

struct CorpusCase {
  const char *File;
  bool ExpectVerified;
};

const CorpusCase Corpus[] = {
    {"count_vaccinated.hv", true},
    {"figure2.hv", true},
    {"count_sick_days.hv", true},
    {"figure1.hv", true},
    {"figure1_commute.hv", true},
    {"figure1_reject.hv", false},
    {"mean_salary.hv", true},
    {"email_metadata.hv", true},
    {"patient_statistic.hv", true},
    {"debt_sum.hv", true},
    {"sick_employee_names.hv", true},
    {"website_visitor_ips.hv", true},
    {"figure3.hv", true},
    {"sales_by_region.hv", true},
    {"salary_histogram.hv", true},
    {"count_purchases.hv", true},
    {"most_valuable_purchase.hv", true},
    {"producer_consumer.hv", true},
    {"pipeline.hv", true},
    {"two_producers_two_consumers.hv", true},
    {"output_stream.hv", true},
    {"value_dependent.hv", true},
    {"bounded_buffer.hv", true},
    {"public_stats.hv", true},
    {"consent_telemetry.hv", true},
    {"sealed_auction.hv", true},
    {"vote_tally.hv", true},
};

std::string pathOf(const char *File) {
  return std::string(COMMCSL_EXAMPLES_DIR) + "/" + File;
}

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

} // namespace

TEST_P(CorpusTest, VerdictMatches) {
  const CorpusCase &C = GetParam();
  Driver D;
  DriverResult R = D.verifyFile(pathOf(C.File));
  ASSERT_TRUE(R.ParseOk) << R.Diags.str(C.File);
  EXPECT_EQ(R.Verified, C.ExpectVerified) << R.Diags.str(C.File);
  // Table 1 shape: every example is small but non-trivial.
  EXPECT_GT(R.Metrics.LinesOfCode, 10u);
  EXPECT_GT(R.Metrics.AnnotationLines, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllExamples, CorpusTest,
                         ::testing::ValuesIn(Corpus),
                         [](const ::testing::TestParamInfo<CorpusCase> &I) {
                           std::string Name = I.param.File;
                           Name.resize(Name.size() - 3); // drop ".hv"
                           std::replace(Name.begin(), Name.end(), '.', '_');
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Broken twins: each Table 1 family has a negative variant whose rejection
// is pinned to a specific diagnostic code.
//===----------------------------------------------------------------------===//

namespace {

struct BrokenCase {
  const char *File;
  DiagCode Expected;
};

const BrokenCase BrokenCorpus[] = {
    {"broken/counter_high_arg.hv", DiagCode::VerifyPreUnprovable},
    {"broken/counter_high_count.hv", DiagCode::VerifyPreUnprovable},
    {"broken/map_leak_values.hv", DiagCode::VerifyEntailment},
    {"broken/map_identity_alpha.hv", DiagCode::SpecInvalidPrecondition},
    {"broken/map_lastwrite_races.hv", DiagCode::SpecInvalidCommutes},
    {"broken/disjoint_put_overlap.hv", DiagCode::SpecInvalidCommutes},
    {"broken/list_order_leak.hv", DiagCode::VerifyEntailment},
    {"broken/mean_salary_leaks_list.hv", DiagCode::VerifyEntailment},
    {"broken/pc_order_leak.hv", DiagCode::SpecInvalidCommutes},
    {"broken/unique_guard_shared.hv", DiagCode::VerifyUniqueGuardSplit},
    {"broken/race_on_local.hv", DiagCode::VerifyDataRace},
    {"broken/high_initial_value.hv", DiagCode::VerifyLowInitialValue},
    {"broken/intermediate_read_leak.hv", DiagCode::VerifyEntailment},
    {"broken/guard_dropped.hv", DiagCode::VerifyGuardMissing},
    {"broken/output_intermediate.hv", DiagCode::VerifyEntailment},
    {"broken/consent_ignored.hv", DiagCode::VerifyEntailment},
    {"broken/auction_bid_leak.hv", DiagCode::VerifyEntailment},
    {"broken/tally_ballot_leak.hv", DiagCode::VerifyEntailment},
};

class BrokenTest : public ::testing::TestWithParam<BrokenCase> {};

} // namespace

TEST_P(BrokenTest, RejectedWithExpectedCode) {
  const BrokenCase &C = GetParam();
  Driver D;
  DriverResult R = D.verifyFile(pathOf(C.File));
  ASSERT_TRUE(R.ParseOk) << R.Diags.str(C.File);
  EXPECT_FALSE(R.Verified) << C.File << " unexpectedly verified";
  EXPECT_TRUE(R.Diags.hasErrorWithCode(C.Expected))
      << C.File << ": expected " << diagCodeName(C.Expected) << ", got:\n"
      << R.Diags.str(C.File);
}

INSTANTIATE_TEST_SUITE_P(
    BrokenTwins, BrokenTest, ::testing::ValuesIn(BrokenCorpus),
    [](const ::testing::TestParamInfo<BrokenCase> &I) {
      std::string Name = I.param.File + 7; // drop "broken/"
      Name.resize(Name.size() - 3);        // drop ".hv"
      std::replace(Name.begin(), Name.end(), '.', '_');
      return Name;
    });

//===----------------------------------------------------------------------===//
// Exhaustiveness: the expected-verdict tables above must cover every `.hv`
// file shipped under examples/programs/ (broken/ included). A program added
// to the tree without a row here would otherwise silently escape CI.
//===----------------------------------------------------------------------===//

TEST(CorpusExhaustivenessTest, EveryShippedProgramHasAnExpectedVerdict) {
  std::set<std::string> Expected;
  for (const CorpusCase &C : Corpus)
    Expected.insert(C.File);
  for (const BrokenCase &C : BrokenCorpus)
    Expected.insert(C.File);

  std::set<std::string> Shipped;
  std::filesystem::path Root(COMMCSL_EXAMPLES_DIR);
  ASSERT_TRUE(std::filesystem::exists(Root)) << Root;
  for (const auto &DE : std::filesystem::recursive_directory_iterator(Root)) {
    if (!DE.is_regular_file() || DE.path().extension() != ".hv")
      continue;
    Shipped.insert(
        std::filesystem::relative(DE.path(), Root).generic_string());
  }

  for (const std::string &File : Shipped)
    EXPECT_TRUE(Expected.count(File))
        << File << " is shipped but has no expected-verdict table entry";
  for (const std::string &File : Expected)
    EXPECT_TRUE(Shipped.count(File))
        << File << " has a table entry but no file on disk";
}

namespace {

/// Runs `main` of a verified corpus program once with small deterministic
/// inputs; returns the result (skipping programs whose preconditions the
/// naive sampler cannot satisfy).
RunResult smokeRun(const Program &Prog, uint64_t Seed) {
  const ProcDecl *Main = Prog.findProc("main");
  EXPECT_NE(Main, nullptr);
  std::mt19937_64 Rng(Seed);
  std::vector<ValueRef> Inputs;
  for (const Param &P : Main->Params)
    Inputs.push_back(P.Ty->toDomain(Type::ScopeParams{0, 3, 3})->sample(Rng));
  Interpreter Interp(Prog);
  RandomScheduler Sched(Seed * 31 + 1);
  return Interp.run("main", Inputs, Sched);
}

} // namespace

TEST(CorpusPropertyTest, ActionLogsAreConsistentAndPermutationStable) {
  // The dynamic face of Lemma 4.2: for every recorded execution of a
  // verified example, (1) the final resource value is consistent with the
  // recorded actions, and (2) replaying the log in several different
  // unique-order-respecting permutations leaves the abstraction unchanged.
  for (const CorpusCase &C : Corpus) {
    if (!C.ExpectVerified)
      continue;
    Driver D;
    DriverResult R = D.verifyFile(pathOf(C.File));
    ASSERT_TRUE(R.ParseOk);
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      RunResult Run = smokeRun(*R.Prog, Seed);
      if (!Run.ok())
        continue; // sampler missed a precondition (e.g. equal lengths)
      for (const ResourceState &Res : Run.Resources) {
        RSpecRuntime Runtime(*Res.Spec, R.Prog.get());
        // (1) Consistency with the recorded collections.
        std::map<std::string, std::vector<ValueRef>> Collected;
        for (const ActionLogEntry &E : Res.Log)
          Collected[E.Action].push_back(E.Arg);
        std::map<std::string, ValueRef> ArgsByAction;
        for (const ActionDecl &A : Res.Spec->Actions) {
          auto It = Collected.find(A.Name);
          std::vector<ValueRef> Args =
              It == Collected.end() ? std::vector<ValueRef>{} : It->second;
          ArgsByAction[A.Name] = A.Unique ? ValueFactory::seq(Args)
                                          : ValueFactory::multiset(Args);
        }
        EXPECT_TRUE(consistentWith(Runtime, Res.InitialValue, ArgsByAction,
                                   Res.Value))
            << C.File << ": final value inconsistent with action log";

        // (2) Permutation stability of the abstraction: swap adjacent log
        // entries whenever legal (different actions, or a shared action)
        // and replay.
        ValueRef BaseAlpha = Runtime.alphaOf(
            replayLog(Runtime, Res.InitialValue, Res.Log));
        std::mt19937_64 Rng(Seed);
        for (int Perm = 0; Perm < 10 && Res.Log.size() >= 2; ++Perm) {
          std::vector<ActionLogEntry> Shuffled = Res.Log;
          for (int Swap = 0; Swap < 8; ++Swap) {
            size_t I = Rng() % (Shuffled.size() - 1);
            const ActionLogEntry &X = Shuffled[I];
            const ActionLogEntry &Y = Shuffled[I + 1];
            bool Legal = X.Action != Y.Action || !X.Unique;
            if (Legal)
              std::swap(Shuffled[I], Shuffled[I + 1]);
          }
          ValueRef Alpha = Runtime.alphaOf(
              replayLog(Runtime, Res.InitialValue, Shuffled));
          EXPECT_TRUE(Value::equal(Alpha, BaseAlpha))
              << C.File << ": abstraction changed under a legal permutation";
        }
      }
    }
  }
}

TEST(CorpusPropertyTest, VerifiedExamplesScheduleInsensitive) {
  // For each verified example: fixed inputs, many schedulers — identical
  // low outputs (here: all declared-low returns).
  for (const CorpusCase &C : Corpus) {
    if (!C.ExpectVerified)
      continue;
    Driver D;
    DriverResult R = D.verifyFile(pathOf(C.File));
    ASSERT_TRUE(R.ParseOk);
    const ProcDecl *Main = R.Prog->findProc("main");
    ASSERT_NE(Main, nullptr);
    std::mt19937_64 Rng(11);
    std::vector<ValueRef> Inputs;
    for (const Param &P : Main->Params)
      Inputs.push_back(
          P.Ty->toDomain(Type::ScopeParams{0, 3, 3})->sample(Rng));
    Interpreter Interp(*R.Prog);
    std::optional<std::vector<ValueRef>> Reference;
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      RandomScheduler Sched(Seed);
      RunResult Run = Interp.run("main", Inputs, Sched);
      if (!Run.ok())
        break; // sampler missed a precondition; skip this example
      if (!Reference) {
        Reference = Run.Returns;
        continue;
      }
      for (size_t I = 0; I < Run.Returns.size(); ++I)
        EXPECT_TRUE(Value::equal(Run.Returns[I], (*Reference)[I]))
            << C.File << ": output " << I << " differs across schedules";
    }
  }
}
