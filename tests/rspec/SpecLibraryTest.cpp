//===-- tests/rspec/SpecLibraryTest.cpp - Spec library tests ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/SpecLibrary.h"

#include "rspec/Validity.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
class SpecLibraryTest
    : public ::testing::TestWithParam<const SpecTemplate *> {};
} // namespace

TEST_P(SpecLibraryTest, EveryLibrarySpecIsValid) {
  const SpecTemplate *T = GetParam();
  RSpecRuntime Runtime = T->runtime();
  ValidityConfig Cfg;
  Cfg.MaxStates = 150;
  Cfg.MaxArgs = 30;
  Cfg.MaxChecksPerProperty = 40000;
  Cfg.RandomRounds = 400;
  ValidityChecker Checker(Runtime, Cfg);
  ValidityResult R = Checker.check();
  EXPECT_TRUE(R.Valid) << T->name() << ": " << R.CE->describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, SpecLibraryTest, ::testing::ValuesIn(SpecTemplate::all()),
    [](const ::testing::TestParamInfo<const SpecTemplate *> &I) {
      return I.param->name();
    });

TEST(SpecLibraryUsageTest, TemplatesAreSingletons) {
  EXPECT_EQ(&SpecTemplate::counterAdd(), &SpecTemplate::counterAdd());
  EXPECT_EQ(SpecTemplate::all().size(), 13u);
}

TEST(SpecLibraryUsageTest, RuntimeAppliesActions) {
  const SpecTemplate &T = SpecTemplate::counterAdd();
  RSpecRuntime RT = T.runtime();
  const ActionDecl &Add = T.spec().Actions[0];
  ValueRef V = RT.applyAction(Add, iv(10), iv(5));
  EXPECT_EQ(V->getInt(), 15);
  EXPECT_TRUE(RT.preHolds(Add, iv(3), iv(3)));
  EXPECT_FALSE(RT.preHolds(Add, iv(3), iv(4)));
}

TEST(SpecLibraryUsageTest, QueueTemplateHasAppendixDFeatures) {
  const SpecTemplate &T = SpecTemplate::pcQueue();
  const ResourceSpecDecl &S = T.spec();
  EXPECT_TRUE(S.Inv != nullptr);
  const ActionDecl *Cons = S.findAction("Cons");
  ASSERT_NE(Cons, nullptr);
  EXPECT_TRUE(Cons->Unique);
  EXPECT_TRUE(Cons->Enabled != nullptr);
  EXPECT_TRUE(Cons->History != nullptr);
  EXPECT_TRUE(Cons->Returns != nullptr);

  RSpecRuntime RT = T.runtime();
  ValueRef Empty = pv(sv({}), iv(0));
  EXPECT_FALSE(RT.isEnabled(*Cons, Empty)); // nothing to consume
  ValueRef One = pv(sv({7}), iv(0));
  EXPECT_TRUE(RT.isEnabled(*Cons, One));
  EXPECT_EQ(RT.actionResult(*Cons, One, ValueFactory::unit())->getInt(), 7);
}

TEST(SpecLibraryUsageTest, MapKeySetRejectsHighKeyPairs) {
  const SpecTemplate &T = SpecTemplate::mapKeySet();
  RSpecRuntime RT = T.runtime();
  const ActionDecl &Put = T.spec().Actions[0];
  // Equal keys, differing values: related (values may be high).
  EXPECT_TRUE(RT.preHolds(Put, pv(iv(1), iv(5)), pv(iv(1), iv(9))));
  // Differing keys: unrelated.
  EXPECT_FALSE(RT.preHolds(Put, pv(iv(1), iv(5)), pv(iv(2), iv(5))));
}
