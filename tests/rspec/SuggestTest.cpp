//===-- tests/rspec/SuggestTest.cpp - suggest-spec edge cases --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases for the candidate cap (`--max 0` means unlimited, a cap at
/// or above the pool size never truncates) and byte-determinism of the
/// ranked report across job counts.
///
//===----------------------------------------------------------------------===//

#include "rspec/Suggest.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

/// A spec whose seq-of-int state enumerates several template alphas and
/// whose action lacks `low(arg)`, so the +low strengthening doubles the
/// pool — enough candidates to exercise the cap from both sides.
const char *LogSource = R"(
  resource Log {
    state: seq<int>;
    alpha(v) = seq_to_mset(v);
    shared action Append(a: int) {
      apply(v, a) = append(v, a);
    }
  }

  procedure main(x: int) returns (out: int)
    requires low(x)
    ensures low(out)
  {
    share l: Log := seq_empty();
    atomic l { perform l.Append(x); }
    var s: seq<int> := seq_empty();
    s := unshare l;
    out := len(s);
  }
)";

SuggestResult suggest(const Program &P, SuggestOptions Opts) {
  return suggestSpec(P.Specs[0], P, Opts);
}

} // namespace

TEST(SuggestTest, MaxZeroMeansNoCap) {
  Program P = parseChecked(LogSource);
  SuggestOptions Opts;
  Opts.MaxCandidates = 0;
  SuggestResult R = suggest(P, Opts);
  EXPECT_FALSE(R.Truncated);
  EXPECT_GT(R.CandidatesTried, 2u);
  EXPECT_EQ(R.Ranked.size(), R.CandidatesTried);
}

TEST(SuggestTest, CapAbovePoolNeverTruncates) {
  Program P = parseChecked(LogSource);
  SuggestOptions Unlimited;
  Unlimited.MaxCandidates = 0;
  uint64_t Pool = suggest(P, Unlimited).CandidatesTried;

  SuggestOptions AtPool;
  AtPool.MaxCandidates = static_cast<unsigned>(Pool);
  SuggestResult R = suggest(P, AtPool);
  EXPECT_FALSE(R.Truncated);
  EXPECT_EQ(R.CandidatesTried, Pool);

  SuggestOptions Above;
  Above.MaxCandidates = static_cast<unsigned>(Pool) + 7;
  SuggestResult R2 = suggest(P, Above);
  EXPECT_FALSE(R2.Truncated);
  EXPECT_EQ(R2.CandidatesTried, Pool);
}

TEST(SuggestTest, CapBelowPoolTruncatesToPrefix) {
  Program P = parseChecked(LogSource);
  SuggestOptions One;
  One.MaxCandidates = 1;
  SuggestResult R = suggest(P, One);
  EXPECT_TRUE(R.Truncated);
  EXPECT_EQ(R.CandidatesTried, 1u);
  ASSERT_EQ(R.Ranked.size(), 1u);
  // Enumeration is cut off, not sampled: the sole survivor is the spec
  // exactly as declared.
  EXPECT_TRUE(R.Ranked[0].Declared);
}

TEST(SuggestTest, ReportByteIdenticalAcrossJobs) {
  Program P = parseChecked(LogSource);
  SuggestOptions J1;
  J1.MaxCandidates = 0;
  J1.Jobs = 1;
  SuggestOptions J3 = J1;
  J3.Jobs = 3;
  std::vector<SuggestResult> R1{suggest(P, J1)};
  std::vector<SuggestResult> R3{suggest(P, J3)};
  EXPECT_EQ(renderSuggestReport(P, R1, "x.hv"),
            renderSuggestReport(P, R3, "x.hv"));
  ASSERT_EQ(R1[0].Ranked.size(), R3[0].Ranked.size());
  for (size_t I = 0; I < R1[0].Ranked.size(); ++I) {
    EXPECT_EQ(R1[0].Ranked[I].Index, R3[0].Ranked[I].Index);
    EXPECT_EQ(R1[0].Ranked[I].Valid, R3[0].Ranked[I].Valid);
    EXPECT_EQ(R1[0].Ranked[I].Unbounded, R3[0].Ranked[I].Unbounded);
  }
}
