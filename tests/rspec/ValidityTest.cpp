//===-- tests/rspec/ValidityTest.cpp - Def. 3.1 validity tests -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the resource-specification validity checker against the paper's
/// examples: the Fig. 4 map specifications, the Fig. 1 assignment actions,
/// the abstraction family used by the Table 1 list examples, and the App. D
/// producer-consumer queue.
///
//===----------------------------------------------------------------------===//

#include "rspec/Validity.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

ValidityResult checkSpec(const std::string &Source,
                         ValidityConfig Config = {}) {
  static std::vector<std::unique_ptr<Program>> Keep;
  Keep.push_back(std::make_unique<Program>(parseChecked(Source)));
  Program &P = *Keep.back();
  EXPECT_EQ(P.Specs.size(), 1u);
  static std::vector<std::unique_ptr<RSpecRuntime>> KeepRt;
  KeepRt.push_back(std::make_unique<RSpecRuntime>(P.Specs[0], &P));
  ValidityChecker Checker(*KeepRt.back(), Config);
  return Checker.check();
}

} // namespace

//===----------------------------------------------------------------------===//
// Valid specifications
//===----------------------------------------------------------------------===//

TEST(ValidityTest, CounterAddIsValid) {
  ValidityResult R = checkSpec(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
  // The abstract tier discharges both obligations (A' for Add, B1 for
  // (Add, Add)) over the unbounded int domain; nothing reaches the
  // concrete tiers.
  EXPECT_TRUE(R.Unbounded);
  EXPECT_EQ(R.AbsintObligations, 2u);
  EXPECT_EQ(R.AbsintProved, 2u);
  EXPECT_EQ(R.BoundedChecks, 0u);
  EXPECT_EQ(R.RandomChecks, 0u);
}

TEST(ValidityTest, CounterAddBoundedTiersStillPassWithAbsintOff) {
  ValidityConfig Cfg;
  Cfg.RunAbsintTier = false;
  ValidityResult R = checkSpec(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )",
                               Cfg);
  EXPECT_TRUE(R.Valid) << R.CE->describe();
  EXPECT_FALSE(R.Unbounded);
  EXPECT_EQ(R.AbsintObligations, 0u);
  EXPECT_GT(R.BoundedChecks, 0u);
}

TEST(ValidityTest, MapKeySetAbstractionIsValid) {
  // Fig. 4 (left): puts commute w.r.t. the key set, with only keys low.
  ValidityResult R = checkSpec(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ConstantAbstractionAcceptsAnything) {
  // Fig. 1 variant: arbitrary assignments are fine if nothing is leaked.
  ValidityResult R = checkSpec(R"(
    resource Blind {
      state: int;
      alpha(v) = 0;
      shared action Set(a: int) {
        apply(v, a) = a;
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, CommutingAdditionsFig1VariantValid) {
  // Fig. 1 fixed: s := s + 3 || s := s + 4 commutes with identity alpha.
  ValidityResult R = checkSpec(R"(
    resource AddOnly {
      state: int;
      alpha(v) = v;
      unique action AddL(a: unit) { apply(v, a) = v + 3; }
      unique action AddR(a: unit) { apply(v, a) = v + 4; }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, DisjointRangePutsAreValid) {
  // Fig. 4 (right): unique puts on disjoint key ranges, identity alpha.
  ValidityResult R = checkSpec(R"(
    resource DisjointMap {
      state: map<int, int>;
      alpha(v) = v;
      scope int -2 .. 2;
      scope size 2;
      unique action PutNeg(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a)) && low(snd(a)) && fst(a) < 0;
      }
      unique action PutPos(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a)) && low(snd(a)) && fst(a) >= 0;
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, HistogramIncrementIsValid) {
  // Salary-Histogram: increments on the same key commute.
  ValidityResult R = checkSpec(R"(
    resource Histogram {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action Inc(a: int) {
        apply(v, a) = map_put(v, a, map_get_or(v, a, 0) + 1);
        requires low(a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ConditionalMaxPutIsValid) {
  // Most-Valuable-Purchase: keep the max value per key.
  ValidityResult R = checkSpec(R"(
    resource MaxMap {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action PutMax(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), max(snd(a), map_get_or(v, fst(a), snd(a))));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, SetAddIsValid) {
  ValidityResult R = checkSpec(R"(
    resource IntSet {
      state: set<int>;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = set_add(v, a);
        requires low(a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ListAppendSumLenAbstractionValid) {
  // Mean-Salary: leak (sum, length); the mean is derived after unsharing.
  ValidityResult R = checkSpec(R"(
    resource SalaryList {
      state: seq<int>;
      alpha(v) = pair(sum(v), len(v));
      shared action Append(a: int) {
        apply(v, a) = append(v, a);
        requires low(a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ListAppendMultisetAbstractionValid) {
  // Email-Metadata: appends commute modulo the multiset view.
  ValidityResult R = checkSpec(R"(
    resource EventList {
      state: seq<int>;
      alpha(v) = seq_to_mset(v);
      shared action Append(a: int) {
        apply(v, a) = append(v, a);
        requires low(a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ListAppendLengthAbstractionValid) {
  // Patient-Statistic: only the length is leaked, so values may be high.
  ValidityResult R = checkSpec(R"(
    resource PatientList {
      state: seq<int>;
      alpha(v) = len(v);
      shared action Append(a: int) {
        apply(v, a) = append(v, a);
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, ProducerConsumerQueueValid) {
  // App. D (Fig. 12, simplified): ghost state (produced, consumedCount).
  ValidityResult R = checkSpec(R"(
    resource PCQueue {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      unique action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
        history(v) = take(fst(v), snd(v));
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

TEST(ValidityTest, MultiProducerQueueMultisetAbstractionValid) {
  // 2-Producers-2-Consumers: shared produce/consume; the produced multiset
  // is the abstraction (Table 1).
  ValidityResult R = checkSpec(R"(
    resource MPMCQueue {
      state: pair<seq<int>, int>;
      alpha(v) = pair(seq_to_mset(fst(v)), snd(v));
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      shared action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      shared action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
      }
    }
  )");
  EXPECT_TRUE(R.Valid) << R.CE->describe();
}

//===----------------------------------------------------------------------===//
// Invalid specifications (each mirrors a paper counterexample)
//===----------------------------------------------------------------------===//

TEST(ValidityTest, Fig1AssignmentsAreRejected) {
  // s := 3 || s := 4 with the full value leaked: not commutative.
  ValidityResult R = checkSpec(R"(
    resource RacyAssign {
      state: int;
      alpha(v) = v;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Commutativity);
}

TEST(ValidityTest, MapIdentityAbstractionRejected) {
  // Fig. 3 without the key-set abstraction: the high values flow into the
  // identity abstraction, so property (A) already fails.
  ValidityResult R = checkSpec(R"(
    resource MapFull {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Precondition);
}

TEST(ValidityTest, MapIdentityLowValuesStillRacesOnKeys) {
  // Even with both components low, last-write-wins on the same key does
  // not commute under the identity abstraction: this isolates property (B).
  ValidityResult R = checkSpec(R"(
    resource MapFullLow {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Commutativity);
}

TEST(ValidityTest, HighKeyPutRejectedByPropertyA) {
  // Keys must be low for the key-set abstraction to stay low.
  ValidityResult R = checkSpec(R"(
    resource MapHighKey {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Precondition);
}

TEST(ValidityTest, ListSequenceAbstractionRejected) {
  // Appends do not commute on the concrete list (the App. D discussion).
  ValidityResult R = checkSpec(R"(
    resource OrderedList {
      state: seq<int>;
      alpha(v) = v;
      shared action Append(a: int) {
        apply(v, a) = append(v, a);
        requires low(a);
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Commutativity);
}

TEST(ValidityTest, HighValueMeanAbstractionRejected) {
  // Appending a high value changes the (sum, len) abstraction.
  ValidityResult R = checkSpec(R"(
    resource BadMean {
      state: seq<int>;
      alpha(v) = pair(sum(v), len(v));
      shared action Append(a: int) {
        apply(v, a) = append(v, a);
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Precondition);
}

TEST(ValidityTest, BadHistoryClauseRejected) {
  // History claims the *whole* produced sequence was already returned.
  ValidityResult R = checkSpec(R"(
    resource BadHistory {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      unique action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
        history(v) = fst(v);
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::History);
}

TEST(ValidityTest, InvariantViolationRejected) {
  ValidityResult R = checkSpec(R"(
    resource BadInv {
      state: int;
      alpha(v) = v;
      inv(v) = v >= 0;
      shared action Dec(a: unit) {
        apply(v, a) = v - 1;
      }
    }
  )");
  ASSERT_FALSE(R.Valid);
  EXPECT_EQ(R.CE->Prop, ValidityCounterexample::Property::Invariant);
}

//===----------------------------------------------------------------------===//
// Properties of the checker itself
//===----------------------------------------------------------------------===//

TEST(ValidityTest, RelevantPairsExcludeUniqueSelfPairs) {
  Program P = parseChecked(R"(
    resource Mixed {
      state: int;
      alpha(v) = v;
      shared action S(a: int) { apply(v, a) = v + a; requires low(a); }
      unique action U(a: int) { apply(v, a) = v + 2 * a; requires low(a); }
    }
  )");
  auto Pairs = relevantActionPairs(P.Specs[0]);
  // (S,S), (S,U) but not (U,U).
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Pairs[0], (std::pair<size_t, size_t>{0, 0}));
  EXPECT_EQ(Pairs[1], (std::pair<size_t, size_t>{0, 1}));
}

TEST(ValidityTest, BoundedTierAloneFindsFig1Counterexample) {
  ValidityConfig Cfg;
  Cfg.RunRandomTier = false;
  ValidityResult R = checkSpec(R"(
    resource RacyAssign2 {
      state: int;
      alpha(v) = v;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
  )",
                               Cfg);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.RandomChecks, 0u);
}

TEST(ValidityTest, RandomTierAloneFindsMapCounterexample) {
  ValidityConfig Cfg;
  Cfg.RunBoundedTier = false;
  ValidityResult R = checkSpec(R"(
    resource MapFull2 {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )",
                               Cfg);
  EXPECT_FALSE(R.Valid);
  EXPECT_EQ(R.BoundedChecks, 0u);
}

TEST(ValidityTest, BudgetIsConsumedBySymmetricInstances) {
  // Regression: the swapped-orientation check of an off-diagonal state pair
  // incremented BoundedChecks without consuming budget, so a property could
  // perform up to 2x MaxChecksPerProperty checks. Every checked instance
  // must now consume one unit. The constant abstraction makes *every* state
  // pair same-alpha (maximally off-diagonal), which is exactly the shape
  // that used to overshoot.
  ValidityConfig Cfg;
  Cfg.RunRandomTier = false;
  Cfg.RunAbsintTier = false; // the regression lives in the bounded tier
  Cfg.MaxChecksPerProperty = 10;
  ValidityResult R = checkSpec(R"(
    resource BlindBudget {
      state: int;
      alpha(v) = 0;
      shared action Set(a: int) { apply(v, a) = a; }
    }
  )",
                               Cfg);
  EXPECT_TRUE(R.Valid);
  // One bounded property instance for (A) on Set and one for (B) on
  // (Set, Set): at most MaxChecksPerProperty each.
  EXPECT_LE(R.BoundedChecks, 2 * Cfg.MaxChecksPerProperty);
  EXPECT_GT(R.BoundedChecks, 0u);
}

TEST(ValidityTest, ParallelCounterexampleIsDeterministic) {
  // The map-with-identity-abstraction family is known invalid; the parallel
  // bounded tier must report the *same* counterexample (the lowest global
  // instance index) and the same check counts at every job count.
  const char *Source = R"(
    resource MapFullJobs {
      state: map<int, int>;
      alpha(v) = v;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )";
  ValidityConfig Cfg;
  Cfg.RunRandomTier = false;
  Cfg.Jobs = 1;
  ValidityResult Seq = checkSpec(Source, Cfg);
  ASSERT_FALSE(Seq.Valid);
  for (unsigned Jobs : {2u, 8u}) {
    Cfg.Jobs = Jobs;
    ValidityResult Par = checkSpec(Source, Cfg);
    ASSERT_FALSE(Par.Valid) << "Jobs=" << Jobs;
    EXPECT_EQ(Par.CE->describe(), Seq.CE->describe()) << "Jobs=" << Jobs;
    EXPECT_EQ(Par.BoundedChecks, Seq.BoundedChecks) << "Jobs=" << Jobs;
    EXPECT_EQ(Par.RandomChecks, Seq.RandomChecks) << "Jobs=" << Jobs;
  }
}

TEST(ValidityTest, ParallelValidSpecCountsAreDeterministic) {
  // On a valid spec the bounded tier runs to (budgeted) completion; the
  // totals must not depend on the sharding.
  const char *Source = R"(
    resource CounterJobs {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )";
  ValidityConfig Cfg;
  Cfg.Jobs = 1;
  ValidityResult Seq = checkSpec(Source, Cfg);
  ASSERT_TRUE(Seq.Valid) << Seq.CE->describe();
  for (unsigned Jobs : {2u, 8u}) {
    Cfg.Jobs = Jobs;
    ValidityResult Par = checkSpec(Source, Cfg);
    EXPECT_TRUE(Par.Valid) << "Jobs=" << Jobs;
    EXPECT_EQ(Par.BoundedChecks, Seq.BoundedChecks) << "Jobs=" << Jobs;
    EXPECT_EQ(Par.RandomChecks, Seq.RandomChecks) << "Jobs=" << Jobs;
  }
}

TEST(ValidityTest, PreconditionRelationIsEvaluatedRelationally) {
  Program P = parseChecked(R"(
    resource R1 {
      state: int;
      alpha(v) = v;
      shared action Add(a: pair<int, int>) {
        apply(v, a) = v + fst(a);
        requires low(fst(a)) && snd(a) >= 0;
      }
    }
  )");
  RSpecRuntime RT(P.Specs[0], &P);
  const ActionDecl &Add = P.Specs[0].Actions[0];
  // Same low part, different high parts: related.
  EXPECT_TRUE(RT.preHolds(Add, pv(iv(1), iv(5)), pv(iv(1), iv(9))));
  // Different low parts: unrelated.
  EXPECT_FALSE(RT.preHolds(Add, pv(iv(1), iv(5)), pv(iv(2), iv(5))));
  // Unary constraint violated in one side: unrelated.
  EXPECT_FALSE(RT.preHolds(Add, pv(iv(1), iv(-1)), pv(iv(1), iv(5))));
}

//===----------------------------------------------------------------------===//
// Memoization determinism
//===----------------------------------------------------------------------===//

TEST(ValidityTest, MemoizedVerdictIsBitIdenticalToUncached) {
  // Memoized alpha/f_a evaluation must not change the verdict, the chosen
  // counterexample, or the check counts — at any job count. (Invalid spec:
  // the identity abstraction leaks the put values, Fig. 3 without dom().)
  std::string Source = R"(
    resource MapIdMemo {
      state: map<int, int>;
      alpha(v) = v;
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )";
  ValidityConfig Cfg;
  Cfg.Jobs = 1;
  Cfg.Memoize = false;
  ValidityResult Ref = checkSpec(Source, Cfg);
  ASSERT_FALSE(Ref.Valid);
  EXPECT_EQ(Ref.Cache.hits() + Ref.Cache.misses(), 0u);
  for (unsigned Jobs : {1u, 8u}) {
    Cfg.Jobs = Jobs;
    Cfg.Memoize = true;
    ValidityResult Memo = checkSpec(Source, Cfg);
    ASSERT_FALSE(Memo.Valid) << "Jobs=" << Jobs;
    EXPECT_EQ(Memo.CE->describe(), Ref.CE->describe()) << "Jobs=" << Jobs;
    EXPECT_EQ(Memo.BoundedChecks, Ref.BoundedChecks) << "Jobs=" << Jobs;
    EXPECT_EQ(Memo.RandomChecks, Ref.RandomChecks) << "Jobs=" << Jobs;
    EXPECT_GT(Memo.Cache.hits(), 0u) << "Jobs=" << Jobs;
  }
}

TEST(ValidityTest, MemoizedValidSpecCountsMatchUncached) {
  std::string Source = R"(
    resource MapKSMemo {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )";
  ValidityConfig Cfg;
  Cfg.Jobs = 1;
  Cfg.Memoize = false;
  // MapKS is proved unbounded by the abstract tier, which would leave the
  // memo cache cold; this test is about the concrete tiers' caching.
  Cfg.RunAbsintTier = false;
  ValidityResult Ref = checkSpec(Source, Cfg);
  ASSERT_TRUE(Ref.Valid) << Ref.CE->describe();
  for (unsigned Jobs : {1u, 8u}) {
    Cfg.Jobs = Jobs;
    Cfg.Memoize = true;
    ValidityResult Memo = checkSpec(Source, Cfg);
    EXPECT_TRUE(Memo.Valid) << "Jobs=" << Jobs;
    EXPECT_EQ(Memo.BoundedChecks, Ref.BoundedChecks) << "Jobs=" << Jobs;
    EXPECT_EQ(Memo.RandomChecks, Ref.RandomChecks) << "Jobs=" << Jobs;
    // The bounded tier revisits a small state universe many times; the
    // cache must actually be hitting for the speedup claim to hold.
    EXPECT_GT(Memo.Cache.hits(), Memo.Cache.misses()) << "Jobs=" << Jobs;
  }
}

//===----------------------------------------------------------------------===//
// Request budgets (CheckBudget)
//===----------------------------------------------------------------------===//

TEST(ValidityBudgetTest, StepCapTimesOutWithoutCounterexample) {
  ValidityConfig Cfg;
  Cfg.RunAbsintTier = false; // force the concrete tiers to do the work
  Cfg.Budget = std::make_shared<CheckBudget>(0, 1);
  ValidityResult R = checkSpec(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )",
                               Cfg);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_FALSE(R.Valid);
  EXPECT_FALSE(R.CE.has_value()); // a timeout is not a refutation
  EXPECT_TRUE(Cfg.Budget->fired());
}

TEST(ValidityBudgetTest, ExpiredDeadlineTimesOut) {
  ValidityConfig Cfg;
  Cfg.RunAbsintTier = false;
  Cfg.Budget = std::make_shared<CheckBudget>(1, 0);
  // Let the 1ms deadline lapse before the check even starts; the first
  // checkpoint must observe it.
  while (!Cfg.Budget->expired()) {
  }
  ValidityResult R = checkSpec(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )",
                               Cfg);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_FALSE(R.Valid);
  EXPECT_FALSE(R.CE.has_value());
}

TEST(ValidityBudgetTest, GenerousBudgetChangesNothing) {
  ValidityConfig Plain;
  Plain.RunAbsintTier = false;
  ValidityConfig Budgeted = Plain;
  Budgeted.Budget = std::make_shared<CheckBudget>(600000, 1000000000);
  const char *Source = R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )";
  ValidityResult A = checkSpec(Source, Plain);
  ValidityResult B = checkSpec(Source, Budgeted);
  EXPECT_FALSE(B.TimedOut);
  EXPECT_EQ(A.Valid, B.Valid);
  EXPECT_EQ(A.BoundedChecks, B.BoundedChecks);
  EXPECT_EQ(A.RandomChecks, B.RandomChecks);
}

TEST(ValidityBudgetTest, AbsintProofNeedsNoConcreteSteps) {
  // When the differencing tier proves the spec outright, a one-step cap
  // never fires: the abstract tier is not budgeted (it is cheap and pure),
  // and no concrete instance runs.
  ValidityConfig Cfg;
  Cfg.Budget = std::make_shared<CheckBudget>(0, 1);
  ValidityResult R = checkSpec(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )",
                               Cfg);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_TRUE(R.Valid);
  EXPECT_TRUE(R.Unbounded);
  EXPECT_FALSE(Cfg.Budget->fired());
}
