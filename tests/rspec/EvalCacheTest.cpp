//===-- tests/rspec/EvalCacheTest.cpp - Spec memo eviction tests -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capacity-bound behavior of SpecEvalCache: a full shard evicts half of
/// its entries (not all of them), Entries never exceeds the configured
/// capacity, and eviction counters record what was actually dropped.
///
//===----------------------------------------------------------------------===//

#include "rspec/EvalCache.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

/// Distinct interned integer values make distinct cache keys.
ValueRef key(int64_t I) { return ValueFactory::intV(I); }

} // namespace

TEST(EvalCacheTest, FirstOverflowEvictsHalfTheShardNotAll) {
  SpecEvalCache C(/*MaxEntries=*/0); // floor: ShardCap = 64
  const size_t Cap = C.shardCap();
  ASSERT_EQ(Cap, 64u);
  // Insert distinct keys until some shard overflows for the first time.
  for (int64_t I = 0; I < 4096; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    CacheStats S = C.stats();
    if (S.Evictions > 0) {
      // evictHalf drops every other entry of a full shard: exactly
      // ceil(Cap / 2). A clear() would have reported Cap.
      EXPECT_EQ(S.Evictions, Cap / 2);
      return;
    }
  }
  FAIL() << "no shard ever overflowed";
}

TEST(EvalCacheTest, EntriesNeverExceedConfiguredCapacity) {
  SpecEvalCache C(/*MaxEntries=*/0);
  const uint64_t TotalCap =
      2 * SpecEvalCache::numShards() * C.shardCap(); // alpha + action side
  uint64_t MaxSeen = 0;
  ActionDecl Action;
  Action.Name = "act";
  for (int64_t I = 0; I < 20000; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    C.action(Action, V, V, [&] { return V; });
    if (I % 97 == 0)
      MaxSeen = std::max(MaxSeen, C.stats().Entries);
  }
  CacheStats S = C.stats();
  MaxSeen = std::max(MaxSeen, S.Entries);
  EXPECT_LE(MaxSeen, TotalCap);
  EXPECT_GT(S.Evictions, 0u);
  // Halving keeps survivors: the cache never collapses to empty shards.
  EXPECT_GE(S.Entries, TotalCap / 4);
}

TEST(EvalCacheTest, SurvivorsStillHitAfterEviction) {
  SpecEvalCache C(/*MaxEntries=*/0);
  // Fill well past capacity, then re-query everything: survivors hit, the
  // evicted half recomputes (and every returned value is still correct).
  for (int64_t I = 0; I < 5000; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
  }
  uint64_t HitsBefore = C.stats().AlphaHits;
  unsigned Recomputed = 0;
  for (int64_t I = 0; I < 5000; ++I) {
    ValueRef V = key(I);
    ValueRef R = C.alpha(V, [&] {
      ++Recomputed;
      return V;
    });
    EXPECT_TRUE(Value::equal(R, V));
  }
  CacheStats S = C.stats();
  EXPECT_GT(S.AlphaHits, HitsBefore); // some keys survived eviction
  EXPECT_GT(Recomputed, 0u);          // and some were evicted
  EXPECT_LT(Recomputed, 5000u);
}

TEST(EvalCacheTest, ClearDropsEntriesAndZeroesCounters) {
  SpecEvalCache C(/*MaxEntries=*/0);
  ActionDecl Action;
  Action.Name = "act";
  for (int64_t I = 0; I < 100; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    C.action(Action, V, V, [&] { return V; });
  }
  ASSERT_GT(C.stats().Entries, 0u);
  ASSERT_GT(C.stats().misses(), 0u);

  C.clear();
  CacheStats S = C.stats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.hits(), 0u);
  EXPECT_EQ(S.misses(), 0u);
  EXPECT_EQ(S.Evictions, 0u);

  // The cache stays usable: everything recomputes (a miss), then hits.
  unsigned Recomputed = 0;
  ValueRef V = key(7);
  C.alpha(V, [&] {
    ++Recomputed;
    return V;
  });
  C.alpha(V, [&] {
    ++Recomputed;
    return V;
  });
  EXPECT_EQ(Recomputed, 1u);
}

TEST(EvalCacheTest, SnapshotDeltaClampsAcrossClear) {
  // The serve daemon computes per-request cache deltas as
  // `after - before`; a clear() (or program eviction) between the two
  // snapshots makes the later counters smaller. The subtraction must clamp
  // at zero instead of wrapping to ~2^64 (the bug this test pins).
  SpecEvalCache C(/*MaxEntries=*/0);
  for (int64_t I = 0; I < 50; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    C.alpha(V, [&] { return V; }); // second lookup hits
  }
  CacheStats Before = C.stats();
  ASSERT_GT(Before.AlphaHits, 0u);
  ASSERT_GT(Before.AlphaMisses, 0u);

  C.clear();
  ValueRef V = key(1);
  C.alpha(V, [&] { return V; }); // one fresh miss after the reset

  CacheStats Delta = C.stats() - Before;
  // Clamped: never the huge wrapped values, and the post-clear activity
  // cannot be mistaken for billions of hits.
  EXPECT_EQ(Delta.AlphaHits, 0u);
  EXPECT_LE(Delta.AlphaMisses, 1u);
  EXPECT_EQ(Delta.ActionHits, 0u);
  EXPECT_EQ(Delta.ActionMisses, 0u);
  EXPECT_EQ(Delta.Evictions, 0u);
  // Entries is a gauge: the delta keeps the later value as-is.
  EXPECT_EQ(Delta.Entries, C.stats().Entries);
}

TEST(EvalCacheTest, SnapshotDeltaStaysConsistentThroughEvictionSweeps) {
  // Same delta pattern across organic every-other eviction sweeps (no
  // clear): counters are monotone, so deltas must be exact.
  SpecEvalCache C(/*MaxEntries=*/0);
  CacheStats Before = C.stats();
  for (int64_t I = 0; I < 5000; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
  }
  CacheStats After = C.stats();
  ASSERT_GT(After.Evictions, 0u); // sweeps actually happened
  CacheStats Delta = After - Before;
  EXPECT_EQ(Delta.AlphaMisses, 5000u);
  EXPECT_EQ(Delta.Evictions, After.Evictions);
  EXPECT_EQ(Delta.Entries, After.Entries);
  // Entries tracks live entries through sweeps: inserts minus evictions.
  EXPECT_EQ(After.Entries, 5000u - After.Evictions);
}

TEST(EvalCacheTest, RegistrySizeTotalsAndClearAll) {
  SpecCacheRegistry Registry(/*MaxEntriesPerSpec=*/0);
  ResourceSpecDecl SpecA, SpecB;
  SpecA.Name = "a";
  SpecB.Name = "b";
  EXPECT_EQ(Registry.size(), 0u);

  std::shared_ptr<SpecEvalCache> CA = Registry.cacheFor(&SpecA);
  std::shared_ptr<SpecEvalCache> CB = Registry.cacheFor(&SpecB);
  EXPECT_EQ(Registry.size(), 2u);
  EXPECT_EQ(Registry.cacheFor(&SpecA), CA); // stable mapping

  ValueRef V = key(42);
  CA->alpha(V, [&] { return V; });
  CB->alpha(V, [&] { return V; });
  CacheStats T = Registry.totals();
  EXPECT_EQ(T.AlphaMisses, 2u);
  EXPECT_EQ(T.Entries, 2u);

  Registry.clearAll();
  T = Registry.totals();
  EXPECT_EQ(T.Entries, 0u);
  EXPECT_EQ(T.misses(), 0u);
  // Handed-out caches stay attached (clearAll empties, not detaches).
  CA->alpha(V, [&] { return V; });
  EXPECT_EQ(Registry.totals().AlphaMisses, 1u);
}
