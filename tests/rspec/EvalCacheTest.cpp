//===-- tests/rspec/EvalCacheTest.cpp - Spec memo eviction tests -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capacity-bound behavior of SpecEvalCache: a full shard evicts half of
/// its entries (not all of them), Entries never exceeds the configured
/// capacity, and eviction counters record what was actually dropped.
///
//===----------------------------------------------------------------------===//

#include "rspec/EvalCache.h"

#include <gtest/gtest.h>

using namespace commcsl;

namespace {

/// Distinct interned integer values make distinct cache keys.
ValueRef key(int64_t I) { return ValueFactory::intV(I); }

} // namespace

TEST(EvalCacheTest, FirstOverflowEvictsHalfTheShardNotAll) {
  SpecEvalCache C(/*MaxEntries=*/0); // floor: ShardCap = 64
  const size_t Cap = C.shardCap();
  ASSERT_EQ(Cap, 64u);
  // Insert distinct keys until some shard overflows for the first time.
  for (int64_t I = 0; I < 4096; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    CacheStats S = C.stats();
    if (S.Evictions > 0) {
      // evictHalf drops every other entry of a full shard: exactly
      // ceil(Cap / 2). A clear() would have reported Cap.
      EXPECT_EQ(S.Evictions, Cap / 2);
      return;
    }
  }
  FAIL() << "no shard ever overflowed";
}

TEST(EvalCacheTest, EntriesNeverExceedConfiguredCapacity) {
  SpecEvalCache C(/*MaxEntries=*/0);
  const uint64_t TotalCap =
      2 * SpecEvalCache::numShards() * C.shardCap(); // alpha + action side
  uint64_t MaxSeen = 0;
  ActionDecl Action;
  Action.Name = "act";
  for (int64_t I = 0; I < 20000; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
    C.action(Action, V, V, [&] { return V; });
    if (I % 97 == 0)
      MaxSeen = std::max(MaxSeen, C.stats().Entries);
  }
  CacheStats S = C.stats();
  MaxSeen = std::max(MaxSeen, S.Entries);
  EXPECT_LE(MaxSeen, TotalCap);
  EXPECT_GT(S.Evictions, 0u);
  // Halving keeps survivors: the cache never collapses to empty shards.
  EXPECT_GE(S.Entries, TotalCap / 4);
}

TEST(EvalCacheTest, SurvivorsStillHitAfterEviction) {
  SpecEvalCache C(/*MaxEntries=*/0);
  // Fill well past capacity, then re-query everything: survivors hit, the
  // evicted half recomputes (and every returned value is still correct).
  for (int64_t I = 0; I < 5000; ++I) {
    ValueRef V = key(I);
    C.alpha(V, [&] { return V; });
  }
  uint64_t HitsBefore = C.stats().AlphaHits;
  unsigned Recomputed = 0;
  for (int64_t I = 0; I < 5000; ++I) {
    ValueRef V = key(I);
    ValueRef R = C.alpha(V, [&] {
      ++Recomputed;
      return V;
    });
    EXPECT_TRUE(Value::equal(R, V));
  }
  CacheStats S = C.stats();
  EXPECT_GT(S.AlphaHits, HitsBefore); // some keys survived eviction
  EXPECT_GT(Recomputed, 0u);          // and some were evicted
  EXPECT_LT(Recomputed, 5000u);
}
