//===-- tests/rspec/AbsintAgreementTest.cpp - Tier agreement ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks the abstract (unbounded) validity tier against the concrete
/// bounded tier on every finite-scope spec we have: the whole spec library
/// plus a family of known-invalid specs. The contract under test is
/// soundness of the abstraction — an obligation the differencing analysis
/// proves must never have a concrete counterexample, and turning the tier
/// on must never change a verdict or the reported counterexample, at any
/// job count.
///
//===----------------------------------------------------------------------===//

#include "absint/Differencing.h"
#include "rspec/SpecLibrary.h"
#include "rspec/Validity.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

/// Known-invalid specs: the Fig. 1 assignment pair, the identity-abstraction
/// map (Fig. 3 without dom()), a value leak through alpha, and a missing
/// low-argument precondition.
const char *InvalidSources[] = {
    R"(
      resource AssignPair {
        state: int;
        alpha(v) = v;
        shared action SetA(a: int) { apply(v, a) = a; requires low(a); }
        shared action SetB(a: int) { apply(v, a) = a; requires low(a); }
      }
    )",
    R"(
      resource MapIdLeak {
        state: map<int, int>;
        alpha(v) = v;
        scope int -1 .. 1;
        scope size 2;
        shared action Put(a: pair<int, int>) {
          apply(v, a) = map_put(v, fst(a), snd(a));
          requires low(fst(a));
        }
      }
    )",
    R"(
      resource HighAdd {
        state: int;
        alpha(v) = v;
        shared action Add(a: int) { apply(v, a) = v + a; }
      }
    )",
    R"(
      resource SubLeak {
        state: int;
        alpha(v) = v;
        shared action Sub(a: int) { apply(v, a) = a - v; requires low(a); }
      }
    )",
};

struct SpecUnderTest {
  const Program *Prog;
  const ResourceSpecDecl *Spec;
  std::string Name;
};

std::vector<SpecUnderTest> allSpecs() {
  std::vector<SpecUnderTest> Out;
  for (const SpecTemplate *T : SpecTemplate::all())
    Out.push_back({&T->program(), &T->spec(), T->name()});
  static std::vector<std::unique_ptr<Program>> Keep;
  if (Keep.empty())
    for (const char *Src : InvalidSources)
      Keep.push_back(std::make_unique<Program>(parseChecked(Src)));
  for (const auto &P : Keep)
    Out.push_back({P.get(), &P->Specs.front(), P->Specs.front().Name});
  return Out;
}

ValidityResult runCheck(const SpecUnderTest &S, const ValidityConfig &Cfg) {
  RSpecRuntime Runtime(*S.Spec, S.Prog);
  ValidityChecker Checker(Runtime, Cfg);
  return Checker.check();
}

} // namespace

/// Obligation-level soundness: whenever the concrete tiers find a
/// counterexample, the abstract tier must not have proved the failing
/// obligation.
TEST(AbsintAgreementTest, AbstractProofNeverContradictsConcreteRefutation) {
  for (const SpecUnderTest &S : allSpecs()) {
    SCOPED_TRACE(S.Name);
    ValidityConfig Off;
    Off.RunAbsintTier = false;
    Off.Jobs = 1;
    ValidityResult Ref = runCheck(S, Off);

    absint::SpecAbsResult Abs = absint::analyzeSpec(*S.Spec, S.Prog);
    if (Abs.Applicable && Abs.AllProved) {
      EXPECT_TRUE(Ref.Valid)
          << S.Name << ": abstract tier proved a spec the bounded tier "
          << "refutes: " << (Ref.CE ? Ref.CE->describe() : "");
    }
    if (!Ref.Valid && Abs.Applicable) {
      const ValidityCounterexample &CE = *Ref.CE;
      if (CE.Prop == ValidityCounterexample::Property::Precondition) {
        if (const absint::ActionAbs *AA = Abs.action(CE.ActionA)) {
          EXPECT_NE(AA->Pre, absint::ObStatus::Proved)
              << S.Name << ": A' proved for '" << CE.ActionA
              << "' despite concrete CE: " << CE.describe();
        }
      } else if (CE.Prop == ValidityCounterexample::Property::Commutativity) {
        if (const absint::PairAbs *PA = Abs.pair(CE.ActionA, CE.ActionB)) {
          EXPECT_NE(PA->Comm, absint::ObStatus::Proved)
              << S.Name << ": B1 proved for (" << CE.ActionA << ", "
              << CE.ActionB << ") despite concrete CE: " << CE.describe();
        }
      }
    }
  }
}

/// Verdict-level agreement: the abstract tier only ever *removes* work from
/// the concrete tiers (skipping obligations it proved), so the verdict and
/// any counterexample must be identical with the tier on or off — at every
/// job count.
TEST(AbsintAgreementTest, TierOnOffVerdictsAgreeAcrossJobCounts) {
  for (const SpecUnderTest &S : allSpecs()) {
    SCOPED_TRACE(S.Name);
    ValidityConfig Off;
    Off.RunAbsintTier = false;
    Off.Jobs = 1;
    ValidityResult Ref = runCheck(S, Off);

    for (unsigned Jobs : {1u, 3u}) {
      ValidityConfig On;
      On.Jobs = Jobs;
      ValidityResult R = runCheck(S, On);
      EXPECT_EQ(R.Valid, Ref.Valid) << S.Name << " Jobs=" << Jobs;
      ASSERT_EQ(R.CE.has_value(), Ref.CE.has_value())
          << S.Name << " Jobs=" << Jobs;
      if (R.CE) {
        EXPECT_EQ(R.CE->describe(), Ref.CE->describe())
            << S.Name << " Jobs=" << Jobs;
      }
    }
  }
}

/// Determinism of the combined pipeline: the full result (verdict, CE,
/// check counts, absint counters) is byte-identical across job counts with
/// the tier on.
TEST(AbsintAgreementTest, AbsintResultsAreIdenticalAcrossJobCounts) {
  for (const SpecUnderTest &S : allSpecs()) {
    SCOPED_TRACE(S.Name);
    ValidityConfig Cfg1;
    Cfg1.Jobs = 1;
    ValidityResult R1 = runCheck(S, Cfg1);
    ValidityConfig Cfg3;
    Cfg3.Jobs = 3;
    ValidityResult R3 = runCheck(S, Cfg3);
    EXPECT_EQ(R1.Valid, R3.Valid) << S.Name;
    EXPECT_EQ(R1.Unbounded, R3.Unbounded) << S.Name;
    EXPECT_EQ(R1.BoundedChecks, R3.BoundedChecks) << S.Name;
    EXPECT_EQ(R1.RandomChecks, R3.RandomChecks) << S.Name;
    EXPECT_EQ(R1.AbsintObligations, R3.AbsintObligations) << S.Name;
    EXPECT_EQ(R1.AbsintProved, R3.AbsintProved) << S.Name;
    EXPECT_EQ(R1.AbsintSteps, R3.AbsintSteps) << S.Name;
    EXPECT_EQ(R1.AbsintSplits, R3.AbsintSplits) << S.Name;
    ASSERT_EQ(R1.CE.has_value(), R3.CE.has_value()) << S.Name;
    if (R1.CE) {
      EXPECT_EQ(R1.CE->describe(), R3.CE->describe()) << S.Name;
    }
  }
}

/// The flagship unbounded proofs the issue asks for: specs that were only
/// sampleable before now conclude Valid for the whole domain.
TEST(AbsintAgreementTest, PreviouslySampleOnlySpecsConcludeUnbounded) {
  const SpecTemplate *Flagships[] = {
      &SpecTemplate::counterAdd(),          // unbounded int domain
      &SpecTemplate::mapKeySet(),           // unbounded key/value maps
      &SpecTemplate::listAppendSumCount(),  // debt_sum / mean_salary family
      &SpecTemplate::mapAddValue(),         // count_* family
      &SpecTemplate::listAppendMultiset(),  // email-metadata multiset
  };
  for (const SpecTemplate *T : Flagships) {
    SCOPED_TRACE(T->name());
    SpecUnderTest S{&T->program(), &T->spec(), T->name()};
    ValidityResult R = runCheck(S, {});
    EXPECT_TRUE(R.Valid) << (R.CE ? R.CE->describe() : "");
    EXPECT_TRUE(R.Unbounded) << T->name()
                             << ": proved " << R.AbsintProved << "/"
                             << R.AbsintObligations << " obligations";
    EXPECT_EQ(R.BoundedChecks, 0u) << T->name();
    EXPECT_EQ(R.RandomChecks, 0u) << T->name();
  }
}
