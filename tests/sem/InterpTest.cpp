//===-- tests/sem/InterpTest.cpp - Interpreter unit tests ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sem/Interp.h"

#include "sem/Scheduler.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
RunResult runMain(const std::string &Source, std::vector<ValueRef> Args = {},
                  uint64_t Seed = 1) {
  Program P = parseChecked(Source);
  Interpreter Interp(P);
  RandomScheduler Sched(Seed);
  return Interp.run("main", Args, Sched);
}
} // namespace

TEST(InterpTest, StraightLine) {
  RunResult R = runMain(R"(
    procedure main() returns (out: int) {
      var x: int := 3;
      x := x + 4;
      out := x * 2;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 14);
}

TEST(InterpTest, WhileLoop) {
  RunResult R = runMain(R"(
    procedure main(n: int) returns (out: int) {
      var i: int := 0;
      var acc: int := 0;
      while (i < n) {
        acc := acc + i;
        i := i + 1;
      }
      out := acc;
    }
  )",
                        {iv(5)});
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 10);
}

TEST(InterpTest, IfBranches) {
  std::string Src = R"(
    procedure main(x: int) returns (out: int) {
      if (x > 0) { out := 1; } else { out := -1; }
    }
  )";
  EXPECT_EQ(runMain(Src, {iv(7)}).Returns[0]->getInt(), 1);
  EXPECT_EQ(runMain(Src, {iv(-7)}).Returns[0]->getInt(), -1);
}

TEST(InterpTest, ProcedureCall) {
  RunResult R = runMain(R"(
    procedure add(x: int, y: int) returns (r: int) {
      r := x + y;
    }
    procedure main() returns (out: int) {
      out := call add(20, 22);
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 42);
}

TEST(InterpTest, HeapOps) {
  RunResult R = runMain(R"(
    procedure main() returns (out: int) {
      var p: int := 0;
      var x: int := 0;
      p := alloc(5);
      x := [p];
      [p] := x + 1;
      out := [p];
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 6);
}

TEST(InterpTest, HeapFaultAborts) {
  RunResult R = runMain(R"(
    procedure main() returns (out: int) {
      out := [123];
    }
  )");
  EXPECT_EQ(R.St, RunResult::Status::Abort);
}

TEST(InterpTest, ParSharesEnclosingLocals) {
  // The paper's semantics has a single store; par branches write disjoint
  // variables of the enclosing frame.
  RunResult R = runMain(R"(
    procedure main() returns (out: int) {
      var a: int := 0;
      var b: int := 0;
      par { a := 1; } and { b := 2; }
      out := a + b;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 3);
}

TEST(InterpTest, NestedPar) {
  RunResult R = runMain(R"(
    procedure main() returns (out: int) {
      var a: int := 0;
      var b: int := 0;
      var c: int := 0;
      par {
        par { a := 1; } and { b := 2; }
      } and {
        c := 4;
      }
      out := a + b + c;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  EXPECT_EQ(R.Returns[0]->getInt(), 7);
}

TEST(InterpTest, SharedCounterAllSchedules) {
  // Fig. 2 shape: the final counter value is schedule-independent.
  std::string Src = R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure main() returns (out: int) {
      var c: int := 0;
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(3); }
      } and {
        atomic r { perform r.Add(4); }
      }
      c := unshare r;
      out := c;
    }
  )";
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    RunResult R = runMain(Src, {}, Seed);
    ASSERT_TRUE(R.ok()) << R.AbortReason;
    EXPECT_EQ(R.Returns[0]->getInt(), 7);
  }
}

TEST(InterpTest, ActionLogRecordsAllPerforms) {
  RunResult R = runMain(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure main() returns (out: int) {
      share r: Counter := 10;
      par {
        atomic r { perform r.Add(1); }
      } and {
        atomic r { perform r.Add(2); }
      }
      out := unshare r;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  ASSERT_EQ(R.Resources.size(), 1u);
  EXPECT_EQ(R.Resources[0].Log.size(), 2u);
  EXPECT_EQ(R.Resources[0].InitialValue->getInt(), 10);
  EXPECT_EQ(R.Resources[0].Value->getInt(), 13);
}

TEST(InterpTest, ReplayLogMatchesFinalValue) {
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure main() returns (out: int) {
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(5); }
      } and {
        atomic r { perform r.Add(6); }
      }
      out := unshare r;
    }
  )");
  Interpreter Interp(P);
  RandomScheduler Sched(3);
  RunResult R = Interp.run("main", {}, Sched);
  ASSERT_TRUE(R.ok());
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValueRef Replayed =
      replayLog(Runtime, R.Resources[0].InitialValue, R.Resources[0].Log);
  EXPECT_TRUE(Value::equal(Replayed, R.Resources[0].Value));
}

TEST(InterpTest, ProducerConsumerWithWhenBlocks) {
  // Consumer blocks until the producer has produced; no deadlock, and the
  // consumed values are exactly the produced ones in order.
  std::string Src = R"(
    resource PCQueue {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      unique action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
        history(v) = take(fst(v), snd(v));
      }
    }
    procedure main(n: int) returns (out: seq<int>)
      requires low(n)
    {
      var acc: seq<int> := seq_empty();
      share q: PCQueue := pair(seq_empty(), 0);
      par {
        var i: int := 0;
        while (i < n) {
          atomic q { perform q.Prod(i * 10); }
          i := i + 1;
        }
      } and {
        var j: int := 0;
        var x: int := 0;
        while (j < n) {
          atomic q when Cons {
            x := perform q.Cons(unit);
          }
          acc := append(acc, x);
          j := j + 1;
        }
      }
      var fin: pair<seq<int>, int> := pair(seq_empty(), 0);
      fin := unshare q;
      out := acc;
    }
  )";
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    RunResult R = runMain(Src, {iv(4)}, Seed);
    ASSERT_TRUE(R.ok()) << R.AbortReason;
    EXPECT_EQ(R.Returns[0]->str(), "[0, 10, 20, 30]");
  }
}

TEST(InterpTest, DeadlockDetected) {
  RunResult R = runMain(R"(
    resource PCQueue {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
      }
    }
    procedure main() returns (out: int) {
      var x: int := 0;
      share q: PCQueue := pair(seq_empty(), 0);
      atomic q when Cons {
        x := perform q.Cons(unit);
      }
      out := x;
    }
  )");
  EXPECT_EQ(R.St, RunResult::Status::Deadlock);
}

TEST(InterpTest, StepLimitOnInfiniteLoop) {
  Program P = parseChecked(R"(
    procedure main() {
      var i: int := 0;
      while (i >= 0) { i := 0; }
    }
  )");
  RunConfig Cfg;
  Cfg.MaxSteps = 1000;
  Interpreter Interp(P, Cfg);
  RandomScheduler Sched(1);
  RunResult R = Interp.run("main", {}, Sched);
  EXPECT_EQ(R.St, RunResult::Status::StepLimit);
}

TEST(InterpTest, GhostAssertChecked) {
  RunResult R = runMain(R"(
    procedure main() {
      var x: int := 1;
      assert x == 2;
    }
  )");
  EXPECT_EQ(R.St, RunResult::Status::Abort);
}

TEST(InterpTest, ShareViolatingInvAborts) {
  RunResult R = runMain(R"(
    resource Pos {
      state: int;
      alpha(v) = v;
      inv(v) = v >= 0;
      shared action Add(a: int) {
        apply(v, a) = v + abs(a);
        requires low(a);
      }
    }
    procedure main() returns (out: int) {
      share r: Pos := -5;
      out := unshare r;
    }
  )");
  EXPECT_EQ(R.St, RunResult::Status::Abort);
}

TEST(InterpTest, Fig1InternalTimingChannelObservable) {
  // The Fig. 1 program: with a round-robin scheduler, the final value of s
  // depends on whether h exceeds the left thread's loop bound. This is the
  // leak CommCSL rejects; the interpreter must exhibit it.
  std::string Src = R"(
    resource Racy {
      state: int;
      alpha(v) = 0;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
    procedure main(h: int) returns (s: int) {
      var t1: int := 0;
      var t2: int := 0;
      share r: Racy := 0;
      par {
        while (t1 < 10) { t1 := t1 + 1; }
        atomic r { perform r.SetL(unit); }
      } and {
        while (t2 < h) { t2 := t2 + 1; }
        atomic r { perform r.SetR(unit); }
      }
      s := unshare r;
    }
  )";
  Program P = parseChecked(Src);
  Interpreter Interp(P);
  RoundRobinScheduler S1, S2;
  RunResult RSmall = Interp.run("main", {iv(1)}, S1);
  RunResult RBig = Interp.run("main", {iv(100)}, S2);
  ASSERT_TRUE(RSmall.ok()) << RSmall.AbortReason;
  ASSERT_TRUE(RBig.ok()) << RBig.AbortReason;
  // Low-equivalent inputs (h is high), different low outputs: a value
  // channel created by an internal timing channel.
  EXPECT_NE(RSmall.Returns[0]->getInt(), RBig.Returns[0]->getInt());
}

TEST(InterpTest, SchedulersAreDeterministicPerSeed) {
  std::string Src = R"(
    procedure main() returns (out: int) {
      var a: int := 0;
      var b: int := 0;
      par { a := 1; a := a + 1; } and { b := 3; b := b + 1; }
      out := a * 10 + b;
    }
  )";
  Program P = parseChecked(Src);
  Interpreter Interp(P);
  RandomScheduler S1(99), S2(99);
  RunResult R1 = Interp.run("main", {}, S1);
  RunResult R2 = Interp.run("main", {}, S2);
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(R1.Steps, R2.Steps);
  EXPECT_TRUE(Value::equal(R1.Returns[0], R2.Returns[0]));
}

TEST(InterpTest, OutputStatementsRecordTrace) {
  RunResult R = runMain(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
    {
      output l;
      output l * 2;
      out := 0;
    }
  )",
                        {iv(3)});
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  ASSERT_EQ(R.Outputs.size(), 2u);
  EXPECT_EQ(R.Outputs[0]->getInt(), 3);
  EXPECT_EQ(R.Outputs[1]->getInt(), 6);
}

TEST(InterpTest, OutputInsideAtomicRecorded) {
  RunResult R = runMain(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int) {
      share r: Counter := 5;
      atomic r {
        output 42;
        perform r.Add(1);
      }
      out := unshare r;
    }
  )");
  ASSERT_TRUE(R.ok()) << R.AbortReason;
  ASSERT_EQ(R.Outputs.size(), 1u);
  EXPECT_EQ(R.Outputs[0]->getInt(), 42);
}

TEST(InterpTest, ConsistencyCheckOnUnshare) {
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int) {
      share r: Counter := 3;
      par {
        atomic r { perform r.Add(4); }
      } and {
        atomic r { perform r.Add(5); }
      }
      out := unshare r;
    }
  )");
  RunConfig Cfg;
  Cfg.CheckConsistencyOnUnshare = true;
  Interpreter Interp(P, Cfg);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    RandomScheduler Sched(Seed);
    RunResult R = Interp.run("main", {}, Sched);
    ASSERT_TRUE(R.ok()) << R.AbortReason;
    EXPECT_EQ(R.Returns[0]->getInt(), 12);
  }
}
