//===-- tests/sem/SchedulerTest.cpp - Scheduler unit tests -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sem/Scheduler.h"

#include <gtest/gtest.h>

#include <set>

using namespace commcsl;

TEST(SchedulerTest, RoundRobinCyclesThroughThreads) {
  RoundRobinScheduler S;
  std::vector<size_t> Runnable = {0, 1, 2};
  EXPECT_EQ(S.pick(Runnable), 0u);
  EXPECT_EQ(S.pick(Runnable), 1u);
  EXPECT_EQ(S.pick(Runnable), 2u);
  EXPECT_EQ(S.pick(Runnable), 0u); // wraps
}

TEST(SchedulerTest, RoundRobinSkipsBlockedThreads) {
  RoundRobinScheduler S;
  EXPECT_EQ(S.pick({0, 1, 2}), 0u);
  // Thread 1 became blocked: next pick jumps to 2.
  EXPECT_EQ(S.pick({0, 2}), 2u);
  EXPECT_EQ(S.pick({0, 2}), 0u);
}

TEST(SchedulerTest, RandomIsDeterministicPerSeed) {
  RandomScheduler S1(7), S2(7), S3(8);
  std::vector<size_t> Runnable = {0, 1, 2, 3};
  bool Diverged = false;
  for (int I = 0; I < 50; ++I) {
    size_t A = S1.pick(Runnable);
    size_t B = S2.pick(Runnable);
    size_t C = S3.pick(Runnable);
    EXPECT_EQ(A, B);
    Diverged |= (A != C);
  }
  EXPECT_TRUE(Diverged) << "different seeds should differ somewhere";
}

TEST(SchedulerTest, RandomCoversAllThreads) {
  RandomScheduler S(3);
  std::set<size_t> Seen;
  std::vector<size_t> Runnable = {0, 1, 2};
  for (int I = 0; I < 100; ++I)
    Seen.insert(S.pick(Runnable));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(SchedulerTest, BurstPrefersOneThreadForItsSlice) {
  BurstScheduler S(5, /*BurstLen=*/4);
  std::vector<size_t> Runnable = {0, 1};
  size_t First = S.pick(Runnable);
  // The next BurstLen-1 picks stay on the same thread.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(S.pick(Runnable), First);
}

TEST(SchedulerTest, BurstYieldsWhenPreferredBlocked) {
  BurstScheduler S(5, /*BurstLen=*/8);
  size_t First = S.pick({0, 1});
  size_t Other = First == 0 ? 1 : 0;
  // The preferred thread disappears from the runnable set.
  EXPECT_EQ(S.pick({Other}), Other);
}

TEST(SchedulerTest, BurstLenOneYieldsEveryStep) {
  // BurstLen == 1 means "no extra steps after the pick": Remaining must be
  // 0 after every pick, so the scheduler re-rolls each time and, with a
  // fair RNG, touches every thread.
  BurstScheduler S(9, /*BurstLen=*/1);
  std::vector<size_t> Runnable = {0, 1, 2};
  std::set<size_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(S.pick(Runnable));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(SchedulerTest, BurstLenZeroIsClampedNotInfinite) {
  // Regression: BurstLen == 0 used to set Remaining = 0 - 1 == UINT_MAX,
  // pinning one thread forever. It must behave like BurstLen == 1.
  BurstScheduler S(9, /*BurstLen=*/0);
  std::vector<size_t> Runnable = {0, 1, 2};
  std::set<size_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(S.pick(Runnable));
  EXPECT_EQ(Seen.size(), 3u) << "scheduler stayed pinned to one thread";
  EXPECT_EQ(S.name(), "burst(1,9)");
}

TEST(SchedulerTest, NamesAreDescriptive) {
  EXPECT_EQ(RoundRobinScheduler().name(), "round-robin");
  EXPECT_EQ(RandomScheduler(42).name(), "random(42)");
  EXPECT_EQ(BurstScheduler(1, 16).name(), "burst(16,1)");
}
