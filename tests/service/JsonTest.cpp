//===-- tests/service/JsonTest.cpp - Protocol JSON unit tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve protocol's JSON layer: parse/render round trips, escape
/// handling, 64-bit integer fidelity, and error reporting. The daemon's
/// wire behavior is only as trustworthy as this parser.
///
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <gtest/gtest.h>

using namespace commcsl;

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(JsonValue::parse("null")->kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(JsonValue::parse("true")->asBool());
  EXPECT_FALSE(JsonValue::parse("false")->asBool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e1")->asDouble(), -25.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"")->asString(), "hi");
}

TEST(JsonTest, ObjectLookupAndTypedAccessors) {
  auto V = JsonValue::parse(
      R"({"verb":"verify","jobs":3,"triage":true,"name":"a.hv"})");
  ASSERT_TRUE(V && V->isObject());
  EXPECT_EQ(V->getString("verb"), "verify");
  EXPECT_EQ(V->getU64("jobs"), 3u);
  EXPECT_TRUE(V->getBool("triage"));
  EXPECT_EQ(V->getString("missing", "dflt"), "dflt");
  EXPECT_EQ(V->getU64("missing", 7), 7u);
  // Wrong-typed members fall back to the default instead of garbage.
  EXPECT_EQ(V->getU64("verb", 9), 9u);
  EXPECT_EQ(V->getString("jobs", "x"), "x");
  EXPECT_EQ(V->find("nope"), nullptr);
}

TEST(JsonTest, U64RoundTripsExactly) {
  // Values above 2^53 lose precision through a double; the token-preserving
  // path must still return them exactly (fuzz seeds are u64).
  const uint64_t Big = 0xFFFFFFFFFFFFFFFFULL;
  auto V = JsonValue::parse("{\"seed\":18446744073709551615}");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->getU64("seed"), Big);

  JsonValue Out = JsonValue::object();
  Out.set("seed", JsonValue::number(Big));
  auto Back = JsonValue::parse(Out.dump());
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->getU64("seed"), Big);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  // The payload the daemon actually ships: multi-line reports with quotes,
  // backslashes, tabs, and control characters.
  const std::string Report =
      "a.hv: REJECTED\n  \"quoted\"\tback\\slash\r\x01end";
  JsonValue Out = JsonValue::object();
  Out.set("report", JsonValue::string(Report));
  const std::string Line = Out.dump();
  // ndjson invariant: rendering never emits a raw newline.
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  auto Back = JsonValue::parse(Line);
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->getString("report"), Report);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto V = JsonValue::parse(R"({"s":"é中"})");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->getString("s"), "\xC3\xA9\xE4\xB8\xAD");
  // Surrogate pair: U+1F600.
  auto P = JsonValue::parse(R"("😀")");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->asString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, NestedStructuresRoundTrip) {
  const std::string Text =
      R"({"a":[1,2,{"b":null}],"c":{"d":[true,false],"e":""}})";
  auto V = JsonValue::parse(Text);
  ASSERT_TRUE(V);
  EXPECT_EQ(V->dump(), Text); // insertion order and compactness preserved
  EXPECT_EQ(V->find("a")->items().size(), 3u);
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(JsonValue::parse("", &Err));
  EXPECT_FALSE(JsonValue::parse("{", &Err));
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", &Err));
  EXPECT_FALSE(JsonValue::parse("[1,]", &Err));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &Err));
  EXPECT_FALSE(JsonValue::parse("nul", &Err));
  EXPECT_FALSE(JsonValue::parse("{} trailing", &Err));
  EXPECT_FALSE(Err.empty()); // errors carry a description
}

TEST(JsonTest, DuplicateKeysLastWins) {
  auto V = JsonValue::parse(R"({"k":1,"k":2})");
  ASSERT_TRUE(V);
  EXPECT_EQ(V->getU64("k"), 2u);
}

TEST(JsonTest, SetRawSplicesVerbatim) {
  JsonValue O = JsonValue::object();
  O.set("ok", JsonValue::boolean(true));
  O.setRaw("metrics", R"({"counts":{"x":1}})");
  auto Back = JsonValue::parse(O.dump());
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->find("metrics")->find("counts")->getU64("x"), 1u);
}
