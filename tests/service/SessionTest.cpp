//===-- tests/service/SessionTest.cpp - Service session unit tests ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process tests of the serve daemon's Session layer: CLI-byte-identity
/// of reports, warm program/spec-cache reuse across requests, per-request
/// cache deltas, LRU eviction, and the per-verb surfaces. Wire-level
/// behavior lives in tests/hyperviper/ServeTest.cpp; this file pins the
/// semantics the wire merely transports.
///
//===----------------------------------------------------------------------===//

#include "service/Session.h"

#include "cert/Cert.h"
#include "cert/Check.h"
#include "hyperviper/Analyze.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace commcsl;

namespace {

const char *VerifiedProgram = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
  }
  procedure main(l: int) returns (out: int)
    requires low(l)
    ensures low(out)
  {
    share r: Counter := 0;
    atomic r { perform r.Add(l); }
    out := unshare r;
  }
)";

/// Like VerifiedProgram, but the action carries an `enabled` clause: the
/// differencing tier deliberately leaves enabled pairs to the bounded
/// tiers (enabledness restricts which interleavings are reachable), so
/// this spec still exercises the spec-eval memo that warm requests hit.
const char *MemoProgram = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      enabled(v) = true;
      requires low(a);
    }
  }
  procedure main(l: int) returns (out: int)
    requires low(l)
    ensures low(out)
  {
    share r: Counter := 0;
    atomic r { perform r.Add(l); }
    out := unshare r;
  }
)";

const char *RejectedProgram =
    "procedure main(h: int) returns (out: int) ensures low(out) "
    "{ out := h; }";

const char *ParseErrorProgram = "procedure main( {";

ServiceRequest verifyRequest(const char *Source, const char *Name) {
  ServiceRequest R;
  R.V = ServiceRequest::Verb::Verify;
  R.Source = Source;
  R.Name = Name;
  return R;
}

} // namespace

TEST(SessionTest, VerifyReportMatchesOneShotDriverOutput) {
  // The contract: the session's Report is byte-identical to what the
  // one-shot CLI prints — assembled here from the independent Driver path.
  Session S;
  ServiceResponse Resp = S.handle(verifyRequest(VerifiedProgram, "ok.hv"));
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_EQ(Resp.Report, "ok.hv: verified\n");

  Driver D;
  DriverResult R = D.verifySource(RejectedProgram, "bad.hv");
  ASSERT_FALSE(R.Verified);
  ServiceResponse Bad = S.handle(verifyRequest(RejectedProgram, "bad.hv"));
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Exit, 1);
  EXPECT_EQ(Bad.Report, R.Diags.str("bad.hv") + "bad.hv: REJECTED\n");
}

TEST(SessionTest, WarmRequestsHitProgramAndSpecCaches) {
  Session S;
  ServiceResponse Cold = S.handle(verifyRequest(MemoProgram, "a.hv"));
  EXPECT_FALSE(Cold.ProgramCacheHit);
  ASSERT_TRUE(Cold.Ok);
  EXPECT_GT(Cold.Cache.misses(), 0u); // the cold pass populated the memo

  ServiceResponse Warm = S.handle(verifyRequest(MemoProgram, "a.hv"));
  EXPECT_TRUE(Warm.ProgramCacheHit);
  EXPECT_EQ(Warm.Report, Cold.Report); // byte-identical warm vs cold
  EXPECT_GT(Warm.Cache.hits(), 0u);    // and actually served from memo

  SessionStats Stats = S.stats();
  EXPECT_EQ(Stats.Requests, 2u);
  EXPECT_EQ(Stats.ProgramCacheHits, 1u);
  EXPECT_EQ(Stats.ProgramCacheMisses, 1u);
  EXPECT_EQ(Stats.ProgramsCached, 1u);
  EXPECT_GT(Stats.Spec.hits(), 0u);
}

TEST(SessionTest, ReportsIdenticalAtEveryJobCount) {
  Session S;
  ServiceRequest R1 = verifyRequest(VerifiedProgram, "j.hv");
  R1.Jobs = 1;
  ServiceRequest R3 = R1;
  R3.Jobs = 3;
  ServiceResponse A = S.handle(R1);
  ServiceResponse B = S.handle(R3);
  ServiceResponse C = S.handle(R1); // warm again at jobs 1
  EXPECT_EQ(A.Report, B.Report);
  EXPECT_EQ(A.Report, C.Report);
  EXPECT_EQ(A.Exit, B.Exit);
}

TEST(SessionTest, ConcurrentClientsGetIdenticalReports) {
  Session S;
  constexpr unsigned Clients = 4;
  std::vector<ServiceResponse> Resps(Clients);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      ServiceRequest R = verifyRequest(VerifiedProgram, "c.hv");
      R.Jobs = 1 + I % 3;
      Resps[I] = S.handle(R);
    });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned I = 0; I < Clients; ++I) {
    EXPECT_TRUE(Resps[I].Ok);
    EXPECT_EQ(Resps[I].Report, Resps[0].Report);
  }
  EXPECT_EQ(S.stats().Requests, Clients);
  EXPECT_EQ(S.stats().ProgramsCached, 1u); // racing parses collapse to one
}

TEST(SessionTest, LruEvictsStalestProgram) {
  SessionOptions Opts;
  Opts.MaxCachedPrograms = 1;
  Session S(Opts);
  S.handle(verifyRequest(VerifiedProgram, "a.hv"));
  S.handle(verifyRequest(RejectedProgram, "b.hv")); // evicts a.hv
  EXPECT_EQ(S.stats().ProgramsCached, 1u);
  ServiceResponse Again = S.handle(verifyRequest(VerifiedProgram, "a.hv"));
  EXPECT_FALSE(Again.ProgramCacheHit); // was evicted, re-parsed
  EXPECT_TRUE(Again.Ok);
}

TEST(SessionTest, ValidityVerbReportsPerSpecVerdicts) {
  Session S;
  ServiceRequest R;
  R.V = ServiceRequest::Verb::Validity;
  R.Source = VerifiedProgram;
  R.Name = "v.hv";
  ServiceResponse Resp = S.handle(R);
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Report, "spec Counter: valid\n");

  R.Source = ParseErrorProgram;
  ServiceResponse Err = S.handle(R);
  EXPECT_FALSE(Err.Ok);
  EXPECT_EQ(Err.Exit, 1);
  EXPECT_NE(Err.Report.find("v.hv: REJECTED"), std::string::npos);
}

TEST(SessionTest, AnalyzeVerbMatchesAnalyzeSourceBlock) {
  Session S;
  ServiceRequest R;
  R.V = ServiceRequest::Verb::Analyze;
  R.Source = RejectedProgram;
  R.Name = "an.hv";
  ServiceResponse Resp = S.handle(R);
  AnalyzeResult Expected;
  Expected.Files.push_back(analyzeSourceBlock(RejectedProgram, "an.hv"));
  EXPECT_EQ(Resp.Report, Expected.str());
  EXPECT_EQ(Resp.Exit, 0); // analyze reports, it does not gate
}

TEST(SessionTest, NiVerbMatchesDriverEmpiricalBlock) {
  Session S;
  ServiceRequest R;
  R.V = ServiceRequest::Verb::NI;
  R.Source = VerifiedProgram;
  R.Name = "ni.hv";
  R.Proc = "main";
  ServiceResponse Resp = S.handle(R);
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_NE(
      Resp.Report.find("  empirical non-interference: no violation in"),
      std::string::npos);

  // Verify-with-NI appends the same block after the verdict line, exactly
  // as `hyperviper --ni main` does.
  ServiceRequest V = verifyRequest(VerifiedProgram, "ni.hv");
  V.Proc = "main";
  ServiceResponse Both = S.handle(V);
  EXPECT_EQ(Both.Report, std::string("ni.hv: verified\n") + Resp.Report);
}

TEST(SessionTest, WarmCertByteIdenticalToColdAndChecks) {
  // The warm-cache contract extends to certificates: a resubmitted source
  // (warm Program + warm spec memo caches) must return the exact bytes the
  // cold request produced, at any job count.
  Session S;
  ServiceRequest R = verifyRequest(VerifiedProgram, "cert.hv");
  R.EmitCert = true;
  ServiceResponse Cold = S.handle(R);
  ASSERT_TRUE(Cold.Ok);
  EXPECT_FALSE(Cold.ProgramCacheHit);
  ASSERT_FALSE(Cold.Cert.empty());

  ServiceResponse Warm = S.handle(R);
  EXPECT_TRUE(Warm.ProgramCacheHit);
  EXPECT_EQ(Warm.Cert, Cold.Cert);

  ServiceRequest R3 = R;
  R3.Jobs = 3;
  EXPECT_EQ(S.handle(R3).Cert, Cold.Cert);

  // And the bytes the service hands out survive the independent checker.
  std::string Err;
  std::optional<cert::Certificate> C = cert::parse(Cold.Cert, &Err);
  ASSERT_TRUE(C) << Err;
  Driver D;
  ParsedUnit Unit = D.parseAndCheck(VerifiedProgram, "cert.hv");
  ASSERT_TRUE(Unit.Ok);
  cert::CheckResult CR = cert::checkCertificate(*C, *Unit.Prog);
  EXPECT_TRUE(CR.Ok) << CR.Error;

  // Certificates are opt-in: a plain verify request carries none.
  EXPECT_TRUE(
      S.handle(verifyRequest(VerifiedProgram, "cert.hv")).Cert.empty());
}

TEST(SessionTest, RejectedProgramCertRecordsRejection) {
  Session S;
  ServiceRequest R = verifyRequest(RejectedProgram, "bad-cert.hv");
  R.EmitCert = true;
  ServiceResponse Resp = S.handle(R);
  EXPECT_FALSE(Resp.Ok);
  ASSERT_FALSE(Resp.Cert.empty());
  std::string Err;
  std::optional<cert::Certificate> C = cert::parse(Resp.Cert, &Err);
  ASSERT_TRUE(C) << Err;
  EXPECT_FALSE(C->Verified);

  // Parse failures have nothing to certify.
  ServiceRequest P = verifyRequest(ParseErrorProgram, "parse-err.hv");
  P.EmitCert = true;
  EXPECT_TRUE(S.handle(P).Cert.empty());
}

TEST(SessionTest, ResetCachesForcesColdPath) {
  Session S;
  S.handle(verifyRequest(VerifiedProgram, "r.hv"));
  S.resetCaches();
  EXPECT_EQ(S.stats().ProgramsCached, 0u);
  ServiceResponse Resp = S.handle(verifyRequest(VerifiedProgram, "r.hv"));
  EXPECT_FALSE(Resp.ProgramCacheHit);
  EXPECT_TRUE(Resp.Ok);
}

TEST(SessionTest, ResetUnderConcurrentLoadIsSafeAndDeterministic) {
  // `reset` may land while requests are in flight. Cached entries are
  // shared_ptrs, so an in-flight request keeps its program (and memo
  // caches) alive even after the map is cleared — verdicts and report
  // bytes must be unaffected, only the cache temperature may change.
  Session S;
  ServiceResponse Reference = S.handle(verifyRequest(VerifiedProgram, "r.hv"));
  ASSERT_TRUE(Reference.Ok);

  constexpr unsigned Clients = 4;
  constexpr unsigned Rounds = 8;
  std::vector<std::vector<ServiceResponse>> Resps(
      Clients, std::vector<ServiceResponse>(Rounds));
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      for (unsigned J = 0; J < Rounds; ++J)
        Resps[I][J] = S.handle(verifyRequest(VerifiedProgram, "r.hv"));
    });
  std::thread Resetter([&] {
    for (unsigned J = 0; J < Rounds * 2; ++J) {
      S.resetCaches();
      std::this_thread::yield();
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Resetter.join();

  for (unsigned I = 0; I < Clients; ++I)
    for (unsigned J = 0; J < Rounds; ++J) {
      EXPECT_TRUE(Resps[I][J].Ok);
      EXPECT_EQ(Resps[I][J].Report, Reference.Report);
    }
  // The session stays serviceable afterwards and the stats are coherent.
  EXPECT_EQ(S.stats().Requests, 1u + Clients * Rounds);
  ServiceResponse After = S.handle(verifyRequest(VerifiedProgram, "r.hv"));
  EXPECT_TRUE(After.Ok);
  EXPECT_EQ(After.Report, Reference.Report);
}

TEST(SessionTest, MaxStepsBudgetTimesOutAndLeavesCachesWarm) {
  Session S;
  // MemoProgram's enabled action forces the concrete tiers to run, so a
  // one-step cap must fire before they reach a verdict.
  ServiceRequest Budgeted = verifyRequest(MemoProgram, "b.hv");
  Budgeted.MaxSteps = 1;
  ServiceResponse Resp = S.handle(Budgeted);
  EXPECT_TRUE(Resp.TimedOut);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Exit, 1);

  // Caches untouched on timeout: the parsed program stays cached and an
  // unbudgeted retry succeeds warm with the normal verdict.
  ServiceResponse Retry = S.handle(verifyRequest(MemoProgram, "b.hv"));
  EXPECT_TRUE(Retry.ProgramCacheHit);
  EXPECT_FALSE(Retry.TimedOut);
  EXPECT_TRUE(Retry.Ok);
  EXPECT_EQ(Retry.Report, "b.hv: verified\n");
}

TEST(SessionTest, GenerousBudgetDoesNotFire) {
  Session S;
  ServiceRequest R = verifyRequest(MemoProgram, "c.hv");
  R.BudgetMs = 600000;
  R.MaxSteps = 1000000000;
  ServiceResponse Resp = S.handle(R);
  EXPECT_FALSE(Resp.TimedOut);
  EXPECT_TRUE(Resp.Ok);
  EXPECT_EQ(Resp.Report, "c.hv: verified\n");
}

TEST(SessionTest, ValidityVerbHonorsBudget) {
  Session S;
  ServiceRequest R = verifyRequest(MemoProgram, "d.hv");
  R.V = ServiceRequest::Verb::Validity;
  R.MaxSteps = 1;
  ServiceResponse Resp = S.handle(R);
  EXPECT_TRUE(Resp.TimedOut);
  EXPECT_FALSE(Resp.Ok);

  ServiceRequest Unbudgeted = verifyRequest(MemoProgram, "d.hv");
  Unbudgeted.V = ServiceRequest::Verb::Validity;
  ServiceResponse Ok = S.handle(Unbudgeted);
  EXPECT_FALSE(Ok.TimedOut);
  EXPECT_TRUE(Ok.Ok);
  EXPECT_NE(Ok.Report.find("spec Counter: valid"), std::string::npos);
}
