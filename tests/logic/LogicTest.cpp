//===-- tests/logic/LogicTest.cpp - Logic model unit tests -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the executable model of Sec. 3.3-3.5: extended-heap addition
/// (App. B.1 equations (3)-(6)), Fig. 7 assertion satisfaction, the PRE
/// predicates of Def. 3.2, and the consistency relation.
///
//===----------------------------------------------------------------------===//

#include "logic/Assertion.h"

#include "logic/ExtendedHeap.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

//===----------------------------------------------------------------------===//
// Guard-state algebra (App. B.1)
//===----------------------------------------------------------------------===//

TEST(ExtendedHeapTest, SharedGuardAdditionUnionsArgs) {
  SharedGuardState A = SharedGuardState::make(Frac::make(1, 2), msv({1}));
  SharedGuardState B = SharedGuardState::make(Frac::make(1, 2), msv({2, 2}));
  auto Sum = SharedGuardState::add(A, B);
  ASSERT_TRUE(Sum.has_value());
  EXPECT_TRUE(Sum->Amount.isOne());
  EXPECT_EQ(Sum->Args->str(), "ms{1, 2, 2}");
}

TEST(ExtendedHeapTest, SharedGuardAdditionCapsAtOne) {
  SharedGuardState A = SharedGuardState::make(Frac::make(2, 3), msv({}));
  SharedGuardState B = SharedGuardState::make(Frac::make(1, 2), msv({}));
  EXPECT_FALSE(SharedGuardState::add(A, B).has_value());
}

TEST(ExtendedHeapTest, BottomIsIdentity) {
  SharedGuardState A = SharedGuardState::make(Frac::make(1, 3), msv({7}));
  auto Sum = SharedGuardState::add(A, SharedGuardState::bottom());
  ASSERT_TRUE(Sum.has_value());
  EXPECT_TRUE(*Sum == A);
}

TEST(ExtendedHeapTest, SharedGuardAdditionIsCommutative) {
  SharedGuardState A = SharedGuardState::make(Frac::make(1, 4), msv({1}));
  SharedGuardState B = SharedGuardState::make(Frac::make(1, 2), msv({3}));
  auto AB = SharedGuardState::add(A, B);
  auto BA = SharedGuardState::add(B, A);
  ASSERT_TRUE(AB && BA);
  EXPECT_TRUE(*AB == *BA);
}

TEST(ExtendedHeapTest, UniqueGuardsCannotBeSplit) {
  UniqueGuardState A = UniqueGuardState::make(sv({1}));
  UniqueGuardState B = UniqueGuardState::make(sv({2}));
  EXPECT_FALSE(UniqueGuardState::add(A, B).has_value());
  auto WithBottom = UniqueGuardState::add(A, UniqueGuardState::bottom());
  ASSERT_TRUE(WithBottom.has_value());
  EXPECT_TRUE(*WithBottom == A);
}

TEST(ExtendedHeapTest, PermissionHeapAddition) {
  PermHeap A, B;
  A.Cells[1] = {Frac::make(1, 2), 10};
  B.Cells[1] = {Frac::make(1, 2), 10};
  B.Cells[2] = {Frac::make(1, 1), 20};
  auto Sum = PermHeap::add(A, B);
  ASSERT_TRUE(Sum.has_value());
  EXPECT_TRUE(Sum->hasFullPermission(1));
  EXPECT_TRUE(Sum->hasFullPermission(2));
  // Conflicting values cannot be summed.
  PermHeap C;
  C.Cells[1] = {Frac::make(1, 4), 11};
  EXPECT_FALSE(PermHeap::add(A, C).has_value());
  // Amounts above 1 cannot be summed.
  PermHeap D;
  D.Cells[1] = {Frac::make(3, 4), 10};
  EXPECT_FALSE(PermHeap::add(*Sum, D).has_value());
}

TEST(ExtendedHeapTest, NormalizeDropsPermissions) {
  PermHeap A;
  A.Cells[5] = {Frac::make(1, 3), 42};
  auto H = A.normalize();
  EXPECT_EQ(H.at(5), 42);
}

//===----------------------------------------------------------------------===//
// Fig. 7 satisfaction
//===----------------------------------------------------------------------===//

namespace {
LogicState stateWith(EvalEnv Store, ExtendedHeap Heap = {}) {
  return {std::move(Store), std::move(Heap)};
}

ExprRef typedVar(const std::string &Name, TypeRef Ty) {
  ExprRef E = Expr::var(Name);
  E->Ty = std::move(Ty);
  return E;
}
} // namespace

TEST(AssertionTest, LowHoldsIffEqualInBothStates) {
  AssertionChecker Checker(nullptr);
  AsrtRef P = Asrt::low(typedVar("x", Type::intTy()));
  EXPECT_TRUE(Checker.satisfies(stateWith({{"x", iv(1)}}),
                                stateWith({{"x", iv(1)}}), *P));
  EXPECT_FALSE(Checker.satisfies(stateWith({{"x", iv(1)}}),
                                 stateWith({{"x", iv(2)}}), *P));
}

TEST(AssertionTest, PointsToConsumesExactly) {
  AssertionChecker Checker(nullptr);
  ExtendedHeap H;
  H.PH.Cells[10] = {Frac::one(), 5};
  AsrtRef P = Asrt::pointsTo(Expr::intLit(10), Frac::one(), Expr::intLit(5));
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H), stateWith({}, H), *P));
  // Wrong value.
  AsrtRef Q = Asrt::pointsTo(Expr::intLit(10), Frac::one(), Expr::intLit(6));
  EXPECT_FALSE(Checker.satisfies(stateWith({}, H), stateWith({}, H), *Q));
  // Leftover heap: satisfaction is exact.
  EXPECT_FALSE(Checker.satisfies(stateWith({}, H), stateWith({}, H),
                                 *Asrt::emp()));
}

TEST(AssertionTest, StarSplitsFractions) {
  AssertionChecker Checker(nullptr);
  ExtendedHeap H;
  H.PH.Cells[10] = {Frac::one(), 5};
  AsrtRef Half =
      Asrt::pointsTo(Expr::intLit(10), Frac::make(1, 2), Expr::intLit(5));
  AsrtRef P = Asrt::star(Half, Half);
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H), stateWith({}, H), *P));
}

TEST(AssertionTest, ExistsPicksIndependentWitnesses) {
  // exists x. e |-> x is satisfied by different stored values in the two
  // states — the canonical "e points to a high value" (Sec. 3.4).
  AssertionChecker Checker(nullptr);
  ExtendedHeap H1, H2;
  H1.PH.Cells[10] = {Frac::one(), 1};
  H2.PH.Cells[10] = {Frac::one(), 2};
  AsrtRef P = Asrt::exists(
      "x", Type::intTy(),
      Asrt::pointsTo(Expr::intLit(10), Frac::one(),
                     typedVar("x", Type::intTy())));
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H1), stateWith({}, H2), *P));
  // But Low(x) under the same existential forces equal witnesses.
  AsrtRef Q = Asrt::exists(
      "x", Type::intTy(),
      Asrt::star(Asrt::pointsTo(Expr::intLit(10), Frac::one(),
                                typedVar("x", Type::intTy())),
                 Asrt::low(typedVar("x", Type::intTy()))));
  EXPECT_FALSE(Checker.satisfies(stateWith({}, H1), stateWith({}, H2), *Q));
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H1), stateWith({}, H1), *Q));
}

TEST(AssertionTest, GuardAssertions) {
  AssertionChecker Checker(nullptr);
  ExtendedHeap H;
  H.GS = SharedGuardState::make(Frac::one(), ValueFactory::emptyMultiset());
  ExprRef EmptyMs = Expr::builtin(BuiltinKind::MsEmpty, {});
  EmptyMs->Ty = Type::multiset(Type::intTy());
  AsrtRef P = Asrt::sguard(Frac::one(), EmptyMs);
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H), stateWith({}, H), *P));
  // A half guard cannot account for the full fraction.
  AsrtRef Q = Asrt::sguard(Frac::make(1, 2), EmptyMs);
  EXPECT_FALSE(Checker.satisfies(stateWith({}, H), stateWith({}, H), *Q));
  // But two halves can.
  EXPECT_TRUE(Checker.satisfies(stateWith({}, H), stateWith({}, H),
                                *Asrt::star(Q, Q)));
}

TEST(AssertionTest, ImplicationConditionMustBeLow) {
  AssertionChecker Checker(nullptr);
  AsrtRef P = Asrt::imp(typedVar("b", Type::boolTy()),
                        Asrt::low(typedVar("x", Type::intTy())));
  // Condition false in both: vacuous.
  EXPECT_TRUE(Checker.satisfies(stateWith({{"b", bv(false)}, {"x", iv(1)}}),
                                stateWith({{"b", bv(false)}, {"x", iv(2)}}),
                                *P));
  // Condition true in both: body must hold.
  EXPECT_FALSE(Checker.satisfies(stateWith({{"b", bv(true)}, {"x", iv(1)}}),
                                 stateWith({{"b", bv(true)}, {"x", iv(2)}}),
                                 *P));
  // Condition differing between the states: not low, unsatisfied.
  EXPECT_FALSE(Checker.satisfies(stateWith({{"b", bv(true)}, {"x", iv(1)}}),
                                 stateWith({{"b", bv(false)}, {"x", iv(1)}}),
                                 *P));
}

TEST(AssertionTest, UnarityIsSyntactic) {
  AsrtRef Unary = Asrt::star(Asrt::boolE(Expr::boolLit(true)), Asrt::emp());
  EXPECT_TRUE(Unary->isUnary());
  AsrtRef Relational =
      Asrt::star(Asrt::emp(), Asrt::low(typedVar("x", Type::intTy())));
  EXPECT_FALSE(Relational->isUnary());
}

//===----------------------------------------------------------------------===//
// PRE (Def. 3.2)
//===----------------------------------------------------------------------===//

namespace {
Program mapSpecProgram() {
  return parseChecked(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
      unique action UPut(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )");
}
} // namespace

TEST(PreTest, SharedBijectionMatchesByLowKey) {
  Program P = mapSpecProgram();
  RSpecRuntime RT(P.Specs[0], &P);
  const ActionDecl &Put = P.Specs[0].Actions[0];
  // Same keys, different (high) values, different multiset order: related.
  ValueRef A = ValueFactory::multiset({pv(iv(1), iv(10)), pv(iv(2), iv(20))});
  ValueRef B = ValueFactory::multiset({pv(iv(2), iv(99)), pv(iv(1), iv(77))});
  EXPECT_TRUE(preBijectionShared(RT, Put, A, B));
  // Different key multiset: unrelated.
  ValueRef C = ValueFactory::multiset({pv(iv(1), iv(10)), pv(iv(3), iv(20))});
  EXPECT_FALSE(preBijectionShared(RT, Put, A, C));
  // Different cardinality (Low(|s|) fails): unrelated.
  ValueRef D = ValueFactory::multiset({pv(iv(1), iv(10))});
  EXPECT_FALSE(preBijectionShared(RT, Put, A, D));
}

TEST(PreTest, SharedBijectionNeedsBacktracking) {
  Program P = mapSpecProgram();
  RSpecRuntime RT(P.Specs[0], &P);
  const ActionDecl &Put = P.Specs[0].Actions[0];
  // Duplicate keys on one side: the greedy first match can dead-end; the
  // matcher must backtrack.
  ValueRef A = ValueFactory::multiset(
      {pv(iv(1), iv(0)), pv(iv(1), iv(1)), pv(iv(2), iv(0))});
  ValueRef B = ValueFactory::multiset(
      {pv(iv(2), iv(5)), pv(iv(1), iv(6)), pv(iv(1), iv(7))});
  EXPECT_TRUE(preBijectionShared(RT, Put, A, B));
}

TEST(PreTest, UniqueIsPointwise) {
  Program P = mapSpecProgram();
  RSpecRuntime RT(P.Specs[0], &P);
  const ActionDecl &UPut = P.Specs[0].Actions[1];
  ValueRef A = ValueFactory::seq({pv(iv(1), iv(10)), pv(iv(2), iv(20))});
  ValueRef B = ValueFactory::seq({pv(iv(1), iv(99)), pv(iv(2), iv(98))});
  EXPECT_TRUE(preUnique(RT, UPut, A, B));
  // Pointwise: the same pairs in swapped order are NOT related for a
  // unique action (order is observable).
  ValueRef C = ValueFactory::seq({pv(iv(2), iv(98)), pv(iv(1), iv(99))});
  EXPECT_FALSE(preUnique(RT, UPut, A, C));
}

//===----------------------------------------------------------------------===//
// Consistency (Sec. 3.5)
//===----------------------------------------------------------------------===//

TEST(ConsistencyTest, FindsAnInterleaving) {
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
  )");
  RSpecRuntime RT(P.Specs[0], &P);
  std::map<std::string, ValueRef> Args{{"Add", msv({3, 4})}};
  EXPECT_TRUE(consistentWith(RT, iv(0), Args, iv(7)));
  EXPECT_FALSE(consistentWith(RT, iv(0), Args, iv(8)));
}

TEST(ConsistencyTest, RespectsUniqueActionOrder) {
  Program P = parseChecked(R"(
    resource Seqs {
      state: seq<int>;
      alpha(v) = v;
      unique action App(a: int) { apply(v, a) = append(v, a); requires low(a); }
    }
  )");
  RSpecRuntime RT(P.Specs[0], &P);
  std::map<std::string, ValueRef> Args{{"App", sv({1, 2})}};
  EXPECT_TRUE(consistentWith(RT, sv({}), Args, sv({1, 2})));
  // The unique action's order is fixed: [2, 1] is not reachable.
  EXPECT_FALSE(consistentWith(RT, sv({}), Args, sv({2, 1})));
}

TEST(ConsistencyTest, SharedArgsMayInterleave) {
  Program P = parseChecked(R"(
    resource Seqs {
      state: seq<int>;
      alpha(v) = seq_to_mset(v);
      shared action App(a: int) { apply(v, a) = append(v, a); requires low(a); }
    }
  )");
  RSpecRuntime RT(P.Specs[0], &P);
  std::map<std::string, ValueRef> Args{{"App", msv({1, 2})}};
  // Both orders are reachable for a shared action.
  EXPECT_TRUE(consistentWith(RT, sv({}), Args, sv({1, 2})));
  EXPECT_TRUE(consistentWith(RT, sv({}), Args, sv({2, 1})));
  EXPECT_FALSE(consistentWith(RT, sv({}), Args, sv({1, 1})));
}
