//===-- tests/testgen/FuzzTest.cpp - Generator-driven fuzzing --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzzing with randomly generated well-typed programs:
///
///  - generated programs always parse and type-check;
///  - programs the generator certifies secure are accepted (completeness);
///  - programs with a tainted output or an illegal action argument are
///    rejected;
///  - **soundness sweep**: anything the verifier accepts must pass the
///    empirical non-interference harness — the fuzz analogue of
///    Theorem 4.3.
///
//===----------------------------------------------------------------------===//

#include "testgen/ProgramGen.h"

#include "hyper/NonInterference.h"
#include "hyperviper/Driver.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

class GenSeedTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(GenSeedTest, GeneratedProgramsParseAndTypeCheck) {
  GenConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.AllowLeakyOutput = true;
  GeneratedProgram G = generateProgram(Cfg);
  DiagnosticEngine Diags;
  Program P = Parser::parse(G.Source, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str() << "\n" << G.Source;
  TypeChecker Checker(P, Diags);
  EXPECT_TRUE(Checker.check()) << Diags.str() << "\n" << G.Source;
}

TEST_P(GenSeedTest, UntaintedProgramsVerify) {
  GenConfig Cfg;
  Cfg.Seed = GetParam();
  Cfg.AllowLeakyOutput = false; // secure by construction
  GeneratedProgram G = generateProgram(Cfg);
  ASSERT_FALSE(G.OutputTainted);
  Driver D;
  DriverResult R = D.verifySource(G.Source, "gen");
  EXPECT_TRUE(R.Verified) << R.Diags.str("gen") << "\n" << G.Source;
}

TEST_P(GenSeedTest, TaintedProgramsAreRejected) {
  GenConfig Cfg;
  Cfg.Seed = GetParam() * 7919 + 13;
  Cfg.AllowLeakyOutput = true;
  GeneratedProgram G = generateProgram(Cfg);
  if (!G.OutputTainted)
    GTEST_SKIP() << "seed produced a secure program";
  Driver D;
  DriverResult R = D.verifySource(G.Source, "gen");
  EXPECT_FALSE(R.Verified)
      << "tainted program unexpectedly verified:\n"
      << G.Source;
}

TEST_P(GenSeedTest, SoundnessSweep) {
  // Whatever the verifier accepts must be empirically non-interferent.
  GenConfig Cfg;
  Cfg.Seed = GetParam() * 31 + 5;
  Cfg.AllowLeakyOutput = true; // exercise both verdicts
  GeneratedProgram G = generateProgram(Cfg);
  Driver D;
  DriverResult R = D.verifySource(G.Source, "gen");
  ASSERT_TRUE(R.ParseOk) << R.Diags.str("gen");
  if (!R.Verified)
    GTEST_SKIP() << "rejected; soundness claim only covers accepted ones";
  NIConfig NICfg;
  NICfg.Trials = 2;
  NICfg.HighSamples = 3;
  NICfg.RandomSchedules = 3;
  NIReport Report = D.runEmpirical(R, "main", NICfg);
  EXPECT_TRUE(Report.secure())
      << "VERIFIED program leaks!\n"
      << Report.Violation->describe() << "\n"
      << G.Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenSeedTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(GenConfigTest, DeterministicPerSeed) {
  GenConfig Cfg;
  Cfg.Seed = 42;
  EXPECT_EQ(generateProgram(Cfg).Source, generateProgram(Cfg).Source);
  GenConfig Cfg2 = Cfg;
  Cfg2.Seed = 43;
  EXPECT_NE(generateProgram(Cfg).Source, generateProgram(Cfg2).Source);
}

TEST(GenConfigTest, SizeScalesWithTarget) {
  GenConfig Small, Large;
  Small.Seed = Large.Seed = 9;
  Small.TargetStatements = 5;
  Large.TargetStatements = 80;
  EXPECT_LT(generateProgram(Small).Source.size(),
            generateProgram(Large).Source.size());
}

TEST(GenConfigTest, SequentialOnlyHasNoResources) {
  GenConfig Cfg;
  Cfg.Seed = 3;
  Cfg.EnableConcurrency = false;
  GeneratedProgram G = generateProgram(Cfg);
  EXPECT_EQ(G.Source.find("share "), std::string::npos);
  EXPECT_EQ(G.Source.find("par "), std::string::npos);
}
