//===-- tests/solver/SolverTest.cpp - Term/solver unit tests ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include "solver/SymEval.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
class SolverFixture : public ::testing::Test {
protected:
  TermArena A;
  TermRef i(int64_t V) { return A.intConst(V); }
};
} // namespace

//===----------------------------------------------------------------------===//
// Term normalization
//===----------------------------------------------------------------------===//

TEST_F(SolverFixture, ConstantFolding) {
  EXPECT_EQ(A.add(i(2), i(3)), i(5));
  EXPECT_EQ(A.binary(BinaryOp::Mul, i(4), i(5)), i(20));
  EXPECT_EQ(A.binary(BinaryOp::Div, i(7), i(2)), i(3));
  EXPECT_TRUE(A.binary(BinaryOp::Lt, i(1), i(2))->isTrue());
  EXPECT_TRUE(A.binary(BinaryOp::Ge, i(2), i(2))->isTrue());
}

TEST_F(SolverFixture, AdditionIsACNormalized) {
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  // (x + 1) + (y + 2) == (y + (x + 3)) structurally after normalization.
  TermRef T1 = A.add(A.add(X, i(1)), A.add(Y, i(2)));
  TermRef T2 = A.add(Y, A.add(X, i(3)));
  EXPECT_EQ(T1, T2);
}

TEST_F(SolverFixture, SubtractionNormalizesToAddOfNegated) {
  TermRef X = A.freshSym("x");
  // (x + 5) - 5 == x.
  EXPECT_EQ(A.sub(A.add(X, i(5)), i(5)), X);
  // x - x == 0? Mul(-1, x) and x are distinct atoms; AC folding does not
  // cancel symbolic atoms — the linear engine handles that (below).
}

TEST_F(SolverFixture, ComparisonCanonicalization) {
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  // x < y and x + 1 <= y normalize to the same term.
  EXPECT_EQ(A.binary(BinaryOp::Lt, X, Y),
            A.le(A.add(X, i(1)), Y));
  // x >= y and y <= x too.
  EXPECT_EQ(A.binary(BinaryOp::Ge, X, Y), A.le(Y, X));
}

TEST_F(SolverFixture, PairProjection) {
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef P = A.builtin(BuiltinKind::PairMk, {X, Y});
  EXPECT_EQ(A.builtin(BuiltinKind::Fst, {P}), X);
  EXPECT_EQ(A.builtin(BuiltinKind::Snd, {P}), Y);
}

TEST_F(SolverFixture, SortIsMultisetCanonical) {
  TermRef S = A.freshSym("s");
  TermRef T = A.freshSym("t");
  // sort(s ++ [x]) where the multisets agree: sort(concat(s,t)) ==
  // sort(concat(t,s)) because seq_to_mset maps both to the same ms-union.
  TermRef L = A.builtin(BuiltinKind::SeqSort,
                        {A.builtin(BuiltinKind::SeqConcat, {S, T})});
  TermRef R = A.builtin(BuiltinKind::SeqSort,
                        {A.builtin(BuiltinKind::SeqConcat, {T, S})});
  EXPECT_EQ(L, R);
}

TEST_F(SolverFixture, LengthHomomorphism) {
  TermRef S = A.freshSym("s");
  TermRef X = A.freshSym("x");
  TermRef L = A.builtin(BuiltinKind::SeqLen,
                        {A.builtin(BuiltinKind::SeqAppend, {S, X})});
  EXPECT_EQ(L, A.add(A.builtin(BuiltinKind::SeqLen, {S}), i(1)));
}

TEST_F(SolverFixture, CardinalityOfMsUnion) {
  TermRef M1 = A.freshSym("m1");
  TermRef M2 = A.freshSym("m2");
  TermRef U = A.builtin(BuiltinKind::MsUnion, {M1, M2});
  TermRef C = A.builtin(BuiltinKind::MsCard, {U});
  EXPECT_EQ(C, A.add(A.builtin(BuiltinKind::MsCard, {M1}),
                     A.builtin(BuiltinKind::MsCard, {M2})));
}

TEST_F(SolverFixture, MsUnionIsCommutative) {
  TermRef M1 = A.freshSym("m1");
  TermRef M2 = A.freshSym("m2");
  EXPECT_EQ(A.builtin(BuiltinKind::MsUnion, {M1, M2}),
            A.builtin(BuiltinKind::MsUnion, {M2, M1}));
  // Empty multiset is the identity.
  TermRef Empty = A.constant(ValueFactory::emptyMultiset());
  EXPECT_EQ(A.builtin(BuiltinKind::MsUnion, {M1, Empty}), M1);
}

TEST_F(SolverFixture, DomOfMapPut) {
  TermRef M = A.freshSym("m");
  TermRef K = A.freshSym("k");
  TermRef V = A.freshSym("v");
  TermRef D = A.builtin(BuiltinKind::MapDom,
                        {A.builtin(BuiltinKind::MapPut, {M, K, V})});
  EXPECT_EQ(D, A.builtin(BuiltinKind::SetAdd,
                         {A.builtin(BuiltinKind::MapDom, {M}), K}));
}

TEST_F(SolverFixture, GetOfPutSameKey) {
  TermRef M = A.freshSym("m");
  TermRef K = A.freshSym("k");
  TermRef V = A.freshSym("v");
  TermRef P = A.builtin(BuiltinKind::MapPut, {M, K, V});
  EXPECT_EQ(A.builtin(BuiltinKind::MapGet, {P, K}), V);
}

TEST_F(SolverFixture, MeanStaysUninterpretedOnSymbolicSeqs) {
  // mean must NOT expand to Div(sum, len): Div truncates toward zero while
  // the concrete mean floors, so the expansion would equate terms that
  // differ on negative sums (mean([-3, -4]) is -4, but -7 / 2 is -3).
  TermRef S = A.freshSym("s");
  TermRef Mean = A.builtin(BuiltinKind::SeqMean, {S});
  TermRef Expanded =
      A.binary(BinaryOp::Div, A.builtin(BuiltinKind::SeqSum, {S}),
               A.builtin(BuiltinKind::SeqLen, {S}));
  EXPECT_NE(Mean, Expanded);
  EXPECT_EQ(Mean->K, Term::Kind::Builtin);
  EXPECT_EQ(Mean->BK, BuiltinKind::SeqMean);
}

TEST_F(SolverFixture, MeanConstantFoldsWithFloorSemantics) {
  // Constant sequences fold through the concrete evaluator, which floors.
  ValueRef Seq = ValueFactory::seq(
      {ValueFactory::intV(-3), ValueFactory::intV(-4)});
  TermRef Mean = A.builtin(BuiltinKind::SeqMean, {A.constant(Seq)});
  ASSERT_TRUE(Mean->isConst());
  EXPECT_EQ(Mean->ConstVal->getInt(), -4);
}

TEST_F(SolverFixture, BooleanSimplification) {
  TermRef B = A.freshSym("b");
  EXPECT_EQ(A.logAnd(B, A.boolConst(true)), B);
  EXPECT_TRUE(A.logAnd(B, A.boolConst(false))->isFalse());
  EXPECT_EQ(A.logNot(A.logNot(B)), B);
  EXPECT_TRUE(A.eq(B, B)->isTrue());
}

TEST_F(SolverFixture, HashConsingSharesStructure) {
  TermRef X = A.freshSym("x");
  size_t Before = A.size();
  TermRef T1 = A.add(X, i(1));
  TermRef T2 = A.add(X, i(1));
  EXPECT_EQ(T1, T2);
  EXPECT_EQ(A.size(), Before + 2); // the const 1 and the sum
}

//===----------------------------------------------------------------------===//
// Entailment
//===----------------------------------------------------------------------===//

TEST_F(SolverFixture, CongruencePropagatesEqualities) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef M = A.freshSym("m");
  S.assumeEq(X, Y);
  // f(x) == f(y) by congruence, through arbitrary operations.
  EXPECT_TRUE(S.provesEq(A.builtin(BuiltinKind::MapDom,
                                   {A.builtin(BuiltinKind::MapPut,
                                              {M, X, A.intConst(0)})}),
                         A.builtin(BuiltinKind::MapDom,
                                   {A.builtin(BuiltinKind::MapPut,
                                              {M, Y, A.intConst(0)})})));
}

TEST_F(SolverFixture, CongruenceIsRetroactive) {
  // Terms built before the equality is assumed still merge.
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef Fx = A.builtin(BuiltinKind::Abs, {X});
  TermRef Fy = A.builtin(BuiltinKind::Abs, {Y});
  EXPECT_FALSE(S.provesEq(Fx, Fy));
  S.assumeEq(X, Y);
  EXPECT_TRUE(S.provesEq(Fx, Fy));
}

TEST_F(SolverFixture, TransitiveEqualities) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef Z = A.freshSym("z");
  S.assumeEq(X, Y);
  S.assumeEq(Y, Z);
  EXPECT_TRUE(S.provesEq(X, Z));
}

TEST_F(SolverFixture, ConstantPropagation) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  S.assumeEq(X, i(3));
  EXPECT_TRUE(S.provesEq(A.add(X, i(4)), i(7)));
}

TEST_F(SolverFixture, LinearBounds) {
  Solver S(A);
  TermRef X = A.freshSym("i");
  TermRef N = A.freshSym("n");
  S.assumeTrue(A.le(i(0), X));                     // 0 <= i
  S.assumeTrue(A.binary(BinaryOp::Lt, X, N));      // i < n
  EXPECT_TRUE(S.provesTrue(A.le(A.add(X, i(1)), N)));   // i + 1 <= n
  EXPECT_TRUE(S.provesTrue(A.le(X, N)));                // i <= n
  EXPECT_TRUE(S.provesTrue(A.le(i(0), A.add(X, i(1))))); // 0 <= i + 1
  EXPECT_FALSE(S.provesTrue(A.le(N, X)));               // not n <= i
}

TEST_F(SolverFixture, TransitiveBounds) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef Z = A.freshSym("z");
  S.assumeTrue(A.le(X, Y));
  S.assumeTrue(A.le(Y, Z));
  EXPECT_TRUE(S.provesTrue(A.le(X, Z)));
}

TEST_F(SolverFixture, AntisymmetryProvesEquality) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  S.assumeTrue(A.le(X, Y));
  S.assumeTrue(A.le(Y, X));
  EXPECT_TRUE(S.provesEq(X, Y));
}

TEST_F(SolverFixture, NegatedLoopConditionUsable) {
  // After a While1 loop: !(i < n) gives n <= i.
  Solver S(A);
  TermRef X = A.freshSym("i");
  TermRef N = A.freshSym("n");
  S.assumeTrue(A.logNot(A.binary(BinaryOp::Lt, X, N)));
  S.assumeTrue(A.le(X, N));
  EXPECT_TRUE(S.provesEq(X, N));
}

TEST_F(SolverFixture, DisequalityFromDistinctConstants) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  S.assumeEq(X, i(1));
  S.assumeEq(Y, i(2));
  EXPECT_TRUE(S.provesTrue(A.binary(BinaryOp::Ne, X, Y)));
}

TEST_F(SolverFixture, ContradictionProvesEverything) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  S.assumeEq(X, i(1));
  S.assumeEq(X, i(2));
  EXPECT_TRUE(S.inContradiction());
  EXPECT_TRUE(S.provesTrue(A.boolConst(false)) || S.provesEq(i(1), i(2)));
}

TEST_F(SolverFixture, CloneIsIndependent) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  Solver S2 = S; // value semantics
  S2.assumeEq(X, Y);
  EXPECT_TRUE(S2.provesEq(X, Y));
  EXPECT_FALSE(S.provesEq(X, Y));
}

TEST_F(SolverFixture, LownessFlowsThroughDerivedOutputs) {
  // The Fig. 3 final step: Low(dom(v)) gives Low(sort(set_to_seq(dom(v)))).
  Solver S(A);
  TermRef VL = A.freshSym("v_L");
  TermRef VR = A.freshSym("v_R");
  S.assumeEq(A.builtin(BuiltinKind::MapDom, {VL}),
             A.builtin(BuiltinKind::MapDom, {VR}));
  auto Out = [&](TermRef V) {
    return A.builtin(
        BuiltinKind::SeqSort,
        {A.builtin(BuiltinKind::SetToSeq,
                   {A.builtin(BuiltinKind::MapDom, {V})})});
  };
  EXPECT_TRUE(S.provesEq(Out(VL), Out(VR)));
  // But the full map values are not low.
  EXPECT_FALSE(S.provesEq(A.builtin(BuiltinKind::MapValues, {VL}),
                          A.builtin(BuiltinKind::MapValues, {VR})));
}

TEST_F(SolverFixture, SymEvalMatchesConcreteEval) {
  // Evaluating a closed expression symbolically folds to the same constant
  // the concrete evaluator produces.
  Program P = parseChecked(
      "function f(x: int): int = sum(append(append(seq_empty(), x), 2 * x));");
  SymEvaluator SE(A, &P);
  SymEnv Env{{"x", i(5)}};
  TermRef T = SE.eval(*P.Funcs[0].Body, Env);
  ASSERT_TRUE(T->isConst());
  EXPECT_EQ(T->ConstVal->getInt(), 15);
}

TEST_F(SolverFixture, SymEvalSymbolicLowness) {
  // Two sides with equal inputs produce identical terms for deterministic
  // expressions — the basis of Low(e) checking.
  Program P = parseChecked(
      "function f(s: seq<int>): seq<int> = sort(concat(s, s));");
  SymEvaluator SE(A, &P);
  TermRef S1 = A.freshSym("s");
  TermRef T1 = SE.eval(*P.Funcs[0].Body, {{"s", S1}});
  TermRef T2 = SE.eval(*P.Funcs[0].Body, {{"s", S1}});
  EXPECT_EQ(T1, T2);
}
