//===-- tests/solver/SolverMoreTest.cpp - Newer solver rules ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the solver rules added for the verifier's completeness: Ite
/// collapse and case splits, injectivity propagation, AC-chain matching,
/// non-negativity axioms, and commutative-signature congruence.
///
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {
class SolverMore : public ::testing::Test {
protected:
  TermArena A;
  TermRef i(int64_t V) { return A.intConst(V); }
  TermRef ite(TermRef C, TermRef T, TermRef E) {
    return A.builtin(BuiltinKind::Ite, {C, T, E});
  }
};
} // namespace

TEST_F(SolverMore, IteCollapsesWhenConditionDecided) {
  Solver S(A);
  TermRef B = A.freshSym("b");
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef T = ite(B, X, Y);
  EXPECT_FALSE(S.provesEq(T, X));
  S.assumeTrue(B);
  EXPECT_TRUE(S.provesEq(T, X));
}

TEST_F(SolverMore, IteCollapsesOnNegatedCondition) {
  Solver S(A);
  TermRef B = A.freshSym("b");
  TermRef T = ite(B, i(1), i(2));
  S.assumeTrue(A.logNot(B));
  EXPECT_TRUE(S.provesEq(T, i(2)));
}

TEST_F(SolverMore, AssumedComparisonDecidesIteCondition) {
  // The regression behind the fuzz-found stack overflow: assuming an
  // equality/comparison must decide the proposition itself.
  Solver S(A);
  TermRef H = A.freshSym("h");
  TermRef Cond = A.eq(A.binary(BinaryOp::Mod, H, i(8)), i(0));
  TermRef T = ite(Cond, i(1), i(2));
  S.assumeTrue(Cond);
  EXPECT_TRUE(S.provesEq(T, i(1)));
}

TEST_F(SolverMore, CaseSplitProvesBranchIndependentFacts) {
  Solver S(A);
  TermRef B = A.freshSym("b");
  TermRef T = ite(B, i(1), i(0));
  // 0 <= ite(b, 1, 0) regardless of b.
  EXPECT_TRUE(S.provesTrue(A.le(i(0), T)));
  EXPECT_TRUE(S.provesTrue(A.le(T, i(1))));
  EXPECT_FALSE(S.provesTrue(A.le(i(1), T))); // would need b
}

TEST_F(SolverMore, NestedCaseSplits) {
  Solver S(A);
  TermRef B1 = A.freshSym("b1");
  TermRef B2 = A.freshSym("b2");
  TermRef T = ite(B1, ite(B2, i(3), i(4)), i(5));
  EXPECT_TRUE(S.provesTrue(A.le(i(3), T)));
  EXPECT_TRUE(S.provesTrue(A.le(T, i(5))));
}

TEST_F(SolverMore, PairInjectivity) {
  Solver S(A);
  TermRef X1 = A.freshSym("x1");
  TermRef X2 = A.freshSym("x2");
  TermRef Y1 = A.freshSym("y1");
  TermRef Y2 = A.freshSym("y2");
  S.assumeEq(A.builtin(BuiltinKind::PairMk, {X1, Y1}),
             A.builtin(BuiltinKind::PairMk, {X2, Y2}));
  EXPECT_TRUE(S.provesEq(X1, X2));
  EXPECT_TRUE(S.provesEq(Y1, Y2));
}

TEST_F(SolverMore, AppendInjectivityPeelsChains) {
  // The unshare history mechanism: equal append-chains have equal links.
  Solver S(A);
  TermRef E = A.constant(ValueFactory::emptySeq());
  TermRef R1 = A.freshSym("r1");
  TermRef R2 = A.freshSym("r2");
  TermRef Q1 = A.freshSym("q1");
  TermRef Q2 = A.freshSym("q2");
  TermRef ChainL = A.builtin(
      BuiltinKind::SeqAppend,
      {A.builtin(BuiltinKind::SeqAppend, {E, R1}), R2});
  TermRef ChainR = A.builtin(
      BuiltinKind::SeqAppend,
      {A.builtin(BuiltinKind::SeqAppend, {E, Q1}), Q2});
  S.assumeEq(ChainL, ChainR);
  EXPECT_TRUE(S.provesEq(R1, Q1));
  EXPECT_TRUE(S.provesEq(R2, Q2));
}

TEST_F(SolverMore, NonNegativityAxioms) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef M = A.freshSym("m");
  EXPECT_TRUE(
      S.provesTrue(A.le(i(0), A.builtin(BuiltinKind::Abs, {X}))));
  EXPECT_TRUE(
      S.provesTrue(A.le(i(0), A.builtin(BuiltinKind::MsCard, {M}))));
  EXPECT_TRUE(
      S.provesTrue(A.le(i(0), A.builtin(BuiltinKind::SeqLen, {M}))));
  // And through sums: 0 <= abs(x) + 3.
  EXPECT_TRUE(S.provesTrue(
      A.le(i(0), A.add(A.builtin(BuiltinKind::Abs, {X}), i(3)))));
}

TEST_F(SolverMore, CommutativeCongruenceAcrossSides) {
  // max(x_L, 1) vs max(1, x_R): the per-side normal forms ordered the
  // operands differently; congruence must still connect them when the
  // sides are related.
  Solver S(A);
  TermRef XL = A.freshSym("x_L");
  // Force different Id-orderings by creating the constant between the syms.
  TermRef MaxL = A.builtin(BuiltinKind::Max, {XL, i(100)});
  TermRef XR = A.freshSym("x_R");
  TermRef MaxR = A.builtin(BuiltinKind::Max, {XR, i(100)});
  S.assumeEq(XL, XR);
  EXPECT_TRUE(S.provesEq(MaxL, MaxR));
}

TEST_F(SolverMore, ACChainMatchingForAdds) {
  Solver S(A);
  TermRef XL = A.freshSym("xL");
  TermRef YL = A.freshSym("yL");
  TermRef XR = A.freshSym("xR");
  TermRef YR = A.freshSym("yR");
  S.assumeEq(XL, XR);
  S.assumeEq(YL, YR);
  EXPECT_TRUE(S.provesEq(A.add(A.add(XL, YL), i(2)),
                         A.add(A.add(YR, XR), i(2))));
}

TEST_F(SolverMore, ACChainMatchingForMsUnions) {
  Solver S(A);
  TermRef AL = A.freshSym("aL");
  TermRef BL = A.freshSym("bL");
  TermRef AR = A.freshSym("aR");
  TermRef BR = A.freshSym("bR");
  S.assumeEq(AL, AR);
  S.assumeEq(BL, BR);
  TermRef UL = A.builtin(BuiltinKind::MsUnion, {AL, BL});
  TermRef UR = A.builtin(BuiltinKind::MsUnion, {BR, AR});
  EXPECT_TRUE(S.provesEq(UL, UR));
}

TEST_F(SolverMore, MsAddChainsMatchUpToElementPermutation) {
  Solver S(A);
  TermRef Base = A.constant(ValueFactory::emptyMultiset());
  TermRef X = A.freshSym("x");
  TermRef Y = A.freshSym("y");
  TermRef C1 = A.builtin(BuiltinKind::MsAdd,
                         {A.builtin(BuiltinKind::MsAdd, {Base, X}), Y});
  TermRef C2 = A.builtin(BuiltinKind::MsAdd,
                         {A.builtin(BuiltinKind::MsAdd, {Base, Y}), X});
  // Already canonicalized by the arena (sorted by id), so equal terms.
  EXPECT_EQ(C1, C2);
}

TEST_F(SolverMore, SetAddDeduplicates) {
  TermRef Base = A.constant(ValueFactory::emptySet());
  TermRef X = A.freshSym("x");
  TermRef Once = A.builtin(BuiltinKind::SetAdd, {Base, X});
  TermRef Twice = A.builtin(BuiltinKind::SetAdd, {Once, X});
  EXPECT_EQ(Once, Twice);
}

TEST_F(SolverMore, ConcatEmptyElimination) {
  TermRef E = A.constant(ValueFactory::emptySeq());
  TermRef S1 = A.freshSym("s");
  EXPECT_EQ(A.builtin(BuiltinKind::SeqConcat, {E, S1}), S1);
  EXPECT_EQ(A.builtin(BuiltinKind::SeqConcat, {S1, E}), S1);
}

TEST_F(SolverMore, NegatedLeGivesStrictBound) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef N = A.freshSym("n");
  S.assumeTrue(A.logNot(A.le(X, N))); // x > n
  EXPECT_TRUE(S.provesTrue(A.le(N, X)));
  EXPECT_TRUE(S.provesTrue(A.le(A.add(N, i(1)), X)));
}

TEST_F(SolverMore, DisequalityByStrictSeparation) {
  Solver S(A);
  TermRef X = A.freshSym("x");
  TermRef N = A.freshSym("n");
  S.assumeTrue(A.binary(BinaryOp::Lt, X, N));
  EXPECT_TRUE(S.provesTrue(A.binary(BinaryOp::Ne, X, N)));
}
