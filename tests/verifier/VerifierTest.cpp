//===-- tests/verifier/VerifierTest.cpp - Verifier unit tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the CommCSL relational verifier on the paper's programming
/// patterns: sequential information flow, the Fig. 1/2/3 examples, guard
/// discipline, high branching (If2/While2), retroactive PRE checking, and
/// the producer-consumer / pipeline patterns.
///
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

/// Verifies a program; returns the diagnostics engine for inspection.
DiagnosticEngine verify(const std::string &Source, bool &Ok,
                        bool SkipValidity = false) {
  Program P = parseChecked(Source);
  DiagnosticEngine Diags;
  VerifierConfig Cfg;
  Cfg.SkipValidityCheck = SkipValidity;
  // Modest budgets keep unit tests fast.
  Cfg.Validity.MaxStates = 120;
  Cfg.Validity.MaxArgs = 30;
  Cfg.Validity.MaxChecksPerProperty = 30000;
  Cfg.Validity.RandomRounds = 300;
  Verifier V(P, Diags, Cfg);
  Ok = V.verifyAll().Ok;
  return Diags;
}

void expectVerifies(const std::string &Source) {
  bool Ok = false;
  DiagnosticEngine D = verify(Source, Ok);
  EXPECT_TRUE(Ok) << D.str();
}

DiagnosticEngine expectRejected(const std::string &Source, DiagCode Code) {
  bool Ok = false;
  DiagnosticEngine D = verify(Source, Ok);
  EXPECT_FALSE(Ok) << "expected rejection";
  EXPECT_TRUE(D.hasErrorWithCode(Code))
      << "expected code " << diagCodeName(Code) << ", got:\n"
      << D.str();
  return D;
}

const char *CounterSpec = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      requires low(a);
    }
  }
)";

} // namespace

//===----------------------------------------------------------------------===//
// Sequential information flow
//===----------------------------------------------------------------------===//

TEST(VerifierTest, SequentialLowFlow) {
  expectVerifies(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := l * 2 + 1;
    }
  )");
}

TEST(VerifierTest, DirectLeakRejected) {
  expectRejected(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := h;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierTest, HighDataMayFlowToHighOutput) {
  expectVerifies(R"(
    procedure main(l: int, h: int) returns (out: int, secret: int)
      requires low(l)
      ensures low(out)
    {
      out := l;
      secret := h * l;
    }
  )");
}

TEST(VerifierTest, LowConditionalBothBranchesLow) {
  expectVerifies(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      if (l > 0) { out := 1; } else { out := 2; }
    }
  )");
}

TEST(VerifierTest, HighConditionalIndirectLeakRejected) {
  // The classic implicit flow: if (h) out := 1 else out := 0.
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      if (h > 0) { out := 1; } else { out := 0; }
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierTest, HighConditionalWithUnaryPostconditionOk) {
  expectVerifies(R"(
    procedure main(h: int) returns (out: int)
      ensures out >= 0
    {
      if (h > 0) { out := 1; } else { out := 0; }
    }
  )");
}

TEST(VerifierTest, LowLoopPreservesLowness) {
  expectVerifies(R"(
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var i: int := 0;
      var acc: int := 0;
      while (i < n)
        invariant low(i) && low(acc)
      {
        acc := acc + i;
        i := i + 1;
      }
      out := acc;
    }
  )");
}

TEST(VerifierTest, HighLoopCounterBecomesHigh) {
  // Fig. 1's right thread: the loop itself is fine, but t2 is high after a
  // loop with a high bound and may not be leaked.
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var t2: int := 0;
      while (t2 < h)
        invariant t2 >= 0
      {
        t2 := t2 + 1;
      }
      out := t2;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierTest, HighLoopAllowedWhenNotLeaked) {
  expectVerifies(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var t2: int := 0;
      while (t2 < h)
        invariant t2 >= 0
      {
        t2 := t2 + 1;
      }
      out := 7;
    }
  )");
}

TEST(VerifierTest, RelationalInvariantInHighLoopRejected) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var t2: int := 0;
      while (t2 < h)
        invariant low(t2)
      {
        t2 := t2 + 1;
      }
      out := t2;
    }
  )",
                 DiagCode::VerifyHighBranchEffect);
}

TEST(VerifierTest, ValueDependentSensitivity) {
  // b ==> low(x): the paper's value-dependent classification (Sec. 3.4).
  expectVerifies(R"(
    procedure main(b: bool, x: int) returns (out: int)
      requires low(b) && b ==> low(x)
      ensures b ==> low(out)
    {
      out := x + 1;
    }
  )");
}

TEST(VerifierTest, ProcedureCallUsesContract) {
  expectVerifies(R"(
    procedure double(x: int) returns (r: int)
      requires low(x)
      ensures low(r)
    {
      r := 2 * x;
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := call double(l + 1);
    }
  )");
}

TEST(VerifierTest, CallWithUnprovablePreRejected) {
  expectRejected(R"(
    procedure double(x: int) returns (r: int)
      requires low(x)
      ensures low(r)
    {
      r := 2 * x;
    }
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      out := call double(h);
    }
  )",
                 DiagCode::VerifyContract);
}

TEST(VerifierTest, CalleeBodyIsVerifiedToo) {
  expectRejected(R"(
    procedure leak(x: int, h: int) returns (r: int)
      requires low(x)
      ensures low(r)
    {
      r := h;
    }
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      out := call leak(l, h);
    }
  )",
                 DiagCode::VerifyEntailment);
}

//===----------------------------------------------------------------------===//
// Resources: the Fig. 1 / Fig. 2 / Fig. 3 stories
//===----------------------------------------------------------------------===//

TEST(VerifierTest, Fig2SharedCounter) {
  expectVerifies(std::string(CounterSpec) + R"(
    procedure worker(r: resource<Counter>, n: int)
      requires low(n) && sguard(r.Add, 1/2, empty)
      ensures sguard(r.Add, 1/2, S) && allpre(r.Add, S)
    {
      var i: int := 0;
      while (i < n)
        invariant low(i) && sguard(r.Add, 1/2, T) && allpre(r.Add, T)
      {
        atomic r { perform r.Add(1); }
        i := i + 1;
      }
    }
    procedure main(n: int, h: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      share r: Counter := 0;
      par {
        call worker(r, n);
      } and {
        call worker(r, n);
      }
      out := unshare r;
    }
  )");
}

TEST(VerifierTest, CounterIntermediateReadIsHigh) {
  // Reading the shared value inside an atomic block yields high data.
  expectRejected(std::string(CounterSpec) + R"(
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var x: int := 0;
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(1); }
      } and {
        atomic r {
          x := resval(r);
          perform r.Add(2);
        }
      }
      var fin: int := 0;
      fin := unshare r;
      out := x;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierTest, CounterFinalValueIsLow) {
  expectVerifies(std::string(CounterSpec) + R"(
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(3); }
      } and {
        atomic r { perform r.Add(4); }
      }
      out := unshare r;
    }
  )");
}

TEST(VerifierTest, HighInitialValueRejected) {
  expectRejected(std::string(CounterSpec) + R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      share r: Counter := h;
      out := unshare r;
    }
  )",
                 DiagCode::VerifyLowInitialValue);
}

TEST(VerifierTest, HighActionArgumentRejected) {
  // Property (3a): the Add precondition requires a low argument.
  expectRejected(std::string(CounterSpec) + R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      atomic r { perform r.Add(h); }
      out := unshare r;
    }
  )",
                 DiagCode::VerifyPreUnprovable);
}

TEST(VerifierTest, PerformWithoutGuardRejected) {
  expectRejected(std::string(CounterSpec) + R"(
    procedure helper(r: resource<Counter>)
    {
      atomic r { perform r.Add(1); }
    }
  )",
                 DiagCode::VerifyGuardMissing);
}

TEST(VerifierTest, PerformUnderHighBranchRejectedAtUnshare) {
  // Property (2): the number of modifications must not depend on a secret.
  expectRejected(std::string(CounterSpec) + R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      if (h > 0) {
        atomic r { perform r.Add(1); }
      }
      out := unshare r;
    }
  )",
                 DiagCode::VerifyPreUnprovable);
}

TEST(VerifierTest, PerformUnderLowBranchOk) {
  expectVerifies(std::string(CounterSpec) + R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      if (l > 0) {
        atomic r { perform r.Add(1); }
      }
      out := unshare r;
    }
  )");
}

TEST(VerifierTest, Fig1RejectedBecauseSpecInvalid) {
  // The original Fig. 1: arbitrary assignments with the value leaked.
  expectRejected(R"(
    resource Racy {
      state: int;
      alpha(v) = v;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
    procedure main(h: int) returns (s: int)
      ensures low(s)
    {
      var t1: int := 0;
      var t2: int := 0;
      share r: Racy := 0;
      par {
        while (t1 < 100) invariant t1 >= 0 { t1 := t1 + 1; }
        atomic r { perform r.SetL(unit); }
      } and {
        while (t2 < h) invariant t2 >= 0 { t2 := t2 + 1; }
        atomic r { perform r.SetR(unit); }
      }
      s := unshare r;
    }
  )",
                 DiagCode::SpecInvalidCommutes);
}

TEST(VerifierTest, Fig1ConstantAbstractionVerifies) {
  // Fig. 1 with the value not leaked: constant abstraction, s stays high.
  expectVerifies(R"(
    resource Racy {
      state: int;
      alpha(v) = 0;
      unique action SetL(a: unit) { apply(v, a) = 3; }
      unique action SetR(a: unit) { apply(v, a) = 4; }
    }
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var t1: int := 0;
      var t2: int := 0;
      var s: int := 0;
      share r: Racy := 0;
      par {
        while (t1 < 100) invariant t1 >= 0 { t1 := t1 + 1; }
        atomic r { perform r.SetL(unit); }
      } and {
        while (t2 < h) invariant t2 >= 0 { t2 := t2 + 1; }
        atomic r { perform r.SetR(unit); }
      }
      s := unshare r;
      out := 0;
    }
  )");
}

TEST(VerifierTest, Fig1CommutingAdditionsVerify) {
  // Fig. 1 fixed: s := s + 3 || s := s + 4; the sum is low.
  expectVerifies(R"(
    resource AddOnly {
      state: int;
      alpha(v) = v;
      unique action AddL(a: unit) { apply(v, a) = v + 3; }
      unique action AddR(a: unit) { apply(v, a) = v + 4; }
    }
    procedure main(h: int) returns (s: int)
      ensures low(s)
    {
      var t1: int := 0;
      var t2: int := 0;
      share r: AddOnly := 0;
      par {
        while (t1 < 100) invariant t1 >= 0 { t1 := t1 + 1; }
        atomic r { perform r.AddL(unit); }
      } and {
        while (t2 < h) invariant t2 >= 0 { t2 := t2 + 1; }
        atomic r { perform r.AddR(unit); }
      }
      s := unshare r;
    }
  )");
}

TEST(VerifierTest, Fig3MapKeySet) {
  expectVerifies(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
    procedure worker(addrs: seq<int>, rsns: seq<int>, f: int, t: int,
                     m: resource<MapKS>)
      requires low(addrs) && low(f) && low(t)
      requires sguard(m.Put, 1/2, empty)
      ensures sguard(m.Put, 1/2, S) && allpre(m.Put, S)
    {
      var i: int := f;
      while (i < t)
        invariant low(i) && sguard(m.Put, 1/2, T) && allpre(m.Put, T)
      {
        var adr: int := at(addrs, i);
        var rsn: int := at(rsns, i);
        atomic m {
          perform m.Put(pair(adr, rsn));
        }
        i := i + 1;
      }
    }
    procedure main(addrs: seq<int>, rsns: seq<int>) returns (res: seq<int>)
      requires low(addrs)
      ensures low(res)
    {
      var n: int := len(addrs);
      share m: MapKS := map_empty();
      par {
        call worker(addrs, rsns, 0, n / 2, m);
      } and {
        call worker(addrs, rsns, n / 2, n, m);
      }
      var fin: map<int, int> := map_empty();
      fin := unshare m;
      res := sort(set_to_seq(dom(fin)));
    }
  )");
}

TEST(VerifierTest, Fig3LeakingValuesRejected) {
  // Leaking the map's values (not just keys) must fail: the abstraction
  // only makes the key set low.
  expectRejected(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
    procedure main(k: int, h: int) returns (res: mset<int>)
      requires low(k)
      ensures low(res)
    {
      share m: MapKS := map_empty();
      atomic m { perform m.Put(pair(k, h)); }
      var fin: map<int, int> := map_empty();
      fin := unshare m;
      res := map_values(fin);
    }
  )",
                 DiagCode::VerifyEntailment);
}

//===----------------------------------------------------------------------===//
// Par discipline
//===----------------------------------------------------------------------===//

TEST(VerifierTest, ParDataRaceRejected) {
  expectRejected(R"(
    procedure main() returns (out: int)
      ensures low(out)
    {
      var a: int := 0;
      par { a := 1; } and { a := 2; }
      out := 0;
    }
  )",
                 DiagCode::VerifyDataRace);
}

TEST(VerifierTest, ParDisjointWritesOk) {
  expectVerifies(R"(
    procedure main() returns (out: int)
      ensures low(out)
    {
      var a: int := 0;
      var b: int := 0;
      par { a := 1; } and { b := 2; }
      out := a + b;
    }
  )");
}

TEST(VerifierTest, UniqueGuardUsedByTwoBranchesRejected) {
  expectRejected(R"(
    resource AddOnly {
      state: int;
      alpha(v) = v;
      unique action AddL(a: unit) { apply(v, a) = v + 3; }
      unique action AddR(a: unit) { apply(v, a) = v + 4; }
    }
    procedure main() returns (s: int)
      ensures low(s)
    {
      share r: AddOnly := 0;
      par {
        atomic r { perform r.AddL(unit); }
      } and {
        atomic r { perform r.AddL(unit); }
      }
      s := unshare r;
    }
  )",
                 DiagCode::VerifyUniqueGuardSplit);
}

//===----------------------------------------------------------------------===//
// Producer-consumer and pipeline (App. D)
//===----------------------------------------------------------------------===//

namespace {
const char *QueueSpec = R"(
  resource PCQueue {
    state: pair<seq<int>, int>;
    alpha(v) = v;
    inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
    scope size 2;
    unique action Prod(a: int) {
      apply(v, a) = pair(append(fst(v), a), snd(v));
      requires low(a);
    }
    unique action Cons(a: unit) {
      apply(v, a) = pair(fst(v), snd(v) + 1);
      returns(v, a) = at(fst(v), snd(v));
      enabled(v) = snd(v) < len(fst(v));
      history(v) = take(fst(v), snd(v));
    }
  }
)";
} // namespace

TEST(VerifierTest, ProducerConsumerFinalStateLow) {
  expectVerifies(std::string(QueueSpec) + R"(
    procedure main(n: int) returns (out: seq<int>)
      requires low(n)
      ensures low(out)
    {
      share q: PCQueue := pair(seq_empty(), 0);
      par {
        var i: int := 0;
        while (i < n)
          invariant low(i) && uguard(q.Prod, PS) && allpre(q.Prod, PS)
        {
          atomic q { perform q.Prod(i * 10); }
          i := i + 1;
        }
      } and {
        var j: int := 0;
        var x: int := 0;
        while (j < n)
          invariant low(j) && uguard(q.Cons, CS) && allpre(q.Cons, CS)
        {
          atomic q when Cons {
            x := perform q.Cons(unit);
          }
          j := j + 1;
        }
      }
      var fin: pair<seq<int>, int> := pair(seq_empty(), 0);
      fin := unshare q;
      out := take(fst(fin), snd(fin));
    }
  )");
}

TEST(VerifierTest, PipelineRetroactiveLowness) {
  // The paper's pipeline: the middle thread learns only after unsharing
  // the first queue that the data it forwarded was low. Straight-line
  // stages (one item); the retroactive PRE check at unshare(q1) makes the
  // recorded q2-produce argument low via the history link.
  expectVerifies(std::string(QueueSpec) + R"(
    procedure main(v0: int) returns (out: seq<int>)
      requires low(v0)
      ensures low(out)
    {
      var x: int := 0;
      var y: int := 0;
      share q1: PCQueue := pair(seq_empty(), 0);
      share q2: PCQueue := pair(seq_empty(), 0);
      par {
        atomic q1 { perform q1.Prod(v0); }
      } and {
        atomic q1 when Cons { x := perform q1.Cons(unit); }
        atomic q2 { perform q2.Prod(x + 1); }
      } and {
        atomic q2 when Cons { y := perform q2.Cons(unit); }
      }
      var f1: pair<seq<int>, int> := pair(seq_empty(), 0);
      f1 := unshare q1;
      var f2: pair<seq<int>, int> := pair(seq_empty(), 0);
      f2 := unshare q2;
      out := take(fst(f2), snd(f2));
    }
  )");
}

TEST(VerifierTest, PipelineWithoutHistoryRejected) {
  // Without the history clause, the consumed value stays high and the
  // second queue's produce precondition is unprovable.
  expectRejected(R"(
    resource PCQueueNoHist {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      scope size 2;
      unique action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
      }
    }
    procedure main(v0: int) returns (out: int)
      requires low(v0)
      ensures low(out)
    {
      var x: int := 0;
      share q1: PCQueueNoHist := pair(seq_empty(), 0);
      share q2: PCQueueNoHist := pair(seq_empty(), 0);
      par {
        atomic q1 { perform q1.Prod(v0); }
      } and {
        atomic q1 when Cons { x := perform q1.Cons(unit); }
        atomic q2 { perform q2.Prod(x + 1); }
      }
      var f1: pair<seq<int>, int> := pair(seq_empty(), 0);
      f1 := unshare q1;
      var f2: pair<seq<int>, int> := pair(seq_empty(), 0);
      f2 := unshare q2;
      out := 0;
    }
  )",
                 DiagCode::VerifyPreUnprovable);
}
