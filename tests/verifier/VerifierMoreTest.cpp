//===-- tests/verifier/VerifierMoreTest.cpp - More verifier cases ----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Additional verifier coverage: heap reasoning, ghost asserts over guards,
/// sequential resource lifecycles, loop/guard interaction edge cases, and
/// value-dependent action preconditions.
///
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

namespace {

DiagnosticEngine verify(const std::string &Source, bool &Ok) {
  Program P = parseChecked(Source);
  DiagnosticEngine Diags;
  VerifierConfig Cfg;
  Cfg.Validity.MaxStates = 120;
  Cfg.Validity.MaxArgs = 30;
  Cfg.Validity.MaxChecksPerProperty = 30000;
  Cfg.Validity.RandomRounds = 300;
  Verifier V(P, Diags, Cfg);
  Ok = V.verifyAll().Ok;
  return Diags;
}

void expectVerifies(const std::string &Source) {
  bool Ok = false;
  DiagnosticEngine D = verify(Source, Ok);
  EXPECT_TRUE(Ok) << D.str();
}

void expectRejected(const std::string &Source, DiagCode Code) {
  bool Ok = false;
  DiagnosticEngine D = verify(Source, Ok);
  EXPECT_FALSE(Ok) << "expected rejection";
  EXPECT_TRUE(D.hasErrorWithCode(Code))
      << "expected code " << diagCodeName(Code) << ", got:\n"
      << D.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Heap reasoning
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, HeapCellsCarryLowness) {
  expectVerifies(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var p: int := 0;
      var x: int := 0;
      p := alloc(l);
      [p] := l + 1;
      x := [p];
      out := x;
    }
  )");
}

TEST(VerifierMoreTest, HighHeapValueMayNotLeak) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var p: int := 0;
      var x: int := 0;
      p := alloc(h);
      x := [p];
      out := x;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierMoreTest, UnknownLocationRejected) {
  expectRejected(R"(
    procedure main() returns (out: int)
      ensures low(out)
    {
      out := [77];
    }
  )",
                 DiagCode::VerifyHeap);
}

TEST(VerifierMoreTest, HeapWriteUnderLowBranchJoins) {
  expectVerifies(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var p: int := 0;
      p := alloc(0);
      if (l > 0) { [p] := 1; } else { [p] := 2; }
      out := [p];
    }
  )");
}

TEST(VerifierMoreTest, HeapWriteUnderHighBranchTaints) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var p: int := 0;
      p := alloc(0);
      if (h > 0) { [p] := 1; }
      out := [p];
    }
  )",
                 DiagCode::VerifyEntailment);
}

//===----------------------------------------------------------------------===//
// Ghost asserts and guard atoms mid-proof
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, GhostAssertChecksGuardState) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      assert sguard(r.Add, 1/1, empty);
      atomic r { perform r.Add(l); }
      assert sguard(r.Add, 1/1, S) && allpre(r.Add, S) && card(S) == 1;
      out := unshare r;
    }
  )");
}

TEST(VerifierMoreTest, GhostAssertFailureRejected) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      assert low(h);
      out := 0;
    }
  )",
                 DiagCode::VerifyEntailment);
}

//===----------------------------------------------------------------------===//
// Resource lifecycle
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, SequentialReshareOfNewResource) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var a: int := 0;
      share r1: Counter := 0;
      atomic r1 { perform r1.Add(l); }
      a := unshare r1;
      share r2: Counter := a;
      atomic r2 { perform r2.Add(1); }
      out := unshare r2;
    }
  )");
}

TEST(VerifierMoreTest, DoubleUnshareRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      out := unshare r;
      out := unshare r;
    }
  )",
                 DiagCode::VerifyResourceState);
}

TEST(VerifierMoreTest, AtomicAfterUnshareRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      out := unshare r;
      atomic r { perform r.Add(1); }
    }
  )",
                 DiagCode::VerifyResourceState);
}

TEST(VerifierMoreTest, UnshareByNonSharerRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure helper(r: resource<Counter>) returns (x: int)
    {
      x := unshare r;
    }
  )",
                 DiagCode::VerifyResourceState);
}

TEST(VerifierMoreTest, TwoPerformsInOneAtomicRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      atomic r {
        perform r.Add(1);
        perform r.Add(2);
      }
      out := unshare r;
    }
  )",
                 DiagCode::VerifyResourceState);
}

TEST(VerifierMoreTest, PerformUnderIfInsideAtomicRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      atomic r {
        if (l > 0) { perform r.Add(1); }
      }
      out := unshare r;
    }
  )",
                 DiagCode::VerifyResourceState);
}

TEST(VerifierMoreTest, ReadOnlyAtomicIsAllowed) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var snapshot: int := 0;
      share r: Counter := 0;
      atomic r { snapshot := resval(r); }
      atomic r { perform r.Add(l); }
      out := unshare r;
    }
  )");
}

//===----------------------------------------------------------------------===//
// Loops and guards
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, GuardModifiedInLoopWithoutInvariantRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var i: int := 0;
      share r: Counter := 0;
      while (i < n)
        invariant low(i)
      {
        atomic r { perform r.Add(1); }
        i := i + 1;
      }
      out := unshare r;
    }
  )",
                 DiagCode::VerifyGuardMissing);
}

TEST(VerifierMoreTest, NestedLowLoops) {
  expectVerifies(R"(
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var i: int := 0;
      var acc: int := 0;
      while (i < n)
        invariant low(i) && low(acc)
      {
        var j: int := 0;
        while (j < i)
          invariant low(j) && low(acc)
        {
          acc := acc + 1;
          j := j + 1;
        }
        i := i + 1;
      }
      out := acc;
    }
  )");
}

TEST(VerifierMoreTest, HighLoopInsideLowLoop) {
  expectVerifies(R"(
    procedure main(n: int, h: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var i: int := 0;
      var acc: int := 0;
      while (i < n)
        invariant low(i) && low(acc)
      {
        var w: int := 0;
        while (w < h % 5)
          invariant w >= 0
        {
          w := w + 1;
        }
        acc := acc + 2;
        i := i + 1;
      }
      out := acc;
    }
  )");
}

TEST(VerifierMoreTest, LoopInvariantMustHoldOnEntry) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var x: int := h;
      var i: int := 0;
      while (i < 3)
        invariant low(i) && low(x)
      {
        x := 0;
        i := i + 1;
      }
      out := 0;
    }
  )",
                 DiagCode::VerifyEntailment);
}

//===----------------------------------------------------------------------===//
// Value-dependent sensitivity in action preconditions
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, ValueDependentActionArgument) {
  // The pair's flag says whether its payload is public; the abstraction
  // keeps the whole state low only for flagged entries via the action's
  // conditional precondition.
  expectVerifies(R"(
    resource FlaggedList {
      state: seq<pair<bool, int>>;
      alpha(v) = len(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Append(a: pair<bool, int>) {
        apply(v, a) = append(v, a);
        requires low(fst(a)) && fst(a) ==> low(snd(a));
      }
    }
    procedure main(flag: bool, pubVal: int, secVal: int) returns (out: int)
      requires low(flag) && low(pubVal)
      ensures low(out)
    {
      share l: FlaggedList := seq_empty();
      par {
        atomic l { perform l.Append(pair(true, pubVal)); }
      } and {
        atomic l { perform l.Append(pair(false, secVal)); }
      }
      var fin: seq<pair<bool, int>> := seq_empty();
      fin := unshare l;
      out := len(fin);
    }
  )");
}

TEST(VerifierMoreTest, ValueDependentViolationRejected) {
  expectRejected(R"(
    resource FlaggedList {
      state: seq<pair<bool, int>>;
      alpha(v) = len(v);
      scope int -1 .. 1;
      scope size 2;
      shared action Append(a: pair<bool, int>) {
        apply(v, a) = append(v, a);
        requires low(fst(a)) && fst(a) ==> low(snd(a));
      }
    }
    procedure main(secVal: int) returns (out: int)
      ensures low(out)
    {
      share l: FlaggedList := seq_empty();
      atomic l { perform l.Append(pair(true, secVal)); }
      var fin: seq<pair<bool, int>> := seq_empty();
      fin := unshare l;
      out := len(fin);
    }
  )",
                 DiagCode::VerifyPreUnprovable);
}

//===----------------------------------------------------------------------===//
// Par structure
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, ThreeWayParSplitsGuards) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      par {
        atomic r { perform r.Add(l); }
      } and {
        atomic r { perform r.Add(l + 1); }
      } and {
        atomic r { perform r.Add(l + 2); }
      }
      out := unshare r;
    }
  )");
}

TEST(VerifierMoreTest, NestedParInsideBranch) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      par {
        par {
          atomic r { perform r.Add(l); }
        } and {
          atomic r { perform r.Add(1); }
        }
      } and {
        atomic r { perform r.Add(2); }
      }
      out := unshare r;
    }
  )");
}

TEST(VerifierMoreTest, BranchReadsOtherBranchVarRejected) {
  expectRejected(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var a: int := 0;
      var b: int := 0;
      par {
        a := l;
      } and {
        b := a + 1;
      }
      out := b;
    }
  )",
                 DiagCode::VerifyDataRace);
}

//===----------------------------------------------------------------------===//
// Guard cardinality tracking
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, CardinalityInvariantThroughLoop) {
  // The loop invariant ties the number of recorded applications to the
  // loop counter; after the loop the exact count is provable.
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main(n: int) returns (out: int)
      requires low(n) && n >= 0
      ensures low(out)
    {
      var i: int := 0;
      share r: Counter := 0;
      while (i < n)
        invariant low(i) && i >= 0 && i <= n
        invariant sguard(r.Add, 1/1, T) && allpre(r.Add, T) && card(T) == i
      {
        atomic r { perform r.Add(1); }
        i := i + 1;
      }
      assert sguard(r.Add, 1/1, S) && card(S) == n;
      out := unshare r;
    }
  )");
}

TEST(VerifierMoreTest, CardinalityFlowsThroughCallContracts) {
  expectVerifies(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure addTwice(r: resource<Counter>, x: int)
      requires low(x)
      requires sguard(r.Add, 1/2, empty)
      ensures sguard(r.Add, 1/2, S) && allpre(r.Add, S) && card(S) == 2
    {
      atomic r { perform r.Add(x); }
      atomic r { perform r.Add(x + 1); }
    }
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      share r: Counter := 0;
      par {
        call addTwice(r, l);
      } and {
        call addTwice(r, 2 * l);
      }
      assert sguard(r.Add, 1/1, S) && card(S) == 4;
      out := unshare r;
    }
  )");
}

TEST(VerifierMoreTest, WrongCardinalityAssertRejected) {
  expectRejected(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
    }
    procedure main() returns (out: int)
      ensures low(out)
    {
      share r: Counter := 0;
      atomic r { perform r.Add(1); }
      assert sguard(r.Add, 1/1, S) && card(S) == 2;
      out := unshare r;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierMoreTest, UniqueGuardLengthTracking) {
  expectVerifies(R"(
    resource Log {
      state: seq<int>;
      alpha(v) = len(v);
      scope int -1 .. 1;
      scope size 2;
      unique action App(a: int) { apply(v, a) = append(v, a); }
    }
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      share r: Log := seq_empty();
      atomic r { perform r.App(h); }
      atomic r { perform r.App(h * 2); }
      assert uguard(r.App, S) && len(S) == 2;
      var fin: seq<int> := seq_empty();
      fin := unshare r;
      out := len(fin);
    }
  )");
}

//===----------------------------------------------------------------------===//
// Output channel discipline
//===----------------------------------------------------------------------===//

TEST(VerifierMoreTest, OutputOfLowValueVerifies) {
  expectVerifies(R"(
    procedure main(l: int, h: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      output l + 1;
      out := 0;
    }
  )");
}

TEST(VerifierMoreTest, OutputOfHighValueRejected) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      output h;
      out := 0;
    }
  )",
                 DiagCode::VerifyEntailment);
}

TEST(VerifierMoreTest, OutputUnderHighBranchRejected) {
  // Even a constant output leaks through the *presence* of the emission:
  // the observable trace length depends on the secret.
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      if (h > 0) { output 1; }
      out := 0;
    }
  )",
                 DiagCode::VerifyHighBranchEffect);
}

TEST(VerifierMoreTest, OutputUnderHighLoopRejected) {
  expectRejected(R"(
    procedure main(h: int) returns (out: int)
      ensures low(out)
    {
      var w: int := 0;
      while (w < h % 5)
        invariant w >= 0
      {
        output 7;
        w := w + 1;
      }
      out := 0;
    }
  )",
                 DiagCode::VerifyHighBranchEffect);
}

TEST(VerifierMoreTest, OutputUnderLowBranchVerifies) {
  expectVerifies(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      if (l > 0) { output l; }
      out := 0;
    }
  )");
}

TEST(VerifierMoreTest, OutputInsideParRejected) {
  // Trace order across branches is schedule-dependent.
  expectRejected(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var a: int := 0;
      par { output 1; } and { a := l; }
      out := a;
    }
  )",
                 DiagCode::VerifyHighBranchEffect);
}

TEST(VerifierMoreTest, OutputAfterJoinVerifies) {
  expectVerifies(R"(
    procedure main(l: int) returns (out: int)
      requires low(l)
      ensures low(out)
    {
      var a: int := 0;
      var b: int := 0;
      par { a := l; } and { b := 2 * l; }
      output a + b;
      out := 0;
    }
  )");
}
