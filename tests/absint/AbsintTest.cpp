//===-- tests/absint/AbsintTest.cpp - Differencing tier unit tests ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the differencing abstract interpreter (DESIGN §13): the
/// term normalizer, the difference-domain fact store, and the per-spec
/// obligation analysis. The end-to-end wiring into the validity checker is
/// covered by rspec/ValidityTest.cpp; cross-tier agreement by the property
/// suite there.
///
//===----------------------------------------------------------------------===//

#include "absint/Differencing.h"

#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::absint;
using namespace commcsl::test;

namespace {

/// Parses a one-spec program and runs the differencing analysis on it.
SpecAbsResult analyze(const std::string &Source, AbsOptions Opts = {}) {
  static std::vector<std::unique_ptr<Program>> Keep;
  Keep.push_back(std::make_unique<Program>(parseChecked(Source)));
  Program &P = *Keep.back();
  EXPECT_EQ(P.Specs.size(), 1u);
  return analyzeSpec(P.Specs[0], &P, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Normalizer
//===----------------------------------------------------------------------===//

TEST(AbsintNormalizeTest, AddIsFlattenedSortedAndFolded) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *X = F.sym("x"), *Y = F.sym("y");
  // (x + 2) + (y + 3) and 5 + (y + x) must meet in one normal form.
  const ATerm *A =
      F.add2(F.add2(X, F.intConst(2)), F.add2(Y, F.intConst(3)));
  const ATerm *B = F.add2(F.intConst(5), F.add2(Y, X));
  EXPECT_EQ(N.normalize(A), N.normalize(B));
}

TEST(AbsintNormalizeTest, SubtractionCancels) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *X = F.sym("x");
  // x + (-1)*x == 0
  const ATerm *T = F.add2(X, F.mul2(F.intConst(-1), X));
  EXPECT_TRUE(N.normalize(T)->isInt(0));
}

TEST(AbsintNormalizeTest, MultisetAddsCommute) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *M = F.sym("m"), *X = F.sym("x"), *Y = F.sym("y");
  auto MsAdd = [&](const ATerm *B, const ATerm *E) {
    return F.bi(BuiltinKind::MsAdd, {B, E});
  };
  EXPECT_EQ(N.normalize(MsAdd(MsAdd(M, X), Y)),
            N.normalize(MsAdd(MsAdd(M, Y), X)));
}

TEST(AbsintNormalizeTest, SeqToMsHomomorphism) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *S = F.sym("s"), *X = F.sym("x"), *Y = F.sym("y");
  auto App = [&](const ATerm *B, const ATerm *E) {
    return F.bi(BuiltinKind::SeqAppend, {B, E});
  };
  auto ToMs = [&](const ATerm *T) { return F.bi(BuiltinKind::SeqToMs, {T}); };
  EXPECT_EQ(N.normalize(ToMs(App(App(S, X), Y))),
            N.normalize(ToMs(App(App(S, Y), X))));
}

TEST(AbsintNormalizeTest, SeqSumHasNoAppendRule) {
  // sum() saturates concretely, so the normalizer must NOT treat it as a
  // homomorphism — both orders stay stuck (and distinct from plain sums).
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *S = F.sym("s"), *X = F.sym("x");
  const ATerm *T = F.bi(
      BuiltinKind::SeqSum, {F.bi(BuiltinKind::SeqAppend, {S, X})});
  const ATerm *NT = N.normalize(T);
  ASSERT_NE(NT, nullptr);
  EXPECT_EQ(NT, T) << NT->str();
}

TEST(AbsintNormalizeTest, MapPutsReorderUnderDisequality) {
  TermFactory F;
  FactCtx Ctx(F);
  const ATerm *M = F.sym("m"), *K1 = F.sym("k1"), *K2 = F.sym("k2");
  Ctx.addDiseq(K1, K2);
  Normalizer N(F, Ctx);
  auto Put = [&](const ATerm *Mp, const ATerm *K, const ATerm *V) {
    return F.bi(BuiltinKind::MapPut, {Mp, K, V});
  };
  const ATerm *V1 = F.intConst(1), *V2 = F.intConst(2);
  EXPECT_EQ(N.normalize(Put(Put(M, K1, V1), K2, V2)),
            N.normalize(Put(Put(M, K2, V2), K1, V1)));
}

TEST(AbsintNormalizeTest, UndecidedKeyEqualityBecomesBlockedGuard) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *M = F.sym("m"), *K1 = F.sym("k1"), *K2 = F.sym("k2");
  const ATerm *T = F.bi(
      BuiltinKind::MapGet,
      {F.bi(BuiltinKind::MapPut, {M, K1, F.intConst(7)}), K2});
  N.normalize(T);
  ASSERT_FALSE(N.blockedGuards().empty());
  EXPECT_EQ(N.blockedGuards()[0], F.eq(K1, K2));
}

TEST(AbsintNormalizeTest, IntervalFactsDecideKeyOrder) {
  // fst splits with sign information (the DisjointMap pattern): k1 < 0 and
  // k2 >= 0 makes the keys provably distinct.
  TermFactory F;
  FactCtx Ctx(F);
  const ATerm *K1 = F.sym("k1"), *K2 = F.sym("k2");
  ASSERT_TRUE(Ctx.addBool(F.app(AOp::Lt, {K1, F.intConst(0)}), true));
  ASSERT_TRUE(Ctx.addBool(F.app(AOp::Le, {F.intConst(0), K2}), true));
  EXPECT_EQ(Ctx.decideEq(K1, K2), Tri::False);
}

TEST(AbsintNormalizeTest, SortIsAFunctionOfTheElementMultiset) {
  TermFactory F;
  FactCtx Ctx(F);
  Normalizer N(F, Ctx);
  const ATerm *S = F.sym("s"), *X = F.sym("x"), *Y = F.sym("y");
  auto App = [&](const ATerm *B, const ATerm *E) {
    return F.bi(BuiltinKind::SeqAppend, {B, E});
  };
  auto Sort = [&](const ATerm *T) { return F.bi(BuiltinKind::SeqSort, {T}); };
  EXPECT_EQ(N.normalize(Sort(App(App(S, X), Y))),
            N.normalize(Sort(App(App(S, Y), X))));
}

//===----------------------------------------------------------------------===//
// Per-spec analysis
//===----------------------------------------------------------------------===//

TEST(AbsintSpecTest, CounterIsProvedUnbounded) {
  SpecAbsResult R = analyze(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved);
  ASSERT_EQ(R.Actions.size(), 1u);
  ASSERT_NE(R.Actions[0].U, nullptr);
  EXPECT_EQ(R.Actions[0].Pre, ObStatus::Proved);
  ASSERT_EQ(R.Pairs.size(), 1u);
  EXPECT_EQ(R.Pairs[0].Comm, ObStatus::Proved);
}

TEST(AbsintSpecTest, MapKeySetIsProvedUnbounded) {
  SpecAbsResult R = analyze(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved) << "pre=" << obStatusName(R.Actions[0].Pre)
                           << " comm=" << obStatusName(R.Pairs[0].Comm);
}

TEST(AbsintSpecTest, GhostSumPairIsProvedUnbounded) {
  // The debt_sum shape: raw list plus ghost wrap-add sum, alpha = snd.
  SpecAbsResult R = analyze(R"(
    resource DebtList {
      state: pair<seq<pair<int, int>>, int>;
      alpha(v) = snd(v);
      shared action Append(a: pair<int, int>) {
        apply(v, a) = pair(append(fst(v), a), snd(v) + snd(a));
        requires low(snd(a));
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved);
  // alpha = snd(v) is a single component, so the template uses slot 0.
  ASSERT_NE(R.Actions[0].U, nullptr);
  EXPECT_TRUE(mentionsSym(R.Actions[0].U, slotSymName(0)))
      << R.Actions[0].U->str();
}

TEST(AbsintSpecTest, CountMapWithGetOrIsProvedUnbounded) {
  // The count_purchases shape: per-key counters via map_get_or.
  SpecAbsResult R = analyze(R"(
    resource PurchaseCounts {
      state: map<int, int>;
      alpha(v) = v;
      shared action AddCount(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), map_get_or(v, fst(a), 0) + snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved) << "pre=" << obStatusName(R.Actions[0].Pre)
                           << " comm=" << obStatusName(R.Pairs[0].Comm);
  EXPECT_GT(R.Splits, 0u); // needs genuine key-equality case splits
}

TEST(AbsintSpecTest, Figure1AssignIsRefuted) {
  // Fig. 1: plain assignment does not commute modulo identity alpha.
  SpecAbsResult R = analyze(R"(
    resource Cell {
      state: int;
      alpha(v) = v;
      shared action Assign(a: int) {
        apply(v, a) = a;
        requires low(a);
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_FALSE(R.AllProved);
  ASSERT_EQ(R.Pairs.size(), 1u);
  EXPECT_EQ(R.Pairs[0].Comm, ObStatus::Refuted);
  // The A' obligation still holds: low(a) forces equal arguments.
  EXPECT_EQ(R.Actions[0].Pre, ObStatus::Proved);
}

TEST(AbsintSpecTest, HighArgumentWithoutLowPreIsNotLowPreserving) {
  // No `low(a)` precondition: two runs may add different arguments, so
  // alpha equality is not preserved — A' must not be proved.
  SpecAbsResult R = analyze(R"(
    resource FreeAdd {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_NE(R.Actions[0].Pre, ObStatus::Proved);
  // Commutativity itself is fine (wrap-add commutes).
  EXPECT_EQ(R.Pairs[0].Comm, ObStatus::Proved);
}

TEST(AbsintSpecTest, SaturatingSumAlphaStaysInconclusive) {
  // alpha goes through sum(), whose concrete fold saturates: the tier must
  // refuse to prove it (there is no sound append-homomorphism rule).
  SpecAbsResult R = analyze(R"(
    resource SumList {
      state: seq<int>;
      alpha(v) = sum(v);
      shared action Push(a: int) {
        apply(v, a) = append(v, a);
        requires low(a);
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_FALSE(R.AllProved);
  EXPECT_EQ(R.Pairs[0].Comm, ObStatus::Inconclusive);
}

TEST(AbsintSpecTest, MultisetAbstractionIsProvedUnbounded) {
  SpecAbsResult R = analyze(R"(
    resource EventList {
      state: seq<int>;
      alpha(v) = seq_to_mset(v);
      shared action Log(a: int) {
        apply(v, a) = append(v, a);
        requires low(a);
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved);
}

TEST(AbsintSpecTest, MaxMapIsProvedUnbounded) {
  // The max_map shape: keep the per-key maximum.
  SpecAbsResult R = analyze(R"(
    resource MaxMap {
      state: map<int, int>;
      alpha(v) = v;
      shared action PutMax(a: pair<int, int>) {
        apply(v, a) =
          map_put(v, fst(a), max(map_get_or(v, fst(a), snd(a)), snd(a)));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.AllProved) << "pre=" << obStatusName(R.Actions[0].Pre)
                           << " comm=" << obStatusName(R.Pairs[0].Comm);
}

TEST(AbsintSpecTest, UniqueSelfPairsAreSkipped) {
  SpecAbsResult R = analyze(R"(
    resource Once {
      state: int;
      alpha(v) = v;
      unique action Set(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )");
  ASSERT_TRUE(R.Applicable);
  EXPECT_TRUE(R.Pairs.empty());
  EXPECT_TRUE(R.AllProved);
}

TEST(AbsintSpecTest, AnalysisIsDeterministic) {
  const char *Source = R"(
    resource PurchaseCounts {
      state: map<int, int>;
      alpha(v) = v;
      shared action AddCount(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), map_get_or(v, fst(a), 0) + snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )";
  SpecAbsResult A = analyze(Source);
  SpecAbsResult B = analyze(Source);
  ASSERT_EQ(A.Actions.size(), B.Actions.size());
  ASSERT_NE(A.Actions[0].U, nullptr);
  ASSERT_NE(B.Actions[0].U, nullptr);
  // Distinct factories, identical structure.
  EXPECT_EQ(A.Actions[0].U->str(), B.Actions[0].U->str());
  EXPECT_EQ(A.Splits, B.Splits);
  EXPECT_EQ(A.RewriteSteps, B.RewriteSteps);
}

TEST(AbsintSpecTest, ReplayAcceptsRecordedTreesAndRejectsTruncation) {
  static std::vector<std::unique_ptr<Program>> Keep;
  Keep.push_back(std::make_unique<Program>(parseChecked(R"(
    resource PurchaseCounts {
      state: map<int, int>;
      alpha(v) = v;
      shared action AddCount(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), map_get_or(v, fst(a), 0) + snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )")));
  Program &P = *Keep.back();
  SpecAbsResult R = analyzeSpec(P.Specs[0], &P);
  ASSERT_TRUE(R.AllProved);
  ASSERT_EQ(R.Pairs.size(), 1u);
  ASSERT_NE(R.Pairs[0].Tree, nullptr);
  ASSERT_NE(R.Pairs[0].Tree->Guard, nullptr); // the proof needed splits

  TermFactory &F = *R.Factory;
  const ActionDecl &Act = P.Specs[0].Actions[0];
  const ATerm *L = nullptr, *Rt = nullptr;
  ASSERT_TRUE(buildCommObligation(F, P.Specs[0], &P, Act, Act, F.sym(argSymA()),
                                  F.sym(argSymB()), L, Rt));
  FactCtx Ctx(F);
  addUnaryPreFacts(Ctx, F, &P, Act, F.sym(argSymA()));
  addUnaryPreFacts(Ctx, F, &P, Act, F.sym(argSymB()));
  EXPECT_TRUE(replaySplitTree(F, L, Rt, Ctx, R.Pairs[0].Tree.get(), {}));

  // A truncated tree (bare leaf where splits are needed) must not check.
  SplitNode Leaf;
  EXPECT_FALSE(replaySplitTree(F, L, Rt, Ctx, &Leaf, {}));
}

TEST(AbsintSpecTest, InjectUnsoundCorruptsTemplateButNotVerdicts) {
  AbsOptions Opts;
  Opts.InjectUnsound = true;
  SpecAbsResult R = analyze(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
  )",
                            Opts);
  ASSERT_TRUE(R.AllProved); // proof ran against the real template
  ASSERT_NE(R.Actions[0].U, nullptr);
  EXPECT_TRUE(R.Actions[0].U->isInt(42)); // ...but the record is corrupted
}
