//===-- tests/parser/ParserTest.cpp - Lexer/parser unit tests --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "tests/common/TestUtil.h"

#include <gtest/gtest.h>

using namespace commcsl;
using namespace commcsl::test;

TEST(LexerTest, BasicTokens) {
  DiagnosticEngine Diags;
  Lexer Lex("x := y + 41; // comment\n/* block */ while", Diags);
  std::vector<Token> Toks = Lex.lexAll();
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 8u); // x := y + 41 ; while EOF
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Kind, TokenKind::Assign);
  EXPECT_EQ(Toks[4].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[4].IntVal, 41);
  EXPECT_EQ(Toks[6].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Toks[7].Kind, TokenKind::Eof);
}

TEST(LexerTest, OperatorDisambiguation) {
  DiagnosticEngine Diags;
  Lexer Lex("== ==> != <= >= && || : := . ..", Diags);
  std::vector<Token> Toks = Lex.lexAll();
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Kind, TokenKind::EqEq);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Arrow);
  EXPECT_EQ(Toks[2].Kind, TokenKind::NotEq);
  EXPECT_EQ(Toks[3].Kind, TokenKind::LessEq);
  EXPECT_EQ(Toks[4].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(Toks[5].Kind, TokenKind::AmpAmp);
  EXPECT_EQ(Toks[6].Kind, TokenKind::PipePipe);
  EXPECT_EQ(Toks[7].Kind, TokenKind::Colon);
  EXPECT_EQ(Toks[8].Kind, TokenKind::Assign);
  EXPECT_EQ(Toks[9].Kind, TokenKind::Dot);
  EXPECT_EQ(Toks[10].Kind, TokenKind::DotDot);
}

TEST(LexerTest, SourceLocations) {
  DiagnosticEngine Diags;
  Lexer Lex("a\n  b", Diags);
  std::vector<Token> Toks = Lex.lexAll();
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Column, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Column, 3u);
}

TEST(LexerTest, ReportsUnknownCharacter) {
  DiagnosticEngine Diags;
  Lexer Lex("a # b", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrorWithCode(DiagCode::LexError));
}

TEST(ParserTest, MinimalProcedure) {
  Program P = parseChecked("procedure main() { skip; }");
  ASSERT_EQ(P.Procs.size(), 1u);
  EXPECT_EQ(P.Procs[0].Name, "main");
  EXPECT_EQ(P.Procs[0].Body->Kind, CmdKind::Block);
}

TEST(ParserTest, ProcedureWithContracts) {
  Program P = parseChecked(R"(
    procedure add(x: int, y: int) returns (r: int)
      requires low(x) && low(y) && x >= 0
      ensures low(r)
    {
      r := x + y;
    }
  )");
  ASSERT_EQ(P.Procs.size(), 1u);
  const ProcDecl &Proc = P.Procs[0];
  ASSERT_EQ(Proc.Requires.size(), 3u);
  EXPECT_EQ(Proc.Requires[0].AtomKind, ContractAtom::Kind::Low);
  EXPECT_EQ(Proc.Requires[2].AtomKind, ContractAtom::Kind::Bool);
  ASSERT_EQ(Proc.Ensures.size(), 1u);
}

TEST(ParserTest, ResourceSpec) {
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      scope int -3 .. 3;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure main() { skip; }
  )");
  ASSERT_EQ(P.Specs.size(), 1u);
  const ResourceSpecDecl &S = P.Specs[0];
  EXPECT_EQ(S.Name, "Counter");
  EXPECT_EQ(S.ScopeIntLo, -3);
  EXPECT_EQ(S.ScopeIntHi, 3);
  ASSERT_EQ(S.Actions.size(), 1u);
  EXPECT_FALSE(S.Actions[0].Unique);
  EXPECT_EQ(S.Actions[0].Name, "Add");
  ASSERT_EQ(S.Actions[0].Pre.size(), 1u);
}

TEST(ParserTest, FullStatementCoverage) {
  Program P = parseChecked(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) {
        apply(v, a) = v + a;
        requires low(a);
      }
    }
    procedure helper(r: resource<Counter>, n: int)
      requires low(n) && sguard(r.Add, 1/2, empty)
      ensures sguard(r.Add, 1/2, S) && allpre(r.Add, S)
    {
      var i: int := 0;
      while (i < n)
        invariant low(i) && sguard(r.Add, 1/2, T) && allpre(r.Add, T);
      {
        atomic r {
          perform r.Add(1);
        }
        i := i + 1;
      }
    }
    procedure main(n: int) returns (out: int)
      requires low(n)
      ensures low(out)
    {
      var c: int := 0;
      share r: Counter := 0;
      par {
        call helper(r, n);
      } and {
        call helper(r, n);
      }
      c := unshare r;
      out := c;
    }
  )");
  ASSERT_EQ(P.Procs.size(), 2u);
}

TEST(ParserTest, HeapCommands) {
  Program P = parseChecked(R"(
    procedure main() {
      var p: int := 0;
      var x: int := 0;
      p := alloc(5);
      x := [p];
      [p] := x + 1;
    }
  )");
  ASSERT_EQ(P.Procs.size(), 1u);
}

TEST(ParserTest, ExpressionPrecedence) {
  Program P = parseChecked(R"(
    procedure main() returns (b: bool) {
      b := 1 + 2 * 3 == 7 && !(4 < 3) || false;
    }
  )");
  // 1 + 2*3 == 7  →  true; && binds tighter than ||.
  const CommandRef &Body = P.Procs[0].Body;
  const CommandRef &Assign = Body->Children[0];
  EXPECT_EQ(Assign->Exprs[0]->BOp, BinaryOp::Or);
}

TEST(ParserTest, EmptyCollectionConstructorsNeedContext) {
  parseChecked(R"(
    procedure main() {
      var m: map<int, int> := map_empty();
      var s: seq<int> := seq_empty();
      var t: set<int> := set_empty();
      var u: mset<int> := mset_empty();
    }
  )");
}

TEST(ParserTest, PrintedProgramReparses) {
  Program P = parseChecked(R"(
    function double(x: int): int = x * 2;
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
    procedure main(h: int) returns (out: int)
      requires low(h)
      ensures low(out)
    {
      out := double(h);
    }
  )");
  std::string Printed = P.str();
  DiagnosticEngine Diags2;
  Program P2 = Parser::parse(Printed, Diags2);
  EXPECT_FALSE(Diags2.hasErrors()) << Printed << "\n" << Diags2.str();
  EXPECT_EQ(P2.Funcs.size(), 1u);
  EXPECT_EQ(P2.Specs.size(), 1u);
  EXPECT_EQ(P2.Procs.size(), 1u);
}

TEST(ParserTest, ProducerConsumerSpecSyntax) {
  Program P = parseChecked(R"(
    resource PCQueue {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
      unique action Prod(a: int) {
        apply(v, a) = pair(append(fst(v), a), snd(v));
        requires low(a);
      }
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
        history(v) = take(fst(v), snd(v));
      }
    }
    procedure main() { skip; }
  )");
  ASSERT_EQ(P.Specs.size(), 1u);
  const ResourceSpecDecl &S = P.Specs[0];
  EXPECT_TRUE(S.Inv != nullptr);
  ASSERT_EQ(S.Actions.size(), 2u);
  EXPECT_TRUE(S.Actions[1].Enabled != nullptr);
  EXPECT_TRUE(S.Actions[1].History != nullptr);
  EXPECT_TRUE(S.Actions[1].Returns != nullptr);
}

//===----------------------------------------------------------------------===//
// Negative tests: each pins down a diagnostic code.
//===----------------------------------------------------------------------===//

TEST(ParserTest, RejectsUseOfUndeclaredVariable) {
  DiagnosticEngine D = parseExpectError("procedure main() { x := 1; }");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::UnknownName));
}

TEST(ParserTest, RejectsTypeMismatch) {
  DiagnosticEngine D = parseExpectError(
      "procedure main() { var x: int := true; }");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(ParserTest, RejectsShadowing) {
  DiagnosticEngine D = parseExpectError(
      "procedure main(x: int) { var x: int := 0; }");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::DuplicateName));
}

TEST(ParserTest, RejectsPerformOutsideAtomic) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := 0;
      perform r.Add(1);
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(ParserTest, RejectsUnknownAction) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r: Counter := 0;
      atomic r { perform r.Sub(1); }
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::UnknownName));
}

TEST(ParserTest, RejectsGuardKindMismatch) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure helper(r: resource<Counter>)
      requires uguard(r.Add, empty)
    { skip; }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(ParserTest, RejectsRecursiveFunction) {
  DiagnosticEngine D = parseExpectError(
      "function f(x: int): int = f(x);");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}

TEST(ParserTest, RejectsAllpreWithUnboundVar) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure helper(r: resource<Counter>)
      ensures allpre(r.Add, S)
    { skip; }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::UnknownName));
}

TEST(ParserTest, RejectsAssignmentToParameter) {
  // Parameters are immutable so that contracts are two-state free.
  DiagnosticEngine Diags;
  Program Prog = Parser::parse(
      "procedure main(x: int) { x := 1; }", Diags);
  // Note: assignment to parameters is diagnosed by the verifier, not the
  // type checker, so this only checks the program parses.
  EXPECT_FALSE(Diags.hasErrors());
  (void)Prog;
}

TEST(ParserTest, ParseErrorRecovery) {
  DiagnosticEngine Diags;
  Program Prog = Parser::parse(R"(
    procedure broken() { var x int := 1; }
    procedure fine() { skip; }
  )",
                               Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The second procedure still parses.
  EXPECT_TRUE(Prog.findProc("fine") != nullptr);
}

TEST(ParserTest, OutputStatementParsesAndRoundTrips) {
  Program P = parseChecked(R"(
    procedure main(l: int)
      requires low(l)
    {
      output l + 1;
      output pair(l, true);
    }
  )");
  ASSERT_EQ(P.Procs[0].Body->Children.size(), 2u);
  EXPECT_EQ(P.Procs[0].Body->Children[0]->Kind, CmdKind::Output);
  // Round-trip through the printer.
  DiagnosticEngine D2;
  Program P2 = Parser::parse(P.str(), D2);
  EXPECT_FALSE(D2.hasErrors()) << P.str() << "\n" << D2.str();
  EXPECT_EQ(P.str(), P2.str());
}

TEST(ParserTest, AtomicWhenRoundTrips) {
  Program P = parseChecked(R"(
    resource Q {
      state: pair<seq<int>, int>;
      alpha(v) = v;
      unique action Cons(a: unit) {
        apply(v, a) = pair(fst(v), snd(v) + 1);
        returns(v, a) = at(fst(v), snd(v));
        enabled(v) = snd(v) < len(fst(v));
        history(v) = take(fst(v), snd(v));
      }
    }
    procedure main() returns (x: int) {
      share q: Q := pair(seq_empty(), 0);
      atomic q when Cons {
        x := perform q.Cons(unit);
      }
    }
  )");
  DiagnosticEngine D2;
  Program P2 = Parser::parse(P.str(), D2);
  EXPECT_FALSE(D2.hasErrors()) << P.str() << "\n" << D2.str();
  EXPECT_EQ(P.str(), P2.str());
}

TEST(ParserTest, ResourceHandleReassignmentRejected) {
  DiagnosticEngine D = parseExpectError(R"(
    resource Counter {
      state: int;
      alpha(v) = v;
      shared action Add(a: int) { apply(v, a) = v + a; }
    }
    procedure main() {
      share r1: Counter := 0;
      share r2: Counter := 0;
      r1 := r2;
    }
  )");
  EXPECT_TRUE(D.hasErrorWithCode(DiagCode::TypeError));
}
