file(REMOVE_RECURSE
  "CMakeFiles/lattice_demo.dir/lattice_demo.cpp.o"
  "CMakeFiles/lattice_demo.dir/lattice_demo.cpp.o.d"
  "lattice_demo"
  "lattice_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
