# Empty compiler generated dependencies file for lattice_demo.
# This may be replaced when dependencies are built.
