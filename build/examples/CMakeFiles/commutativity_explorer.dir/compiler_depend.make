# Empty compiler generated dependencies file for commutativity_explorer.
# This may be replaced when dependencies are built.
