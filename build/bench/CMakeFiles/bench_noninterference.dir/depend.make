# Empty dependencies file for bench_noninterference.
# This may be replaced when dependencies are built.
