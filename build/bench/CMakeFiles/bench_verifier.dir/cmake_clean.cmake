file(REMOVE_RECURSE
  "CMakeFiles/bench_verifier.dir/bench_verifier.cpp.o"
  "CMakeFiles/bench_verifier.dir/bench_verifier.cpp.o.d"
  "bench_verifier"
  "bench_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
