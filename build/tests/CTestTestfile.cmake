# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;17;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_value "/root/repo/build/tests/test_value")
set_tests_properties(test_value PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;21;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lang "/root/repo/build/tests/test_lang")
set_tests_properties(test_lang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;28;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parser "/root/repo/build/tests/test_parser")
set_tests_properties(test_parser PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;34;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sem "/root/repo/build/tests/test_sem")
set_tests_properties(test_sem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;38;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_solver "/root/repo/build/tests/test_solver")
set_tests_properties(test_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;43;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_logic "/root/repo/build/tests/test_logic")
set_tests_properties(test_logic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;48;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hyper "/root/repo/build/tests/test_hyper")
set_tests_properties(test_hyper PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;52;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_verifier "/root/repo/build/tests/test_verifier")
set_tests_properties(test_verifier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;56;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rspec "/root/repo/build/tests/test_rspec")
set_tests_properties(test_rspec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;61;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_driver "/root/repo/build/tests/test_driver")
set_tests_properties(test_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;66;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;70;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fuzz "/root/repo/build/tests/test_fuzz")
set_tests_properties(test_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;74;commcsl_test;/root/repo/tests/CMakeLists.txt;0;")
