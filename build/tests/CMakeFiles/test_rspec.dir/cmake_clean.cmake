file(REMOVE_RECURSE
  "CMakeFiles/test_rspec.dir/rspec/SpecLibraryTest.cpp.o"
  "CMakeFiles/test_rspec.dir/rspec/SpecLibraryTest.cpp.o.d"
  "CMakeFiles/test_rspec.dir/rspec/ValidityTest.cpp.o"
  "CMakeFiles/test_rspec.dir/rspec/ValidityTest.cpp.o.d"
  "test_rspec"
  "test_rspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
