# Empty dependencies file for test_rspec.
# This may be replaced when dependencies are built.
