file(REMOVE_RECURSE
  "CMakeFiles/test_hyper.dir/hyper/HyperTest.cpp.o"
  "CMakeFiles/test_hyper.dir/hyper/HyperTest.cpp.o.d"
  "test_hyper"
  "test_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
