file(REMOVE_RECURSE
  "CMakeFiles/test_sem.dir/sem/InterpTest.cpp.o"
  "CMakeFiles/test_sem.dir/sem/InterpTest.cpp.o.d"
  "CMakeFiles/test_sem.dir/sem/SchedulerTest.cpp.o"
  "CMakeFiles/test_sem.dir/sem/SchedulerTest.cpp.o.d"
  "test_sem"
  "test_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
