file(REMOVE_RECURSE
  "CMakeFiles/test_value.dir/value/DomainTest.cpp.o"
  "CMakeFiles/test_value.dir/value/DomainTest.cpp.o.d"
  "CMakeFiles/test_value.dir/value/ValueOpsTest.cpp.o"
  "CMakeFiles/test_value.dir/value/ValueOpsTest.cpp.o.d"
  "CMakeFiles/test_value.dir/value/ValuePropertyTest.cpp.o"
  "CMakeFiles/test_value.dir/value/ValuePropertyTest.cpp.o.d"
  "CMakeFiles/test_value.dir/value/ValueTest.cpp.o"
  "CMakeFiles/test_value.dir/value/ValueTest.cpp.o.d"
  "test_value"
  "test_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
