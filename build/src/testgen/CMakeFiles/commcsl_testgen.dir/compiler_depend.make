# Empty compiler generated dependencies file for commcsl_testgen.
# This may be replaced when dependencies are built.
