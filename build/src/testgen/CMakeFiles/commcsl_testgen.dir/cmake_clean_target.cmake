file(REMOVE_RECURSE
  "libcommcsl_testgen.a"
)
