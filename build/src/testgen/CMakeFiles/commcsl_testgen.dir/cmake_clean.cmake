file(REMOVE_RECURSE
  "CMakeFiles/commcsl_testgen.dir/ProgramGen.cpp.o"
  "CMakeFiles/commcsl_testgen.dir/ProgramGen.cpp.o.d"
  "libcommcsl_testgen.a"
  "libcommcsl_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
