file(REMOVE_RECURSE
  "CMakeFiles/commcsl_product.dir/Product.cpp.o"
  "CMakeFiles/commcsl_product.dir/Product.cpp.o.d"
  "libcommcsl_product.a"
  "libcommcsl_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
