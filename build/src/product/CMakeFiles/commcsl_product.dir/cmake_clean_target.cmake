file(REMOVE_RECURSE
  "libcommcsl_product.a"
)
