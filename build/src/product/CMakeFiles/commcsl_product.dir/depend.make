# Empty dependencies file for commcsl_product.
# This may be replaced when dependencies are built.
