file(REMOVE_RECURSE
  "CMakeFiles/commcsl_sem.dir/Interp.cpp.o"
  "CMakeFiles/commcsl_sem.dir/Interp.cpp.o.d"
  "libcommcsl_sem.a"
  "libcommcsl_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
