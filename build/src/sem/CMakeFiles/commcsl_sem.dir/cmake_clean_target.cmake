file(REMOVE_RECURSE
  "libcommcsl_sem.a"
)
