# Empty dependencies file for commcsl_sem.
# This may be replaced when dependencies are built.
