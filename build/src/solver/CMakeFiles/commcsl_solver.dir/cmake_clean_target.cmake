file(REMOVE_RECURSE
  "libcommcsl_solver.a"
)
