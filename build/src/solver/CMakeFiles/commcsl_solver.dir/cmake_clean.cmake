file(REMOVE_RECURSE
  "CMakeFiles/commcsl_solver.dir/Solver.cpp.o"
  "CMakeFiles/commcsl_solver.dir/Solver.cpp.o.d"
  "CMakeFiles/commcsl_solver.dir/SymEval.cpp.o"
  "CMakeFiles/commcsl_solver.dir/SymEval.cpp.o.d"
  "CMakeFiles/commcsl_solver.dir/Term.cpp.o"
  "CMakeFiles/commcsl_solver.dir/Term.cpp.o.d"
  "libcommcsl_solver.a"
  "libcommcsl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
