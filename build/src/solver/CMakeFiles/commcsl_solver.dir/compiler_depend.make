# Empty compiler generated dependencies file for commcsl_solver.
# This may be replaced when dependencies are built.
