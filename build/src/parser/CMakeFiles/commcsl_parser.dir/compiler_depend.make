# Empty compiler generated dependencies file for commcsl_parser.
# This may be replaced when dependencies are built.
