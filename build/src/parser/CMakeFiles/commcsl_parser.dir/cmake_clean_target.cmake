file(REMOVE_RECURSE
  "libcommcsl_parser.a"
)
