file(REMOVE_RECURSE
  "CMakeFiles/commcsl_parser.dir/Lexer.cpp.o"
  "CMakeFiles/commcsl_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/commcsl_parser.dir/Parser.cpp.o"
  "CMakeFiles/commcsl_parser.dir/Parser.cpp.o.d"
  "libcommcsl_parser.a"
  "libcommcsl_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
