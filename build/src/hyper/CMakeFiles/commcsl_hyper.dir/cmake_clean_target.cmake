file(REMOVE_RECURSE
  "libcommcsl_hyper.a"
)
