# Empty dependencies file for commcsl_hyper.
# This may be replaced when dependencies are built.
