file(REMOVE_RECURSE
  "CMakeFiles/commcsl_hyper.dir/NonInterference.cpp.o"
  "CMakeFiles/commcsl_hyper.dir/NonInterference.cpp.o.d"
  "libcommcsl_hyper.a"
  "libcommcsl_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
