file(REMOVE_RECURSE
  "libcommcsl_lang.a"
)
