
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/Command.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/Command.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/Command.cpp.o.d"
  "/root/repo/src/lang/Expr.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/Expr.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/Expr.cpp.o.d"
  "/root/repo/src/lang/ExprEval.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/ExprEval.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/ExprEval.cpp.o.d"
  "/root/repo/src/lang/Program.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/Program.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/Program.cpp.o.d"
  "/root/repo/src/lang/Type.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/Type.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/Type.cpp.o.d"
  "/root/repo/src/lang/TypeChecker.cpp" "src/lang/CMakeFiles/commcsl_lang.dir/TypeChecker.cpp.o" "gcc" "src/lang/CMakeFiles/commcsl_lang.dir/TypeChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/commcsl_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/commcsl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
