# Empty compiler generated dependencies file for commcsl_lang.
# This may be replaced when dependencies are built.
