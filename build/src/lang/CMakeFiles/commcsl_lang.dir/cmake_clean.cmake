file(REMOVE_RECURSE
  "CMakeFiles/commcsl_lang.dir/Command.cpp.o"
  "CMakeFiles/commcsl_lang.dir/Command.cpp.o.d"
  "CMakeFiles/commcsl_lang.dir/Expr.cpp.o"
  "CMakeFiles/commcsl_lang.dir/Expr.cpp.o.d"
  "CMakeFiles/commcsl_lang.dir/ExprEval.cpp.o"
  "CMakeFiles/commcsl_lang.dir/ExprEval.cpp.o.d"
  "CMakeFiles/commcsl_lang.dir/Program.cpp.o"
  "CMakeFiles/commcsl_lang.dir/Program.cpp.o.d"
  "CMakeFiles/commcsl_lang.dir/Type.cpp.o"
  "CMakeFiles/commcsl_lang.dir/Type.cpp.o.d"
  "CMakeFiles/commcsl_lang.dir/TypeChecker.cpp.o"
  "CMakeFiles/commcsl_lang.dir/TypeChecker.cpp.o.d"
  "libcommcsl_lang.a"
  "libcommcsl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
