file(REMOVE_RECURSE
  "libcommcsl_support.a"
)
