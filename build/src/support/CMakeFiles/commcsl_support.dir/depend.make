# Empty dependencies file for commcsl_support.
# This may be replaced when dependencies are built.
