file(REMOVE_RECURSE
  "CMakeFiles/commcsl_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/commcsl_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/commcsl_support.dir/StringUtils.cpp.o"
  "CMakeFiles/commcsl_support.dir/StringUtils.cpp.o.d"
  "libcommcsl_support.a"
  "libcommcsl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
