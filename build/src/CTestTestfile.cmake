# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("value")
subdirs("lang")
subdirs("parser")
subdirs("rspec")
subdirs("sem")
subdirs("solver")
subdirs("logic")
subdirs("verifier")
subdirs("product")
subdirs("hyper")
subdirs("hyperviper")
subdirs("testgen")
