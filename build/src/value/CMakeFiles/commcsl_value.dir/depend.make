# Empty dependencies file for commcsl_value.
# This may be replaced when dependencies are built.
