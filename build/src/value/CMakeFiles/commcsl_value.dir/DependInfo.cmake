
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/value/Domain.cpp" "src/value/CMakeFiles/commcsl_value.dir/Domain.cpp.o" "gcc" "src/value/CMakeFiles/commcsl_value.dir/Domain.cpp.o.d"
  "/root/repo/src/value/Value.cpp" "src/value/CMakeFiles/commcsl_value.dir/Value.cpp.o" "gcc" "src/value/CMakeFiles/commcsl_value.dir/Value.cpp.o.d"
  "/root/repo/src/value/ValueOps.cpp" "src/value/CMakeFiles/commcsl_value.dir/ValueOps.cpp.o" "gcc" "src/value/CMakeFiles/commcsl_value.dir/ValueOps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/commcsl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
