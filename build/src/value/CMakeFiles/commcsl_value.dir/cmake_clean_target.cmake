file(REMOVE_RECURSE
  "libcommcsl_value.a"
)
