file(REMOVE_RECURSE
  "CMakeFiles/commcsl_value.dir/Domain.cpp.o"
  "CMakeFiles/commcsl_value.dir/Domain.cpp.o.d"
  "CMakeFiles/commcsl_value.dir/Value.cpp.o"
  "CMakeFiles/commcsl_value.dir/Value.cpp.o.d"
  "CMakeFiles/commcsl_value.dir/ValueOps.cpp.o"
  "CMakeFiles/commcsl_value.dir/ValueOps.cpp.o.d"
  "libcommcsl_value.a"
  "libcommcsl_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
