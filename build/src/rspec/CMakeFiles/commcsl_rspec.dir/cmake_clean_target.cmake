file(REMOVE_RECURSE
  "libcommcsl_rspec.a"
)
