file(REMOVE_RECURSE
  "CMakeFiles/commcsl_rspec.dir/RSpec.cpp.o"
  "CMakeFiles/commcsl_rspec.dir/RSpec.cpp.o.d"
  "CMakeFiles/commcsl_rspec.dir/SpecLibrary.cpp.o"
  "CMakeFiles/commcsl_rspec.dir/SpecLibrary.cpp.o.d"
  "CMakeFiles/commcsl_rspec.dir/Validity.cpp.o"
  "CMakeFiles/commcsl_rspec.dir/Validity.cpp.o.d"
  "libcommcsl_rspec.a"
  "libcommcsl_rspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_rspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
