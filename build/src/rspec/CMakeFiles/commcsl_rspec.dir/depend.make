# Empty dependencies file for commcsl_rspec.
# This may be replaced when dependencies are built.
