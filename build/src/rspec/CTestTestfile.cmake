# CMake generated Testfile for 
# Source directory: /root/repo/src/rspec
# Build directory: /root/repo/build/src/rspec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
