file(REMOVE_RECURSE
  "libcommcsl_logic.a"
)
