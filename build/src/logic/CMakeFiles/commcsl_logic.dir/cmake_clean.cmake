file(REMOVE_RECURSE
  "CMakeFiles/commcsl_logic.dir/Assertion.cpp.o"
  "CMakeFiles/commcsl_logic.dir/Assertion.cpp.o.d"
  "CMakeFiles/commcsl_logic.dir/ExtendedHeap.cpp.o"
  "CMakeFiles/commcsl_logic.dir/ExtendedHeap.cpp.o.d"
  "libcommcsl_logic.a"
  "libcommcsl_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
