# Empty dependencies file for commcsl_logic.
# This may be replaced when dependencies are built.
