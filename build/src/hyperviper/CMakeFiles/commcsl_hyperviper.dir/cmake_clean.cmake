file(REMOVE_RECURSE
  "CMakeFiles/commcsl_hyperviper.dir/Driver.cpp.o"
  "CMakeFiles/commcsl_hyperviper.dir/Driver.cpp.o.d"
  "CMakeFiles/commcsl_hyperviper.dir/Lattice.cpp.o"
  "CMakeFiles/commcsl_hyperviper.dir/Lattice.cpp.o.d"
  "libcommcsl_hyperviper.a"
  "libcommcsl_hyperviper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_hyperviper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
