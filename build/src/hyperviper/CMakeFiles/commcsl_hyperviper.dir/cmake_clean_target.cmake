file(REMOVE_RECURSE
  "libcommcsl_hyperviper.a"
)
