# Empty compiler generated dependencies file for commcsl_hyperviper.
# This may be replaced when dependencies are built.
