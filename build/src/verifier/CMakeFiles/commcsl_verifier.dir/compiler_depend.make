# Empty compiler generated dependencies file for commcsl_verifier.
# This may be replaced when dependencies are built.
