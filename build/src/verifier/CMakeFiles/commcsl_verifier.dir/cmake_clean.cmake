file(REMOVE_RECURSE
  "CMakeFiles/commcsl_verifier.dir/Verifier.cpp.o"
  "CMakeFiles/commcsl_verifier.dir/Verifier.cpp.o.d"
  "libcommcsl_verifier.a"
  "libcommcsl_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commcsl_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
