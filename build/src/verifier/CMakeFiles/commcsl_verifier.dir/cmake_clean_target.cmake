file(REMOVE_RECURSE
  "libcommcsl_verifier.a"
)
