
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/hyperviper/main.cpp" "tools/CMakeFiles/hyperviper.dir/hyperviper/main.cpp.o" "gcc" "tools/CMakeFiles/hyperviper.dir/hyperviper/main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyperviper/CMakeFiles/commcsl_hyperviper.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/commcsl_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/commcsl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/hyper/CMakeFiles/commcsl_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/commcsl_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/rspec/CMakeFiles/commcsl_rspec.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/commcsl_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/commcsl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/commcsl_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/commcsl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
