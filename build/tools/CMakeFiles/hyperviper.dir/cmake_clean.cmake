file(REMOVE_RECURSE
  "CMakeFiles/hyperviper.dir/hyperviper/main.cpp.o"
  "CMakeFiles/hyperviper.dir/hyperviper/main.cpp.o.d"
  "hyperviper"
  "hyperviper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperviper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
