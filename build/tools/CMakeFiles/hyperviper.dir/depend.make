# Empty dependencies file for hyperviper.
# This may be replaced when dependencies are built.
