//===-- fuzz/Shrinker.h - Delta-debugging program shrinker ------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A delta-debugging minimizer for oracle disagreements. Starting from a
/// program the oracle classified as some disagreement class, it applies
/// syntactic reduction passes — statement removal, branch/loop/par
/// flattening, invariant stripping, declaration removal, expression
/// simplification — keeping a candidate only when the oracle still returns
/// the *same* classification. Candidates are produced by re-parsing the
/// current best source, mutating the AST, and pretty-printing it back, so
/// every intermediate witness is a well-formed `.hv` file ready for the
/// regression corpus.
///
/// The process is deterministic (same input, same oracle config, same
/// result) and budgeted by oracle evaluations; passes repeat to a fixpoint
/// or until the budget runs out.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_FUZZ_SHRINKER_H
#define COMMCSL_FUZZ_SHRINKER_H

#include "fuzz/Oracle.h"

#include <cstdint>
#include <string>

namespace commcsl {

/// Budgets for one shrink.
struct ShrinkConfig {
  /// Oracle used to re-check candidates (should match the campaign's, fault
  /// injection included — a synthetic disagreement must be re-checked under
  /// the same fault).
  OracleConfig Oracle;
  /// Hard cap on oracle evaluations across all passes.
  unsigned MaxOracleRuns = 600;
  /// Cap on full fixpoint rounds (each round sweeps every pass once).
  unsigned MaxRounds = 8;
};

/// What one shrink did.
struct ShrinkStats {
  unsigned OracleRuns = 0;  ///< candidate evaluations spent
  unsigned Reductions = 0;  ///< accepted candidates
  unsigned Rounds = 0;      ///< fixpoint rounds completed
  unsigned StatementsBefore = 0;
  unsigned StatementsAfter = 0;
  bool BudgetExhausted = false;
};

/// Result of a shrink: the minimized source still classified as Target.
struct ShrinkResult {
  std::string Source;
  OracleClass Class = OracleClass::Agree; ///< == Target on success
  ShrinkStats Stats;
};

/// Minimizes \p Source while the oracle keeps classifying it as
/// \p Target (with taint verdict \p GenTainted and empirical seed \p Seed,
/// both held fixed). \p Source must already classify as Target; when it
/// does not (or Target is GeneratorInvalid, which is not shrinkable), the
/// input is returned unchanged with Class set to the actual classification.
ShrinkResult shrinkProgram(const std::string &Source, bool GenTainted,
                           OracleClass Target, uint64_t Seed,
                           const ShrinkConfig &Config = ShrinkConfig());

} // namespace commcsl

#endif // COMMCSL_FUZZ_SHRINKER_H
