//===-- fuzz/Campaign.cpp - Fuzzing campaign runner ------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <sstream>

using namespace commcsl;

namespace {

/// Per-seed outcome kept until the deterministic merge.
struct SeedOutcome {
  bool Ran = false;
  OracleResult Result;
  bool GenTainted = false;
  uint64_t Seed = 0;
  unsigned Statements = 0;
  std::string Source;
};

} // namespace

CampaignReport commcsl::runCampaign(const CampaignConfig &Config) {
  CampaignReport Report;
  Report.Config = Config;

  TraceSpan CampaignSpan("fuzz", [&] {
    return "campaign (" + std::to_string(Config.NumSeeds) + " seeds)";
  });
  Stopwatch T0;
  auto OverBudget = [&]() {
    if (Config.TimeBudgetSeconds <= 0)
      return false;
    return T0.seconds() > Config.TimeBudgetSeconds;
  };

  DifferentialOracle Oracle(Config.Oracle);
  std::vector<SeedOutcome> Outcomes(Config.NumSeeds);
  unsigned Jobs = ThreadPool::effectiveJobs(Config.Jobs);

  // Phase 1: generate + evaluate. Each seed's randomness derives from
  // (BaseSeed, index) only, so outcomes are independent of scheduling.
  ThreadPool::shared().parallelForChunks(
      Config.NumSeeds, Jobs, [&](uint64_t Begin, uint64_t End, unsigned) {
        for (uint64_t I = Begin; I < End; ++I) {
          if (OverBudget())
            continue;
          TraceSpan SeedSpan("fuzz",
                             [&] { return "seed " + std::to_string(I); });
          SeedOutcome &Out = Outcomes[I];
          GenConfig GC = Config.Gen;
          GC.Seed = deriveSeed(Config.BaseSeed, I);
          GeneratedProgram GP = generateProgram(GC);
          Out.Ran = true;
          Out.Seed = GC.Seed;
          Out.GenTainted = GP.OutputTainted;
          Out.Statements = GP.Statements;
          Out.Source = GP.Source;
          Out.Result = Oracle.evaluate(GP.Source, GP.OutputTainted, GC.Seed);
        }
      });

  // Deterministic merge in seed order.
  for (unsigned I = 0; I < Config.NumSeeds; ++I) {
    const SeedOutcome &Out = Outcomes[I];
    if (!Out.Ran) {
      ++Report.SeedsSkipped;
      continue;
    }
    ++Report.SeedsRun;
    if (Out.GenTainted)
      ++Report.TaintedSeeds;
    if (Out.Result.Verdicts.Verified)
      ++Report.VerifiedSeeds;
    if (Out.Result.Verdicts.StaticSecure)
      ++Report.StaticSecureSeeds;
    switch (Out.Result.Class) {
    case OracleClass::Agree:
      ++Report.Agree;
      continue;
    case OracleClass::SoundnessViolation:
      ++Report.SoundnessViolations;
      break;
    case OracleClass::AnalysisUnsound:
      ++Report.AnalysisUnsound;
      break;
    case OracleClass::CompletenessGap:
      ++Report.CompletenessGaps;
      break;
    case OracleClass::CertInvalid:
      ++Report.CertInvalids;
      break;
    case OracleClass::Flake:
      ++Report.Flakes;
      break;
    case OracleClass::GeneratorInvalid:
      ++Report.GeneratorInvalids;
      break;
    }
    CampaignFinding F;
    F.SeedIndex = I;
    F.Seed = Out.Seed;
    F.Class = Out.Result.Class;
    F.GenTainted = Out.GenTainted;
    F.Detail = Out.Result.Detail;
    F.StatementsBefore = Out.Statements;
    F.StatementsAfter = Out.Statements;
    F.Source = Out.Source;
    Report.Findings.push_back(std::move(F));
  }

  // Phase 2: minimize the disagreements. Each shrink is deterministic per
  // finding, so parallelizing across findings preserves the report.
  if (Config.ShrinkFindings && !Report.Findings.empty()) {
    ShrinkConfig SC = Config.Shrink;
    SC.Oracle = Config.Oracle;
    ThreadPool::shared().parallelForChunks(
        Report.Findings.size(), Jobs,
        [&](uint64_t Begin, uint64_t End, unsigned) {
          for (uint64_t I = Begin; I < End; ++I) {
            CampaignFinding &F = Report.Findings[I];
            if (F.Class == OracleClass::GeneratorInvalid || OverBudget())
              continue;
            TraceSpan ShrinkSpan("fuzz", [&] {
              return "shrink seed " + std::to_string(F.SeedIndex);
            });
            ShrinkResult SR =
                shrinkProgram(F.Source, F.GenTainted, F.Class, F.Seed, SC);
            if (SR.Class != F.Class)
              continue; // did not reproduce; keep the original
            F.Source = SR.Source;
            F.StatementsBefore = SR.Stats.StatementsBefore;
            F.StatementsAfter = SR.Stats.StatementsAfter;
            F.ShrinkOracleRuns = SR.Stats.OracleRuns;
          }
        });
  }

  // Per-class tallies are deterministic at any job count (absent a time
  // budget); see the determinism contract in Campaign.h.
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("fuzz.seeds_run").add(Report.SeedsRun);
  M.counter("fuzz.seeds_skipped").add(Report.SeedsSkipped);
  M.counter("fuzz.class.agree").add(Report.Agree);
  M.counter("fuzz.class.soundness_violation").add(Report.SoundnessViolations);
  M.counter("fuzz.class.analysis_unsound").add(Report.AnalysisUnsound);
  M.counter("fuzz.class.completeness_gap").add(Report.CompletenessGaps);
  M.counter("fuzz.class.cert_invalid").add(Report.CertInvalids);
  M.counter("fuzz.class.flake").add(Report.Flakes);
  M.counter("fuzz.class.generator_invalid").add(Report.GeneratorInvalids);
  M.counter("fuzz.tainted_seeds").add(Report.TaintedSeeds);
  M.counter("fuzz.verified_seeds").add(Report.VerifiedSeeds);
  M.counter("fuzz.static_secure_seeds").add(Report.StaticSecureSeeds);
  M.gauge("fuzz.campaign_seconds").add(T0.seconds());

  return Report;
}

std::string CampaignReport::json() const {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"fuzz_campaign\": {\n";
  OS << "    \"base_seed\": " << Config.BaseSeed << ",\n";
  OS << "    \"seeds_requested\": " << Config.NumSeeds << ",\n";
  OS << "    \"seeds_run\": " << SeedsRun << ",\n";
  OS << "    \"seeds_skipped\": " << SeedsSkipped << ",\n";
  OS << "    \"inject\": \"" << oracleFaultName(Config.Oracle.Inject)
     << "\",\n";
  OS << "    \"generator\": {\n";
  OS << "      \"target_statements\": " << Config.Gen.TargetStatements
     << ",\n";
  OS << "      \"concurrency\": "
     << (Config.Gen.EnableConcurrency ? "true" : "false") << ",\n";
  OS << "      \"collections\": "
     << (Config.Gen.EnableCollections ? "true" : "false") << ",\n";
  OS << "      \"unique_par\": "
     << (Config.Gen.EnableUniquePar ? "true" : "false") << ",\n";
  OS << "      \"value_dependent\": "
     << (Config.Gen.EnableValueDependent ? "true" : "false") << ",\n";
  OS << "      \"leaky_outputs\": "
     << (Config.Gen.AllowLeakyOutput ? "true" : "false") << "\n";
  OS << "    },\n";
  OS << "    \"counts\": {\n";
  OS << "      \"agree\": " << Agree << ",\n";
  OS << "      \"soundness_violation\": " << SoundnessViolations << ",\n";
  OS << "      \"analysis_unsound\": " << AnalysisUnsound << ",\n";
  OS << "      \"completeness_gap\": " << CompletenessGaps << ",\n";
  OS << "      \"cert_invalid\": " << CertInvalids << ",\n";
  OS << "      \"flake\": " << Flakes << ",\n";
  OS << "      \"generator_invalid\": " << GeneratorInvalids << "\n";
  OS << "    },\n";
  OS << "    \"verdicts\": {\n";
  OS << "      \"tainted_seeds\": " << TaintedSeeds << ",\n";
  OS << "      \"verified_seeds\": " << VerifiedSeeds << ",\n";
  OS << "      \"static_secure_seeds\": " << StaticSecureSeeds << "\n";
  OS << "    },\n";
  OS << "    \"findings\": [";
  for (size_t I = 0; I < Findings.size(); ++I) {
    const CampaignFinding &F = Findings[I];
    OS << (I ? ",\n" : "\n");
    OS << "      {\n";
    OS << "        \"seed_index\": " << F.SeedIndex << ",\n";
    OS << "        \"seed\": " << F.Seed << ",\n";
    OS << "        \"class\": \"" << oracleClassName(F.Class) << "\",\n";
    OS << "        \"gen_tainted\": " << (F.GenTainted ? "true" : "false")
       << ",\n";
    OS << "        \"detail\": \"" << jsonEscape(F.Detail) << "\",\n";
    OS << "        \"statements_before\": " << F.StatementsBefore << ",\n";
    OS << "        \"statements_after\": " << F.StatementsAfter << ",\n";
    OS << "        \"shrink_oracle_runs\": " << F.ShrinkOracleRuns << ",\n";
    OS << "        \"source\": \"" << jsonEscape(F.Source) << "\"\n";
    OS << "      }";
  }
  OS << (Findings.empty() ? "]\n" : "\n    ]\n");
  OS << "  }\n";
  OS << "}\n";
  return OS.str();
}
