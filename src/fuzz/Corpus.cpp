//===-- fuzz/Corpus.cpp - Regression corpus I/O ----------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "support/Numeric.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

using namespace commcsl;

namespace {

/// Comment headers must stay one physical line each.
std::string oneLine(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += (C == '\n' || C == '\r') ? ' ' : C;
  return Out;
}

} // namespace

std::string commcsl::renderCorpusEntry(const CampaignFinding &Finding,
                                       OracleFault Inject) {
  std::ostringstream OS;
  OS << "// fuzz-corpus v1\n";
  OS << "// class: " << oracleClassName(Finding.Class) << "\n";
  OS << "// seed-index: " << Finding.SeedIndex << "\n";
  OS << "// seed: " << Finding.Seed << "\n";
  OS << "// gen-tainted: " << (Finding.GenTainted ? 1 : 0) << "\n";
  OS << "// inject: " << oracleFaultName(Inject) << "\n";
  OS << "// statements: " << Finding.StatementsBefore << " -> "
     << Finding.StatementsAfter << "\n";
  OS << "// detail: " << oneLine(Finding.Detail) << "\n";
  OS << "\n";
  OS << Finding.Source;
  return OS.str();
}

std::optional<CorpusEntry> commcsl::parseCorpusEntry(
    const std::string &Content) {
  std::istringstream In(Content);
  std::string Line;
  if (!std::getline(In, Line) || Line != "// fuzz-corpus v1")
    return std::nullopt;

  CorpusEntry Entry;
  bool HaveClass = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      break; // header/body separator
    if (Line.rfind("// ", 0) != 0)
      return std::nullopt;
    std::string Field = Line.substr(3);
    size_t Colon = Field.find(':');
    if (Colon == std::string::npos)
      return std::nullopt;
    std::string Key = Field.substr(0, Colon);
    std::string Value = Field.substr(Colon + 1);
    while (!Value.empty() && Value.front() == ' ')
      Value.erase(Value.begin());
    if (Key == "class") {
      std::optional<OracleClass> C = oracleClassByName(Value);
      if (!C)
        return std::nullopt;
      Entry.Class = *C;
      HaveClass = true;
    } else if (Key == "seed") {
      // Corpus files are hand-editable; a malformed number is a parse
      // failure, never an exception.
      std::optional<uint64_t> Seed = parseUnsigned64(Value);
      if (!Seed)
        return std::nullopt;
      Entry.Seed = *Seed;
    } else if (Key == "seed-index") {
      std::optional<uint64_t> Index = parseUnsigned64(Value);
      if (!Index || *Index > std::numeric_limits<unsigned>::max())
        return std::nullopt;
      Entry.SeedIndex = static_cast<unsigned>(*Index);
    } else if (Key == "gen-tainted") {
      Entry.GenTainted = Value == "1" || Value == "true";
    } else if (Key == "inject") {
      std::optional<OracleFault> F = oracleFaultByName(Value);
      if (!F)
        return std::nullopt;
      Entry.Inject = *F;
    } else if (Key == "detail") {
      Entry.Detail = Value;
    }
    // Unknown keys (e.g. "statements") are informational; skip.
  }
  if (!HaveClass)
    return std::nullopt;
  std::ostringstream Body;
  Body << In.rdbuf();
  Entry.Source = Body.str();
  if (Entry.Source.empty())
    return std::nullopt;
  return Entry;
}

std::string commcsl::corpusFileName(const CampaignFinding &Finding) {
  std::ostringstream OS;
  OS << oracleClassName(Finding.Class) << "-seed" << Finding.SeedIndex
     << ".hv";
  return OS.str();
}

std::vector<std::string> commcsl::writeCorpusFiles(
    const CampaignReport &Report, const std::string &Dir) {
  std::filesystem::create_directories(Dir);
  std::vector<std::string> Paths;
  for (const CampaignFinding &F : Report.Findings) {
    std::filesystem::path P =
        std::filesystem::path(Dir) / corpusFileName(F);
    std::ofstream Out(P);
    Out << renderCorpusEntry(F, Report.Config.Oracle.Inject);
    Paths.push_back(P.string());
  }
  return Paths;
}
