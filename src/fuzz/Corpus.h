//===-- fuzz/Corpus.h - Regression corpus I/O -------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of campaign findings as replayable corpus files: ordinary
/// `.hv` sources prefixed with a `// fuzz-corpus v1` comment header that
/// records the original classification and enough oracle inputs (taint
/// verdict, seed, injected fault) to replay the exact disagreement. The
/// corpus replay test re-runs each committed entry through the oracle and
/// asserts the recorded class still reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_FUZZ_CORPUS_H
#define COMMCSL_FUZZ_CORPUS_H

#include "fuzz/Campaign.h"

#include <optional>
#include <string>
#include <vector>

namespace commcsl {

/// A parsed corpus file.
struct CorpusEntry {
  OracleClass Class = OracleClass::Agree;
  uint64_t Seed = 0;
  unsigned SeedIndex = 0;
  bool GenTainted = false;
  OracleFault Inject = OracleFault::None;
  std::string Detail;
  std::string Source; ///< the program text after the header
};

/// Renders one finding as corpus-file content. \p Inject records the fault
/// the oracle ran under (a synthetic finding only replays under the same
/// fault).
std::string renderCorpusEntry(const CampaignFinding &Finding,
                              OracleFault Inject);

/// Parses corpus-file content; nullopt when the header is missing or
/// malformed.
std::optional<CorpusEntry> parseCorpusEntry(const std::string &Content);

/// Deterministic file name for a finding: `<class>-seed<index>.hv`.
std::string corpusFileName(const CampaignFinding &Finding);

/// Writes every finding of \p Report into directory \p Dir (created if
/// missing). Returns the paths written.
std::vector<std::string> writeCorpusFiles(const CampaignReport &Report,
                                          const std::string &Dir);

} // namespace commcsl

#endif // COMMCSL_FUZZ_CORPUS_H
