//===-- fuzz/Oracle.h - Differential soundness oracle -----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle of the fuzzing campaign. For one generated (or
/// replayed) program it collects four independent verdicts:
///
///   1. the generator's own taint verdict (secure by construction or
///      deliberately leaky),
///   2. the verifier's accept/reject outcome (Theorem 4.3 claims accepted
///      programs satisfy Def. 2.1),
///   3. an empirical non-interference sweep (low-equivalent inputs under
///      many schedulers must agree on low outputs),
///   4. a scheduler-differential run (one fixed input vector executed under
///      every scheduler family; declared-low returns and the public output
///      channel must not depend on the schedule),
///   5. the static information-flow pre-analysis (analysis/Analysis.h):
///      its `provably-low` verdict claims every declared-low return and
///      output is independent of high inputs and the schedule,
///   6. a certificate replay: the verifier's run emits a checkable proof
///      certificate (cert/Cert.h), and the independent checker must be able
///      to re-derive every step of it. Under an injected accept-all fault
///      the forged certificate is the artifact the checker refutes.
///
/// Disagreements are classified (see OracleClass): a verified program that
/// empirically leaks is a soundness violation — the one class that must
/// never occur; a statically provably-low program for which an empirical
/// phase observes a concrete low-output mismatch is an analysis-unsound
/// finding, equally forbidden; a secure-by-construction program the
/// verifier rejects is a completeness gap; nondeterministic infrastructure
/// failures (step-limit exhaustion on a verified program) are flakes.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_FUZZ_ORACLE_H
#define COMMCSL_FUZZ_ORACLE_H

#include "hyper/NonInterference.h"

#include <cstdint>
#include <optional>
#include <string>

namespace commcsl {

/// Classification of the four-verdict cross-check.
enum class OracleClass : uint8_t {
  /// All verdicts consistent: untainted & verified & empirically secure,
  /// or tainted & rejected.
  Agree,
  /// The verifier accepted a program that is tainted by construction or
  /// that empirically leaks (NI violation or scheduler-differential
  /// mismatch). Falsifies Theorem 4.3; must never happen.
  SoundnessViolation,
  /// The static pre-analysis classified the program provably-low, yet an
  /// empirical phase observed a concrete low-output mismatch (across
  /// low-equivalent inputs or across schedules). Falsifies the analysis's
  /// soundness claim; must never happen. Aborts, deadlocks, and step-limit
  /// exhaustion are *not* flow evidence and never trigger this class.
  /// Checked before SoundnessViolation: when both the verifier and the
  /// analysis accepted a leaky program, the analysis label wins and the
  /// detail records the verifier's verdict.
  AnalysisUnsound,
  /// The verifier rejected a program that is secure by construction.
  CompletenessGap,
  /// The verifier's own proof certificate fails the independent checker:
  /// the claimed verdict is not backed by re-derivable evidence. Catches
  /// verifier/solver bugs the empirical phases can miss (a wrong proof of
  /// a coincidentally-secure program) — and is how an injected accept-all
  /// fault surfaces when the empirical phases observe no concrete leak.
  /// Campaign-fatal, like the soundness classes. Checked after
  /// SoundnessViolation (a concrete leak is the stronger finding), before
  /// Flake.
  CertInvalid,
  /// Infrastructure noise rather than a verdict: a verified program's
  /// empirical run hit the step budget, so the sweep is inconclusive.
  Flake,
  /// The generated source failed to parse or type-check — a generator bug,
  /// reported separately so it cannot masquerade as agreement.
  GeneratorInvalid,
};

/// Stable lower-case names used in reports and corpus headers
/// ("agree", "soundness-violation", ...).
const char *oracleClassName(OracleClass C);
std::optional<OracleClass> oracleClassByName(const std::string &Name);

/// Fault injection for exercising the disagreement paths (shrinker,
/// corpus writer, CI plumbing) on demand. Test/tooling only — never set in
/// a real campaign.
enum class OracleFault : uint8_t {
  None,
  /// Pretend the verifier accepted everything: every empirically leaky or
  /// tainted program becomes a synthetic soundness violation.
  AcceptAll,
  /// Pretend the verifier rejected everything: every secure program
  /// becomes a synthetic completeness gap.
  RejectAll,
};

const char *oracleFaultName(OracleFault F);
std::optional<OracleFault> oracleFaultByName(const std::string &Name);

/// Budgets and knobs for one oracle evaluation.
struct OracleConfig {
  /// Empirical sweep budgets. The oracle forces Jobs=1 on the inner sweep —
  /// campaign parallelism is across seeds, and single-threaded inner phases
  /// keep every verdict independent of the outer job count.
  NIConfig NI;
  /// Random-scheduler count of the scheduler-differential verdict (plus
  /// one round-robin and one burst schedule).
  unsigned SchedDiffSchedules = 3;
  /// Procedure checked by the empirical phases.
  std::string ProcName = "main";
  /// Injected verifier fault (test/tooling only).
  OracleFault Inject = OracleFault::None;

  OracleConfig() {
    NI.Trials = 2;
    NI.HighSamples = 3;
    NI.RandomSchedules = 3;
    NI.Jobs = 1;
    NI.MaxSteps = 200'000;
  }
};

/// The raw verdicts underlying a classification.
struct OracleVerdicts {
  bool GenTainted = false; ///< verdict 1 (an input, echoed for the record)
  bool ParseOk = false;
  bool Verified = false; ///< verdict 2, after fault injection
  /// True when fault injection overrode the verifier's real outcome.
  bool Injected = false;
  bool NIRan = false;
  bool NISecure = false;  ///< verdict 3
  std::string NIKind;     ///< violation kind when !NISecure
  bool SchedRan = false;
  bool SchedStable = false; ///< verdict 4
  std::string SchedKind;    ///< mismatch kind when !SchedStable
  bool StaticRan = false;
  bool StaticSecure = false;  ///< verdict 5: analysis says provably-low
  std::string StaticDetail;   ///< first analysis diagnostic when !StaticSecure
  bool CertRan = false;
  bool CertOk = false;     ///< verdict 6: cert replays on the checker
  std::string CertError;   ///< first failing checker step when !CertOk
  /// A concrete run-time leak was observed (an NI or scheduler-differential
  /// mismatch that is not step-limit noise). The shrinker holds this bit
  /// fixed: a soundness finding with a concrete leak must keep leaking as
  /// it shrinks — class equality alone would let an
  /// accepted-because-injected program shrink to an empty one.
  bool EmpiricalLeak = false;
};

/// One oracle evaluation.
struct OracleResult {
  OracleClass Class = OracleClass::Agree;
  OracleVerdicts Verdicts;
  /// One-line human-readable explanation of the classification.
  std::string Detail;
};

/// Cross-checks the four verdicts for one program. Deterministic: the same
/// (Source, GenTainted, Seed, Config) always yields the same result.
class DifferentialOracle {
public:
  explicit DifferentialOracle(OracleConfig Config = OracleConfig())
      : Config(std::move(Config)) {}

  /// Evaluates one program. \p GenTainted is the generator's taint verdict
  /// (false for hand-written replays believed secure). \p Seed derives the
  /// randomness of the empirical phases.
  OracleResult evaluate(const std::string &Source, bool GenTainted,
                        uint64_t Seed) const;

  const OracleConfig &config() const { return Config; }

private:
  OracleConfig Config;
};

} // namespace commcsl

#endif // COMMCSL_FUZZ_ORACLE_H
