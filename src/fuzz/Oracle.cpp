//===-- fuzz/Oracle.cpp - Differential soundness oracle --------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/Analysis.h"
#include "cert/Check.h"
#include "hyperviper/Driver.h"
#include "lang/ExprEval.h"
#include "sem/Interp.h"
#include "sem/Scheduler.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <sstream>

using namespace commcsl;

const char *commcsl::oracleClassName(OracleClass C) {
  switch (C) {
  case OracleClass::Agree:
    return "agree";
  case OracleClass::SoundnessViolation:
    return "soundness-violation";
  case OracleClass::AnalysisUnsound:
    return "analysis-unsound";
  case OracleClass::CompletenessGap:
    return "completeness-gap";
  case OracleClass::CertInvalid:
    return "cert-invalid";
  case OracleClass::Flake:
    return "flake";
  case OracleClass::GeneratorInvalid:
    return "generator-invalid";
  }
  return "unknown";
}

std::optional<OracleClass> commcsl::oracleClassByName(const std::string &Name) {
  for (OracleClass C :
       {OracleClass::Agree, OracleClass::SoundnessViolation,
        OracleClass::AnalysisUnsound, OracleClass::CompletenessGap,
        OracleClass::CertInvalid, OracleClass::Flake,
        OracleClass::GeneratorInvalid})
    if (Name == oracleClassName(C))
      return C;
  return std::nullopt;
}

const char *commcsl::oracleFaultName(OracleFault F) {
  switch (F) {
  case OracleFault::None:
    return "none";
  case OracleFault::AcceptAll:
    return "accept-all";
  case OracleFault::RejectAll:
    return "reject-all";
  }
  return "unknown";
}

std::optional<OracleFault> commcsl::oracleFaultByName(const std::string &Name) {
  for (OracleFault F :
       {OracleFault::None, OracleFault::AcceptAll, OracleFault::RejectAll})
    if (Name == oracleFaultName(F))
      return F;
  return std::nullopt;
}

namespace {

/// Verdict 4: one fixed input vector run under every scheduler family. A
/// verified program's declared-low returns and public outputs must be
/// schedule-independent; this complements the NI sweep, which compares
/// across *inputs* and can miss a purely schedule-driven channel when all
/// sampled highs behave alike.
struct SchedDiffOutcome {
  bool Ran = false;
  bool Stable = true;
  std::string Kind; ///< "low-output mismatch", "abort", "deadlock",
                    ///< "step-limit" when !Stable
  std::string Detail;
};

SchedDiffOutcome runSchedulerDifferential(const Program &Prog,
                                          const NonInterferenceHarness &H,
                                          const ProcDecl &Proc,
                                          const OracleConfig &Config,
                                          uint64_t Seed) {
  SchedDiffOutcome Out;
  Out.Ran = true;

  std::mt19937_64 Rng(deriveSeed(Seed, 0x5C4Ed1FFull));
  std::vector<ValueRef> Inputs;
  for (const Param &P : Proc.Params)
    Inputs.push_back(P.Ty->toDomain(Config.NI.InputScope)->sample(Rng));

  std::vector<std::unique_ptr<Scheduler>> Scheds;
  Scheds.push_back(std::make_unique<RoundRobinScheduler>());
  for (unsigned R = 0; R < Config.SchedDiffSchedules; ++R)
    Scheds.push_back(std::make_unique<RandomScheduler>(Rng()));
  Scheds.push_back(std::make_unique<BurstScheduler>(Rng(), Config.NI.BurstLen));

  RunConfig RC;
  RC.MaxSteps = Config.NI.MaxSteps;
  Interpreter Interp(Prog, RC);

  // Conditionally-low returns are compared through their in-state level
  // guards, and runs are related only when they agree on what was
  // declassified: a release log is compared as a sorted multiset (the
  // schedule may reorder evaluation, but not the released information),
  // and a run whose log differs from the reference is incomparable rather
  // than a mismatch — mirroring the NI harness's delimited-release rule.
  auto SortedLog = [](std::vector<ValueRef> Log) {
    std::sort(Log.begin(), Log.end(), [](const ValueRef &A,
                                         const ValueRef &B) {
      return Value::compare(A, B) < 0;
    });
    return Log;
  };

  bool HaveRef = false;
  std::vector<ValueRef> RefLow, RefCond, RefReleased;
  std::vector<uint8_t> RefGuards;
  std::string RefSched;
  for (auto &Sched : Scheds) {
    RunResult R = Interp.run(Proc.Name, Inputs, *Sched);
    if (R.St != RunResult::Status::Ok) {
      Out.Stable = false;
      Out.Kind = R.St == RunResult::Status::Deadlock    ? "deadlock"
                 : R.St == RunResult::Status::StepLimit ? "step-limit"
                                                        : "abort";
      Out.Detail = "scheduler " + Sched->name() + ": " + R.AbortReason;
      return Out;
    }
    std::vector<ValueRef> Low;
    for (size_t I : H.lowReturns())
      Low.push_back(R.Returns[I]);
    Low.insert(Low.end(), R.Outputs.begin(), R.Outputs.end());

    EvalEnv Env;
    for (size_t I = 0; I < Proc.Params.size(); ++I)
      Env[Proc.Params[I].Name] = Inputs[I];
    for (size_t I = 0; I < Proc.Returns.size() && I < R.Returns.size(); ++I)
      Env[Proc.Returns[I].Name] = R.Returns[I];
    ExprEvaluator Eval(&Prog);
    std::vector<uint8_t> Guards;
    std::vector<ValueRef> Cond;
    for (const NonInterferenceHarness::LevelSlot &LS : H.levelReturns()) {
      Guards.push_back(Eval.eval(*LS.Guard, Env)->getBool() ? 1 : 0);
      Cond.push_back(R.Returns[LS.Index]);
    }
    std::vector<ValueRef> Released = SortedLog(std::move(R.Declassified));

    if (!HaveRef) {
      HaveRef = true;
      RefLow = std::move(Low);
      RefCond = std::move(Cond);
      RefGuards = std::move(Guards);
      RefReleased = std::move(Released);
      RefSched = Sched->name();
      continue;
    }
    bool SameLog = Released.size() == RefReleased.size();
    for (size_t I = 0; SameLog && I < Released.size(); ++I)
      SameLog = Value::equal(Released[I], RefReleased[I]);
    if (!SameLog)
      continue; // incomparable under delimited release
    bool Equal = Low.size() == RefLow.size();
    for (size_t I = 0; Equal && I < Low.size(); ++I)
      Equal = Value::equal(Low[I], RefLow[I]);
    if (!Equal) {
      Out.Stable = false;
      Out.Kind = "low-output mismatch";
      Out.Detail = "same inputs, schedulers " + RefSched + " vs " +
                   Sched->name() + " disagree on low outputs";
      return Out;
    }
    for (size_t I = 0; I < Guards.size(); ++I) {
      if (Guards[I] != RefGuards[I]) {
        Out.Stable = false;
        Out.Kind = "level guard mismatch";
        Out.Detail = "same inputs, schedulers " + RefSched + " vs " +
                     Sched->name() +
                     " disagree on a conditional level guard";
        return Out;
      }
      if (Guards[I] && !Value::equal(Cond[I], RefCond[I])) {
        Out.Stable = false;
        Out.Kind = "low-output mismatch";
        Out.Detail = "same inputs, schedulers " + RefSched + " vs " +
                     Sched->name() +
                     " disagree on a conditionally-low return";
        return Out;
      }
    }
  }
  return Out;
}

} // namespace

OracleResult DifferentialOracle::evaluate(const std::string &Source,
                                          bool GenTainted,
                                          uint64_t Seed) const {
  OracleResult Res;
  OracleVerdicts &V = Res.Verdicts;
  V.GenTainted = GenTainted;

  DriverOptions DO;
  DO.Jobs = 1; // inner phases sequential; parallelism lives across seeds
  DO.Verifier.EmitCert = true; // verdict 6 replays the certificate
  Driver D(DO);
  DriverResult DR = D.verifySource(Source, "fuzz");
  V.ParseOk = DR.ParseOk;
  if (!DR.ParseOk) {
    Res.Class = OracleClass::GeneratorInvalid;
    std::ostringstream OS;
    OS << "parse/type-check failed";
    for (const Diagnostic &Diag : DR.Diags.diagnostics()) {
      if (Diag.Kind != DiagKind::Error)
        continue;
      OS << ": " << Diag.Message;
      break;
    }
    Res.Detail = OS.str();
    return Res;
  }

  V.Verified = DR.Verified;
  switch (Config.Inject) {
  case OracleFault::None:
    break;
  case OracleFault::AcceptAll:
    V.Injected = !DR.Verified;
    V.Verified = true;
    break;
  case OracleFault::RejectAll:
    V.Injected = DR.Verified;
    V.Verified = false;
    break;
  }

  // Verdict 5: the static pre-analysis. Runs on every well-typed program
  // (accepted or not) so the record is complete; only combines with the
  // empirical phases below. Deterministic, no seed involved.
  {
    ProgramStaticResult A = analyzeProgram(*DR.Prog);
    V.StaticRan = true;
    V.StaticSecure = A.ProvablyLow;
    if (!A.ProvablyLow && !A.Diags.diagnostics().empty())
      V.StaticDetail = A.Diags.diagnostics().front().Message;
  }

  // Verdict 6: certificate replay on the independent checker. Under an
  // injected accept-all fault, the forged run's certificate is the claim
  // on trial — the real verifier's honest certificate would vacuously
  // pass while the injected verdict lies.
  {
    std::string CertText = DR.Cert;
    if (Config.Inject == OracleFault::AcceptAll) {
      DriverOptions FO = DO;
      FO.Verifier.ForgeAcceptAll = true;
      CertText = Driver(FO).verifySource(Source, "fuzz").Cert;
    }
    if (!CertText.empty()) {
      V.CertRan = true;
      std::string PErr;
      std::optional<cert::Certificate> C = cert::parse(CertText, &PErr);
      if (!C) {
        V.CertOk = false;
        V.CertError = "certificate does not parse: " + PErr;
      } else {
        cert::CheckResult CR = cert::checkCertificate(*C, *DR.Prog);
        V.CertOk = CR.Ok;
        V.CertError = CR.Error;
      }
    }
  }

  NonInterferenceHarness Probe(*DR.Prog, Config.ProcName, Config.NI);
  if (!Probe.valid()) {
    Res.Class = OracleClass::GeneratorInvalid;
    Res.Detail = "no procedure named " + Config.ProcName;
    return Res;
  }

  if (!V.Verified) {
    // A certificate that fails to replay outranks agreement and
    // completeness classification: the emitted evidence contradicts the
    // AST-level re-derivation, which is an emitter or checker bug even
    // when the verdict itself is a (correct) rejection.
    if (V.CertRan && !V.CertOk) {
      Res.Class = OracleClass::CertInvalid;
      Res.Detail = "certificate fails the independent checker: " +
                   V.CertError;
      return Res;
    }
    // Rejected programs get no empirical phases: the rejection is either
    // correct (tainted) or a completeness gap, and neither needs a run to
    // diagnose.
    if (GenTainted) {
      Res.Class = OracleClass::Agree;
      Res.Detail = "tainted and rejected";
    } else {
      Res.Class = OracleClass::CompletenessGap;
      std::ostringstream OS;
      OS << "secure by construction but rejected";
      for (const Diagnostic &Diag : DR.Diags.diagnostics()) {
        if (Diag.Kind != DiagKind::Error)
          continue;
        OS << ": " << Diag.Message;
        break;
      }
      Res.Detail = OS.str();
    }
    return Res;
  }

  // Verified: Theorem 4.3 is now on the line. The empirical phases run
  // even for an accepted-tainted program (already a soundness violation by
  // itself) so the finding records whether a concrete leak was observed —
  // the shrinker preserves that evidence.
  NIConfig NC = Config.NI;
  NC.Seed = deriveSeed(Seed, 0x4E495F53ull);
  NC.Jobs = 1;
  NIReport NI = D.runEmpirical(DR, Config.ProcName, NC);
  V.NIRan = true;
  V.NISecure = NI.secure();
  if (NI.Violation)
    V.NIKind = NI.Violation->Kind;

  SchedDiffOutcome SD =
      runSchedulerDifferential(*DR.Prog, Probe, *DR.Prog->findProc(Config.ProcName),
                               Config, Seed);
  V.SchedRan = SD.Ran;
  V.SchedStable = SD.Stable;
  V.SchedKind = SD.Kind;

  bool NILeak = !V.NISecure && V.NIKind != "step-limit";
  bool SchedLeak = !V.SchedStable && V.SchedKind != "step-limit";
  bool StepLimited = (!V.NISecure && V.NIKind == "step-limit") ||
                     (!V.SchedStable && V.SchedKind == "step-limit");
  V.EmpiricalLeak = NILeak || SchedLeak;

  // Verdict 5 cross-check, ahead of the verifier classes: a concrete
  // low-output mismatch on a statically provably-low program falsifies the
  // analysis no matter what the verifier said. Only the mismatch kinds are
  // flow evidence — aborts, deadlocks, and step-limit exhaustion reveal
  // nothing about information flow.
  bool LowMismatch = (!V.NISecure && V.NIKind == "low-output mismatch") ||
                     (!V.SchedStable && V.SchedKind == "low-output mismatch");
  if (V.StaticSecure && LowMismatch) {
    Res.Class = OracleClass::AnalysisUnsound;
    std::ostringstream OS;
    OS << "statically provably-low but ";
    if (!V.NISecure && V.NIKind == "low-output mismatch")
      OS << "NI sweep found " << V.NIKind << ": " << NI.Violation->Detail;
    else
      OS << "scheduler differential found " << V.SchedKind << ": "
         << SD.Detail;
    OS << " (the verifier accepted it too)";
    Res.Detail = OS.str();
    return Res;
  }

  if (GenTainted) {
    Res.Class = OracleClass::SoundnessViolation;
    Res.Detail = V.Injected
                     ? "injected acceptance of a generator-tainted program"
                     : "verifier accepted a generator-tainted program";
    if (NILeak)
      Res.Detail += "; NI sweep found " + V.NIKind;
    else if (SchedLeak)
      Res.Detail += "; scheduler differential found " + V.SchedKind;
    return Res;
  }
  if (NILeak) {
    Res.Class = OracleClass::SoundnessViolation;
    Res.Detail = "verified but NI sweep found " + V.NIKind + ": " +
                 NI.Violation->Detail;
    return Res;
  }
  if (SchedLeak) {
    Res.Class = OracleClass::SoundnessViolation;
    Res.Detail = "verified but scheduler differential found " + V.SchedKind +
                 ": " + SD.Detail;
    return Res;
  }
  // Verdict 6 cross-check, after the concrete-leak classes (a leak is the
  // stronger finding) and before Flake: the claimed acceptance must be
  // backed by a certificate the independent checker re-derives.
  if (V.CertRan && !V.CertOk) {
    Res.Class = OracleClass::CertInvalid;
    Res.Detail =
        "claimed verified but the certificate fails the independent "
        "checker: " +
        V.CertError;
    return Res;
  }
  if (StepLimited) {
    Res.Class = OracleClass::Flake;
    Res.Detail = "empirical phases hit the step budget (inconclusive)";
    return Res;
  }
  Res.Class = OracleClass::Agree;
  Res.Detail = V.Injected ? "injected acceptance of a secure program"
                          : "verified and empirically secure";
  return Res;
}
