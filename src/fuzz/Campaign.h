//===-- fuzz/Campaign.h - Fuzzing campaign runner ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a whole fuzzing campaign: N generator seeds, each pushed through
/// the differential oracle, disagreements optionally minimized by the
/// shrinker, everything folded into a machine-readable JSON report.
///
/// Determinism contract: seeds are independent work items whose randomness
/// derives from (BaseSeed, SeedIndex), results merge in seed order, and the
/// report carries no timing data — so the JSON is byte-identical at every
/// job count. The only exception is an explicit wall-clock budget
/// (TimeBudgetSeconds), which may skip a job-count-dependent set of
/// trailing seeds; skipped seeds are counted in the report.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_FUZZ_CAMPAIGN_H
#define COMMCSL_FUZZ_CAMPAIGN_H

#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"
#include "testgen/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace commcsl {

/// Campaign parameters.
struct CampaignConfig {
  uint64_t BaseSeed = 1;
  unsigned NumSeeds = 100;
  /// Worker threads across seeds. 0 = hardware concurrency. The report is
  /// identical at every setting (absent a time budget).
  unsigned Jobs = 0;
  /// Wall-clock budget; 0 = unlimited. When exceeded, not-yet-started
  /// seeds are skipped (this is the one determinism escape hatch).
  double TimeBudgetSeconds = 0;
  /// Generator shape; the Seed field is overridden per index.
  GenConfig Gen;
  OracleConfig Oracle;
  /// Minimize every disagreement with the shrinker (its oracle config is
  /// forced to match the campaign's).
  bool ShrinkFindings = true;
  ShrinkConfig Shrink;

  CampaignConfig() {
    // Soundness fuzzing wants deliberately leaky programs in the mix: they
    // must all be rejected.
    Gen.AllowLeakyOutput = true;
  }
};

/// One disagreement (any class except Agree).
struct CampaignFinding {
  unsigned SeedIndex = 0;
  uint64_t Seed = 0;
  OracleClass Class = OracleClass::Agree;
  bool GenTainted = false;
  std::string Detail;
  /// Statement counts around shrinking (equal when shrinking is off).
  unsigned StatementsBefore = 0;
  unsigned StatementsAfter = 0;
  unsigned ShrinkOracleRuns = 0;
  /// Minimized source (original when shrinking is off or failed).
  std::string Source;
};

/// Campaign outcome.
struct CampaignReport {
  CampaignConfig Config;
  unsigned SeedsRun = 0;
  unsigned SeedsSkipped = 0;
  // Per-class counts over the seeds that ran.
  unsigned Agree = 0;
  unsigned SoundnessViolations = 0;
  unsigned AnalysisUnsound = 0;
  unsigned CompletenessGaps = 0;
  unsigned CertInvalids = 0;
  unsigned Flakes = 0;
  unsigned GeneratorInvalids = 0;
  // Raw-verdict tallies.
  unsigned TaintedSeeds = 0;
  unsigned VerifiedSeeds = 0;
  unsigned StaticSecureSeeds = 0;
  std::vector<CampaignFinding> Findings; ///< in seed order

  /// Deterministic JSON rendering (no timing, stable key order).
  std::string json() const;

  bool clean() const {
    return SoundnessViolations == 0 && AnalysisUnsound == 0 &&
           CertInvalids == 0 && GeneratorInvalids == 0;
  }
};

/// Runs a campaign. Deterministic per config (see the determinism contract
/// above).
CampaignReport runCampaign(const CampaignConfig &Config);

} // namespace commcsl

#endif // COMMCSL_FUZZ_CAMPAIGN_H
