//===-- fuzz/Shrinker.cpp - Delta-debugging program shrinker ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
//
// Candidate generation works on a fresh parse of the current best source:
// each mutation is addressed by a site ordinal within a deterministic
// preorder traversal, applied to the fresh AST, and pretty-printed back.
// Re-parsing per candidate keeps mutations independent (a rejected
// candidate leaves no trace) and guarantees every accepted witness is
// printable, parseable source.
//
// Sites are swept from the highest ordinal down. A mutation only changes
// the subtree at its site, and subtree sites carry higher ordinals than the
// site itself, so ordinals below the mutated one keep addressing the same
// syntactic positions in the next parse — one linear sweep per pass visits
// every site once even as reductions land.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "parser/Parser.h"

#include <optional>

using namespace commcsl;

namespace {

/// Replaces \p Children[I] with \p Repl: block contents are spliced inline
/// (bare blocks are not statements in the surface syntax), single commands
/// substituted directly.
void splice(std::vector<CommandRef> &Children, size_t I,
            const CommandRef &Repl) {
  if (Repl->Kind == CmdKind::Block) {
    std::vector<CommandRef> Sub = Repl->Children;
    Children.erase(Children.begin() + I);
    Children.insert(Children.begin() + I, Sub.begin(), Sub.end());
  } else {
    Children[I] = Repl;
  }
}

//===----------------------------------------------------------------------===//
// Reduction passes. Each is a preorder traversal with a countdown ordinal:
// the site at K == 0 is mutated; every earlier site decrements K. Calling
// with a huge K counts sites (K never reaches 0); the caller reads off the
// count as the difference.
//===----------------------------------------------------------------------===//

/// Pass: remove one statement — any child of a Block, or one branch of a
/// par with more than two (par requires >= 2 branches).
bool removeStatement(const CommandRef &C, size_t &K) {
  if (!C)
    return false;
  if (C->Kind == CmdKind::Block ||
      (C->Kind == CmdKind::Par && C->Children.size() > 2)) {
    for (size_t I = 0; I < C->Children.size(); ++I) {
      if (K == 0) {
        C->Children.erase(C->Children.begin() + I);
        return true;
      }
      --K;
    }
  }
  for (const CommandRef &Ch : C->Children)
    if (removeStatement(Ch, K))
      return true;
  return false;
}

/// Pass: flatten one compound statement into its parent block — an `if`
/// into its then/else contents, a `while` into its body, a `par` into one
/// branch.
bool flattenCompound(const CommandRef &C, size_t &K) {
  if (!C)
    return false;
  if (C->Kind == CmdKind::Block) {
    for (size_t I = 0; I < C->Children.size(); ++I) {
      const CommandRef &Ch = C->Children[I];
      std::vector<CommandRef> Variants;
      if (Ch->Kind == CmdKind::If) {
        Variants.push_back(Ch->Children[0]);
        if (Ch->Children.size() > 1 && Ch->Children[1])
          Variants.push_back(Ch->Children[1]);
      } else if (Ch->Kind == CmdKind::While) {
        Variants.push_back(Ch->Children[0]);
      } else if (Ch->Kind == CmdKind::Par) {
        for (const CommandRef &Branch : Ch->Children)
          Variants.push_back(Branch);
      }
      for (const CommandRef &V : Variants) {
        if (K == 0) {
          splice(C->Children, I, V);
          return true;
        }
        --K;
      }
    }
  }
  for (const CommandRef &Ch : C->Children)
    if (flattenCompound(Ch, K))
      return true;
  return false;
}

/// Pass: strip the invariant annotations of one loop.
bool stripInvariants(const CommandRef &C, size_t &K) {
  if (!C)
    return false;
  if (C->Kind == CmdKind::While && !C->Invariants.empty()) {
    if (K == 0) {
      C->Invariants.clear();
      return true;
    }
    --K;
  }
  for (const CommandRef &Ch : C->Children)
    if (stripInvariants(Ch, K))
      return true;
  return false;
}

/// Pass: simplify one expression node — hoist a sub-expression over its
/// parent, or collapse a compound node to the literal 0 (type mismatches
/// produce unparseable-for-the-typechecker candidates that the oracle
/// rejects as GeneratorInvalid, so they simply fail to reproduce).
bool simplifyExpr(ExprRef &E, size_t &K) {
  if (!E)
    return false;
  bool Atomic = E->Kind == ExprKind::IntLit || E->Kind == ExprKind::BoolLit ||
                E->Kind == ExprKind::UnitLit || E->Kind == ExprKind::Var;
  if (!Atomic) {
    for (ExprRef &A : E->Args) {
      if (K == 0) {
        E = A;
        return true;
      }
      --K;
    }
    if (K == 0) {
      E = Expr::intLit(0);
      return true;
    }
    --K;
  }
  for (ExprRef &A : E->Args)
    if (simplifyExpr(A, K))
      return true;
  return false;
}

bool simplifyExprInCommand(const CommandRef &C, size_t &K) {
  if (!C)
    return false;
  for (ExprRef &E : C->Exprs)
    if (simplifyExpr(E, K))
      return true;
  for (const CommandRef &Ch : C->Children)
    if (simplifyExprInCommand(Ch, K))
      return true;
  return false;
}

/// Pass: remove one top-level declaration (a pure function, a resource
/// specification, or a procedure other than the entry point). Removals
/// that leave dangling references fail the type check and do not reproduce.
bool removeDecl(Program &P, const std::string &Entry, size_t &K) {
  for (size_t I = 0; I < P.Funcs.size(); ++I) {
    if (K == 0) {
      P.Funcs.erase(P.Funcs.begin() + I);
      return true;
    }
    --K;
  }
  for (size_t I = 0; I < P.Specs.size(); ++I) {
    if (K == 0) {
      P.Specs.erase(P.Specs.begin() + I);
      return true;
    }
    --K;
  }
  for (size_t I = 0; I < P.Procs.size(); ++I) {
    if (P.Procs[I].Name == Entry)
      continue;
    if (K == 0) {
      P.Procs.erase(P.Procs.begin() + I);
      return true;
    }
    --K;
  }
  return false;
}

/// One reduction pass applied at program scope.
using PassFn = bool (*)(Program &P, const std::string &Entry, size_t &K);

bool passRemoveStatement(Program &P, const std::string &, size_t &K) {
  for (ProcDecl &Proc : P.Procs)
    if (removeStatement(Proc.Body, K))
      return true;
  return false;
}

bool passFlattenCompound(Program &P, const std::string &, size_t &K) {
  for (ProcDecl &Proc : P.Procs)
    if (flattenCompound(Proc.Body, K))
      return true;
  return false;
}

bool passStripInvariants(Program &P, const std::string &, size_t &K) {
  for (ProcDecl &Proc : P.Procs)
    if (stripInvariants(Proc.Body, K))
      return true;
  return false;
}

bool passSimplifyExpr(Program &P, const std::string &, size_t &K) {
  for (ProcDecl &Proc : P.Procs)
    if (simplifyExprInCommand(Proc.Body, K))
      return true;
  return false;
}

bool passRemoveDecl(Program &P, const std::string &Entry, size_t &K) {
  return removeDecl(P, Entry, K);
}

size_t countSites(PassFn Pass, Program &P, const std::string &Entry) {
  // A countdown that cannot hit zero turns the apply traversal into a
  // counting traversal.
  size_t K = static_cast<size_t>(-1) / 2;
  Pass(P, Entry, K);
  return static_cast<size_t>(-1) / 2 - K;
}

} // namespace

ShrinkResult commcsl::shrinkProgram(const std::string &Source, bool GenTainted,
                                    OracleClass Target, uint64_t Seed,
                                    const ShrinkConfig &Config) {
  ShrinkResult Res;
  Res.Source = Source;
  Res.Class = Target;

  DifferentialOracle Oracle(Config.Oracle);
  const std::string &Entry = Config.Oracle.ProcName;

  auto ParseSrc = [](const std::string &Src) -> std::optional<Program> {
    DiagnosticEngine Diags;
    Program P = Parser::parse(Src, Diags);
    if (Diags.hasErrors())
      return std::nullopt;
    return P;
  };

  std::optional<Program> Initial = ParseSrc(Source);
  if (!Initial || Target == OracleClass::GeneratorInvalid) {
    Res.Class = OracleClass::GeneratorInvalid;
    return Res;
  }
  Res.Stats.StatementsBefore = countStatements(*Initial);
  Res.Stats.StatementsAfter = Res.Stats.StatementsBefore;

  // Normalize through the printer so candidate comparison is textual.
  std::string Best = Initial->str();
  ++Res.Stats.OracleRuns;
  OracleResult Check = Oracle.evaluate(Best, GenTainted, Seed);
  if (Check.Class != Target) {
    Res.Class = Check.Class;
    return Res;
  }
  Res.Source = Best;
  // The evidence to preserve: class plus the concrete-leak bit. Without
  // the latter, a finding whose class rests on an exogenous fact (the
  // taint verdict, an injected fault) would shrink to a trivial program.
  const bool RefLeak = Check.Verdicts.EmpiricalLeak;

  auto BudgetLeft = [&]() {
    if (Res.Stats.OracleRuns < Config.MaxOracleRuns)
      return true;
    Res.Stats.BudgetExhausted = true;
    return false;
  };

  // Tries site \p K of \p Pass against the current best; keeps the
  // candidate when the oracle reproduces the target class.
  auto TrySite = [&](PassFn Pass, size_t K) {
    std::optional<Program> P = ParseSrc(Best);
    if (!P)
      return false;
    size_t Countdown = K;
    if (!Pass(*P, Entry, Countdown))
      return false;
    std::string Cand = P->str();
    if (Cand == Best || !BudgetLeft())
      return false;
    ++Res.Stats.OracleRuns;
    OracleResult CandRes = Oracle.evaluate(Cand, GenTainted, Seed);
    if (CandRes.Class != Target ||
        CandRes.Verdicts.EmpiricalLeak != RefLeak)
      return false;
    Best = std::move(Cand);
    ++Res.Stats.Reductions;
    return true;
  };

  const PassFn Passes[] = {passRemoveStatement, passFlattenCompound,
                           passStripInvariants, passRemoveDecl,
                           passSimplifyExpr};

  for (unsigned Round = 0; Round < Config.MaxRounds; ++Round) {
    bool Progress = false;
    for (PassFn Pass : Passes) {
      std::optional<Program> P = ParseSrc(Best);
      if (!P)
        break;
      size_t Sites = countSites(Pass, *P, Entry);
      // Highest ordinal first: a reduction only disturbs ordinals at or
      // above its own site, so the sweep stays aligned without restarts.
      for (size_t K = Sites; K-- > 0;) {
        if (!BudgetLeft())
          break;
        Progress |= TrySite(Pass, K);
      }
      if (!BudgetLeft())
        break;
    }
    Res.Stats.Rounds = Round + 1;
    if (!Progress || !BudgetLeft())
      break;
  }

  Res.Source = Best;
  if (std::optional<Program> Final = ParseSrc(Best))
    Res.Stats.StatementsAfter = countStatements(*Final);
  return Res;
}
