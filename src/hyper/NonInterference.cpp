//===-- hyper/NonInterference.cpp - Empirical 2-safety testing -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyper/NonInterference.h"

#include "sem/Scheduler.h"
#include "support/Arena.h"
#include "support/ThreadPool.h"
#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <climits>
#include <numeric>
#include <sstream>

using namespace commcsl;

std::string NIViolation::describe() const {
  std::ostringstream OS;
  OS << Kind << ": " << Detail << "\n";
  auto PrintVals = [&OS](const char *Label,
                         const std::vector<ValueRef> &Vals) {
    OS << "  " << Label << ": [";
    for (size_t I = 0; I < Vals.size(); ++I)
      OS << (I ? ", " : "") << (Vals[I] ? Vals[I]->str() : "<none>");
    OS << "]\n";
  };
  PrintVals("inputs A", InputsA);
  PrintVals("inputs B", InputsB);
  OS << "  schedulers: " << SchedulerA << " vs " << SchedulerB << "\n";
  PrintVals("low outputs A", LowOutputsA);
  PrintVals("low outputs B", LowOutputsB);
  return OS.str();
}

NonInterferenceHarness::NonInterferenceHarness(const Program &Prog,
                                               std::string ProcName,
                                               NIConfig Config)
    : Prog(Prog), Proc(Prog.findProc(ProcName)), Config(Config) {
  if (!Proc)
    return;
  auto MarksLow = [](const Contract &C, const std::string &Name) {
    for (const ContractAtom &A : C)
      if (A.AtomKind == ContractAtom::Kind::Low && !A.Cond &&
          A.E->Kind == ExprKind::Var && A.E->Name == Name)
        return true;
    return false;
  };
  for (size_t I = 0; I < Proc->Params.size(); ++I)
    if (MarksLow(Proc->Requires, Proc->Params[I].Name))
      LowParams.push_back(I);
  for (size_t I = 0; I < Proc->Returns.size(); ++I)
    if (MarksLow(Proc->Ensures, Proc->Returns[I].Name))
      LowReturns.push_back(I);
  // Conditional classifications over plain variables, both the `level`
  // clause and the equivalent `g ==> low(x)` form.
  auto CollectLevels = [](const Contract &C, const std::vector<Param> &Vars,
                          std::vector<LevelSlot> &Out) {
    for (size_t I = 0; I < Vars.size(); ++I)
      for (const ContractAtom &A : C)
        if (A.AtomKind == ContractAtom::Kind::Low && A.Cond &&
            A.E->Kind == ExprKind::Var && A.E->Name == Vars[I].Name)
          Out.push_back({I, A.Cond});
  };
  CollectLevels(Proc->Requires, Proc->Params, LevelParams);
  CollectLevels(Proc->Ensures, Proc->Returns, LevelReturns);
}

NIReport NonInterferenceHarness::run() {
  NIReport Report;
  if (!Proc) {
    NIViolation V;
    V.Kind = "abort";
    V.Detail = "unknown procedure";
    Report.Violation = std::move(V);
    return Report;
  }
  TraceSpan SweepSpan("ni", [&] { return "sweep " + Proc->Name; });
  Stopwatch T0;
  SpecCaches = !Config.MemoizeSpecEval ? nullptr
               : Config.SharedSpecCaches
                   ? Config.SharedSpecCaches
                   : std::make_shared<SpecCacheRegistry>(Config.MemoMaxEntries);

  std::vector<DomainRef> ParamDoms;
  for (const Param &P : Proc->Params)
    ParamDoms.push_back(P.Ty->toDomain(Config.InputScope));

  auto IsLowParam = [this](size_t I) {
    for (size_t L : LowParams)
      if (L == I)
        return true;
    return false;
  };

  // Trials are independent work units: each derives its RNG stream from
  // (Seed, TrialIndex), so its outcome does not depend on which worker runs
  // it or in what order. The merge below reproduces the sequential
  // stop-at-first-violation report exactly.
  struct TrialOutcome {
    uint64_t Runs = 0;
    uint64_t Pairs = 0;
    std::optional<NIViolation> Violation;
  };
  std::vector<TrialOutcome> Trials(Config.Trials);
  std::atomic<unsigned> FirstViolating{UINT_MAX};
  unsigned Jobs = ThreadPool::effectiveJobs(Config.Jobs);
  uint64_t NumChunks =
      std::max<uint64_t>(1, ThreadPool::chunkCount(Config.Trials, Jobs));
  std::vector<double> ChunkSeconds(NumChunks, 0.0);

  ThreadPool::shared().parallelForChunks(
      Config.Trials, Jobs, [&](uint64_t Begin, uint64_t End, unsigned Chunk) {
        Stopwatch C0;
        // Trial-transient values (sampled inputs, run states) come from a
        // chunk-local arena; only violation witnesses escape it.
        ArenaScope ChunkAS;
        for (uint64_t Trial = Begin; Trial < End; ++Trial) {
          // A trial after an already-known violating one contributes
          // nothing to the merged report; skip it.
          if (Trial > FirstViolating.load(std::memory_order_relaxed))
            continue;
          std::mt19937_64 Rng(deriveSeed(Config.Seed, Trial));
          std::vector<std::vector<ValueRef>> Assignments;
          if (Config.TrialGen) {
            Assignments = Config.TrialGen(Rng);
          } else {
            // Fix the low inputs; vary the highs.
            std::vector<ValueRef> LowVals(Proc->Params.size());
            for (size_t I = 0; I < Proc->Params.size(); ++I)
              if (IsLowParam(I))
                LowVals[I] = ParamDoms[I]->sample(Rng);
            for (unsigned H = 0; H < Config.HighSamples; ++H) {
              std::vector<ValueRef> Inputs(Proc->Params.size());
              for (size_t I = 0; I < Proc->Params.size(); ++I)
                Inputs[I] =
                    IsLowParam(I) ? LowVals[I] : ParamDoms[I]->sample(Rng);
              // Stay inside the relation induced by conditional
              // classifications: the guard must agree with the reference
              // assignment (copy its free variables), and when it holds
              // the classified parameter is low (copy it too).
              if (!LevelParams.empty() && !Assignments.empty()) {
                const std::vector<ValueRef> &First = Assignments.front();
                for (const LevelSlot &LS : LevelParams) {
                  std::vector<std::string> Vars;
                  LS.Guard->freeVars(Vars);
                  for (const std::string &V : Vars)
                    for (size_t I = 0; I < Proc->Params.size(); ++I)
                      if (Proc->Params[I].Name == V)
                        Inputs[I] = First[I];
                }
                ExprEvaluator GuardEval(&Prog);
                EvalEnv Env;
                for (size_t I = 0; I < Proc->Params.size(); ++I)
                  Env[Proc->Params[I].Name] = First[I];
                for (const LevelSlot &LS : LevelParams)
                  if (GuardEval.eval(*LS.Guard, Env)->getBool())
                    Inputs[LS.Index] = First[LS.Index];
              }
              Assignments.push_back(std::move(Inputs));
            }
          }
          NIReport Local;
          {
            TraceSpan TrialSpan(
                "ni", [&] { return "trial " + std::to_string(Trial); });
            runTrial(Assignments, Rng, Local);
          }
          TrialOutcome &Out = Trials[Trial];
          Out.Runs = Local.Runs;
          Out.Pairs = Local.PairsCompared;
          Out.Violation = std::move(Local.Violation);
          if (Out.Violation) {
            unsigned Cur = FirstViolating.load(std::memory_order_relaxed);
            while (Trial < Cur &&
                   !FirstViolating.compare_exchange_weak(
                       Cur, static_cast<unsigned>(Trial))) {
            }
          }
        }
        ChunkSeconds[Chunk] = C0.seconds();
      });

  Report.WallSeconds = T0.seconds();
  Report.CpuSeconds =
      std::accumulate(ChunkSeconds.begin(), ChunkSeconds.end(), 0.0);
  // Deterministic merge in trial order.
  for (unsigned Trial = 0; Trial < Config.Trials; ++Trial) {
    Report.Runs += Trials[Trial].Runs;
    Report.PairsCompared += Trials[Trial].Pairs;
    if (Trials[Trial].Violation) {
      Report.Violation = std::move(Trials[Trial].Violation);
      break;
    }
  }
  if (SpecCaches)
    Report.Cache = SpecCaches->totals();

  // Runs/pairs (and whether a violation was found) replicate the
  // sequential sweep at any job count; wall/CPU time and the memo split do
  // not.
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("ni.runs").add(Report.Runs);
  M.counter("ni.pairs_compared").add(Report.PairsCompared);
  M.counter("ni.violations").add(Report.Violation ? 1 : 0);
  M.gauge("ni.wall_seconds").add(Report.WallSeconds);
  M.gauge("ni.cpu_seconds").add(Report.CpuSeconds);
  M.counter("cache.ni.hits", Stability::Varies).add(Report.Cache.hits());
  M.counter("cache.ni.misses", Stability::Varies)
      .add(Report.Cache.misses());
  return Report;
}

bool NonInterferenceHarness::runTrial(
    const std::vector<std::vector<ValueRef>> &Assignments,
    std::mt19937_64 &Rng, NIReport &Report) {
  RunConfig RC;
  RC.MaxSteps = Config.MaxSteps;
  RC.SpecCaches = SpecCaches;
  Interpreter Interp(Prog, RC);
  ExprEvaluator Eval(&Prog);

  // Everything one run exposes to the comparison: the low outputs, the
  // in-state verdicts of ensures-side level guards (with the classified
  // values), and the sorted multiset of declassified values. The release
  // log is sorted because its order under `par` is schedule-dependent
  // while the released *information* is the multiset.
  struct Obs {
    std::vector<ValueRef> Low;
    std::vector<ValueRef> Inputs;
    std::string Sched;
    std::vector<uint8_t> EnsGuards;
    std::vector<ValueRef> EnsVals;
    std::vector<ValueRef> Released;
  };
  auto SortedLog = [](std::vector<ValueRef> Log) {
    std::sort(Log.begin(), Log.end(),
              [](const ValueRef &A, const ValueRef &B) {
                return Value::compare(A, B) < 0;
              });
    return Log;
  };
  auto SameLog = [](const std::vector<ValueRef> &A,
                    const std::vector<ValueRef> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!Value::equal(A[I], B[I]))
        return false;
    return true;
  };
  // Compares run B against reference A; fills Report.Violation and
  // returns false on a mismatch. Incomparable pairs (differing release
  // logs) are skipped without counting.
  auto Compare = [&](const Obs &A, const Obs &B) {
    if (!SameLog(A.Released, B.Released))
      return true;
    ++Report.PairsCompared;
    auto Mismatch = [&](const char *Detail) {
      NIViolation V;
      V.Kind = "low-output mismatch";
      V.Detail = Detail;
      V.InputsA = A.Inputs;
      V.InputsB = B.Inputs;
      V.SchedulerA = A.Sched;
      V.SchedulerB = B.Sched;
      V.LowOutputsA = A.Low;
      V.LowOutputsB = B.Low;
      Report.Violation = std::move(V);
      return false;
    };
    if (A.Low.size() != B.Low.size())
      return Mismatch("different numbers of public outputs");
    for (size_t I = 0; I < A.Low.size(); ++I)
      if (!Value::equal(A.Low[I], B.Low[I]))
        return Mismatch("low-equivalent inputs produced different low "
                        "outputs (a value channel)");
    for (size_t I = 0; I < LevelReturns.size(); ++I) {
      if (A.EnsGuards[I] != B.EnsGuards[I]) {
        NIViolation V;
        V.Kind = "level guard mismatch";
        V.Detail = "conditional classification guard disagrees across "
                   "low-equivalent runs (the level itself leaks)";
        V.InputsA = A.Inputs;
        V.InputsB = B.Inputs;
        V.SchedulerA = A.Sched;
        V.SchedulerB = B.Sched;
        V.LowOutputsA = {A.EnsVals[I]};
        V.LowOutputsB = {B.EnsVals[I]};
        Report.Violation = std::move(V);
        return false;
      }
      if (A.EnsGuards[I] && !Value::equal(A.EnsVals[I], B.EnsVals[I])) {
        NIViolation V;
        V.Kind = "low-output mismatch";
        V.Detail = "conditionally-low return differs while its level "
                   "guard holds";
        V.InputsA = A.Inputs;
        V.InputsB = B.Inputs;
        V.SchedulerA = A.Sched;
        V.SchedulerB = B.Sched;
        V.LowOutputsA = {A.EnsVals[I]};
        V.LowOutputsB = {B.EnsVals[I]};
        Report.Violation = std::move(V);
        return false;
      }
    }
    return true;
  };
  // Whether two input assignments are related by the requires-side level
  // relation: every guard agrees, and a held guard forces agreement of the
  // classified parameter. The default generator pins inputs to satisfy
  // this by construction; a custom TrialGen may not, and unrelated
  // assignments are only compared within themselves.
  auto RelatedInputs = [&](const std::vector<ValueRef> &A,
                           const std::vector<ValueRef> &B) {
    if (LevelParams.empty())
      return true;
    EvalEnv EnvA, EnvB;
    for (size_t I = 0; I < Proc->Params.size(); ++I) {
      EnvA[Proc->Params[I].Name] = A[I];
      EnvB[Proc->Params[I].Name] = B[I];
    }
    for (const LevelSlot &LS : LevelParams) {
      bool GA = Eval.eval(*LS.Guard, EnvA)->getBool();
      bool GB = Eval.eval(*LS.Guard, EnvB)->getBool();
      if (GA != GB)
        return false;
      if (GA && !Value::equal(A[LS.Index], B[LS.Index]))
        return false;
    }
    return true;
  };

  bool HaveRef = false;
  Obs Ref;

  for (const std::vector<ValueRef> &Inputs : Assignments) {
    // Runs of an assignment outside the reference's relation are still
    // executed (faults count) and compared among themselves (scheduler
    // determinism is a property of the single input), just not against
    // the reference.
    bool Related = !HaveRef || RelatedInputs(Ref.Inputs, Inputs);
    bool HaveLocalRef = false;
    Obs LocalRef;
    // Scheduler family: round-robin, several random seeds, burst.
    std::vector<std::unique_ptr<Scheduler>> Scheds;
    Scheds.push_back(std::make_unique<RoundRobinScheduler>());
    for (unsigned R = 0; R < Config.RandomSchedules; ++R)
      Scheds.push_back(std::make_unique<RandomScheduler>(Rng()));
    Scheds.push_back(std::make_unique<BurstScheduler>(Rng(), Config.BurstLen));

    for (auto &Sched : Scheds) {
      RunResult R;
      {
        TraceSpan RunSpan("ni", [&] { return "run " + Sched->name(); });
        R = Interp.run(Proc->Name, Inputs, *Sched);
      }
      ++Report.Runs;
      if (R.St != RunResult::Status::Ok) {
        NIViolation V;
        // Step-limit exhaustion is reported apart from genuine faults: a
        // fuel-bounded run says nothing about the program, and downstream
        // consumers (the fuzzing oracle) classify it as a flake rather
        // than a soundness signal.
        V.Kind = R.St == RunResult::Status::Deadlock    ? "deadlock"
                 : R.St == RunResult::Status::StepLimit ? "step-limit"
                                                        : "abort";
        V.Detail = R.AbortReason;
        V.InputsA = Inputs;
        V.SchedulerA = Sched->name();
        Report.Violation = std::move(V);
        return false;
      }
      Obs O;
      O.Inputs = Inputs;
      O.Sched = Sched->name();
      for (size_t I : LowReturns)
        O.Low.push_back(R.Returns[I]);
      // The public output channel is observable in its entirety.
      O.Low.insert(O.Low.end(), R.Outputs.begin(), R.Outputs.end());
      O.Released = SortedLog(std::move(R.Declassified));
      if (!LevelReturns.empty()) {
        EvalEnv Env;
        for (size_t I = 0; I < Proc->Params.size(); ++I)
          Env[Proc->Params[I].Name] = Inputs[I];
        for (size_t I = 0; I < Proc->Returns.size(); ++I)
          Env[Proc->Returns[I].Name] = R.Returns[I];
        for (const LevelSlot &LS : LevelReturns) {
          O.EnsGuards.push_back(Eval.eval(*LS.Guard, Env)->getBool() ? 1
                                                                     : 0);
          O.EnsVals.push_back(R.Returns[LS.Index]);
        }
      }

      if (Related) {
        if (!HaveRef) {
          HaveRef = true;
          Ref = std::move(O);
          continue;
        }
        if (!Compare(Ref, O))
          return false;
      } else {
        if (!HaveLocalRef) {
          HaveLocalRef = true;
          LocalRef = std::move(O);
          continue;
        }
        if (!Compare(LocalRef, O))
          return false;
      }
    }
  }
  return true;
}
