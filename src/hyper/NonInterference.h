//===-- hyper/NonInterference.h - Empirical 2-safety testing ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical non-interference testing (Def. 2.1): runs a procedure many
/// times with fixed low inputs while varying the high inputs and the
/// scheduler, and checks that every terminating run produces the same low
/// outputs. This dynamically validates the soundness theorem (Sec. 4) for
/// verified programs and produces concrete leak witnesses for rejected
/// ones (e.g. the Fig. 1 internal-timing channel).
///
/// Low inputs/outputs are read off the procedure's contract: a parameter
/// (return variable) is low iff the requires (ensures) clause contains a
/// bare `low(x)` atom for it. Everything else is varied (compared) as high.
///
/// Conditional classifications (`level(x) = if g then low else high`, or
/// equivalently `g ==> low(x)`) induce the relation of the product
/// translation: the guard must agree across the two runs, and when it
/// holds the classified variable must agree too. On the requires side the
/// harness *generates* within that relation (guard inputs are pinned to
/// the reference assignment, the classified parameter is pinned when the
/// guard holds); on the ensures side it *checks* it (guard disagreement is
/// itself a leak of the level). Runs whose `declassify` release logs
/// differ are incomparable — delimited release only relates executions
/// that agree on what was released — and are skipped, not compared.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_HYPER_NONINTERFERENCE_H
#define COMMCSL_HYPER_NONINTERFERENCE_H

#include "lang/Program.h"
#include "sem/Interp.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace commcsl {

/// Budgets for the harness.
struct NIConfig {
  unsigned Trials = 3;          ///< distinct low-input assignments
  unsigned HighSamples = 4;     ///< high-input assignments per trial
  unsigned RandomSchedules = 4; ///< random-scheduler seeds per assignment
  unsigned BurstLen = 8;        ///< burst scheduler slice length
  uint64_t Seed = 0xD1CE;
  uint64_t MaxSteps = 500'000;
  Type::ScopeParams InputScope{0, 6, 4}; ///< input generation domain
  /// Worker threads for distributing trials. 0 = hardware concurrency;
  /// 1 = sequential. Every trial derives its own RNG stream as
  /// splitmix64(Seed, TrialIndex), so the report (counts, violation) is
  /// identical at every job count.
  unsigned Jobs = 0;
  /// Memoize resource-spec evaluation (`alpha`, `f_a`) across all runs of
  /// the sweep in one shared per-spec cache registry. Evaluation is pure,
  /// so the report (counts, violation) is bit-identical with memoization on
  /// or off; only speed and the diagnostic cache counters change.
  bool MemoizeSpecEval = true;
  /// Capacity bound per spec cache (entries across both memo tables).
  size_t MemoMaxEntries = SpecEvalCache::DefaultMaxEntries;
  /// Optional externally owned registry. When set (and MemoizeSpecEval is
  /// on) the sweep evaluates through it instead of building a private
  /// per-run registry, so memo entries survive across sweeps — the serve
  /// daemon's warm path. The report's Cache counters then cover the
  /// registry's whole lifetime, not just this sweep. Must not outlive the
  /// Program owning the spec declarations.
  std::shared_ptr<SpecCacheRegistry> SharedSpecCaches;

  /// Optional custom trial generator: returns a batch of low-equivalent
  /// input assignments (the harness compares low outputs across the whole
  /// batch). Use when the procedure's precondition relates inputs in ways
  /// the default per-type sampler cannot guarantee (e.g. equal lengths).
  /// May be invoked concurrently from pool workers (with per-trial RNGs),
  /// so it must not mutate shared state.
  using TrialGenerator =
      std::function<std::vector<std::vector<ValueRef>>(std::mt19937_64 &)>;
  TrialGenerator TrialGen;
};

/// A concrete witness of an information leak (or a runtime fault).
struct NIViolation {
  std::string Kind; ///< "low-output mismatch", "abort", "deadlock",
                    ///< "step-limit"
  std::string Detail;
  std::vector<ValueRef> InputsA, InputsB;
  std::string SchedulerA, SchedulerB;
  std::vector<ValueRef> LowOutputsA, LowOutputsB;

  std::string describe() const;
};

/// Outcome of a harness run. Counts reproduce the sequential
/// stop-at-first-violation semantics: trials after the first violating one
/// contribute nothing, regardless of how many ran concurrently.
struct NIReport {
  uint64_t Runs = 0;
  uint64_t PairsCompared = 0;
  std::optional<NIViolation> Violation;
  /// Wall-clock duration of the sweep.
  double WallSeconds = 0;
  /// Aggregate worker time (>= WallSeconds when parallel); the ratio
  /// CpuSeconds / WallSeconds approximates the realized speedup.
  double CpuSeconds = 0;
  /// Spec-evaluation memo counters summed over every spec the sweep
  /// touched (zeros when MemoizeSpecEval is off). Diagnostic only: the
  /// hit/miss split may vary with thread interleaving.
  CacheStats Cache;

  bool secure() const { return !Violation.has_value(); }
};

/// Runs the empirical check for one procedure of a (type-checked) program.
class NonInterferenceHarness {
public:
  NonInterferenceHarness(const Program &Prog, std::string ProcName,
                         NIConfig Config = {});

  /// Whether the named procedure exists; `run` must not be called
  /// otherwise.
  bool valid() const { return Proc != nullptr; }

  /// Executes the sweep. Stops at the first violation.
  NIReport run();

private:
  /// Runs every scheduler over each assignment of the batch; all low
  /// outputs must agree. Returns false when a violation was recorded.
  bool runTrial(const std::vector<std::vector<ValueRef>> &Assignments,
                std::mt19937_64 &Rng, NIReport &Report);

public:

  /// Indices of parameters / returns that the contract marks low.
  const std::vector<size_t> &lowParams() const { return LowParams; }
  const std::vector<size_t> &lowReturns() const { return LowReturns; }

  /// One conditional classification: parameter/return \p Index is low
  /// exactly when \p Guard evaluates to true in-state.
  struct LevelSlot {
    size_t Index;
    ExprRef Guard;
  };
  const std::vector<LevelSlot> &levelParams() const { return LevelParams; }
  const std::vector<LevelSlot> &levelReturns() const { return LevelReturns; }

private:
  const Program &Prog;
  const ProcDecl *Proc;
  NIConfig Config;
  std::vector<size_t> LowParams;
  std::vector<size_t> LowReturns;
  std::vector<LevelSlot> LevelParams;
  std::vector<LevelSlot> LevelReturns;
  /// Shared across every trial of a sweep (set up per `run()` call).
  std::shared_ptr<SpecCacheRegistry> SpecCaches;
};

} // namespace commcsl

#endif // COMMCSL_HYPER_NONINTERFERENCE_H
