//===-- solver/SymEval.cpp - Symbolic expression evaluation -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "solver/SymEval.h"

#include <cassert>

using namespace commcsl;

TermRef SymEvaluator::eval(const Expr &E, const SymEnv &Env) const {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return Arena.intConst(E.IntVal);
  case ExprKind::BoolLit:
    return Arena.boolConst(E.BoolVal);
  case ExprKind::StringLit:
    return Arena.constant(ValueFactory::stringV(E.Name));
  case ExprKind::UnitLit:
    return Arena.constant(ValueFactory::unit());
  case ExprKind::Var: {
    auto It = Env.find(E.Name);
    if (It != Env.end())
      return It->second;
    assert(E.Ty && "unbound, untyped variable in symbolic evaluation");
    return Arena.constant(E.Ty->defaultValue());
  }
  case ExprKind::Unary:
    return Arena.unary(E.UOp, eval(*E.Args[0], Env));
  case ExprKind::Binary:
    return Arena.binary(E.BOp, eval(*E.Args[0], Env), eval(*E.Args[1], Env));
  case ExprKind::Builtin: {
    std::vector<TermRef> Args;
    Args.reserve(E.Args.size());
    for (const ExprRef &A : E.Args)
      Args.push_back(eval(*A, Env));
    return Arena.builtin(E.Builtin, std::move(Args), E.Ty);
  }
  case ExprKind::Call: {
    assert(Prog && "function call without program context");
    const FuncDecl *F = Prog->findFunc(E.Name);
    assert(F && "call to unknown function after type checking");
    SymEnv Inner;
    for (size_t I = 0; I < E.Args.size(); ++I)
      Inner[F->Params[I].Name] = eval(*E.Args[I], Env);
    return eval(*F->Body, Inner);
  }
  }
  assert(false && "unhandled expression kind");
  return Arena.constant(ValueFactory::unit());
}
