//===-- solver/Solver.h - Congruence closure + bounds -----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The entailment engine the verifier discharges proof obligations with,
/// replacing the Viper/Z3 backend of the paper's HyperViper tool. It
/// combines:
///
///  - congruence closure over hash-consed, normalized terms (equalities
///    propagate through all operations, which carries `Low(alpha(v))`
///    facts to derived outputs);
///  - difference-bound reasoning for `<=` goals: a goal `a <= b` holds if
///    `b - a` normalizes to a non-negative constant modulo at most two
///    assumed `<=` facts (enough for loop-counter arithmetic);
///  - contradiction tracking (a contradictory context proves anything —
///    standard for unreachable branches).
///
/// Solvers are value types: branch verification clones the solver and the
/// two copies diverge.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SOLVER_SOLVER_H
#define COMMCSL_SOLVER_SOLVER_H

#include "solver/Proof.h"
#include "solver/Term.h"

#include <map>
#include <unordered_map>
#include <vector>

namespace commcsl {

/// Entailment context over a TermArena.
class Solver {
public:
  explicit Solver(TermArena &Arena) : Arena(&Arena) {}

  /// Attaches a certificate recording sink (solver/Proof.h). Copies of this
  /// solver (branch states) inherit the pointer and their assumed prefix;
  /// the case-split engine's internal clones detach themselves.
  void attachProofLog(ProofLog *L) { Log = L; }

  /// Assumes a boolean term. Conjunctions are decomposed; equalities feed
  /// the congruence closure; `<=` facts feed the bounds engine; everything
  /// is also equated with `true` for propositional lookups.
  void assumeTrue(TermRef B);

  /// Assumes a == b.
  void assumeEq(TermRef A, TermRef B);

  /// Whether the context entails the boolean term \p B.
  bool provesTrue(TermRef B);

  /// Whether the context entails a == b.
  bool provesEq(TermRef A, TermRef B);

  /// Whether the assumed facts are contradictory (distinct constants were
  /// merged). A contradictory context proves everything.
  bool inContradiction() const { return Contradiction; }

  TermArena &arena() { return *Arena; }

private:
  /// Unlogged bodies of the assumption entry points. The public wrappers
  /// record the top-level fact (when a log is attached) and delegate here;
  /// internal recursion (conjunction decomposition, case-split hypotheses)
  /// uses these directly so only verification-context assumptions are
  /// logged.
  void assumeTrueImpl(TermRef B);
  void assumeEqImpl(TermRef A, TermRef B);

  // Union-find over term ids (lazily registered).
  uint32_t find(uint32_t Id);
  void registerTerm(TermRef T);
  void merge(TermRef A, TermRef B);

  /// Signature of a term under current representatives, for congruence.
  std::vector<uint64_t> signatureOf(TermRef T);

  // Linear forms for the bounds engine.
  struct LinForm {
    std::map<uint32_t, int64_t> Coeffs; ///< representative id -> coefficient
    int64_t Const = 0;

    void addScaled(const LinForm &O, int64_t K);
    bool isConst() const { return Coeffs.empty(); }
  };
  LinForm linearize(TermRef T);
  bool leImplied(TermRef A, TermRef B);

  /// Case-split fallback: find an undecided Ite condition in the goal and
  /// prove the goal under both polarities. Bounded depth; this is what
  /// discharges value-dependent sensitivity goals (`b ==> low(e)`) and
  /// unary postconditions of high conditionals.
  bool caseSplitTrue(TermRef B, unsigned Depth);
  bool caseSplitEq(TermRef A, TermRef B, unsigned Depth);
  TermRef findUndecidedIteCond(TermRef T, unsigned FuelDepth);

  /// Split-free cores of the entailment queries; the case-split wrappers
  /// call these so that the total number of splits stays bounded by the
  /// initial depth budget.
  bool provesEqCore(TermRef A, TermRef B);
  bool provesTrueCore(TermRef B);

  /// AC-chain matching: two flattened chains of the same associative-
  /// commutative operator are equal if their operands match up to
  /// congruence under some permutation (bounded backtracking). Handles the
  /// incompleteness of pairwise congruence on chains whose normal forms
  /// ordered congruent-but-distinct operands differently on the two
  /// execution sides.
  bool acChainsEq(TermRef A, TermRef B, unsigned Depth);

  TermArena *Arena;
  bool Contradiction = false;

  /// Theory propagation hooks, run when a class changes:
  ///  - an Ite whose condition class holds a boolean constant collapses to
  ///    the corresponding branch (value-dependent sensitivity, Sec. 3.4);
  ///  - injective constructors (seq append, pair) that land in one class
  ///    propagate equalities to their arguments (needed to match recorded
  ///    action returns against a history function at unshare).
  void propagateClass(uint32_t Rep,
                      std::vector<std::pair<TermRef, TermRef>> &Pending);

  std::unordered_map<uint32_t, uint32_t> Parent;  ///< id -> parent id
  std::unordered_map<uint32_t, TermRef> ById;     ///< registered terms
  std::unordered_map<uint32_t, std::vector<TermRef>> Uses; ///< rep -> users
  std::unordered_map<uint32_t, TermRef> ClassConst; ///< rep -> const member
  /// rep -> injective-constructor members (SeqAppend, PairMk) of the class.
  std::unordered_map<uint32_t, std::vector<TermRef>> CtorMembers;
  std::map<std::vector<uint64_t>, TermRef> Sigs;
  std::vector<std::pair<TermRef, TermRef>> LeFacts;   ///< assumed a <= b
  std::vector<std::pair<TermRef, TermRef>> Disequals; ///< assumed a != b

  /// Certificate recording (null outside `--emit-cert` runs).
  ProofLog *Log = nullptr;
  std::vector<uint32_t> Assumed; ///< log fact indices visible to this solver
};

} // namespace commcsl

#endif // COMMCSL_SOLVER_SOLVER_H
