//===-- solver/Solver.cpp - Congruence closure + bounds ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include <cassert>
#include <functional>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Union-find + congruence
//===----------------------------------------------------------------------===//

uint32_t Solver::find(uint32_t Id) {
  auto It = Parent.find(Id);
  if (It == Parent.end()) {
    Parent[Id] = Id;
    return Id;
  }
  if (It->second == Id)
    return Id;
  uint32_t Root = find(It->second);
  Parent[Id] = Root; // path compression
  return Root;
}

namespace {
/// Operators whose two operands are interchangeable. Their signatures sort
/// the argument representatives, so congruence is insensitive to the
/// operand order the normalizer happened to pick on each execution side.
bool isCommutativeNode(TermRef T) {
  if (T->K == Term::Kind::Binary)
    return T->BOp == BinaryOp::Add || T->BOp == BinaryOp::Mul ||
           T->BOp == BinaryOp::And || T->BOp == BinaryOp::Or ||
           T->BOp == BinaryOp::Eq;
  if (T->K == Term::Kind::Builtin)
    return T->BK == BuiltinKind::MsUnion || T->BK == BuiltinKind::SetUnion ||
           T->BK == BuiltinKind::SetInter || T->BK == BuiltinKind::Min ||
           T->BK == BuiltinKind::Max;
  return false;
}
} // namespace

std::vector<uint64_t> Solver::signatureOf(TermRef T) {
  std::vector<uint64_t> Sig;
  Sig.reserve(T->Args.size() + 2);
  uint64_t Tag = static_cast<uint64_t>(T->K) << 32;
  switch (T->K) {
  case Term::Kind::Unary:
    Tag |= static_cast<uint64_t>(T->UOp);
    break;
  case Term::Kind::Binary:
    Tag |= static_cast<uint64_t>(T->BOp) << 8;
    break;
  case Term::Kind::Builtin:
    Tag |= static_cast<uint64_t>(T->BK) << 16;
    break;
  default:
    break;
  }
  Sig.push_back(Tag);
  for (TermRef A : T->Args)
    Sig.push_back(find(A->Id));
  if (isCommutativeNode(T) && Sig.size() == 3 && Sig[1] > Sig[2])
    std::swap(Sig[1], Sig[2]);
  return Sig;
}

namespace {
bool isInjectiveCtor(TermRef T) {
  return T->K == Term::Kind::Builtin &&
         (T->BK == BuiltinKind::SeqAppend || T->BK == BuiltinKind::PairMk);
}
} // namespace

void Solver::registerTerm(TermRef T) {
  if (ById.count(T->Id))
    return;
  ById[T->Id] = T;
  Parent[T->Id] = T->Id;
  if (T->isConst())
    ClassConst[T->Id] = T;
  if (isInjectiveCtor(T))
    CtorMembers[T->Id].push_back(T);
  // Built-in non-negativity axioms: 0 <= |.|, lengths, sizes, counts.
  if (T->K == Term::Kind::Builtin &&
      (T->BK == BuiltinKind::Abs || T->BK == BuiltinKind::SeqLen ||
       T->BK == BuiltinKind::SetSize || T->BK == BuiltinKind::MsCard ||
       T->BK == BuiltinKind::MapSize || T->BK == BuiltinKind::MsCount))
    LeFacts.emplace_back(Arena->intConst(0), T);
  for (TermRef A : T->Args) {
    registerTerm(A);
    Uses[find(A->Id)].push_back(T);
  }
  if (!T->Args.empty()) {
    std::vector<uint64_t> Sig = signatureOf(T);
    auto It = Sigs.find(Sig);
    if (It == Sigs.end())
      Sigs.emplace(std::move(Sig), T);
    else if (find(It->second->Id) != find(T->Id))
      merge(T, It->second); // congruent siblings
  }
  // Ite whose condition is already decided collapses to a branch.
  if (T->K == Term::Kind::Builtin && T->BK == BuiltinKind::Ite) {
    auto CIt = ClassConst.find(find(T->Args[0]->Id));
    if (CIt != ClassConst.end() && CIt->second->ConstVal->isBool())
      merge(T, CIt->second->ConstVal->getBool() ? T->Args[1] : T->Args[2]);
  }
}

void Solver::propagateClass(
    uint32_t Rep, std::vector<std::pair<TermRef, TermRef>> &Pending) {
  // Ite collapse: users of a class that acquired a boolean constant.
  auto CIt = ClassConst.find(Rep);
  if (CIt != ClassConst.end() && CIt->second->ConstVal->isBool()) {
    bool Cond = CIt->second->ConstVal->getBool();
    auto UIt = Uses.find(Rep);
    if (UIt != Uses.end()) {
      for (TermRef U : UIt->second) {
        if (U->K == Term::Kind::Builtin && U->BK == BuiltinKind::Ite &&
            find(U->Args[0]->Id) == Rep)
          Pending.emplace_back(U, Cond ? U->Args[1] : U->Args[2]);
      }
    }
  }
  // Injectivity: all constructor members of one class have equal arguments.
  auto MIt = CtorMembers.find(Rep);
  if (MIt != CtorMembers.end() && MIt->second.size() > 1) {
    const std::vector<TermRef> &Members = MIt->second;
    TermRef First = Members.front();
    for (size_t I = 1; I < Members.size(); ++I) {
      TermRef M = Members[I];
      if (M->BK != First->BK)
        continue;
      for (size_t J = 0; J < First->Args.size(); ++J)
        if (find(First->Args[J]->Id) != find(M->Args[J]->Id))
          Pending.emplace_back(First->Args[J], M->Args[J]);
    }
  }
}

void Solver::merge(TermRef A, TermRef B) {
  registerTerm(A);
  registerTerm(B);
  std::vector<std::pair<TermRef, TermRef>> Pending = {{A, B}};
  while (!Pending.empty()) {
    auto [X, Y] = Pending.back();
    Pending.pop_back();
    uint32_t Rx = find(X->Id);
    uint32_t Ry = find(Y->Id);
    if (Rx == Ry)
      continue;
    // Merge the class with fewer users into the other.
    if (Uses[Rx].size() > Uses[Ry].size())
      std::swap(Rx, Ry);
    Parent[Rx] = Ry;
    // Constants: conflicting constants mean contradiction.
    auto CxIt = ClassConst.find(Rx);
    auto CyIt = ClassConst.find(Ry);
    if (CxIt != ClassConst.end()) {
      if (CyIt != ClassConst.end()) {
        if (!Value::equal(CxIt->second->ConstVal, CyIt->second->ConstVal))
          Contradiction = true;
      } else {
        ClassConst[Ry] = CxIt->second;
      }
    }
    // Merge constructor member lists.
    auto MxIt = CtorMembers.find(Rx);
    if (MxIt != CtorMembers.end()) {
      auto &Dst = CtorMembers[Ry];
      Dst.insert(Dst.end(), MxIt->second.begin(), MxIt->second.end());
      CtorMembers.erase(Rx);
    }
    // Re-signature all users of the absorbed class.
    std::vector<TermRef> Moved = std::move(Uses[Rx]);
    Uses.erase(Rx);
    for (TermRef U : Moved) {
      Uses[Ry].push_back(U);
      std::vector<uint64_t> Sig = signatureOf(U);
      auto It = Sigs.find(Sig);
      if (It == Sigs.end())
        Sigs.emplace(std::move(Sig), U);
      else if (find(It->second->Id) != find(U->Id))
        Pending.emplace_back(U, It->second);
    }
    // Theory propagation on the merged class.
    propagateClass(Ry, Pending);
  }
}

//===----------------------------------------------------------------------===//
// Assumptions
//===----------------------------------------------------------------------===//

void Solver::assumeEq(TermRef A, TermRef B) {
  if (Log)
    Assumed.push_back(Log->addFact(ProofFact::Kind::Eq, A, B));
  assumeEqImpl(A, B);
}

void Solver::assumeTrue(TermRef B) {
  if (Log)
    Assumed.push_back(Log->addFact(ProofFact::Kind::True, B, nullptr));
  assumeTrueImpl(B);
}

void Solver::assumeEqImpl(TermRef A, TermRef B) {
  registerTerm(A);
  registerTerm(B);
  merge(A, B);
}

void Solver::assumeTrueImpl(TermRef B) {
  if (B->isTrue())
    return;
  if (B->isFalse()) {
    Contradiction = true;
    return;
  }
  // Always decide the proposition itself first: Ite conditions over this
  // exact term must collapse, and the case-split engine must see it as
  // decided (otherwise it would split on the same condition forever).
  registerTerm(B);
  merge(B, Arena->boolConst(true));

  // Then mine structure for stronger theory facts.
  if (B->K == Term::Kind::Binary) {
    if (B->BOp == BinaryOp::And) {
      assumeTrueImpl(B->Args[0]);
      assumeTrueImpl(B->Args[1]);
      return;
    }
    if (B->BOp == BinaryOp::Eq) {
      assumeEqImpl(B->Args[0], B->Args[1]);
      return;
    }
    if (B->BOp == BinaryOp::Le) {
      LeFacts.emplace_back(B->Args[0], B->Args[1]);
      return;
    }
  }
  if (B->K == Term::Kind::Unary && B->UOp == UnaryOp::Not) {
    TermRef Inner = B->Args[0];
    registerTerm(Inner);
    if (Inner->K == Term::Kind::Binary && Inner->BOp == BinaryOp::Eq)
      Disequals.emplace_back(Inner->Args[0], Inner->Args[1]);
    if (Inner->K == Term::Kind::Binary && Inner->BOp == BinaryOp::Le) {
      // !(a <= b)  ==>  b + 1 <= a  (integers).
      LeFacts.emplace_back(
          Arena->add(Inner->Args[1], Arena->intConst(1)), Inner->Args[0]);
    }
    merge(Inner, Arena->boolConst(false));
    return;
  }
}

//===----------------------------------------------------------------------===//
// Linear bounds
//===----------------------------------------------------------------------===//

void Solver::LinForm::addScaled(const LinForm &O, int64_t K) {
  Const += K * O.Const;
  for (const auto &[Id, C] : O.Coeffs) {
    int64_t &Slot = Coeffs[Id];
    Slot += K * C;
    if (Slot == 0)
      Coeffs.erase(Id);
  }
}

Solver::LinForm Solver::linearize(TermRef T) {
  LinForm F;
  if (T->isConst() && T->ConstVal->isInt()) {
    F.Const = T->ConstVal->getInt();
    return F;
  }
  if (T->K == Term::Kind::Binary && T->BOp == BinaryOp::Add) {
    F = linearize(T->Args[0]);
    F.addScaled(linearize(T->Args[1]), 1);
    return F;
  }
  if (T->K == Term::Kind::Binary && T->BOp == BinaryOp::Mul) {
    // Normalized multiplication chains place at most one constant operand.
    TermRef L = T->Args[0];
    TermRef R = T->Args[1];
    if (L->isConst() && L->ConstVal->isInt()) {
      F = linearize(R);
      LinForm Out;
      Out.addScaled(F, L->ConstVal->getInt());
      return Out;
    }
    if (R->isConst() && R->ConstVal->isInt()) {
      F = linearize(L);
      LinForm Out;
      Out.addScaled(F, R->ConstVal->getInt());
      return Out;
    }
  }
  // Opaque atom, keyed by its congruence representative so that equalities
  // unify atoms.
  registerTerm(T);
  uint32_t Rep = find(T->Id);
  // If the class has a known integer constant, use it.
  auto It = ClassConst.find(Rep);
  if (It != ClassConst.end() && It->second->ConstVal->isInt()) {
    F.Const = It->second->ConstVal->getInt();
    return F;
  }
  F.Coeffs[Rep] = 1;
  return F;
}

bool Solver::leImplied(TermRef A, TermRef B) {
  // Goal: 0 <= B - A.
  LinForm Goal = linearize(B);
  Goal.addScaled(linearize(A), -1);
  if (Goal.isConst())
    return Goal.Const >= 0;

  // One assumed fact: goal - fact must be a non-negative constant.
  std::vector<LinForm> Facts;
  Facts.reserve(LeFacts.size());
  for (const auto &[X, Y] : LeFacts) {
    LinForm F = linearize(Y);
    F.addScaled(linearize(X), -1); // F >= 0
    Facts.push_back(std::move(F));
  }
  for (const LinForm &F : Facts) {
    LinForm D = Goal;
    D.addScaled(F, -1);
    if (D.isConst() && D.Const >= 0)
      return true;
  }
  // Two assumed facts (covers transitivity chains).
  for (size_t I = 0; I < Facts.size(); ++I) {
    for (size_t J = I; J < Facts.size(); ++J) {
      LinForm D = Goal;
      D.addScaled(Facts[I], -1);
      D.addScaled(Facts[J], -1);
      if (D.isConst() && D.Const >= 0)
        return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

TermRef Solver::findUndecidedIteCond(TermRef T, unsigned FuelDepth) {
  if (FuelDepth == 0)
    return nullptr;
  if (T->K == Term::Kind::Builtin && T->BK == BuiltinKind::Ite) {
    registerTerm(T);
    auto CIt = ClassConst.find(find(T->Args[0]->Id));
    if (CIt == ClassConst.end() || !CIt->second->ConstVal->isBool())
      return T->Args[0];
  }
  for (TermRef A : T->Args)
    if (TermRef C = findUndecidedIteCond(A, FuelDepth - 1))
      return C;
  return nullptr;
}

bool Solver::caseSplitEq(TermRef A, TermRef B, unsigned Depth) {
  if (Depth == 0)
    return false;
  TermRef Cond = findUndecidedIteCond(A, 8);
  if (!Cond)
    Cond = findUndecidedIteCond(B, 8);
  if (!Cond)
    return false;
  Solver Pos = *this;
  Pos.Log = nullptr; // hypothetical context, not a verification assumption
  Pos.assumeTrue(Cond);
  if (!Pos.provesEqCore(A, B) && !Pos.caseSplitEq(A, B, Depth - 1))
    return false;
  Solver Neg = *this;
  Neg.Log = nullptr;
  Neg.assumeTrue(Neg.Arena->logNot(Cond));
  return Neg.provesEqCore(A, B) || Neg.caseSplitEq(A, B, Depth - 1);
}

bool Solver::caseSplitTrue(TermRef B, unsigned Depth) {
  if (Depth == 0)
    return false;
  TermRef Cond = findUndecidedIteCond(B, 8);
  if (!Cond)
    return false;
  Solver Pos = *this;
  Pos.Log = nullptr; // hypothetical context, not a verification assumption
  Pos.assumeTrue(Cond);
  if (!Pos.provesTrueCore(B) && !Pos.caseSplitTrue(B, Depth - 1))
    return false;
  Solver Neg = *this;
  Neg.Log = nullptr;
  Neg.assumeTrue(Neg.Arena->logNot(Cond));
  return Neg.provesTrueCore(B) || Neg.caseSplitTrue(B, Depth - 1);
}

namespace {
/// Encodes the AC operator of a chain head, or -1.
int acOpKey(TermRef T) {
  if (T->K == Term::Kind::Binary) {
    switch (T->BOp) {
    case BinaryOp::Add:
      return 1;
    case BinaryOp::Mul:
      return 2;
    case BinaryOp::And:
      return 3;
    case BinaryOp::Or:
      return 4;
    default:
      return -1;
    }
  }
  if (T->K == Term::Kind::Builtin) {
    switch (T->BK) {
    case BuiltinKind::MsUnion:
      return 5;
    case BuiltinKind::SetUnion:
      return 6;
    case BuiltinKind::MsAdd: // chain over a base; element slots commute
      return 7;
    case BuiltinKind::SetAdd:
      return 8;
    case BuiltinKind::SeqConcat: // NOT commutative; excluded
    default:
      return -1;
    }
  }
  return -1;
}

void flattenAC(TermRef T, int Key, std::vector<TermRef> &Out) {
  if (acOpKey(T) == Key) {
    flattenAC(T->Args[0], Key, Out);
    flattenAC(T->Args[1], Key, Out);
    return;
  }
  Out.push_back(T);
}
} // namespace

bool Solver::acChainsEq(TermRef A, TermRef B, unsigned Depth) {
  if (Depth == 0)
    return false;
  int Key = acOpKey(A);
  if (Key < 0 || acOpKey(B) != Key)
    return false;
  std::vector<TermRef> Xs, Ys;
  flattenAC(A, Key, Xs);
  flattenAC(B, Key, Ys);
  if (Xs.size() != Ys.size() || Xs.size() > 6)
    return false;
  // For add-chains (ms_add/set_add), the base (first operand) is
  // positional; elements commute. For fully commutative ops everything
  // commutes. Backtracking match.
  std::vector<bool> Used(Ys.size(), false);
  std::function<bool(size_t)> Match = [&](size_t I) -> bool {
    if (I == Xs.size())
      return true;
    for (size_t J = 0; J < Ys.size(); ++J) {
      if (Used[J])
        continue;
      if ((Key == 7 || Key == 8) && ((I == 0) != (J == 0)))
        continue; // bases must align
      bool Eq = false;
      registerTerm(Xs[I]);
      registerTerm(Ys[J]);
      if (Xs[I] == Ys[J] || find(Xs[I]->Id) == find(Ys[J]->Id))
        Eq = true;
      else
        Eq = acChainsEq(Xs[I], Ys[J], Depth - 1);
      if (!Eq)
        continue;
      Used[J] = true;
      if (Match(I + 1))
        return true;
      Used[J] = false;
    }
    return false;
  };
  return Match(0);
}

bool Solver::provesEqCore(TermRef A, TermRef B) {
  if (Contradiction)
    return true;
  if (A == B)
    return true;
  registerTerm(A);
  registerTerm(B);
  if (find(A->Id) == find(B->Id))
    return true;
  // Integer antisymmetry: a <= b and b <= a.
  if (leImplied(A, B) && leImplied(B, A))
    return true;
  // AC-chain matching.
  if (acChainsEq(A, B, 4))
    return true;
  return false;
}

bool Solver::provesEq(TermRef A, TermRef B) {
  // Ite case split (value-dependent sensitivity, high-branch joins).
  bool R = provesEqCore(A, B) || caseSplitEq(A, B, 4);
  if (Log && Log->inObligation()) {
    bool Reported = Log->Forge ? true : R;
    Log->recordQuery(/*IsEq=*/true, A, B, Reported, Assumed);
    return Reported;
  }
  return R;
}

bool Solver::provesTrue(TermRef B) {
  // Ite case split (unary postconditions of high conditionals).
  bool R = provesTrueCore(B) || caseSplitTrue(B, 4);
  if (Log && Log->inObligation()) {
    bool Reported = Log->Forge ? true : R;
    Log->recordQuery(/*IsEq=*/false, B, nullptr, Reported, Assumed);
    return Reported;
  }
  return R;
}

bool Solver::provesTrueCore(TermRef B) {
  if (Contradiction)
    return true;
  if (B->isTrue())
    return true;
  if (B->isFalse())
    return false;
  if (B->K == Term::Kind::Binary) {
    if (B->BOp == BinaryOp::And)
      return provesTrueCore(B->Args[0]) && provesTrueCore(B->Args[1]);
    if (B->BOp == BinaryOp::Or) {
      if (provesTrueCore(B->Args[0]) || provesTrueCore(B->Args[1]))
        return true;
      // fall through to propositional lookup
    }
    if (B->BOp == BinaryOp::Eq && provesEqCore(B->Args[0], B->Args[1]))
      return true;
    if (B->BOp == BinaryOp::Le && leImplied(B->Args[0], B->Args[1]))
      return true;
  }
  if (B->K == Term::Kind::Unary && B->UOp == UnaryOp::Not) {
    TermRef Inner = B->Args[0];
    registerTerm(Inner);
    // Known-false proposition.
    registerTerm(Arena->boolConst(false));
    if (find(Inner->Id) == find(Arena->boolConst(false)->Id))
      return true;
    if (Inner->K == Term::Kind::Binary && Inner->BOp == BinaryOp::Eq) {
      TermRef X = Inner->Args[0];
      TermRef Y = Inner->Args[1];
      registerTerm(X);
      registerTerm(Y);
      uint32_t Rx = find(X->Id), Ry = find(Y->Id);
      // Distinct constants in the two classes.
      auto Cx = ClassConst.find(Rx);
      auto Cy = ClassConst.find(Ry);
      if (Cx != ClassConst.end() && Cy != ClassConst.end() &&
          !Value::equal(Cx->second->ConstVal, Cy->second->ConstVal))
        return true;
      // Recorded disequality.
      for (const auto &[P, Q] : Disequals) {
        uint32_t Rp = find(P->Id), Rq = find(Q->Id);
        if ((Rp == Rx && Rq == Ry) || (Rp == Ry && Rq == Rx))
          return true;
      }
      // Strict bound separation: x + 1 <= y or y + 1 <= x.
      if (leImplied(Arena->add(X, Arena->intConst(1)), Y) ||
          leImplied(Arena->add(Y, Arena->intConst(1)), X))
        return true;
    }
    if (Inner->K == Term::Kind::Binary && Inner->BOp == BinaryOp::Le) {
      // !(a <= b)  <=>  b + 1 <= a.
      if (leImplied(Arena->add(Inner->Args[1], Arena->intConst(1)),
                    Inner->Args[0]))
        return true;
    }
    return false;
  }
  // Propositional lookup: same class as `true`.
  registerTerm(B);
  registerTerm(Arena->boolConst(true));
  return find(B->Id) == find(Arena->boolConst(true)->Id);
}
