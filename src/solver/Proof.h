//===-- solver/Proof.h - Proof recording for certificates -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recording hooks for checkable certificates (DESIGN §12). A ProofLog is
/// attached to the root solver of a procedure verification; the verifier
/// opens an ObligationScope around every proof-obligation site, and the
/// solver then records each entailment query it answers inside an open
/// obligation — goal, assumption context, verdict.
///
/// Assumptions are interned into a per-procedure fact list; each solver
/// (including branch clones, which copy the log pointer and their assumed
/// prefix) carries the indices of the facts visible to it, so a recorded
/// query's context is exactly the assumption set it was decided under. The
/// internal clones the case-split engine spawns detach from the log: their
/// hypothetical assumptions are part of the decision procedure, not of the
/// verification context, and the independent checker re-runs the same
/// splits itself.
///
/// With `Forge` set, every query answered inside an obligation reports
/// true regardless of the honest verdict — the `--inject accept-all` fault
/// used to demonstrate, end to end, that the independent checker rejects
/// certificates from a broken verifier.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SOLVER_PROOF_H
#define COMMCSL_SOLVER_PROOF_H

#include "solver/Term.h"

#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace commcsl {

/// One assumption fed to a solver (top-level only; the solver's internal
/// decomposition of conjunctions etc. is re-derived by the checker).
struct ProofFact {
  enum class Kind : uint8_t { Eq, True };
  Kind K = Kind::True;
  TermRef A = nullptr;
  TermRef B = nullptr; ///< null for Kind::True
};

/// One entailment query answered inside an obligation.
struct ProofQuery {
  bool IsEq = false;
  TermRef A = nullptr;
  TermRef B = nullptr; ///< null for provesTrue goals
  bool Proved = false;
  std::vector<uint32_t> Ctx; ///< fact indices visible to the querying solver
};

/// One proof obligation (a CommCSL side-condition instance). Ok is the
/// conjunction of the recorded query verdicts; structural failures (missing
/// guard fractions, heap misuse, ...) are not query failures and surface as
/// the proc unit's StructuralFail marker instead.
struct ProofObligation {
  std::string Label;
  bool Ok = true;
  std::vector<ProofQuery> Queries;
};

/// Append-only per-procedure recording sink. Obligations nest (a retroactive
/// PRE discharge opens inside an `allpre` consumption); queries attach to the
/// innermost open obligation, and obligations are emitted in completion
/// order, which is deterministic.
class ProofLog {
public:
  bool Forge = false; ///< report every obligation query as proved

  std::vector<ProofFact> Facts;
  std::vector<ProofObligation> Obligations;

  /// Interns a fact; structurally identical assumptions share one index.
  uint32_t addFact(ProofFact::Kind K, TermRef A, TermRef B) {
    auto Key = std::make_tuple(static_cast<int>(K), A, B);
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Facts.size());
    Facts.push_back({K, A, B});
    Index.emplace(Key, Id);
    return Id;
  }

  void beginObligation(std::string Label) {
    Open.push_back({std::move(Label), true, {}});
  }

  void endObligation() {
    ProofObligation Ob = std::move(Open.back());
    Open.pop_back();
    Ob.Ok = true;
    for (const ProofQuery &Q : Ob.Queries)
      Ob.Ok &= Q.Proved;
    Obligations.push_back(std::move(Ob));
  }

  /// Pops the innermost open obligation without emitting it. Used for
  /// best-effort discharge attempts (the eager PRE check at record time)
  /// whose failure is not a verdict: the attempt is retried later with more
  /// facts, and only the attempt that counts belongs in the certificate.
  void abandonObligation() { Open.pop_back(); }

  bool inObligation() const { return !Open.empty(); }

  void recordQuery(bool IsEq, TermRef A, TermRef B, bool Proved,
                   const std::vector<uint32_t> &Ctx) {
    Open.back().Queries.push_back({IsEq, A, B, Proved, Ctx});
  }

private:
  std::vector<ProofObligation> Open;
  std::map<std::tuple<int, TermRef, TermRef>, uint32_t> Index;
};

/// RAII obligation bracket; a null log makes it a no-op, so the verifier's
/// obligation sites read the same with and without certificate emission.
class ObligationScope {
public:
  ObligationScope(ProofLog *Log, std::string Label) : Log(Log) {
    if (Log)
      Log->beginObligation(std::move(Label));
  }
  ~ObligationScope() {
    if (!Log)
      return;
    if (Abandoned)
      Log->abandonObligation();
    else
      Log->endObligation();
  }
  /// Discard instead of emit on scope exit (best-effort attempts).
  void abandon() { Abandoned = true; }
  ObligationScope(const ObligationScope &) = delete;
  ObligationScope &operator=(const ObligationScope &) = delete;

private:
  ProofLog *Log;
  bool Abandoned = false;
};

} // namespace commcsl

#endif // COMMCSL_SOLVER_PROOF_H
