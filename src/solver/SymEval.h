//===-- solver/SymEval.h - Symbolic expression evaluation -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates (type-checked) expressions to symbolic terms. The verifier
/// runs one symbolic environment per execution of the relational pair; an
/// expression is "low" exactly when its two evaluations are provably equal.
/// User-defined pure functions are inlined, and resource-specification
/// functions (alpha, f_a, pre_a, history) are applied symbolically the
/// same way they are applied concretely.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SOLVER_SYMEVAL_H
#define COMMCSL_SOLVER_SYMEVAL_H

#include "lang/Program.h"
#include "solver/Term.h"

#include <map>
#include <string>

namespace commcsl {

/// Symbolic variable environment (one per execution side).
using SymEnv = std::map<std::string, TermRef>;

/// Evaluates expressions to terms in a TermArena.
class SymEvaluator {
public:
  SymEvaluator(TermArena &Arena, const Program *Prog)
      : Arena(Arena), Prog(Prog) {}

  /// Evaluates \p E under \p Env. Unbound variables evaluate to the default
  /// constant of their annotated type (total semantics).
  TermRef eval(const Expr &E, const SymEnv &Env) const;

  TermArena &arena() const { return Arena; }

private:
  TermArena &Arena;
  const Program *Prog;
};

} // namespace commcsl

#endif // COMMCSL_SOLVER_SYMEVAL_H
