//===-- solver/Term.h - Hash-consed symbolic terms --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed symbolic terms over the pure value domain, with normalizing
/// smart constructors. This is the verifier's replacement for the SMT term
/// language: relational facts (Low(e), equalities, PRE) are discharged by
/// normalization + congruence closure (solver/Solver.h) instead of Z3.
///
/// Normalization performed at construction:
///  - constant folding through the concrete operation library;
///  - projection/constructor cancellation (fst(pair(a,b)) -> a);
///  - collection homomorphisms (len/sum/seq_to_mset/dom pushed through
///    append/concat/map_put), which is what lets `Low(alpha(v))` facts
///    flow to derived expressions like `sort(set_to_seq(dom(v)))`;
///  - `sort(s) -> mset_to_seq(seq_to_mset(s))`, making sort canonical in
///    the multiset view (the Email-Metadata reasoning step);
///  - flattening/sorting of associative-commutative operators (+, *,
///    multiset/set union) with constant folding;
///  - comparison canonicalization: everything becomes `<=`.
///
/// Terms are immutable and arena-owned; pointer equality is structural
/// equality modulo these rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SOLVER_TERM_H
#define COMMCSL_SOLVER_TERM_H

#include "lang/Expr.h"
#include "value/Value.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace commcsl {

class Term;
using TermRef = const Term *;

/// A symbolic term node. Created only through TermArena.
class Term {
public:
  enum class Kind : uint8_t {
    Const,   ///< a concrete value
    Sym,     ///< an uninterpreted symbol (program input, havoced var, ...)
    Unary,   ///< lang UnaryOp
    Binary,  ///< lang BinaryOp (normalized: no Sub/Lt/Gt/Ge/Implies)
    Builtin, ///< lang BuiltinKind application
  };

  Kind K;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  BuiltinKind BK = BuiltinKind::PairMk;
  ValueRef ConstVal;   ///< Const payload
  uint32_t SymId = 0;  ///< Sym payload
  std::string SymName; ///< Sym payload (display only; identity is SymId)
  std::vector<TermRef> Args;
  TypeRef Ty; ///< optional; needed to totalize partial builtins when folding
  uint32_t Id = 0; ///< dense arena id (used by the congruence closure)

  bool isConst() const { return K == Kind::Const; }
  bool isConstInt(int64_t V) const {
    return isConst() && ConstVal->isInt() && ConstVal->getInt() == V;
  }
  bool isTrue() const {
    return isConst() && ConstVal->isBool() && ConstVal->getBool();
  }
  bool isFalse() const {
    return isConst() && ConstVal->isBool() && !ConstVal->getBool();
  }

  /// Renders the term for diagnostics.
  std::string str() const;

private:
  friend class TermArena;
  explicit Term(Kind K) : K(K) {}
};

/// Owning arena with hash-consing and normalizing constructors. Not
/// thread-safe; one arena per verification run.
class TermArena {
public:
  TermArena();
  ~TermArena();
  TermArena(const TermArena &) = delete;
  TermArena &operator=(const TermArena &) = delete;

  //===--------------------------------------------------------------------===//
  // Leaf constructors
  //===--------------------------------------------------------------------===//

  TermRef constant(ValueRef V);
  TermRef intConst(int64_t V) { return constant(ValueFactory::intV(V)); }
  TermRef boolConst(bool V) { return constant(ValueFactory::boolV(V)); }
  /// A fresh symbol; \p Name is a display hint. \p Ty may be null.
  TermRef freshSym(const std::string &Name, TypeRef Ty = nullptr);

  //===--------------------------------------------------------------------===//
  // Applications (normalizing)
  //===--------------------------------------------------------------------===//

  TermRef unary(UnaryOp Op, TermRef A);
  TermRef binary(BinaryOp Op, TermRef A, TermRef B);
  TermRef builtin(BuiltinKind Kind, std::vector<TermRef> Args,
                  TypeRef Ty = nullptr);

  // Common shorthands.
  TermRef add(TermRef A, TermRef B) { return binary(BinaryOp::Add, A, B); }
  TermRef sub(TermRef A, TermRef B) { return binary(BinaryOp::Sub, A, B); }
  TermRef eq(TermRef A, TermRef B) { return binary(BinaryOp::Eq, A, B); }
  TermRef le(TermRef A, TermRef B) { return binary(BinaryOp::Le, A, B); }
  TermRef logAnd(TermRef A, TermRef B) {
    return binary(BinaryOp::And, A, B);
  }
  TermRef logNot(TermRef A) { return unary(UnaryOp::Not, A); }

  size_t size() const { return Terms.size(); }

private:
  TermRef intern(std::unique_ptr<Term> T);
  TermRef rawApp(Term::Kind K, UnaryOp UOp, BinaryOp BOp, BuiltinKind BK,
                 std::vector<TermRef> Args, TypeRef Ty);

  /// Flattens an AC operator chain, folds constants, sorts, and rebuilds.
  TermRef buildAC(BinaryOp Op, std::vector<TermRef> Operands);
  TermRef buildACBuiltin(BuiltinKind Kind, std::vector<TermRef> Operands,
                         TypeRef Ty);

  struct Hasher {
    size_t operator()(const Term *T) const;
  };
  struct Equal {
    bool operator()(const Term *A, const Term *B) const;
  };

  std::vector<std::unique_ptr<Term>> Terms;
  std::unordered_set<Term *, Hasher, Equal> Interned;
  uint32_t NextSymId = 0;
};

} // namespace commcsl

#endif // COMMCSL_SOLVER_TERM_H
