//===-- solver/Term.cpp - Hash-consed symbolic terms ------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "solver/Term.h"

#include "lang/ExprEval.h"
#include "support/StringUtils.h"
#include "value/ValueOps.h"

#include <algorithm>
#include <sstream>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string Term::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Const:
    OS << ConstVal->str();
    break;
  case Kind::Sym:
    OS << SymName << "#" << SymId;
    break;
  case Kind::Unary:
    OS << unaryOpName(UOp) << "(" << Args[0]->str() << ")";
    break;
  case Kind::Binary:
    OS << "(" << Args[0]->str() << " " << binaryOpName(BOp) << " "
       << Args[1]->str() << ")";
    break;
  case Kind::Builtin: {
    OS << builtinName(BK) << "(";
    for (size_t I = 0; I < Args.size(); ++I)
      OS << (I ? ", " : "") << Args[I]->str();
    OS << ")";
    break;
  }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Hash-consing
//===----------------------------------------------------------------------===//

size_t TermArena::Hasher::operator()(const Term *T) const {
  size_t Seed = static_cast<size_t>(T->K) * 0x9e3779b9u;
  switch (T->K) {
  case Term::Kind::Const:
    hashCombine(Seed, T->ConstVal->hash());
    break;
  case Term::Kind::Sym:
    hashCombine(Seed, T->SymId);
    break;
  case Term::Kind::Unary:
    hashCombine(Seed, static_cast<size_t>(T->UOp));
    break;
  case Term::Kind::Binary:
    hashCombine(Seed, static_cast<size_t>(T->BOp));
    break;
  case Term::Kind::Builtin:
    hashCombine(Seed, static_cast<size_t>(T->BK));
    break;
  }
  for (TermRef A : T->Args)
    hashCombine(Seed, reinterpret_cast<size_t>(A));
  return Seed;
}

bool TermArena::Equal::operator()(const Term *A, const Term *B) const {
  if (A->K != B->K || A->Args != B->Args)
    return false;
  switch (A->K) {
  case Term::Kind::Const:
    return Value::equal(A->ConstVal, B->ConstVal);
  case Term::Kind::Sym:
    return A->SymId == B->SymId;
  case Term::Kind::Unary:
    return A->UOp == B->UOp;
  case Term::Kind::Binary:
    return A->BOp == B->BOp;
  case Term::Kind::Builtin:
    return A->BK == B->BK;
  }
  return false;
}

TermArena::TermArena() = default;
TermArena::~TermArena() = default;

TermRef TermArena::intern(std::unique_ptr<Term> T) {
  auto It = Interned.find(T.get());
  if (It != Interned.end())
    return *It;
  T->Id = static_cast<uint32_t>(Terms.size());
  Term *Raw = T.get();
  Terms.push_back(std::move(T));
  Interned.insert(Raw);
  return Raw;
}

TermRef TermArena::constant(ValueRef V) {
  auto T = std::unique_ptr<Term>(new Term(Term::Kind::Const));
  T->ConstVal = std::move(V);
  return intern(std::move(T));
}

TermRef TermArena::freshSym(const std::string &Name, TypeRef Ty) {
  auto T = std::unique_ptr<Term>(new Term(Term::Kind::Sym));
  T->SymId = NextSymId++;
  T->SymName = Name;
  T->Ty = std::move(Ty);
  return intern(std::move(T));
}

TermRef TermArena::rawApp(Term::Kind K, UnaryOp UOp, BinaryOp BOp,
                          BuiltinKind BK, std::vector<TermRef> Args,
                          TypeRef Ty) {
  auto T = std::unique_ptr<Term>(new Term(K));
  T->UOp = UOp;
  T->BOp = BOp;
  T->BK = BK;
  T->Args = std::move(Args);
  T->Ty = std::move(Ty);
  return intern(std::move(T));
}

//===----------------------------------------------------------------------===//
// Normalizing constructors
//===----------------------------------------------------------------------===//

namespace {
bool allConst(const std::vector<TermRef> &Args) {
  for (TermRef A : Args)
    if (!A->isConst())
      return false;
  return true;
}

std::vector<ValueRef> constArgs(const std::vector<TermRef> &Args) {
  std::vector<ValueRef> Vals;
  Vals.reserve(Args.size());
  for (TermRef A : Args)
    Vals.push_back(A->ConstVal);
  return Vals;
}
} // namespace

TermRef TermArena::unary(UnaryOp Op, TermRef A) {
  if (Op == UnaryOp::Neg) {
    // Canonical: -x == (-1) * x, so all linear arithmetic lives in Add/Mul.
    return binary(BinaryOp::Mul, intConst(-1), A);
  }
  // Not.
  if (A->isConst())
    return boolConst(!A->ConstVal->getBool());
  if (A->K == Term::Kind::Unary && A->UOp == UnaryOp::Not)
    return A->Args[0];
  return rawApp(Term::Kind::Unary, UnaryOp::Not, BinaryOp::Add,
                BuiltinKind::PairMk, {A}, nullptr);
}

TermRef TermArena::buildAC(BinaryOp Op, std::vector<TermRef> Operands) {
  // Flatten nested applications of the same operator.
  std::vector<TermRef> Flat;
  while (!Operands.empty()) {
    TermRef T = Operands.back();
    Operands.pop_back();
    if (T->K == Term::Kind::Binary && T->BOp == Op) {
      Operands.push_back(T->Args[0]);
      Operands.push_back(T->Args[1]);
    } else {
      Flat.push_back(T);
    }
  }

  // Fold constants.
  std::vector<TermRef> Rest;
  bool SawConst = false;
  int64_t IntAcc = (Op == BinaryOp::Mul) ? 1 : 0;
  bool BoolAcc = (Op == BinaryOp::And);
  for (TermRef T : Flat) {
    if (!T->isConst()) {
      Rest.push_back(T);
      continue;
    }
    SawConst = true;
    switch (Op) {
    case BinaryOp::Add:
      IntAcc += T->ConstVal->getInt();
      break;
    case BinaryOp::Mul:
      IntAcc *= T->ConstVal->getInt();
      break;
    case BinaryOp::And:
      BoolAcc = BoolAcc && T->ConstVal->getBool();
      break;
    case BinaryOp::Or:
      BoolAcc = BoolAcc || T->ConstVal->getBool();
      break;
    default:
      assert(false && "not an AC operator");
    }
  }

  // Annihilators and identities.
  if (Op == BinaryOp::Mul && SawConst && IntAcc == 0)
    return intConst(0);
  if (Op == BinaryOp::And && SawConst && !BoolAcc)
    return boolConst(false);
  if (Op == BinaryOp::Or && SawConst && BoolAcc)
    return boolConst(true);

  // Idempotent operators: drop duplicate operands.
  if (Op == BinaryOp::And || Op == BinaryOp::Or) {
    std::sort(Rest.begin(), Rest.end(),
              [](TermRef A, TermRef B) { return A->Id < B->Id; });
    Rest.erase(std::unique(Rest.begin(), Rest.end()), Rest.end());
  } else {
    std::sort(Rest.begin(), Rest.end(),
              [](TermRef A, TermRef B) { return A->Id < B->Id; });
  }

  // Re-attach a non-identity constant.
  if (Op == BinaryOp::Add && SawConst && IntAcc != 0)
    Rest.push_back(intConst(IntAcc));
  if (Op == BinaryOp::Mul && SawConst && IntAcc != 1)
    Rest.push_back(intConst(IntAcc));

  if (Rest.empty()) {
    switch (Op) {
    case BinaryOp::Add:
      return intConst(0);
    case BinaryOp::Mul:
      return intConst(1);
    case BinaryOp::And:
      return boolConst(true);
    case BinaryOp::Or:
      return boolConst(false);
    default:
      break;
    }
  }
  if (Rest.size() == 1)
    return Rest[0];

  // Rebuild left-nested in canonical order.
  TermRef Acc = Rest[0];
  for (size_t I = 1; I < Rest.size(); ++I)
    Acc = rawApp(Term::Kind::Binary, UnaryOp::Neg, Op, BuiltinKind::PairMk,
                 {Acc, Rest[I]}, nullptr);
  return Acc;
}

TermRef TermArena::binary(BinaryOp Op, TermRef A, TermRef B) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::And:
  case BinaryOp::Or:
    return buildAC(Op, {A, B});
  case BinaryOp::Sub:
    return buildAC(BinaryOp::Add,
                   {A, buildAC(BinaryOp::Mul, {intConst(-1), B})});
  case BinaryOp::Div:
  case BinaryOp::Mod: {
    if (A->isConst() && B->isConst())
      return constant(Op == BinaryOp::Div
                          ? vops::divT(A->ConstVal, B->ConstVal)
                          : vops::modT(A->ConstVal, B->ConstVal));
    if (Op == BinaryOp::Div && B->isConstInt(1))
      return A;
    return rawApp(Term::Kind::Binary, UnaryOp::Neg, Op, BuiltinKind::PairMk,
                  {A, B}, nullptr);
  }
  case BinaryOp::Eq: {
    if (A == B)
      return boolConst(true);
    if (A->isConst() && B->isConst())
      return boolConst(Value::equal(A->ConstVal, B->ConstVal));
    if (B->Id < A->Id)
      std::swap(A, B);
    return rawApp(Term::Kind::Binary, UnaryOp::Neg, BinaryOp::Eq,
                  BuiltinKind::PairMk, {A, B}, nullptr);
  }
  case BinaryOp::Ne:
    return unary(UnaryOp::Not, binary(BinaryOp::Eq, A, B));
  case BinaryOp::Lt:
    return binary(BinaryOp::Le, buildAC(BinaryOp::Add, {A, intConst(1)}), B);
  case BinaryOp::Gt:
    return binary(BinaryOp::Le, buildAC(BinaryOp::Add, {B, intConst(1)}), A);
  case BinaryOp::Ge:
    return binary(BinaryOp::Le, B, A);
  case BinaryOp::Le: {
    if (A == B)
      return boolConst(true);
    if (A->isConst() && B->isConst())
      return boolConst(A->ConstVal->getInt() <= B->ConstVal->getInt());
    return rawApp(Term::Kind::Binary, UnaryOp::Neg, BinaryOp::Le,
                  BuiltinKind::PairMk, {A, B}, nullptr);
  }
  case BinaryOp::Implies:
    return binary(BinaryOp::Or, unary(UnaryOp::Not, A), B);
  }
  assert(false && "unhandled binary operator");
  return A;
}

TermRef TermArena::buildACBuiltin(BuiltinKind Kind,
                                  std::vector<TermRef> Operands, TypeRef Ty) {
  // Flatten, split off constants, fold them, sort the rest.
  std::vector<TermRef> Flat;
  while (!Operands.empty()) {
    TermRef T = Operands.back();
    Operands.pop_back();
    if (T->K == Term::Kind::Builtin && T->BK == Kind) {
      Operands.push_back(T->Args[0]);
      Operands.push_back(T->Args[1]);
    } else {
      Flat.push_back(T);
    }
  }
  std::vector<TermRef> Rest;
  ValueRef ConstAcc;
  for (TermRef T : Flat) {
    if (!T->isConst()) {
      Rest.push_back(T);
      continue;
    }
    if (!ConstAcc) {
      ConstAcc = T->ConstVal;
      continue;
    }
    switch (Kind) {
    case BuiltinKind::MsUnion:
      ConstAcc = vops::msUnion(ConstAcc, T->ConstVal);
      break;
    case BuiltinKind::SetUnion:
      ConstAcc = vops::setUnion(ConstAcc, T->ConstVal);
      break;
    default:
      assert(false && "not an AC builtin");
    }
  }
  // Identity elimination: empty multiset / empty set.
  if (ConstAcc && ConstAcc->elems().empty())
    ConstAcc = nullptr;
  std::sort(Rest.begin(), Rest.end(),
            [](TermRef A, TermRef B) { return A->Id < B->Id; });
  if (ConstAcc)
    Rest.push_back(constant(ConstAcc));
  if (Rest.empty())
    return constant(Kind == BuiltinKind::MsUnion
                        ? ValueFactory::emptyMultiset()
                        : ValueFactory::emptySet());
  if (Rest.size() == 1)
    return Rest[0];
  TermRef Acc = Rest[0];
  for (size_t I = 1; I < Rest.size(); ++I)
    Acc = rawApp(Term::Kind::Builtin, UnaryOp::Neg, BinaryOp::Add, Kind,
                 {Acc, Rest[I]}, Ty);
  return Acc;
}

TermRef TermArena::builtin(BuiltinKind Kind, std::vector<TermRef> Args,
                           TypeRef Ty) {
  assert(Args.size() == builtinArity(Kind) && "builtin arity mismatch");

  // `declassify e` is symbolically transparent: its single-run meaning is
  // exactly `e`. The relational release it grants is handled where the
  // product program is built, never inside the term language.
  if (Kind == BuiltinKind::Declassify)
    return Args[0];

  // Constant folding. For partial builtins without a type annotation, fold
  // only when the operation is defined on the arguments.
  if (allConst(Args)) {
    bool CanFold = true;
    switch (Kind) {
    case BuiltinKind::SeqAt:
      CanFold = Ty || vops::seqAt(Args[0]->ConstVal,
                                  Args[1]->ConstVal->getInt())
                          .has_value();
      break;
    case BuiltinKind::SeqHead:
      CanFold = Ty || vops::seqHead(Args[0]->ConstVal).has_value();
      break;
    case BuiltinKind::SeqLast:
      CanFold = Ty || vops::seqLast(Args[0]->ConstVal).has_value();
      break;
    case BuiltinKind::MapGet:
      CanFold =
          Ty || vops::mapGet(Args[0]->ConstVal, Args[1]->ConstVal).has_value();
      break;
    default:
      break;
    }
    if (CanFold)
      return constant(applyBuiltinOp(Kind, constArgs(Args), Ty));
  }

  switch (Kind) {
  case BuiltinKind::SeqConcat:
    // Identity elimination: the empty sequence.
    if (Args[0]->isConst() && Args[0]->ConstVal->elems().empty())
      return Args[1];
    if (Args[1]->isConst() && Args[1]->ConstVal->elems().empty())
      return Args[0];
    break;
  case BuiltinKind::MsAdd:
  case BuiltinKind::SetAdd: {
    // Canonicalize add-chains: collect the spine, sort added elements by
    // term id (multiset/set insertion commutes), dedupe for sets, rebuild.
    TermRef Base = Args[0];
    std::vector<TermRef> Elems = {Args[1]};
    while (Base->K == Term::Kind::Builtin && Base->BK == Kind) {
      Elems.push_back(Base->Args[1]);
      Base = Base->Args[0];
    }
    std::sort(Elems.begin(), Elems.end(),
              [](TermRef A, TermRef B) { return A->Id < B->Id; });
    if (Kind == BuiltinKind::SetAdd)
      Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    // Fold constant elements into a constant base.
    if (Base->isConst()) {
      ValueRef Acc = Base->ConstVal;
      std::vector<TermRef> Rest;
      for (TermRef E : Elems) {
        if (E->isConst())
          Acc = Kind == BuiltinKind::MsAdd ? vops::msAdd(Acc, E->ConstVal)
                                           : vops::setAdd(Acc, E->ConstVal);
        else
          Rest.push_back(E);
      }
      Base = constant(Acc);
      Elems = std::move(Rest);
    }
    TermRef AccT = Base;
    for (TermRef E : Elems)
      AccT = rawApp(Term::Kind::Builtin, UnaryOp::Neg, BinaryOp::Add, Kind,
                    {AccT, E}, Ty);
    return AccT;
  }
  case BuiltinKind::Fst:
    if (Args[0]->K == Term::Kind::Builtin &&
        Args[0]->BK == BuiltinKind::PairMk)
      return Args[0]->Args[0];
    break;
  case BuiltinKind::Snd:
    if (Args[0]->K == Term::Kind::Builtin &&
        Args[0]->BK == BuiltinKind::PairMk)
      return Args[0]->Args[1];
    break;
  case BuiltinKind::SeqSort:
    // sort(s) == mset_to_seq(seq_to_mset(s)): canonical multiset view.
    return builtin(BuiltinKind::MsToSeq,
                   {builtin(BuiltinKind::SeqToMs, {Args[0]})}, Ty);
  case BuiltinKind::SeqToMs: {
    TermRef S = Args[0];
    if (S->K == Term::Kind::Builtin) {
      if (S->BK == BuiltinKind::SeqAppend)
        return builtin(BuiltinKind::MsAdd,
                       {builtin(BuiltinKind::SeqToMs, {S->Args[0]}),
                        S->Args[1]});
      if (S->BK == BuiltinKind::SeqConcat)
        return builtin(BuiltinKind::MsUnion,
                       {builtin(BuiltinKind::SeqToMs, {S->Args[0]}),
                        builtin(BuiltinKind::SeqToMs, {S->Args[1]})});
      if (S->BK == BuiltinKind::MsToSeq)
        return S->Args[0]; // mset -> seq -> mset round-trip
    }
    break;
  }
  case BuiltinKind::SeqToSet: {
    TermRef S = Args[0];
    if (S->K == Term::Kind::Builtin) {
      if (S->BK == BuiltinKind::SeqAppend)
        return builtin(BuiltinKind::SetAdd,
                       {builtin(BuiltinKind::SeqToSet, {S->Args[0]}),
                        S->Args[1]});
      if (S->BK == BuiltinKind::SeqConcat)
        return builtin(BuiltinKind::SetUnion,
                       {builtin(BuiltinKind::SeqToSet, {S->Args[0]}),
                        builtin(BuiltinKind::SeqToSet, {S->Args[1]})});
      if (S->BK == BuiltinKind::SetToSeq)
        return S->Args[0]; // set -> seq -> set round-trip
    }
    break;
  }
  case BuiltinKind::SeqLen: {
    TermRef S = Args[0];
    if (S->K == Term::Kind::Builtin) {
      if (S->BK == BuiltinKind::SeqAppend)
        return add(builtin(BuiltinKind::SeqLen, {S->Args[0]}), intConst(1));
      if (S->BK == BuiltinKind::SeqConcat)
        return add(builtin(BuiltinKind::SeqLen, {S->Args[0]}),
                   builtin(BuiltinKind::SeqLen, {S->Args[1]}));
      if (S->BK == BuiltinKind::MsToSeq)
        return builtin(BuiltinKind::MsCard, {S->Args[0]});
      if (S->BK == BuiltinKind::SetToSeq)
        return builtin(BuiltinKind::SetSize, {S->Args[0]});
    }
    break;
  }
  case BuiltinKind::SeqSum: {
    TermRef S = Args[0];
    if (S->K == Term::Kind::Builtin) {
      if (S->BK == BuiltinKind::SeqAppend)
        return add(builtin(BuiltinKind::SeqSum, {S->Args[0]}), S->Args[1]);
      if (S->BK == BuiltinKind::SeqConcat)
        return add(builtin(BuiltinKind::SeqSum, {S->Args[0]}),
                   builtin(BuiltinKind::SeqSum, {S->Args[1]}));
    }
    break;
  }
  case BuiltinKind::SeqMean:
    // No expansion to Div(SeqSum, SeqLen): the concrete semantics define
    // mean as *floor* division (mean([-3, -4]) is -4) while Div truncates
    // toward zero, so that rewrite equates terms that differ on negative
    // sums. Constant arguments fold above through vops::seqMean; symbolic
    // means stay uninterpreted.
    break;
  case BuiltinKind::MsCard: {
    TermRef M = Args[0];
    if (M->K == Term::Kind::Builtin) {
      if (M->BK == BuiltinKind::MsAdd)
        return add(builtin(BuiltinKind::MsCard, {M->Args[0]}), intConst(1));
      if (M->BK == BuiltinKind::MsUnion)
        return add(builtin(BuiltinKind::MsCard, {M->Args[0]}),
                   builtin(BuiltinKind::MsCard, {M->Args[1]}));
      if (M->BK == BuiltinKind::SeqToMs)
        return builtin(BuiltinKind::SeqLen, {M->Args[0]});
      if (M->BK == BuiltinKind::MapValues)
        return builtin(BuiltinKind::MapSize, {M->Args[0]});
    }
    break;
  }
  case BuiltinKind::MapDom: {
    TermRef M = Args[0];
    if (M->K == Term::Kind::Builtin && M->BK == BuiltinKind::MapPut)
      return builtin(BuiltinKind::SetAdd,
                     {builtin(BuiltinKind::MapDom, {M->Args[0]}),
                      M->Args[1]});
    break;
  }
  case BuiltinKind::MapGet:
  case BuiltinKind::MapGetOr: {
    TermRef M = Args[0];
    if (M->K == Term::Kind::Builtin && M->BK == BuiltinKind::MapPut &&
        M->Args[1] == Args[1])
      return M->Args[2]; // get(put(m, k, v), k) == v
    break;
  }
  case BuiltinKind::MsUnion:
  case BuiltinKind::SetUnion:
    return buildACBuiltin(Kind, std::move(Args), Ty);
  case BuiltinKind::Ite:
    if (Args[0]->isConst())
      return Args[0]->ConstVal->getBool() ? Args[1] : Args[2];
    if (Args[1] == Args[2])
      return Args[1];
    break;
  case BuiltinKind::Min:
  case BuiltinKind::Max:
    if (Args[0] == Args[1])
      return Args[0];
    if (Args[1]->Id < Args[0]->Id)
      std::swap(Args[0], Args[1]); // commutative
    break;
  default:
    break;
  }

  return rawApp(Term::Kind::Builtin, UnaryOp::Neg, BinaryOp::Add, Kind,
                std::move(Args), std::move(Ty));
}
