//===-- analysis/Taint.h - Flow-sensitive security-type analysis *- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive taint analysis over security levels in the style of
/// VERONICA's dependency tracking: every variable carries a level from a
/// totally ordered lattice 0 < 1 < ... < N-1 (0 = public), expression levels
/// are joins of their free variables, and implicit flows are captured by a
/// program-counter level derived from the conditions a node is
/// control-dependent on. Shared resources are handled conservatively
/// through their spec's alpha abstraction: only `alpha(state)` is governed
/// by the logic, so values read back out of a resource (`perform` results,
/// `resval`) are top, the accumulated state level tracks everything that
/// flowed in, and performing an action whose declared precondition demands
/// a `low` argument with a high-level argument (or under a high pc) is a
/// sink violation. Scheduling is a channel too: values written by sibling
/// `par` branches — and resource state performed on inside `par` — are
/// schedule-dependent and read as top.
///
/// The analysis is sound-by-construction for the NI harness's observation
/// model (public outputs + low-contracted returns): `ProvablyLow` means no
/// high input can influence any public sink. It makes no completeness
/// claim; anything it cannot prove is a `CandidateLeak` for the verifier.
///
/// `VerifierApprox` mode strengthens the transfer functions to
/// under-approximate the relational verifier (loop heads havoc modified
/// variables except those pinned low by an invariant), so that
/// "strict-provable on the triage fragment" implies the verifier accepts —
/// the soundness condition of the `--triage` fast path.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ANALYSIS_TAINT_H
#define COMMCSL_ANALYSIS_TAINT_H

#include "analysis/CFG.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace commcsl {

/// Security levels assumed for a procedure's parameters and demanded of its
/// returns. Structurally mirrors `hyperviper::LatticeLevels` but lives here
/// so the analysis layer does not depend on the driver layer.
struct TaintLevels {
  /// Level of every parameter (missing = top: an uncontracted parameter is
  /// a potential secret).
  std::map<std::string, unsigned> ParamLevel;
  /// Returns that must end at the given level (only level 0 demands are
  /// statically checkable; others are recorded but not enforced).
  std::map<std::string, unsigned> ReturnLevel;
  unsigned NumLevels = 2;

  unsigned top() const { return NumLevels - 1; }
};

/// Derives the default two-point levels from a procedure's contracts, with
/// the same convention as the NI harness: a parameter or return is low iff
/// the contract contains a bare `low(x)` atom for it (no condition, plain
/// variable); everything else is high.
TaintLevels taintLevelsFromContracts(const ProcDecl &Proc);

/// One sink violation or proof obstacle, with a location for reporting.
struct TaintFinding {
  SourceLoc Loc;
  std::string Message;
};

/// Interprocedural summary of an analyzed procedure, used at call sites.
/// Procedures are summarised in declaration order; calls to procedures
/// without a summary (forward references, recursion) are fully havocked.
struct ProcTaintSummary {
  /// Parameters the procedure's own analysis assumed to be level 0.
  std::set<std::string> LowParams;
  /// Exit level of every return variable under those assumptions.
  std::map<std::string, unsigned> ReturnLevels;
  /// True iff the procedure itself was ProvablyLow: it performs no high
  /// flow into any public sink of its own.
  bool Secure = false;
  /// Effect footprint (transitively conservative): callers havoc the heap /
  /// all resource states when set.
  bool WritesHeap = false;
  bool TouchesResources = false;
};

struct TaintConfig {
  /// Strict verifier-approximation mode used by `--triage` (see \file).
  bool VerifierApprox = false;
  unsigned NumLevels = 2;
};

/// Result of analyzing a single procedure.
struct ProcTaintResult {
  std::string Proc;
  /// The procedure is in the syntactic triage fragment (only meaningful in
  /// VerifierApprox mode; always true otherwise).
  bool Eligible = true;
  /// No high flow reaches any public sink, and every bare-low ensures atom
  /// holds at exit. In VerifierApprox mode this additionally implies the
  /// relational verifier accepts the procedure.
  bool ProvablyLow = false;
  /// Sink violations / proof obstacles, ordered by source location.
  std::vector<TaintFinding> Findings;
  /// Final level of each return variable at procedure exit.
  std::map<std::string, unsigned> ReturnLevels;
  /// Summary for use at later call sites.
  ProcTaintSummary Summary;
};

/// Analyzes \p Proc within \p Prog. \p Summaries maps already-analyzed
/// procedure names to their summaries (may be null).
ProcTaintResult
analyzeProcTaint(const Program &Prog, const ProcDecl &Proc,
                 const TaintConfig &Config,
                 const std::map<std::string, ProcTaintSummary> *Summaries,
                 const TaintLevels &Levels);

/// Convenience overload: levels derived from the contracts.
ProcTaintResult
analyzeProcTaint(const Program &Prog, const ProcDecl &Proc,
                 const TaintConfig &Config = TaintConfig(),
                 const std::map<std::string, ProcTaintSummary> *Summaries =
                     nullptr);

/// True iff \p Proc lies in the syntactic fragment the `--triage` fast path
/// may skip: body built only from skip / var / assign / block / if / while /
/// output, every loop invariant a bare `low(x)` atom, no `output` inside a
/// loop, and every ensures atom a bare `low(x)`.
bool triageEligible(const ProcDecl &Proc);

} // namespace commcsl

#endif // COMMCSL_ANALYSIS_TAINT_H
