//===-- analysis/Analysis.cpp - Whole-program static pre-analysis ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "analysis/Lint.h"

#include <algorithm>

using namespace commcsl;

const char *commcsl::staticVerdictName(StaticVerdict V) {
  switch (V) {
  case StaticVerdict::ProvablyLow:
    return "provably-low";
  case StaticVerdict::CandidateLeak:
    return "candidate-leak";
  }
  return "?";
}

ProgramStaticResult commcsl::analyzeProgram(const Program &Prog,
                                            const TaintConfig &Config) {
  ProgramStaticResult R;
  R.ProvablyLow = true;
  std::map<std::string, ProcTaintSummary> Summaries;

  for (const ProcDecl &Proc : Prog.Procs) {
    ProcTaintResult T = analyzeProcTaint(Prog, Proc, Config, &Summaries);
    Summaries[Proc.Name] = T.Summary;

    // Merge lints and taint sinks into one location-ordered stream.
    DiagnosticEngine Lints;
    lintProc(Proc, Lints);
    std::vector<Diagnostic> Merged = Lints.diagnostics();
    for (const TaintFinding &F : T.Findings)
      Merged.push_back(
          {DiagKind::Warning, DiagCode::LintHighSink, F.Loc, F.Message});
    std::stable_sort(Merged.begin(), Merged.end(),
                     [](const Diagnostic &A, const Diagnostic &B) {
                       if (A.Loc.Line != B.Loc.Line)
                         return A.Loc.Line < B.Loc.Line;
                       if (A.Loc.Column != B.Loc.Column)
                         return A.Loc.Column < B.Loc.Column;
                       if (A.Code != B.Code)
                         return static_cast<int>(A.Code) <
                                static_cast<int>(B.Code);
                       return A.Message < B.Message;
                     });
    bool AnyLint = !Merged.empty();
    for (const Diagnostic &D : Merged)
      R.Diags.report(D.Kind, D.Code, D.Loc, D.Message);

    ProcStaticResult PR;
    PR.Proc = Proc.Name;
    PR.Eligible = T.Eligible;
    PR.Verdict = T.ProvablyLow && !AnyLint ? StaticVerdict::ProvablyLow
                                           : StaticVerdict::CandidateLeak;
    if (PR.Verdict != StaticVerdict::ProvablyLow)
      R.ProvablyLow = false;
    R.Procs.push_back(std::move(PR));
  }
  return R;
}
