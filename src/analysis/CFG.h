//===-- analysis/CFG.h - Control-flow graphs over commands ------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A control-flow graph over `lang::Command` for one procedure body, the
/// substrate of the static pre-analysis passes (taint, uninitialized-use,
/// unreachable-code). The graph is structured-program shaped: every `if`
/// contributes an explicit Branch and Join node, every loop a LoopHead,
/// every `par` a ParFork/ParJoin pair, and every atomic block an
/// AtomicEnter/AtomicExit pair, all with source locations preserved from
/// the underlying AST.
///
/// Concurrency is modelled conservatively for monotone analyses: nodes
/// inside `par` branches carry `InPar` (writes there must be treated as
/// weak updates), each branch exit has a back edge to the fork (so a
/// fixpoint covers every interleaving of branch effects), and each node
/// records `CrossParTop` — the variables written by *sibling* branches,
/// whose reads are schedule-dependent.
///
/// Implicit flows are represented by `PCDeps`: for every node, the ids of
/// the Branch / LoopHead / AtomicEnter(when) nodes it is control-dependent
/// on. For a structured language this is exactly the enclosing-condition
/// chain, so it is computed during construction.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ANALYSIS_CFG_H
#define COMMCSL_ANALYSIS_CFG_H

#include "lang/Program.h"

#include <set>
#include <string>
#include <vector>

namespace commcsl {

/// Discriminator for CFG nodes.
enum class CFGNodeKind : uint8_t {
  Entry,       ///< unique procedure entry
  Exit,        ///< unique procedure exit
  Stmt,        ///< any non-control command (assign, share, perform, ...)
  Branch,      ///< `if` condition; successor 0 = then, 1 = else/join
  Join,        ///< merge point after an `if`
  LoopHead,    ///< `while` condition; successor 0 = body, 1 = after
  ParFork,     ///< start of a `par`; one successor per branch
  ParJoin,     ///< barrier after a `par`
  AtomicEnter, ///< entry of an atomic block (records the resource / when)
  AtomicExit,  ///< exit of an atomic block
};

/// Returns a short stable mnemonic ("entry", "stmt", "branch", ...).
const char *cfgNodeKindName(CFGNodeKind Kind);

/// One node of the graph. Nodes are stored by value in the CFG and refer to
/// each other by index; indices are stable and assigned in a deterministic
/// (syntactic) order.
struct CFGNode {
  CFGNodeKind Kind = CFGNodeKind::Stmt;
  /// The underlying command: the statement itself for Stmt, the `if` for
  /// Branch/Join, the `while` for LoopHead, the `par` for ParFork/ParJoin,
  /// the `atomic` for AtomicEnter/AtomicExit. Null for Entry/Exit.
  const Command *Cmd = nullptr;
  SourceLoc Loc;

  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;

  /// Ids of the Branch/LoopHead/AtomicEnter(when) nodes whose condition
  /// governs whether this node executes (innermost last).
  std::vector<unsigned> PCDeps;

  /// True when the node lies inside at least one `par` branch: analyses
  /// must apply weak updates here.
  bool InPar = false;

  /// Variables written by sibling branches of every enclosing `par`: their
  /// values at this node are schedule-dependent. Includes the pseudo
  /// variable CFG::HeapVar when a sibling writes the heap.
  std::set<std::string> CrossParTop;

  /// For AtomicEnter/AtomicExit, Stmt(Perform/ResVal): the resource handle.
  std::string Res;
  /// For AtomicEnter: the `when` action gating entry ("" = unconditional).
  std::string WhenAction;

  /// Branch: first node of the then / else arm. LoopHead: TrueEdge is the
  /// first body node (the exit edge is every other successor). Lowering
  /// guarantees each arm produces at least one node, so these are always
  /// set for Branch/LoopHead; kNoEdge otherwise.
  static constexpr unsigned kNoEdge = ~0u;
  unsigned TrueEdge = kNoEdge;
  unsigned FalseEdge = kNoEdge;
};

/// The control-flow graph of one procedure body.
class CFG {
public:
  /// Pseudo variable naming the (single abstract cell) heap.
  static const char *HeapVar;

  /// Builds the graph for \p Proc. Never fails: every well-formed command
  /// tree (type-checked or not) has a graph.
  static CFG build(const ProcDecl &Proc);

  const ProcDecl &proc() const { return *Proc; }
  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }
  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }
  const CFGNode &node(unsigned Id) const { return Nodes[Id]; }
  const std::vector<CFGNode> &nodes() const { return Nodes; }

  /// Per-`par`-node (ParFork id) sets of variables modified by each branch,
  /// in branch order. Used by analyses that need write footprints.
  const std::vector<std::vector<std::string>> &
  branchMods(unsigned ForkId) const {
    return BranchModsByFork.at(ForkId);
  }

  /// Renders the graph as an edge list for tests and debugging.
  std::string str() const;

private:
  struct Builder;

  const ProcDecl *Proc = nullptr;
  unsigned Entry = 0;
  unsigned Exit = 0;
  std::vector<CFGNode> Nodes;
  std::map<unsigned, std::vector<std::vector<std::string>>> BranchModsByFork;
};

} // namespace commcsl

#endif // COMMCSL_ANALYSIS_CFG_H
