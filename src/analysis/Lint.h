//===-- analysis/Lint.h - CFG-based lint passes -----------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lint passes over the analysis CFG, reporting deterministic,
/// location-ordered warnings:
///
///  - `lint-uninitialized`: a variable declared without initialiser may be
///    read before any assignment reaches it (including reads in a `par`
///    branch racing ahead of a sibling's initialising write);
///  - `lint-unreachable`: code that can never execute, derived from
///    constant branch/loop conditions and graph reachability;
///  - `lint-outside-atomic`: `perform` / `resval` outside any enclosing
///    atomic block (an AST-level check that works on programs the type
///    checker rejects, so `analyze` can report it alongside type errors).
///
/// The fourth lint of the suite — high data reaching a low sink — is the
/// taint analysis itself; `analysis/Analysis.h` merges its findings into
/// the same diagnostic stream under `lint-high-sink`.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ANALYSIS_LINT_H
#define COMMCSL_ANALYSIS_LINT_H

#include "analysis/CFG.h"
#include "support/Diagnostics.h"

namespace commcsl {

/// Runs the CFG lints for \p Proc, appending warnings to \p Diags in
/// source-location order.
void lintProc(const ProcDecl &Proc, DiagnosticEngine &Diags);

/// Runs lintProc over every procedure of \p Prog (declaration order).
void lintProgram(const Program &Prog, DiagnosticEngine &Diags);

} // namespace commcsl

#endif // COMMCSL_ANALYSIS_LINT_H
