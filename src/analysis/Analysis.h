//===-- analysis/Analysis.h - Whole-program static pre-analysis -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combined static information-flow pre-analysis: per-procedure taint
/// (analysis/Taint.h) plus the lint suite (analysis/Lint.h), producing one
/// deterministic, location-ordered diagnostic stream and a per-procedure /
/// whole-program verdict. `ProvablyLow` is the sound fast-path answer:
/// every public sink is statically independent of high inputs, so the
/// relational proof and the NI sweep cannot find a leak. Anything else is
/// a `CandidateLeak` — a work item for the verifier, not a refutation.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ANALYSIS_ANALYSIS_H
#define COMMCSL_ANALYSIS_ANALYSIS_H

#include "analysis/Taint.h"
#include "support/Diagnostics.h"

namespace commcsl {

enum class StaticVerdict : uint8_t { ProvablyLow, CandidateLeak };

const char *staticVerdictName(StaticVerdict V);

/// Per-procedure outcome.
struct ProcStaticResult {
  std::string Proc;
  StaticVerdict Verdict = StaticVerdict::CandidateLeak;
  /// In VerifierApprox mode: the procedure is in the triage fragment.
  bool Eligible = false;
};

/// Whole-program outcome.
struct ProgramStaticResult {
  std::vector<ProcStaticResult> Procs;
  /// Taint sinks (`lint-high-sink`) and lint warnings, ordered by source
  /// location within each procedure, procedures in declaration order.
  DiagnosticEngine Diags;

  /// Every procedure is ProvablyLow and no lint fired.
  bool ProvablyLow = false;

  const ProcStaticResult *findProc(const std::string &Name) const {
    for (const ProcStaticResult &P : Procs)
      if (P.Proc == Name)
        return &P;
    return nullptr;
  }
};

/// Analyzes every procedure of \p Prog in declaration order, threading
/// summaries through call sites. Deterministic: depends only on \p Prog
/// and \p Config.
ProgramStaticResult analyzeProgram(const Program &Prog,
                                   const TaintConfig &Config = TaintConfig());

} // namespace commcsl

#endif // COMMCSL_ANALYSIS_ANALYSIS_H
