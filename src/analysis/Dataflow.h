//===-- analysis/Dataflow.h - Monotone dataflow framework -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic monotone dataflow framework over `analysis::CFG`: a worklist
/// solver parameterised by a problem type providing a join-semilattice of
/// states and a per-node transfer function. Both forward and backward
/// direction are supported. The solver is deterministic: the worklist is an
/// ordered set of node ids, so the iteration order — and therefore any
/// observable side effect of the transfer functions — depends only on the
/// graph, never on timing.
///
/// A problem type `P` must provide:
///
///   using State = ...;                 // copyable lattice element
///   State boundary(const CFG &G);      // initial state at entry (or exit)
///   State bottom(const CFG &G);        // least element
///   // Joins Src into Dst; returns true iff Dst changed.
///   bool join(State &Dst, const State &Src);
///   // Computes the post-state of node Id from its pre-state.
///   State transfer(const CFG &G, unsigned Id, const State &In);
///
/// Termination is the problem's obligation: transfer must be monotone and
/// the lattice must have finite height (all in-tree problems use maps into
/// finite level sets, which do).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ANALYSIS_DATAFLOW_H
#define COMMCSL_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <set>
#include <vector>

namespace commcsl {

enum class DataflowDirection : uint8_t { Forward, Backward };

/// Fixpoint result: one pre- and one post-state per node, indexed by node
/// id. For a backward problem, "pre" is the state *after* the node in
/// program order and "post" the state before it — i.e. pre/post are always
/// relative to the flow direction.
template <typename P> struct DataflowResult {
  std::vector<typename P::State> In;
  std::vector<typename P::State> Out;
};

/// Runs \p Problem over \p G to fixpoint and returns the per-node states.
template <typename P>
DataflowResult<P> solveDataflow(
    const CFG &G, P &Problem,
    DataflowDirection Direction = DataflowDirection::Forward) {
  const unsigned N = G.size();
  DataflowResult<P> R;
  R.In.assign(N, Problem.bottom(G));
  R.Out.assign(N, Problem.bottom(G));

  const bool Fwd = Direction == DataflowDirection::Forward;
  const unsigned Boundary = Fwd ? G.entry() : G.exit();
  R.In[Boundary] = Problem.boundary(G);

  // Ordered worklist: lowest node id first. Node ids are assigned in
  // syntactic order, which for a forward problem approximates reverse
  // post-order, and the ordering makes every run identical.
  std::set<unsigned> Worklist;
  for (unsigned I = 0; I < N; ++I)
    Worklist.insert(I);

  while (!Worklist.empty()) {
    unsigned Id = *Worklist.begin();
    Worklist.erase(Worklist.begin());

    if (Id != Boundary) {
      typename P::State In = Problem.bottom(G);
      const std::vector<unsigned> &Preds =
          Fwd ? G.node(Id).Preds : G.node(Id).Succs;
      for (unsigned Pr : Preds)
        Problem.join(In, R.Out[Pr]);
      R.In[Id] = std::move(In);
    }

    typename P::State Out = Problem.transfer(G, Id, R.In[Id]);
    if (Problem.join(R.Out[Id], Out)) {
      const std::vector<unsigned> &Succs =
          Fwd ? G.node(Id).Succs : G.node(Id).Preds;
      for (unsigned S : Succs)
        Worklist.insert(S);
    }
  }
  return R;
}

} // namespace commcsl

#endif // COMMCSL_ANALYSIS_DATAFLOW_H
