//===-- analysis/Lint.cpp - CFG-based lint passes -------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <functional>

using namespace commcsl;

namespace {

//===----------------------------------------------------------------------===//
// Uninitialized-variable use
//===----------------------------------------------------------------------===//

/// May-uninitialized set: a variable is in the state when some path to the
/// node declares it without an initialiser and no write reaches it since.
/// Union join; the par back-edges keep the "sibling has not run yet" path
/// alive, so a read racing with a sibling's initialising write is caught.
struct UninitProblem {
  using State = std::set<std::string>;

  State bottom(const CFG &) const { return {}; }
  State boundary(const CFG &) const { return {}; }

  bool join(State &Dst, const State &Src) const {
    bool Changed = false;
    for (const std::string &V : Src)
      Changed |= Dst.insert(V).second;
    return Changed;
  }

  State transfer(const CFG &G, unsigned Id, const State &In) const {
    const CFGNode &N = G.node(Id);
    State Out = In;
    if (N.Kind != CFGNodeKind::Stmt || !N.Cmd)
      return Out;
    const Command &C = *N.Cmd;
    switch (C.Kind) {
    case CmdKind::VarDecl:
      if (C.Exprs.empty())
        Out.insert(C.Var);
      else
        Out.erase(C.Var);
      break;
    case CmdKind::Assign:
    case CmdKind::HeapRead:
    case CmdKind::Alloc:
    case CmdKind::Unshare:
    case CmdKind::ResVal:
      Out.erase(C.Var);
      break;
    case CmdKind::Perform:
      if (!C.Var.empty())
        Out.erase(C.Var);
      break;
    case CmdKind::CallProc:
      for (const std::string &R : C.Rets)
        Out.erase(R);
      break;
    default:
      break;
    }
    return Out;
  }
};

void collectExprVars(const ExprRef &E, std::set<std::string> &Out) {
  if (!E)
    return;
  std::vector<std::string> Vars;
  E->freeVars(Vars);
  Out.insert(Vars.begin(), Vars.end());
}

void lintUninitialized(const CFG &G, std::vector<Diagnostic> &Out) {
  UninitProblem P;
  DataflowResult<UninitProblem> DF = solveDataflow(G, P);

  // One diagnostic per (command, variable), at the reading node.
  std::set<std::pair<const Command *, std::string>> Seen;
  for (unsigned Id = 0; Id < G.size(); ++Id) {
    const CFGNode &N = G.node(Id);
    if (!N.Cmd)
      continue;
    // Ghost contexts (assert, invariants) are skipped: they bind spec
    // variables the dataflow does not model.
    if (N.Kind == CFGNodeKind::Stmt && N.Cmd->Kind == CmdKind::AssertGhost)
      continue;
    std::set<std::string> Read;
    switch (N.Kind) {
    case CFGNodeKind::Stmt:
      for (const ExprRef &E : N.Cmd->Exprs)
        collectExprVars(E, Read);
      break;
    case CFGNodeKind::Branch:
    case CFGNodeKind::LoopHead:
      collectExprVars(N.Cmd->Exprs[0], Read);
      break;
    default:
      continue;
    }
    for (const std::string &V : Read)
      if (DF.In[Id].count(V) && Seen.insert({N.Cmd, V}).second)
        Out.push_back({DiagKind::Warning, DiagCode::LintUninitialized, N.Loc,
                       "variable '" + V +
                           "' may be read before initialization"});
  }
}

//===----------------------------------------------------------------------===//
// Unreachable code
//===----------------------------------------------------------------------===//

bool constBoolCond(const CFGNode &N, bool &Val) {
  if (!N.Cmd || N.Cmd->Exprs.empty() || !N.Cmd->Exprs[0])
    return false;
  const Expr &E = *N.Cmd->Exprs[0];
  if (E.Kind != ExprKind::BoolLit)
    return false;
  Val = E.BoolVal;
  return true;
}

void lintUnreachable(const CFG &G, std::vector<Diagnostic> &Out) {
  // Dead edges from constant conditions.
  std::set<std::pair<unsigned, unsigned>> Dead;
  for (unsigned Id = 0; Id < G.size(); ++Id) {
    const CFGNode &N = G.node(Id);
    bool Val = false;
    if (N.Kind == CFGNodeKind::Branch && constBoolCond(N, Val)) {
      if (N.TrueEdge != N.FalseEdge)
        Dead.insert({Id, Val ? N.FalseEdge : N.TrueEdge});
    } else if (N.Kind == CFGNodeKind::LoopHead && constBoolCond(N, Val)) {
      if (Val) {
        for (unsigned S : N.Succs)
          if (S != N.TrueEdge)
            Dead.insert({Id, S}); // `while (true)`: the exit edge is dead
      } else {
        Dead.insert({Id, N.TrueEdge}); // `while (false)`: the body is dead
      }
    }
  }

  std::vector<bool> Reach(G.size(), false);
  std::vector<unsigned> Stack = {G.entry()};
  Reach[G.entry()] = true;
  while (!Stack.empty()) {
    unsigned Id = Stack.back();
    Stack.pop_back();
    for (unsigned S : G.node(Id).Succs)
      if (!Reach[S] && !Dead.count({Id, S})) {
        Reach[S] = true;
        Stack.push_back(S);
      }
  }

  // Report only region heads: unreachable nodes every one of whose
  // predecessors is reachable (the statements that follow are implied).
  for (unsigned Id = 0; Id < G.size(); ++Id) {
    const CFGNode &N = G.node(Id);
    if (Reach[Id] || !N.Cmd)
      continue;
    switch (N.Kind) {
    case CFGNodeKind::Stmt:
    case CFGNodeKind::Branch:
    case CFGNodeKind::LoopHead:
    case CFGNodeKind::ParFork:
    case CFGNodeKind::AtomicEnter:
      break;
    default:
      continue;
    }
    bool RegionHead = N.Preds.empty();
    for (unsigned Pr : N.Preds)
      if (Reach[Pr])
        RegionHead = true;
    if (RegionHead)
      Out.push_back({DiagKind::Warning, DiagCode::LintUnreachable, N.Loc,
                     "unreachable code"});
  }
}

//===----------------------------------------------------------------------===//
// Shared-action use outside atomic blocks
//===----------------------------------------------------------------------===//

void lintOutsideAtomic(const Command &C, bool InAtomic,
                       std::vector<Diagnostic> &Out) {
  switch (C.Kind) {
  case CmdKind::Perform:
    if (!InAtomic)
      Out.push_back({DiagKind::Warning, DiagCode::LintOutsideAtomic, C.Loc,
                     "perform of action '" +
                         (C.Rets.empty() ? std::string("?") : C.Rets[0]) +
                         "' outside an atomic block"});
    break;
  case CmdKind::ResVal:
    if (!InAtomic)
      Out.push_back({DiagKind::Warning, DiagCode::LintOutsideAtomic, C.Loc,
                     "resval outside an atomic block"});
    break;
  case CmdKind::Atomic:
    for (const CommandRef &Child : C.Children)
      if (Child)
        lintOutsideAtomic(*Child, /*InAtomic=*/true, Out);
    return;
  default:
    break;
  }
  for (const CommandRef &Child : C.Children)
    if (Child)
      lintOutsideAtomic(*Child, InAtomic, Out);
}

} // namespace

void commcsl::lintProc(const ProcDecl &Proc, DiagnosticEngine &Diags) {
  std::vector<Diagnostic> Out;
  CFG G = CFG::build(Proc);
  lintUninitialized(G, Out);
  lintUnreachable(G, Out);
  if (Proc.Body)
    lintOutsideAtomic(*Proc.Body, /*InAtomic=*/false, Out);

  std::stable_sort(Out.begin(), Out.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     if (A.Loc.Column != B.Loc.Column)
                       return A.Loc.Column < B.Loc.Column;
                     if (A.Code != B.Code)
                       return static_cast<int>(A.Code) <
                              static_cast<int>(B.Code);
                     return A.Message < B.Message;
                   });
  for (const Diagnostic &D : Out)
    Diags.report(D.Kind, D.Code, D.Loc, D.Message);
}

void commcsl::lintProgram(const Program &Prog, DiagnosticEngine &Diags) {
  for (const ProcDecl &P : Prog.Procs)
    lintProc(P, Diags);
}
