//===-- analysis/CFG.cpp - Control-flow graphs over commands --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <sstream>

using namespace commcsl;

const char *CFG::HeapVar = "!heap";

const char *commcsl::cfgNodeKindName(CFGNodeKind Kind) {
  switch (Kind) {
  case CFGNodeKind::Entry:
    return "entry";
  case CFGNodeKind::Exit:
    return "exit";
  case CFGNodeKind::Stmt:
    return "stmt";
  case CFGNodeKind::Branch:
    return "branch";
  case CFGNodeKind::Join:
    return "join";
  case CFGNodeKind::LoopHead:
    return "loophead";
  case CFGNodeKind::ParFork:
    return "parfork";
  case CFGNodeKind::ParJoin:
    return "parjoin";
  case CFGNodeKind::AtomicEnter:
    return "atomicenter";
  case CFGNodeKind::AtomicExit:
    return "atomicexit";
  }
  return "?";
}

namespace {

/// Key naming the abstract state of resource handle \p Res in analysis
/// domains and cross-par write sets.
std::string resKey(const std::string &Res) { return "!res:" + Res; }

/// Collects the write footprint of \p C as analysis keys: plain variables,
/// CFG::HeapVar for heap effects, and `!res:<r>` for resource-state effects.
/// CallProc is conservative — the callee may write the heap and may perform
/// actions on any resource reachable through its arguments ("!res:*").
void collectWrites(const Command &C, std::set<std::string> &Out) {
  switch (C.Kind) {
  case CmdKind::VarDecl:
  case CmdKind::Assign:
    Out.insert(C.Var);
    break;
  case CmdKind::HeapRead:
    Out.insert(C.Var);
    break;
  case CmdKind::Alloc:
    Out.insert(C.Var);
    Out.insert(CFG::HeapVar);
    break;
  case CmdKind::HeapWrite:
    Out.insert(CFG::HeapVar);
    break;
  case CmdKind::CallProc:
    for (const std::string &R : C.Rets)
      Out.insert(R);
    Out.insert(CFG::HeapVar);
    Out.insert(resKey("*"));
    break;
  case CmdKind::Share:
    Out.insert(resKey(C.Var));
    break;
  case CmdKind::Unshare:
    Out.insert(C.Var);
    Out.insert(resKey(C.Aux));
    break;
  case CmdKind::Perform:
    if (!C.Var.empty())
      Out.insert(C.Var);
    Out.insert(resKey(C.Aux));
    break;
  case CmdKind::ResVal:
    Out.insert(C.Var);
    break;
  case CmdKind::Skip:
  case CmdKind::AssertGhost:
  case CmdKind::Output:
    break;
  case CmdKind::Block:
  case CmdKind::If:
  case CmdKind::While:
  case CmdKind::Par:
  case CmdKind::Atomic:
    for (const CommandRef &Child : C.Children)
      if (Child)
        collectWrites(*Child, Out);
    break;
  }
}

} // namespace

struct CFG::Builder {
  CFG &G;
  std::vector<unsigned> PCStack;
  std::set<std::string> CrossPar;
  unsigned ParDepth = 0;

  explicit Builder(CFG &G) : G(G) {}

  unsigned newNode(CFGNodeKind Kind, const Command *Cmd, SourceLoc Loc) {
    CFGNode N;
    N.Kind = Kind;
    N.Cmd = Cmd;
    N.Loc = Loc;
    N.PCDeps = PCStack;
    N.InPar = ParDepth > 0;
    N.CrossParTop = CrossPar;
    G.Nodes.push_back(std::move(N));
    return static_cast<unsigned>(G.Nodes.size() - 1);
  }

  void connect(unsigned From, unsigned To) {
    std::vector<unsigned> &S = G.Nodes[From].Succs;
    if (std::find(S.begin(), S.end(), To) != S.end())
      return;
    S.push_back(To);
    G.Nodes[To].Preds.push_back(From);
  }

  void connectAll(const std::vector<unsigned> &Frontier, unsigned To) {
    for (unsigned From : Frontier)
      connect(From, To);
  }

  /// Lowers \p C with incoming edges from \p Frontier; returns the new
  /// frontier (the nodes falling through to whatever follows \p C).
  std::vector<unsigned> lower(const Command &C,
                              std::vector<unsigned> Frontier) {
    switch (C.Kind) {
    case CmdKind::Block: {
      // An empty block still gets a node, so every command's lowering
      // produces at least one — the invariant behind TrueEdge/FalseEdge.
      if (C.Children.empty()) {
        unsigned Id = newNode(CFGNodeKind::Stmt, &C, C.Loc);
        connectAll(Frontier, Id);
        return {Id};
      }
      for (const CommandRef &Child : C.Children)
        if (Child)
          Frontier = lower(*Child, std::move(Frontier));
      return Frontier;
    }

    case CmdKind::If: {
      unsigned Br = newNode(CFGNodeKind::Branch, &C, C.Loc);
      connectAll(Frontier, Br);
      PCStack.push_back(Br);
      unsigned ThenFirst = static_cast<unsigned>(G.Nodes.size());
      std::vector<unsigned> ThenExit = lower(*C.Children[0], {Br});
      unsigned ElseFirst = static_cast<unsigned>(G.Nodes.size());
      std::vector<unsigned> ElseExit = lower(*C.Children[1], {Br});
      PCStack.pop_back();
      G.Nodes[Br].TrueEdge = ThenFirst;
      G.Nodes[Br].FalseEdge = ElseFirst;
      unsigned Jn = newNode(CFGNodeKind::Join, &C, C.Loc);
      connectAll(ThenExit, Jn);
      connectAll(ElseExit, Jn);
      return {Jn};
    }

    case CmdKind::While: {
      unsigned Head = newNode(CFGNodeKind::LoopHead, &C, C.Loc);
      connectAll(Frontier, Head);
      PCStack.push_back(Head);
      unsigned BodyFirst = static_cast<unsigned>(G.Nodes.size());
      std::vector<unsigned> BodyExit = lower(*C.Children[0], {Head});
      PCStack.pop_back();
      G.Nodes[Head].TrueEdge = BodyFirst;
      connectAll(BodyExit, Head); // back edge
      return {Head};
    }

    case CmdKind::Par: {
      unsigned Fork = newNode(CFGNodeKind::ParFork, &C, C.Loc);
      connectAll(Frontier, Fork);

      // Write footprint of every branch, for sibling schedule-taint.
      std::vector<std::set<std::string>> Mods(C.Children.size());
      for (size_t I = 0; I < C.Children.size(); ++I)
        collectWrites(*C.Children[I], Mods[I]);
      std::vector<std::vector<std::string>> ModsList;
      for (const std::set<std::string> &M : Mods)
        ModsList.emplace_back(M.begin(), M.end());
      G.BranchModsByFork.emplace(Fork, std::move(ModsList));

      std::vector<std::vector<unsigned>> BranchExits;
      for (size_t I = 0; I < C.Children.size(); ++I) {
        std::set<std::string> SavedCross = CrossPar;
        for (size_t J = 0; J < C.Children.size(); ++J)
          if (J != I)
            CrossPar.insert(Mods[J].begin(), Mods[J].end());
        ++ParDepth;
        BranchExits.push_back(lower(*C.Children[I], {Fork}));
        --ParDepth;
        CrossPar = std::move(SavedCross);
      }

      // Vars written by two or more branches are schedule-dependent at the
      // join even though each branch's own view joins cleanly.
      std::set<std::string> SavedCross = CrossPar;
      std::map<std::string, unsigned> WriteCount;
      for (const std::set<std::string> &M : Mods)
        for (const std::string &V : M)
          ++WriteCount[V];
      for (const auto &[V, N] : WriteCount)
        if (N >= 2)
          CrossPar.insert(V);
      unsigned Jn = newNode(CFGNodeKind::ParJoin, &C, C.Loc);
      CrossPar = std::move(SavedCross);

      for (const std::vector<unsigned> &Exits : BranchExits) {
        connectAll(Exits, Jn);
        // Back edge: a branch's effects can precede any other branch's
        // reads, so the fork re-enters until the branch states stabilise.
        connectAll(Exits, Fork);
      }
      return {Jn};
    }

    case CmdKind::Atomic: {
      unsigned Enter = newNode(CFGNodeKind::AtomicEnter, &C, C.Loc);
      G.Nodes[Enter].Res = C.Aux;
      G.Nodes[Enter].WhenAction = C.Var;
      connectAll(Frontier, Enter);
      // `atomic r when A` is control-dependent on the resource state.
      bool HasWhen = !C.Var.empty();
      if (HasWhen)
        PCStack.push_back(Enter);
      std::vector<unsigned> BodyExit = lower(*C.Children[0], {Enter});
      if (HasWhen)
        PCStack.pop_back();
      unsigned Exit = newNode(CFGNodeKind::AtomicExit, &C, C.Loc);
      G.Nodes[Exit].Res = C.Aux;
      connectAll(BodyExit, Exit);
      return {Exit};
    }

    default: {
      unsigned Id = newNode(CFGNodeKind::Stmt, &C, C.Loc);
      switch (C.Kind) {
      case CmdKind::Share:
        G.Nodes[Id].Res = C.Var;
        break;
      case CmdKind::Unshare:
      case CmdKind::Perform:
      case CmdKind::ResVal:
        G.Nodes[Id].Res = C.Aux;
        break;
      default:
        break;
      }
      connectAll(Frontier, Id);
      return {Id};
    }
    }
  }
};

CFG CFG::build(const ProcDecl &Proc) {
  CFG G;
  G.Proc = &Proc;
  Builder B(G);
  G.Entry = B.newNode(CFGNodeKind::Entry, nullptr, Proc.Loc);
  std::vector<unsigned> Frontier = {G.Entry};
  if (Proc.Body)
    Frontier = B.lower(*Proc.Body, std::move(Frontier));
  G.Exit = B.newNode(CFGNodeKind::Exit, nullptr, Proc.Loc);
  B.connectAll(Frontier, G.Exit);
  return G;
}

std::string CFG::str() const {
  std::ostringstream OS;
  OS << "cfg " << (Proc ? Proc->Name : "?") << " (" << Nodes.size()
     << " nodes)\n";
  for (unsigned I = 0; I < Nodes.size(); ++I) {
    const CFGNode &N = Nodes[I];
    OS << "  n" << I << " " << cfgNodeKindName(N.Kind);
    if (!N.Res.empty())
      OS << " res=" << N.Res;
    if (!N.WhenAction.empty())
      OS << " when=" << N.WhenAction;
    if (N.Loc.isValid())
      OS << " @" << N.Loc.str();
    if (N.InPar)
      OS << " inpar";
    if (!N.PCDeps.empty()) {
      OS << " pc=[";
      for (size_t J = 0; J < N.PCDeps.size(); ++J)
        OS << (J ? "," : "") << "n" << N.PCDeps[J];
      OS << "]";
    }
    if (!N.CrossParTop.empty()) {
      OS << " xpar={";
      bool First = true;
      for (const std::string &V : N.CrossParTop) {
        OS << (First ? "" : ",") << V;
        First = false;
      }
      OS << "}";
    }
    OS << " ->";
    for (unsigned S : N.Succs)
      OS << " n" << S;
    OS << "\n";
  }
  return OS.str();
}
