//===-- analysis/Taint.cpp - Flow-sensitive security-type analysis --------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

#include "analysis/Dataflow.h"
#include "lang/ExprEval.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

using namespace commcsl;

namespace {

std::string resKey(const std::string &Res) { return "!res:" + Res; }

/// If \p A is a bare `low(x)` atom over a plain variable, returns the
/// variable name; null otherwise.
const std::string *bareLowVar(const ContractAtom &A) {
  if (A.AtomKind != ContractAtom::Kind::Low || A.Cond || !A.E ||
      A.E->Kind != ExprKind::Var)
    return nullptr;
  return &A.E->Name;
}

/// If \p A is a conditional classification over a plain variable
/// (`level(x) = if g then low else high`, or `g ==> low(x)`), returns the
/// variable name; null otherwise.
const std::string *condLowVar(const ContractAtom &A) {
  if (A.AtomKind != ContractAtom::Kind::Low || !A.Cond || !A.E ||
      A.E->Kind != ExprKind::Var)
    return nullptr;
  return &A.E->Name;
}

bool exprHasCall(const ExprRef &E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Call)
    return true;
  for (const ExprRef &A : E->Args)
    if (exprHasCall(A))
      return true;
  return false;
}

bool exprHasDivMod(const ExprRef &E);

/// Statically evaluates a level guard when it is closed (no free
/// variables, no function calls, no div/mod whose abort semantics the
/// total folder would miss). Everything else is statically unknown: the
/// analysis must then join the classified variable to High — the in-state
/// truth of the guard is only available to the relational verifier and
/// the NI harness.
std::optional<bool> closedGuardValue(const ExprRef &G) {
  if (!G)
    return std::nullopt;
  std::vector<std::string> Vars;
  G->freeVars(Vars);
  if (!Vars.empty() || exprHasCall(G) || exprHasDivMod(G))
    return std::nullopt;
  ExprEvaluator Eval(nullptr);
  return Eval.eval(*G, EvalEnv())->getBool();
}

bool exprHasDeclassify(const ExprRef &E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Builtin && E->Builtin == BuiltinKind::Declassify)
    return true;
  for (const ExprRef &A : E->Args)
    if (exprHasDeclassify(A))
      return true;
  return false;
}

using State = std::map<std::string, unsigned>;

unsigned levelOf(const State &S, const std::string &V) {
  auto It = S.find(V);
  return It == S.end() ? 0 : It->second;
}

/// Sets \p V to \p L; a weak update joins with the existing level instead
/// (required inside `par` branches, where the write races with siblings'
/// reads of the old value across the fork fixpoint).
void setLevel(State &S, const std::string &V, unsigned L, bool Weak) {
  if (Weak)
    L = std::max(L, levelOf(S, V));
  if (L == 0)
    S.erase(V);
  else
    S[V] = L;
}

bool crossTop(const CFGNode &N, const std::string &V) {
  if (N.CrossParTop.count(V))
    return true;
  // A callee in a sibling branch may touch any resource.
  return V.rfind("!res:", 0) == 0 && N.CrossParTop.count("!res:*");
}

bool exprHasDivMod(const ExprRef &E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Binary &&
      (E->BOp == BinaryOp::Div || E->BOp == BinaryOp::Mod))
    return true;
  for (const ExprRef &A : E->Args)
    if (exprHasDivMod(A))
      return true;
  return false;
}

/// The dataflow problem: levels for every variable plus the pseudo keys
/// `!heap` and `!res:<r>`. The per-node pc level lives outside the state
/// (recomputed by an outer fixpoint), so the transfer reads it from `PC`.
struct TaintProblem {
  using State = ::State;

  const Program &Prog;
  const TaintConfig &Cfg;
  const TaintLevels &Levels;
  const std::map<std::string, ProcTaintSummary> *Summaries;
  const std::map<std::string, std::string> &HandleSpecs;
  std::vector<unsigned> PC; // per node id

  unsigned top() const { return Cfg.NumLevels - 1; }

  State bottom(const CFG &) const { return {}; }

  State boundary(const CFG &G) const {
    State S;
    for (const Param &P : G.proc().Params) {
      auto It = Levels.ParamLevel.find(P.Name);
      unsigned L = It == Levels.ParamLevel.end() ? top() : It->second;
      setLevel(S, P.Name, L, /*Weak=*/false);
      // A resource handed in carries an unknown accumulated state.
      if (P.Ty && P.Ty->kind() == TypeKind::Resource)
        setLevel(S, resKey(P.Name), top(), /*Weak=*/false);
    }
    return S;
  }

  bool join(State &Dst, const State &Src) const {
    bool Changed = false;
    for (const auto &[V, L] : Src) {
      unsigned &Slot = Dst[V];
      if (L > Slot) {
        Slot = L;
        Changed = true;
      }
    }
    return Changed;
  }

  unsigned exprLevel(const ExprRef &E, const State &S,
                     const CFGNode &N) const {
    if (!E)
      return 0;
    switch (E->Kind) {
    case ExprKind::Var: {
      unsigned L = levelOf(S, E->Name);
      if (crossTop(N, E->Name))
        L = top();
      return L;
    }
    case ExprKind::Builtin:
      if (E->Builtin == BuiltinKind::Declassify)
        return 0; // released: audited separately as an explicit sink
      break;
    default:
      break;
    }
    unsigned L = 0;
    for (const ExprRef &A : E->Args)
      L = std::max(L, exprLevel(A, S, N));
    return L;
  }

  /// Level of the condition governing pc-successors of node \p Id.
  unsigned condLevel(const CFG &G, unsigned Id, const State &In) const {
    const CFGNode &N = G.node(Id);
    switch (N.Kind) {
    case CFGNodeKind::Branch:
    case CFGNodeKind::LoopHead:
      return exprLevel(N.Cmd->Exprs[0], In, N);
    case CFGNodeKind::AtomicEnter: {
      // `atomic r when A`: proceeding at all reveals the enabledness of A
      // on the shared state.
      std::string Key = resKey(N.Res);
      unsigned L = levelOf(In, Key);
      if (crossTop(N, Key))
        L = top();
      return L;
    }
    default:
      return 0;
    }
  }

  State transfer(const CFG &G, unsigned Id, const State &In) const {
    const CFGNode &N = G.node(Id);
    State Out = In;
    unsigned Pc = PC[Id];
    bool Weak = N.InPar;

    switch (N.Kind) {
    case CFGNodeKind::Entry:
    case CFGNodeKind::Exit:
    case CFGNodeKind::Branch:
    case CFGNodeKind::Join:
    case CFGNodeKind::ParFork:
    case CFGNodeKind::AtomicEnter:
    case CFGNodeKind::AtomicExit:
      return Out;

    case CFGNodeKind::LoopHead:
      if (Cfg.VerifierApprox && N.Cmd) {
        // The relational verifier enters the body knowing only the loop
        // invariant: havoc every modified variable except those pinned by
        // a bare `low(x)` invariant atom (their preservation is checked
        // against the fixpoint state at the head).
        std::vector<std::string> Mods;
        N.Cmd->Children[0]->modifiedVars(Mods);
        std::set<std::string> Pinned;
        for (const Contract &Inv : N.Cmd->Invariants)
          for (const ContractAtom &A : Inv)
            if (const std::string *V = bareLowVar(A))
              Pinned.insert(*V);
        for (const std::string &V : Mods)
          if (!Pinned.count(V))
            setLevel(Out, V, top(), /*Weak=*/false);
      }
      return Out;

    case CFGNodeKind::ParJoin:
      // Values written by two or more branches are schedule-dependent.
      for (const std::string &V : N.CrossParTop)
        setLevel(Out, V, top(), /*Weak=*/true);
      return Out;

    case CFGNodeKind::Stmt:
      break;
    }

    const Command &C = *N.Cmd;
    switch (C.Kind) {
    case CmdKind::Skip:
    case CmdKind::AssertGhost:
    case CmdKind::Output: // sink; checked in the reporting pass
    case CmdKind::Block:  // empty block placeholder
      break;

    case CmdKind::VarDecl: {
      unsigned L = C.Exprs.empty() ? 0 : exprLevel(C.Exprs[0], In, N);
      setLevel(Out, C.Var, std::max(L, Pc), Weak);
      break;
    }
    case CmdKind::Assign:
      setLevel(Out, C.Var, std::max(exprLevel(C.Exprs[0], In, N), Pc), Weak);
      break;

    case CmdKind::HeapRead: {
      unsigned L = levelOf(In, CFG::HeapVar);
      if (crossTop(N, CFG::HeapVar))
        L = top();
      L = std::max({L, exprLevel(C.Exprs[0], In, N), Pc});
      setLevel(Out, C.Var, L, Weak);
      break;
    }
    case CmdKind::HeapWrite:
      setLevel(Out, CFG::HeapVar,
               std::max({exprLevel(C.Exprs[0], In, N),
                         exprLevel(C.Exprs[1], In, N), Pc}),
               /*Weak=*/true);
      break;
    case CmdKind::Alloc:
      // Addresses are allocation-order dependent: the count of prior
      // allocations is a function of every branch taken so far (and of the
      // schedule under par), which the pc rule does not capture. Top.
      setLevel(Out, C.Var, top(), Weak);
      setLevel(Out, CFG::HeapVar,
               std::max(exprLevel(C.Exprs[0], In, N), Pc), /*Weak=*/true);
      break;

    case CmdKind::Share:
      setLevel(Out, resKey(C.Var), std::max(exprLevel(C.Exprs[0], In, N), Pc),
               Weak);
      break;
    case CmdKind::Perform: {
      std::string Key = resKey(C.Aux);
      setLevel(Out, Key, std::max(exprLevel(C.Exprs[0], In, N), Pc),
               /*Weak=*/true);
      // Interleaving order of concurrent actions is a channel of its own:
      // the paper recovers low(alpha(state)) only for *valid* specs, and
      // the concrete state underneath is schedule-dependent regardless.
      if (N.InPar)
        setLevel(Out, Key, top(), /*Weak=*/true);
      // The action's return value is computed from the hidden pre-state;
      // only alpha(state) is governed by the contract, so it is top (this
      // matches the verifier's fresh-high-symbol rule).
      if (!C.Var.empty())
        setLevel(Out, C.Var, top(), Weak);
      break;
    }
    case CmdKind::ResVal:
      setLevel(Out, C.Var, top(), Weak);
      break;
    case CmdKind::Unshare: {
      std::string Key = resKey(C.Aux);
      unsigned L = levelOf(In, Key);
      if (crossTop(N, Key))
        L = top();
      setLevel(Out, C.Var, std::max(L, Pc), Weak);
      break;
    }

    case CmdKind::CallProc: {
      const ProcDecl *Callee = Prog.findProc(C.Aux);
      const ProcTaintSummary *S = nullptr;
      if (Summaries) {
        auto It = Summaries->find(C.Aux);
        if (It != Summaries->end())
          S = &It->second;
      }
      bool AssumeOk = S && Callee;
      if (AssumeOk)
        for (size_t I = 0; I < Callee->Params.size() && I < C.Exprs.size();
             ++I)
          if (S->LowParams.count(Callee->Params[I].Name) &&
              exprLevel(C.Exprs[I], In, N) > 0) {
            AssumeOk = false;
            break;
          }
      // Ret target I receives callee return variable I's summarised exit
      // level (top when the summary's low-param assumptions are not met).
      for (size_t I = 0; I < C.Rets.size(); ++I) {
        unsigned L = top();
        if (AssumeOk && I < Callee->Returns.size()) {
          auto It = S->ReturnLevels.find(Callee->Returns[I].Name);
          L = It == S->ReturnLevels.end() ? top() : It->second;
        }
        setLevel(Out, C.Rets[I], std::max(L, Pc), Weak);
      }
      if (!S || S->WritesHeap)
        setLevel(Out, CFG::HeapVar, top(), /*Weak=*/true);
      if (!S || S->TouchesResources)
        for (const auto &[Handle, Spec] : HandleSpecs) {
          (void)Spec;
          setLevel(Out, resKey(Handle), top(), /*Weak=*/true);
        }
      break;
    }

    case CmdKind::If:
    case CmdKind::While:
    case CmdKind::Par:
    case CmdKind::Atomic:
      break; // represented by dedicated node kinds
    }
    return Out;
  }
};

/// Maps every resource handle that appears in the procedure to its spec
/// name: `share` sites bind handle -> spec, resource-typed parameters carry
/// it in their type.
std::map<std::string, std::string> handleSpecs(const ProcDecl &Proc) {
  std::map<std::string, std::string> M;
  for (const Param &P : Proc.Params)
    if (P.Ty && P.Ty->kind() == TypeKind::Resource)
      M[P.Name] = P.Ty->resourceSpec();
  std::function<void(const Command &)> Walk = [&](const Command &C) {
    if (C.Kind == CmdKind::Share)
      M[C.Var] = C.Aux;
    for (const CommandRef &Child : C.Children)
      if (Child)
        Walk(*Child);
  };
  if (Proc.Body)
    Walk(*Proc.Body);
  return M;
}

std::string levelStr(unsigned L, unsigned NumLevels) {
  if (NumLevels == 2)
    return L == 0 ? "low" : "high";
  return "level " + std::to_string(L);
}

} // namespace

TaintLevels commcsl::taintLevelsFromContracts(const ProcDecl &Proc) {
  TaintLevels L;
  L.NumLevels = 2;
  std::set<std::string> LowReq, LowEns;
  for (const ContractAtom &A : Proc.Requires) {
    if (const std::string *V = bareLowVar(A))
      LowReq.insert(*V);
    // A conditional classification whose guard folds to true statically is
    // a bare low; any other guard is statically unknown, so the parameter
    // stays high (the relational verifier and the NI harness evaluate the
    // guard in-state instead).
    else if (const std::string *CV = condLowVar(A))
      if (closedGuardValue(A.Cond) == std::optional<bool>(true))
        LowReq.insert(*CV);
  }
  for (const ContractAtom &A : Proc.Ensures) {
    if (const std::string *V = bareLowVar(A))
      LowEns.insert(*V);
    else if (const std::string *CV = condLowVar(A))
      if (closedGuardValue(A.Cond) == std::optional<bool>(true))
        LowEns.insert(*CV);
  }
  for (const Param &P : Proc.Params)
    L.ParamLevel[P.Name] = LowReq.count(P.Name) ? 0 : L.top();
  for (const Param &R : Proc.Returns)
    if (LowEns.count(R.Name))
      L.ReturnLevel[R.Name] = 0;
  return L;
}

bool commcsl::triageEligible(const ProcDecl &Proc) {
  for (const ContractAtom &A : Proc.Ensures)
    if (!bareLowVar(A))
      return false;
  // Conditional requires atoms shrink the input relation, which triage's
  // bare-fragment reasoning cannot exploit but also must not rely on; a
  // declassify anywhere switches the property from plain non-interference
  // to delimited release, which triage does not model.
  for (const ContractAtom &A : Proc.Requires)
    if (A.AtomKind == ContractAtom::Kind::Low && A.Cond)
      return false;
  std::function<bool(const Command &, bool)> Ok = [&](const Command &C,
                                                      bool InLoop) -> bool {
    for (const ExprRef &E : C.Exprs) {
      if (exprHasDivMod(E)) // possible abort: outside the skip fragment
        return false;
      if (exprHasDeclassify(E))
        return false;
    }
    switch (C.Kind) {
    case CmdKind::Skip:
    case CmdKind::Assign:
      return true;
    case CmdKind::VarDecl:
      return !C.Exprs.empty(); // uninitialised decls are not modelled
    case CmdKind::Output:
      return !InLoop; // per-iteration output counts need loop reasoning
    case CmdKind::Block:
      for (const CommandRef &Child : C.Children)
        if (!Child || !Ok(*Child, InLoop))
          return false;
      return true;
    case CmdKind::If:
      return Ok(*C.Children[0], InLoop) && Ok(*C.Children[1], InLoop);
    case CmdKind::While:
      for (const Contract &Inv : C.Invariants)
        for (const ContractAtom &A : Inv)
          if (!bareLowVar(A))
            return false;
      return Ok(*C.Children[0], /*InLoop=*/true);
    default:
      return false;
    }
  };
  return !Proc.Body || Ok(*Proc.Body, /*InLoop=*/false);
}

ProcTaintResult commcsl::analyzeProcTaint(
    const Program &Prog, const ProcDecl &Proc, const TaintConfig &Config,
    const std::map<std::string, ProcTaintSummary> *Summaries,
    const TaintLevels &Levels) {
  ProcTaintResult R;
  R.Proc = Proc.Name;
  R.Eligible = !Config.VerifierApprox || triageEligible(Proc);

  CFG G = CFG::build(Proc);
  std::map<std::string, std::string> Handles = handleSpecs(Proc);

  TaintProblem P{Prog,    Config, Levels, Summaries,
                 Handles, std::vector<unsigned>(G.size(), 0)};
  const unsigned Top = P.top();

  // Outer pc fixpoint: solve with the current pc assignment, recompute
  // every node's pc from the governing conditions' levels, repeat until
  // stable. Levels only grow, so this terminates within
  // NumLevels * |nodes| rounds.
  DataflowResult<TaintProblem> DF;
  for (unsigned Round = 0; Round <= Config.NumLevels * G.size() + 1;
       ++Round) {
    DF = solveDataflow(G, P);
    std::vector<unsigned> Cond(G.size(), 0);
    for (unsigned I = 0; I < G.size(); ++I)
      Cond[I] = P.condLevel(G, I, DF.In[I]);
    bool Changed = false;
    for (unsigned I = 0; I < G.size(); ++I) {
      unsigned Pc = 0;
      for (unsigned D : G.node(I).PCDeps)
        Pc = std::max(Pc, Cond[D]);
      if (Pc != P.PC[I]) {
        P.PC[I] = std::max(P.PC[I], Pc);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Reporting pass over the fixpoint states.
  std::vector<TaintFinding> Findings;
  auto Report = [&](SourceLoc Loc, std::string Msg) {
    Findings.push_back({Loc, std::move(Msg)});
  };

  for (unsigned Id = 0; Id < G.size(); ++Id) {
    const CFGNode &N = G.node(Id);
    const State &In = DF.In[Id];
    unsigned Pc = P.PC[Id];

    if (Config.VerifierApprox && N.Kind == CFGNodeKind::LoopHead) {
      if (P.condLevel(G, Id, In) > 0)
        Report(N.Loc, "loop condition is not provably low");
      std::set<std::string> Pinned;
      for (const Contract &Inv : N.Cmd->Invariants)
        for (const ContractAtom &A : Inv)
          if (const std::string *V = bareLowVar(A))
            Pinned.insert(*V);
      for (const std::string &V : Pinned)
        if (levelOf(In, V) > 0 || crossTop(N, V))
          Report(N.Loc, "loop invariant low(" + V +
                            ") does not hold at the loop head");
    }

    if (N.Kind != CFGNodeKind::Stmt)
      continue;
    const Command &C = *N.Cmd;

    switch (C.Kind) {
    case CmdKind::Output: {
      unsigned L = P.exprLevel(C.Exprs[0], In, N);
      if (N.InPar)
        Report(C.Loc, "output inside par: emission order is "
                      "schedule-dependent");
      if (L > 0)
        Report(C.Loc, "public output depends on " +
                          levelStr(L, Config.NumLevels) + " data");
      else if (Pc > 0)
        Report(C.Loc, "public output under " +
                          levelStr(Pc, Config.NumLevels) +
                          " control flow");
      break;
    }
    case CmdKind::Perform: {
      // Performing an action whose declared relational precondition
      // demands a low argument is a sink: check against the spec.
      auto HIt = Handles.find(C.Aux);
      const ResourceSpecDecl *Spec =
          HIt == Handles.end() ? nullptr : Prog.findSpec(HIt->second);
      const ActionDecl *Act =
          Spec && !C.Rets.empty() ? Spec->findAction(C.Rets[0]) : nullptr;
      if (Act) {
        bool NeedsLow = false;
        for (const ContractAtom &A : Act->Pre)
          if (A.AtomKind == ContractAtom::Kind::Low && !A.Cond)
            NeedsLow = true;
        if (NeedsLow) {
          unsigned L = std::max(P.exprLevel(C.Exprs[0], In, N), Pc);
          if (L > 0)
            Report(C.Loc, "action '" + Act->Name +
                              "' requires a low argument but receives " +
                              levelStr(L, Config.NumLevels) + " data");
        }
      }
      break;
    }
    case CmdKind::CallProc: {
      const ProcDecl *Callee = Prog.findProc(C.Aux);
      const ProcTaintSummary *S = nullptr;
      if (Summaries) {
        auto It = Summaries->find(C.Aux);
        if (It != Summaries->end())
          S = &It->second;
      }
      if (!S || !Callee) {
        Report(C.Loc, "call to procedure '" + C.Aux +
                          "' with no prior static summary");
        break;
      }
      if (!S->Secure)
        Report(C.Loc, "call to procedure '" + C.Aux +
                          "' that is not statically secure");
      if (Pc > 0)
        Report(C.Loc, "procedure call under " +
                          levelStr(Pc, Config.NumLevels) + " control flow");
      for (size_t I = 0; I < Callee->Params.size() && I < C.Exprs.size();
           ++I)
        if (S->LowParams.count(Callee->Params[I].Name)) {
          unsigned L = P.exprLevel(C.Exprs[I], In, N);
          if (L > 0)
            Report(C.Loc, "argument for low parameter '" +
                              Callee->Params[I].Name + "' of '" + C.Aux +
                              "' has " + levelStr(L, Config.NumLevels) +
                              " data");
        }
      break;
    }
    default:
      break;
    }
  }

  // Exit obligations: bare-low ensures atoms must hold; anything beyond
  // the bare fragment is out of static reach.
  const State &ExitIn = DF.In[G.exit()];
  for (const Param &Ret : Proc.Returns)
    R.ReturnLevels[Ret.Name] = levelOf(ExitIn, Ret.Name);
  for (const auto &[V, Want] : Levels.ReturnLevel)
    if (Want == 0 && levelOf(ExitIn, V) > 0)
      Report(Proc.Loc, "return '" + V + "' must be low but has " +
                           levelStr(levelOf(ExitIn, V), Config.NumLevels) +
                           " data at exit");
  for (const ContractAtom &A : Proc.Ensures) {
    if (bareLowVar(A))
      continue;
    if (const std::string *V = condLowVar(A)) {
      std::optional<bool> G = closedGuardValue(A.Cond);
      if (G == std::optional<bool>(true))
        continue; // enforced via Levels.ReturnLevel above
      if (G == std::optional<bool>(false))
        continue; // vacuous: classifies nothing
      Report(A.Loc.isValid() ? A.Loc : Proc.Loc,
             "level guard for '" + *V +
                 "' is not statically decidable; treating it as high "
                 "(the relational verifier evaluates it in-state)");
      continue;
    }
    Report(A.Loc.isValid() ? A.Loc : Proc.Loc,
           "ensures atom beyond the static fragment: " + A.str());
  }

  // Every declassify site is an explicit, audited release: surface it so
  // the analysis never reports a releasing body as plainly non-interferent.
  {
    std::function<void(const Command &)> WalkRelease = [&](const Command &C) {
      for (const ExprRef &E : C.Exprs)
        if (exprHasDeclassify(E))
          Report(C.Loc, "declassify release: secure only under delimited "
                        "release, not plain non-interference");
      for (const CommandRef &Child : C.Children)
        if (Child)
          WalkRelease(*Child);
    };
    if (Proc.Body)
      WalkRelease(*Proc.Body);
  }

  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const TaintFinding &A, const TaintFinding &B) {
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     if (A.Loc.Column != B.Loc.Column)
                       return A.Loc.Column < B.Loc.Column;
                     return A.Message < B.Message;
                   });
  Findings.erase(std::unique(Findings.begin(), Findings.end(),
                             [](const TaintFinding &A,
                                const TaintFinding &B) {
                               return A.Loc.Line == B.Loc.Line &&
                                      A.Loc.Column == B.Loc.Column &&
                                      A.Message == B.Message;
                             }),
                 Findings.end());
  R.Findings = std::move(Findings);
  R.ProvablyLow = R.Eligible && R.Findings.empty();

  // Summary for later call sites.
  for (const auto &[V, L] : Levels.ParamLevel)
    if (L == 0)
      R.Summary.LowParams.insert(V);
  R.Summary.ReturnLevels = R.ReturnLevels;
  R.Summary.Secure = R.ProvablyLow;
  for (const CFGNode &N : G.nodes()) {
    if (N.Kind == CFGNodeKind::Stmt && N.Cmd) {
      switch (N.Cmd->Kind) {
      case CmdKind::HeapWrite:
      case CmdKind::Alloc:
        R.Summary.WritesHeap = true;
        break;
      case CmdKind::CallProc:
        R.Summary.WritesHeap = true;
        R.Summary.TouchesResources = true;
        break;
      case CmdKind::Share:
      case CmdKind::Unshare:
      case CmdKind::Perform:
      case CmdKind::ResVal:
        R.Summary.TouchesResources = true;
        break;
      default:
        break;
      }
    }
    if (N.Kind == CFGNodeKind::AtomicEnter)
      R.Summary.TouchesResources = true;
  }
  (void)Top;
  return R;
}

ProcTaintResult
commcsl::analyzeProcTaint(const Program &Prog, const ProcDecl &Proc,
                          const TaintConfig &Config,
                          const std::map<std::string, ProcTaintSummary>
                              *Summaries) {
  TaintLevels Levels = taintLevelsFromContracts(Proc);
  Levels.NumLevels = Config.NumLevels;
  return analyzeProcTaint(Prog, Proc, Config, Summaries, Levels);
}
