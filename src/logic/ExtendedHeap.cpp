//===-- logic/ExtendedHeap.cpp - Extended heaps (Sec. 3.3) -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "logic/ExtendedHeap.h"

#include "value/ValueOps.h"

using namespace commcsl;

std::optional<PermHeap> PermHeap::add(const PermHeap &A, const PermHeap &B) {
  PermHeap Out = A;
  for (const auto &[Loc, Entry] : B.Cells) {
    auto It = Out.Cells.find(Loc);
    if (It == Out.Cells.end()) {
      Out.Cells.emplace(Loc, Entry);
      continue;
    }
    // Eq. (6): amounts add to at most 1 and the values must agree.
    if (It->second.second != Entry.second)
      return std::nullopt;
    Frac Sum = It->second.first + Entry.first;
    if (Frac::one() < Sum)
      return std::nullopt;
    It->second.first = Sum;
  }
  return Out;
}

std::map<int64_t, int64_t> PermHeap::normalize() const {
  std::map<int64_t, int64_t> H;
  for (const auto &[Loc, Entry] : Cells)
    H.emplace(Loc, Entry.second);
  return H;
}

std::optional<SharedGuardState>
SharedGuardState::add(const SharedGuardState &A, const SharedGuardState &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  Frac Sum = A.Amount + B.Amount;
  if (Frac::one() < Sum)
    return std::nullopt;
  return SharedGuardState::make(Sum, vops::msUnion(A.Args, B.Args));
}

bool SharedGuardState::operator==(const SharedGuardState &O) const {
  if (Bottom != O.Bottom)
    return false;
  if (Bottom)
    return true;
  return Amount == O.Amount && Value::equal(Args, O.Args);
}

std::optional<UniqueGuardState>
UniqueGuardState::add(const UniqueGuardState &A, const UniqueGuardState &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  return std::nullopt; // Eq. (3): unique guards cannot be split.
}

bool UniqueGuardState::operator==(const UniqueGuardState &O) const {
  if (Bottom != O.Bottom)
    return false;
  if (Bottom)
    return true;
  return Value::equal(Args, O.Args);
}

std::optional<ExtendedHeap> ExtendedHeap::add(const ExtendedHeap &A,
                                              const ExtendedHeap &B) {
  ExtendedHeap Out;
  std::optional<PermHeap> PH = PermHeap::add(A.PH, B.PH);
  if (!PH)
    return std::nullopt;
  Out.PH = std::move(*PH);
  std::optional<SharedGuardState> GS = SharedGuardState::add(A.GS, B.GS);
  if (!GS)
    return std::nullopt;
  Out.GS = std::move(*GS);
  // Pointwise family addition.
  Out.GU = A.GU;
  for (const auto &[Name, G] : B.GU) {
    auto It = Out.GU.find(Name);
    if (It == Out.GU.end()) {
      Out.GU.emplace(Name, G);
      continue;
    }
    std::optional<UniqueGuardState> Sum = UniqueGuardState::add(It->second, G);
    if (!Sum)
      return std::nullopt;
    It->second = std::move(*Sum);
  }
  return Out;
}

bool ExtendedHeap::noGuards() const {
  if (!GS.Bottom)
    return false;
  for (const auto &[Name, G] : GU) {
    (void)Name;
    if (!G.Bottom)
      return false;
  }
  return true;
}
