//===-- logic/ExtendedHeap.h - Extended heaps (Sec. 3.3) --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable model of the paper's extended heaps (Sec. 3.3, App. B.1): a
/// permission heap with fractional ownership, a shared-action guard state
/// (fraction + multiset of recorded arguments), and a family of unique-
/// action guard states (bottom or a sequence of recorded arguments). The
/// partial addition operator implements equations (3)-(6); `normalize`
/// erases permissions to recover an ordinary heap.
///
/// This model is what the logic-level unit tests exercise: guard-state
/// addition is a partial commutative monoid, unique guards cannot be
/// split, and fractional sums cannot exceed 1.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LOGIC_EXTENDEDHEAP_H
#define COMMCSL_LOGIC_EXTENDEDHEAP_H

#include "support/Frac.h"
#include "value/Value.h"

#include <map>
#include <optional>
#include <string>

namespace commcsl {

/// A permission heap: location -> (amount, value). Amounts lie in (0, 1].
struct PermHeap {
  std::map<int64_t, std::pair<Frac, int64_t>> Cells;

  /// Partial addition (App. B.1, Eq. (5)/(6)): amounts add up to at most 1
  /// and values must agree on overlaps.
  static std::optional<PermHeap> add(const PermHeap &A, const PermHeap &B);

  bool hasFullPermission(int64_t Loc) const {
    auto It = Cells.find(Loc);
    return It != Cells.end() && It->second.first.isOne();
  }

  /// The ordinary heap underneath (drops amounts).
  std::map<int64_t, int64_t> normalize() const;
};

/// Shared-action guard state: bottom, or a fraction with the multiset of
/// arguments recorded so far.
struct SharedGuardState {
  bool Bottom = true;
  Frac Amount;
  ValueRef Args; ///< multiset value

  static SharedGuardState bottom() { return {}; }
  static SharedGuardState make(Frac F, ValueRef Multiset) {
    SharedGuardState G;
    G.Bottom = false;
    G.Amount = F;
    G.Args = std::move(Multiset);
    return G;
  }

  /// Partial addition (Eq. (4)): fractions add (at most 1), argument
  /// multisets take their union.
  static std::optional<SharedGuardState> add(const SharedGuardState &A,
                                             const SharedGuardState &B);

  bool operator==(const SharedGuardState &O) const;
};

/// Unique-action guard state: bottom or the full argument sequence.
struct UniqueGuardState {
  bool Bottom = true;
  ValueRef Args; ///< sequence value

  static UniqueGuardState bottom() { return {}; }
  static UniqueGuardState make(ValueRef Seq) {
    UniqueGuardState G;
    G.Bottom = false;
    G.Args = std::move(Seq);
    return G;
  }

  /// Partial addition (Eq. (3)): at most one summand may be non-bottom —
  /// unique guards cannot be split.
  static std::optional<UniqueGuardState> add(const UniqueGuardState &A,
                                             const UniqueGuardState &B);

  bool operator==(const UniqueGuardState &O) const;
};

/// An extended heap: permission heap + shared guard + unique guard family
/// (indexed by action name).
struct ExtendedHeap {
  PermHeap PH;
  SharedGuardState GS;
  std::map<std::string, UniqueGuardState> GU;

  /// Pointwise partial addition of all components.
  static std::optional<ExtendedHeap> add(const ExtendedHeap &A,
                                         const ExtendedHeap &B);

  /// All guard states bottom (the `noguard` side condition, App. B.4).
  bool noGuards() const;
};

} // namespace commcsl

#endif // COMMCSL_LOGIC_EXTENDEDHEAP_H
