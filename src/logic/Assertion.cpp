//===-- logic/Assertion.cpp - Relational assertions (Fig. 7) ---------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "logic/Assertion.h"

#include "value/ValueOps.h"

#include <set>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

AsrtRef Asrt::emp() { return AsrtRef(new Asrt(Kind::Emp)); }

AsrtRef Asrt::boolE(ExprRef B) {
  auto *A = new Asrt(Kind::BoolE);
  A->E1 = std::move(B);
  return AsrtRef(A);
}

AsrtRef Asrt::pointsTo(ExprRef Loc, Frac Perm, ExprRef Val) {
  auto *A = new Asrt(Kind::PointsTo);
  A->E1 = std::move(Loc);
  A->E2 = std::move(Val);
  A->Perm = Perm;
  return AsrtRef(A);
}

AsrtRef Asrt::star(AsrtRef P, AsrtRef Q) {
  auto *A = new Asrt(Kind::Star);
  A->Sub = {std::move(P), std::move(Q)};
  return AsrtRef(A);
}

AsrtRef Asrt::exists(std::string Var, TypeRef Ty, AsrtRef P) {
  auto *A = new Asrt(Kind::Exists);
  A->Name = std::move(Var);
  A->BinderTy = std::move(Ty);
  A->Sub = {std::move(P)};
  return AsrtRef(A);
}

AsrtRef Asrt::sguard(Frac Perm, ExprRef ArgsMultiset) {
  auto *A = new Asrt(Kind::SGuard);
  A->Perm = Perm;
  A->E1 = std::move(ArgsMultiset);
  return AsrtRef(A);
}

AsrtRef Asrt::uguard(std::string Action, ExprRef ArgsSeq) {
  auto *A = new Asrt(Kind::UGuard);
  A->Name = std::move(Action);
  A->E1 = std::move(ArgsSeq);
  return AsrtRef(A);
}

AsrtRef Asrt::imp(ExprRef Cond, AsrtRef P) {
  auto *A = new Asrt(Kind::Imp);
  A->E1 = std::move(Cond);
  A->Sub = {std::move(P)};
  return AsrtRef(A);
}

AsrtRef Asrt::low(ExprRef E) {
  auto *A = new Asrt(Kind::Low);
  A->E1 = std::move(E);
  return AsrtRef(A);
}

bool Asrt::isUnary() const {
  if (K == Kind::Low)
    return false;
  for (const AsrtRef &S : Sub)
    if (!S->isUnary())
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Satisfaction (consuming style)
//===----------------------------------------------------------------------===//

bool AssertionChecker::satisfies(const LogicState &S1, const LogicState &S2,
                                 const Asrt &P) const {
  EvalEnv St1 = S1.Store, St2 = S2.Store;
  ExtendedHeap H1 = S1.Heap, H2 = S2.Heap;
  if (!consume(St1, H1, St2, H2, P))
    return false;
  // Fig. 7 describes states exactly: nothing may remain.
  return H1.PH.Cells.empty() && H2.PH.Cells.empty() && H1.noGuards() &&
         H2.noGuards();
}

bool AssertionChecker::consume(EvalEnv &St1, ExtendedHeap &H1, EvalEnv &St2,
                               ExtendedHeap &H2, const Asrt &P) const {
  switch (P.K) {
  case Asrt::Kind::Emp:
    return true;
  case Asrt::Kind::BoolE:
    return Eval.eval(*P.E1, St1)->getBool() &&
           Eval.eval(*P.E1, St2)->getBool();
  case Asrt::Kind::Low:
    return Value::equal(Eval.eval(*P.E1, St1), Eval.eval(*P.E1, St2));
  case Asrt::Kind::PointsTo: {
    auto Sides = {std::pair<EvalEnv *, ExtendedHeap *>{&St1, &H1},
                  std::pair<EvalEnv *, ExtendedHeap *>{&St2, &H2}};
    for (auto [StP, HP] : Sides) {
      EvalEnv &St = *StP;
      ExtendedHeap &H = *HP;
      int64_t Loc = Eval.eval(*P.E1, St)->getInt();
      int64_t Val = Eval.eval(*P.E2, St)->getInt();
      auto It = H.PH.Cells.find(Loc);
      if (It == H.PH.Cells.end() || It->second.second != Val ||
          It->second.first < P.Perm)
        return false;
      Frac Left = It->second.first - P.Perm;
      if (Left.isZero())
        H.PH.Cells.erase(It);
      else
        It->second.first = Left;
    }
    return true;
  }
  case Asrt::Kind::Star:
    return consume(St1, H1, St2, H2, *P.Sub[0]) &&
           consume(St1, H1, St2, H2, *P.Sub[1]);
  case Asrt::Kind::Exists: {
    // Independent witnesses per state (Fig. 7).
    DomainRef Dom = P.BinderTy->toDomain(Scope);
    std::vector<ValueRef> Witnesses = Dom->enumerate(64);
    for (const ValueRef &V1 : Witnesses) {
      for (const ValueRef &V2 : Witnesses) {
        EvalEnv T1 = St1, T2 = St2;
        ExtendedHeap G1 = H1, G2 = H2;
        T1[P.Name] = V1;
        T2[P.Name] = V2;
        if (consume(T1, G1, T2, G2, *P.Sub[0])) {
          St1 = std::move(T1);
          St2 = std::move(T2);
          H1 = std::move(G1);
          H2 = std::move(G2);
          return true;
        }
      }
    }
    return false;
  }
  case Asrt::Kind::SGuard: {
    auto Sides = {std::pair<EvalEnv *, ExtendedHeap *>{&St1, &H1},
                  std::pair<EvalEnv *, ExtendedHeap *>{&St2, &H2}};
    for (auto [StP, HP] : Sides) {
      EvalEnv &St = *StP;
      ExtendedHeap &H = *HP;
      if (H.GS.Bottom || H.GS.Amount < P.Perm)
        return false;
      ValueRef Want = Eval.eval(*P.E1, St);
      // The claimed multiset must be contained in the recorded one.
      ValueRef Missing = vops::msDiff(Want, H.GS.Args);
      if (!Missing->elems().empty())
        return false;
      Frac Left = H.GS.Amount - P.Perm;
      ValueRef Rest = vops::msDiff(H.GS.Args, Want);
      if (Left.isZero() && Rest->elems().empty())
        H.GS = SharedGuardState::bottom();
      else if (Left.isZero())
        return false; // leftover arguments without a fraction to carry them
      else
        H.GS = SharedGuardState::make(Left, Rest);
    }
    return true;
  }
  case Asrt::Kind::UGuard: {
    auto Sides = {std::pair<EvalEnv *, ExtendedHeap *>{&St1, &H1},
                  std::pair<EvalEnv *, ExtendedHeap *>{&St2, &H2}};
    for (auto [StP, HP] : Sides) {
      EvalEnv &St = *StP;
      ExtendedHeap &H = *HP;
      auto It = H.GU.find(P.Name);
      if (It == H.GU.end() || It->second.Bottom)
        return false;
      if (!Value::equal(It->second.Args, Eval.eval(*P.E1, St)))
        return false;
      It->second = UniqueGuardState::bottom();
    }
    return true;
  }
  case Asrt::Kind::Imp: {
    ValueRef C1 = Eval.eval(*P.E1, St1);
    ValueRef C2 = Eval.eval(*P.E1, St2);
    if (!Value::equal(C1, C2))
      return false; // the condition must be low (Fig. 7)
    if (!C1->getBool())
      return true;
    return consume(St1, H1, St2, H2, *P.Sub[0]);
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// PRE (Def. 3.2)
//===----------------------------------------------------------------------===//

namespace {
/// Backtracking search for a perfect pre-respecting matching.
bool matchBijection(const RSpecRuntime &Runtime, const ActionDecl &Action,
                    const std::vector<ValueRef> &A,
                    std::vector<ValueRef> &B, size_t Index) {
  if (Index == A.size())
    return true;
  for (size_t J = Index; J < B.size(); ++J) {
    if (!Runtime.preHolds(Action, A[Index], B[J]))
      continue;
    std::swap(B[Index], B[J]);
    if (matchBijection(Runtime, Action, A, B, Index + 1))
      return true;
    std::swap(B[Index], B[J]);
  }
  return false;
}
} // namespace

bool commcsl::preBijectionShared(const RSpecRuntime &Runtime,
                                 const ActionDecl &Action,
                                 const ValueRef &Args1,
                                 const ValueRef &Args2) {
  assert(Args1->kind() == ValueKind::Multiset &&
         Args2->kind() == ValueKind::Multiset && "PRE_s over multisets");
  if (Args1->elems().size() != Args2->elems().size())
    return false;
  std::vector<ValueRef> A = Args1->elems();
  std::vector<ValueRef> B = Args2->elems();
  return matchBijection(Runtime, Action, A, B, 0);
}

bool commcsl::preUnique(const RSpecRuntime &Runtime, const ActionDecl &Action,
                        const ValueRef &Args1, const ValueRef &Args2) {
  assert(Args1->kind() == ValueKind::Seq &&
         Args2->kind() == ValueKind::Seq && "PRE_i over sequences");
  if (Args1->elems().size() != Args2->elems().size())
    return false; // Low(|e|)
  for (size_t I = 0; I < Args1->elems().size(); ++I)
    if (!Runtime.preHolds(Action, Args1->elems()[I], Args2->elems()[I]))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Consistency (Sec. 3.5)
//===----------------------------------------------------------------------===//

namespace {
struct ConsistencySearch {
  const RSpecRuntime &Runtime;
  const ValueRef &Final;
  // Remaining arguments: for unique actions a queue (front first); for the
  // shared action(s) an unordered pool.
  std::vector<std::pair<const ActionDecl *, std::vector<ValueRef>>> Remaining;
  std::set<std::string> Visited;

  bool search(const ValueRef &V) {
    bool AllEmpty = true;
    for (const auto &[Action, Args] : Remaining)
      AllEmpty &= Args.empty();
    if (AllEmpty)
      return Value::equal(V, Final);

    // Memoize on (value, remaining footprint).
    std::string Key = V->str();
    for (const auto &[Action, Args] : Remaining) {
      Key += "|" + Action->Name + ":";
      for (const ValueRef &A : Args)
        Key += A->str() + ",";
    }
    if (!Visited.insert(Key).second)
      return false;

    for (auto &[Action, Args] : Remaining) {
      if (Args.empty())
        continue;
      if (Action->Unique) {
        // Order fixed: only the front may fire.
        ValueRef Arg = Args.front();
        Args.erase(Args.begin());
        bool Found = search(Runtime.applyAction(*Action, V, Arg));
        Args.insert(Args.begin(), Arg);
        if (Found)
          return true;
        continue;
      }
      // Shared: any remaining argument may fire; skip duplicates.
      std::set<std::string> Tried;
      for (size_t I = 0; I < Args.size(); ++I) {
        ValueRef Arg = Args[I];
        if (!Tried.insert(Arg->str()).second)
          continue;
        Args.erase(Args.begin() + I);
        bool Found = search(Runtime.applyAction(*Action, V, Arg));
        Args.insert(Args.begin() + I, Arg);
        if (Found)
          return true;
      }
    }
    return false;
  }
};
} // namespace

bool commcsl::consistentWith(
    const RSpecRuntime &Runtime, const ValueRef &Initial,
    const std::map<std::string, ValueRef> &ArgsByAction,
    const ValueRef &Final) {
  ConsistencySearch Search{Runtime, Final, {}, {}};
  for (const auto &[Name, Args] : ArgsByAction) {
    const ActionDecl *Action = Runtime.decl().findAction(Name);
    assert(Action && "unknown action in consistency query");
    assert(((Action->Unique && Args->kind() == ValueKind::Seq) ||
            (!Action->Unique && Args->kind() == ValueKind::Multiset)) &&
           "argument collection kind mismatch");
    Search.Remaining.emplace_back(Action, Args->elems());
  }
  return Search.search(Initial);
}
