//===-- logic/Assertion.h - Relational assertions (Fig. 7) ------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable model of the CommCSL assertion language (Sec. 3.4): emp,
/// boolean expressions, fractional points-to, separating conjunction,
/// conjunction, existentials, guard assertions, implication, and Low(e).
/// Satisfaction is defined over *pairs* of (store, extended heap) states,
/// exactly as in Fig. 7; existentials may pick different witnesses in the
/// two states (which is how `exists x. e |-> x` expresses that e may point
/// to a high value).
///
/// Satisfaction is implemented in a consuming style, which is complete for
/// the precise fragment the logic restricts assertions to (App. B.3).
///
/// The module also provides Def. 3.2's `PRE` predicates — the bijection
/// matching for shared actions and the pointwise check for unique actions
/// — and the consistency relation of Sec. 3.5 (the resource value is a
/// possible result of applying the recorded actions in some interleaving).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LOGIC_ASSERTION_H
#define COMMCSL_LOGIC_ASSERTION_H

#include "lang/ExprEval.h"
#include "logic/ExtendedHeap.h"
#include "rspec/RSpec.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace commcsl {

class Asrt;
using AsrtRef = std::shared_ptr<const Asrt>;

/// A relational assertion.
class Asrt {
public:
  enum class Kind : uint8_t {
    Emp,      ///< empty permission heap
    BoolE,    ///< b (holds in both states)
    PointsTo, ///< e1 |->r e2
    Star,     ///< P * Q
    Exists,   ///< exists x. P (independent witnesses per state)
    SGuard,   ///< sguard(r, e)
    UGuard,   ///< uguard_i(e)
    Imp,      ///< b ==> P (b must be low)
    Low,      ///< Low(e)
  };

  Kind K;
  ExprRef E1, E2; ///< payload expressions
  Frac Perm;      ///< PointsTo / SGuard fraction
  std::string Name; ///< Exists binder; UGuard action index
  TypeRef BinderTy; ///< Exists binder type (bounded enumeration)
  std::vector<AsrtRef> Sub;

  static AsrtRef emp();
  static AsrtRef boolE(ExprRef B);
  static AsrtRef pointsTo(ExprRef Loc, Frac Perm, ExprRef Val);
  static AsrtRef star(AsrtRef P, AsrtRef Q);
  static AsrtRef exists(std::string Var, TypeRef Ty, AsrtRef P);
  static AsrtRef sguard(Frac Perm, ExprRef ArgsMultiset);
  static AsrtRef uguard(std::string Action, ExprRef ArgsSeq);
  static AsrtRef imp(ExprRef Cond, AsrtRef P);
  static AsrtRef low(ExprRef E);

  /// Syntactic unarity (Sec. 3.4): an assertion with no Low sub-assertions
  /// is unary.
  bool isUnary() const;

private:
  explicit Asrt(Kind K) : K(K) {}
};

/// One side of the relational pair.
struct LogicState {
  EvalEnv Store;
  ExtendedHeap Heap;
};

/// Checks Fig. 7 satisfaction for the precise fragment.
class AssertionChecker {
public:
  AssertionChecker(const Program *Prog,
                   Type::ScopeParams Scope = Type::ScopeParams())
      : Eval(Prog), Scope(Scope) {}

  /// (s1, gh1), (s2, gh2) |= P. The heaps must be exactly described (no
  /// leftover permissions or guards).
  bool satisfies(const LogicState &S1, const LogicState &S2,
                 const Asrt &P) const;

private:
  bool consume(EvalEnv &St1, ExtendedHeap &H1, EvalEnv &St2,
               ExtendedHeap &H2, const Asrt &P) const;

  ExprEvaluator Eval;
  Type::ScopeParams Scope;
};

/// Def. 3.2 (shared): a bijection between the two argument multisets such
/// that every matched pair satisfies the action's relational precondition.
bool preBijectionShared(const RSpecRuntime &Runtime, const ActionDecl &Action,
                        const ValueRef &Args1, const ValueRef &Args2);

/// Def. 3.2 (unique): equal length and pointwise relational precondition.
bool preUnique(const RSpecRuntime &Runtime, const ActionDecl &Action,
               const ValueRef &Args1, const ValueRef &Args2);

/// Sec. 3.5 consistency: \p Final is reachable from \p Initial by applying
/// every recorded argument exactly once, in *some* interleaving that keeps
/// each unique action's arguments in order (shared arguments may be
/// permuted). Bounded exhaustive search with memoization.
bool consistentWith(
    const RSpecRuntime &Runtime, const ValueRef &Initial,
    const std::map<std::string, ValueRef> &ArgsByAction, // ms or seq
    const ValueRef &Final);

} // namespace commcsl

#endif // COMMCSL_LOGIC_ASSERTION_H
