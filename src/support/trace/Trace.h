//===-- support/trace/Trace.h - Scoped-span trace recording -----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide trace recording in the Chrome trace-event format (loadable
/// in Perfetto or chrome://tracing). The recorder collects three event
/// kinds into per-thread buffers:
///
///   - scoped spans ("X" complete events): an RAII `TraceSpan` records its
///     start timestamp and duration at destruction; spans on one thread
///     nest by containment, which the viewers render as a flame graph;
///   - instant events ("i"): one-off markers;
///   - counter samples ("C"): a named numeric track over time.
///
/// Disabled-path contract: recording is off unless `enable()` was called.
/// Every entry point first reads a relaxed atomic flag and returns
/// immediately when it is clear — no allocation, no clock read, no lock —
/// so permanently-instrumented code costs a couple of nanoseconds per
/// probe when tracing is off. Span labels that require formatting are
/// passed as callables and only materialized on the enabled path.
///
/// Thread model: each thread appends to its own buffer (registered on
/// first use, retained for the process lifetime), so recording never
/// contends across threads; the buffer's mutex is uncontended except
/// against an export. Timestamps are microseconds on the steady clock,
/// relative to the recorder's construction.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_TRACE_TRACE_H
#define COMMCSL_SUPPORT_TRACE_TRACE_H

#include "support/trace/Stopwatch.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace commcsl {

/// One recorded event. `Ph` follows the Chrome trace-event phase codes.
struct TraceEvent {
  enum class Phase : char { Complete = 'X', Instant = 'i', Counter = 'C' };
  Phase Ph = Phase::Complete;
  std::string Name;
  std::string Category;
  uint64_t TsMicros = 0;  ///< start time, relative to the recorder epoch
  uint64_t DurMicros = 0; ///< Complete events only
  double CounterValue = 0; ///< Counter events only
  std::string Detail;      ///< optional args.detail payload
};

/// The process-wide recorder. Use `TraceRecorder::global()`; separate
/// instances exist only for tests.
class TraceRecorder {
public:
  TraceRecorder();

  /// The singleton every instrumentation probe records into. Never
  /// destroyed, so probes in worker threads are safe during shutdown.
  static TraceRecorder &global();

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder epoch.
  uint64_t nowMicros() const { return Epoch.micros(); }

  /// Records a completed span. No-op when disabled.
  void recordComplete(std::string Name, std::string Category,
                      uint64_t TsMicros, uint64_t DurMicros,
                      std::string Detail = {});

  /// Records an instant marker. No-op when disabled.
  void recordInstant(std::string Name, std::string Category,
                     std::string Detail = {});

  /// Records a counter sample. No-op when disabled.
  void recordCounter(std::string Name, double Value);

  /// Renders every buffered event as a Chrome trace-event JSON object
  /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
  std::string chromeTraceJson() const;

  /// Writes `chromeTraceJson()` to \p Path. Returns false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Drops all buffered events (test support; thread ids are retained).
  void clear();

  /// Total buffered events across all threads.
  size_t eventCount() const;

private:
  struct ThreadBuffer {
    mutable std::mutex Mu; ///< appends vs. export/clear
    unsigned Tid = 0;
    std::vector<TraceEvent> Events;
  };

  /// The calling thread's buffer for this recorder, registered on first
  /// use.
  ThreadBuffer &localBuffer();

  void append(TraceEvent E);

  std::atomic<bool> Enabled{false};
  uint64_t Id = 0; ///< process-unique; keys the per-thread buffer cache
  Stopwatch Epoch;
  mutable std::mutex RegistryMu; ///< guards Buffers
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
};

/// RAII scoped span against the global recorder. When tracing is disabled
/// at construction the span is inert: no clock read, no label
/// materialization, nothing recorded at destruction.
class TraceSpan {
public:
  /// Span with a static label.
  TraceSpan(const char *Category, const char *Name) {
    if (!TraceRecorder::global().enabled())
      return;
    begin(Category, Name);
  }

  /// Span whose label is built by \p MakeName (returning std::string),
  /// invoked only when tracing is enabled — use for labels that need
  /// formatting on hot-ish paths.
  template <typename NameFn>
  TraceSpan(const char *Category, NameFn &&MakeName,
            // SFINAE: keep string literals on the other constructor.
            decltype(std::declval<NameFn>()(), 0) = 0) {
    if (!TraceRecorder::global().enabled())
      return;
    begin(Category, MakeName());
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a `detail` payload shown in the viewer's args pane. No-op on
  /// an inert span.
  void setDetail(std::string D) {
    if (Active)
      Detail = std::move(D);
  }

  ~TraceSpan() {
    if (!Active)
      return;
    TraceRecorder &R = TraceRecorder::global();
    R.recordComplete(std::move(Name), std::move(Category), StartMicros,
                     R.nowMicros() - StartMicros, std::move(Detail));
  }

private:
  void begin(const char *Cat, std::string N) {
    Active = true;
    Category = Cat;
    Name = std::move(N);
    StartMicros = TraceRecorder::global().nowMicros();
  }

  bool Active = false;
  std::string Name;
  std::string Category;
  std::string Detail;
  uint64_t StartMicros = 0;
};

/// Convenience instant-event probe against the global recorder.
inline void traceInstant(const char *Category, std::string Name,
                         std::string Detail = {}) {
  TraceRecorder &R = TraceRecorder::global();
  if (R.enabled())
    R.recordInstant(std::move(Name), Category, std::move(Detail));
}

/// Convenience counter-sample probe against the global recorder.
inline void traceCounter(std::string Name, double Value) {
  TraceRecorder &R = TraceRecorder::global();
  if (R.enabled())
    R.recordCounter(std::move(Name), Value);
}

} // namespace commcsl

#endif // COMMCSL_SUPPORT_TRACE_TRACE_H
