//===-- support/trace/Stopwatch.h - Monotonic interval timing ---*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one steady-clock stopwatch shared by every subsystem that reports
/// wall time (driver phases, validity tiers, the NI sweep, fuzz budgets,
/// the trace recorder). Replaces the four copy-pasted `secondsSince`
/// helpers that used to live in Driver.cpp, Validity.cpp,
/// NonInterference.cpp, and Campaign.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_TRACE_STOPWATCH_H
#define COMMCSL_SUPPORT_TRACE_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace commcsl {

/// Measures elapsed time from construction (or the last restart) on the
/// monotonic clock. Copyable; reading does not stop it.
class Stopwatch {
public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : Start(Clock::now()) {}

  /// Elapsed seconds since construction / restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed whole microseconds since construction / restart.
  uint64_t micros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              Start)
            .count());
  }

  void restart() { Start = Clock::now(); }

private:
  Clock::time_point Start;
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_TRACE_STOPWATCH_H
