//===-- support/trace/Metrics.h - Named metric registry ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and histograms,
/// exported as JSON (`--metrics-json`). Registration declares each
/// metric's *stability*:
///
///   - `Stability::Count`: deterministic — the exported value is
///     byte-identical at every `--jobs` setting (and across reruns of the
///     same input). These land under the top-level `"counts"` object.
///   - `Stability::Varies`: wall-clock durations, scheduling-dependent
///     tallies (cache hit/miss splits, queue depths, task latencies).
///     These land under the top-level `"timings"` object.
///
/// The determinism contract — and what CI enforces — is exactly: strip
/// `"timings"`, and the remaining JSON is byte-identical at any job
/// count. Keys in both objects are emitted in sorted order.
///
/// All mutators are lock-free atomics; lookup by name takes a registry
/// lock, so hot paths should resolve their metric once and keep the
/// reference (registered metrics are never deallocated before exit).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_TRACE_METRICS_H
#define COMMCSL_SUPPORT_TRACE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace commcsl {

/// Export section a metric belongs to (see file comment).
enum class Stability { Count, Varies };

/// Monotone counter.
class Metric_Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins (or accumulating / max-tracking) floating-point gauge.
class Metric_Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  void add(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (!V.compare_exchange_weak(Cur, Cur + X,
                                    std::memory_order_relaxed)) {
    }
  }
  void max(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (Cur < X &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
    }
  }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Log2-bucketed histogram of non-negative samples (e.g. latencies in
/// microseconds). Records count, sum, max, and 64 power-of-two buckets,
/// from which the exporter reports approximate quantiles.
class Metric_Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void observe(double X);
  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double maxValue() const { return Max.load(std::memory_order_relaxed); }
  /// Upper bucket bound below which at least \p Q of the samples fall.
  double quantileUpperBound(double Q) const;
  void reset();

private:
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0};
  std::atomic<double> Max{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// The registry. Use `MetricsRegistry::global()`; separate instances exist
/// only for tests.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// The named counter, created on first use. A metric's stability and
  /// kind are fixed by its first registration.
  Metric_Counter &counter(const std::string &Name,
                          Stability S = Stability::Count);
  /// The named gauge. Gauges default to Varies: most measure wall time or
  /// scheduling-dependent state.
  Metric_Gauge &gauge(const std::string &Name,
                      Stability S = Stability::Varies);
  /// The named histogram. Histograms are always exported under
  /// `"timings"`.
  Metric_Histogram &histogram(const std::string &Name);

  /// Renders `{"counts": {...}, "timings": {...}}` with sorted keys.
  /// Deterministic metrics print as integers; Varies metrics print
  /// fixed-precision doubles.
  std::string json() const;

  /// Writes `json()` to \p Path. Returns false on I/O failure.
  bool writeJson(const std::string &Path) const;

  /// Zeroes every registered metric (test support).
  void resetAll();

private:
  struct Entry {
    Stability S = Stability::Count;
    // Exactly one is set.
    std::unique_ptr<Metric_Counter> C;
    std::unique_ptr<Metric_Gauge> G;
    std::unique_ptr<Metric_Histogram> H;
  };

  Entry &entry(const std::string &Name, Stability S);

  mutable std::mutex Mu;
  std::map<std::string, Entry> Entries; ///< ordered => sorted export keys
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_TRACE_METRICS_H
