//===-- support/trace/Trace.cpp - Scoped-span trace recording --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/trace/Trace.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace commcsl;

TraceRecorder::TraceRecorder() {
  static std::atomic<uint64_t> NextId{1};
  Id = NextId.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder &TraceRecorder::global() {
  // Leaked on purpose: pool workers may record while static destructors
  // run, so the recorder must outlive every other static.
  static TraceRecorder *R = new TraceRecorder();
  return *R;
}

TraceRecorder::ThreadBuffer &TraceRecorder::localBuffer() {
  // Per-thread cache of (recorder id -> buffer). Keyed by the recorder's
  // unique id, not its address, so an entry for a destroyed test-local
  // recorder can never be revived by an address-reusing successor.
  thread_local std::vector<std::pair<uint64_t, ThreadBuffer *>> Cache;
  for (const auto &[Owner, Buffer] : Cache)
    if (Owner == Id)
      return *Buffer;
  std::lock_guard<std::mutex> Lock(RegistryMu);
  Buffers.push_back(std::make_unique<ThreadBuffer>());
  Buffers.back()->Tid = static_cast<unsigned>(Buffers.size());
  Cache.emplace_back(Id, Buffers.back().get());
  return *Buffers.back();
}

void TraceRecorder::append(TraceEvent E) {
  ThreadBuffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(B.Mu);
  B.Events.push_back(std::move(E));
}

void TraceRecorder::recordComplete(std::string Name, std::string Category,
                                   uint64_t TsMicros, uint64_t DurMicros,
                                   std::string Detail) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Complete;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.TsMicros = TsMicros;
  E.DurMicros = DurMicros;
  E.Detail = std::move(Detail);
  append(std::move(E));
}

void TraceRecorder::recordInstant(std::string Name, std::string Category,
                                  std::string Detail) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Instant;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.TsMicros = nowMicros();
  E.Detail = std::move(Detail);
  append(std::move(E));
}

void TraceRecorder::recordCounter(std::string Name, double Value) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Counter;
  E.Name = std::move(Name);
  E.Category = "counter";
  E.TsMicros = nowMicros();
  E.CounterValue = Value;
  append(std::move(E));
}

std::string TraceRecorder::chromeTraceJson() const {
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  bool First = true;
  std::lock_guard<std::mutex> Registry(RegistryMu);
  for (const std::unique_ptr<ThreadBuffer> &B : Buffers) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    for (const TraceEvent &E : B->Events) {
      OS << (First ? "\n" : ",\n");
      First = false;
      OS << "{\"name\":\"" << jsonEscape(E.Name) << "\","
         << "\"cat\":\"" << jsonEscape(E.Category) << "\","
         << "\"ph\":\"" << static_cast<char>(E.Ph) << "\","
         << "\"ts\":" << E.TsMicros << ",\"pid\":1,\"tid\":" << B->Tid;
      if (E.Ph == TraceEvent::Phase::Complete)
        OS << ",\"dur\":" << E.DurMicros;
      if (E.Ph == TraceEvent::Phase::Counter) {
        OS << ",\"args\":{\"value\":" << E.CounterValue << "}";
      } else if (!E.Detail.empty()) {
        OS << ",\"args\":{\"detail\":\"" << jsonEscape(E.Detail) << "\"}";
      }
      if (E.Ph == TraceEvent::Phase::Instant)
        OS << ",\"s\":\"t\""; // thread-scoped instant
      OS << "}";
    }
  }
  OS << (First ? "" : "\n") << "],\"displayTimeUnit\":\"ms\"}\n";
  return OS.str();
}

bool TraceRecorder::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << chromeTraceJson();
  return Out.good();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Registry(RegistryMu);
  for (const std::unique_ptr<ThreadBuffer> &B : Buffers) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    B->Events.clear();
  }
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Registry(RegistryMu);
  size_t N = 0;
  for (const std::unique_ptr<ThreadBuffer> &B : Buffers) {
    std::lock_guard<std::mutex> Lock(B->Mu);
    N += B->Events.size();
  }
  return N;
}
