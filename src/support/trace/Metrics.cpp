//===-- support/trace/Metrics.cpp - Named metric registry ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/trace/Metrics.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

using namespace commcsl;

void Metric_Histogram::observe(double X) {
  N.fetch_add(1, std::memory_order_relaxed);
  double Cur = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Cur, Cur + X,
                                    std::memory_order_relaxed)) {
  }
  Cur = Max.load(std::memory_order_relaxed);
  while (Cur < X &&
         !Max.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
  }
  // Bucket B holds samples in [2^(B-1), 2^B); bucket 0 holds [0, 1).
  unsigned B = 0;
  if (X >= 1) {
    B = 1;
    double Bound = 2;
    while (B + 1 < NumBuckets && X >= Bound) {
      ++B;
      Bound *= 2;
    }
  }
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
}

double Metric_Histogram::quantileUpperBound(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Rank >= Total)
    Rank = Total - 1;
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B].load(std::memory_order_relaxed);
    if (Seen > Rank)
      return B == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(B));
  }
  return maxValue();
}

void Metric_Histogram::reset() {
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

MetricsRegistry &MetricsRegistry::global() {
  // Leaked on purpose; see TraceRecorder::global().
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

MetricsRegistry::Entry &MetricsRegistry::entry(const std::string &Name,
                                               Stability S) {
  // Caller holds Mu.
  Entry &E = Entries[Name];
  if (!E.C && !E.G && !E.H)
    E.S = S;
  return E;
}

Metric_Counter &MetricsRegistry::counter(const std::string &Name,
                                         Stability S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, S);
  if (!E.C) {
    assert(!E.G && !E.H && "metric kind changed across registrations");
    E.C = std::make_unique<Metric_Counter>();
  }
  return *E.C;
}

Metric_Gauge &MetricsRegistry::gauge(const std::string &Name, Stability S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, S);
  if (!E.G) {
    assert(!E.C && !E.H && "metric kind changed across registrations");
    E.G = std::make_unique<Metric_Gauge>();
  }
  return *E.G;
}

Metric_Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = entry(Name, Stability::Varies);
  if (!E.H) {
    assert(!E.C && !E.G && "metric kind changed across registrations");
    E.H = std::make_unique<Metric_Histogram>();
  }
  return *E.H;
}

namespace {

std::string formatDouble(double X) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", X);
  return Buf;
}

} // namespace

std::string MetricsRegistry::json() const {
  // Two passes over the (sorted) map: deterministic metrics into
  // "counts", everything else into "timings".
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\n";
  for (int Section = 0; Section < 2; ++Section) {
    Stability Want = Section == 0 ? Stability::Count : Stability::Varies;
    OS << "  \"" << (Section == 0 ? "counts" : "timings") << "\": {";
    bool First = true;
    for (const auto &[Name, E] : Entries) {
      if (E.S != Want)
        continue;
      OS << (First ? "\n" : ",\n");
      First = false;
      OS << "    \"" << jsonEscape(Name) << "\": ";
      if (E.C) {
        OS << E.C->value();
      } else if (E.G) {
        OS << formatDouble(E.G->value());
      } else if (E.H) {
        OS << "{\"count\": " << E.H->count()
           << ", \"sum\": " << formatDouble(E.H->sum())
           << ", \"max\": " << formatDouble(E.H->maxValue())
           << ", \"p50\": " << formatDouble(E.H->quantileUpperBound(0.5))
           << ", \"p95\": " << formatDouble(E.H->quantileUpperBound(0.95))
           << "}";
      } else {
        OS << "null";
      }
    }
    OS << (First ? "" : "\n  ") << "}" << (Section == 0 ? ",\n" : "\n");
  }
  OS << "}\n";
  return OS.str();
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json();
  return Out.good();
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, E] : Entries) {
    (void)Name;
    if (E.C)
      E.C->reset();
    if (E.G)
      E.G->reset();
    if (E.H)
      E.H->reset();
  }
}
