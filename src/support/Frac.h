//===-- support/Frac.h - Exact rational fractions ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers in (0, 1] used for fractional permissions
/// (Boyland-style) and guard fractions. Normalized on construction.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_FRAC_H
#define COMMCSL_SUPPORT_FRAC_H

#include <cstdint>
#include <numeric>
#include <string>

namespace commcsl {

/// A non-negative rational; guard/permission amounts live in [0, 1].
struct Frac {
  int64_t Num = 0;
  int64_t Den = 1;

  static Frac make(int64_t N, int64_t D) {
    Frac F{N, D};
    F.normalize();
    return F;
  }
  static Frac zero() { return Frac{0, 1}; }
  static Frac one() { return Frac{1, 1}; }

  void normalize() {
    // Canonical form keeps the sign on the numerator and the denominator
    // strictly positive, so the cross-multiplying comparisons below never
    // flip direction.
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    if (Num == 0) {
      Den = 1;
      return;
    }
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    Num /= G;
    Den /= G;
  }

  Frac operator+(const Frac &O) const {
    return make(Num * O.Den + O.Num * Den, Den * O.Den);
  }
  Frac operator-(const Frac &O) const {
    return make(Num * O.Den - O.Num * Den, Den * O.Den);
  }
  bool operator==(const Frac &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator<(const Frac &O) const {
    // Cross products can exceed int64 for reduced fractions with large
    // denominators; compare in 128-bit to stay exact.
    return static_cast<__int128>(Num) * O.Den <
           static_cast<__int128>(O.Num) * Den;
  }
  bool operator<=(const Frac &O) const { return *this < O || *this == O; }

  bool isZero() const { return Num == 0; }
  bool isOne() const { return Num == Den; }
  /// Valid permission amount: 0 < f <= 1.
  bool isValidAmount() const { return Num > 0 && Num <= Den; }

  std::string str() const {
    return std::to_string(Num) + "/" + std::to_string(Den);
  }
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_FRAC_H
