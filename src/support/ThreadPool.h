//===-- support/ThreadPool.h - Work-sharded parallel execution --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a chunked parallel-for helper. The
/// validity checker, the empirical non-interference harness, and the driver
/// all share one process-wide pool; work is sharded into contiguous index
/// ranges so that callers can implement deterministic selection (e.g. the
/// lowest-global-index counterexample) independently of the thread count.
///
/// Scheduling is work-stealing: each worker owns a deque, task submission
/// distributes chunks round-robin across the deques, owners pop LIFO from
/// the back (cache-warm, most recently pushed work first) and idle workers
/// steal FIFO from the front of a victim's deque.  parallelForChunks
/// oversubdivides the index range (about `OversubFactor` chunks per job)
/// so a straggler chunk strands at most a small slice of the range on one
/// worker while the rest is stolen — this is what kills tail latency at
/// high `--jobs`.  Determinism is unaffected: chunk *boundaries* are a pure
/// function of (NumItems, Jobs) via `chunkCount`, and consumers derive
/// results from global item indices, never from which worker ran a chunk.
///
/// Waiting callers help drain the queues, so nested parallelForChunks calls
/// (a pool worker fanning out again) cannot deadlock even on a single
/// worker.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_THREADPOOL_H
#define COMMCSL_SUPPORT_THREADPOOL_H

#include "support/trace/Stopwatch.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace commcsl {

/// SplitMix64 mixing step (Steele et al.). Used to derive statistically
/// independent RNG seeds from a base seed and a work-item index, so that
/// randomized results are reproducible and independent of which worker
/// executes which item.
constexpr uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Seed for work item \p Index under base seed \p Seed.
constexpr uint64_t deriveSeed(uint64_t Seed, uint64_t Index) {
  return splitmix64(Seed ^ splitmix64(Index));
}

/// Fixed-size worker pool.
class ThreadPool {
public:
  /// \p Threads worker threads; 0 means hardware concurrency.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return NumWorkers; }

  /// The process-wide shared pool (hardware-concurrency sized, lazily
  /// created, never destroyed before exit).
  static ThreadPool &shared();

  /// Default degree of parallelism: hardware concurrency, at least 1.
  static unsigned defaultJobs();

  /// Resolves a user-facing jobs option: 0 means defaultJobs().
  static unsigned effectiveJobs(unsigned Jobs) {
    return Jobs == 0 ? defaultJobs() : Jobs;
  }

  /// Work-stealing oversubdivision factor: parallelForChunks cuts the range
  /// into about this many chunks per job (capped at NumItems) so stolen
  /// work rebalances stragglers.
  static constexpr unsigned OversubFactor = 8;

  /// Number of chunks parallelForChunks will use for \p NumItems items at
  /// \p Jobs parallelism: 0 for an empty range, 1 for Jobs <= 1 (the
  /// sequential inline path), otherwise min(NumItems, Jobs * OversubFactor).
  /// Callers that index per-chunk output arrays by the Chunk argument must
  /// size them with this.
  static uint64_t chunkCount(uint64_t NumItems, unsigned Jobs) {
    if (NumItems == 0)
      return 0;
    if (Jobs <= 1)
      return 1;
    return std::min<uint64_t>(NumItems,
                              static_cast<uint64_t>(Jobs) * OversubFactor);
  }

  /// Splits [0, NumItems) into chunkCount(NumItems, Jobs) contiguous chunks
  /// and runs \p Body(Begin, End, Chunk) for each. Chunks execute on the
  /// worker deques (one seeded on the calling thread, the rest stolen /
  /// drained cooperatively). Jobs <= 1 runs a single chunk inline on the
  /// caller, bypassing the pool entirely — this is the `--jobs 1`
  /// sequential-recovery path. Rethrows the first exception a chunk
  /// produced. Blocks until all chunks finished.
  void parallelForChunks(
      uint64_t NumItems, unsigned Jobs,
      const std::function<void(uint64_t Begin, uint64_t End, unsigned Chunk)>
          &Body);

private:
  /// A queued chunk plus its enqueue timestamp (feeds the
  /// `threadpool.task_wait_us` latency histogram).
  struct Task {
    std::function<void()> Fn;
    Stopwatch Enqueued;
  };

  /// One worker's deque.  The owner pushes/pops at the back (LIFO);
  /// thieves take from the front (FIFO), so stolen work is the oldest —
  /// typically the largest remaining — item.
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<Task> Dq;
  };

  /// Executes one task with trace/metrics instrumentation.
  void runTask(Task &&T);
  void workerLoop(unsigned Me);
  /// Pops and runs queued tasks until \p Done; used by callers waiting on
  /// their own chunks.
  void helpWhilePending(const std::function<bool()> &Done);

  /// Enqueues \p T on queue \p Q (no wakeup; callers batch-notify).
  void pushTo(unsigned Q, Task &&T);
  /// The deque the calling thread should push to: its own if it is a worker
  /// of this pool, else round-robin.
  unsigned homeQueue();
  /// Pops from the back of the caller's own queue \p Me, else steals from
  /// the front of the next non-empty victim.  Returns false if every queue
  /// came up empty.
  bool popOrSteal(unsigned Me, Task &T);

  unsigned NumWorkers = 0;
  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  /// Tasks currently sitting in some deque (pushed, not yet popped).
  /// Sleeping workers wake when it is nonzero.
  std::atomic<uint64_t> QueuedTasks{0};
  /// Round-robin cursor for external submitters.
  std::atomic<unsigned> SubmitCursor{0};
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_THREADPOOL_H
