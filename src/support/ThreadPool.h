//===-- support/ThreadPool.h - Work-sharded parallel execution --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a chunked parallel-for helper. The
/// validity checker, the empirical non-interference harness, and the driver
/// all share one process-wide pool; work is sharded into contiguous index
/// ranges so that callers can implement deterministic selection (e.g. the
/// lowest-global-index counterexample) independently of the thread count.
///
/// Waiting callers help drain the queue, so nested parallelForChunks calls
/// (a pool worker fanning out again) cannot deadlock even on a single
/// worker.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_THREADPOOL_H
#define COMMCSL_SUPPORT_THREADPOOL_H

#include "support/trace/Stopwatch.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commcsl {

/// SplitMix64 mixing step (Steele et al.). Used to derive statistically
/// independent RNG seeds from a base seed and a work-item index, so that
/// randomized results are reproducible and independent of which worker
/// executes which item.
constexpr uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Seed for work item \p Index under base seed \p Seed.
constexpr uint64_t deriveSeed(uint64_t Seed, uint64_t Index) {
  return splitmix64(Seed ^ splitmix64(Index));
}

/// Fixed-size worker pool.
class ThreadPool {
public:
  /// \p Threads worker threads; 0 means hardware concurrency.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return NumWorkers; }

  /// The process-wide shared pool (hardware-concurrency sized, lazily
  /// created, never destroyed before exit).
  static ThreadPool &shared();

  /// Default degree of parallelism: hardware concurrency, at least 1.
  static unsigned defaultJobs();

  /// Resolves a user-facing jobs option: 0 means defaultJobs().
  static unsigned effectiveJobs(unsigned Jobs) {
    return Jobs == 0 ? defaultJobs() : Jobs;
  }

  /// Splits [0, NumItems) into at most \p Jobs contiguous chunks and runs
  /// \p Body(Begin, End, Chunk) for each. At most Jobs chunks execute
  /// concurrently (one on the calling thread). Jobs <= 1 runs a single
  /// chunk inline on the caller, bypassing the pool entirely — this is the
  /// `--jobs 1` sequential-recovery path. Rethrows the first exception a
  /// chunk produced. Blocks until all chunks finished.
  void parallelForChunks(
      uint64_t NumItems, unsigned Jobs,
      const std::function<void(uint64_t Begin, uint64_t End, unsigned Chunk)>
          &Body);

private:
  /// A queued chunk plus its enqueue timestamp (feeds the
  /// `threadpool.task_wait_us` latency histogram).
  struct Task {
    std::function<void()> Fn;
    Stopwatch Enqueued;
  };

  /// Executes one task with trace/metrics instrumentation.
  void runTask(Task &&T);
  void workerLoop();
  /// Pops and runs queued tasks until \p Pending reaches zero.
  void helpWhilePending(const std::function<bool()> &Done);

  unsigned NumWorkers = 0;
  std::vector<std::thread> Workers;
  std::deque<Task> Queue;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stopping = false;
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_THREADPOOL_H
