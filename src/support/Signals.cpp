//===-- support/Signals.cpp - SIGINT/SIGTERM flush-and-exit ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Signals.h"

#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

using namespace commcsl;

namespace {

struct SignalState {
  std::mutex Mu;
  std::condition_variable GracefulCv;
  std::vector<std::pair<uint64_t, std::function<void()>>> Flush;
  std::function<void(int)> Graceful;
  uint64_t NextToken = 1;
  int Consumed = 0;
  bool Installed = false;
  bool GracefulRunning = false;
};

SignalState &state() {
  static SignalState S;
  return S;
}

void watcherLoop(sigset_t Set) {
  for (;;) {
    int Sig = 0;
    if (sigwait(&Set, &Sig) != 0)
      continue;

    // First delivery with a graceful handler installed: hand the signal
    // over (e.g. the serve daemon starts draining) and keep watching so a
    // second ^C can force the hard path.
    {
      SignalState &S = state();
      std::unique_lock<std::mutex> Lock(S.Mu);
      if (S.Graceful && S.Consumed == 0) {
        S.Consumed = Sig;
        std::function<void(int)> H = S.Graceful;
        // Mark the invocation in flight (and run it unlocked): whoever
        // clears the handler must be able to wait for it, or the objects
        // it touches could be destroyed under the watcher's feet.
        S.GracefulRunning = true;
        Lock.unlock();
        H(Sig);
        Lock.lock();
        S.GracefulRunning = false;
        S.GracefulCv.notify_all();
        continue;
      }
    }

    // Hard path: flush every registered sink (LIFO — later registrations
    // may depend on earlier ones), then exit with the conventional
    // status. _Exit skips static destructors: worker threads may be
    // mid-verification and unwinding under them is not safe.
    std::vector<std::function<void()>> Actions;
    {
      SignalState &S = state();
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (auto It = S.Flush.rbegin(); It != S.Flush.rend(); ++It)
        Actions.push_back(It->second);
    }
    for (const std::function<void()> &A : Actions)
      A();
    std::_Exit(128 + Sig);
  }
}

} // namespace

void commcsl::installSignalWatcher() {
  SignalState &S = state();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.Installed)
      return;
    S.Installed = true;
  }
  sigset_t Set;
  sigemptyset(&Set);
  sigaddset(&Set, SIGINT);
  sigaddset(&Set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Set, nullptr);
  std::thread(watcherLoop, Set).detach();
}

uint64_t commcsl::addSignalFlushAction(std::function<void()> Action) {
  SignalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  uint64_t Token = S.NextToken++;
  S.Flush.emplace_back(Token, std::move(Action));
  return Token;
}

void commcsl::removeSignalFlushAction(uint64_t Token) {
  SignalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  for (auto It = S.Flush.begin(); It != S.Flush.end(); ++It)
    if (It->first == Token) {
      S.Flush.erase(It);
      return;
    }
}

void commcsl::setGracefulSignalHandler(std::function<void(int)> Handler) {
  SignalState &S = state();
  std::unique_lock<std::mutex> Lock(S.Mu);
  // Barrier: once this returns, the previous handler is not running and
  // will never run again, so its captures may safely be destroyed.
  S.GracefulCv.wait(Lock, [&] { return !S.GracefulRunning; });
  S.Graceful = std::move(Handler);
}

int commcsl::consumedSignal() {
  SignalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Consumed;
}
