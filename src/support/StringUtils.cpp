//===-- support/StringUtils.cpp - Small string helpers --------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <sstream>

using namespace commcsl;

std::string commcsl::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> commcsl::split(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Parts.push_back(Cur);
      Cur.clear();
      continue;
    }
    Cur += C;
  }
  Parts.push_back(Cur);
  return Parts;
}

std::string commcsl::trim(const std::string &S) {
  size_t Begin = 0;
  size_t End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

bool commcsl::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string commcsl::jsonEscape(const std::string &S) {
  std::ostringstream OS;
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  return OS.str();
}
