//===-- support/Diagnostics.cpp - Diagnostic engine -----------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace commcsl;

const char *commcsl::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::LexError:
    return "lex";
  case DiagCode::ParseError:
    return "parse";
  case DiagCode::TypeError:
    return "type";
  case DiagCode::UnknownName:
    return "unknown-name";
  case DiagCode::DuplicateName:
    return "duplicate-name";
  case DiagCode::SpecInvalidPrecondition:
    return "spec-precondition";
  case DiagCode::SpecInvalidCommutes:
    return "spec-commutes";
  case DiagCode::SpecIllFormed:
    return "spec-ill-formed";
  case DiagCode::SpecCheckTimeout:
    return "spec-check-timeout";
  case DiagCode::VerifyLowInitialValue:
    return "verify-low-initial";
  case DiagCode::VerifyGuardMissing:
    return "verify-guard-missing";
  case DiagCode::VerifyUniqueGuardSplit:
    return "verify-unique-guard-split";
  case DiagCode::VerifyPreUnprovable:
    return "verify-pre";
  case DiagCode::VerifyCountNotLow:
    return "verify-count";
  case DiagCode::VerifyHighBranchEffect:
    return "verify-high-branch";
  case DiagCode::VerifyEntailment:
    return "verify-entailment";
  case DiagCode::VerifyContract:
    return "verify-contract";
  case DiagCode::VerifyDataRace:
    return "verify-data-race";
  case DiagCode::VerifyResourceState:
    return "verify-resource-state";
  case DiagCode::VerifyHeap:
    return "verify-heap";
  case DiagCode::RuntimeAbort:
    return "runtime-abort";
  case DiagCode::LintUninitialized:
    return "lint-uninitialized";
  case DiagCode::LintUnreachable:
    return "lint-unreachable";
  case DiagCode::LintOutsideAtomic:
    return "lint-outside-atomic";
  case DiagCode::LintHighSink:
    return "lint-high-sink";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": ";
  switch (Kind) {
  case DiagKind::Error:
    OS << "error";
    break;
  case DiagKind::Warning:
    OS << "warning";
    break;
  case DiagKind::Note:
    OS << "note";
    break;
  }
  if (Code != DiagCode::None)
    OS << " [" << diagCodeName(Code) << "]";
  OS << ": " << Message;
  return OS.str();
}

bool DiagnosticEngine::hasErrorWithCode(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error && D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticEngine::str(const std::string &FileName) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (!FileName.empty())
      OS << FileName << ":";
    OS << D.str() << "\n";
  }
  return OS.str();
}

std::string
DiagnosticEngine::strWithSnippets(const std::string &Source,
                                  const std::string &FileName) const {
  // Split once; locations are 1-based.
  std::vector<std::string> Lines;
  {
    std::string Cur;
    for (char Ch : Source) {
      if (Ch == '\n') {
        Lines.push_back(std::move(Cur));
        Cur.clear();
      } else {
        Cur.push_back(Ch);
      }
    }
    Lines.push_back(std::move(Cur));
  }

  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (!FileName.empty())
      OS << FileName << ":";
    OS << D.str() << "\n";
    if (!D.Loc.isValid() || D.Loc.Line > Lines.size())
      continue;
    const std::string &Line = Lines[D.Loc.Line - 1];
    OS << "  " << Line << "\n  ";
    // Keep tabs aligned in the caret line; everything else becomes a space.
    // Columns count UTF-8 code points (matching the lexer), so pad one
    // character per code point and skip continuation bytes (0b10xxxxxx).
    unsigned Col = D.Loc.Column > 0 ? D.Loc.Column : 1;
    unsigned Seen = 0;
    for (size_t I = 0; Seen + 1 < Col && I < Line.size(); ++I) {
      if ((static_cast<unsigned char>(Line[I]) & 0xC0) == 0x80)
        continue;
      OS << (Line[I] == '\t' ? '\t' : ' ');
      ++Seen;
    }
    OS << "^\n";
  }
  return OS.str();
}
