//===-- support/Diagnostics.cpp - Diagnostic engine -----------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace commcsl;

const char *commcsl::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::LexError:
    return "lex";
  case DiagCode::ParseError:
    return "parse";
  case DiagCode::TypeError:
    return "type";
  case DiagCode::UnknownName:
    return "unknown-name";
  case DiagCode::DuplicateName:
    return "duplicate-name";
  case DiagCode::SpecInvalidPrecondition:
    return "spec-precondition";
  case DiagCode::SpecInvalidCommutes:
    return "spec-commutes";
  case DiagCode::SpecIllFormed:
    return "spec-ill-formed";
  case DiagCode::VerifyLowInitialValue:
    return "verify-low-initial";
  case DiagCode::VerifyGuardMissing:
    return "verify-guard-missing";
  case DiagCode::VerifyUniqueGuardSplit:
    return "verify-unique-guard-split";
  case DiagCode::VerifyPreUnprovable:
    return "verify-pre";
  case DiagCode::VerifyCountNotLow:
    return "verify-count";
  case DiagCode::VerifyHighBranchEffect:
    return "verify-high-branch";
  case DiagCode::VerifyEntailment:
    return "verify-entailment";
  case DiagCode::VerifyContract:
    return "verify-contract";
  case DiagCode::VerifyDataRace:
    return "verify-data-race";
  case DiagCode::VerifyResourceState:
    return "verify-resource-state";
  case DiagCode::VerifyHeap:
    return "verify-heap";
  case DiagCode::RuntimeAbort:
    return "runtime-abort";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": ";
  switch (Kind) {
  case DiagKind::Error:
    OS << "error";
    break;
  case DiagKind::Warning:
    OS << "warning";
    break;
  case DiagKind::Note:
    OS << "note";
    break;
  }
  if (Code != DiagCode::None)
    OS << " [" << diagCodeName(Code) << "]";
  OS << ": " << Message;
  return OS.str();
}

bool DiagnosticEngine::hasErrorWithCode(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error && D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticEngine::str(const std::string &FileName) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (!FileName.empty())
      OS << FileName << ":";
    OS << D.str() << "\n";
  }
  return OS.str();
}
