//===-- support/Numeric.h - Strict numeric string parsing -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict, exception-free parsing of unsigned decimal strings. Unlike bare
/// `std::stoull`, these reject empty input, signs, leading/trailing junk
/// (`"4x"`), and out-of-range values by returning `std::nullopt` instead
/// of throwing — the contract every header-field and CLI-option parser in
/// the project shares (`--jobs`, corpus `// seed:` headers, ...).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_NUMERIC_H
#define COMMCSL_SUPPORT_NUMERIC_H

#include <cstdint>
#include <optional>
#include <string>

namespace commcsl {

/// Parses \p S as an unsigned decimal integer. Rejects anything that is
/// not entirely digits (including `+`/`-` signs and whitespace) and
/// values exceeding uint64_t.
std::optional<uint64_t> parseUnsigned64(const std::string &S);

/// Parses a `--jobs` option value: a positive integer with no junk, no
/// sign, fitting in unsigned. Zero is rejected — "use every core" is
/// spelled by omitting the flag, and a silent 0->default coercion has
/// historically masked typos.
std::optional<unsigned> parseJobsValue(const std::string &S);

} // namespace commcsl

#endif // COMMCSL_SUPPORT_NUMERIC_H
