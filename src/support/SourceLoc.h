//===-- support/SourceLoc.h - Source locations ------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project: a reproduction of "CommCSL: Proving
// Information Flow Security for Concurrent Programs using Abstract
// Commutativity" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source-location tracking for diagnostics. Every AST node and
/// token carries a SourceLoc; SourceRange pairs two of them.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_SOURCELOC_H
#define COMMCSL_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace commcsl {

/// A position in a source buffer, 1-based line and column. A default
/// constructed SourceLoc is "unknown" and prints as "<unknown>".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const {
    return Line == Other.Line && Column == Other.Column;
  }

  /// Renders "line:col", or "<unknown>" for invalid locations.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// A half-open range of source positions.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_SOURCELOC_H
