//===-- support/ThreadPool.cpp - Work-sharded parallel execution -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <exception>

using namespace commcsl;

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool(defaultJobs());
  return Pool;
}

ThreadPool::ThreadPool(unsigned Threads) {
  NumWorkers = Threads == 0 ? defaultJobs() : Threads;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::helpWhilePending(const std::function<bool()> &Done) {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      // Wake on new tasks (to help) and on chunk completion (to return).
      Cv.wait(Lock, [&] { return Done() || !Queue.empty(); });
      if (Done())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelForChunks(
    uint64_t NumItems, unsigned Jobs,
    const std::function<void(uint64_t, uint64_t, unsigned)> &Body) {
  if (NumItems == 0)
    return;
  uint64_t NumChunks = std::min<uint64_t>(std::max(1u, Jobs), NumItems);
  if (NumChunks <= 1) {
    Body(0, NumItems, 0);
    return;
  }

  std::atomic<uint64_t> Pending{NumChunks};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;

  auto RunChunk = [&](unsigned Chunk) {
    uint64_t Begin = NumItems * Chunk / NumChunks;
    uint64_t End = NumItems * (Chunk + 1) / NumChunks;
    try {
      Body(Begin, End, Chunk);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Take the lock (empty critical section) so the notify cannot land in
      // the caller's check-then-sleep window and be lost.
      { std::lock_guard<std::mutex> Lock(Mu); }
      Cv.notify_all(); // wake the waiting caller
    }
  };

  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (unsigned Chunk = 1; Chunk < NumChunks; ++Chunk)
      Queue.emplace_back([RunChunk, Chunk] { RunChunk(Chunk); });
  }
  Cv.notify_all();

  RunChunk(0);
  helpWhilePending(
      [&] { return Pending.load(std::memory_order_acquire) == 0; });

  if (FirstError)
    std::rethrow_exception(FirstError);
}
