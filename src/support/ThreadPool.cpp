//===-- support/ThreadPool.cpp - Work-sharded parallel execution -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <algorithm>
#include <atomic>
#include <exception>

using namespace commcsl;

namespace {

/// Pool-level observability. All Varies-stability: which worker picks up
/// which chunk — and therefore every latency and depth below — depends on
/// scheduling, so none of this appears under the deterministic `"counts"`
/// export section.
struct PoolMetrics {
  Metric_Counter &TasksExecuted;
  Metric_Gauge &QueueDepthMax;
  Metric_Gauge &BusySeconds;
  Metric_Histogram &WaitMicros;
  Metric_Histogram &RunMicros;

  static PoolMetrics &get() {
    static PoolMetrics M{
        MetricsRegistry::global().counter("threadpool.tasks_executed",
                                          Stability::Varies),
        MetricsRegistry::global().gauge("threadpool.queue_depth_max"),
        MetricsRegistry::global().gauge("threadpool.busy_seconds"),
        MetricsRegistry::global().histogram("threadpool.task_wait_us"),
        MetricsRegistry::global().histogram("threadpool.task_run_us")};
    return M;
  }
};

} // namespace

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool(defaultJobs());
  return Pool;
}

ThreadPool::ThreadPool(unsigned Threads) {
  NumWorkers = Threads == 0 ? defaultJobs() : Threads;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runTask(Task &&T) {
  PoolMetrics &M = PoolMetrics::get();
  M.WaitMicros.observe(static_cast<double>(T.Enqueued.micros()));
  Stopwatch Run;
  {
    TraceSpan Span("threadpool", "task");
    T.Fn();
  }
  double Seconds = Run.seconds();
  M.RunMicros.observe(Seconds * 1e6);
  M.BusySeconds.add(Seconds);
  M.TasksExecuted.add(1);
}

void ThreadPool::workerLoop() {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      T = std::move(Queue.front());
      Queue.pop_front();
    }
    runTask(std::move(T));
  }
}

void ThreadPool::helpWhilePending(const std::function<bool()> &Done) {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      // Wake on new tasks (to help) and on chunk completion (to return).
      Cv.wait(Lock, [&] { return Done() || !Queue.empty(); });
      if (Done())
        return;
      T = std::move(Queue.front());
      Queue.pop_front();
    }
    runTask(std::move(T));
  }
}

void ThreadPool::parallelForChunks(
    uint64_t NumItems, unsigned Jobs,
    const std::function<void(uint64_t, uint64_t, unsigned)> &Body) {
  if (NumItems == 0)
    return;
  uint64_t NumChunks = std::min<uint64_t>(std::max(1u, Jobs), NumItems);
  if (NumChunks <= 1) {
    Body(0, NumItems, 0);
    return;
  }

  std::atomic<uint64_t> Pending{NumChunks};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;

  auto RunChunk = [&](unsigned Chunk) {
    uint64_t Begin = NumItems * Chunk / NumChunks;
    uint64_t End = NumItems * (Chunk + 1) / NumChunks;
    try {
      Body(Begin, End, Chunk);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Take the lock (empty critical section) so the notify cannot land in
      // the caller's check-then-sleep window and be lost.
      { std::lock_guard<std::mutex> Lock(Mu); }
      Cv.notify_all(); // wake the waiting caller
    }
  };

  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (unsigned Chunk = 1; Chunk < NumChunks; ++Chunk) {
      Task T;
      T.Fn = [RunChunk, Chunk] { RunChunk(Chunk); };
      Queue.push_back(std::move(T));
    }
    PoolMetrics::get().QueueDepthMax.max(
        static_cast<double>(Queue.size()));
  }
  Cv.notify_all();

  RunChunk(0);
  helpWhilePending(
      [&] { return Pending.load(std::memory_order_acquire) == 0; });

  if (FirstError)
    std::rethrow_exception(FirstError);
}
