//===-- support/ThreadPool.cpp - Work-sharded parallel execution -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <algorithm>
#include <atomic>
#include <exception>

using namespace commcsl;

namespace {

/// Pool-level observability. All Varies-stability: which worker picks up
/// which chunk — and therefore every latency and depth below — depends on
/// scheduling, so none of this appears under the deterministic `"counts"`
/// export section.
struct PoolMetrics {
  Metric_Counter &TasksExecuted;
  Metric_Counter &TasksStolen;
  Metric_Gauge &QueueDepthMax;
  Metric_Gauge &BusySeconds;
  Metric_Histogram &WaitMicros;
  Metric_Histogram &RunMicros;

  static PoolMetrics &get() {
    static PoolMetrics M{
        MetricsRegistry::global().counter("threadpool.tasks_executed",
                                          Stability::Varies),
        MetricsRegistry::global().counter("threadpool.tasks_stolen",
                                          Stability::Varies),
        MetricsRegistry::global().gauge("threadpool.queue_depth_max"),
        MetricsRegistry::global().gauge("threadpool.busy_seconds"),
        MetricsRegistry::global().histogram("threadpool.task_wait_us"),
        MetricsRegistry::global().histogram("threadpool.task_run_us")};
    return M;
  }
};

/// Worker identity. A pool worker pushes nested fan-out work onto its own
/// deque (and pops it back LIFO, so nested calls make progress before older
/// outer chunks); any other thread is an external submitter and distributes
/// round-robin.
thread_local ThreadPool *TlsPool = nullptr;
thread_local unsigned TlsIndex = 0;

} // namespace

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool(defaultJobs());
  return Pool;
}

ThreadPool::ThreadPool(unsigned Threads) {
  NumWorkers = Threads == 0 ? defaultJobs() : Threads;
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Queues.emplace_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runTask(Task &&T) {
  PoolMetrics &M = PoolMetrics::get();
  M.WaitMicros.observe(static_cast<double>(T.Enqueued.micros()));
  Stopwatch Run;
  {
    TraceSpan Span("threadpool", "task");
    T.Fn();
  }
  double Seconds = Run.seconds();
  M.RunMicros.observe(Seconds * 1e6);
  M.BusySeconds.add(Seconds);
  M.TasksExecuted.add(1);
}

void ThreadPool::pushTo(unsigned Q, Task &&T) {
  {
    std::lock_guard<std::mutex> Lock(Queues[Q]->Mu);
    Queues[Q]->Dq.push_back(std::move(T));
  }
  QueuedTasks.fetch_add(1, std::memory_order_release);
}

unsigned ThreadPool::homeQueue() {
  if (TlsPool == this)
    return TlsIndex;
  return SubmitCursor.fetch_add(1, std::memory_order_relaxed) % NumWorkers;
}

bool ThreadPool::popOrSteal(unsigned Me, Task &T) {
  // Fast rejection without touching any deque lock.
  if (QueuedTasks.load(std::memory_order_acquire) == 0)
    return false;

  // Own deque first, newest task first (LIFO): nested fan-outs finish before
  // older outer chunks, which is what keeps a 1-worker pool deadlock-free
  // and keeps caches warm.
  if (Me < NumWorkers) {
    WorkerQueue &Own = *Queues[Me];
    std::lock_guard<std::mutex> Lock(Own.Mu);
    if (!Own.Dq.empty()) {
      T = std::move(Own.Dq.back());
      Own.Dq.pop_back();
      QueuedTasks.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }

  // Steal oldest-first (FIFO) from the next non-empty victim.
  unsigned Start = Me < NumWorkers ? Me + 1 : 0;
  for (unsigned Off = 0; Off < NumWorkers; ++Off) {
    unsigned V = (Start + Off) % NumWorkers;
    if (V == Me)
      continue;
    WorkerQueue &Victim = *Queues[V];
    std::lock_guard<std::mutex> Lock(Victim.Mu);
    if (!Victim.Dq.empty()) {
      T = std::move(Victim.Dq.front());
      Victim.Dq.pop_front();
      QueuedTasks.fetch_sub(1, std::memory_order_release);
      PoolMetrics::get().TasksStolen.add(1);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  TlsPool = this;
  TlsIndex = Me;
  for (;;) {
    Task T;
    if (popOrSteal(Me, T)) {
      runTask(std::move(T));
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mu);
    // Submitters increment QueuedTasks and then take Mu before notifying, so
    // the increment cannot land unseen inside this check-then-sleep window.
    Cv.wait(Lock, [this] {
      return Stopping || QueuedTasks.load(std::memory_order_acquire) > 0;
    });
    if (Stopping && QueuedTasks.load(std::memory_order_acquire) == 0)
      return; // stopping and every deque drained
  }
}

void ThreadPool::helpWhilePending(const std::function<bool()> &Done) {
  unsigned Me = TlsPool == this ? TlsIndex : NumWorkers;
  for (;;) {
    if (Done())
      return;
    Task T;
    if (popOrSteal(Me, T)) {
      runTask(std::move(T));
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mu);
    // Wake on new tasks (to help) and on chunk completion (to return).
    Cv.wait(Lock, [&] {
      return Done() || QueuedTasks.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::parallelForChunks(
    uint64_t NumItems, unsigned Jobs,
    const std::function<void(uint64_t, uint64_t, unsigned)> &Body) {
  uint64_t NumChunks = chunkCount(NumItems, Jobs);
  if (NumChunks == 0)
    return;
  if (NumChunks <= 1) {
    Body(0, NumItems, 0);
    return;
  }

  std::atomic<uint64_t> Pending{NumChunks};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;

  auto RunChunk = [&](unsigned Chunk) {
    uint64_t Begin = NumItems * Chunk / NumChunks;
    uint64_t End = NumItems * (Chunk + 1) / NumChunks;
    try {
      Body(Begin, End, Chunk);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    // The final decrement releases the caller: it may return (and its frame
    // — which owns this closure and every captured local — be reused) the
    // instant Pending reaches 0. Copy the pool pointer to the executing
    // thread's stack first and touch nothing captured after the decrement;
    // resolving `Mu`/`Cv` through the closure's captured `this` afterwards
    // was a use-after-return.
    ThreadPool *Pool = this;
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Take the lock (empty critical section) so the notify cannot land in
      // the caller's check-then-sleep window and be lost.
      { std::lock_guard<std::mutex> Lock(Pool->Mu); }
      Pool->Cv.notify_all(); // wake the waiting caller
    }
  };

  // Distribute chunks 1.. across the worker deques starting at the home
  // queue; the caller runs chunk 0 itself. Tasks capture RunChunk by
  // reference-to-local safely: Pending keeps this frame alive until every
  // chunk has executed.
  unsigned Home = homeQueue();
  for (uint64_t Chunk = 1; Chunk < NumChunks; ++Chunk) {
    Task T;
    T.Fn = [&RunChunk, Chunk] { RunChunk(static_cast<unsigned>(Chunk)); };
    pushTo(static_cast<unsigned>((Home + Chunk) % NumWorkers), std::move(T));
  }
  PoolMetrics::get().QueueDepthMax.max(
      static_cast<double>(QueuedTasks.load(std::memory_order_relaxed)));
  // Empty critical section pairs with the workers' predicate re-check.
  { std::lock_guard<std::mutex> Lock(Mu); }
  Cv.notify_all();

  RunChunk(0);
  helpWhilePending(
      [&] { return Pending.load(std::memory_order_acquire) == 0; });

  if (FirstError)
    std::rethrow_exception(FirstError);
}
