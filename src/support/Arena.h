//===-- support/Arena.h - Bump allocation for short-lived values -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump ("arena") allocation for objects whose lifetimes cluster: the values
/// materialized inside one bounded-enumeration chunk or one interpreter trial
/// are created in a burst and die together shortly after.  Routing their
/// allocations through a per-scope arena replaces one malloc/free pair per
/// value with a pointer bump, and releases whole 64 KiB blocks at scope exit.
///
/// Design notes (see DESIGN.md "Arena lifetime rules" for the full story):
///
///  * Blocks are reference-counted, not scope-owned.  An `ArenaAllocator<T>`
///    pins the specific `ArenaBlock` it allocates from via a
///    `std::shared_ptr<ArenaBlock>`, and `std::allocate_shared` stores a copy
///    of the allocator inside the control block it creates.  A value that
///    escapes its scope (into the interner, a memo cache, a counterexample
///    report) therefore keeps exactly its own block alive; everything else in
///    the arena is still freed when the scope ends.  Escape is *safe*; it
///    only pins the escapee's 64 KiB block for as long as the escapee lives.
///
///  * The active arena is an ambient, thread-local property installed with
///    `ArenaScope` rather than a handle threaded through every factory call.
///    `ValueFactory` has hundreds of call sites across the evaluator, the
///    domains and the ops library; a TLS scope gives all of them arena
///    placement without widening every signature, and nesting scopes is just
///    a save/restore of one pointer.  Code that builds process-lifetime
///    singletons (the unit/bool/small-int caches) wraps construction in
///    `ArenaSuspend` to force plain heap allocation.
///
///  * Blocks hand out raw storage and never run destructors for their
///    contents.  Object destruction is still driven by shared_ptr refcounts;
///    the arena changes where the bytes live, not when dtors run.
///
///  * Thread safety: an Arena and its blocks are owned by one thread's
///    ArenaScope and bumped only by that thread.  Values allocated in a
///    worker's arena may be *read* from other threads after the usual
///    synchronization (pool join, interner shard mutex); the block refcount
///    is a std::shared_ptr control block and therefore atomic.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_ARENA_H
#define COMMCSL_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <new>

namespace commcsl {

/// One fixed-size chunk of bump-allocated storage.
class ArenaBlock {
public:
  explicit ArenaBlock(size_t Bytes)
      : Buf(static_cast<char *>(::operator new(Bytes))), Cap(Bytes) {}
  ~ArenaBlock() { ::operator delete(Buf); }

  ArenaBlock(const ArenaBlock &) = delete;
  ArenaBlock &operator=(const ArenaBlock &) = delete;

  /// Returns Bytes of storage aligned to Align, or nullptr if the block is
  /// too full.  Only the owning thread bumps a block.
  void *tryAlloc(size_t Bytes, size_t Align) {
    size_t Aligned = (Used + (Align - 1)) & ~(Align - 1);
    if (Aligned + Bytes > Cap)
      return nullptr;
    Used = Aligned + Bytes;
    return Buf + Aligned;
  }

  /// Non-consuming fit probe.
  bool canFit(size_t Bytes, size_t Align) const {
    size_t Aligned = (Used + (Align - 1)) & ~(Align - 1);
    return Aligned + Bytes <= Cap;
  }

  /// True if P points into this block's storage.  Lets the allocator tell
  /// bump-allocated memory (freed wholesale with the block) from
  /// heap-fallback memory (must be operator delete'd individually).
  bool contains(const void *P) const { return P >= Buf && P < Buf + Cap; }

private:
  char *Buf;
  size_t Cap;
  size_t Used = 0;
};

/// A rotating sequence of ArenaBlocks.  Not thread-safe; one Arena belongs
/// to one ArenaScope on one thread.
class Arena {
public:
  static constexpr size_t BlockBytes = 64 * 1024;

  /// The block an allocation of roughly Need bytes should target, rotating
  /// to a fresh block when the current one is too full.  Oversized requests
  /// (> BlockBytes / 2) are not worth a dedicated block; the returned block
  /// will fail tryAlloc and the allocator falls back to the heap.
  const std::shared_ptr<ArenaBlock> &currentBlock(size_t Need) {
    if (!Cur || (Need <= BlockBytes / 2 &&
                 !Cur->canFit(Need, alignof(std::max_align_t))))
      Cur = std::make_shared<ArenaBlock>(BlockBytes);
    return Cur;
  }

private:
  std::shared_ptr<ArenaBlock> Cur;
};

/// Minimal std allocator that bumps from one pinned ArenaBlock, falling back
/// to the global heap when the block cannot satisfy a request.  All copies
/// (including the one std::allocate_shared stores in the control block) share
/// the same pinned block, so deallocate() can always classify a pointer with
/// contains(): in-block storage is a no-op (the block frees wholesale),
/// fallback storage is operator delete'd.  This keeps correctness independent
/// of which allocator copy the shared_ptr implementation calls when.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<ArenaBlock> B) : Block(std::move(B)) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) : Block(O.Block) {}

  T *allocate(size_t N) {
    if (Block)
      if (void *P = Block->tryAlloc(N * sizeof(T), alignof(T)))
        return static_cast<T *>(P);
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }

  void deallocate(T *P, size_t N) {
    if (Block && Block->contains(P))
      return; // Block storage dies with the block.
    ::operator delete(P);
    (void)N;
  }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return Block == O.Block;
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return Block != O.Block;
  }

  std::shared_ptr<ArenaBlock> Block;
};

namespace detail {
/// The thread's active arena, or nullptr when allocation should use the
/// plain heap.  Defined in Arena.cpp.
extern thread_local Arena *CurrentArena;
} // namespace detail

/// Installs a fresh Arena as the calling thread's active arena for the
/// lifetime of the scope (stack-only; save/restore semantics nest).
class ArenaScope {
public:
  ArenaScope() : Prev(detail::CurrentArena) { detail::CurrentArena = &A; }
  ~ArenaScope() { detail::CurrentArena = Prev; }
  ArenaScope(const ArenaScope &) = delete;
  ArenaScope &operator=(const ArenaScope &) = delete;

  /// The calling thread's active arena, or nullptr if none is installed.
  static Arena *current() { return detail::CurrentArena; }

private:
  Arena A;
  Arena *Prev;
};

/// Temporarily disables arena placement on the calling thread; used when
/// constructing values that must outlive any scope (interned singletons).
class ArenaSuspend {
public:
  ArenaSuspend() : Prev(detail::CurrentArena) { detail::CurrentArena = nullptr; }
  ~ArenaSuspend() { detail::CurrentArena = Prev; }
  ArenaSuspend(const ArenaSuspend &) = delete;
  ArenaSuspend &operator=(const ArenaSuspend &) = delete;

private:
  Arena *Prev;
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_ARENA_H
