//===-- support/Diagnostics.h - Diagnostic engine ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine used by the lexer, parser, type checker,
/// validity checker, and verifier. Diagnostics are collected rather than
/// printed eagerly so that library clients (tests, the CLI driver, the bench
/// harness) decide how to render them.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_DIAGNOSTICS_H
#define COMMCSL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace commcsl {

/// Severity of a diagnostic.
enum class DiagKind {
  Error,
  Warning,
  Note,
};

/// Stable machine-readable categories for diagnostics. Tests assert on these
/// codes so that negative tests pin down *why* a program was rejected, not
/// just that it was rejected.
enum class DiagCode {
  None,
  // Lexing / parsing.
  LexError,
  ParseError,
  // Type checking.
  TypeError,
  UnknownName,
  DuplicateName,
  // Resource-specification validity (Def. 3.1).
  SpecInvalidPrecondition, ///< Property (A): pre does not preserve low alpha.
  SpecInvalidCommutes,     ///< Property (B): an action pair fails to commute.
  SpecIllFormed,
  SpecCheckTimeout, ///< validity check cut short by a request budget.
  // Program verification (CommCSL rules).
  VerifyLowInitialValue,  ///< alpha of initial shared value not provably low.
  VerifyGuardMissing,     ///< action performed without holding its guard.
  VerifyUniqueGuardSplit, ///< unique action guard used by several threads.
  VerifyPreUnprovable,    ///< retroactive PRE check failed at unshare.
  VerifyCountNotLow,      ///< number of modifications not provably low.
  VerifyHighBranchEffect, ///< relational fact required under high control flow.
  VerifyEntailment,       ///< generic entailment failure (assert/ensures).
  VerifyContract,         ///< call-site contract failure.
  VerifyDataRace,         ///< par branches share written state.
  VerifyResourceState,    ///< share/unshare/atomic used inconsistently.
  VerifyHeap,             ///< heap access without permission.
  // Runtime (interpreter).
  RuntimeAbort,
  // Static pre-analysis lints (analysis/Lint, analysis/Taint).
  LintUninitialized, ///< variable may be read before initialization.
  LintUnreachable,   ///< statement can never execute.
  LintOutsideAtomic, ///< perform/resval outside an atomic block.
  LintHighSink,      ///< high data or pc reaches a low-contracted sink.
};

/// Returns a short stable mnemonic for \p Code (e.g. "spec-commutes").
const char *diagCodeName(DiagCode Code);

/// A single diagnostic message.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  DiagCode Code = DiagCode::None;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics for one compilation / verification run.
class DiagnosticEngine {
public:
  void report(DiagKind Kind, DiagCode Code, SourceLoc Loc, std::string Msg) {
    Diags.push_back({Kind, Code, Loc, std::move(Msg)});
    if (Kind == DiagKind::Error)
      ++NumErrors;
  }

  void error(DiagCode Code, SourceLoc Loc, std::string Msg) {
    report(DiagKind::Error, Code, Loc, std::move(Msg));
  }

  void warning(DiagCode Code, SourceLoc Loc, std::string Msg) {
    report(DiagKind::Warning, Code, Loc, std::move(Msg));
  }

  void note(SourceLoc Loc, std::string Msg) {
    report(DiagKind::Note, DiagCode::None, Loc, std::move(Msg));
  }

  /// Appends all diagnostics of \p Other, preserving their order. Used to
  /// merge per-task engines back into a parent in a deterministic order
  /// after parallel verification.
  void append(const DiagnosticEngine &Other) {
    for (const Diagnostic &D : Other.diagnostics())
      report(D.Kind, D.Code, D.Loc, D.Message);
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// True if some collected error carries \p Code.
  bool hasErrorWithCode(DiagCode Code) const;

  /// Renders all diagnostics, one per line, prefixed with \p FileName.
  std::string str(const std::string &FileName = "") const;

  /// Like str(), but follows each located diagnostic with the offending
  /// source line from \p Source and a caret marking the column:
  ///
  ///   file.hv:3:9: warning [lint-high-sink]: public output depends on ...
  ///     output h;
  ///           ^
  std::string strWithSnippets(const std::string &Source,
                              const std::string &FileName = "") const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace commcsl

#endif // COMMCSL_SUPPORT_DIAGNOSTICS_H
