//===-- support/Arena.cpp - Bump allocation for short-lived values ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

namespace commcsl {
namespace detail {

thread_local Arena *CurrentArena = nullptr;

} // namespace detail
} // namespace commcsl
