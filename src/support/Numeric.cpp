//===-- support/Numeric.cpp - Strict numeric string parsing ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "support/Numeric.h"

#include <limits>

using namespace commcsl;

std::optional<uint64_t> commcsl::parseUnsigned64(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (std::numeric_limits<uint64_t>::max() - Digit) / 10)
      return std::nullopt; // overflow
    V = V * 10 + Digit;
  }
  return V;
}

std::optional<unsigned> commcsl::parseJobsValue(const std::string &S) {
  std::optional<uint64_t> V = parseUnsigned64(S);
  if (!V || *V == 0 || *V > std::numeric_limits<unsigned>::max())
    return std::nullopt;
  return static_cast<unsigned>(*V);
}
