//===-- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across modules: joining, splitting, trimming and a
/// tiny hash combiner used by the hash-consed term arena and value hashing.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_STRINGUTILS_H
#define COMMCSL_SUPPORT_STRINGUTILS_H

#include <cstddef>
#include <string>
#include <vector>

namespace commcsl {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Splits \p S at every occurrence of \p Sep; the separator is not included.
std::vector<std::string> split(const std::string &S, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// True if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string jsonEscape(const std::string &S);

/// Boost-style hash combiner.
inline void hashCombine(size_t &Seed, size_t Hash) {
  Seed ^= Hash + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

} // namespace commcsl

#endif // COMMCSL_SUPPORT_STRINGUTILS_H
