//===-- support/Signals.h - SIGINT/SIGTERM flush-and-exit -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interrupt handling for the CLI and the serve daemon. Before this
/// existed, a ^C mid-run killed the process with the default disposition
/// and every buffered observability sink — the in-memory trace recorder,
/// the metrics registry a `--metrics-json` flag promised to write — was
/// lost.
///
/// The design avoids async-signal-handler restrictions entirely: the
/// watcher *blocks* SIGINT and SIGTERM in the installing thread (every
/// thread created afterwards inherits the mask, so install before the
/// thread pool spins up) and receives them synchronously on a dedicated
/// thread via `sigwait`. That thread runs ordinary code — it may lock,
/// allocate, and do file I/O — so the registered flush actions are plain
/// `std::function`s.
///
/// Delivery policy:
///  - If a graceful handler is set (the serve daemon's drain hook), the
///    first signal invokes it and the process keeps running; the daemon
///    drains in-flight requests and exits through `main` normally.
///  - Otherwise — or on a second signal while a graceful drain is in
///    progress — every registered flush action runs (LIFO), then the
///    process terminates with the conventional status `128 + signo`
///    via `std::_Exit` (no static destructors: worker threads may be
///    mid-verification and unwinding them is not safe).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SUPPORT_SIGNALS_H
#define COMMCSL_SUPPORT_SIGNALS_H

#include <cstdint>
#include <functional>

namespace commcsl {

/// Blocks SIGINT/SIGTERM in the calling thread and starts the watcher
/// thread. Call once, first thing in `main`, before any other thread
/// (pool workers inherit the mask and would otherwise steal deliveries).
/// Idempotent; subsequent calls are no-ops.
void installSignalWatcher();

/// Registers a flush action to run on fatal signal delivery, watcher
/// thread context (ordinary code allowed). Actions run in LIFO order.
/// Returns a token for `removeSignalFlushAction`.
uint64_t addSignalFlushAction(std::function<void()> Action);

/// Deregisters a flush action (no-op for unknown tokens).
void removeSignalFlushAction(uint64_t Token);

/// Sets (or clears, with nullptr-like empty function) the graceful
/// handler consulted on first delivery. The handler receives the signal
/// number and must not block: it should only *trigger* a shutdown (e.g.
/// `Server::stop`) and return.
///
/// This call is a barrier: if the previous handler is mid-invocation on
/// the watcher thread, it waits for that invocation to return before
/// replacing it. Clear the handler (pass `{}`) *before* destroying
/// anything it captures — e.g. `runServe` clears it between
/// `Server::run()` returning and the Server leaving scope, or the
/// watcher could call `stop()` on a dead object. Consequently the
/// handler itself must never call this function (self-deadlock).
void setGracefulSignalHandler(std::function<void(int)> Handler);

/// The signal consumed by the graceful path, or 0. Lets `main` exit
/// `128 + signo` after a drain that was signal-initiated.
int consumedSignal();

} // namespace commcsl

#endif // COMMCSL_SUPPORT_SIGNALS_H
