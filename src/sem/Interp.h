//===-- sem/Interp.h - Concurrent small-step interpreter --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable small-step operational semantics of the concurrent language
/// (Fig. 9 / App. A.1), extended with procedures, share/unshare, and atomic
/// blocks over resource values. Scheduling nondeterminism is resolved by a
/// pluggable Scheduler; atomic blocks execute in a single scheduler step
/// (rule ATOMIC: the body runs to completion while holding the resource).
///
/// Each shared resource additionally records the ordered log of performed
/// actions, which tests use to validate the commutativity story of
/// Lemma 4.2 (replaying permuted logs must preserve the abstraction).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SEM_INTERP_H
#define COMMCSL_SEM_INTERP_H

#include "lang/ExprEval.h"
#include "lang/Program.h"
#include "rspec/RSpec.h"
#include "sem/Scheduler.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace commcsl {

/// One recorded action application on a shared resource.
struct ActionLogEntry {
  std::string Action;
  bool Unique = false;
  ValueRef Arg;
  ValueRef Ret; ///< unit if the action has no returns clause
};

/// Runtime state of a shared resource.
struct ResourceState {
  const ResourceSpecDecl *Spec = nullptr;
  ValueRef InitialValue;
  ValueRef Value;
  bool Shared = false; ///< false after unshare
  std::vector<ActionLogEntry> Log;
};

/// Result of running a procedure to completion.
struct RunResult {
  enum class Status {
    Ok,
    Abort,     ///< runtime fault (heap fault, failed ghost assert, ...)
    Deadlock,  ///< all threads blocked on atomic-when
    StepLimit, ///< fuel exhausted
  };

  Status St = Status::Ok;
  std::string AbortReason;
  std::vector<ValueRef> Returns; ///< values of the return variables
  std::vector<ValueRef> Outputs; ///< values emitted by `output` statements
  /// Values released by `declassify` expressions, in evaluation order.
  /// Two runs whose release logs differ are incomparable for
  /// non-interference purposes: delimited release (the declassify policy)
  /// only relates runs that agree on what was released.
  std::vector<ValueRef> Declassified;
  std::vector<ResourceState> Resources; ///< final resource table (incl. logs)
  uint64_t Steps = 0;

  bool ok() const { return St == Status::Ok; }
};

/// Configuration of a run.
struct RunConfig {
  uint64_t MaxSteps = 2'000'000;
  /// When true, ghost `assert` boolean atoms whose variables are all bound
  /// are checked at runtime and abort the run on failure.
  bool CheckGhostAsserts = true;
  /// When true, every unshare replays the recorded action log from the
  /// initial value and aborts if it does not reproduce the current value —
  /// an executable sanity check of the Sec. 3.5 consistency bookkeeping.
  bool CheckConsistencyOnUnshare = false;
  /// Optional shared memoization registry for resource-spec evaluation
  /// (`alpha`, `f_a`). When set, every `perform`/`share`/enabledness check
  /// reuses the per-spec cache instead of re-evaluating through the
  /// expression interpreter. Callers may share one registry across many
  /// runs (it is thread-safe); it must not outlive the Program.
  std::shared_ptr<SpecCacheRegistry> SpecCaches;
};

/// Interprets programs. Thread-compatible: each run is independent.
class Interpreter {
public:
  Interpreter(const Program &Prog, RunConfig Config = {});

  /// Runs procedure \p ProcName with the given argument values under
  /// \p Sched. Arguments must match the procedure's parameter count.
  RunResult run(const std::string &ProcName,
                const std::vector<ValueRef> &Args, Scheduler &Sched) const;

private:
  /// The stepping loop, templated on the concrete scheduler so the
  /// per-step pick() devirtualizes and inlines; run() dispatches the
  /// known scheduler types here. Defined (and instantiated) in Interp.cpp.
  template <class SchedT>
  RunResult runWith(const std::string &ProcName,
                    const std::vector<ValueRef> &Args, SchedT &Sched) const;

  const Program &Prog;
  RunConfig Config;
  /// Whether any atomic block in the program carries a `when` action.
  /// Without one, a thread's runnability changes only on spawn/completion
  /// events, so the scheduler's runnable set can be maintained
  /// incrementally instead of being rescanned every step.
  bool HasWhenAtomic;
};

/// Replays an action log against a spec from an initial value; returns the
/// resulting resource value. Used by consistency tests: any permutation of
/// the log that preserves each unique action's relative order must yield
/// the same abstraction (Lemma 4.2).
ValueRef replayLog(const RSpecRuntime &Runtime, const ValueRef &Initial,
                   const std::vector<ActionLogEntry> &Log);

} // namespace commcsl

#endif // COMMCSL_SEM_INTERP_H
