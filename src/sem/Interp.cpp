//===-- sem/Interp.cpp - Concurrent small-step interpreter -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sem/Interp.h"

#include <cassert>

using namespace commcsl;

namespace {

/// A procedure activation record; par branches of the same procedure share
/// one activation (the paper's semantics has a single store per program,
/// rules PAR1/PAR2).
struct Activation {
  EvalEnv Locals;
};
using ActPtr = std::shared_ptr<Activation>;

/// One continuation-stack entry.
struct StackEntry {
  const Command *Cmd = nullptr;
  size_t Idx = 0; ///< Block: next child; CallProc: 0 = enter, 1 = return
  ActPtr Act;
  ActPtr ChildAct; ///< CallProc: callee activation for return-value copy
};

struct Thread {
  std::vector<StackEntry> Stack;
  size_t Parent = static_cast<size_t>(-1);
  unsigned WaitingChildren = 0;
  bool Done = false;
};

/// Whole-run mutable state.
struct RunState {
  const Program &Prog;
  ExprEvaluator Eval;
  RunConfig Config;

  std::vector<Thread> Threads;
  std::vector<ResourceState> Resources;
  std::vector<ValueRef> Outputs;
  std::map<int64_t, int64_t> Heap;
  int64_t NextLoc = 1;

  bool Aborted = false;
  std::string AbortReason;

  explicit RunState(const Program &Prog, RunConfig Config)
      : Prog(Prog), Eval(&Prog), Config(std::move(Config)) {}

  /// A spec runtime wired to the shared per-spec memo cache, when one is
  /// configured.
  RSpecRuntime runtimeFor(const ResourceSpecDecl *Spec) {
    return RSpecRuntime(*Spec, &Prog,
                        Config.SpecCaches ? Config.SpecCaches->cacheFor(Spec)
                                          : nullptr);
  }

  void abort(const std::string &Reason) {
    if (!Aborted) {
      Aborted = true;
      AbortReason = Reason;
    }
  }

  ValueRef eval(const Expr &E, const ActPtr &Act) {
    return Eval.eval(E, Act->Locals);
  }

  ResourceState *resourceFor(const std::string &HandleVar, const ActPtr &Act) {
    auto It = Act->Locals.find(HandleVar);
    if (It == Act->Locals.end()) {
      abort("use of unbound resource handle '" + HandleVar + "'");
      return nullptr;
    }
    int64_t Id = It->second->getInt();
    if (Id < 0 || static_cast<size_t>(Id) >= Resources.size()) {
      abort("invalid resource handle '" + HandleVar + "'");
      return nullptr;
    }
    return &Resources[static_cast<size_t>(Id)];
  }

  /// Runtime check of ghost boolean assertions whose variables are bound.
  void checkGhost(const Contract &C, const ActPtr &Act) {
    if (!Config.CheckGhostAsserts)
      return;
    for (const ContractAtom &A : C) {
      if (A.AtomKind != ContractAtom::Kind::Bool)
        continue;
      std::vector<std::string> Vars;
      A.E->freeVars(Vars);
      bool AllBound = true;
      for (const std::string &V : Vars)
        AllBound &= Act->Locals.count(V) != 0;
      if (!AllBound)
        continue;
      if (!eval(*A.E, Act)->getBool())
        abort("ghost assertion failed: " + A.E->str());
    }
  }

  /// Executes an atomic block body to completion (rule ATOMIC). Returns
  /// false on abort. \p Fuel bounds inner loops.
  bool execAtomic(const Command &Cmd, const ActPtr &Act, ResourceState &Res,
                  uint64_t &Fuel);
};

bool RunState::execAtomic(const Command &Cmd, const ActPtr &Act,
                          ResourceState &Res, uint64_t &Fuel) {
  if (Aborted)
    return false;
  if (Fuel-- == 0) {
    abort("step limit exhausted inside atomic block");
    return false;
  }
  switch (Cmd.Kind) {
  case CmdKind::Skip:
    return true;
  case CmdKind::Block:
    for (const CommandRef &Child : Cmd.Children)
      if (!execAtomic(*Child, Act, Res, Fuel))
        return false;
    return true;
  case CmdKind::VarDecl:
    Act->Locals[Cmd.Var] = Cmd.Exprs.empty() ? Cmd.DeclTy->defaultValue()
                                             : eval(*Cmd.Exprs[0], Act);
    return true;
  case CmdKind::Assign:
    Act->Locals[Cmd.Var] = eval(*Cmd.Exprs[0], Act);
    return true;
  case CmdKind::If: {
    bool Cond = eval(*Cmd.Exprs[0], Act)->getBool();
    return execAtomic(Cond ? *Cmd.Children[0] : *Cmd.Children[1], Act, Res,
                      Fuel);
  }
  case CmdKind::While: {
    while (eval(*Cmd.Exprs[0], Act)->getBool()) {
      if (!execAtomic(*Cmd.Children[0], Act, Res, Fuel))
        return false;
      if (Fuel-- == 0) {
        abort("step limit exhausted inside atomic loop");
        return false;
      }
    }
    return true;
  }
  case CmdKind::HeapRead: {
    int64_t Addr = eval(*Cmd.Exprs[0], Act)->getInt();
    auto It = Heap.find(Addr);
    if (It == Heap.end()) {
      abort("heap read from unallocated location");
      return false;
    }
    Act->Locals[Cmd.Var] = ValueFactory::intV(It->second);
    return true;
  }
  case CmdKind::HeapWrite: {
    int64_t Addr = eval(*Cmd.Exprs[0], Act)->getInt();
    auto It = Heap.find(Addr);
    if (It == Heap.end()) {
      abort("heap write to unallocated location");
      return false;
    }
    It->second = eval(*Cmd.Exprs[1], Act)->getInt();
    return true;
  }
  case CmdKind::Alloc: {
    int64_t Loc = NextLoc++;
    Heap[Loc] = eval(*Cmd.Exprs[0], Act)->getInt();
    Act->Locals[Cmd.Var] = ValueFactory::intV(Loc);
    return true;
  }
  case CmdKind::Perform: {
    const ActionDecl *Action = Res.Spec->findAction(Cmd.Rets[0]);
    assert(Action && "perform of unknown action after type checking");
    RSpecRuntime Runtime = runtimeFor(Res.Spec);
    ValueRef Arg = eval(*Cmd.Exprs[0], Act);
    ValueRef Ret = Runtime.actionResult(*Action, Res.Value, Arg);
    Res.Value = Runtime.applyAction(*Action, Res.Value, Arg);
    Res.Log.push_back({Action->Name, Action->Unique, Arg, Ret});
    if (!Cmd.Var.empty())
      Act->Locals[Cmd.Var] = Ret;
    return true;
  }
  case CmdKind::ResVal:
    Act->Locals[Cmd.Var] = Res.Value;
    return true;
  case CmdKind::AssertGhost:
    checkGhost(Cmd.Asserted, Act);
    return !Aborted;
  case CmdKind::Output:
    Outputs.push_back(eval(*Cmd.Exprs[0], Act));
    return true;
  default:
    abort("unsupported command inside atomic block");
    return false;
  }
}

} // namespace

RunResult Interpreter::run(const std::string &ProcName,
                           const std::vector<ValueRef> &Args,
                           Scheduler &Sched) const {
  RunResult Result;
  const ProcDecl *Proc = Prog.findProc(ProcName);
  if (!Proc) {
    Result.St = RunResult::Status::Abort;
    Result.AbortReason = "unknown procedure '" + ProcName + "'";
    return Result;
  }
  assert(Args.size() == Proc->Params.size() && "argument count mismatch");

  RunState S(Prog, Config);
  auto MainAct = std::make_shared<Activation>();
  for (size_t I = 0; I < Proc->Params.size(); ++I)
    MainAct->Locals[Proc->Params[I].Name] = Args[I];
  for (const Param &R : Proc->Returns)
    MainAct->Locals[R.Name] = R.Ty->defaultValue();

  Thread Main;
  Main.Stack.push_back({Proc->Body.get(), 0, MainAct, nullptr});
  S.Threads.push_back(std::move(Main));

  uint64_t Steps = 0;
  while (true) {
    if (S.Aborted) {
      Result.St = RunResult::Status::Abort;
      Result.AbortReason = S.AbortReason;
      break;
    }
    // Collect runnable threads.
    std::vector<size_t> Runnable;
    bool AllDone = true;
    for (size_t I = 0; I < S.Threads.size(); ++I) {
      Thread &T = S.Threads[I];
      if (T.Done)
        continue;
      AllDone = false;
      if (T.WaitingChildren > 0)
        continue;
      if (T.Stack.empty())
        continue; // completion handled below, should not linger
      // atomic-when gating.
      const StackEntry &Top = T.Stack.back();
      if (Top.Cmd->Kind == CmdKind::Atomic && !Top.Cmd->Var.empty()) {
        ResourceState *Res = S.resourceFor(Top.Cmd->Aux, Top.Act);
        if (!Res)
          break;
        const ActionDecl *Action = Res->Spec->findAction(Top.Cmd->Var);
        assert(Action && "when-action resolved during type checking");
        RSpecRuntime Runtime = S.runtimeFor(Res->Spec);
        if (!Runtime.isEnabled(*Action, Res->Value))
          continue; // blocked
      }
      Runnable.push_back(I);
    }
    if (S.Aborted)
      continue;
    if (AllDone) {
      Result.St = RunResult::Status::Ok;
      break;
    }
    if (Runnable.empty()) {
      Result.St = RunResult::Status::Deadlock;
      Result.AbortReason = "all threads blocked on atomic-when";
      break;
    }
    if (Steps >= Config.MaxSteps) {
      Result.St = RunResult::Status::StepLimit;
      Result.AbortReason = "step limit exhausted";
      break;
    }
    ++Steps;

    size_t Tid = Sched.pick(Runnable);
    Thread &T = S.Threads[Tid];
    StackEntry &Top = T.Stack.back();
    const Command &Cmd = *Top.Cmd;

    switch (Cmd.Kind) {
    case CmdKind::Skip:
      T.Stack.pop_back();
      break;
    case CmdKind::Block: {
      if (Top.Idx < Cmd.Children.size()) {
        size_t I = Top.Idx++;
        T.Stack.push_back({Cmd.Children[I].get(), 0, Top.Act, nullptr});
      } else {
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::VarDecl:
      Top.Act->Locals[Cmd.Var] = Cmd.Exprs.empty()
                                     ? Cmd.DeclTy->defaultValue()
                                     : S.eval(*Cmd.Exprs[0], Top.Act);
      T.Stack.pop_back();
      break;
    case CmdKind::Assign:
      Top.Act->Locals[Cmd.Var] = S.eval(*Cmd.Exprs[0], Top.Act);
      T.Stack.pop_back();
      break;
    case CmdKind::HeapRead: {
      int64_t Addr = S.eval(*Cmd.Exprs[0], Top.Act)->getInt();
      auto It = S.Heap.find(Addr);
      if (It == S.Heap.end()) {
        S.abort("heap read from unallocated location");
        break;
      }
      Top.Act->Locals[Cmd.Var] = ValueFactory::intV(It->second);
      T.Stack.pop_back();
      break;
    }
    case CmdKind::HeapWrite: {
      int64_t Addr = S.eval(*Cmd.Exprs[0], Top.Act)->getInt();
      auto It = S.Heap.find(Addr);
      if (It == S.Heap.end()) {
        S.abort("heap write to unallocated location");
        break;
      }
      It->second = S.eval(*Cmd.Exprs[1], Top.Act)->getInt();
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Alloc: {
      int64_t Loc = S.NextLoc++;
      S.Heap[Loc] = S.eval(*Cmd.Exprs[0], Top.Act)->getInt();
      Top.Act->Locals[Cmd.Var] = ValueFactory::intV(Loc);
      T.Stack.pop_back();
      break;
    }
    case CmdKind::If: {
      bool Cond = S.eval(*Cmd.Exprs[0], Top.Act)->getBool();
      const Command *Branch =
          (Cond ? Cmd.Children[0] : Cmd.Children[1]).get();
      ActPtr Act = Top.Act;
      T.Stack.pop_back();
      T.Stack.push_back({Branch, 0, Act, nullptr});
      break;
    }
    case CmdKind::While: {
      if (S.eval(*Cmd.Exprs[0], Top.Act)->getBool())
        T.Stack.push_back({Cmd.Children[0].get(), 0, Top.Act, nullptr});
      else
        T.Stack.pop_back();
      break;
    }
    case CmdKind::Par: {
      if (Top.Idx == 0) {
        Top.Idx = 1;
        T.WaitingChildren = static_cast<unsigned>(Cmd.Children.size());
        ActPtr Act = Top.Act;
        // NOTE: pushing to S.Threads invalidates T/Top; nothing below uses
        // them before re-acquisition at the end of the loop body.
        for (const CommandRef &Branch : Cmd.Children) {
          Thread Child;
          Child.Parent = Tid;
          Child.Stack.push_back({Branch.get(), 0, Act, nullptr});
          S.Threads.push_back(std::move(Child));
        }
      } else {
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::CallProc: {
      if (Top.Idx == 0) {
        const ProcDecl *Callee = Prog.findProc(Cmd.Aux);
        assert(Callee && "unknown callee after type checking");
        auto CalleeAct = std::make_shared<Activation>();
        for (size_t I = 0; I < Callee->Params.size(); ++I)
          CalleeAct->Locals[Callee->Params[I].Name] =
              S.eval(*Cmd.Exprs[I], Top.Act);
        for (const Param &R : Callee->Returns)
          CalleeAct->Locals[R.Name] = R.Ty->defaultValue();
        Top.Idx = 1;
        Top.ChildAct = CalleeAct;
        T.Stack.push_back({Callee->Body.get(), 0, CalleeAct, nullptr});
      } else {
        const ProcDecl *Callee = Prog.findProc(Cmd.Aux);
        for (size_t I = 0; I < Cmd.Rets.size(); ++I)
          Top.Act->Locals[Cmd.Rets[I]] =
              Top.ChildAct->Locals[Callee->Returns[I].Name];
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::Share: {
      const ResourceSpecDecl *Spec = Prog.findSpec(Cmd.Aux);
      assert(Spec && "unknown spec after type checking");
      ValueRef Init = S.eval(*Cmd.Exprs[0], Top.Act);
      RSpecRuntime Runtime = S.runtimeFor(Spec);
      if (!Runtime.invHolds(Init)) {
        S.abort("shared initial value violates the spec invariant of '" +
                Spec->Name + "'");
        break;
      }
      ResourceState Res;
      Res.Spec = Spec;
      Res.InitialValue = Init;
      Res.Value = Init;
      Res.Shared = true;
      Top.Act->Locals[Cmd.Var] =
          ValueFactory::intV(static_cast<int64_t>(S.Resources.size()));
      S.Resources.push_back(std::move(Res));
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Unshare: {
      ResourceState *Res = S.resourceFor(Cmd.Aux, Top.Act);
      if (!Res)
        break;
      if (!Res->Shared) {
        S.abort("unshare of an already-unshared resource");
        break;
      }
      if (Config.CheckConsistencyOnUnshare) {
        RSpecRuntime Runtime = S.runtimeFor(Res->Spec);
        ValueRef Replayed = replayLog(Runtime, Res->InitialValue, Res->Log);
        if (!Value::equal(Replayed, Res->Value)) {
          S.abort("consistency check failed at unshare: the recorded "
                  "action log does not reproduce the resource value");
          break;
        }
      }
      Res->Shared = false;
      Top.Act->Locals[Cmd.Var] = Res->Value;
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Atomic: {
      ResourceState *Res = S.resourceFor(Cmd.Aux, Top.Act);
      if (!Res)
        break;
      if (!Res->Shared) {
        S.abort("atomic block on an unshared resource");
        break;
      }
      uint64_t Fuel = Config.MaxSteps - Steps + 1;
      S.execAtomic(*Cmd.Children[0], Top.Act, *Res, Fuel);
      if (!S.Aborted)
        T.Stack.pop_back();
      break;
    }
    case CmdKind::Perform:
    case CmdKind::ResVal:
      S.abort("perform/resval outside atomic block");
      break;
    case CmdKind::AssertGhost:
      S.checkGhost(Cmd.Asserted, Top.Act);
      if (!S.Aborted)
        T.Stack.pop_back();
      break;
    case CmdKind::Output:
      S.Outputs.push_back(S.eval(*Cmd.Exprs[0], Top.Act));
      T.Stack.pop_back();
      break;
    }

    // Thread completion propagates to the parent. Re-acquire the thread:
    // the Par case above may have reallocated S.Threads.
    Thread &Stepped = S.Threads[Tid];
    if (!S.Aborted && Stepped.Stack.empty() && !Stepped.Done) {
      Stepped.Done = true;
      if (Stepped.Parent != static_cast<size_t>(-1)) {
        assert(S.Threads[Stepped.Parent].WaitingChildren > 0);
        --S.Threads[Stepped.Parent].WaitingChildren;
      }
    }
  }

  Result.Steps = Steps;
  if (Result.St == RunResult::Status::Ok)
    for (const Param &R : Proc->Returns)
      Result.Returns.push_back(MainAct->Locals[R.Name]);
  Result.Resources = std::move(S.Resources);
  Result.Outputs = std::move(S.Outputs);
  return Result;
}

ValueRef commcsl::replayLog(const RSpecRuntime &Runtime,
                            const ValueRef &Initial,
                            const std::vector<ActionLogEntry> &Log) {
  ValueRef V = Initial;
  for (const ActionLogEntry &E : Log) {
    const ActionDecl *Action = Runtime.decl().findAction(E.Action);
    assert(Action && "log entry with unknown action");
    V = Runtime.applyAction(*Action, V, E.Arg);
  }
  return V;
}
