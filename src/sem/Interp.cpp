//===-- sem/Interp.cpp - Concurrent small-step interpreter -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "sem/Interp.h"

#include "support/Arena.h"

#include <cassert>

using namespace commcsl;

namespace {

/// A procedure activation record; par branches of the same procedure share
/// one activation (the paper's semantics has a single store per program,
/// rules PAR1/PAR2).
struct Activation {
  EvalEnv Locals;
};
using ActPtr = std::shared_ptr<Activation>;

/// One continuation-stack entry.
///
/// `Act` is a non-owning pointer: every activation is kept alive either by
/// run()'s `MainAct` local or by the owning thread's `OwnedActs` stack (one
/// entry per in-flight procedure call), and that owner strictly outlives
/// every entry referencing the activation — callee entries sit above their
/// CallProc entry until the call returns, and par children share the
/// parent's activation while the parent is blocked on `WaitingChildren`
/// with its own stack intact. Keeping the entry trivially copyable (no
/// owning member) lets push/pop — the interpreter's hottest edge — inline
/// to a couple of stores.
struct StackEntry {
  const Command *Cmd = nullptr;
  size_t Idx = 0; ///< Block: next child; CallProc: 0 = enter, 1 = return
  Activation *Act = nullptr;
};

static_assert(std::is_trivially_copyable_v<StackEntry>,
              "stack pushes must compile to plain stores");

struct Thread {
  std::vector<StackEntry> Stack;
  /// Activations of in-flight procedure calls, innermost last. Entries in
  /// `Stack` borrow these; the innermost call's CallProc entry reads
  /// `OwnedActs.back()` on return.
  std::vector<ActPtr> OwnedActs;
  size_t Parent = static_cast<size_t>(-1);
  unsigned WaitingChildren = 0;
  bool Done = false;
};

/// Hint-cached access to the local binding named by \p Cmd's target
/// variable (default-inserting like operator[]).
ValueRef &localVar(Activation &Act, const Command &Cmd) {
  uint32_t H = Cmd.VarSlotHint.load(std::memory_order_relaxed);
  ValueRef &R = Act.Locals.slot(Cmd.Var, H);
  Cmd.VarSlotHint.store(H, std::memory_order_relaxed);
  return R;
}

/// Whole-run mutable state.
struct RunState {
  const Program &Prog;
  ExprEvaluator Eval;
  RunConfig Config;

  std::vector<Thread> Threads;
  std::vector<ResourceState> Resources;
  std::vector<ValueRef> Outputs;
  std::vector<ValueRef> Declassified;
  std::map<int64_t, int64_t> Heap;
  int64_t NextLoc = 1;

  bool Aborted = false;
  std::string AbortReason;

  /// Per-run spec runtimes, one per distinct spec (almost always one).
  /// Building a runtime involves a cache-registry lookup when memoization
  /// is on; performs sit in the innermost loop, so pay that once per run.
  std::vector<std::pair<const ResourceSpecDecl *, RSpecRuntime>> Runtimes;

  /// One-entry memo for the action-name lookup a `perform` does against
  /// its spec; the same perform node executes millions of times in loops.
  const Command *LastPerformCmd = nullptr;
  const ResourceSpecDecl *LastPerformSpec = nullptr;
  const ActionDecl *LastPerformAction = nullptr;

  explicit RunState(const Program &Prog, RunConfig Config)
      : Prog(Prog), Eval(&Prog), Config(std::move(Config)) {
    Eval.DeclassifySink = &Declassified;
  }

  /// A spec runtime wired to the shared per-spec memo cache, when one is
  /// configured. The returned reference is invalidated by the next
  /// runtimeFor call; use it immediately.
  const RSpecRuntime &runtimeFor(const ResourceSpecDecl *Spec) {
    for (const auto &E : Runtimes)
      if (E.first == Spec)
        return E.second;
    Runtimes.emplace_back(
        Spec, RSpecRuntime(*Spec, &Prog,
                           Config.SpecCaches ? Config.SpecCaches->cacheFor(Spec)
                                             : nullptr));
    return Runtimes.back().second;
  }

  const ActionDecl *performAction(const Command &Cmd,
                                  const ResourceSpecDecl *Spec) {
    if (LastPerformCmd == &Cmd && LastPerformSpec == Spec)
      return LastPerformAction;
    const ActionDecl *Action = Spec->findAction(Cmd.Rets[0]);
    LastPerformCmd = &Cmd;
    LastPerformSpec = Spec;
    LastPerformAction = Action;
    return Action;
  }

  void abort(const std::string &Reason) {
    if (!Aborted) {
      Aborted = true;
      AbortReason = Reason;
    }
  }

  ValueRef eval(const Expr &E, const Activation &Act) {
    return Eval.eval(E, Act.Locals);
  }

  ResourceState *resourceFor(const Command &Cmd, const Activation &Act) {
    uint32_t H = Cmd.AuxSlotHint.load(std::memory_order_relaxed);
    auto It = Act.Locals.findHint(Cmd.Aux, H);
    Cmd.AuxSlotHint.store(H, std::memory_order_relaxed);
    if (It == Act.Locals.end()) {
      abort("use of unbound resource handle '" + Cmd.Aux + "'");
      return nullptr;
    }
    int64_t Id = It->second->getInt();
    if (Id < 0 || static_cast<size_t>(Id) >= Resources.size()) {
      abort("invalid resource handle '" + Cmd.Aux + "'");
      return nullptr;
    }
    return &Resources[static_cast<size_t>(Id)];
  }

  /// Runtime check of ghost boolean assertions whose variables are bound.
  void checkGhost(const Contract &C, const Activation &Act) {
    if (!Config.CheckGhostAsserts)
      return;
    for (const ContractAtom &A : C) {
      if (A.AtomKind != ContractAtom::Kind::Bool)
        continue;
      std::vector<std::string> Vars;
      A.E->freeVars(Vars);
      bool AllBound = true;
      for (const std::string &V : Vars)
        AllBound &= Act.Locals.count(V) != 0;
      if (!AllBound)
        continue;
      if (!eval(*A.E, Act)->getBool())
        abort("ghost assertion failed: " + A.E->str());
    }
  }

  /// Executes an atomic block body to completion (rule ATOMIC). Returns
  /// false on abort. \p Fuel bounds inner loops.
  bool execAtomic(const Command &Cmd, Activation &Act, ResourceState &Res,
                  uint64_t &Fuel);
};

bool RunState::execAtomic(const Command &Cmd, Activation &Act,
                          ResourceState &Res, uint64_t &Fuel) {
  if (Aborted)
    return false;
  if (Fuel-- == 0) {
    abort("step limit exhausted inside atomic block");
    return false;
  }
  switch (Cmd.Kind) {
  case CmdKind::Skip:
    return true;
  case CmdKind::Block:
    for (const CommandRef &Child : Cmd.Children)
      if (!execAtomic(*Child, Act, Res, Fuel))
        return false;
    return true;
  case CmdKind::VarDecl:
    localVar(Act, Cmd) = Cmd.Exprs.empty() ? Cmd.DeclTy->defaultValue()
                                             : eval(*Cmd.Exprs[0], Act);
    return true;
  case CmdKind::Assign:
    localVar(Act, Cmd) = eval(*Cmd.Exprs[0], Act);
    return true;
  case CmdKind::If: {
    bool Cond = eval(*Cmd.Exprs[0], Act)->getBool();
    return execAtomic(Cond ? *Cmd.Children[0] : *Cmd.Children[1], Act, Res,
                      Fuel);
  }
  case CmdKind::While: {
    while (eval(*Cmd.Exprs[0], Act)->getBool()) {
      if (!execAtomic(*Cmd.Children[0], Act, Res, Fuel))
        return false;
      if (Fuel-- == 0) {
        abort("step limit exhausted inside atomic loop");
        return false;
      }
    }
    return true;
  }
  case CmdKind::HeapRead: {
    int64_t Addr = eval(*Cmd.Exprs[0], Act)->getInt();
    auto It = Heap.find(Addr);
    if (It == Heap.end()) {
      abort("heap read from unallocated location");
      return false;
    }
    localVar(Act, Cmd) = ValueFactory::intV(It->second);
    return true;
  }
  case CmdKind::HeapWrite: {
    int64_t Addr = eval(*Cmd.Exprs[0], Act)->getInt();
    auto It = Heap.find(Addr);
    if (It == Heap.end()) {
      abort("heap write to unallocated location");
      return false;
    }
    It->second = eval(*Cmd.Exprs[1], Act)->getInt();
    return true;
  }
  case CmdKind::Alloc: {
    int64_t Loc = NextLoc++;
    Heap[Loc] = eval(*Cmd.Exprs[0], Act)->getInt();
    localVar(Act, Cmd) = ValueFactory::intV(Loc);
    return true;
  }
  case CmdKind::Perform: {
    const ActionDecl *Action = performAction(Cmd, Res.Spec);
    assert(Action && "perform of unknown action after type checking");
    const RSpecRuntime &Runtime = runtimeFor(Res.Spec);
    ValueRef Arg = eval(*Cmd.Exprs[0], Act);
    ValueRef Ret = Runtime.actionResult(*Action, Res.Value, Arg);
    Res.Value = Runtime.applyAction(*Action, Res.Value, Arg);
    Res.Log.push_back(
        {Action->Name, Action->Unique, std::move(Arg), std::move(Ret)});
    if (!Cmd.Var.empty())
      localVar(Act, Cmd) = Res.Log.back().Ret;
    return true;
  }
  case CmdKind::ResVal:
    localVar(Act, Cmd) = Res.Value;
    return true;
  case CmdKind::AssertGhost:
    checkGhost(Cmd.Asserted, Act);
    return !Aborted;
  case CmdKind::Output:
    Outputs.push_back(eval(*Cmd.Exprs[0], Act));
    return true;
  default:
    abort("unsupported command inside atomic block");
    return false;
  }
}

/// Whether \p Cmd contains an atomic block gated by a `when` action.
bool cmdHasWhenAtomic(const Command &Cmd) {
  if (Cmd.Kind == CmdKind::Atomic && !Cmd.Var.empty())
    return true;
  for (const CommandRef &Child : Cmd.Children)
    if (Child && cmdHasWhenAtomic(*Child))
      return true;
  return false;
}

} // namespace

Interpreter::Interpreter(const Program &Prog, RunConfig Config)
    : Prog(Prog), Config(std::move(Config)), HasWhenAtomic([&Prog] {
        for (const ProcDecl &P : Prog.Procs)
          if (P.Body && cmdHasWhenAtomic(*P.Body))
            return true;
        return false;
      }()) {}

RunResult Interpreter::run(const std::string &ProcName,
                           const std::vector<ValueRef> &Args,
                           Scheduler &Sched) const {
  // Dispatch once on the concrete scheduler type so the per-step pick()
  // call in the stepping loop is non-virtual and inlinable.
  if (auto *RS = dynamic_cast<RandomScheduler *>(&Sched))
    return runWith(ProcName, Args, *RS);
  if (auto *RR = dynamic_cast<RoundRobinScheduler *>(&Sched))
    return runWith(ProcName, Args, *RR);
  if (auto *BS = dynamic_cast<BurstScheduler *>(&Sched))
    return runWith(ProcName, Args, *BS);
  return runWith(ProcName, Args, Sched);
}

template <class SchedT>
RunResult Interpreter::runWith(const std::string &ProcName,
                               const std::vector<ValueRef> &Args,
                               SchedT &Sched) const {
  RunResult Result;
  const ProcDecl *Proc = Prog.findProc(ProcName);
  if (!Proc) {
    Result.St = RunResult::Status::Abort;
    Result.AbortReason = "unknown procedure '" + ProcName + "'";
    return Result;
  }
  assert(Args.size() == Proc->Params.size() && "argument count mismatch");

  RunState S(Prog, Config);
  auto MainAct = std::make_shared<Activation>();
  for (size_t I = 0; I < Proc->Params.size(); ++I)
    MainAct->Locals[Proc->Params[I].Name] = Args[I];
  for (const Param &R : Proc->Returns)
    MainAct->Locals[R.Name] = R.Ty->defaultValue();

  Thread Main;
  Main.Stack.reserve(8);
  Main.Stack.push_back({Proc->Body.get(), 0, MainAct.get()});
  S.Threads.push_back(std::move(Main));

  // Values created during the run (loop counters, intermediate states,
  // log entries) are run-transient: serve them from a run-local arena.
  // Returned values and resource logs escape into the result, which pins
  // exactly the blocks they occupy.
  ArenaScope RunArena;

  uint64_t Steps = 0;
  std::vector<size_t> Runnable; // hoisted: reused across steps
  // Without `when`-gated atomics, a thread's runnability changes only on
  // spawn/completion events: the scan below is skipped on steps in between
  // and the previous runnable set is reused (it is exactly what the scan
  // would recompute). With `when` guards, any step can flip enabledness,
  // so the set is rebuilt every step.
  bool RunnableDirty = true;
  while (true) {
    if (S.Aborted) {
      Result.St = RunResult::Status::Abort;
      Result.AbortReason = S.AbortReason;
      break;
    }
    if (HasWhenAtomic || RunnableDirty) {
      RunnableDirty = false;
      // Collect runnable threads.
      Runnable.clear();
      bool AllDone = true;
      for (size_t I = 0; I < S.Threads.size(); ++I) {
        Thread &T = S.Threads[I];
        if (T.Done)
          continue;
        AllDone = false;
        if (T.WaitingChildren > 0)
          continue;
        if (T.Stack.empty())
          continue; // completion handled below, should not linger
        // atomic-when gating.
        const StackEntry &Top = T.Stack.back();
        if (Top.Cmd->Kind == CmdKind::Atomic && !Top.Cmd->Var.empty()) {
          ResourceState *Res = S.resourceFor(*Top.Cmd, *Top.Act);
          if (!Res)
            break;
          const ActionDecl *Action = Res->Spec->findAction(Top.Cmd->Var);
          assert(Action && "when-action resolved during type checking");
          const RSpecRuntime &Runtime = S.runtimeFor(Res->Spec);
          if (!Runtime.isEnabled(*Action, Res->Value))
            continue; // blocked
        }
        Runnable.push_back(I);
      }
      if (S.Aborted)
        continue;
      if (AllDone) {
        Result.St = RunResult::Status::Ok;
        break;
      }
      if (Runnable.empty()) {
        Result.St = RunResult::Status::Deadlock;
        Result.AbortReason = "all threads blocked on atomic-when";
        break;
      }
    }
    if (Steps >= Config.MaxSteps) {
      Result.St = RunResult::Status::StepLimit;
      Result.AbortReason = "step limit exhausted";
      break;
    }
    ++Steps;

    size_t Tid = Sched.pick(Runnable);
    Thread &T = S.Threads[Tid];
    StackEntry &Top = T.Stack.back();
    const Command &Cmd = *Top.Cmd;

    switch (Cmd.Kind) {
    case CmdKind::Skip:
      T.Stack.pop_back();
      break;
    case CmdKind::Block: {
      if (Top.Idx < Cmd.Children.size()) {
        size_t I = Top.Idx++;
        T.Stack.push_back({Cmd.Children[I].get(), 0, Top.Act});
      } else {
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::VarDecl:
      localVar(*Top.Act, Cmd) = Cmd.Exprs.empty()
                                     ? Cmd.DeclTy->defaultValue()
                                     : S.eval(*Cmd.Exprs[0], *Top.Act);
      T.Stack.pop_back();
      break;
    case CmdKind::Assign:
      localVar(*Top.Act, Cmd) = S.eval(*Cmd.Exprs[0], *Top.Act);
      T.Stack.pop_back();
      break;
    case CmdKind::HeapRead: {
      int64_t Addr = S.eval(*Cmd.Exprs[0], *Top.Act)->getInt();
      auto It = S.Heap.find(Addr);
      if (It == S.Heap.end()) {
        S.abort("heap read from unallocated location");
        break;
      }
      localVar(*Top.Act, Cmd) = ValueFactory::intV(It->second);
      T.Stack.pop_back();
      break;
    }
    case CmdKind::HeapWrite: {
      int64_t Addr = S.eval(*Cmd.Exprs[0], *Top.Act)->getInt();
      auto It = S.Heap.find(Addr);
      if (It == S.Heap.end()) {
        S.abort("heap write to unallocated location");
        break;
      }
      It->second = S.eval(*Cmd.Exprs[1], *Top.Act)->getInt();
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Alloc: {
      int64_t Loc = S.NextLoc++;
      S.Heap[Loc] = S.eval(*Cmd.Exprs[0], *Top.Act)->getInt();
      localVar(*Top.Act, Cmd) = ValueFactory::intV(Loc);
      T.Stack.pop_back();
      break;
    }
    case CmdKind::If: {
      bool Cond = S.eval(*Cmd.Exprs[0], *Top.Act)->getBool();
      const Command *Branch =
          (Cond ? Cmd.Children[0] : Cmd.Children[1]).get();
      Activation *Act = Top.Act;
      T.Stack.pop_back();
      T.Stack.push_back({Branch, 0, Act});
      break;
    }
    case CmdKind::While: {
      if (S.eval(*Cmd.Exprs[0], *Top.Act)->getBool())
        T.Stack.push_back({Cmd.Children[0].get(), 0, Top.Act});
      else
        T.Stack.pop_back();
      break;
    }
    case CmdKind::Par: {
      if (Top.Idx == 0) {
        Top.Idx = 1;
        T.WaitingChildren = static_cast<unsigned>(Cmd.Children.size());
        Activation *Act = Top.Act;
        // NOTE: pushing to S.Threads invalidates T/Top; nothing below uses
        // them before re-acquisition at the end of the loop body.
        for (const CommandRef &Branch : Cmd.Children) {
          Thread Child;
          Child.Parent = Tid;
          Child.Stack.reserve(8);
          Child.Stack.push_back({Branch.get(), 0, Act});
          S.Threads.push_back(std::move(Child));
        }
        RunnableDirty = true; // parent blocked, children spawned
      } else {
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::CallProc: {
      if (Top.Idx == 0) {
        const ProcDecl *Callee = Prog.findProc(Cmd.Aux);
        assert(Callee && "unknown callee after type checking");
        auto CalleeAct = std::make_shared<Activation>();
        for (size_t I = 0; I < Callee->Params.size(); ++I)
          CalleeAct->Locals[Callee->Params[I].Name] =
              S.eval(*Cmd.Exprs[I], *Top.Act);
        for (const Param &R : Callee->Returns)
          CalleeAct->Locals[R.Name] = R.Ty->defaultValue();
        Top.Idx = 1;
        Activation *CalleeA = CalleeAct.get();
        T.OwnedActs.push_back(std::move(CalleeAct));
        T.Stack.push_back({Callee->Body.get(), 0, CalleeA});
      } else {
        const ProcDecl *Callee = Prog.findProc(Cmd.Aux);
        Activation &CalleeA = *T.OwnedActs.back();
        for (size_t I = 0; I < Cmd.Rets.size(); ++I)
          Top.Act->Locals[Cmd.Rets[I]] =
              CalleeA.Locals[Callee->Returns[I].Name];
        T.OwnedActs.pop_back();
        T.Stack.pop_back();
      }
      break;
    }
    case CmdKind::Share: {
      const ResourceSpecDecl *Spec = Prog.findSpec(Cmd.Aux);
      assert(Spec && "unknown spec after type checking");
      ValueRef Init = S.eval(*Cmd.Exprs[0], *Top.Act);
      const RSpecRuntime &Runtime = S.runtimeFor(Spec);
      if (!Runtime.invHolds(Init)) {
        S.abort("shared initial value violates the spec invariant of '" +
                Spec->Name + "'");
        break;
      }
      ResourceState Res;
      Res.Spec = Spec;
      Res.InitialValue = Init;
      Res.Value = Init;
      Res.Shared = true;
      localVar(*Top.Act, Cmd) =
          ValueFactory::intV(static_cast<int64_t>(S.Resources.size()));
      S.Resources.push_back(std::move(Res));
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Unshare: {
      ResourceState *Res = S.resourceFor(Cmd, *Top.Act);
      if (!Res)
        break;
      if (!Res->Shared) {
        S.abort("unshare of an already-unshared resource");
        break;
      }
      if (Config.CheckConsistencyOnUnshare) {
        const RSpecRuntime &Runtime = S.runtimeFor(Res->Spec);
        ValueRef Replayed = replayLog(Runtime, Res->InitialValue, Res->Log);
        if (!Value::equal(Replayed, Res->Value)) {
          S.abort("consistency check failed at unshare: the recorded "
                  "action log does not reproduce the resource value");
          break;
        }
      }
      Res->Shared = false;
      localVar(*Top.Act, Cmd) = Res->Value;
      T.Stack.pop_back();
      break;
    }
    case CmdKind::Atomic: {
      ResourceState *Res = S.resourceFor(Cmd, *Top.Act);
      if (!Res)
        break;
      if (!Res->Shared) {
        S.abort("atomic block on an unshared resource");
        break;
      }
      uint64_t Fuel = Config.MaxSteps - Steps + 1;
      S.execAtomic(*Cmd.Children[0], *Top.Act, *Res, Fuel);
      if (!S.Aborted)
        T.Stack.pop_back();
      break;
    }
    case CmdKind::Perform:
    case CmdKind::ResVal:
      S.abort("perform/resval outside atomic block");
      break;
    case CmdKind::AssertGhost:
      S.checkGhost(Cmd.Asserted, *Top.Act);
      if (!S.Aborted)
        T.Stack.pop_back();
      break;
    case CmdKind::Output:
      S.Outputs.push_back(S.eval(*Cmd.Exprs[0], *Top.Act));
      T.Stack.pop_back();
      break;
    }

    // Thread completion propagates to the parent. Re-acquire the thread:
    // the Par case above may have reallocated S.Threads.
    Thread &Stepped = S.Threads[Tid];
    if (!S.Aborted && Stepped.Stack.empty() && !Stepped.Done) {
      Stepped.Done = true;
      if (Stepped.Parent != static_cast<size_t>(-1)) {
        assert(S.Threads[Stepped.Parent].WaitingChildren > 0);
        --S.Threads[Stepped.Parent].WaitingChildren;
      }
      RunnableDirty = true; // thread retired (and maybe parent woken)
    }
  }

  Result.Steps = Steps;
  if (Result.St == RunResult::Status::Ok)
    for (const Param &R : Proc->Returns)
      Result.Returns.push_back(MainAct->Locals[R.Name]);
  Result.Resources = std::move(S.Resources);
  Result.Outputs = std::move(S.Outputs);
  Result.Declassified = std::move(S.Declassified);
  return Result;
}

ValueRef commcsl::replayLog(const RSpecRuntime &Runtime,
                            const ValueRef &Initial,
                            const std::vector<ActionLogEntry> &Log) {
  ValueRef V = Initial;
  for (const ActionLogEntry &E : Log) {
    const ActionDecl *Action = Runtime.decl().findAction(E.Action);
    assert(Action && "log entry with unknown action");
    V = Runtime.applyAction(*Action, V, E.Arg);
  }
  return V;
}
