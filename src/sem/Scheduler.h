//===-- sem/Scheduler.h - Thread schedulers ---------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedulers resolving the nondeterminism of the small-step semantics
/// (rules PAR1/PAR2, Fig. 9). Internal timing channels arise precisely
/// because the schedule may correlate with secret-dependent computation
/// lengths; the empirical non-interference harness exercises many
/// schedulers to surface them.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SEM_SCHEDULER_H
#define COMMCSL_SEM_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace commcsl {

/// Strategy interface: picks which runnable thread performs the next step.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Picks one element of \p Runnable (non-empty, ascending thread ids).
  virtual size_t pick(const std::vector<size_t> &Runnable) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Deterministic round-robin over thread ids. This is the scheduler under
/// which the Fig. 1 program deterministically leaks whether h > 100.
class RoundRobinScheduler : public Scheduler {
public:
  size_t pick(const std::vector<size_t> &Runnable) override {
    // Choose the smallest runnable id strictly greater than the last pick,
    // wrapping around.
    for (size_t Id : Runnable)
      if (Id > Last)
        return Last = Id;
    return Last = Runnable.front();
  }

  std::string name() const override { return "round-robin"; }

private:
  size_t Last = static_cast<size_t>(-1);
};

/// Uniformly random scheduling with a fixed seed (reproducible).
class RandomScheduler : public Scheduler {
public:
  explicit RandomScheduler(uint64_t Seed) : Rng(Seed), Seed(Seed) {}

  size_t pick(const std::vector<size_t> &Runnable) override {
    std::uniform_int_distribution<size_t> Dist(0, Runnable.size() - 1);
    return Runnable[Dist(Rng)];
  }

  std::string name() const override {
    return "random(" + std::to_string(Seed) + ")";
  }

private:
  std::mt19937_64 Rng;
  uint64_t Seed;
};

/// Runs one preferred thread for a burst of steps before yielding; models
/// coarse time slicing, which amplifies timing differences between threads.
class BurstScheduler : public Scheduler {
public:
  /// \p BurstLen is clamped to at least 1: `Remaining = BurstLen - 1` on a
  /// zero length would wrap to UINT_MAX and pin one thread forever.
  BurstScheduler(uint64_t Seed, unsigned BurstLen)
      : Rng(Seed), BurstLen(BurstLen == 0 ? 1 : BurstLen), Seed(Seed) {}

  size_t pick(const std::vector<size_t> &Runnable) override {
    for (size_t Id : Runnable) {
      if (Id == Preferred && Remaining > 0) {
        --Remaining;
        return Id;
      }
    }
    std::uniform_int_distribution<size_t> Dist(0, Runnable.size() - 1);
    Preferred = Runnable[Dist(Rng)];
    Remaining = BurstLen - 1;
    return Preferred;
  }

  std::string name() const override {
    return "burst(" + std::to_string(BurstLen) + "," + std::to_string(Seed) +
           ")";
  }

private:
  std::mt19937_64 Rng;
  unsigned BurstLen;
  uint64_t Seed;
  size_t Preferred = static_cast<size_t>(-1);
  unsigned Remaining = 0;
};

} // namespace commcsl

#endif // COMMCSL_SEM_SCHEDULER_H
