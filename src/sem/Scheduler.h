//===-- sem/Scheduler.h - Thread schedulers ---------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedulers resolving the nondeterminism of the small-step semantics
/// (rules PAR1/PAR2, Fig. 9). Internal timing channels arise precisely
/// because the schedule may correlate with secret-dependent computation
/// lengths; the empirical non-interference harness exercises many
/// schedulers to surface them.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SEM_SCHEDULER_H
#define COMMCSL_SEM_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace commcsl {

/// Strategy interface: picks which runnable thread performs the next step.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Picks one element of \p Runnable (non-empty, ascending thread ids).
  virtual size_t pick(const std::vector<size_t> &Runnable) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Deterministic round-robin over thread ids. This is the scheduler under
/// which the Fig. 1 program deterministically leaks whether h > 100.
class RoundRobinScheduler final : public Scheduler {
public:
  size_t pick(const std::vector<size_t> &Runnable) override {
    // Choose the smallest runnable id strictly greater than the last pick,
    // wrapping around.
    for (size_t Id : Runnable)
      if (Id > Last)
        return Last = Id;
    return Last = Runnable.front();
  }

  std::string name() const override { return "round-robin"; }

private:
  size_t Last = static_cast<size_t>(-1);
};

/// Uniform draw over [0, N) from an mt19937_64, producing the same value
/// sequence as libstdc++'s `std::uniform_int_distribution<size_t>`: Lemire's
/// nearly-divisionless rejection method (Fast Random Integer Generation in
/// an Interval, TOMACS 29(1), 2019) over the generator's full 64-bit output.
/// Two reasons not to call the standard distribution on the scheduler's
/// per-step path:
///   - the distribution's algorithm is implementation-defined, so the
///     committed regression corpus and golden reports would silently depend
///     on the host C++ standard library; this pins the draw sequence;
///   - inlining it here avoids constructing a distribution object per pick
///     and keeps the whole draw division-free except in the rejection case,
///     whose probability is N/2^64 (i.e. never for scheduler-sized N).
class UniformPick {
public:
  size_t draw(std::mt19937_64 &Rng, size_t N) {
    const uint64_t Range = N; // draws are over [0, N-1]
    unsigned __int128 Product = (unsigned __int128)Rng() * Range;
    uint64_t Low = (uint64_t)Product;
    if (Low < Range) {
      const uint64_t Threshold = (0 - Range) % Range;
      while (Low < Threshold) {
        Product = (unsigned __int128)Rng() * Range;
        Low = (uint64_t)Product;
      }
    }
    return static_cast<size_t>(Product >> 64);
  }
};

/// Uniformly random scheduling with a fixed seed (reproducible).
class RandomScheduler final : public Scheduler {
public:
  explicit RandomScheduler(uint64_t Seed) : Rng(Seed), Seed(Seed) {}

  size_t pick(const std::vector<size_t> &Runnable) override {
    return Runnable[Pick.draw(Rng, Runnable.size())];
  }

  std::string name() const override {
    return "random(" + std::to_string(Seed) + ")";
  }

private:
  std::mt19937_64 Rng;
  UniformPick Pick;
  uint64_t Seed;
};

/// Runs one preferred thread for a burst of steps before yielding; models
/// coarse time slicing, which amplifies timing differences between threads.
class BurstScheduler final : public Scheduler {
public:
  /// \p BurstLen is clamped to at least 1: `Remaining = BurstLen - 1` on a
  /// zero length would wrap to UINT_MAX and pin one thread forever.
  BurstScheduler(uint64_t Seed, unsigned BurstLen)
      : Rng(Seed), BurstLen(BurstLen == 0 ? 1 : BurstLen), Seed(Seed) {}

  size_t pick(const std::vector<size_t> &Runnable) override {
    for (size_t Id : Runnable) {
      if (Id == Preferred && Remaining > 0) {
        --Remaining;
        return Id;
      }
    }
    Preferred = Runnable[Pick.draw(Rng, Runnable.size())];
    Remaining = BurstLen - 1;
    return Preferred;
  }

  std::string name() const override {
    return "burst(" + std::to_string(BurstLen) + "," + std::to_string(Seed) +
           ")";
  }

private:
  std::mt19937_64 Rng;
  UniformPick Pick;
  unsigned BurstLen;
  uint64_t Seed;
  size_t Preferred = static_cast<size_t>(-1);
  unsigned Remaining = 0;
};

} // namespace commcsl

#endif // COMMCSL_SEM_SCHEDULER_H
