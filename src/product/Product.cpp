//===-- product/Product.cpp - Product program construction -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "product/Product.h"

using namespace commcsl;

ExprRef commcsl::renameExpr(const Expr &E, int Copy) {
  if (E.Kind == ExprKind::Var) {
    ExprRef R = Expr::var(E.Name + "$" + std::to_string(Copy), E.Loc);
    R->Ty = E.Ty;
    return R;
  }
  ExprRef R = E.clone();
  R->Args.clear();
  for (const ExprRef &A : E.Args)
    R->Args.push_back(renameExpr(*A, Copy));
  return R;
}

namespace {

std::string renamed(const std::string &Name, int Copy) {
  return Name + "$" + std::to_string(Copy);
}

/// Renames a command for one copy. Returns null (with a diagnostic) on
/// constructs outside the sequential fragment.
CommandRef renameCmd(const Command &C, int Copy, DiagnosticEngine &Diags) {
  switch (C.Kind) {
  case CmdKind::Skip:
    return Command::skip(C.Loc);
  case CmdKind::VarDecl:
    return Command::varDecl(renamed(C.Var, Copy), C.DeclTy,
                            C.Exprs.empty() ? nullptr
                                            : renameExpr(*C.Exprs[0], Copy),
                            C.Loc);
  case CmdKind::Assign:
    return Command::assign(renamed(C.Var, Copy),
                           renameExpr(*C.Exprs[0], Copy), C.Loc);
  case CmdKind::Block: {
    std::vector<CommandRef> Children;
    for (const CommandRef &Child : C.Children) {
      CommandRef R = renameCmd(*Child, Copy, Diags);
      if (!R)
        return nullptr;
      Children.push_back(std::move(R));
    }
    return Command::block(std::move(Children), C.Loc);
  }
  case CmdKind::If: {
    CommandRef Then = renameCmd(*C.Children[0], Copy, Diags);
    CommandRef Else = renameCmd(*C.Children[1], Copy, Diags);
    if (!Then || !Else)
      return nullptr;
    return Command::ifCmd(renameExpr(*C.Exprs[0], Copy), Then, Else, C.Loc);
  }
  case CmdKind::While: {
    CommandRef Body = renameCmd(*C.Children[0], Copy, Diags);
    if (!Body)
      return nullptr;
    // Invariants are proof artifacts; the dynamic product drops them.
    return Command::whileCmd(renameExpr(*C.Exprs[0], Copy), {}, Body, C.Loc);
  }
  case CmdKind::CallProc: {
    // Calls are kept per copy: the callee is itself sequential (checked on
    // demand when it runs) and both copies call it independently.
    std::vector<ExprRef> Args;
    for (const ExprRef &A : C.Exprs)
      Args.push_back(renameExpr(*A, Copy));
    std::vector<std::string> Rets;
    for (const std::string &R : C.Rets)
      Rets.push_back(renamed(R, Copy));
    return Command::callProc(C.Aux, std::move(Args), std::move(Rets), C.Loc);
  }
  case CmdKind::AssertGhost:
    // Ghost assertions of the original are dropped in the product; the
    // product's own asserts come from the contract translation.
    return Command::skip(C.Loc);
  case CmdKind::HeapRead:
  case CmdKind::HeapWrite:
  case CmdKind::Alloc:
    // The two copies would share one heap; keeping copies disjoint would
    // require an allocator split. Out of scope for the dynamic product.
    Diags.error(DiagCode::ParseError, C.Loc,
                "self-composition does not support heap commands");
    return nullptr;
  case CmdKind::Output:
  case CmdKind::Par:
  case CmdKind::Share:
  case CmdKind::Unshare:
  case CmdKind::Atomic:
  case CmdKind::Perform:
  case CmdKind::ResVal:
    Diags.error(DiagCode::ParseError, C.Loc,
                "self-composition supports only the sequential fragment "
                "(use the scheduler-based harness for concurrency)");
    return nullptr;
  }
  return nullptr;
}

/// Translates a relational contract into product-side boolean expressions:
/// low(e) -> e$1 == e$2; cond-low -> (c$1 == c$2) && (c$1 ==> e$1 == e$2);
/// bool b -> b$1 && b$2. Guard atoms are rejected (sequential fragment).
bool translateContract(const Contract &C, DiagnosticEngine &Diags,
                       std::vector<ExprRef> &Out) {
  for (const ContractAtom &A : C) {
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low: {
      ExprRef Eq = Expr::binary(BinaryOp::Eq, renameExpr(*A.E, 1),
                                renameExpr(*A.E, 2), A.Loc);
      Eq->Args[0]->Ty = A.E->Ty;
      Eq->Args[1]->Ty = A.E->Ty;
      if (A.Cond) {
        ExprRef CondEq =
            Expr::binary(BinaryOp::Eq, renameExpr(*A.Cond, 1),
                         renameExpr(*A.Cond, 2), A.Loc);
        ExprRef Guarded = Expr::binary(
            BinaryOp::Implies, renameExpr(*A.Cond, 1), std::move(Eq), A.Loc);
        Out.push_back(Expr::binary(BinaryOp::And, std::move(CondEq),
                                   std::move(Guarded), A.Loc));
        break;
      }
      Out.push_back(std::move(Eq));
      break;
    }
    case ContractAtom::Kind::Bool:
      Out.push_back(Expr::binary(BinaryOp::And, renameExpr(*A.E, 1),
                                 renameExpr(*A.E, 2), A.Loc));
      break;
    default:
      Diags.error(DiagCode::ParseError, A.Loc,
                  "self-composition does not support guard assertions");
      return false;
    }
  }
  return true;
}

} // namespace

std::optional<Program>
commcsl::buildSelfComposition(const Program &Prog, const std::string &ProcName,
                              DiagnosticEngine &Diags) {
  const ProcDecl *Proc = Prog.findProc(ProcName);
  if (!Proc) {
    Diags.error(DiagCode::UnknownName, SourceLoc(),
                "unknown procedure '" + ProcName + "'");
    return std::nullopt;
  }

  Program Product;
  Product.Funcs = Prog.Funcs;
  // Callees remain available (both copies call them).
  Product.Procs = Prog.Procs;

  ProcDecl P;
  P.Name = ProcName + "$prod";
  P.Loc = Proc->Loc;
  for (int Copy = 1; Copy <= 2; ++Copy)
    for (const Param &Par : Proc->Params)
      P.Params.push_back({renamed(Par.Name, Copy), Par.Ty, Par.Loc});
  for (int Copy = 1; Copy <= 2; ++Copy)
    for (const Param &Ret : Proc->Returns)
      P.Returns.push_back({renamed(Ret.Name, Copy), Ret.Ty, Ret.Loc});

  std::vector<CommandRef> Body;

  // Precondition: the harness must call the product with inputs satisfying
  // the translated relational precondition; it is re-checked dynamically.
  std::vector<ExprRef> PreExprs;
  if (!translateContract(Proc->Requires, Diags, PreExprs))
    return std::nullopt;
  for (ExprRef &E : PreExprs) {
    Contract C;
    C.push_back(ContractAtom::boolean(std::move(E), Proc->Loc));
    Body.push_back(Command::assertGhost(std::move(C), Proc->Loc));
  }

  CommandRef Copy1 = renameCmd(*Proc->Body, 1, Diags);
  CommandRef Copy2 = renameCmd(*Proc->Body, 2, Diags);
  if (!Copy1 || !Copy2)
    return std::nullopt;
  Body.push_back(std::move(Copy1));
  Body.push_back(std::move(Copy2));

  // Postcondition: asserted; an abort here is a concrete leak witness.
  std::vector<ExprRef> PostExprs;
  if (!translateContract(Proc->Ensures, Diags, PostExprs))
    return std::nullopt;
  for (ExprRef &E : PostExprs) {
    Contract C;
    C.push_back(ContractAtom::boolean(std::move(E), Proc->Loc));
    Body.push_back(Command::assertGhost(std::move(C), Proc->Loc));
  }

  P.Body = Command::block(std::move(Body), Proc->Loc);
  Product.Procs.push_back(std::move(P));
  return Product;
}
