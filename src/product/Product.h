//===-- product/Product.h - Product program construction --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Product-program construction in the style the paper's implementation
/// uses for relational proof obligations (Eilers et al. 2018). This module
/// implements the *self-composition* core for the sequential fragment: a
/// procedure `p` is transformed into `p$prod` in which every variable is
/// duplicated (`x$1`, `x$2`), the body runs both copies, relational
/// `low(e)` atoms become equalities `e$1 == e$2` (assumed from the
/// precondition, asserted for the postcondition), and boolean atoms are
/// required of both copies.
///
/// The resulting product is an ordinary sequential program: running it with
/// inputs whose low projections agree dynamically checks the relational
/// contract — the execution aborts at a ghost assert exactly when the
/// original procedure leaks. The tests and the bench harness use this as an
/// independent dynamic cross-check of the verifier on sequential examples.
///
/// Concurrent constructs (par, share, atomic) are out of scope here — the
/// interpreter-based non-interference harness (hyper/) covers those — and
/// are reported via the diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_PRODUCT_PRODUCT_H
#define COMMCSL_PRODUCT_PRODUCT_H

#include "lang/Program.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace commcsl {

/// Builds the self-composition of procedure \p ProcName of \p Prog.
/// Returns a new program containing the product procedure (named
/// `<proc>$prod`) together with the original program's pure functions.
/// The product procedure:
///  - takes every parameter twice (`x$1: T, x$2: T`);
///  - returns every return variable twice;
///  - starts with ghost assumes for the precondition (relational atoms
///    become cross-copy equalities) encoded as `assert` statements guarded
///    by the harness (the caller must supply satisfying inputs);
///  - ends with ghost asserts for the postcondition.
/// Returns std::nullopt (with diagnostics) if the body uses concurrency.
std::optional<Program> buildSelfComposition(const Program &Prog,
                                            const std::string &ProcName,
                                            DiagnosticEngine &Diags);

/// Renames every variable occurrence in \p E with the copy suffix
/// (`x -> x$<Copy>`); pure function calls are kept (their parameters are
/// bound at call time and need no renaming).
ExprRef renameExpr(const Expr &E, int Copy);

} // namespace commcsl

#endif // COMMCSL_PRODUCT_PRODUCT_H
