//===-- hyperviper/Driver.h - End-to-end verification driver ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HyperViper-style driver: file in, verdict out. Runs the pipeline
/// parse -> type check -> spec validity (Def. 3.1) -> program verification,
/// with per-phase wall-clock timing, plus source metrics (code lines vs.
/// annotation lines) matching the columns of the paper's Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_HYPERVIPER_DRIVER_H
#define COMMCSL_HYPERVIPER_DRIVER_H

#include "hyper/NonInterference.h"
#include "lang/Program.h"
#include "support/Diagnostics.h"
#include "verifier/Verifier.h"

#include <memory>
#include <string>

namespace commcsl {

/// Source metrics in the style of Table 1: LOC counts non-blank,
/// non-comment lines that are not annotations; Annotations counts contract
/// and resource-specification lines.
struct SourceMetrics {
  unsigned LinesOfCode = 0;
  unsigned AnnotationLines = 0;
};

/// Computes source metrics for a `.hv` buffer.
SourceMetrics measureSource(const std::string &Source);

/// A parsed and type-checked source buffer, reusable across verification
/// runs. The serve daemon's program cache stores these so a resubmitted
/// source skips the parse phase and — because the same `Program` object
/// (hence the same spec-declaration addresses) is reused — its per-spec
/// memo caches stay warm across requests.
struct ParsedUnit {
  std::string Name;
  bool Ok = false; ///< no parse or type errors
  SourceMetrics Metrics;
  DiagnosticEngine Diags; ///< parse + type-check diagnostics only
  std::shared_ptr<Program> Prog;
  double ParseSeconds = 0;
};

/// Everything the driver learned about one input.
struct DriverResult {
  std::string Name;
  bool ParseOk = false;
  bool Verified = false;
  SourceMetrics Metrics;
  VerifyResult Verification;
  DiagnosticEngine Diags;
  std::shared_ptr<Program> Prog; ///< retained for downstream use (NI, sem)
  /// Printed proof certificate (VerifierConfig::EmitCert); empty otherwise
  /// or on parse failure. Byte-deterministic at any job count: units are
  /// assembled in program order and each unit's content depends only on
  /// the program text and the (deterministic) per-proc term arenas.
  std::string Cert;

  // Wall-clock seconds per phase.
  double ParseSeconds = 0;
  double ValiditySeconds = 0;
  double VerifySeconds = 0;
  /// Aggregate seconds spent in the static triage analysis (--triage).
  double AnalysisSeconds = 0;
  /// Procedures whose relational proof the triage fast path skipped.
  unsigned TriageSkipped = 0;
  // Aggregate worker seconds for the parallelized phases (>= the wall
  // number when several specs/procedures verify concurrently).
  double ValidityCpuSeconds = 0;
  double VerifyCpuSeconds = 0;

  double totalSeconds() const {
    return ParseSeconds + ValiditySeconds + VerifySeconds;
  }
};

/// Driver options.
struct DriverOptions {
  VerifierConfig Verifier;
  /// Worker threads for spec validity, procedure verification, and the
  /// empirical harness. 0 = hardware concurrency; 1 recovers the fully
  /// sequential behaviour. Verdicts, diagnostics order, counterexamples,
  /// and NI reports are identical at every setting.
  unsigned Jobs = 0;
  /// Static fast path: before verifying a procedure, run the taint
  /// analysis in verifier-approximation mode and skip the relational
  /// proof when it is strict-provably-low (ProcVerdict::SkippedByTriage;
  /// counted in DriverResult::TriageSkipped). Verdicts are identical to
  /// the full pipeline by the strict mode's soundness contract.
  bool Triage = false;
  /// Optional shared per-spec memo-cache registry, forwarded to the
  /// verifier (validity phase) and the NI harness so evaluations stay warm
  /// across Driver runs over the same Program. Null (the one-shot CLI
  /// default) gives every run private caches. See
  /// VerifierConfig::SpecCaches for the lifetime contract.
  std::shared_ptr<SpecCacheRegistry> SpecCaches;
};

/// The verification driver.
class Driver {
public:
  explicit Driver(DriverOptions Options = {}) : Options(Options) {}

  /// Verifies a source buffer. \p Name labels diagnostics. Equivalent to
  /// `verifyParsed(parseAndCheck(Source, Name))`.
  DriverResult verifySource(const std::string &Source,
                            const std::string &Name);

  /// Parses and type-checks a buffer without verifying it.
  ParsedUnit parseAndCheck(const std::string &Source,
                           const std::string &Name);

  /// Verifies a previously parsed unit: replays its parse/type-check
  /// diagnostics, then runs the validity and procedure phases against
  /// `Unit.Prog`. The verdict, diagnostics, and counts are identical to a
  /// fresh `verifySource` of the same buffer.
  DriverResult verifyParsed(const ParsedUnit &Unit);

  /// Reads and verifies a file.
  DriverResult verifyFile(const std::string &Path);

  /// Runs the empirical non-interference harness on a previously verified
  /// (or parsed) result's procedure \p ProcName.
  NIReport runEmpirical(const DriverResult &Result,
                        const std::string &ProcName, NIConfig Config = {});

private:
  DriverOptions Options;
};

} // namespace commcsl

#endif // COMMCSL_HYPERVIPER_DRIVER_H
