//===-- hyperviper/Analyze.h - `hyperviper analyze` verb --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the `hyperviper analyze` CLI verb: run the static
/// information-flow pre-analysis (analysis/Analysis.h) over files and
/// directories of `.hv` programs, without any verification or validity
/// checking. Directories expand recursively in sorted order; files are
/// processed in parallel under `--jobs` with an input-order merge, so the
/// report is byte-identical at every job count.
///
/// Every file produces a *report block*:
///
///   verdict: provably-low | candidate-leak | parse-error | type-error
///   <location-ordered diagnostics, caret snippets under each>
///
/// `--check` compares each block against a committed sidecar
/// `<file>.analysis`; a missing sidecar asserts the file is provably-low
/// with no diagnostics. This is the CI contract: any unexpected diagnostic
/// (or an expected one that disappears) fails the run.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_HYPERVIPER_ANALYZE_H
#define COMMCSL_HYPERVIPER_ANALYZE_H

#include <string>
#include <utility>
#include <vector>

namespace commcsl {

/// Expands files-or-directories into (display, on-disk path) pairs of
/// `.hv` files: directories recurse in sorted relative-path order, plain
/// files pass through. Shared by the `analyze` and verification verbs so
/// both accept the same input shapes.
std::vector<std::pair<std::string, std::string>>
expandHvInputs(const std::vector<std::string> &Inputs);

struct AnalyzeOptions {
  /// Worker threads over input files; 0 = hardware concurrency. Output is
  /// identical at every setting.
  unsigned Jobs = 0;
  /// Compare each block against its `<file>.analysis` sidecar. Every
  /// analyzed file must have one — clean files included — so a program
  /// added without rerunning `--write` fails the check rather than being
  /// silently assumed clean.
  bool Check = false;
  /// Regenerate sidecars: write `<file>.analysis` for every analyzed file.
  /// Mutually exclusive with Check.
  bool Write = false;
};

/// Per-file outcome.
struct AnalyzeFileResult {
  std::string Display; ///< path as shown in the report
  std::string Path;    ///< path on disk
  std::string Verdict; ///< "provably-low", "candidate-leak", ...
  std::string Block;   ///< the report block (verdict line + diagnostics)
  bool SidecarOk = true; ///< Check mode: block matches the sidecar
};

struct AnalyzeResult {
  std::vector<AnalyzeFileResult> Files;
  bool Ok = true; ///< Check mode: every sidecar matched

  /// Deterministic human-readable report (one block per file, prefixed
  /// with its display path).
  std::string str() const;
};

/// Expands \p Inputs (files or directories) and analyzes every `.hv` file.
AnalyzeResult runAnalyze(const std::vector<std::string> &Inputs,
                         const AnalyzeOptions &Options = AnalyzeOptions());

/// Analyzes one source buffer into a report block (the `--check` unit).
/// Exposed for tests.
AnalyzeFileResult analyzeSourceBlock(const std::string &Source,
                                     const std::string &Display);

} // namespace commcsl

#endif // COMMCSL_HYPERVIPER_ANALYZE_H
