//===-- hyperviper/Lattice.h - Multi-level lattice verification -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verification against finite sensitivity lattices, implementing the
/// paper's footnote 1: "techniques for verifying information flow security
/// with two levels can be used to verify programs with arbitrary finite
/// lattices by performing the verification multiple times, once for every
/// element of the lattice."
///
/// Inputs and outputs of the target procedure are assigned *levels*
/// (0 = most public). For every lattice element ℓ, a two-level variant is
/// verified in which exactly the variables at level <= ℓ are `low`: a flow
/// from level j to level i < j fails the verification at cutoff i.
///
/// Caveat (inherent to the repetition encoding): resource specifications
/// are reused verbatim at every cutoff, so their `low(...)` preconditions
/// and abstractions are interpreted relative to the *current* cutoff. A
/// resource fed with level-j data is therefore only verifiable at cutoffs
/// >= j; at lower cutoffs one would need a per-level specification with a
/// coarser abstraction (e.g. the constant one). Programs whose shared
/// resources carry data of a single level — like the examples — verify at
/// every cutoff directly.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_HYPERVIPER_LATTICE_H
#define COMMCSL_HYPERVIPER_LATTICE_H

#include "lang/Program.h"
#include "support/Diagnostics.h"
#include "verifier/Verifier.h"

#include <map>
#include <string>
#include <vector>

namespace commcsl {

/// Level assignment for one procedure's interface. Variables not mentioned
/// default to the top level (never low).
struct LatticeLevels {
  std::map<std::string, unsigned> ParamLevel;
  std::map<std::string, unsigned> ReturnLevel;
  unsigned NumLevels = 2;
};

/// Result of a lattice verification run.
struct LatticeResult {
  bool Ok = false;
  /// Per-cutoff verdicts, index = lattice element.
  std::vector<bool> LevelOk;
  DiagnosticEngine Diags;
};

/// Verifies \p ProcName of \p Prog against the level assignment: one
/// two-level verification per lattice element. Any `low(x)` atoms already
/// present on the target procedure's contract are replaced by the
/// per-cutoff classification; all other contract atoms (and all other
/// procedures' contracts) are kept.
LatticeResult verifyLattice(const Program &Prog, const std::string &ProcName,
                            const LatticeLevels &Levels,
                            VerifierConfig Config = {});

} // namespace commcsl

#endif // COMMCSL_HYPERVIPER_LATTICE_H
