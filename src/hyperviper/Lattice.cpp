//===-- hyperviper/Lattice.cpp - Multi-level lattice verification ----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyperviper/Lattice.h"

using namespace commcsl;

namespace {

/// True for a bare `low(x)` atom over an interface variable.
bool isInterfaceLowAtom(const ContractAtom &A) {
  return A.AtomKind == ContractAtom::Kind::Low && !A.Cond &&
         A.E->Kind == ExprKind::Var;
}

/// Rebuilds a contract for cutoff \p Cutoff: interface low-atoms are
/// replaced by `low(x)` for every variable with level <= Cutoff.
Contract contractForCutoff(const Contract &Orig,
                           const std::vector<Param> &Vars,
                           const std::map<std::string, unsigned> &Level,
                           unsigned Cutoff) {
  Contract Out;
  for (const ContractAtom &A : Orig)
    if (!isInterfaceLowAtom(A))
      Out.push_back(A);
  for (const Param &P : Vars) {
    auto It = Level.find(P.Name);
    if (It == Level.end() || It->second > Cutoff)
      continue;
    ExprRef Var = Expr::var(P.Name, P.Loc);
    Var->Ty = P.Ty;
    Out.push_back(ContractAtom::low(std::move(Var), P.Loc));
  }
  return Out;
}

} // namespace

LatticeResult commcsl::verifyLattice(const Program &Prog,
                                     const std::string &ProcName,
                                     const LatticeLevels &Levels,
                                     VerifierConfig Config) {
  LatticeResult Result;
  const ProcDecl *Target = Prog.findProc(ProcName);
  if (!Target) {
    Result.Diags.error(DiagCode::UnknownName, SourceLoc(),
                       "unknown procedure '" + ProcName + "'");
    return Result;
  }

  Result.Ok = true;
  for (unsigned Cutoff = 0; Cutoff < Levels.NumLevels; ++Cutoff) {
    // Clone the program shallowly; the target procedure gets per-cutoff
    // contracts (bodies and all other declarations are shared ASTs).
    Program Variant = Prog;
    for (ProcDecl &P : Variant.Procs) {
      if (P.Name != ProcName)
        continue;
      P.Requires = contractForCutoff(Target->Requires, Target->Params,
                                     Levels.ParamLevel, Cutoff);
      P.Ensures = contractForCutoff(Target->Ensures, Target->Returns,
                                    Levels.ReturnLevel, Cutoff);
    }
    DiagnosticEngine Diags;
    Verifier V(Variant, Diags, Config);
    ProcVerdict PV = V.verifyProc(*Variant.findProc(ProcName));
    // Specs must additionally be valid once (cutoff-independent).
    bool SpecsOk = true;
    if (Cutoff == 0 && !Config.SkipValidityCheck)
      for (const ResourceSpecDecl &Spec : Variant.Specs)
        SpecsOk &= V.verifySpec(Spec);
    bool Ok = PV.Ok && SpecsOk;
    Result.LevelOk.push_back(Ok);
    Result.Ok &= Ok;
    if (!Ok) {
      for (const Diagnostic &D : Diags.diagnostics())
        Result.Diags.report(D.Kind, D.Code, D.Loc,
                            "[level " + std::to_string(Cutoff) + "] " +
                                D.Message);
    }
  }
  return Result;
}
