//===-- hyperviper/Driver.cpp - End-to-end verification driver -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include "analysis/Taint.h"
#include "cert/Cert.h"
#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <fstream>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

/// Flushes one verification's outcome into the process-wide metrics
/// registry. Verdict/size tallies are deterministic; phase wall times and
/// cache splits land under `"timings"`.
void flushDriverMetrics(const DriverResult &R) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("driver.files").add(1);
  M.counter("driver.files_verified").add(R.Verified ? 1 : 0);
  M.counter("driver.files_rejected").add(R.Verified ? 0 : 1);
  M.counter("driver.parse_errors").add(R.ParseOk ? 0 : 1);
  M.counter("driver.lines_of_code").add(R.Metrics.LinesOfCode);
  M.counter("driver.annotation_lines").add(R.Metrics.AnnotationLines);
  M.counter("driver.specs_checked").add(R.Verification.NumSpecsChecked);
  M.counter("driver.procs_verified").add(R.Verification.Procs.size());
  M.counter("driver.triage_skipped").add(R.TriageSkipped);
  M.gauge("driver.parse_seconds").add(R.ParseSeconds);
  M.gauge("driver.validity_seconds").add(R.ValiditySeconds);
  M.gauge("driver.verify_seconds").add(R.VerifySeconds);
  M.gauge("driver.analysis_seconds").add(R.AnalysisSeconds);
  M.gauge("driver.validity_cpu_seconds").add(R.ValidityCpuSeconds);
  M.gauge("driver.verify_cpu_seconds").add(R.VerifyCpuSeconds);
  // Hit/miss splits vary with worker interleaving (two workers may race
  // to compute the same key), so the cache counters are Varies too.
  const CacheStats &C = R.Verification.SpecCache;
  M.counter("cache.spec.hits", Stability::Varies).add(C.hits());
  M.counter("cache.spec.misses", Stability::Varies).add(C.misses());
  M.counter("cache.spec.evictions", Stability::Varies).add(C.Evictions);
  M.gauge("cache.spec.entries").max(static_cast<double>(C.Entries));
}

} // namespace

SourceMetrics commcsl::measureSource(const std::string &Source) {
  SourceMetrics M;
  bool InBlockComment = false;
  bool InResource = false;
  int ResourceDepth = 0;
  for (const std::string &RawLine : split(Source, '\n')) {
    // Strip comments but keep code around them: a block comment may close
    // mid-line (`/* c */ x := 1` is a code line), open mid-line, or both,
    // and a `//` comment cuts the rest of the line.
    std::string Code;
    for (size_t I = 0; I < RawLine.size();) {
      if (InBlockComment) {
        size_t Close = RawLine.find("*/", I);
        if (Close == std::string::npos)
          break;
        InBlockComment = false;
        I = Close + 2;
      } else if (RawLine.compare(I, 2, "/*") == 0) {
        InBlockComment = true;
        I += 2;
      } else if (RawLine.compare(I, 2, "//") == 0) {
        break;
      } else {
        Code += RawLine[I++];
      }
    }
    std::string Line = trim(Code);
    if (Line.empty())
      continue;
    // Resource specifications count as annotations in their entirety.
    if (startsWith(Line, "resource ")) {
      InResource = true;
      ResourceDepth = 0;
    }
    bool IsAnnotation =
        InResource || startsWith(Line, "requires") ||
        startsWith(Line, "ensures") || startsWith(Line, "invariant") ||
        startsWith(Line, "assert") || startsWith(Line, "function ");
    if (InResource) {
      for (char C : Line) {
        if (C == '{')
          ++ResourceDepth;
        if (C == '}')
          --ResourceDepth;
      }
      if (ResourceDepth == 0 && Line.find('}') != std::string::npos)
        InResource = false;
    }
    if (IsAnnotation)
      ++M.AnnotationLines;
    else
      ++M.LinesOfCode;
  }
  return M;
}

ParsedUnit Driver::parseAndCheck(const std::string &Source,
                                 const std::string &Name) {
  ParsedUnit U;
  U.Name = Name;
  U.Metrics = measureSource(Source);
  Stopwatch T0;
  {
    TraceSpan Span("driver", "parse");
    U.Prog = std::make_shared<Program>(Parser::parse(Source, U.Diags));
    if (!U.Diags.hasErrors()) {
      TypeChecker Checker(*U.Prog, U.Diags);
      Checker.check();
    }
  }
  U.ParseSeconds = T0.seconds();
  U.Ok = !U.Diags.hasErrors();
  return U;
}

DriverResult Driver::verifySource(const std::string &Source,
                                  const std::string &Name) {
  return verifyParsed(parseAndCheck(Source, Name));
}

DriverResult Driver::verifyParsed(const ParsedUnit &Unit) {
  DriverResult R;
  R.Name = Unit.Name;
  R.Metrics = Unit.Metrics;
  R.Prog = Unit.Prog;
  R.Diags = Unit.Diags; // replayed parse/type-check diagnostics
  R.ParseSeconds = Unit.ParseSeconds;
  R.ParseOk = Unit.Ok;

  TraceSpan FileSpan("driver", [&] { return "verify " + R.Name; });

  if (!R.ParseOk) {
    flushDriverMetrics(R);
    return R;
  }

  VerifierConfig VC = Options.Verifier;
  VC.SpecCaches = Options.SpecCaches;
  if (VC.Validity.Jobs == 0)
    VC.Validity.Jobs = Options.Jobs;
  unsigned Jobs = ThreadPool::effectiveJobs(Options.Jobs);
  const bool EmitCert = VC.EmitCert || VC.ForgeAcceptAll;
  // A certificate covers every procedure, so the triage fast path (which
  // skips relational proofs, hence records no derivations) is disabled.
  const bool Triage = Options.Triage && !EmitCert;

  // Phase: spec validity. Resource specifications are independent of each
  // other, so they are checked concurrently; each task collects its
  // diagnostics privately and they are merged back in declaration order, so
  // output is identical at any job count.
  Stopwatch T1;
  bool SpecsOk = true;
  if (!VC.SkipValidityCheck && !R.Prog->Specs.empty()) {
    TraceSpan Phase("driver", "validity");
    struct SpecOutcome {
      bool Ok = true;
      DiagnosticEngine Diags;
      double Seconds = 0;
      CacheStats Cache;
      std::optional<cert::CertSpecUnit> Unit;
    };
    std::vector<SpecOutcome> Outcomes(R.Prog->Specs.size());
    ThreadPool::shared().parallelForChunks(
        R.Prog->Specs.size(), Jobs,
        [&](uint64_t Begin, uint64_t End, unsigned) {
          for (uint64_t I = Begin; I < End; ++I) {
            TraceSpan Span("validity", [&] {
              return "spec " + R.Prog->Specs[I].Name;
            });
            Stopwatch S0;
            Verifier SpecV(*R.Prog, Outcomes[I].Diags, VC);
            Outcomes[I].Ok = SpecV.verifySpec(R.Prog->Specs[I]);
            Outcomes[I].Seconds = S0.seconds();
            Outcomes[I].Cache = SpecV.specCacheStats();
            if (EmitCert) {
              auto UIt = SpecV.specUnits().find(R.Prog->Specs[I].Name);
              if (UIt != SpecV.specUnits().end())
                Outcomes[I].Unit = UIt->second;
            }
          }
        });
    for (SpecOutcome &Out : Outcomes) {
      ++R.Verification.NumSpecsChecked;
      SpecsOk &= Out.Ok;
      R.Diags.append(Out.Diags);
      R.ValidityCpuSeconds += Out.Seconds;
      R.Verification.SpecCache += Out.Cache;
      if (Out.Unit)
        R.Verification.SpecUnits.push_back(std::move(*Out.Unit));
    }
  }
  R.ValiditySeconds = T1.seconds();

  // Phase: procedure verification, likewise one independent task per
  // procedure with ordered diagnostic merge.
  Stopwatch T2;
  bool ProcsOk = true;
  if (!R.Prog->Procs.empty()) {
    TraceSpan Phase("driver", "verify");
    struct ProcOutcome {
      ProcVerdict Verdict;
      DiagnosticEngine Diags;
      double Seconds = 0;
      double AnalysisSeconds = 0;
    };
    std::vector<ProcOutcome> Outcomes(R.Prog->Procs.size());
    ThreadPool::shared().parallelForChunks(
        R.Prog->Procs.size(), Jobs,
        [&](uint64_t Begin, uint64_t End, unsigned) {
          for (uint64_t I = Begin; I < End; ++I) {
            const ProcDecl &Proc = R.Prog->Procs[I];
            TraceSpan Span("verify",
                           [&] { return "proc " + Proc.Name; });
            if (Triage) {
              // Fast path: a strict (verifier-approximating) taint proof
              // subsumes the relational proof on the triage fragment.
              TraceSpan TriageSpan("verify", "triage");
              Stopwatch A0;
              TaintConfig TC;
              TC.VerifierApprox = true;
              ProcTaintResult T =
                  analyzeProcTaint(*R.Prog, Proc, TC, nullptr);
              Outcomes[I].AnalysisSeconds = A0.seconds();
              if (T.Eligible && T.ProvablyLow) {
                Outcomes[I].Verdict.Proc = Proc.Name;
                Outcomes[I].Verdict.Ok = true;
                Outcomes[I].Verdict.SkippedByTriage = true;
                traceInstant("verify", "triage-skip", Proc.Name);
                continue;
              }
            }
            Stopwatch P0;
            Verifier ProcV(*R.Prog, Outcomes[I].Diags, VC);
            Outcomes[I].Verdict = ProcV.verifyProc(Proc);
            Outcomes[I].Seconds = P0.seconds();
          }
        });
    for (ProcOutcome &Out : Outcomes) {
      ProcsOk &= Out.Verdict.Ok;
      R.Diags.append(Out.Diags);
      R.VerifyCpuSeconds += Out.Seconds;
      R.AnalysisSeconds += Out.AnalysisSeconds;
      R.TriageSkipped += Out.Verdict.SkippedByTriage ? 1 : 0;
      R.Verification.Procs.push_back(std::move(Out.Verdict));
    }
  }
  R.VerifySeconds = T2.seconds();

  R.Verification.Ok = SpecsOk && ProcsOk;
  R.Verified = R.Verification.Ok;

  if (EmitCert) {
    cert::Certificate C;
    C.ProgramName = R.Name;
    C.ProgramDigest = cert::fnv64(R.Prog->str());
    C.Verified = R.Verification.Ok;
    C.Specs = R.Verification.SpecUnits;
    for (const ProcVerdict &V : R.Verification.Procs)
      if (V.CertUnit)
        C.Procs.push_back(*V.CertUnit);
    R.Cert = cert::print(C);
  }

  flushDriverMetrics(R);
  return R;
}

DriverResult Driver::verifyFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    DriverResult R;
    R.Name = Path;
    R.Diags.error(DiagCode::ParseError, SourceLoc(),
                  "cannot open file '" + Path + "'");
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return verifySource(SS.str(), Path);
}

NIReport Driver::runEmpirical(const DriverResult &Result,
                              const std::string &ProcName, NIConfig Config) {
  assert(Result.Prog && Result.ParseOk && "empirical run needs a program");
  if (Config.Jobs == 0)
    Config.Jobs = Options.Jobs;
  if (!Config.SharedSpecCaches)
    Config.SharedSpecCaches = Options.SpecCaches;
  NonInterferenceHarness Harness(*Result.Prog, ProcName, Config);
  return Harness.run();
}
