//===-- hyperviper/Driver.cpp - End-to-end verification driver -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace commcsl;

namespace {
double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}
} // namespace

SourceMetrics commcsl::measureSource(const std::string &Source) {
  SourceMetrics M;
  bool InBlockComment = false;
  bool InResource = false;
  int ResourceDepth = 0;
  for (const std::string &RawLine : split(Source, '\n')) {
    std::string Line = trim(RawLine);
    if (InBlockComment) {
      if (Line.find("*/") != std::string::npos)
        InBlockComment = false;
      continue;
    }
    if (Line.empty() || startsWith(Line, "//"))
      continue;
    if (startsWith(Line, "/*")) {
      if (Line.find("*/") == std::string::npos)
        InBlockComment = true;
      continue;
    }
    // Resource specifications count as annotations in their entirety.
    if (startsWith(Line, "resource ")) {
      InResource = true;
      ResourceDepth = 0;
    }
    bool IsAnnotation =
        InResource || startsWith(Line, "requires") ||
        startsWith(Line, "ensures") || startsWith(Line, "invariant") ||
        startsWith(Line, "assert") || startsWith(Line, "function ");
    if (InResource) {
      for (char C : Line) {
        if (C == '{')
          ++ResourceDepth;
        if (C == '}')
          --ResourceDepth;
      }
      if (ResourceDepth == 0 && Line.find('}') != std::string::npos)
        InResource = false;
    }
    if (IsAnnotation)
      ++M.AnnotationLines;
    else
      ++M.LinesOfCode;
  }
  return M;
}

DriverResult Driver::verifySource(const std::string &Source,
                                  const std::string &Name) {
  DriverResult R;
  R.Name = Name;
  R.Metrics = measureSource(Source);

  auto T0 = std::chrono::steady_clock::now();
  R.Prog = std::make_shared<Program>(Parser::parse(Source, R.Diags));
  if (!R.Diags.hasErrors()) {
    TypeChecker Checker(*R.Prog, R.Diags);
    Checker.check();
  }
  R.ParseSeconds = secondsSince(T0);
  R.ParseOk = !R.Diags.hasErrors();
  if (!R.ParseOk)
    return R;

  Verifier V(*R.Prog, R.Diags, Options.Verifier);

  // Phase: spec validity.
  auto T1 = std::chrono::steady_clock::now();
  bool SpecsOk = true;
  if (!Options.Verifier.SkipValidityCheck) {
    for (const ResourceSpecDecl &Spec : R.Prog->Specs) {
      ++R.Verification.NumSpecsChecked;
      SpecsOk &= V.verifySpec(Spec);
    }
  }
  R.ValiditySeconds = secondsSince(T1);

  // Phase: procedure verification.
  auto T2 = std::chrono::steady_clock::now();
  bool ProcsOk = true;
  for (const ProcDecl &Proc : R.Prog->Procs) {
    ProcVerdict PV = V.verifyProc(Proc);
    ProcsOk &= PV.Ok;
    R.Verification.Procs.push_back(std::move(PV));
  }
  R.VerifySeconds = secondsSince(T2);

  R.Verification.Ok = SpecsOk && ProcsOk;
  R.Verified = R.Verification.Ok;
  return R;
}

DriverResult Driver::verifyFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    DriverResult R;
    R.Name = Path;
    R.Diags.error(DiagCode::ParseError, SourceLoc(),
                  "cannot open file '" + Path + "'");
    return R;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return verifySource(SS.str(), Path);
}

NIReport Driver::runEmpirical(const DriverResult &Result,
                              const std::string &ProcName, NIConfig Config) {
  assert(Result.Prog && Result.ParseOk && "empirical run needs a program");
  NonInterferenceHarness Harness(*Result.Prog, ProcName, Config);
  return Harness.run();
}
