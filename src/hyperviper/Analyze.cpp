//===-- hyperviper/Analyze.cpp - `hyperviper analyze` verb ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "hyperviper/Analyze.h"

#include "analysis/Analysis.h"
#include "analysis/Lint.h"
#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "support/ThreadPool.h"
#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace commcsl;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Expands one input into (display, path) pairs. Directories recurse,
/// sorted by relative path so the report order is stable.
void expandInput(const std::string &Input,
                 std::vector<std::pair<std::string, std::string>> &Out) {
  namespace fs = std::filesystem;
  std::error_code EC;
  if (fs::is_directory(Input, EC)) {
    std::vector<std::pair<std::string, std::string>> Found;
    for (const auto &DE : fs::recursive_directory_iterator(Input, EC)) {
      if (!DE.is_regular_file() || DE.path().extension() != ".hv")
        continue;
      std::string Rel = fs::relative(DE.path(), Input).generic_string();
      Found.emplace_back(Rel, DE.path().string());
    }
    std::sort(Found.begin(), Found.end());
    Out.insert(Out.end(), Found.begin(), Found.end());
  } else {
    Out.emplace_back(Input, Input);
  }
}

} // namespace

std::vector<std::pair<std::string, std::string>>
commcsl::expandHvInputs(const std::vector<std::string> &Inputs) {
  std::vector<std::pair<std::string, std::string>> Paths;
  for (const std::string &Input : Inputs)
    expandInput(Input, Paths);
  return Paths;
}

AnalyzeFileResult commcsl::analyzeSourceBlock(const std::string &Source,
                                              const std::string &Display) {
  AnalyzeFileResult R;
  R.Display = Display;

  DiagnosticEngine Diags;
  Program Prog = Parser::parse(Source, Diags);
  if (Diags.hasErrors()) {
    R.Verdict = "parse-error";
    R.Block = "verdict: parse-error\n" + Diags.strWithSnippets(Source);
    return R;
  }

  TypeChecker Checker(Prog, Diags);
  Checker.check();
  if (Diags.hasErrors()) {
    // Ill-typed programs still get the AST/CFG lints (they need no types);
    // the taint analysis is skipped — its levels assume resolved names.
    lintProgram(Prog, Diags);
    R.Verdict = "type-error";
    R.Block = "verdict: type-error\n" + Diags.strWithSnippets(Source);
    return R;
  }

  ProgramStaticResult A = analyzeProgram(Prog);
  R.Verdict = A.ProvablyLow ? "provably-low" : "candidate-leak";
  R.Block =
      "verdict: " + R.Verdict + "\n" + A.Diags.strWithSnippets(Source);
  return R;
}

std::string AnalyzeResult::str() const {
  std::ostringstream OS;
  for (const AnalyzeFileResult &F : Files) {
    OS << F.Display << ": " << F.Verdict
       << (F.SidecarOk ? "" : "  [SIDECAR MISMATCH]") << "\n";
    // Indent the diagnostics under the file header; the block's first line
    // repeats the verdict, skip it.
    std::istringstream In(F.Block);
    std::string Line;
    bool First = true;
    while (std::getline(In, Line)) {
      if (First) {
        First = false;
        continue;
      }
      OS << "  " << Line << "\n";
    }
  }
  return OS.str();
}

AnalyzeResult commcsl::runAnalyze(const std::vector<std::string> &Inputs,
                                  const AnalyzeOptions &Options) {
  std::vector<std::pair<std::string, std::string>> Paths =
      expandHvInputs(Inputs);

  AnalyzeResult R;
  R.Files.resize(Paths.size());
  unsigned Jobs = ThreadPool::effectiveJobs(Options.Jobs);
  Stopwatch T0;
  {
    TraceSpan Phase("analyze", [&] {
      return "analyze (" + std::to_string(Paths.size()) + " files)";
    });
    ThreadPool::shared().parallelForChunks(
        Paths.size(), Jobs, [&](uint64_t Begin, uint64_t End, unsigned) {
          for (uint64_t I = Begin; I < End; ++I) {
            TraceSpan Span("analyze",
                           [&] { return "file " + Paths[I].first; });
            std::string Source;
            if (!readFile(Paths[I].second, Source)) {
              AnalyzeFileResult F;
              F.Display = Paths[I].first;
              F.Path = Paths[I].second;
              F.Verdict = "read-error";
              F.Block = "verdict: read-error\n";
              R.Files[I] = std::move(F);
              continue;
            }
            AnalyzeFileResult F = analyzeSourceBlock(Source, Paths[I].first);
            F.Path = Paths[I].second;
            R.Files[I] = std::move(F);
          }
        });
  }

  // Verdict tallies are deterministic: the file list is sorted and each
  // block is a pure function of its source.
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("analyze.files").add(R.Files.size());
  auto CountVerdict = [&](const char *Name, const char *Verdict) {
    uint64_t N = 0;
    for (const AnalyzeFileResult &F : R.Files)
      N += F.Verdict == Verdict ? 1 : 0;
    M.counter(std::string("analyze.") + Name).add(N);
  };
  CountVerdict("provably_low", "provably-low");
  CountVerdict("candidate_leak", "candidate-leak");
  CountVerdict("parse_error", "parse-error");
  CountVerdict("type_error", "type-error");
  CountVerdict("read_error", "read-error");
  M.gauge("analyze.wall_seconds").add(T0.seconds());

  // Every shipped program carries a committed sidecar — clean files
  // included. A missing sidecar is a check failure, not an implicit
  // "clean" claim: the exhaustiveness contract is that adding a program
  // without rerunning `analyze --write` cannot pass CI silently.
  if (Options.Write) {
    for (const AnalyzeFileResult &F : R.Files) {
      std::ofstream Out(F.Path + ".analysis");
      Out << F.Block;
    }
  }
  if (Options.Check) {
    for (AnalyzeFileResult &F : R.Files) {
      std::string Expected;
      F.SidecarOk =
          readFile(F.Path + ".analysis", Expected) && F.Block == Expected;
      R.Ok &= F.SidecarOk;
    }
  }
  return R;
}
