//===-- absint/Domain.h - Difference-domain product --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric side of the differencing tier (DESIGN §13): an interval ×
/// parity product over integer-valued *atoms* (maximal uninterpreted
/// subterms such as `fst(x)` or a slot symbol), plus octagon-style
/// difference constraints `a - b ∈ [lo, hi]` between atom pairs. The
/// `FactCtx` accumulates the facts of one proof branch — term equalities
/// (oriented as rewrites), disequalities, and boolean facts whose numeric
/// content is compiled into the constraint store — and answers the three
/// questions the normalizer asks: is `t1 == t2` (Tri), is `t1 < / <= t2`
/// (Tri), and what is the abstract value of an integer term.
///
/// Constraint propagation runs to a fixpoint with widening: after a fixed
/// number of sweeps any still-moving bound is widened to its infinity,
/// which bounds the iteration count on any constraint system.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ABSINT_DOMAIN_H
#define COMMCSL_ABSINT_DOMAIN_H

#include "absint/Term.h"

#include <map>
#include <optional>

namespace commcsl {
namespace absint {

enum class Tri : uint8_t { False, True, Unknown };

inline Tri triOf(bool B) { return B ? Tri::True : Tri::False; }

/// Integer interval with explicit infinities. The difference tier reasons
/// in mathematical integers; concrete evaluation wraps at 2^64, so interval
/// conclusions are only trusted when the interval arithmetic itself never
/// overflows (operations saturate to infinity instead of wrapping).
struct Interval {
  bool LoInf = true, HiInf = true;
  int64_t Lo = 0, Hi = 0;

  static Interval top() { return {}; }
  static Interval point(int64_t V) { return {false, false, V, V}; }
  static Interval atLeast(int64_t V) { return {false, true, V, 0}; }
  static Interval atMost(int64_t V) { return {true, false, 0, V}; }

  bool isPoint() const { return !LoInf && !HiInf && Lo == Hi; }
  bool contains(int64_t V) const {
    return (LoInf || Lo <= V) && (HiInf || V <= Hi);
  }
  /// Meet; returns false when the result is empty (contradictory branch).
  bool meet(const Interval &O);
  void join(const Interval &O);
  /// Widening: bounds that moved outward versus \p Prev go to infinity.
  void widen(const Interval &Prev);

  static Interval add(const Interval &A, const Interval &B);
  static Interval negate(const Interval &A);
  static Interval mulConst(const Interval &A, int64_t C);

  bool operator==(const Interval &O) const {
    return LoInf == O.LoInf && HiInf == O.HiInf &&
           (LoInf || Lo == O.Lo) && (HiInf || Hi == O.Hi);
  }
};

/// Parity lattice: which residues mod 2 are possible.
struct Parity {
  bool Even = true, Odd = true;
  static Parity top() { return {}; }
  static Parity of(int64_t V) { return {(V & 1) == 0, (V & 1) != 0}; }
  static Parity add(Parity A, Parity B) {
    return {(A.Even && B.Even) || (A.Odd && B.Odd),
            (A.Even && B.Odd) || (A.Odd && B.Even)};
  }
  static Parity mulConst(Parity A, int64_t C) {
    if ((C & 1) == 0)
      return {true, false};
    return A;
  }
  bool excludesZero() const { return !Even; } // 0 is even
};

struct AbsVal {
  Interval Iv;
  Parity Par;
  static AbsVal top() { return {}; }
};

/// A linear form c0 + Σ ci·atom_i over interned atom terms. Coefficients
/// use wrap-around arithmetic like the concrete evaluator; the `Exact` flag
/// drops when a non-linear subterm had to be treated as an opaque atom that
/// might itself overflow during concrete evaluation.
struct LinForm {
  int64_t Const = 0;
  /// Atom -> coefficient, keyed and ordered structurally.
  std::map<const ATerm *, int64_t,
           bool (*)(const ATerm *, const ATerm *)>
      Coeffs{[](const ATerm *A, const ATerm *B) {
        return ATerm::compare(A, B) < 0;
      }};

  bool isConst() const { return Coeffs.empty(); }
  void add(const LinForm &O, int64_t Scale);
};

/// Linearizes an integer term: Add/Mul-by-const are decomposed, everything
/// else becomes an atom with coefficient 1.
LinForm linearize(const ATerm *T);

/// One proof branch's fact store.
class FactCtx {
public:
  explicit FactCtx(TermFactory &F) : F(F) {}

  /// Records `A == B`, oriented so the structurally larger side rewrites to
  /// the smaller (deterministic). Returns false on an immediate
  /// contradiction (branch infeasible).
  bool addEq(const ATerm *A, const ATerm *B);
  void addDiseq(const ATerm *A, const ATerm *B);
  /// Records a boolean term as true/false, compiling comparisons into the
  /// numeric store. Returns false on an immediate contradiction.
  bool addBool(const ATerm *T, bool Truth);

  /// The oriented rewrite for \p T, if an equality fact targets it.
  const ATerm *rewriteOf(const ATerm *T) const;
  /// Truth assignment for a boolean fact term, if any.
  std::optional<bool> boolFact(const ATerm *T) const;

  Tri decideEq(const ATerm *A, const ATerm *B) const;
  /// decideCmp(A, B, Strict): A < B (strict) or A <= B.
  Tri decideCmp(const ATerm *A, const ATerm *B, bool Strict) const;

  AbsVal absOf(const ATerm *T) const;
  AbsVal absOfLin(const LinForm &L) const;

  /// Number of widening applications performed by propagation so far.
  uint64_t widenings() const { return Widenings; }
  bool infeasible() const { return Infeasible; }

  TermFactory &factory() const { return F; }

private:
  /// Re-runs constraint propagation to a (widened) fixpoint.
  void propagate();
  Interval boundOf(const ATerm *Atom) const;
  std::optional<Interval> diffBound(const ATerm *A, const ATerm *B) const;

  TermFactory &F;
  std::map<const ATerm *, const ATerm *> Rewrites; // larger -> smaller
  std::vector<std::pair<const ATerm *, const ATerm *>> Diseqs;
  std::map<const ATerm *, bool> BoolFacts;
  /// Interval per atom.
  std::map<const ATerm *, Interval> Bounds;
  /// Parity per atom.
  std::map<const ATerm *, Parity> Parities;
  /// Octagon-style: (a, b) -> interval of a - b, a < b structurally.
  std::map<std::pair<const ATerm *, const ATerm *>, Interval> Diffs;
  /// Raw comparison facts kept for propagation: L <= R + K (as linear
  /// forms ≤ 0 normalized: form <= 0).
  std::vector<LinForm> LeZero; ///< each recorded linear form is <= 0
  uint64_t Widenings = 0;
  bool Infeasible = false;
};

} // namespace absint
} // namespace commcsl

#endif // COMMCSL_ABSINT_DOMAIN_H
