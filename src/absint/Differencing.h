//===-- absint/Differencing.h - Unbounded validity analysis ------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differencing abstract interpreter (DESIGN §13): proves Def. 3.1
/// validity obligations for *all* states and arguments, not just a finite
/// scope, by comparing the two execution orders symbolically.
///
/// Per spec the analysis establishes, over universal symbols `s` (state) and
/// per-action argument symbols:
///
///  - **Factorization (C1)**: `alpha(f_a(s, arg))` factors through the
///    components of `alpha(s)` — normalizing it and substituting each
///    state-dependent component `comp_i` of `alpha(s)`'s pair tree by a slot
///    symbol `g_i` leaves no free `s`. The residue `U_a(g, arg)` is the
///    action's *update template*.
///  - **Low preservation (A')**: under the relational precondition facts,
///    `U_a(g, x) == U_a(g, x')`. With C1 and injectivity of pairing this is
///    exactly Def. 3.1's condition (A) on arbitrary `v, v'` with
///    `alpha(v) == alpha(v')`.
///  - **Commutativity (B1)**: under both unary preconditions,
///    `alpha(f_B(f_A(s, x), y)) == alpha(f_A(f_B(s, y), x))` — Def. 3.1's
///    condition (B), directly on the universal state.
///
/// Equalities are discharged by the Normalize.h rewrite system; undecided
/// guards (key equalities, map/set membership, `ite` conditions) become
/// case splits whose branches accumulate facts in a `FactCtx`. A branch
/// closes when the normal forms coincide or the fact store turns
/// contradictory. The resulting split trees are recorded verbatim in
/// certificates; the checker *replays* them (no search, no widening) via
/// `replaySplitTree`.
///
/// Everything here is deterministic and independent of thread count: no
/// randomness, no pointer-ordered iteration, structural term ordering only.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ABSINT_DIFFERENCING_H
#define COMMCSL_ABSINT_DIFFERENCING_H

#include "absint/Normalize.h"
#include "lang/Program.h"

#include <memory>

namespace commcsl {
namespace absint {

enum class ObStatus : uint8_t {
  Proved,       ///< holds for all states/arguments of the type
  Refuted,      ///< a branch reduced to distinct ground values (CE hint)
  Inconclusive, ///< rewriting got stuck or budgets ran out
};

const char *obStatusName(ObStatus S);

/// A recorded case-split proof. Interior nodes split on `Guard`; leaves
/// (null guard) closed either by normal-form equality or branch
/// infeasibility. Failed leaves only appear in non-Proved obligations.
struct SplitNode {
  const ATerm *Guard = nullptr;
  bool Ok = false;            ///< leaf: closed
  bool ViaInfeasible = false; ///< leaf: closed by contradiction
  std::unique_ptr<SplitNode> Then, Else;

  unsigned depth() const {
    if (!Guard)
      return 0;
    return 1 + std::max(Then ? Then->depth() : 0, Else ? Else->depth() : 0);
  }
};

struct ActionAbs {
  std::string Name;
  /// Update template over slot symbols g0.. and the argument symbol
  /// (`argSymName()`); null when factorization failed.
  const ATerm *U = nullptr;
  ObStatus Pre = ObStatus::Inconclusive; ///< the A' obligation
  std::unique_ptr<SplitNode> PreTree;
};

struct PairAbs {
  std::string First, Second;
  ObStatus Comm = ObStatus::Inconclusive; ///< the B1 obligation
  std::unique_ptr<SplitNode> Tree;
};

struct AbsOptions {
  unsigned MaxSplitDepth = 8;
  uint64_t MaxSplits = 4096; ///< global split budget per spec
  NormLimits Limits;
  /// Fault injection for certificate tests: records a corrupted update
  /// template for the first action *after* proving with the real one, so
  /// the emitted certificate is unsound and the checker must reject it.
  bool InjectUnsound = false;
};

struct SpecAbsResult {
  /// False when alpha could not be translated/normalized at all; no
  /// obligation was even attempted.
  bool Applicable = false;
  /// Components of normalized `alpha(s)`, split on pair constructors.
  std::vector<const ATerm *> Comps;
  std::vector<ActionAbs> Actions;
  std::vector<PairAbs> Pairs;
  /// Every action factorized with A' proved and every pair's B1 proved.
  bool AllProved = false;

  uint64_t RewriteSteps = 0;
  uint64_t Splits = 0;
  uint64_t Obligations = 0;
  uint64_t ProvedCount = 0;
  uint64_t Widenings = 0;

  /// Owns every ATerm referenced above.
  std::shared_ptr<TermFactory> Factory;

  const ActionAbs *action(const std::string &Name) const;
  const PairAbs *pair(const std::string &A, const std::string &B) const;
};

/// Universal symbol names. Shared with the certificate checker so that
/// re-translation in a fresh factory reproduces identical terms.
inline const char *stateSymName() { return "s"; }
inline const char *argSymName() { return "%arg"; }
inline const char *argSymA() { return "%x"; }
inline const char *argSymB() { return "%y"; }
inline const char *argSymA2() { return "%x'"; }
std::string slotSymName(unsigned I);

/// Runs the analysis on one spec. Never throws; inapplicable or
/// budget-exhausted obligations come back Inconclusive.
SpecAbsResult analyzeSpec(const ResourceSpecDecl &Spec, const Program *Prog,
                          const AbsOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Building blocks shared with the certificate checker (cert/AbsCheck). The
// checker re-derives obligations and replays recorded trees instead of
// trusting the analysis run.
//===----------------------------------------------------------------------===//

/// Translates a surface expression to a term. `Env` maps free variable
/// names to terms; user function calls are inlined through \p Prog.
/// Returns null on unsupported input (never throws).
const ATerm *translateExpr(TermFactory &F, const Expr &E,
                           const std::map<std::string, const ATerm *> &Env,
                           const Program *Prog);

/// Splits a (normalized) term into its pair-tree components, left to right.
std::vector<const ATerm *> pairComps(const ATerm *T);

/// Exact-node substitution, applied top-down (a mapped node is replaced
/// before its children are visited).
const ATerm *substTerm(TermFactory &F, const ATerm *T,
                       const std::map<const ATerm *, const ATerm *> &Map);

/// True when \p Sym occurs in \p T.
bool mentionsSym(const ATerm *T, const std::string &Sym);

struct PreFacts {
  bool Supported = true;   ///< false: contract uses atoms the tier can't model
  bool Infeasible = false; ///< facts contradictory (obligation vacuous)
};

/// Adds the relational precondition facts of \p Act over two argument
/// symbols: `low(e)` atoms equate `e[arg:=X]` with `e[arg:=X2]`, boolean
/// atoms hold of both. Conditional low atoms are not modeled (Supported
/// goes false — callers fall back to the bounded tiers).
PreFacts addRelationalPreFacts(FactCtx &Ctx, TermFactory &F,
                               const Program *Prog, const ActionDecl &Act,
                               const ATerm *X, const ATerm *X2);

/// Adds the unary precondition facts (both executions run the same
/// argument): boolean atoms hold of \p X; low atoms are vacuous.
PreFacts addUnaryPreFacts(FactCtx &Ctx, TermFactory &F, const Program *Prog,
                          const ActionDecl &Act, const ATerm *X);

/// Builds the B1 obligation sides for a pair over symbols \p X, \p Y:
/// L = alpha(f_B(f_A(s,X),Y)), R = alpha(f_A(f_B(s,Y),X)).
/// Returns false when translation fails.
bool buildCommObligation(TermFactory &F, const ResourceSpecDecl &Spec,
                         const Program *Prog, const ActionDecl &A,
                         const ActionDecl &B, const ATerm *X, const ATerm *Y,
                         const ATerm *&L, const ATerm *&R);

/// Replays a recorded split tree: true iff every feasible branch closes
/// (equal normal forms or contradictory facts). This is the checker's
/// search-free re-validation; \p StepsOut (optional) accumulates rewrite
/// steps.
bool replaySplitTree(TermFactory &F, const ATerm *L, const ATerm *R,
                     const FactCtx &Ctx, const SplitNode *Tree,
                     const NormLimits &Limits, uint64_t *StepsOut = nullptr);

} // namespace absint
} // namespace commcsl

#endif // COMMCSL_ABSINT_DIFFERENCING_H
