//===-- absint/Domain.cpp - Difference-domain product ----------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "absint/Domain.h"

#include <algorithm>

using namespace commcsl;
using namespace commcsl::absint;

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

namespace {

/// Saturating add for interval endpoints (mathematical integers, so the
/// abstraction saturates rather than wraps; a saturated bound is only ever
/// *widened*, never tightened, which keeps it sound).
int64_t satAdd(int64_t A, int64_t B) {
  if (B > 0 && A > INT64_MAX - B)
    return INT64_MAX;
  if (B < 0 && A < INT64_MIN - B)
    return INT64_MIN;
  return A + B;
}

bool mulOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

} // namespace

bool Interval::meet(const Interval &O) {
  if (!O.LoInf && (LoInf || O.Lo > Lo)) {
    LoInf = false;
    Lo = O.Lo;
  }
  if (!O.HiInf && (HiInf || O.Hi < Hi)) {
    HiInf = false;
    Hi = O.Hi;
  }
  return LoInf || HiInf || Lo <= Hi;
}

void Interval::join(const Interval &O) {
  if (O.LoInf || (!LoInf && O.Lo < Lo)) {
    LoInf = O.LoInf;
    Lo = O.Lo;
  }
  if (O.HiInf || (!HiInf && O.Hi > Hi)) {
    HiInf = O.HiInf;
    Hi = O.Hi;
  }
}

void Interval::widen(const Interval &Prev) {
  if (!Prev.LoInf && (LoInf || Lo < Prev.Lo))
    LoInf = true;
  if (!Prev.HiInf && (HiInf || Hi > Prev.Hi))
    HiInf = true;
}

Interval Interval::add(const Interval &A, const Interval &B) {
  Interval R;
  R.LoInf = A.LoInf || B.LoInf;
  R.HiInf = A.HiInf || B.HiInf;
  if (!R.LoInf)
    R.Lo = satAdd(A.Lo, B.Lo);
  if (!R.HiInf)
    R.Hi = satAdd(A.Hi, B.Hi);
  return R;
}

Interval Interval::negate(const Interval &A) {
  Interval R;
  R.LoInf = A.HiInf;
  R.HiInf = A.LoInf;
  if (!R.LoInf)
    R.Lo = A.Hi == INT64_MIN ? INT64_MAX : -A.Hi;
  if (!R.HiInf)
    R.Hi = A.Lo == INT64_MIN ? INT64_MAX : -A.Lo;
  return R;
}

Interval Interval::mulConst(const Interval &A, int64_t C) {
  if (C == 0)
    return point(0);
  Interval Base = C < 0 ? negate(A) : A;
  int64_t M = C < 0 ? (C == INT64_MIN ? INT64_MAX : -C) : C;
  Interval R;
  R.LoInf = Base.LoInf;
  R.HiInf = Base.HiInf;
  int64_t P;
  if (!R.LoInf) {
    if (mulOverflows(Base.Lo, M, P))
      R.LoInf = true;
    else
      R.Lo = P;
  }
  if (!R.HiInf) {
    if (mulOverflows(Base.Hi, M, P))
      R.HiInf = true;
    else
      R.Hi = P;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Linear forms
//===----------------------------------------------------------------------===//

void LinForm::add(const LinForm &O, int64_t Scale) {
  Const += static_cast<int64_t>(static_cast<uint64_t>(O.Const) *
                                static_cast<uint64_t>(Scale));
  for (const auto &[Atom, C] : O.Coeffs) {
    int64_t Inc = static_cast<int64_t>(static_cast<uint64_t>(C) *
                                       static_cast<uint64_t>(Scale));
    int64_t &Slot = Coeffs[Atom];
    Slot = static_cast<int64_t>(static_cast<uint64_t>(Slot) +
                                static_cast<uint64_t>(Inc));
    if (Slot == 0)
      Coeffs.erase(Atom);
  }
}

LinForm commcsl::absint::linearize(const ATerm *T) {
  LinForm L;
  switch (T->K) {
  case AOp::IntConst:
    L.Const = T->IntVal;
    return L;
  case AOp::Add:
    for (const ATerm *Kid : T->Kids)
      L.add(linearize(Kid), 1);
    return L;
  case AOp::Mul:
    // Canonical Mul keeps a constant factor first when present.
    if (T->Kids.size() >= 2 && T->Kids[0]->K == AOp::IntConst) {
      const ATerm *Rest;
      if (T->Kids.size() == 2) {
        Rest = T->Kids[1];
      } else {
        L.Coeffs[T] = 1; // non-linear beyond const * atom
        return L;
      }
      LinForm Inner = linearize(Rest);
      L.add(Inner, T->Kids[0]->IntVal);
      return L;
    }
    L.Coeffs[T] = 1;
    return L;
  default:
    L.Coeffs[T] = 1;
    return L;
  }
}

//===----------------------------------------------------------------------===//
// FactCtx
//===----------------------------------------------------------------------===//

const ATerm *FactCtx::rewriteOf(const ATerm *T) const {
  auto It = Rewrites.find(T);
  return It == Rewrites.end() ? nullptr : It->second;
}

std::optional<bool> FactCtx::boolFact(const ATerm *T) const {
  auto It = BoolFacts.find(T);
  if (It == BoolFacts.end())
    return std::nullopt;
  return It->second;
}

bool FactCtx::addEq(const ATerm *A, const ATerm *B) {
  if (A == B)
    return true;
  if (decideEq(A, B) == Tri::False) {
    Infeasible = true;
    return false;
  }
  // Orient: structurally larger side rewrites to the smaller one. Chains
  // are flattened through existing rewrites where possible.
  if (const ATerm *R = rewriteOf(A))
    A = R;
  if (const ATerm *R = rewriteOf(B))
    B = R;
  if (A == B)
    return true;
  const ATerm *From = A, *To = B;
  if (ATerm::compare(From, To) < 0)
    std::swap(From, To);
  Rewrites[From] = To;
  // Numeric content: from == to, i.e. from - to ∈ [0, 0].
  LinForm D = linearize(From);
  D.add(linearize(To), -1);
  if (!D.isConst()) {
    LinForm Neg;
    Neg.add(D, -1);
    LeZero.push_back(D);   // from - to <= 0
    LeZero.push_back(Neg); // to - from <= 0
    propagate();
  } else if (D.Const != 0) {
    Infeasible = true;
    return false;
  }
  return true;
}

void FactCtx::addDiseq(const ATerm *A, const ATerm *B) {
  if (ATerm::compare(A, B) > 0)
    std::swap(A, B);
  Diseqs.emplace_back(A, B);
}

bool FactCtx::addBool(const ATerm *T, bool Truth) {
  // Push negations inward so the stored fact is positive.
  if (T->K == AOp::Not)
    return addBool(T->Kids[0], !Truth);
  if (T->K == AOp::BoolConst) {
    if (T->BoolVal != Truth)
      Infeasible = true;
    return !Infeasible;
  }
  if (T->K == AOp::And && Truth) {
    for (const ATerm *Kid : T->Kids)
      if (!addBool(Kid, true))
        return false;
    return true;
  }
  if (T->K == AOp::Or && !Truth) {
    for (const ATerm *Kid : T->Kids)
      if (!addBool(Kid, false))
        return false;
    return true;
  }
  auto Existing = BoolFacts.find(T);
  if (Existing != BoolFacts.end() && Existing->second != Truth) {
    Infeasible = true;
    return false;
  }
  BoolFacts[T] = Truth;
  if (T->K == AOp::Eq)
    return Truth ? addEq(T->Kids[0], T->Kids[1])
                 : (addDiseq(T->Kids[0], T->Kids[1]), true);
  if (T->K == AOp::Lt || T->K == AOp::Le) {
    // A < B  ==  A - B <= -1;  A <= B  ==  A - B <= 0. Negations flip.
    const ATerm *A = T->Kids[0], *B = T->Kids[1];
    bool Strict = T->K == AOp::Lt;
    LinForm D;
    if (Truth) {
      D = linearize(A);
      D.add(linearize(B), -1);
      D.Const = satAdd(D.Const, Strict ? 1 : 0); // A - B + strict <= 0
    } else {
      // !(A < B) == B <= A;  !(A <= B) == B < A.
      D = linearize(B);
      D.add(linearize(A), -1);
      D.Const = satAdd(D.Const, Strict ? 0 : 1);
    }
    if (D.isConst()) {
      if (D.Const > 0) {
        Infeasible = true;
        return false;
      }
      return true;
    }
    LeZero.push_back(std::move(D));
    propagate();
  }
  return !Infeasible;
}

Interval FactCtx::boundOf(const ATerm *Atom) const {
  if (Atom->K == AOp::IntConst)
    return Interval::point(Atom->IntVal);
  auto It = Bounds.find(Atom);
  return It == Bounds.end() ? Interval::top() : It->second;
}

std::optional<Interval> FactCtx::diffBound(const ATerm *A,
                                           const ATerm *B) const {
  bool Flip = ATerm::compare(A, B) > 0;
  if (Flip)
    std::swap(A, B);
  auto It = Diffs.find({A, B});
  if (It == Diffs.end())
    return std::nullopt;
  return Flip ? Interval::negate(It->second) : It->second;
}

void FactCtx::propagate() {
  // Fixpoint over the <=0 constraint store. Each sweep tightens atom
  // intervals (single-atom residue) and pairwise difference intervals
  // (two-atom ±1 residue). After `WidenAfter` sweeps, any bound still in
  // motion is widened to infinity, so the loop terminates on every input.
  constexpr unsigned WidenAfter = 3;
  constexpr unsigned HardCap = 16;
  for (unsigned Sweep = 0; Sweep < HardCap; ++Sweep) {
    bool Changed = false;
    auto PrevBounds = Bounds;
    auto PrevDiffs = Diffs;
    for (const LinForm &L : LeZero) {
      // For each atom a with coefficient c: c*a <= -(const + rest-min).
      for (const auto &[Atom, C] : L.Coeffs) {
        if (C != 1 && C != -1)
          continue; // octagon fragment only
        // rest = const + Σ other terms; bound rest from below.
        Interval Rest = Interval::point(L.Const);
        bool RestKnown = true;
        for (const auto &[OA, OC] : L.Coeffs) {
          if (OA == Atom)
            continue;
          Interval AV = boundOf(OA);
          Interval Scaled = Interval::mulConst(AV, OC);
          Rest = Interval::add(Rest, Scaled);
          if (Rest.LoInf && Rest.HiInf)
            RestKnown = false;
        }
        (void)RestKnown;
        Interval Tight = Interval::top();
        if (C == 1) {
          // a <= -rest  -> upper bound from rest's lower bound.
          if (!Rest.LoInf)
            Tight = Interval::atMost(Rest.Lo == INT64_MIN ? INT64_MAX
                                                          : -Rest.Lo);
        } else {
          // -a + rest <= 0  ->  a >= rest's lower bound.
          if (!Rest.LoInf)
            Tight = Interval::atLeast(Rest.Lo);
        }
        if (Tight.LoInf && Tight.HiInf)
          continue;
        Interval &Slot =
            Bounds.emplace(Atom, Interval::top()).first->second;
        Interval Before = Slot;
        if (!Slot.meet(Tight)) {
          Infeasible = true;
          return;
        }
        if (!(Slot == Before))
          Changed = true;
      }
      // Two-atom ±1 differences feed the octagon store.
      if (L.Coeffs.size() == 2) {
        auto It = L.Coeffs.begin();
        auto [A1, C1] = *It++;
        auto [A2, C2] = *It;
        if (C1 == 1 && C2 == -1) {
          // A1 - A2 <= -Const.
          Interval &Slot =
              Diffs.emplace(std::make_pair(A1, A2), Interval::top())
                  .first->second;
          Interval Before = Slot;
          if (!Slot.meet(Interval::atMost(
                  L.Const == INT64_MIN ? INT64_MAX : -L.Const))) {
            Infeasible = true;
            return;
          }
          if (!(Slot == Before))
            Changed = true;
        } else if (C1 == -1 && C2 == 1) {
          Interval &Slot =
              Diffs.emplace(std::make_pair(A1, A2), Interval::top())
                  .first->second;
          Interval Before = Slot;
          if (!Slot.meet(Interval::atLeast(L.Const))) {
            Infeasible = true;
            return;
          }
          if (!(Slot == Before))
            Changed = true;
        }
      }
    }
    if (!Changed)
      return;
    if (Sweep + 1 >= WidenAfter) {
      // Widen: any interval that moved this sweep loses its moving bounds.
      for (auto &[Atom, Iv] : Bounds) {
        auto It = PrevBounds.find(Atom);
        if (It != PrevBounds.end() && !(Iv == It->second)) {
          Iv.widen(It->second);
          ++Widenings;
        }
      }
      for (auto &[Pair, Iv] : Diffs) {
        auto It = PrevDiffs.find(Pair);
        if (It != PrevDiffs.end() && !(Iv == It->second)) {
          Iv.widen(It->second);
          ++Widenings;
        }
      }
    }
  }
}

AbsVal FactCtx::absOfLin(const LinForm &L) const {
  AbsVal V;
  V.Iv = Interval::point(L.Const);
  V.Par = Parity::of(L.Const);
  for (const auto &[Atom, C] : L.Coeffs) {
    Interval AV = boundOf(Atom);
    V.Iv = Interval::add(V.Iv, Interval::mulConst(AV, C));
    Parity AP = Parities.count(Atom) ? Parities.at(Atom) : Parity::top();
    if (AV.isPoint())
      AP = Parity::of(AV.Lo);
    V.Par = Parity::add(V.Par, Parity::mulConst(AP, C));
  }
  return V;
}

AbsVal FactCtx::absOf(const ATerm *T) const { return absOfLin(linearize(T)); }

Tri FactCtx::decideEq(const ATerm *A, const ATerm *B) const {
  if (A == B)
    return Tri::True;
  // Recorded rewrites identify terms.
  const ATerm *RA = rewriteOf(A), *RB = rewriteOf(B);
  if ((RA ? RA : A) == (RB ? RB : B))
    return Tri::True;
  // Distinct constants.
  if (A->K == AOp::IntConst && B->K == AOp::IntConst)
    return triOf(A->IntVal == B->IntVal);
  if (A->K == AOp::BoolConst && B->K == AOp::BoolConst)
    return triOf(A->BoolVal == B->BoolVal);
  if (A->K == AOp::StrConst && B->K == AOp::StrConst)
    return triOf(A->Str == B->Str);
  // Pair congruence: equal iff both components equal.
  if (A->K == AOp::Bi && B->K == AOp::Bi &&
      A->B == BuiltinKind::PairMk && B->B == BuiltinKind::PairMk) {
    Tri L = decideEq(A->Kids[0], B->Kids[0]);
    Tri R = decideEq(A->Kids[1], B->Kids[1]);
    if (L == Tri::False || R == Tri::False)
      return Tri::False;
    if (L == Tri::True && R == Tri::True)
      return Tri::True;
    return Tri::Unknown;
  }
  // Recorded disequalities.
  {
    const ATerm *X = A, *Y = B;
    if (ATerm::compare(X, Y) > 0)
      std::swap(X, Y);
    for (const auto &[DA, DB] : Diseqs)
      if (DA == X && DB == Y)
        return Tri::False;
  }
  // Numeric difference: interval excluding zero, or odd parity.
  LinForm D = linearize(A);
  D.add(linearize(B), -1);
  if (D.isConst())
    return triOf(D.Const == 0);
  // Octagon lookup for a pure two-atom difference.
  if (D.Coeffs.size() == 2) {
    auto It = D.Coeffs.begin();
    auto [A1, C1] = *It++;
    auto [A2, C2] = *It;
    if (C1 == 1 && C2 == -1) {
      if (auto DB = diffBound(A1, A2)) {
        Interval Sum = Interval::add(*DB, Interval::point(D.Const));
        if (!Sum.contains(0))
          return Tri::False;
        if (Sum.isPoint() && Sum.Lo == 0)
          return Tri::True;
      }
    }
  }
  AbsVal V = absOfLin(D);
  if (!V.Iv.contains(0))
    return Tri::False;
  if (V.Iv.isPoint() && V.Iv.Lo == 0)
    return Tri::True;
  if (V.Par.excludesZero())
    return Tri::False;
  return Tri::Unknown;
}

Tri FactCtx::decideCmp(const ATerm *A, const ATerm *B, bool Strict) const {
  LinForm D = linearize(A);
  D.add(linearize(B), -1); // A - B
  if (D.isConst())
    return triOf(Strict ? D.Const < 0 : D.Const <= 0);
  Interval Iv;
  bool Have = false;
  if (D.Coeffs.size() == 2) {
    auto It = D.Coeffs.begin();
    auto [A1, C1] = *It++;
    auto [A2, C2] = *It;
    if (C1 == 1 && C2 == -1) {
      if (auto DB = diffBound(A1, A2)) {
        Iv = Interval::add(*DB, Interval::point(D.Const));
        Have = true;
      }
    }
  }
  if (!Have)
    Iv = absOfLin(D).Iv;
  // A - B ∈ Iv; decide Iv vs 0.
  if (!Iv.HiInf && (Strict ? Iv.Hi < 0 : Iv.Hi <= 0))
    return Tri::True;
  if (!Iv.LoInf && (Strict ? Iv.Lo >= 0 : Iv.Lo > 0))
    return Tri::False;
  return Tri::Unknown;
}
