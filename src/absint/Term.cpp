//===-- absint/Term.cpp - Interned terms for the differencing tier ---------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "absint/Term.h"

#include <algorithm>
#include <sstream>

using namespace commcsl;
using namespace commcsl::absint;

int ATerm::compare(const ATerm *A, const ATerm *B) {
  if (A == B)
    return 0;
  if (A->K != B->K)
    return static_cast<int>(A->K) < static_cast<int>(B->K) ? -1 : 1;
  switch (A->K) {
  case AOp::IntConst:
    return A->IntVal < B->IntVal ? -1 : (A->IntVal > B->IntVal ? 1 : 0);
  case AOp::BoolConst:
    return int(A->BoolVal) - int(B->BoolVal);
  case AOp::StrConst:
  case AOp::Sym:
    return A->Str.compare(B->Str);
  case AOp::Bi:
    if (A->B != B->B)
      return static_cast<int>(A->B) < static_cast<int>(B->B) ? -1 : 1;
    break;
  default:
    break;
  }
  if (A->Kids.size() != B->Kids.size())
    return A->Kids.size() < B->Kids.size() ? -1 : 1;
  for (size_t I = 0; I < A->Kids.size(); ++I)
    if (int C = compare(A->Kids[I], B->Kids[I]))
      return C;
  return 0;
}

std::string ATerm::str() const {
  std::ostringstream OS;
  switch (K) {
  case AOp::IntConst:
    OS << IntVal;
    return OS.str();
  case AOp::BoolConst:
    return BoolVal ? "true" : "false";
  case AOp::StrConst:
    return "\"" + Str + "\"";
  case AOp::UnitConst:
    return "unit";
  case AOp::Sym:
    return Str;
  default:
    break;
  }
  const char *Head = nullptr;
  switch (K) {
  case AOp::Add:
    Head = "+";
    break;
  case AOp::Mul:
    Head = "*";
    break;
  case AOp::Div:
    Head = "/";
    break;
  case AOp::Mod:
    Head = "%";
    break;
  case AOp::Eq:
    Head = "==";
    break;
  case AOp::Lt:
    Head = "<";
    break;
  case AOp::Le:
    Head = "<=";
    break;
  case AOp::Not:
    Head = "!";
    break;
  case AOp::And:
    Head = "&&";
    break;
  case AOp::Or:
    Head = "||";
    break;
  case AOp::Ite:
    Head = "ite";
    break;
  case AOp::Bi:
    Head = builtinName(B);
    break;
  default:
    Head = "?";
    break;
  }
  OS << "(" << Head;
  for (const ATerm *Kid : Kids)
    OS << " " << Kid->str();
  OS << ")";
  return OS.str();
}

size_t TermFactory::KeyHash::operator()(const Key &K) const {
  uint64_t H = 0x9E3779B97F4A7C15ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
  };
  Mix(static_cast<uint64_t>(K.K));
  Mix(static_cast<uint64_t>(K.B));
  Mix(static_cast<uint64_t>(K.IntVal));
  Mix(K.BoolVal ? 1 : 0);
  Mix(std::hash<std::string>()(K.Str));
  for (const ATerm *Kid : K.Kids)
    Mix(Kid->Hash);
  return static_cast<size_t>(H);
}

const ATerm *TermFactory::intern(Key K) {
  auto It = Terms.find(K);
  if (It != Terms.end())
    return It->second.get();
  auto T = std::make_unique<ATerm>();
  T->K = K.K;
  T->B = K.B;
  T->IntVal = K.IntVal;
  T->BoolVal = K.BoolVal;
  T->Str = K.Str;
  T->Kids = K.Kids;
  T->Hash = KeyHash()(K);
  T->Size = 1;
  for (const ATerm *Kid : T->Kids)
    T->Size += Kid->Size;
  const ATerm *Out = T.get();
  Terms.emplace(std::move(K), std::move(T));
  return Out;
}

const ATerm *TermFactory::intConst(int64_t V) {
  Key K{AOp::IntConst, BuiltinKind::PairMk, V, false, {}, {}};
  return intern(std::move(K));
}

const ATerm *TermFactory::boolConst(bool V) {
  Key K{AOp::BoolConst, BuiltinKind::PairMk, 0, V, {}, {}};
  return intern(std::move(K));
}

const ATerm *TermFactory::strConst(const std::string &S) {
  Key K{AOp::StrConst, BuiltinKind::PairMk, 0, false, S, {}};
  return intern(std::move(K));
}

const ATerm *TermFactory::unitConst() {
  Key K{AOp::UnitConst, BuiltinKind::PairMk, 0, false, {}, {}};
  return intern(std::move(K));
}

const ATerm *TermFactory::sym(const std::string &Name) {
  Key K{AOp::Sym, BuiltinKind::PairMk, 0, false, Name, {}};
  return intern(std::move(K));
}

const ATerm *TermFactory::app(AOp K, std::vector<const ATerm *> Kids) {
  Key Ky{K, BuiltinKind::PairMk, 0, false, {}, std::move(Kids)};
  return intern(std::move(Ky));
}

const ATerm *TermFactory::bi(BuiltinKind B, std::vector<const ATerm *> Kids) {
  Key Ky{AOp::Bi, B, 0, false, {}, std::move(Kids)};
  return intern(std::move(Ky));
}

const ATerm *TermFactory::add2(const ATerm *A, const ATerm *B) {
  return app(AOp::Add, {A, B});
}

const ATerm *TermFactory::mul2(const ATerm *A, const ATerm *B) {
  return app(AOp::Mul, {A, B});
}

const ATerm *TermFactory::notT(const ATerm *A) { return app(AOp::Not, {A}); }

const ATerm *TermFactory::eq(const ATerm *A, const ATerm *B) {
  if (ATerm::compare(A, B) > 0)
    std::swap(A, B);
  return app(AOp::Eq, {A, B});
}

const ATerm *TermFactory::ite(const ATerm *C, const ATerm *T,
                              const ATerm *E) {
  return app(AOp::Ite, {C, T, E});
}
