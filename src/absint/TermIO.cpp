//===-- absint/TermIO.cpp - Canonical term serialization -------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "absint/TermIO.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace commcsl;
using namespace commcsl::absint;

namespace {

const char *opHead(AOp K) {
  switch (K) {
  case AOp::Add:
    return "+";
  case AOp::Mul:
    return "*";
  case AOp::Div:
    return "/";
  case AOp::Mod:
    return "%%"; // distinct from symbol names, which start with one '%'
  case AOp::Eq:
    return "=";
  case AOp::Lt:
    return "<";
  case AOp::Le:
    return "<=";
  case AOp::Not:
    return "!";
  case AOp::And:
    return "and";
  case AOp::Or:
    return "or";
  case AOp::Ite:
    return "if";
  default:
    return nullptr;
  }
}

void printInto(const ATerm *T, std::string &Out) {
  switch (T->K) {
  case AOp::IntConst:
    Out += std::to_string(T->IntVal);
    return;
  case AOp::BoolConst:
    Out += T->BoolVal ? "#t" : "#f";
    return;
  case AOp::UnitConst:
    Out += "#u";
    return;
  case AOp::StrConst:
    Out += '"';
    for (char C : T->Str) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
    return;
  case AOp::Sym:
    Out += T->Str;
    return;
  default:
    break;
  }
  Out += '(';
  Out += T->K == AOp::Bi ? builtinName(T->B) : opHead(T->K);
  for (const ATerm *Kid : T->Kids) {
    Out += ' ';
    printInto(Kid, Out);
  }
  Out += ')';
}

class Parser {
public:
  Parser(TermFactory &F, const std::string &Text) : F(F), S(Text) {}

  const ATerm *run() {
    const ATerm *T = term();
    skipWs();
    return Pos == S.size() ? T : nullptr;
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool atomChar(char C) const {
    return C != '(' && C != ')' && C != '"' &&
           !std::isspace(static_cast<unsigned char>(C));
  }

  std::string atom() {
    size_t Start = Pos;
    while (Pos < S.size() && atomChar(S[Pos]))
      ++Pos;
    return S.substr(Start, Pos - Start);
  }

  const ATerm *term() {
    skipWs();
    if (Pos >= S.size())
      return nullptr;
    if (S[Pos] == '"') {
      ++Pos;
      std::string V;
      while (Pos < S.size() && S[Pos] != '"') {
        if (S[Pos] == '\\' && Pos + 1 < S.size())
          ++Pos;
        V += S[Pos++];
      }
      if (Pos >= S.size())
        return nullptr;
      ++Pos; // closing quote
      return F.strConst(V);
    }
    if (S[Pos] != '(') {
      std::string A = atom();
      if (A.empty())
        return nullptr;
      if (A == "#t")
        return F.boolConst(true);
      if (A == "#f")
        return F.boolConst(false);
      if (A == "#u")
        return F.unitConst();
      bool Neg = A[0] == '-';
      if (std::isdigit(static_cast<unsigned char>(A[Neg ? 1 : 0])) &&
          A.size() > (Neg ? 1u : 0u)) {
        // Strict integer atom: every remaining char must be a digit
        // (symbols never start with a digit or '-digit').
        bool AllDigits = true;
        for (size_t I = Neg ? 1 : 0; I < A.size(); ++I)
          AllDigits &= std::isdigit(static_cast<unsigned char>(A[I])) != 0;
        if (AllDigits) {
          errno = 0;
          long long V = std::strtoll(A.c_str(), nullptr, 10);
          return F.intConst(static_cast<int64_t>(V));
        }
      }
      return F.sym(A);
    }
    ++Pos; // '('
    skipWs();
    std::string Head = atom();
    if (Head.empty())
      return nullptr;
    std::vector<const ATerm *> Kids;
    for (;;) {
      skipWs();
      if (Pos >= S.size())
        return nullptr;
      if (S[Pos] == ')') {
        ++Pos;
        break;
      }
      const ATerm *Kid = term();
      if (!Kid)
        return nullptr;
      Kids.push_back(Kid);
    }
    return apply(Head, std::move(Kids));
  }

  const ATerm *apply(const std::string &Head,
                     std::vector<const ATerm *> Kids) {
    struct OpEntry {
      const char *Name;
      AOp K;
      unsigned MinArity, MaxArity;
    };
    static const OpEntry Ops[] = {
        {"+", AOp::Add, 2, ~0u},  {"*", AOp::Mul, 2, ~0u},
        {"/", AOp::Div, 2, 2},    {"%%", AOp::Mod, 2, 2},
        {"=", AOp::Eq, 2, 2},     {"<", AOp::Lt, 2, 2},
        {"<=", AOp::Le, 2, 2},    {"!", AOp::Not, 1, 1},
        {"and", AOp::And, 2, ~0u}, {"or", AOp::Or, 2, ~0u},
        {"if", AOp::Ite, 3, 3},
    };
    for (const OpEntry &Op : Ops)
      if (Head == Op.Name) {
        if (Kids.size() < Op.MinArity || Kids.size() > Op.MaxArity)
          return nullptr;
        // Structure-preserving: recorded terms are already canonical, and
        // faithfulness matters more than repair — a tampered certificate
        // must fail comparison, not be silently fixed up.
        return F.app(Op.K, std::move(Kids));
      }
    std::optional<BuiltinKind> BK = builtinByName(Head);
    if (!BK)
      return nullptr;
    return F.bi(*BK, std::move(Kids));
  }

  TermFactory &F;
  const std::string &S;
  size_t Pos = 0;
};

} // namespace

std::string commcsl::absint::printTerm(const ATerm *T) {
  std::string Out;
  printInto(T, Out);
  return Out;
}

const ATerm *commcsl::absint::parseTerm(TermFactory &F,
                                        const std::string &Text) {
  return Parser(F, Text).run();
}
