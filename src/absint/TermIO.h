//===-- absint/TermIO.h - Canonical term serialization ----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical s-expression serialization of absint terms, used by proof
/// certificates to record update templates and split-tree guards. The
/// round-trip is exact: `parseTerm(F, printTerm(T))` re-interns the same
/// structure (the parser uses the structure-preserving factory
/// constructors, never the normalizing ones), so terms printed from one
/// factory compare pointer-equal after parsing into another factory that
/// re-derived the same normal forms.
///
/// Grammar:
///   term := INT | #t | #f | #u | "string" | symbol
///         | (+ term term+) | (* term term+) | (/ term term) | (% term term)
///         | (= term term) | (< term term) | (<= term term) | (! term)
///         | (and term term+) | (or term term+) | (if term term term)
///         | (<builtin-name> term*)
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ABSINT_TERMIO_H
#define COMMCSL_ABSINT_TERMIO_H

#include "absint/Term.h"

namespace commcsl {
namespace absint {

/// Canonical rendering; byte-deterministic.
std::string printTerm(const ATerm *T);

/// Parses a printed term into \p F. Returns null on malformed input (never
/// throws); the whole input must be consumed.
const ATerm *parseTerm(TermFactory &F, const std::string &Text);

} // namespace absint
} // namespace commcsl

#endif // COMMCSL_ABSINT_TERMIO_H
