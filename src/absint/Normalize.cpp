//===-- absint/Normalize.cpp - Equational normalizer -----------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "absint/Normalize.h"

#include <algorithm>
#include <functional>

using namespace commcsl;
using namespace commcsl::absint;

namespace {

bool isB(const ATerm *T, BuiltinKind B) {
  return T->K == AOp::Bi && T->B == B;
}

bool structLess(const ATerm *A, const ATerm *B) {
  return ATerm::compare(A, B) < 0;
}

// Wrap-around arithmetic matching vops::add / vops::mul (int64 two's
// complement in practice).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(~static_cast<uint64_t>(A) + 1);
}

/// Splits a normal-form product into (coefficient, base).
std::pair<int64_t, const ATerm *> coeffOf(TermFactory &F, const ATerm *T) {
  if (T->K == AOp::Mul && T->Kids.size() >= 2 &&
      T->Kids[0]->K == AOp::IntConst) {
    std::vector<const ATerm *> Rest(T->Kids.begin() + 1, T->Kids.end());
    const ATerm *Base = Rest.size() == 1 ? Rest[0] : F.app(AOp::Mul, Rest);
    return {T->Kids[0]->IntVal, Base};
  }
  return {1, T};
}

/// Collects the set/ms-add spine of \p T: returns the core (innermost
/// non-add term) and appends the added elements to \p Elems.
const ATerm *stripAdds(const ATerm *T, BuiltinKind AddKind,
                       std::vector<const ATerm *> &Elems) {
  while (isB(T, AddKind)) {
    Elems.push_back(T->Kids[1]);
    T = T->Kids[0];
  }
  return T;
}

/// Flattens a nested binary chain of the same builtin into leaves.
void flattenBi(const ATerm *T, BuiltinKind B,
               std::vector<const ATerm *> &Out) {
  if (isB(T, B)) {
    for (const ATerm *Kid : T->Kids)
      flattenBi(Kid, B, Out);
    return;
  }
  Out.push_back(T);
}

} // namespace

void Normalizer::blockOn(const ATerm *Guard) {
  if (Guard->K == AOp::BoolConst)
    return;
  if (Ctx.boolFact(Guard))
    return;
  if (GuardSet.insert(Guard).second)
    Guards.push_back(Guard);
}

const ATerm *Normalizer::normalize(const ATerm *T) {
  const ATerm *R = norm(T);
  return Blown ? nullptr : R;
}

const ATerm *Normalizer::norm(const ATerm *T) {
  if (Blown)
    return T;
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;
  if (!budget() || T->Size > Limits.MaxTermSize) {
    Blown = true;
    return T;
  }

  const ATerm *Cur = T;
  if (!Cur->Kids.empty()) {
    std::vector<const ATerm *> Kids;
    Kids.reserve(Cur->Kids.size());
    bool Changed = false;
    for (const ATerm *Kid : Cur->Kids) {
      const ATerm *NK = norm(Kid);
      Changed |= NK != Kid;
      Kids.push_back(NK);
    }
    if (Blown)
      return T;
    if (Changed)
      Cur = Cur->K == AOp::Bi ? F.bi(Cur->B, std::move(Kids))
                              : F.app(Cur->K, std::move(Kids));
  }

  // Fact application first: oriented equality rewrites and boolean facts
  // strictly decrease the term, so recursing terminates.
  if (const ATerm *Rw = Ctx.rewriteOf(Cur)) {
    Cur = norm(Rw);
  } else if (auto BF = Ctx.boolFact(Cur)) {
    Cur = F.boolConst(*BF);
  } else if (const ATerm *Next = rewriteRoot(Cur)) {
    if (Next != Cur && budget())
      Cur = norm(Next);
    else if (Next != Cur)
      Blown = true;
  }

  if (!Blown) {
    Memo[T] = Cur;
    Memo.emplace(Cur, Cur);
  }
  return Cur;
}

const ATerm *Normalizer::rewriteRoot(const ATerm *T) {
  switch (T->K) {
  case AOp::IntConst:
  case AOp::BoolConst:
  case AOp::StrConst:
  case AOp::UnitConst:
  case AOp::Sym:
    return nullptr;
  case AOp::Add:
    return rewriteAdd(T);
  case AOp::Mul:
    return rewriteMul(T);
  case AOp::Div: {
    const ATerm *A = T->Kids[0], *B = T->Kids[1];
    if (A->K == AOp::IntConst && B->K == AOp::IntConst) {
      if (B->IntVal == 0)
        return F.intConst(0); // vops::divT: division by zero yields 0
      if (A->IntVal == INT64_MIN && B->IntVal == -1)
        return F.intConst(INT64_MIN);
      return F.intConst(A->IntVal / B->IntVal);
    }
    if (B->isInt(1))
      return A;
    if (A->isInt(0) && Ctx.absOf(B).Iv.contains(0) == false)
      return F.intConst(0); // only when divisor provably nonzero
    return nullptr;
  }
  case AOp::Mod: {
    const ATerm *A = T->Kids[0], *B = T->Kids[1];
    if (A->K == AOp::IntConst && B->K == AOp::IntConst) {
      if (B->IntVal == 0)
        return F.intConst(0); // vops::modT: modulo by zero yields 0
      if (A->IntVal == INT64_MIN && B->IntVal == -1)
        return F.intConst(0);
      return F.intConst(A->IntVal % B->IntVal);
    }
    if (B->isInt(1) || B->isInt(-1))
      return F.intConst(0);
    return nullptr;
  }
  case AOp::Eq: {
    const ATerm *A = T->Kids[0], *B = T->Kids[1];
    Tri D = Ctx.decideEq(A, B);
    if (D != Tri::Unknown)
      return F.boolConst(D == Tri::True);
    // Pair congruence: split into a conjunction so one component can fold
    // and the other become the split target.
    if (isB(A, BuiltinKind::PairMk) && isB(B, BuiltinKind::PairMk))
      return F.app(AOp::And, {F.eq(A->Kids[0], B->Kids[0]),
                              F.eq(A->Kids[1], B->Kids[1])});
    return nullptr;
  }
  case AOp::Lt:
  case AOp::Le: {
    Tri D = Ctx.decideCmp(T->Kids[0], T->Kids[1], T->K == AOp::Lt);
    if (D != Tri::Unknown)
      return F.boolConst(D == Tri::True);
    return nullptr;
  }
  case AOp::Not: {
    const ATerm *A = T->Kids[0];
    if (A->K == AOp::BoolConst)
      return F.boolConst(!A->BoolVal);
    if (A->K == AOp::Not)
      return A->Kids[0];
    if (A->K == AOp::Lt)
      return F.app(AOp::Le, {A->Kids[1], A->Kids[0]});
    if (A->K == AOp::Le)
      return F.app(AOp::Lt, {A->Kids[1], A->Kids[0]});
    if (A->K == AOp::And || A->K == AOp::Or) { // De Morgan
      std::vector<const ATerm *> Kids;
      Kids.reserve(A->Kids.size());
      for (const ATerm *Kid : A->Kids)
        Kids.push_back(F.notT(Kid));
      return F.app(A->K == AOp::And ? AOp::Or : AOp::And, std::move(Kids));
    }
    return nullptr;
  }
  case AOp::And:
  case AOp::Or:
    return rewriteBool(T);
  case AOp::Ite: {
    const ATerm *C = T->Kids[0], *Th = T->Kids[1], *El = T->Kids[2];
    if (C->K == AOp::BoolConst)
      return C->BoolVal ? Th : El;
    if (Th == El)
      return Th;
    if (C->K == AOp::Not)
      return F.ite(C->Kids[0], El, Th);
    blockOn(C);
    return nullptr;
  }
  case AOp::Bi:
    return rewriteBuiltin(T);
  }
  return nullptr;
}

const ATerm *Normalizer::rewriteAdd(const ATerm *T) {
  int64_t CAcc = 0;
  std::map<const ATerm *, int64_t, bool (*)(const ATerm *, const ATerm *)>
      Coeffs(structLess);
  for (const ATerm *Kid : T->Kids) {
    // Kids are normal, so nesting is at most one level deep.
    std::vector<const ATerm *> Flat;
    if (Kid->K == AOp::Add)
      Flat.assign(Kid->Kids.begin(), Kid->Kids.end());
    else
      Flat.push_back(Kid);
    for (const ATerm *P : Flat) {
      if (P->K == AOp::IntConst) {
        CAcc = wrapAdd(CAcc, P->IntVal);
        continue;
      }
      auto [C, Base] = coeffOf(F, P);
      Coeffs[Base] = wrapAdd(Coeffs[Base], C);
    }
  }
  std::vector<const ATerm *> Out;
  if (CAcc != 0)
    Out.push_back(F.intConst(CAcc));
  for (const auto &[Base, C] : Coeffs) {
    if (C == 0)
      continue;
    Out.push_back(C == 1 ? Base : F.mul2(F.intConst(C), Base));
  }
  const ATerm *R = Out.empty()  ? F.intConst(0)
                   : Out.size() == 1 ? Out[0]
                                     : F.app(AOp::Add, std::move(Out));
  return R == T ? nullptr : R;
}

const ATerm *Normalizer::rewriteMul(const ATerm *T) {
  int64_t CAcc = 1;
  std::vector<const ATerm *> Factors;
  for (const ATerm *Kid : T->Kids) {
    std::vector<const ATerm *> Flat;
    if (Kid->K == AOp::Mul)
      Flat.assign(Kid->Kids.begin(), Kid->Kids.end());
    else
      Flat.push_back(Kid);
    for (const ATerm *P : Flat) {
      if (P->K == AOp::IntConst)
        CAcc = wrapMul(CAcc, P->IntVal);
      else
        Factors.push_back(P);
    }
  }
  if (CAcc == 0)
    return F.intConst(0);
  // Distribute a constant over a lone sum so linear forms stay linear.
  if (Factors.size() == 1 && Factors[0]->K == AOp::Add && CAcc != 1) {
    std::vector<const ATerm *> Kids;
    Kids.reserve(Factors[0]->Kids.size());
    for (const ATerm *Kid : Factors[0]->Kids)
      Kids.push_back(F.mul2(F.intConst(CAcc), Kid));
    return F.app(AOp::Add, std::move(Kids));
  }
  std::sort(Factors.begin(), Factors.end(), structLess);
  std::vector<const ATerm *> Out;
  if (CAcc != 1 || Factors.empty())
    Out.push_back(F.intConst(CAcc));
  Out.insert(Out.end(), Factors.begin(), Factors.end());
  const ATerm *R = Out.size() == 1 ? Out[0] : F.app(AOp::Mul, std::move(Out));
  return R == T ? nullptr : R;
}

const ATerm *Normalizer::rewriteBool(const ATerm *T) {
  const bool IsAnd = T->K == AOp::And;
  std::vector<const ATerm *> Kids;
  for (const ATerm *Kid : T->Kids) {
    std::vector<const ATerm *> Flat;
    if (Kid->K == T->K)
      Flat.assign(Kid->Kids.begin(), Kid->Kids.end());
    else
      Flat.push_back(Kid);
    for (const ATerm *P : Flat) {
      if (P->K == AOp::BoolConst) {
        if (P->BoolVal != IsAnd)
          return F.boolConst(!IsAnd); // absorbing element
        continue;                     // identity element
      }
      Kids.push_back(P);
    }
  }
  std::sort(Kids.begin(), Kids.end(), structLess);
  Kids.erase(std::unique(Kids.begin(), Kids.end()), Kids.end());
  for (const ATerm *Kid : Kids)
    if (Kid->K == AOp::Not &&
        std::binary_search(Kids.begin(), Kids.end(), Kid->Kids[0],
                           structLess))
      return F.boolConst(!IsAnd); // x and !x together
  const ATerm *R = Kids.empty()  ? F.boolConst(IsAnd)
                   : Kids.size() == 1 ? Kids[0]
                                      : F.app(T->K, std::move(Kids));
  return R == T ? nullptr : R;
}

const ATerm *Normalizer::rewriteMinMax(const ATerm *T, bool IsMin) {
  std::vector<const ATerm *> Leaves;
  flattenBi(T, T->B, Leaves);
  bool HaveConst = false;
  int64_t CAcc = 0;
  std::vector<const ATerm *> Rest;
  for (const ATerm *L : Leaves) {
    if (L->K == AOp::IntConst) {
      CAcc = HaveConst ? (IsMin ? std::min(CAcc, L->IntVal)
                                : std::max(CAcc, L->IntVal))
                       : L->IntVal;
      HaveConst = true;
    } else {
      Rest.push_back(L);
    }
  }
  std::sort(Rest.begin(), Rest.end(), structLess);
  Rest.erase(std::unique(Rest.begin(), Rest.end()), Rest.end());
  // Prune leaves dominated under the branch facts, and fold the constant
  // into a dominated/dominating leaf when the comparison is decided.
  std::vector<const ATerm *> Kept;
  for (size_t I = 0; I < Rest.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J < Rest.size() && !Dominated; ++J) {
      if (I == J)
        continue;
      Tri IJ = Ctx.decideCmp(Rest[I], Rest[J], false); // Rest[I] <= Rest[J]
      Tri JI = Ctx.decideCmp(Rest[J], Rest[I], false);
      // For max, Rest[I] is redundant when Rest[I] <= Rest[J]; for min,
      // when Rest[J] <= Rest[I]. Decided-equal pairs keep the lower index.
      Tri Dom = IsMin ? JI : IJ;
      bool Tie = IJ == Tri::True && JI == Tri::True;
      if (Dom == Tri::True && (!Tie || I > J))
        Dominated = true;
    }
    if (!Dominated)
      Kept.push_back(Rest[I]);
  }
  if (HaveConst) {
    bool ConstNeeded = Kept.empty();
    const ATerm *CT = F.intConst(CAcc);
    std::vector<const ATerm *> Kept2;
    for (const ATerm *K : Kept) {
      Tri KLeC = Ctx.decideCmp(K, CT, false);
      Tri CLeK = Ctx.decideCmp(CT, K, false);
      Tri Drop = IsMin ? CLeK : KLeC;   // leaf dominated by the constant
      Tri DropC = IsMin ? KLeC : CLeK;  // constant dominated by the leaf
      if (Drop == Tri::True)
        continue;
      Kept2.push_back(K);
      if (DropC != Tri::True)
        ConstNeeded = true;
    }
    Kept = std::move(Kept2);
    if (ConstNeeded || Kept.empty())
      Kept.insert(Kept.begin(), CT);
  }
  const ATerm *R;
  if (Kept.size() == 1) {
    R = Kept[0];
  } else {
    std::sort(Kept.begin(), Kept.end(), structLess);
    R = Kept[0];
    for (size_t I = 1; I < Kept.size(); ++I)
      R = F.bi(T->B, {R, Kept[I]});
  }
  return R == T ? nullptr : R;
}

const ATerm *Normalizer::rewriteBuiltin(const ATerm *T) {
  const auto &K = T->Kids;
  switch (T->B) {
  case BuiltinKind::Fst:
    if (isB(K[0], BuiltinKind::PairMk))
      return K[0]->Kids[0];
    return nullptr;
  case BuiltinKind::Snd:
    if (isB(K[0], BuiltinKind::PairMk))
      return K[0]->Kids[1];
    return nullptr;
  case BuiltinKind::PairMk:
    // Surjective pairing: pair(fst t, snd t) == t.
    if (isB(K[0], BuiltinKind::Fst) && isB(K[1], BuiltinKind::Snd) &&
        K[0]->Kids[0] == K[1]->Kids[0])
      return K[0]->Kids[0];
    return nullptr;

  case BuiltinKind::SeqConcat:
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return K[1];
    if (isB(K[1], BuiltinKind::SeqEmpty))
      return K[0];
    if (isB(K[0], BuiltinKind::SeqConcat)) // right-associate
      return F.bi(BuiltinKind::SeqConcat,
                  {K[0]->Kids[0],
                   F.bi(BuiltinKind::SeqConcat, {K[0]->Kids[1], K[1]})});
    // concat(s, append(t, x)) == append(concat(s, t), x)
    if (isB(K[1], BuiltinKind::SeqAppend))
      return F.bi(BuiltinKind::SeqAppend,
                  {F.bi(BuiltinKind::SeqConcat, {K[0], K[1]->Kids[0]}),
                   K[1]->Kids[1]});
    return nullptr;

  case BuiltinKind::SeqLen:
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return F.intConst(0);
    if (isB(K[0], BuiltinKind::SeqAppend))
      return F.add2(F.bi(BuiltinKind::SeqLen, {K[0]->Kids[0]}),
                    F.intConst(1));
    if (isB(K[0], BuiltinKind::SeqConcat))
      return F.add2(F.bi(BuiltinKind::SeqLen, {K[0]->Kids[0]}),
                    F.bi(BuiltinKind::SeqLen, {K[0]->Kids[1]}));
    if (isB(K[0], BuiltinKind::SeqSort))
      return F.bi(BuiltinKind::SeqLen, {K[0]->Kids[0]});
    if (isB(K[0], BuiltinKind::MsToSeq))
      return F.bi(BuiltinKind::MsCard, {K[0]->Kids[0]});
    if (isB(K[0], BuiltinKind::SetToSeq))
      return F.bi(BuiltinKind::SetSize, {K[0]->Kids[0]});
    return nullptr;

  case BuiltinKind::SeqSum:
  case BuiltinKind::SeqMean:
    // The concrete fold SATURATES at the int64 boundary, which makes it
    // order-sensitive there — no append/concat homomorphism is sound for an
    // unbounded claim. Only the empty case folds.
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return F.intConst(0);
    return nullptr;

  case BuiltinKind::SeqSort:
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return K[0];
    // A sorted sequence is a function of its element multiset alone;
    // canonicalize through it so differently-built sequences compare equal.
    if (!isB(K[0], BuiltinKind::MsToSeq))
      return F.bi(BuiltinKind::SeqSort,
                  {F.bi(BuiltinKind::MsToSeq,
                        {F.bi(BuiltinKind::SeqToMs, {K[0]})})});
    return nullptr;

  case BuiltinKind::SeqToMs:
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return F.bi(BuiltinKind::MsEmpty, {});
    if (isB(K[0], BuiltinKind::SeqAppend))
      return F.bi(BuiltinKind::MsAdd,
                  {F.bi(BuiltinKind::SeqToMs, {K[0]->Kids[0]}),
                   K[0]->Kids[1]});
    if (isB(K[0], BuiltinKind::SeqConcat))
      return F.bi(BuiltinKind::MsUnion,
                  {F.bi(BuiltinKind::SeqToMs, {K[0]->Kids[0]}),
                   F.bi(BuiltinKind::SeqToMs, {K[0]->Kids[1]})});
    if (isB(K[0], BuiltinKind::SeqSort))
      return F.bi(BuiltinKind::SeqToMs, {K[0]->Kids[0]});
    if (isB(K[0], BuiltinKind::MsToSeq))
      return K[0]->Kids[0];
    return nullptr;

  case BuiltinKind::SeqToSet:
    if (isB(K[0], BuiltinKind::SeqEmpty))
      return F.bi(BuiltinKind::SetEmpty, {});
    if (isB(K[0], BuiltinKind::SeqAppend))
      return F.bi(BuiltinKind::SetAdd,
                  {F.bi(BuiltinKind::SeqToSet, {K[0]->Kids[0]}),
                   K[0]->Kids[1]});
    if (isB(K[0], BuiltinKind::SeqConcat))
      return F.bi(BuiltinKind::SetUnion,
                  {F.bi(BuiltinKind::SeqToSet, {K[0]->Kids[0]}),
                   F.bi(BuiltinKind::SeqToSet, {K[0]->Kids[1]})});
    if (isB(K[0], BuiltinKind::SeqSort))
      return F.bi(BuiltinKind::SeqToSet, {K[0]->Kids[0]});
    if (isB(K[0], BuiltinKind::SetToSeq))
      return K[0]->Kids[0];
    return nullptr;

  case BuiltinKind::SeqContains:
    // Membership only depends on the element set; reuse its rules.
    return F.bi(BuiltinKind::SetMember,
                {F.bi(BuiltinKind::SeqToSet, {K[0]}), K[1]});

  case BuiltinKind::SetAdd:
  case BuiltinKind::MsAdd: {
    std::vector<const ATerm *> Elems;
    const ATerm *Core = stripAdds(T, T->B, Elems);
    std::reverse(Elems.begin(), Elems.end()); // restore inner-first order
    std::sort(Elems.begin(), Elems.end(), structLess);
    if (T->B == BuiltinKind::SetAdd) // set_add is idempotent
      Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    const ATerm *R = Core;
    for (const ATerm *E : Elems)
      R = F.bi(T->B, {R, E});
    return R == T ? nullptr : R;
  }

  case BuiltinKind::SetUnion:
  case BuiltinKind::MsUnion: {
    const bool IsSet = T->B == BuiltinKind::SetUnion;
    const BuiltinKind AddK = IsSet ? BuiltinKind::SetAdd : BuiltinKind::MsAdd;
    const BuiltinKind EmptyK =
        IsSet ? BuiltinKind::SetEmpty : BuiltinKind::MsEmpty;
    std::vector<const ATerm *> Parts;
    flattenBi(T, T->B, Parts);
    std::vector<const ATerm *> Elems, Cores;
    for (const ATerm *P : Parts) {
      const ATerm *Core = stripAdds(P, AddK, Elems);
      if (!isB(Core, EmptyK))
        Cores.push_back(Core);
    }
    std::sort(Cores.begin(), Cores.end(), structLess);
    if (IsSet) // set_union is idempotent; ms_union keeps duplicates
      Cores.erase(std::unique(Cores.begin(), Cores.end()), Cores.end());
    std::sort(Elems.begin(), Elems.end(), structLess);
    if (IsSet)
      Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    const ATerm *R;
    if (Cores.empty()) {
      R = F.bi(EmptyK, {});
    } else {
      R = Cores[0];
      for (size_t I = 1; I < Cores.size(); ++I)
        R = F.bi(T->B, {R, Cores[I]});
    }
    for (const ATerm *E : Elems)
      R = F.bi(AddK, {R, E});
    return R == T ? nullptr : R;
  }

  case BuiltinKind::SetInter: {
    if (isB(K[0], BuiltinKind::SetEmpty) || isB(K[1], BuiltinKind::SetEmpty))
      return F.bi(BuiltinKind::SetEmpty, {});
    if (K[0] == K[1])
      return K[0];
    if (ATerm::compare(K[0], K[1]) > 0) // commutative: canonical order
      return F.bi(BuiltinKind::SetInter, {K[1], K[0]});
    return nullptr;
  }
  case BuiltinKind::SetDiff:
    if (isB(K[0], BuiltinKind::SetEmpty))
      return K[0];
    if (isB(K[1], BuiltinKind::SetEmpty))
      return K[0];
    if (K[0] == K[1])
      return F.bi(BuiltinKind::SetEmpty, {});
    return nullptr;
  case BuiltinKind::MsDiff:
    if (isB(K[0], BuiltinKind::MsEmpty))
      return K[0];
    if (isB(K[1], BuiltinKind::MsEmpty))
      return K[0];
    if (K[0] == K[1])
      return F.bi(BuiltinKind::MsEmpty, {});
    return nullptr;

  case BuiltinKind::SetMember: {
    const ATerm *S = K[0], *Y = K[1];
    if (isB(S, BuiltinKind::SetEmpty))
      return F.boolConst(false);
    if (isB(S, BuiltinKind::SetAdd)) {
      Tri D = Ctx.decideEq(S->Kids[1], Y);
      if (D == Tri::True)
        return F.boolConst(true);
      if (D == Tri::False)
        return F.bi(BuiltinKind::SetMember, {S->Kids[0], Y});
      blockOn(F.eq(S->Kids[1], Y));
      return nullptr;
    }
    if (isB(S, BuiltinKind::SetUnion))
      return F.app(AOp::Or,
                   {F.bi(BuiltinKind::SetMember, {S->Kids[0], Y}),
                    F.bi(BuiltinKind::SetMember, {S->Kids[1], Y})});
    if (isB(S, BuiltinKind::MapDom))
      return F.bi(BuiltinKind::MapHas, {S->Kids[0], Y});
    return nullptr;
  }

  case BuiltinKind::SetSize:
    if (isB(K[0], BuiltinKind::SetEmpty))
      return F.intConst(0);
    if (isB(K[0], BuiltinKind::SetAdd)) {
      const ATerm *B = K[0]->Kids[0], *X = K[0]->Kids[1];
      return F.ite(F.bi(BuiltinKind::SetMember, {B, X}),
                   F.bi(BuiltinKind::SetSize, {B}),
                   F.add2(F.bi(BuiltinKind::SetSize, {B}), F.intConst(1)));
    }
    return nullptr;

  case BuiltinKind::SetToSeq:
    if (isB(K[0], BuiltinKind::SetEmpty))
      return F.bi(BuiltinKind::SeqEmpty, {});
    return nullptr;
  case BuiltinKind::MsToSeq:
    if (isB(K[0], BuiltinKind::MsEmpty))
      return F.bi(BuiltinKind::SeqEmpty, {});
    return nullptr;

  case BuiltinKind::MsCard:
    if (isB(K[0], BuiltinKind::MsEmpty))
      return F.intConst(0);
    if (isB(K[0], BuiltinKind::MsAdd))
      return F.add2(F.bi(BuiltinKind::MsCard, {K[0]->Kids[0]}),
                    F.intConst(1));
    if (isB(K[0], BuiltinKind::MsUnion))
      return F.add2(F.bi(BuiltinKind::MsCard, {K[0]->Kids[0]}),
                    F.bi(BuiltinKind::MsCard, {K[0]->Kids[1]}));
    return nullptr;

  case BuiltinKind::MsCount: {
    const ATerm *M = K[0], *Y = K[1];
    if (isB(M, BuiltinKind::MsEmpty))
      return F.intConst(0);
    if (isB(M, BuiltinKind::MsAdd)) {
      Tri D = Ctx.decideEq(M->Kids[1], Y);
      if (D == Tri::True)
        return F.add2(F.bi(BuiltinKind::MsCount, {M->Kids[0], Y}),
                      F.intConst(1));
      if (D == Tri::False)
        return F.bi(BuiltinKind::MsCount, {M->Kids[0], Y});
      blockOn(F.eq(M->Kids[1], Y));
      return nullptr;
    }
    if (isB(M, BuiltinKind::MsUnion))
      return F.add2(F.bi(BuiltinKind::MsCount, {M->Kids[0], Y}),
                    F.bi(BuiltinKind::MsCount, {M->Kids[1], Y}));
    return nullptr;
  }

  case BuiltinKind::MapPut: {
    const ATerm *M = K[0], *Ky = K[1], *V = K[2];
    if (isB(M, BuiltinKind::MapPut)) {
      const ATerm *M2 = M->Kids[0], *K2 = M->Kids[1], *V2 = M->Kids[2];
      Tri D = Ctx.decideEq(Ky, K2);
      if (D == Tri::True) // outer put shadows the inner one
        return F.bi(BuiltinKind::MapPut, {M2, Ky, V});
      if (D == Tri::False) {
        // Distinct keys commute; keep the chain key-sorted inner-first.
        if (ATerm::compare(Ky, K2) < 0)
          return F.bi(BuiltinKind::MapPut,
                      {F.bi(BuiltinKind::MapPut, {M2, Ky, V}), K2, V2});
        return nullptr;
      }
      blockOn(F.eq(Ky, K2));
    }
    return nullptr;
  }

  case BuiltinKind::MapGet: {
    const ATerm *M = K[0], *Ky = K[1];
    if (isB(M, BuiltinKind::MapPut)) {
      Tri D = Ctx.decideEq(M->Kids[1], Ky);
      if (D == Tri::True)
        return M->Kids[2];
      if (D == Tri::False)
        return F.bi(BuiltinKind::MapGet, {M->Kids[0], Ky});
      blockOn(F.eq(M->Kids[1], Ky));
    }
    return nullptr;
  }

  case BuiltinKind::MapGetOr: {
    const ATerm *M = K[0], *Ky = K[1], *D = K[2];
    if (isB(M, BuiltinKind::MapEmpty))
      return D;
    if (isB(M, BuiltinKind::MapPut)) {
      Tri E = Ctx.decideEq(M->Kids[1], Ky);
      if (E == Tri::True)
        return M->Kids[2];
      if (E == Tri::False)
        return F.bi(BuiltinKind::MapGetOr, {M->Kids[0], Ky, D});
      blockOn(F.eq(M->Kids[1], Ky));
      return nullptr;
    }
    // Stuck on an opaque map: a presence fact still decides it.
    const ATerm *Has = F.bi(BuiltinKind::MapHas, {M, Ky});
    if (auto HF = Ctx.boolFact(Has))
      return *HF ? F.bi(BuiltinKind::MapGet, {M, Ky}) : D;
    blockOn(Has);
    return nullptr;
  }

  case BuiltinKind::MapHas: {
    const ATerm *M = K[0], *Ky = K[1];
    if (isB(M, BuiltinKind::MapEmpty))
      return F.boolConst(false);
    if (isB(M, BuiltinKind::MapPut)) {
      Tri D = Ctx.decideEq(M->Kids[1], Ky);
      if (D == Tri::True)
        return F.boolConst(true);
      if (D == Tri::False)
        return F.bi(BuiltinKind::MapHas, {M->Kids[0], Ky});
      blockOn(F.eq(M->Kids[1], Ky));
    }
    return nullptr;
  }

  case BuiltinKind::MapRemove: {
    const ATerm *M = K[0], *Ky = K[1];
    if (isB(M, BuiltinKind::MapEmpty))
      return M;
    if (isB(M, BuiltinKind::MapPut)) {
      Tri D = Ctx.decideEq(M->Kids[1], Ky);
      if (D == Tri::True)
        return F.bi(BuiltinKind::MapRemove, {M->Kids[0], Ky});
      if (D == Tri::False)
        return F.bi(BuiltinKind::MapPut,
                    {F.bi(BuiltinKind::MapRemove, {M->Kids[0], Ky}),
                     M->Kids[1], M->Kids[2]});
      blockOn(F.eq(M->Kids[1], Ky));
    }
    return nullptr;
  }

  case BuiltinKind::MapDom:
    if (isB(K[0], BuiltinKind::MapEmpty))
      return F.bi(BuiltinKind::SetEmpty, {});
    if (isB(K[0], BuiltinKind::MapPut))
      return F.bi(BuiltinKind::SetAdd,
                  {F.bi(BuiltinKind::MapDom, {K[0]->Kids[0]}),
                   K[0]->Kids[1]});
    if (isB(K[0], BuiltinKind::MapRemove))
      return F.bi(BuiltinKind::SetDiff,
                  {F.bi(BuiltinKind::MapDom, {K[0]->Kids[0]}),
                   F.bi(BuiltinKind::SetAdd,
                        {F.bi(BuiltinKind::SetEmpty, {}), K[0]->Kids[1]})});
    return nullptr;

  case BuiltinKind::MapSize:
    if (isB(K[0], BuiltinKind::MapEmpty))
      return F.intConst(0);
    if (isB(K[0], BuiltinKind::MapPut)) {
      const ATerm *M = K[0]->Kids[0], *Ky = K[0]->Kids[1];
      return F.ite(F.bi(BuiltinKind::MapHas, {M, Ky}),
                   F.bi(BuiltinKind::MapSize, {M}),
                   F.add2(F.bi(BuiltinKind::MapSize, {M}), F.intConst(1)));
    }
    return nullptr;

  case BuiltinKind::Ite:
    // Surface-level ite builtin; reuse the AOp::Ite rules.
    return F.ite(K[0], K[1], K[2]);

  case BuiltinKind::Min:
    return rewriteMinMax(T, /*IsMin=*/true);
  case BuiltinKind::Max:
    return rewriteMinMax(T, /*IsMin=*/false);

  case BuiltinKind::Abs: {
    const ATerm *A = K[0];
    if (A->K == AOp::IntConst)
      return F.intConst(A->IntVal < 0 ? wrapNeg(A->IntVal) : A->IntVal);
    if (isB(A, BuiltinKind::Abs))
      return A;
    AbsVal AV = Ctx.absOf(A);
    if (!AV.Iv.LoInf && AV.Iv.Lo >= 0)
      return A;
    if (!AV.Iv.HiInf && AV.Iv.Hi <= 0)
      return F.mul2(F.intConst(-1), A);
    return nullptr;
  }

  default:
    return nullptr;
  }
}
